(* Edge vs. server: tune MobileNet-v2 for all three paper devices and
   compare Felix against the vendor frameworks on each — a miniature of the
   paper's Figure 6 narrative (Felix shines on small layers and on
   edge-class hardware).

   Run with:  dune exec examples/edge_vs_server.exe *)

let () =
  let net = Workload.Mobilenet_v2 in
  let dnn = Workload.graph net in
  let table =
    Table.create ~title:"MobileNet-v2 inference latency (ms)"
      ~header:[ "device"; "PyTorch"; "TensorFlow"; "TensorRT"; "Felix"; "Felix speedup" ]
  in
  List.iter
    (fun device ->
      let lib fw =
        if Frameworks.supported device fw net then
          Frameworks.network_latency_ms device fw dnn
        else None
      in
      let fmt = function Some l -> Table.fmt_ms l | None -> "-" in
      let pytorch = lib Frameworks.Pytorch in
      let tensorflow = lib Frameworks.Tensorflow in
      let tensorrt = lib Frameworks.Tensorrt in
      let cost_model = Felix.pretrained_cost_model device in
      let graphs = Felix.extract_subgraphs dnn in
      let opt =
        Felix.Optimizer.create ~config:Tuning_config.quick ~seed:11 graphs cost_model device
      in
      let result =
        match Felix.Optimizer.optimize_all opt ~n_total_rounds:20 () with
        | Ok r -> r
        | Error e ->
          Printf.eprintf "tuning failed: %s\n" (Tuner.error_message e);
          exit 1
      in
      let felix = result.Tuner.final_latency_ms in
      let best_lib =
        List.filter_map Fun.id [ pytorch; tensorflow; tensorrt ]
        |> List.fold_left min infinity
      in
      Table.add_row table
        [ device.Device.device_name; fmt pytorch; fmt tensorflow; fmt tensorrt;
          Table.fmt_ms felix; Table.fmt_speedup (best_lib /. felix) ])
    Device.all;
  Table.print table
