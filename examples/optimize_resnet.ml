(* The paper's running deployment scenario: optimise ResNet-50 for the
   Jetson Xavier NX edge GPU, then inspect what the tuner decided — which
   sketch won per subgraph, the chosen tile sizes, and the generated
   pseudo-CUDA loop nest of the heaviest convolution.

   Run with:  dune exec examples/optimize_resnet.exe *)

let () =
  let device = Felix.cuda "xavier-nx" in
  let dnn = Workload.graph Workload.Resnet50 in
  let graphs = Felix.extract_subgraphs dnn in
  Printf.printf "ResNet-50 has %d distinct tuning tasks on %s\n\n" (Felix.num_tasks graphs)
    device.Device.device_name;
  let cost_model = Felix.pretrained_cost_model device in
  let opt =
    Felix.Optimizer.create ~config:Tuning_config.quick ~seed:7 graphs cost_model device
  in
  (* A compact progress bar fed by the event bus: one character per round,
     '!' when the round improved its task, '.' otherwise. *)
  let improved = ref false in
  let on_event = function
    | Felix.Task_improved _ -> improved := true
    | Felix.Round_finished _ ->
      print_string (if !improved then "!" else ".");
      flush stdout;
      improved := false
    | Felix.Tuning_finished { sim_clock_s; _ } ->
      Printf.printf " done (%.0f simulated seconds)\n" sim_clock_s
    | _ -> ()
  in
  let result =
    match Felix.Optimizer.optimize_all opt ~n_total_rounds:30 ~on_event () with
    | Ok r -> r
    | Error e ->
      Printf.eprintf "tuning failed: %s\n" (Tuner.error_message e);
      exit 1
  in
  Printf.printf "tuned network latency: %.3f ms\n\n" result.Tuner.final_latency_ms;

  (* Per-task report: what won where. *)
  let table =
    Table.create ~title:"per-subgraph results"
      ~header:[ "subgraph"; "x"; "best ms"; "sketch"; "rounds"; "measured" ]
  in
  List.iter
    (fun (tr : Tuner.task_result) ->
      Table.add_row table
        [ tr.task.Partition.subgraph.Compute.sg_name;
          string_of_int tr.task.Partition.weight;
          Table.fmt_ms tr.best.latency_ms;
          tr.best.sketch;
          string_of_int tr.rounds_spent;
          string_of_int tr.measurements ])
    result.Tuner.tasks;
  Table.print table;

  (* Inspect the heaviest task: its symbolic schedule variables and the
     transformed program p* (Figure 3's right column). *)
  let heaviest =
    Stats.argmax
      (fun (tr : Tuner.task_result) ->
        float_of_int tr.task.Partition.weight *. Partition.task_flops tr.task)
      result.Tuner.tasks
  in
  let sg = heaviest.task.Partition.subgraph in
  Printf.printf "\nheaviest task: %s\nchosen schedule variables:\n" sg.Compute.sg_name;
  List.iter (fun (v, x) -> Printf.printf "  %-16s = %d\n" v x) heaviest.best.assignment;
  (match
     List.find_opt
       (fun s -> s.Schedule.sched_name = heaviest.best.sketch)
       (Sketch.generate sg)
   with
  | Some sched ->
    let concrete =
      Schedule.substitute sched (fun v ->
          Option.map (fun x -> Expr.int x) (List.assoc_opt v heaviest.best.assignment))
    in
    let prog = Loop_ir.apply sg concrete in
    Printf.printf "\ngenerated program (pseudo-CUDA):\n%s\n" (Loop_ir.to_loop_tree_string prog)
  | None -> ())
