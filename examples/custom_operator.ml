(* A tour of the compiler internals on a custom operator — the Dense-Add
   subgraph of the paper's Figure 3:

   1. lower the operator to its naive loop-nest program p0;
   2. generate the two symbolic schedules (simple and multi-level tiling)
      with their transformation steps and legality constraints;
   3. show extracted feature formulas before and after smoothing;
   4. run one seed of gradient descent by hand and watch the objective.

   Run with:  dune exec examples/custom_operator.exe *)

let () =
  (* E[i,j] = sum_k A[i,k] * B[k,j] + C[j] — Dense followed by a bias Add. *)
  let dense = Op.Dense { batch = 64; in_dim = 512; out_dim = 1024 } in
  let sg = Compute.lower ~name:"dense" dense in
  let sg = Compute.fuse_elemwise sg ~name:"add" (Op.Binary (Op.Add, 64 * 1024)) in
  Printf.printf "subgraph: %s, %.1f MFLOPs, %d stages\n\n" sg.Compute.sg_name
    (Compute.subgraph_flops sg /. 1e6)
    (List.length sg.Compute.stages);

  (* Symbolic schedules (Figure 3, middle column). *)
  List.iter
    (fun sched ->
      Printf.printf "=== symbolic schedule %s (%d variables, %d constraints) ===\n"
        sched.Schedule.sched_name (Schedule.num_vars sched)
        (List.length sched.Schedule.constraints);
      List.iter
        (fun step -> Printf.printf "  %s\n" (Schedule.step_to_string step))
        (Schedule.steps sg sched);
      Printf.printf "constraints:\n";
      List.iteri
        (fun i c -> if i < 6 then Printf.printf "  %s\n" (Expr.cond_to_string c))
        sched.Schedule.constraints;
      (* Symbolic program (Figure 3, right column). *)
      let prog = Loop_ir.apply sg sched in
      Printf.printf "symbolic program p*:\n%s\n" (Loop_ir.to_loop_tree_string prog);
      Printf.printf "generated CUDA-like source:\n%s\n" (Codegen.program_source prog))
    (Sketch.generate sg);

  (* Feature formulas (Section 3.3). *)
  let sched = List.nth (Sketch.generate sg) 1 in
  let prog = Loop_ir.apply sg sched in
  let feats = Extract.extract_named prog in
  Printf.printf "=== a few extracted feature formulas ===\n";
  List.iter
    (fun name ->
      match Array.find_opt (fun (n, _) -> n = name) feats with
      | Some (_, f) ->
        Printf.printf "  %-16s = %s\n" name (Expr.to_string f);
        if Expr.contains_nondiff f then
          Printf.printf "  %-16s   (smoothed: %s)\n" ""
            (Expr.to_string (Simplify.simplify (Smooth.smooth f)))
      | None -> ())
    [ "float_add"; "grid_size"; "int_ops"; "shared_bytes" ];

  (* Gradient descent on the differentiable objective (Algorithm 1). *)
  Printf.printf "\n=== one seed of gradient descent ===\n";
  let pack = Pack.prepare sg sched in
  let rng = Rng.create 0 in
  let model = Felix.pretrained_cost_model (Felix.cuda "rtx-a5000") in
  (match Dataset.sample_valid_point rng pack 200 with
  | None -> print_endline "no feasible start found"
  | Some y0 ->
    let cfg = { Tuning_config.default with Tuning_config.nsteps = 100 } in
    let history = Gradient_tuner.descend cfg rng model pack y0 in
    List.iteri
      (fun i (y, obj) ->
        if i mod 20 = 0 then begin
          let status =
            match Pack.round_to_valid pack y with
            | Some r ->
              let lat =
                Gpu_model.program_latency_ms Device.rtx_a5000 (Pack.program pack)
                  (Pack.env_of pack r)
              in
              Printf.sprintf "rounds to a valid schedule, measured %.3f ms" lat
            | None -> "rounding infeasible here"
          in
          Printf.printf "  step %3d: objective %8.3f  (%s)\n" i obj status
        end)
      history)
