(* Quickstart: the paper's Figure 5 workflow, end to end.

   Optimises the DCGAN generator for an RTX A5000 with a short search, then
   "compiles" the best schedules and reports the resulting latency.

   Run with:  dune exec examples/quickstart.exe
   (The first run trains and caches the per-device cost model in
   _artifacts/; subsequent runs start instantly.) *)

let () =
  (* Define the hardware target to optimize for. *)
  let device = Felix.cuda "rtx-a5000" in
  (* Define the DNN to optimize. *)
  let dnn = Workload.graph Workload.Dcgan in
  Printf.printf "%s\n\n" (Graph.summary dnn);
  (* Extract subgraphs to tune from the DNN. *)
  let graphs = Felix.extract_subgraphs dnn in
  Printf.printf "tuning tasks:\n%s\n\n" (Felix.describe_subgraphs graphs);
  (* Get the pretrained cost model for the target device. *)
  let cost_model = Felix.pretrained_cost_model device in
  (* The Optimizer sets up the search space and objective per subgraph. *)
  let opt =
    Felix.Optimizer.create ~config:Tuning_config.quick ~seed:42 graphs cost_model device
  in
  (* Stream per-round progress through the tuning event bus: the callback
     observes every round as it completes, while the search is running. *)
  let on_event = function
    | Felix.Round_finished { round; network_ms; sim_clock_s; _ } ->
      Printf.printf "  round %2d: network %.3f ms (t=%.0fs simulated)\n%!" round network_ms
        sim_clock_s
    | Felix.Task_improved { subgraph; before_ms; after_ms; _ } ->
      Printf.printf "  %s improved: %.4f ms -> %.4f ms\n%!" subgraph before_ms after_ms
    | _ -> ()
  in
  (* Run the search. *)
  let result =
    match Felix.Optimizer.optimize_all opt ~n_total_rounds:15 ~save_res:"dcgan.json" ~on_event () with
    | Ok r -> r
    | Error e ->
      Printf.eprintf "tuning failed: %s\n" (Tuner.error_message e);
      exit 1
  in
  Printf.printf "tuned latency: %.3f ms after %.0f simulated seconds (%d measurements)\n"
    result.Tuner.final_latency_ms
    (match List.rev result.Tuner.curve with p :: _ -> p.Tuner.time_s | [] -> 0.0)
    result.Tuner.total_measurements;
  (* Apply the best schedules and build a compiled module. *)
  let compiled = Felix.Optimizer.compile_with_best_configs opt in
  Printf.printf "compiled latency: %.3f ms; one simulated run: %.3f ms\n"
    (Felix.Compiled.latency_ms compiled) (Felix.Compiled.run compiled);
  (* The module can be saved as a versioned artifact and loaded later. *)
  (match Felix.Compiled.save_file compiled "dcgan_a5000.json" with
  | Ok () -> Printf.printf "saved compiled module to dcgan_a5000.json\n"
  | Error e -> Printf.printf "save failed: %s\n" (Felix.Store.error_message e))
