(* felix-tune: command-line front end.

   Subcommands:
     tune     — tune one of the paper's networks on a device
     resume   — continue an interrupted tune from its --store directory
     serve    — run the tuning service daemon on a Unix-domain socket
     submit   — send a tuning job to a running service
     status   — query a job's state on a running service
     result   — fetch a finished job's result from a running service
     cancel   — cancel a queued or running job on a running service
     inspect  — print a network's tuning tasks and search-space statistics
     compare  — compare a tuned network against the vendor frameworks
     devices  — list device models
     stats    — summarize a JSONL telemetry trace written by tune --trace
     store    — inspect a durable tuning store (store stats DIR)
     cache    — inspect or clear a persistent compilation cache *)

open Cmdliner

let network_conv =
  let parse s =
    let all =
      List.map (fun n -> (String.lowercase_ascii (Workload.network_name n), n))
        Workload.all_networks
    in
    match List.assoc_opt (String.lowercase_ascii s) all with
    | Some n -> Ok n
    | None ->
      Error (`Msg (Printf.sprintf "unknown network %S (known: %s)" s
                     (String.concat ", " (List.map fst all))))
  in
  Arg.conv (parse, fun fmt n -> Format.pp_print_string fmt (Workload.network_name n))

let device_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Device.of_name s) in
  Arg.conv (parse, fun fmt (d : Device.t) -> Format.pp_print_string fmt d.device_name)

let network_arg =
  Arg.(required & pos 0 (some network_conv) None & info [] ~docv:"NETWORK")

let device_arg =
  Arg.(value & opt device_conv Device.rtx_a5000 & info [ "device"; "d" ] ~docv:"DEVICE"
         ~doc:"Target GPU: a10g, rtx-a5000 or xavier-nx.")

let rounds_arg =
  Arg.(value & opt int 30 & info [ "rounds"; "r" ] ~doc:"Total tuning rounds.")

let batch_arg = Arg.(value & opt int 1 & info [ "batch"; "b" ] ~doc:"Inference batch size.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Search seed.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the reduced-effort search configuration.")

let engine_arg =
  let engine_conv =
    Arg.enum
      (List.map
         (fun e -> (Tuning_config.engine_id e, e))
         [ Tuner.Felix; Tuner.Ansor; Tuner.Random ])
  in
  Arg.(value & opt engine_conv Tuner.Felix
       & info [ "engine" ] ~doc:"Search engine: felix, ansor or random.")

let config_of_quick quick rounds =
  let base = if quick then Tuning_config.quick else Tuning_config.default in
  { base with Tuning_config.max_rounds = rounds }

let jobs_arg =
  let default =
    match Sys.getenv_opt "FELIX_JOBS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> 1
  in
  Arg.(value & opt int default
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Run searches and measurements on $(docv) parallel domains. Defaults \
                 to the FELIX_JOBS environment variable (else 1). Results are \
                 bit-identical at any value.")

let gd_batch_arg =
  let default =
    match Sys.getenv_opt "FELIX_BATCH" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
    | None -> 1
  in
  Arg.(value & opt int default
       & info [ "gd-batch" ] ~docv:"B"
           ~doc:"Descend $(docv) candidate schedules in lockstep through the \
                 batched structure-of-arrays kernels (1 = scalar path). Defaults \
                 to the FELIX_BATCH environment variable (else 1). Results are \
                 bit-identical at any value.")

(* Measurement-policy flags; env-variable fallbacks mirror FELIX_JOBS:
   unset, empty or unparsable means the built-in default. Range errors are
   caught by Tuner.validate's typed Invalid_config path, not here. *)
let env_float name =
  Option.bind (Sys.getenv_opt name) (fun s -> float_of_string_opt (String.trim s))

let env_int name =
  Option.bind (Sys.getenv_opt name) (fun s -> int_of_string_opt (String.trim s))

let measure_timeout_arg =
  let default =
    Option.value (env_float "FELIX_MEASURE_TIMEOUT")
      ~default:Measure.default.Measure.timeout_s
  in
  Arg.(value & opt float default
       & info [ "measure-timeout" ] ~docv:"SECONDS"
           ~doc:"Per-measurement deadline in simulated seconds; a timed-out \
                 attempt costs this much tuning time. Defaults to the \
                 FELIX_MEASURE_TIMEOUT environment variable (else 5).")

let measure_retries_arg =
  let default =
    Option.value (env_int "FELIX_MEASURE_RETRIES")
      ~default:(Measure.default.Measure.max_attempts - 1)
  in
  Arg.(value & opt int default
       & info [ "measure-retries" ] ~docv:"N"
           ~doc:"Retry a failed measurement up to $(docv) more times (total \
                 attempts $(docv)+1) with exponential backoff; a candidate that \
                 fails identically twice is classified deterministic and not \
                 retried again. Defaults to the FELIX_MEASURE_RETRIES \
                 environment variable (else 2).")

let chaos_arg =
  let default = Option.value (env_float "FELIX_MEASURE_CHAOS") ~default:0.0 in
  Arg.(value & opt float default
       & info [ "chaos" ] ~docv:"RATE"
           ~doc:"Inject measurement faults deterministically at total rate \
                 $(docv) in [0, 1], split evenly across timeouts, crashes, \
                 hangs and flaky noise; the fault schedule is keyed on the \
                 candidate digest and the search seed, so runs with equal \
                 seeds see identical faults. 0 (the default, or the \
                 FELIX_MEASURE_CHAOS environment variable) disables injection.")

let measure_of ~timeout ~retries ~chaos ~seed =
  { Measure.default with
    Measure.timeout_s = timeout;
    max_attempts = retries + 1;
    chaos =
      (if chaos <> 0.0 then Some (Measure.chaos_with_rate ~seed chaos) else None) }

let out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"PREFIX"
         ~doc:"Write PREFIX.csv (progress curve) and PREFIX.json (summary).")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a JSONL telemetry trace of the run (spans, events, metrics) to \
               $(docv); summarize it later with the stats subcommand.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ] ~doc:"Print aggregated telemetry metrics after the run.")

(* Enable the global telemetry registry for the duration of [f] when either
   observability flag is set; metric snapshots land at the end of the trace. *)
let with_telemetry ~trace ~metrics f =
  let reg = Telemetry.global in
  let oc =
    Option.map
      (fun file ->
        try open_out file
        with Sys_error msg ->
          Printf.eprintf "felix-tune: cannot open trace file: %s\n" msg;
          exit 1)
      trace
  in
  if oc <> None || metrics then Telemetry.enable reg;
  Option.iter (fun oc -> Telemetry.add_sink reg (Telemetry.jsonl_sink oc)) oc;
  let finish () =
    Telemetry.flush_metrics reg;
    if metrics then print_string (Telemetry.report reg);
    Option.iter close_out oc;
    Option.iter (fun f -> Printf.printf "wrote telemetry trace to %s\n" f) trace
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let store_arg =
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR"
         ~doc:"Durable tuning store: journal every measurement to $(docv), \
               checkpoint each round, and warm-start from completed prior runs. \
               An interrupted run is continued bit-identically by \
               $(b,felix-tune resume) $(docv).")

let pack_cache_arg =
  Arg.(value & opt (some string) (Sys.getenv_opt "FELIX_PACK_CACHE")
       & info [ "pack-cache" ] ~docv:"DIR"
           ~doc:"Persistent compilation cache: store compiled feature/penalty \
                 packs content-addressed under $(docv) (created on demand) and \
                 reuse them across runs and processes. Defaults to the \
                 FELIX_PACK_CACHE environment variable (else disabled). Results \
                 are bit-identical with the cache cold, warm or disabled.")

(* One job specification drives [tune], [submit] and the [run.json]
   invocation record that [resume] replays: the shared Serve.Job codec
   means the three paths cannot drift apart. *)
let spec_of ~net ~device ~rounds ~batch ~seed ~quick ~engine ~jobs ~gd_batch
    ~measure ~deadline ~store_dir ~pack_cache =
  let search = config_of_quick quick rounds in
  let run =
    Tuning_config.(
      builder |> with_search search |> with_seed seed |> with_jobs jobs
      |> with_batch gd_batch |> with_measurer measure)
  in
  let run =
    match pack_cache with
    | Some dir -> Tuning_config.with_pack_cache dir run
    | None -> run
  in
  { Serve.Job.network = net; inference_batch = batch; device; engine; run;
    deadline_s = deadline; store_dir }

let exit_store_error what e =
  Printf.eprintf "felix-tune: %s: %s\n" what (Store.error_message e);
  exit 1

let print_store_summary store =
  let st = Store.stats store in
  Printf.printf "store: %d records, %d runs (%d completed)%s\n"
    st.Store.records st.Store.runs_started st.Store.runs_completed
    (if st.Store.recovered_bytes > 0 then
       Printf.sprintf " — recovered a torn journal tail (%d bytes dropped)"
         st.Store.recovered_bytes
     else "")

(* Run one job spec in-process (the [tune] and [resume] paths). The store
   directory, when given, gets the spec recorded as [run.json] so the run
   can be resumed or re-submitted with the exact same configuration. *)
let execute_tune ?store_dir (spec : Serve.Job.spec) out trace metrics =
  with_telemetry ~trace ~metrics @@ fun () ->
  let store =
    Option.map
      (fun dir ->
        match Store.open_dir dir with
        | Error e -> exit_store_error dir e
        | Ok store ->
          (match Serve.Job.save_invocation spec ~dir with
          | Ok () -> ()
          | Error e -> exit_store_error "cannot record invocation" e);
          store)
      store_dir
  in
  let g = Workload.graph ~batch:spec.Serve.Job.inference_batch spec.Serve.Job.network in
  Printf.printf "%s\n\n" (Graph.summary g);
  let model = Felix.pretrained_cost_model spec.Serve.Job.device in
  let rc = spec.Serve.Job.run in
  let rc = match store with Some s -> Tuning_config.with_store s rc | None -> rc in
  match Tuner.run rc spec.Serve.Job.device model g spec.Serve.Job.engine with
  | Error e ->
    Option.iter Store.close store;
    Printf.eprintf "felix-tune: %s\n" (Tuner.error_message e);
    exit 1
  | Ok result ->
    Printf.printf "final latency: %.3f ms (%d measurements, %.0f simulated seconds)\n"
      result.Tuner.final_latency_ms result.Tuner.total_measurements
      (match List.rev result.Tuner.curve with p :: _ -> p.Tuner.time_s | [] -> 0.0);
    let t = Table.create ~title:"tasks" ~header:[ "subgraph"; "x"; "best ms"; "sketch" ] in
    List.iter
      (fun (tr : Tuner.task_result) ->
        Table.add_row t
          [ tr.task.Partition.subgraph.Compute.sg_name; string_of_int tr.task.Partition.weight;
            Table.fmt_ms tr.best.Tuner.latency_ms; tr.best.Tuner.sketch ])
      result.Tuner.tasks;
    Table.print t;
    Option.iter
      (fun s ->
        print_store_summary s;
        Store.close s)
      store;
    match out with
    | None -> ()
    | Some prefix ->
      Export.write_curve_csv result (prefix ^ ".csv");
      (match Export.save_result result (prefix ^ ".json") with
      | Ok () -> ()
      | Error e -> exit_store_error (prefix ^ ".json") e);
      Printf.printf "wrote %s.csv and %s.json\n" prefix prefix

let tune_cmd =
  let run net device rounds batch seed quick engine jobs gd_batch measure_timeout
      measure_retries chaos store_dir pack_cache out trace metrics =
    let measure =
      measure_of ~timeout:measure_timeout ~retries:measure_retries ~chaos ~seed
    in
    let spec =
      spec_of ~net ~device ~rounds ~batch ~seed ~quick ~engine ~jobs ~gd_batch
        ~measure ~deadline:None ~store_dir:None ~pack_cache
    in
    execute_tune ?store_dir spec out trace metrics
  in
  Cmd.v (Cmd.info "tune" ~doc:"Tune a network's schedules for a device.")
    Term.(const run $ network_arg $ device_arg $ rounds_arg $ batch_arg $ seed_arg
          $ quick_arg $ engine_arg $ jobs_arg $ gd_batch_arg $ measure_timeout_arg
          $ measure_retries_arg $ chaos_arg $ store_arg $ pack_cache_arg $ out_arg
          $ trace_arg $ metrics_arg)

(* Optional parallelism overrides for [resume]: omitted flags keep the
   recorded invocation's values (results are invariant either way). *)
let jobs_override_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Override the recorded domain parallelism. Results are \
                 bit-identical at any value.")

let gd_batch_override_arg =
  Arg.(value & opt (some int) None
       & info [ "gd-batch" ] ~docv:"B"
           ~doc:"Override the recorded lockstep descent batch width. Results \
                 are bit-identical at any value.")

let resume_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Store directory of the interrupted $(b,tune --store) run.")
  in
  let run dir jobs gd_batch pack_cache out trace metrics =
    match Serve.Job.load_invocation ~dir with
    | Error e -> exit_store_error dir e
    | Ok spec ->
      let rc = spec.Serve.Job.run in
      let rc =
        match jobs with Some j -> Tuning_config.with_jobs j rc | None -> rc
      in
      let rc =
        match gd_batch with Some b -> Tuning_config.with_batch b rc | None -> rc
      in
      let rc =
        match pack_cache with
        | Some d -> Tuning_config.with_pack_cache d rc
        | None -> rc
      in
      let spec = { spec with Serve.Job.run = rc } in
      Printf.printf "resuming: %s on %s (%d rounds, seed %d, %s)\n\n"
        (Workload.network_name spec.Serve.Job.network)
        spec.Serve.Job.device.Device.device_name
        rc.Tuning_config.search.Tuning_config.max_rounds rc.Tuning_config.seed
        (Tuning_config.engine_id spec.Serve.Job.engine);
      execute_tune ~store_dir:dir spec out trace metrics
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue an interrupted tuning run from its store directory, \
          bit-identically to the uninterrupted run. Parallelism flags may \
          differ from the original invocation; results do not depend on them.")
    Term.(const run $ dir_arg $ jobs_override_arg $ gd_batch_override_arg
          $ pack_cache_arg $ out_arg $ trace_arg $ metrics_arg)

(* --- the tuning service ----------------------------------------------------- *)

let socket_arg =
  Arg.(value & opt string "felix.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path of the tuning service.")

let with_client socket f =
  match Serve.Client.connect socket with
  | Error m ->
    Printf.eprintf "felix-tune: %s\n" m;
    exit 1
  | Ok c ->
    let finish () = Serve.Client.close c in
    (match f c with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let exit_client_error m =
  Printf.eprintf "felix-tune: %s\n" m;
  exit 1

let print_status j =
  let field k = Option.bind (Json.find j k) Json.as_string in
  let num k = Option.bind (Json.find j k) Json.as_float in
  Printf.printf "%s: %s"
    (Option.value ~default:"?" (field "id"))
    (Option.value ~default:"?" (field "state"));
  (match num "rounds" with
  | Some r when r > 0.0 -> Printf.printf " (round %.0f" r;
    (match num "latency_ms" with
    | Some l -> Printf.printf ", %.3f ms)" l
    | None -> Printf.printf ")")
  | _ -> ());
  (match field "error" with Some m -> Printf.printf " — %s" m | None -> ());
  print_newline ()

(* Fetch a finished job's result payload and persist it exactly as
   [tune -o] would: the artifact envelope and the bit-exact JSON writer
   make the file byte-identical to a local run of the same spec. *)
let write_result_artifact path payload =
  match
    Store.Artifact.save ~path ~kind:Export.result_kind ~version:Export.result_version
      payload
  with
  | Ok () -> Printf.printf "wrote %s\n" path
  | Error e -> exit_store_error path e

let serve_cmd =
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "workers" ] ~docv:"N" ~doc:"Worker domains running jobs in parallel.")
  in
  let queue_arg =
    Arg.(value & opt int 16
         & info [ "queue" ] ~docv:"N"
             ~doc:"Bounded queue capacity; submits beyond it are rejected as overloaded.")
  in
  let run socket workers queue pack_cache trace metrics =
    with_telemetry ~trace ~metrics @@ fun () ->
    match Serve.create ~workers ~queue_capacity:queue ?pack_cache ~socket () with
    | Error m ->
      Printf.eprintf "felix-tune: %s\n" m;
      exit 1
    | Ok srv ->
      Serve.handle_signals srv;
      Printf.printf "felix serve: listening on %s (%d workers, queue %d)\n%!" socket
        workers queue;
      Serve.run srv;
      Printf.printf "felix serve: drained\n"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the tuning service: accept jobs over a Unix-domain socket, run \
          them on a bounded worker pool, drain gracefully on SIGTERM.")
    Term.(const run $ socket_arg $ workers_arg $ queue_arg $ pack_cache_arg
          $ trace_arg $ metrics_arg)

let submit_cmd =
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Wall-clock deadline; the job stops (state expired) at the first \
                   round boundary past it.")
  in
  let wait_arg =
    Arg.(value & flag
         & info [ "wait" ] ~doc:"Block until the job reaches a terminal state.")
  in
  let result_out_arg =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"With $(b,--wait): write the finished job's result artifact to \
                   $(docv) (byte-identical to $(b,tune -o)'s JSON).")
  in
  let run net device rounds batch seed quick engine jobs gd_batch measure_timeout
      measure_retries chaos store_dir deadline socket wait out =
    (* The pack cache is daemon-side state (serve --pack-cache), not part of
       the job spec: submitted jobs share whatever cache the daemon mounts.
       The measurement policy *is* job state: it rides the spec codec. *)
    let measure =
      measure_of ~timeout:measure_timeout ~retries:measure_retries ~chaos ~seed
    in
    let spec =
      spec_of ~net ~device ~rounds ~batch ~seed ~quick ~engine ~jobs ~gd_batch
        ~measure ~deadline ~store_dir ~pack_cache:None
    in
    with_client socket @@ fun c ->
    match Serve.Client.submit c spec with
    | Error m -> exit_client_error m
    | Ok id ->
      Printf.printf "submitted %s\n%!" id;
      if wait then begin
        match Serve.Client.wait c id with
        | Error m -> exit_client_error m
        | Ok status ->
          print_status status;
          let state = Option.bind (Json.find status "state") Json.as_string in
          if state <> Some "done" then exit 1;
          match out with
          | None -> ()
          | Some path -> (
            match Serve.Client.result c id with
            | Error m -> exit_client_error m
            | Ok payload -> write_result_artifact path payload)
      end
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a tuning job to a running service.")
    Term.(const run $ network_arg $ device_arg $ rounds_arg $ batch_arg $ seed_arg
          $ quick_arg $ engine_arg $ jobs_arg $ gd_batch_arg $ measure_timeout_arg
          $ measure_retries_arg $ chaos_arg $ store_arg $ deadline_arg $ socket_arg
          $ wait_arg $ result_out_arg)

let job_id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB"
         ~doc:"Job id returned by submit.")

let status_cmd =
  let run id socket =
    with_client socket @@ fun c ->
    match Serve.Client.status c id with
    | Error m -> exit_client_error m
    | Ok j -> print_status j
  in
  Cmd.v (Cmd.info "status" ~doc:"Query a job's state on a running service.")
    Term.(const run $ job_id_arg $ socket_arg)

let result_cmd =
  let out_file_arg =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Write the result artifact to $(docv) instead of printing a summary.")
  in
  let run id socket out =
    with_client socket @@ fun c ->
    match Serve.Client.result c id with
    | Error m -> exit_client_error m
    | Ok payload -> (
      match out with
      | Some path -> write_result_artifact path payload
      | None ->
        (match Option.bind (Json.find payload "final_latency_ms") Json.as_float with
        | Some l -> Printf.printf "%s: final latency %.3f ms\n" id l
        | None -> print_endline (Json.to_string payload)))
  in
  Cmd.v (Cmd.info "result" ~doc:"Fetch a finished job's result from a running service.")
    Term.(const run $ job_id_arg $ socket_arg $ out_file_arg)

let cancel_cmd =
  let run id socket =
    with_client socket @@ fun c ->
    match Serve.Client.cancel c id with
    | Error m -> exit_client_error m
    | Ok j -> print_status j
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:
         "Cancel a job: a queued job stops immediately, a running one \
          checkpoints its store at the next round boundary and stops.")
    Term.(const run $ job_id_arg $ socket_arg)

let store_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
           ~doc:"Store directory written by tune --store.")
  in
  let stats_sub =
    let run dir =
      match Store.open_dir dir with
      | Error e -> exit_store_error dir e
      | Ok store ->
        let st = Store.stats store in
        let t = Table.create ~title:("store " ^ dir) ~header:[ "field"; "value" ] in
        Table.add_row t [ "records"; string_of_int st.Store.records ];
        Table.add_row t [ "failed measurements"; string_of_int st.Store.failures ];
        Table.add_row t [ "retried measurements"; string_of_int st.Store.retried ];
        Table.add_row t [ "runs started"; string_of_int st.Store.runs_started ];
        Table.add_row t [ "runs completed"; string_of_int st.Store.runs_completed ];
        Table.add_row t [ "devices"; String.concat ", " st.Store.devices ];
        Table.add_row t [ "tasks"; string_of_int st.Store.tasks ];
        Table.add_row t [ "journal bytes"; string_of_int st.Store.journal_bytes ];
        Table.add_row t
          [ "recovered bytes";
            (if st.Store.recovered_bytes > 0 then
               Printf.sprintf "%d (torn tail truncated)" st.Store.recovered_bytes
             else "0") ];
        Table.add_row t [ "checkpoint"; (if st.Store.has_checkpoint then "yes" else "no") ];
        Table.print t;
        Store.close store
    in
    Cmd.v (Cmd.info "stats" ~doc:"Summarize a store's journal and checkpoint.")
      Term.(const run $ dir_arg)
  in
  Cmd.group (Cmd.info "store" ~doc:"Inspect a durable tuning store.") [ stats_sub ]

let cache_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Pack-cache directory (as given to --pack-cache or \
                 FELIX_PACK_CACHE).")
  in
  let stats_sub =
    let run dir =
      let t =
        Table.create ~title:("pack cache " ^ dir) ~header:[ "field"; "value" ]
      in
      List.iter
        (fun (k, v) -> Table.add_row t [ k; string_of_int v ])
        (Pack.disk_cache_stats dir);
      (* Activity counters are process-lifetime; in this freshly started
         process they reflect only work done by this invocation. *)
      List.iter
        (fun (k, v) -> Table.add_row t [ k ^ " (this process)"; string_of_int v ])
        (Pack.disk_counters ());
      List.iter
        (fun (k, v) -> Table.add_row t [ "lru " ^ k ^ " (this process)"; string_of_int v ])
        (Pack.cache_stats ());
      Table.print t
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Show a pack cache's entry count and size, plus this process's \
               hit/miss/evict counters.")
      Term.(const run $ dir_arg)
  in
  let clear_sub =
    let yes_arg =
      Arg.(value & flag
           & info [ "yes" ] ~doc:"Confirm deletion; without it nothing is removed.")
    in
    let run dir yes =
      if not yes then begin
        Printf.eprintf
          "felix-tune: cache clear %s would delete its entries; re-run with --yes\n"
          dir;
        exit 1
      end
      else
        let n = Pack.clear_disk_cache dir in
        Printf.printf "removed %d cache entries from %s\n" n dir
    in
    Cmd.v
      (Cmd.info "clear"
         ~doc:"Delete every pack-* cache entry in the directory (needs --yes).")
      Term.(const run $ dir_arg $ yes_arg)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or clear a persistent compilation cache.")
    [ stats_sub; clear_sub ]

let inspect_cmd =
  let run net batch =
    let g = Workload.graph ~batch net in
    Printf.printf "%s\n\n" (Graph.summary g);
    let t =
      Table.create ~title:"tuning tasks"
        ~header:[ "task"; "x"; "MFLOPs"; "stages"; "sketches"; "variables"; "space size" ]
    in
    List.iter
      (fun (task : Partition.task) ->
        let scheds = Sketch.generate task.subgraph in
        let vars = List.map Schedule.num_vars scheds in
        let space =
          List.fold_left (fun acc s -> acc +. Schedule.space_size s) 0.0 scheds
        in
        Table.add_row t
          [ task.subgraph.Compute.sg_name; string_of_int task.weight;
            Printf.sprintf "%.1f" (Partition.task_flops task /. 1e6);
            string_of_int (List.length task.subgraph.Compute.stages);
            string_of_int (List.length scheds);
            String.concat "+" (List.map string_of_int vars);
            Printf.sprintf "%.2e" space ])
      (Partition.partition g);
    Table.print t
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Show a network's tuning tasks and search-space size.")
    Term.(const run $ network_arg $ batch_arg)

let compare_cmd =
  let run net device rounds quick jobs gd_batch =
    let g = Workload.graph net in
    let model = Felix.pretrained_cost_model device in
    let search = config_of_quick quick rounds in
    let rc =
      Tuning_config.(
        builder |> with_search search |> with_jobs jobs |> with_batch gd_batch)
    in
    let result =
      match Tuner.run rc device model g Tuner.Felix with
      | Ok r -> r
      | Error e ->
        Printf.eprintf "felix-tune: %s\n" (Tuner.error_message e);
        exit 1
    in
    let t = Table.create ~title:"latency comparison" ~header:[ "framework"; "latency"; "vs Felix" ] in
    let felix = result.Tuner.final_latency_ms in
    List.iter
      (fun fw ->
        if Frameworks.supported device fw net then
          match Frameworks.network_latency_ms device fw g with
          | Some l ->
            Table.add_row t [ Frameworks.name fw; Table.fmt_ms l; Table.fmt_speedup (l /. felix) ]
          | None -> Table.add_row t [ Frameworks.name fw; "-"; "-" ]
        else Table.add_row t [ Frameworks.name fw; "(unsupported)"; "-" ])
      Frameworks.all;
    Table.add_row t [ "Felix"; Table.fmt_ms felix; "1.00x" ];
    Table.print t
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare Felix against vendor frameworks.")
    Term.(const run $ network_arg $ device_arg $ rounds_arg $ quick_arg $ jobs_arg
          $ gd_batch_arg)

let devices_cmd =
  let run () =
    let t =
      Table.create ~title:"device models"
        ~header:[ "name"; "SMs"; "fp32 GFLOPS"; "DRAM GB/s"; "L2 KB"; "launch us" ]
    in
    List.iter
      (fun (d : Device.t) ->
        Table.add_row t
          [ d.device_name; string_of_int d.sms; Printf.sprintf "%.0f" d.fp32_gflops;
            Printf.sprintf "%.0f" d.dram_gbps; string_of_int d.l2_kb;
            Printf.sprintf "%.0f" d.launch_overhead_us ])
      Device.all;
    Table.print t
  in
  Cmd.v (Cmd.info "devices" ~doc:"List device models.") Term.(const run $ const ())

let stats_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
           ~doc:"JSONL trace written by tune --trace.")
  in
  let run file =
    let records = Telemetry.Trace.read_file file in
    if records = [] then begin
      Printf.eprintf "%s: no parseable trace records\n" file;
      exit 1
    end;
    let spans = List.filter (fun r -> r.Telemetry.r_kind = Telemetry.Span) records in
    let events = List.filter (fun r -> r.Telemetry.r_kind = Telemetry.Event) records in
    let metrics = List.filter (fun r -> r.Telemetry.r_kind = Telemetry.Metric) records in
    Printf.printf "%s: %d records (%d spans, %d events, %d metrics)\n\n" file
      (List.length records) (List.length spans) (List.length events) (List.length metrics);
    (* Span latency percentiles, grouped by span name. *)
    let by_name = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let h =
          match Hashtbl.find_opt by_name r.Telemetry.r_name with
          | Some h -> h
          | None ->
            let h = ref [] in
            Hashtbl.replace by_name r.Telemetry.r_name h;
            h
        in
        h := r.Telemetry.r_dur_ms :: !h)
      spans;
    let t =
      Table.create ~title:"span latencies (wall clock)"
        ~header:[ "span"; "count"; "p50 ms"; "p95 ms"; "p99 ms"; "total ms" ]
    in
    Hashtbl.fold (fun name durs acc -> (name, !durs) :: acc) by_name []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (name, durs) ->
           Table.add_row t
             [ name; string_of_int (List.length durs);
               Printf.sprintf "%.3f" (Stats.percentile 50.0 durs);
               Printf.sprintf "%.3f" (Stats.percentile 95.0 durs);
               Printf.sprintf "%.3f" (Stats.percentile 99.0 durs);
               Printf.sprintf "%.3f" (List.fold_left ( +. ) 0.0 durs) ]);
    Table.print t;
    (* Round-by-round story from the tuner.round spans. *)
    let rounds =
      List.filter (fun r -> r.Telemetry.r_name = "tuner.round") spans
      |> List.sort (fun a b -> compare a.Telemetry.r_ts_s b.Telemetry.r_ts_s)
    in
    (match rounds with
    | [] -> ()
    | first :: _ ->
      let attr = Telemetry.attr_float in
      let last = List.nth rounds (List.length rounds - 1) in
      let engine =
        Option.value ~default:"?" (Telemetry.attr_str first.Telemetry.r_attrs "engine")
      in
      let measured =
        List.fold_left
          (fun acc r ->
            acc + Option.value ~default:0 (Telemetry.attr_int r.Telemetry.r_attrs "measured"))
          0 rounds
      in
      let best_of r = attr r.Telemetry.r_attrs "best_ms" in
      Printf.printf "\nrounds: %d (engine %s, %d schedules measured)\n" (List.length rounds)
        engine measured;
      (match (best_of first, best_of last) with
      | Some b0, Some b1 ->
        Printf.printf "task best latency: %.4f ms -> %.4f ms\n" b0 b1
      | _ -> ());
      match attr last.Telemetry.r_attrs "sim_clock_end_s" with
      | Some sim ->
        let wall =
          List.fold_left (fun acc r -> acc +. r.Telemetry.r_dur_ms) 0.0 rounds /. 1000.0
        in
        Printf.printf "simulated tuning clock: %.0f s; wall clock in rounds: %.2f s\n" sim wall
      | None -> ());
    (* End-of-run metric snapshot lines, if the trace carries them. *)
    if metrics <> [] then begin
      let t = Table.create ~title:"metrics" ~header:[ "name"; "kind"; "value" ] in
      List.iter
        (fun r ->
          let kind =
            Option.value ~default:"?" (Telemetry.attr_str r.Telemetry.r_attrs "metric")
          in
          let value =
            match kind with
            | "counter" ->
              string_of_int (Option.value ~default:0 (Telemetry.attr_int r.Telemetry.r_attrs "value"))
            | "gauge" ->
              Printf.sprintf "%g"
                (Option.value ~default:0.0 (Telemetry.attr_float r.Telemetry.r_attrs "value"))
            | _ ->
              Printf.sprintf "n=%d p50=%.4g p95=%.4g p99=%.4g"
                (Option.value ~default:0 (Telemetry.attr_int r.Telemetry.r_attrs "count"))
                (Option.value ~default:0.0 (Telemetry.attr_float r.Telemetry.r_attrs "p50"))
                (Option.value ~default:0.0 (Telemetry.attr_float r.Telemetry.r_attrs "p95"))
                (Option.value ~default:0.0 (Telemetry.attr_float r.Telemetry.r_attrs "p99"))
          in
          Table.add_row t [ r.Telemetry.r_name; kind; value ])
        (List.sort (fun a b -> compare a.Telemetry.r_name b.Telemetry.r_name) metrics);
      Table.print t
    end
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Summarize a JSONL telemetry trace (p50/p95/p99 span times).")
    Term.(const run $ file_arg)

let () =
  let info = Cmd.info "felix-tune" ~doc:"Gradient-based tensor program optimisation (Felix)." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ tune_cmd; resume_cmd; serve_cmd; submit_cmd; status_cmd; result_cmd;
            cancel_cmd; inspect_cmd; compare_cmd; devices_cmd; stats_cmd; store_cmd;
            cache_cmd ]))
