(* felix-tune: command-line front end.

   Subcommands:
     tune     — tune one of the paper's networks on a device
     inspect  — print a network's tuning tasks and search-space statistics
     compare  — compare a tuned network against the vendor frameworks
     devices  — list device models *)

open Cmdliner

let network_conv =
  let parse s =
    let all =
      List.map (fun n -> (String.lowercase_ascii (Workload.network_name n), n))
        Workload.all_networks
    in
    match List.assoc_opt (String.lowercase_ascii s) all with
    | Some n -> Ok n
    | None ->
      Error (`Msg (Printf.sprintf "unknown network %S (known: %s)" s
                     (String.concat ", " (List.map fst all))))
  in
  Arg.conv (parse, fun fmt n -> Format.pp_print_string fmt (Workload.network_name n))

let device_conv =
  let parse s =
    match Felix.cuda s with
    | d -> Ok d
    | exception Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun fmt (d : Device.t) -> Format.pp_print_string fmt d.device_name)

let network_arg =
  Arg.(required & pos 0 (some network_conv) None & info [] ~docv:"NETWORK")

let device_arg =
  Arg.(value & opt device_conv Device.rtx_a5000 & info [ "device"; "d" ] ~docv:"DEVICE"
         ~doc:"Target GPU: a10g, rtx-a5000 or xavier-nx.")

let rounds_arg =
  Arg.(value & opt int 30 & info [ "rounds"; "r" ] ~doc:"Total tuning rounds.")

let batch_arg = Arg.(value & opt int 1 & info [ "batch"; "b" ] ~doc:"Inference batch size.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Search seed.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the reduced-effort search configuration.")

let engine_arg =
  let engine_conv = Arg.enum [ ("felix", Tuner.Felix); ("ansor", Tuner.Ansor); ("random", Tuner.Random) ] in
  Arg.(value & opt engine_conv Tuner.Felix
       & info [ "engine" ] ~doc:"Search engine: felix, ansor or random.")

let config_of_quick quick rounds =
  let base = if quick then Tuning_config.quick else Tuning_config.default in
  { base with Tuning_config.max_rounds = rounds }

let out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"PREFIX"
         ~doc:"Write PREFIX.csv (progress curve) and PREFIX.json (summary).")

let tune_cmd =
  let run net device rounds batch seed quick engine out =
    let g = Workload.graph ~batch net in
    Printf.printf "%s\n\n" (Graph.summary g);
    let model = Felix.pretrained_cost_model device in
    let result =
      Tuner.tune ~config:(config_of_quick quick rounds) ~seed device model g engine
    in
    Printf.printf "final latency: %.3f ms (%d measurements, %.0f simulated seconds)\n"
      result.Tuner.final_latency_ms result.Tuner.total_measurements
      (match List.rev result.Tuner.curve with p :: _ -> p.Tuner.time_s | [] -> 0.0);
    let t = Table.create ~title:"tasks" ~header:[ "subgraph"; "x"; "best ms"; "sketch" ] in
    List.iter
      (fun (tr : Tuner.task_result) ->
        Table.add_row t
          [ tr.task.Partition.subgraph.Compute.sg_name; string_of_int tr.task.Partition.weight;
            Table.fmt_ms tr.best_latency_ms; tr.best_sketch ])
      result.Tuner.tasks;
    Table.print t;
    match out with
    | None -> ()
    | Some prefix ->
      Export.write_curve_csv result (prefix ^ ".csv");
      Export.write_result_json result (prefix ^ ".json");
      Printf.printf "wrote %s.csv and %s.json\n" prefix prefix
  in
  Cmd.v (Cmd.info "tune" ~doc:"Tune a network's schedules for a device.")
    Term.(const run $ network_arg $ device_arg $ rounds_arg $ batch_arg $ seed_arg
          $ quick_arg $ engine_arg $ out_arg)

let inspect_cmd =
  let run net batch =
    let g = Workload.graph ~batch net in
    Printf.printf "%s\n\n" (Graph.summary g);
    let t =
      Table.create ~title:"tuning tasks"
        ~header:[ "task"; "x"; "MFLOPs"; "stages"; "sketches"; "variables"; "space size" ]
    in
    List.iter
      (fun (task : Partition.task) ->
        let scheds = Sketch.generate task.subgraph in
        let vars = List.map Schedule.num_vars scheds in
        let space =
          List.fold_left (fun acc s -> acc +. Schedule.space_size s) 0.0 scheds
        in
        Table.add_row t
          [ task.subgraph.Compute.sg_name; string_of_int task.weight;
            Printf.sprintf "%.1f" (Partition.task_flops task /. 1e6);
            string_of_int (List.length task.subgraph.Compute.stages);
            string_of_int (List.length scheds);
            String.concat "+" (List.map string_of_int vars);
            Printf.sprintf "%.2e" space ])
      (Partition.partition g);
    Table.print t
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Show a network's tuning tasks and search-space size.")
    Term.(const run $ network_arg $ batch_arg)

let compare_cmd =
  let run net device rounds quick =
    let g = Workload.graph net in
    let model = Felix.pretrained_cost_model device in
    let result =
      Tuner.tune ~config:(config_of_quick quick rounds) ~seed:0 device model g Tuner.Felix
    in
    let t = Table.create ~title:"latency comparison" ~header:[ "framework"; "latency"; "vs Felix" ] in
    let felix = result.Tuner.final_latency_ms in
    List.iter
      (fun fw ->
        if Frameworks.supported device fw net then
          match Frameworks.network_latency_ms device fw g with
          | Some l ->
            Table.add_row t [ Frameworks.name fw; Table.fmt_ms l; Table.fmt_speedup (l /. felix) ]
          | None -> Table.add_row t [ Frameworks.name fw; "-"; "-" ]
        else Table.add_row t [ Frameworks.name fw; "(unsupported)"; "-" ])
      Frameworks.all;
    Table.add_row t [ "Felix"; Table.fmt_ms felix; "1.00x" ];
    Table.print t
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare Felix against vendor frameworks.")
    Term.(const run $ network_arg $ device_arg $ rounds_arg $ quick_arg)

let devices_cmd =
  let run () =
    let t =
      Table.create ~title:"device models"
        ~header:[ "name"; "SMs"; "fp32 GFLOPS"; "DRAM GB/s"; "L2 KB"; "launch us" ]
    in
    List.iter
      (fun (d : Device.t) ->
        Table.add_row t
          [ d.device_name; string_of_int d.sms; Printf.sprintf "%.0f" d.fp32_gflops;
            Printf.sprintf "%.0f" d.dram_gbps; string_of_int d.l2_kb;
            Printf.sprintf "%.0f" d.launch_overhead_us ])
      Device.all;
    Table.print t
  in
  Cmd.v (Cmd.info "devices" ~doc:"List device models.") Term.(const run $ const ())

let () =
  let info = Cmd.info "felix-tune" ~doc:"Gradient-based tensor program optimisation (Felix)." in
  exit (Cmd.eval (Cmd.group info [ tune_cmd; inspect_cmd; compare_cmd; devices_cmd ]))
