(* Tests for lib/serve: the job codec, the daemon protocol, concurrent
   sessions, queue backpressure, deadlines, cooperative cancellation with
   bit-identical resume, and graceful drain. Each test runs a real daemon
   on a Unix socket in a temporary path, with the accept loop on a thread
   and the tuning jobs on the daemon's worker domains. *)

open Testutil

let quick = Tuning_config.quick

(* A lightweight cost model shared across the service tests: submitted
   jobs and direct [Tuner.run] calls must use the same weights for the
   bit-identity checks. *)
let shared_model =
  lazy
    (let rng = Rng.create 310 in
     let samples =
       Dataset.generate rng Device.rtx_a5000 ~schedules_per_task:50
         [ dense_sg (); conv_sg () ]
     in
     let ds = Dataset.split rng samples in
     let model, _ = Train.pretrain rng ~epochs:4 ~hidden:[ 48; 48 ] ds in
     model)

let search rounds = { quick with Tuning_config.max_rounds = rounds }

let spec ?(rounds = 4) ?(seed = 21) ?deadline_s ?store_dir () =
  { Serve.Job.network = Workload.Dcgan;
    inference_batch = 1;
    device = Device.rtx_a5000;
    engine = Tuner.Felix;
    run = Tuning_config.(builder |> with_search (search rounds) |> with_seed seed);
    deadline_s;
    store_dir }

let direct_result ?(rounds = 4) ?(seed = 21) () =
  let rc = Tuning_config.(builder |> with_search (search rounds) |> with_seed seed) in
  run_tuner rc Device.rtx_a5000 (Lazy.force shared_model) (Workload.graph Workload.Dcgan)
    Tuner.Felix

let fresh_dir () =
  let path = Filename.temp_file "felix_serve_store" "" in
  Sys.remove path;
  path

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* --- daemon / client harness ------------------------------------------------- *)

let with_server ?(workers = 2) ?(queue_capacity = 16) ?pack_cache f =
  let socket = Filename.temp_file "felix_serve" ".sock" in
  match
    Serve.create ~workers ~queue_capacity
      ~telemetry:(Telemetry.create ~enabled:true ())
      ~model_for:(fun _ -> Lazy.force shared_model)
      ?pack_cache ~socket ()
  with
  | Error m -> Alcotest.failf "Serve.create: %s" m
  | Ok srv ->
    let th = Thread.create Serve.run srv in
    Fun.protect
      ~finally:(fun () ->
        Serve.initiate_shutdown srv;
        Thread.join th)
      (fun () -> f srv socket)

let with_client socket f =
  match Serve.Client.connect socket with
  | Error m -> Alcotest.failf "Client.connect: %s" m
  | Ok c -> Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let unwrap what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let state_of j =
  match Option.bind (Json.find j "state") Json.as_string with
  | Some s -> s
  | None -> Alcotest.fail "status reply without a state"

let rounds_of j =
  match Option.bind (Json.find j "rounds") Json.as_int with Some r -> r | None -> 0

let is_terminal st = List.mem st [ "done"; "cancelled"; "expired"; "failed" ]

(* Poll [status] until [pred] holds or the job is terminal; returns the
   last status reply. *)
let poll_until c id pred =
  let rec loop () =
    let j = unwrap "status" (Serve.Client.status c id) in
    if pred j || is_terminal (state_of j) then j
    else begin
      Unix.sleepf 0.01;
      loop ()
    end
  in
  loop ()

(* --- job codec --------------------------------------------------------------- *)

let test_job_codec_roundtrip () =
  let s =
    { (spec ~rounds:7 ~seed:5 ()) with
      Serve.Job.deadline_s = Some 12.5;
      store_dir = Some "/tmp/some-store" }
  in
  match Serve.Job.of_json (Serve.Job.to_json s) with
  | Error m -> Alcotest.failf "of_json: %s" m
  | Ok s' ->
    Alcotest.(check bool) "network" true (s'.Serve.Job.network = Workload.Dcgan);
    Alcotest.(check int) "batch" 1 s'.Serve.Job.inference_batch;
    Alcotest.(check string) "device" "RTX A5000" s'.Serve.Job.device.Device.device_name;
    Alcotest.(check bool) "engine" true (s'.Serve.Job.engine = Tuner.Felix);
    Alcotest.(check bool) "deadline" true (s'.Serve.Job.deadline_s = Some 12.5);
    Alcotest.(check bool) "store" true (s'.Serve.Job.store_dir = Some "/tmp/some-store");
    (* the decoded spec re-encodes to the same bytes: the codec is stable *)
    Alcotest.(check string) "stable encoding"
      (Json.to_line (Serve.Job.to_json s))
      (Json.to_line (Serve.Job.to_json s'))

let test_job_codec_rejects () =
  let reject msg j =
    match Serve.Job.of_json j with
    | Ok _ -> Alcotest.failf "%s: accepted" msg
    | Error m ->
      Alcotest.(check bool) (msg ^ ": error mentions job") true (contains ~needle:"job" m)
  in
  let base = Serve.Job.to_json (spec ()) in
  let drop k =
    match base with
    | Json.Obj fields -> Json.Obj (List.remove_assoc k fields)
    | _ -> Alcotest.fail "spec did not encode to an object"
  in
  let set k v =
    match base with
    | Json.Obj fields -> Json.Obj ((k, v) :: List.remove_assoc k fields)
    | _ -> Alcotest.fail "spec did not encode to an object"
  in
  reject "missing network" (drop "network");
  reject "unknown network" (set "network" (Json.Str "alexnet"));
  reject "missing run" (drop "run");
  reject "unknown engine" (set "engine" (Json.Str "grid"));
  reject "bad deadline" (set "deadline_s" (Json.Num (-1.0)));
  reject "bad batch" (set "inference_batch" (Json.Num 0.))

let test_invocation_roundtrip () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      Unix.mkdir dir 0o755;
      let s = { (spec ~rounds:9 ~seed:3 ()) with Serve.Job.store_dir = Some dir } in
      (match Serve.Job.save_invocation s ~dir with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save_invocation: %s" (Store.error_message e));
      match Serve.Job.load_invocation ~dir with
      | Error e -> Alcotest.failf "load_invocation: %s" (Store.error_message e)
      | Ok s' ->
        (* the directory itself is the store; the record must not pin it *)
        Alcotest.(check bool) "store_dir cleared" true (s'.Serve.Job.store_dir = None);
        Alcotest.(check bool) "search survives" true
          (s'.Serve.Job.run.Tuning_config.search = s.Serve.Job.run.Tuning_config.search);
        Alcotest.(check int) "seed survives" s.Serve.Job.run.Tuning_config.seed
          s'.Serve.Job.run.Tuning_config.seed)

(* --- end-to-end: served result is bit-identical to a direct run -------------- *)

let test_submit_matches_direct () =
  with_server @@ fun _srv socket ->
  with_client socket @@ fun c ->
  let id = unwrap "submit" (Serve.Client.submit c (spec ())) in
  let final = unwrap "wait" (Serve.Client.wait c id) in
  Alcotest.(check string) "terminal state" "done" (state_of final);
  let payload = unwrap "result" (Serve.Client.result c id) in
  let direct = Export.result_json (direct_result ()) in
  Alcotest.(check string) "wire payload is bit-identical to the direct run"
    (Json.to_line direct) (Json.to_line payload)

let test_concurrent_clients () =
  with_server ~workers:2 @@ fun _srv socket ->
  with_client socket @@ fun c1 ->
  with_client socket @@ fun c2 ->
  (* Two sessions submit from separate connections; the two-worker pool
     runs them in parallel domains. *)
  let id1 = unwrap "submit 1" (Serve.Client.submit c1 (spec ~seed:71 ())) in
  let id2 = unwrap "submit 2" (Serve.Client.submit c2 (spec ~seed:72 ())) in
  Alcotest.(check bool) "distinct ids" true (id1 <> id2);
  (* Each client can also observe the other client's job. *)
  let s1 = unwrap "wait 1" (Serve.Client.wait c2 id1) in
  let s2 = unwrap "wait 2" (Serve.Client.wait c1 id2) in
  Alcotest.(check string) "job 1 done" "done" (state_of s1);
  Alcotest.(check string) "job 2 done" "done" (state_of s2);
  let stats = unwrap "stats" (Serve.Client.stats c1) in
  let n k =
    match Option.bind (Json.find stats k) Json.as_int with
    | Some v -> v
    | None -> Alcotest.failf "stats missing %s" k
  in
  Alcotest.(check int) "submitted" 2 (n "submitted");
  Alcotest.(check int) "completed" 2 (n "completed");
  Alcotest.(check int) "queue drained" 0 (n "queue_depth")

(* Two jobs over the same workload share the daemon's disk cache: the
   in-process LRU is cleared between them (as a daemon restart would), so
   the second job's packs must come from disk — observably (disk_hits
   grows) and bit-identically (same result bytes as a cache-less run). *)
let test_shared_pack_cache_across_jobs () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let baseline = Export.result_json (direct_result ()) in
  with_server ~workers:1 ~pack_cache:dir @@ fun _srv socket ->
  with_client socket @@ fun c ->
  let run_job () =
    Pack.clear_memory_cache ();
    let id = unwrap "submit" (Serve.Client.submit c (spec ())) in
    let final = unwrap "wait" (Serve.Client.wait c id) in
    Alcotest.(check string) "job done" "done" (state_of final);
    unwrap "result" (Serve.Client.result c id)
  in
  let p1 = run_job () in
  let hits_before = List.assoc "disk_hits" (Pack.disk_counters ()) in
  let p2 = run_job () in
  let hits_after = List.assoc "disk_hits" (Pack.disk_counters ()) in
  Alcotest.(check bool) "second job read the shared disk cache" true
    (hits_after > hits_before);
  Alcotest.(check bool) "cache populated on disk" true
    (List.assoc "entries" (Pack.disk_cache_stats dir) > 0);
  Alcotest.(check string) "both jobs byte-identical" (Json.to_line p1) (Json.to_line p2);
  Alcotest.(check string) "byte-identical to the cache-less run"
    (Json.to_line baseline) (Json.to_line p1)

(* --- backpressure ------------------------------------------------------------ *)

let test_queue_full_reject () =
  with_server ~workers:1 ~queue_capacity:1 @@ fun _srv socket ->
  with_client socket @@ fun c ->
  (* Occupy the single worker with a long job, then fill the one queue
     slot; the next submit must be rejected, not blocked. *)
  let running = unwrap "submit long" (Serve.Client.submit c (spec ~rounds:60 ~seed:81 ())) in
  let st = poll_until c running (fun j -> state_of j = "running") in
  Alcotest.(check string) "first job is running" "running" (state_of st);
  let queued = unwrap "submit queued" (Serve.Client.submit c (spec ~seed:82 ())) in
  (match Serve.Client.submit c (spec ~seed:83 ()) with
  | Ok id -> Alcotest.failf "expected overloaded, got job %s" id
  | Error m ->
    Alcotest.(check bool) "rejected with overloaded" true
      (String.length m >= 10 && String.sub m 0 10 = "overloaded"));
  let stats = unwrap "stats" (Serve.Client.stats c) in
  Alcotest.(check bool) "reject counted" true
    (Option.bind (Json.find stats "rejected") Json.as_int = Some 1);
  (* Cancel both so the harness drains quickly: the queued job resolves
     immediately, the running one at its next round boundary. *)
  let q = unwrap "cancel queued" (Serve.Client.cancel c queued) in
  Alcotest.(check string) "queued job cancels immediately" "cancelled" (state_of q);
  ignore (unwrap "cancel running" (Serve.Client.cancel c running));
  let final = unwrap "wait" (Serve.Client.wait c running) in
  Alcotest.(check string) "running job cancelled" "cancelled" (state_of final)

(* --- deadlines --------------------------------------------------------------- *)

let test_deadline_expiry () =
  with_server ~workers:1 @@ fun _srv socket ->
  with_client socket @@ fun c ->
  (* A job that would run for hundreds of rounds against a deadline of a
     fraction of a second: it must stop at the first round boundary past
     the deadline, not run to completion. *)
  let huge =
    { (spec ~rounds:500 ~seed:91 ()) with
      Serve.Job.run =
        Tuning_config.(
          builder
          |> with_search { (search 500) with Tuning_config.time_budget_s = 1e9 }
          |> with_seed 91);
      deadline_s = Some 0.15 }
  in
  let id = unwrap "submit" (Serve.Client.submit c huge) in
  let final = unwrap "wait" (Serve.Client.wait c id) in
  Alcotest.(check string) "expired" "expired" (state_of final);
  Alcotest.(check bool) "stopped early" true (rounds_of final < 500);
  match Serve.Client.result c id with
  | Ok _ -> Alcotest.fail "result of an expired job"
  | Error m ->
    Alcotest.(check bool) "not_done" true
      (String.length m >= 8 && String.sub m 0 8 = "not_done")

(* --- cancel, then resume bit-identically from the checkpointed store --------- *)

let test_cancel_then_resume_bit_identical () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      let job = { (spec ~rounds:6 ~seed:41 ()) with Serve.Job.store_dir = Some dir } in
      with_server ~workers:1 @@ fun _srv socket ->
      with_client socket @@ fun c ->
      let id = unwrap "submit" (Serve.Client.submit c job) in
      (* Let it checkpoint at least one round, then cancel mid-flight. *)
      let _ = poll_until c id (fun j -> rounds_of j >= 2) in
      ignore (unwrap "cancel" (Serve.Client.cancel c id));
      let halted = unwrap "wait" (Serve.Client.wait c id) in
      (* The cancel races round boundaries; on a slow machine the job may
         already have finished, which only makes the resume a no-op. *)
      Alcotest.(check bool) "cancelled (or already done)" true
        (List.mem (state_of halted) [ "cancelled"; "done" ]);
      (* Resubmitting the same spec resumes the store's checkpoint; the
         completed run must be bit-identical to a direct uninterrupted
         run of the same configuration. *)
      let id2 = unwrap "resubmit" (Serve.Client.submit c job) in
      let final = unwrap "wait resumed" (Serve.Client.wait c id2) in
      Alcotest.(check string) "resumed to done" "done" (state_of final);
      let payload = unwrap "result" (Serve.Client.result c id2) in
      let direct = Export.result_json (direct_result ~rounds:6 ~seed:41 ()) in
      Alcotest.(check string) "resumed result is bit-identical"
        (Json.to_line direct) (Json.to_line payload);
      (* The store recorded the invocation for the CLI's resume. *)
      match Serve.Job.load_invocation ~dir with
      | Error e -> Alcotest.failf "load_invocation: %s" (Store.error_message e)
      | Ok s ->
        Alcotest.(check int) "recorded seed" 41 s.Serve.Job.run.Tuning_config.seed)

(* --- protocol errors ---------------------------------------------------------- *)

let raw_request socket line =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let oc = Unix.out_channel_of_descr fd in
      output_string oc (line ^ "\n");
      flush oc;
      input_line (Unix.in_channel_of_descr fd))

let error_code reply =
  match Json.parse reply with
  | Error m -> Alcotest.failf "unparsable reply %S: %s" reply m
  | Ok j ->
    (match Option.bind (Json.find j "ok") Json.as_bool with
    | Some false -> ()
    | _ -> Alcotest.failf "expected an error reply, got %s" reply);
    (match Option.bind (Json.find j "error") Json.as_string with
    | Some c -> c
    | None -> Alcotest.failf "error reply without code: %s" reply)

let test_malformed_requests () =
  with_server @@ fun _srv socket ->
  Alcotest.(check string) "unparsable line" "parse" (error_code (raw_request socket "not json"));
  Alcotest.(check string) "missing verb" "bad_request"
    (error_code (raw_request socket {|{"x":1}|}));
  Alcotest.(check string) "unknown verb" "unknown_verb"
    (error_code (raw_request socket {|{"verb":"frobnicate"}|}));
  Alcotest.(check string) "submit without job" "bad_request"
    (error_code (raw_request socket {|{"verb":"submit"}|}));
  Alcotest.(check string) "submit with malformed job" "bad_request"
    (error_code (raw_request socket {|{"verb":"submit","job":{"network":"dcgan"}}|}));
  Alcotest.(check string) "status without id" "bad_request"
    (error_code (raw_request socket {|{"verb":"status"}|}));
  with_client socket @@ fun c ->
  match Serve.Client.status c "job9999" with
  | Ok _ -> Alcotest.fail "status of an unknown id"
  | Error m ->
    Alcotest.(check bool) "unknown_id" true
      (String.length m >= 10 && String.sub m 0 10 = "unknown_id");
    (* The daemon survives all of the above: a well-formed request still
       gets a well-formed answer on a fresh connection. *)
    let stats = unwrap "stats" (Serve.Client.stats c) in
    Alcotest.(check bool) "still serving" true
      (Option.bind (Json.find stats "workers") Json.as_int = Some 2)

(* --- lifecycle ---------------------------------------------------------------- *)

let test_create_rejects_bad_arguments () =
  (match Serve.create ~workers:0 ~socket:"/tmp/never.sock" () with
  | Ok _ -> Alcotest.fail "accepted workers = 0"
  | Error _ -> ());
  match Serve.create ~queue_capacity:0 ~socket:"/tmp/never.sock" () with
  | Ok _ -> Alcotest.fail "accepted queue capacity = 0"
  | Error _ -> ()

let test_live_socket_refused_and_drain_unlinks () =
  with_server (fun _srv socket ->
      (* A second daemon on the same socket must refuse, not steal it. *)
      (match Serve.create ~socket () with
      | Ok _ -> Alcotest.fail "bound a live socket"
      | Error m ->
        Alcotest.(check bool) "says in use" true (contains ~needle:"in use" m));
      (* The drain must observe the shutdown verb, not just the API. *)
      with_client socket (fun c -> ignore (unwrap "shutdown" (Serve.Client.shutdown c)));
      (* with_server's finally joins the accept thread. *)
      ());
  ()

let tests =
  [ Alcotest.test_case "job codec round-trip" `Quick test_job_codec_roundtrip;
    Alcotest.test_case "job codec rejects malformed specs" `Quick test_job_codec_rejects;
    Alcotest.test_case "invocation record round-trip" `Quick test_invocation_roundtrip;
    Alcotest.test_case "create rejects bad arguments" `Quick test_create_rejects_bad_arguments;
    Alcotest.test_case "served result bit-identical to direct run" `Slow
      test_submit_matches_direct;
    Alcotest.test_case "concurrent clients, two workers" `Slow test_concurrent_clients;
    Alcotest.test_case "jobs share the persistent pack cache" `Slow
      test_shared_pack_cache_across_jobs;
    Alcotest.test_case "bounded queue rejects when full" `Slow test_queue_full_reject;
    Alcotest.test_case "deadline expires a run mid-flight" `Slow test_deadline_expiry;
    Alcotest.test_case "cancel then resume is bit-identical" `Slow
      test_cancel_then_resume_bit_identical;
    Alcotest.test_case "malformed requests get error replies" `Slow test_malformed_requests;
    Alcotest.test_case "live socket refused; drain unlinks" `Slow
      test_live_socket_refused_and_drain_unlinks ]
