(* Shared helpers for the test suites. *)

let close ?(tol = 1e-6) a b =
  let denom = max 1.0 (max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. denom <= tol

let check_close ?(tol = 1e-6) msg expected actual =
  if not (close ~tol expected actual) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Property tests run against a fixed generator seed (overridable with
   QCHECK_SEED) so the tier-1 suite is deterministic: a loose numeric bound
   on a pathological random instance fails every run or none, instead of
   flaking once per few dozen CI runs. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (try int_of_string (String.trim s) with _ -> 0x5f3759df)
  | None -> 0x5f3759df

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    (QCheck2.Test.make ~count ~name gen prop)

(* --- random expression generator over a fixed variable set --------------- *)

let expr_vars = [ "a"; "b"; "c" ]

(* Random expressions whose evaluation stays numerically tame: leaves are
   positive constants or variables (bound to positive values in tests);
   log/sqrt/div are guarded by construction below. *)
let gen_expr : Expr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized_size (int_range 0 10)
  @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun f -> Expr.const (Float.abs f +. 0.1)) (float_bound_inclusive 10.0);
            map Expr.var (oneofl expr_vars) ]
      else begin
        let sub = self (n / 2) in
        oneof
          [ map2 Expr.add sub sub;
            map2 Expr.sub sub sub;
            map2 Expr.mul sub sub;
            map2 (fun a b -> Expr.div a (Expr.add (Expr.abs_ b) Expr.one)) sub sub;
            map2 Expr.min_ sub sub;
            map2 Expr.max_ sub sub;
            map (fun a -> Expr.neg a) sub;
            map (fun a -> Expr.sqrt_ (Expr.abs_ a)) sub;
            map (fun a -> Expr.log_ (Expr.add (Expr.abs_ a) Expr.one)) sub;
            map3 (fun c a b -> Expr.select (Expr.gt c Expr.zero) a b) sub sub sub ]
      end)

let gen_env : (string * float) list QCheck2.Gen.t =
  let open QCheck2.Gen in
  map3
    (fun a b c -> [ ("a", 0.1 +. Float.abs a); ("b", 0.1 +. Float.abs b); ("c", 0.1 +. Float.abs c) ])
    (float_bound_inclusive 20.0) (float_bound_inclusive 20.0) (float_bound_inclusive 20.0)

let eval_at bindings e = Eval.eval (Eval.env_of_list bindings) e

(* A small dense subgraph reused across many suites. *)
let dense_sg () = Compute.lower ~name:"dense" (Op.Dense { batch = 32; in_dim = 128; out_dim = 256 })

let conv_sg () =
  Compute.lower ~name:"conv"
    (Op.Conv2d
       { batch = 1; in_chan = 32; out_chan = 64; in_h = 14; in_w = 14; kernel_h = 3;
         kernel_w = 3; stride = 1; pad = 1; groups = 1 })

let sample_valid rng pack =
  match Dataset.sample_valid_point rng pack 200 with
  | Some y -> y
  | None -> Alcotest.fail "could not sample a valid schedule point"

(* --- FELIX_JOBS -------------------------------------------------------------

   CI runs the suites twice, with FELIX_JOBS=1 and FELIX_JOBS=4. With jobs
   > 1 a shared domain pool is threaded into the tuning tests; every
   assertion must hold unchanged because parallel runs are bit-identical. *)

let jobs =
  match Sys.getenv_opt "FELIX_JOBS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let shared_runtime =
  lazy (if jobs > 1 then Some (Runtime.create ~domains:jobs ()) else None)

let runtime () = Lazy.force shared_runtime

(* Attach the FELIX_JOBS runtime (if any) to a tuning run configuration. *)
let with_test_runtime rc =
  match runtime () with
  | Some rt -> Tuning_config.with_runtime rt rc
  | None -> rc

(* Unwrap the typed tuner results; a configuration error in a test is a
   test bug, not a scenario under test. *)
let run_tuner rc device model graph engine =
  match Tuner.run rc device model graph engine with
  | Ok r -> r
  | Error e -> Alcotest.failf "Tuner.run: %s" (Tuner.error_message e)

let run_tuner_single rc ~rounds device model sg engine =
  match Tuner.run_single rc ~rounds device model sg engine with
  | Ok r -> r
  | Error e -> Alcotest.failf "Tuner.run_single: %s" (Tuner.error_message e)
