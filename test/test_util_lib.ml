(* Tests for lib/util: Rng, Stats, Table, Toposort. *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Rng.uniform a = Rng.uniform b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let va = List.init 8 (fun _ -> Rng.uniform a) in
  let vb = List.init 8 (fun _ -> Rng.uniform b) in
  Alcotest.(check bool) "different seeds differ" false (va = vb)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "Rng.int out of bounds: %d" v
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_uniform_range () =
  let rng = Rng.create 3 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let u = Rng.uniform rng in
    if u < 0.0 || u >= 1.0 then Alcotest.failf "uniform out of [0,1): %f" u;
    sum := !sum +. u
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.02 then Alcotest.failf "uniform mean suspicious: %f" mean

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng) in
  let m = Stats.mean xs and s = Stats.stddev xs in
  if Float.abs m > 0.03 then Alcotest.failf "gaussian mean %f" m;
  if Float.abs (s -. 1.0) > 0.03 then Alcotest.failf "gaussian std %f" s

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let va = List.init 8 (fun _ -> Rng.uniform a) in
  let vb = List.init 8 (fun _ -> Rng.uniform b) in
  Alcotest.(check bool) "split streams differ" false (va = vb)

let test_sample_without_replacement () =
  let rng = Rng.create 13 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Rng.sample_without_replacement rng 8 arr in
  Alcotest.(check int) "size" 8 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Array.iteri
    (fun i v -> if i > 0 && sorted.(i - 1) = v then Alcotest.fail "duplicate element")
    sorted

let test_stats_basics () =
  Testutil.check_close "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  Testutil.check_close "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0; 2.0 ]);
  Testutil.check_close "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Testutil.check_close "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Testutil.check_close "p0" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  Testutil.check_close "p100" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ]);
  Testutil.check_close "stddev" (sqrt 2.0) (Stats.stddev [ 1.0; 3.0; 1.0; 3.0 ] *. sqrt 2.0);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min_max" (1.0, 3.0)
    (Stats.min_max [ 2.0; 1.0; 3.0 ])

let test_stats_empty () =
  Testutil.check_close "mean []" 0.0 (Stats.mean []);
  Testutil.check_close "geomean []" 0.0 (Stats.geomean []);
  Alcotest.check_raises "min_max []" (Invalid_argument "Stats.min_max: empty list") (fun () ->
      ignore (Stats.min_max []))

let test_stats_argmin_argmax () =
  Alcotest.(check int) "argmin" 3 (Stats.argmin (fun x -> float_of_int ((x - 3) * (x - 3))) [ 1; 2; 3; 4 ]);
  Alcotest.(check int) "argmax" 4 (Stats.argmax float_of_int [ 1; 2; 3; 4 ])

let test_stats_clamp () =
  Testutil.check_close "below" 1.0 (Stats.clamp ~lo:1.0 ~hi:2.0 0.0);
  Testutil.check_close "above" 2.0 (Stats.clamp ~lo:1.0 ~hi:2.0 3.0);
  Testutil.check_close "inside" 1.5 (Stats.clamp ~lo:1.0 ~hi:2.0 1.5)

let test_spearman_perfect () =
  let x = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Testutil.check_close "self" 1.0 (Stats.spearman x x);
  Testutil.check_close "reverse" (-1.0) (Stats.spearman x [| 5.0; 4.0; 3.0; 2.0; 1.0 |])

let test_spearman_monotone_invariant =
  Testutil.qtest "spearman invariant under monotone transform"
    QCheck2.Gen.(list_size (int_range 5 30) (float_bound_inclusive 100.0))
    (fun xs ->
      let xs = List.map (fun x -> x +. 0.001 *. float_of_int (Hashtbl.hash x mod 1000)) xs in
      QCheck2.assume (List.length (List.sort_uniq compare xs) = List.length xs);
      let x = Array.of_list xs in
      let y = Array.map (fun v -> exp (v /. 50.0)) x in
      Testutil.close ~tol:1e-9 1.0 (Stats.spearman x y))

let test_toposort_chain () =
  Alcotest.(check (list int)) "chain" [ 0; 1; 2; 3 ]
    (Toposort.sort ~num_nodes:4 ~edges:[ (0, 1); (1, 2); (2, 3) ])

let test_toposort_respects_edges () =
  let edges = [ (3, 1); (1, 0); (3, 0); (2, 0) ] in
  let order = Toposort.sort ~num_nodes:4 ~edges in
  let pos = Array.make 4 0 in
  List.iteri (fun i n -> pos.(n) <- i) order;
  List.iter
    (fun (s, d) -> if pos.(s) >= pos.(d) then Alcotest.failf "edge %d->%d violated" s d)
    edges

let test_toposort_cycle () =
  Alcotest.(check bool) "cycle detected" false
    (Toposort.is_dag ~num_nodes:3 ~edges:[ (0, 1); (1, 2); (2, 0) ]);
  Alcotest.(check bool) "dag ok" true (Toposort.is_dag ~num_nodes:3 ~edges:[ (0, 1); (1, 2) ])

let test_toposort_random =
  Testutil.qtest "random DAG edges respected"
    QCheck2.Gen.(pair (int_range 2 20) (list_size (int_range 0 40) (pair (int_bound 19) (int_bound 19))))
    (fun (n, raw_edges) ->
      (* Forward-orient the random pairs so the graph is a DAG. *)
      let edges =
        List.filter_map
          (fun (a, b) ->
            let a = a mod n and b = b mod n in
            if a < b then Some (a, b) else if b < a then Some (b, a) else None)
          raw_edges
      in
      let order = Toposort.sort ~num_nodes:n ~edges in
      let pos = Array.make n 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.length order = n && List.for_all (fun (s, d) -> pos.(s) < pos.(d)) edges)

let test_table_render () =
  let t = Table.create ~title:"demo" ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_separator t;
  Table.add_row t [ "333" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "contains cell" true (Testutil.contains ~needle:"333" s)

let test_table_formats () =
  Alcotest.(check string) "ms" "1.234 ms" (Table.fmt_ms 1.234);
  Alcotest.(check string) "speedup" "2.25x" (Table.fmt_speedup 2.25);
  Alcotest.(check string) "speedup dash" "-" (Table.fmt_speedup 0.0);
  Alcotest.(check string) "seconds" "416 s" (Table.fmt_seconds 416.2)

let tests =
  [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng int bounds (regression: 63-bit overflow)" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int rejects nonpositive" `Quick test_rng_int_rejects_nonpositive;
    Alcotest.test_case "rng uniform range and mean" `Quick test_rng_uniform_range;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "rng shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats empty inputs" `Quick test_stats_empty;
    Alcotest.test_case "stats argmin/argmax" `Quick test_stats_argmin_argmax;
    Alcotest.test_case "stats clamp" `Quick test_stats_clamp;
    Alcotest.test_case "spearman perfect correlations" `Quick test_spearman_perfect;
    test_spearman_monotone_invariant;
    Alcotest.test_case "toposort chain" `Quick test_toposort_chain;
    Alcotest.test_case "toposort respects edges" `Quick test_toposort_respects_edges;
    Alcotest.test_case "toposort cycle detection" `Quick test_toposort_cycle;
    test_toposort_random;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table formats" `Quick test_table_formats ]

(* --- json parser/writer ------------------------------------------------------ *)

let ok = function Ok j -> j | Error e -> Alcotest.failf "parse error: %s" e

let test_json_parse_scalars () =
  Alcotest.(check bool) "null" true (Json.parse "null" = Ok Json.Null);
  Alcotest.(check bool) "true" true (Json.parse " true " = Ok (Json.Bool true));
  Alcotest.(check bool) "int" true (Json.parse "42" = Ok (Json.Num 42.0));
  Alcotest.(check bool) "neg exp" true (Json.parse "-1.5e3" = Ok (Json.Num (-1500.0)));
  Alcotest.(check bool) "string" true (Json.parse "\"hi\"" = Ok (Json.Str "hi"));
  Alcotest.(check bool) "nested" true
    (Json.parse "{\"a\":[1,{\"b\":null}]}"
    = Ok (Json.Obj [ ("a", Json.List [ Json.Num 1.0; Json.Obj [ ("b", Json.Null) ] ]) ]))

let test_json_parse_escapes () =
  (* RFC 8259 escapes, including \uXXXX and surrogate pairs -> UTF-8. *)
  Alcotest.(check bool) "simple escapes" true
    (Json.parse {|"a\"b\\c\/d\b\f\n\r\t"|} = Ok (Json.Str "a\"b\\c/d\b\012\n\r\t"));
  Alcotest.(check bool) "bmp escape" true
    (Json.parse {|"caf\u00e9"|} = Ok (Json.Str "caf\xc3\xa9"));
  Alcotest.(check bool) "ascii escape" true
    (Json.parse {|"\u0041"|} = Ok (Json.Str "A"));
  Alcotest.(check bool) "3-byte utf8" true
    (Json.parse {|"\u20ac"|} = Ok (Json.Str "\xe2\x82\xac"));
  Alcotest.(check bool) "surrogate pair" true
    (Json.parse {|"\ud83d\ude00"|} = Ok (Json.Str "\xf0\x9f\x98\x80"))

let test_json_parse_rejects () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
  in
  bad "";
  bad "{";
  bad "[1,2";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "nul";
  bad "1 2";          (* trailing input *)
  bad "\"a\nb\"";     (* unescaped control character *)
  bad "\"\\ud83d\"";  (* unpaired high surrogate *)
  bad "\"\\ude00\"";  (* lone low surrogate *)
  bad "\"\\x41\"";    (* unknown escape *)
  bad "{\"a\":}";
  bad "01"            (* leading zero *)

let test_json_escape_writer () =
  Alcotest.(check string) "control chars as \\u" "\"\\u0001\\u001f\""
    (Json.to_string (Json.Str "\x01\x1f"));
  Alcotest.(check string) "quote backslash newline" "\"a\\\"b\\\\c\\n\""
    (Json.to_string (Json.Str "a\"b\\c\n"))

let test_json_number_bits () =
  (* The writer emits shortest-round-trip numbers: every finite float
     survives a print/parse cycle bit-exactly. *)
  List.iter
    (fun v ->
      match ok (Json.parse (Json.to_string (Json.Num v))) with
      | Json.Num v' ->
        if Int64.bits_of_float v <> Int64.bits_of_float v' then
          Alcotest.failf "float %h did not round-trip (got %h)" v v'
      | _ -> Alcotest.fail "not a number")
    [ 0.0; -0.0; 0.1; 1.0 /. 3.0; Float.pi; 1e-308; 4.9e-324;
      1.7976931348623157e308; -2.5e-15; 123456789.123456789 ]

let json_gen =
  let open QCheck2.Gen in
  let str_g = string_size ~gen:(map Char.chr (int_range 0 127)) (int_range 0 10) in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun f -> Json.Num f) (float_range (-1e12) 1e12);
        map (fun s -> Json.Str s) str_g ]
  in
  sized_size (int_range 0 4)
  @@ QCheck2.Gen.fix (fun self n ->
         if n <= 0 then scalar
         else
           oneof
             [ scalar;
               map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n - 1)));
               map
                 (fun kvs -> Json.Obj kvs)
                 (list_size (int_range 0 4) (pair str_g (self (n - 1)))) ])

let test_json_roundtrip_pretty =
  Testutil.qtest ~count:300 "json parse (to_string j) = j" json_gen (fun j ->
      Json.parse (Json.to_string j) = Ok j)

let test_json_roundtrip_line =
  Testutil.qtest ~count:300 "json parse (to_line j) = j" json_gen (fun j ->
      Json.parse (Json.to_line j) = Ok j)

let tests =
  tests
  @ [ Alcotest.test_case "json parse scalars" `Quick test_json_parse_scalars;
      Alcotest.test_case "json parse escapes (RFC 8259)" `Quick test_json_parse_escapes;
      Alcotest.test_case "json parse rejects malformed input" `Quick test_json_parse_rejects;
      Alcotest.test_case "json writer escapes" `Quick test_json_escape_writer;
      Alcotest.test_case "json numbers round-trip bit-exactly" `Quick test_json_number_bits;
      test_json_roundtrip_pretty;
      test_json_roundtrip_line ]
