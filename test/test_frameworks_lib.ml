(* Tests for lib/frameworks and the public Felix API (lib/core). *)

open Testutil

let test_names () =
  Alcotest.(check (list string)) "names" [ "PyTorch"; "TensorFlow"; "TensorRT" ]
    (List.map Frameworks.name Frameworks.all)

let test_kernel_baseline_cached () =
  let sg = dense_sg () in
  let a = Frameworks.kernel_baseline_ms Device.rtx_a5000 sg in
  let b = Frameworks.kernel_baseline_ms Device.rtx_a5000 sg in
  check_close "cached & deterministic" a b;
  Alcotest.(check bool) "positive" true (a > 0.0 && Float.is_finite a)

let test_operator_latencies_positive () =
  List.iter
    (fun (opname, op) ->
      List.iter
        (fun fw ->
          let l = Frameworks.operator_latency_ms Device.rtx_a5000 fw op in
          if not (Float.is_finite l && l > 0.0) then
            Alcotest.failf "%s on %s: %.4f" opname (Frameworks.name fw) l)
        Frameworks.all)
    Workload.single_operators

let test_conv3d_library_advantage () =
  (* Section 6.3: vendor libraries beat the search on 3-D convolution. *)
  let conv3d = List.assoc "Conv3d" Workload.single_operators in
  let sg = Compute.lower ~name:"c3d" conv3d in
  let baseline = Frameworks.kernel_baseline_ms Device.rtx_a5000 sg in
  let pt = Frameworks.operator_latency_ms Device.rtx_a5000 Frameworks.Pytorch conv3d in
  Alcotest.(check bool) "pytorch conv3d beats search baseline" true (pt < baseline)

let test_small_op_library_disadvantage () =
  let softmax = List.assoc "Softmax" Workload.single_operators in
  let sg = Compute.lower ~name:"sm" softmax in
  let baseline = Frameworks.kernel_baseline_ms Device.rtx_a5000 sg in
  let pt = Frameworks.operator_latency_ms Device.rtx_a5000 Frameworks.Pytorch softmax in
  Alcotest.(check bool) "softmax slower in library" true (pt > baseline)

let test_tensorrt_generally_fastest () =
  let dense = List.assoc "Dense" Workload.single_operators in
  let trt = Frameworks.operator_latency_ms Device.rtx_a5000 Frameworks.Tensorrt dense in
  let pt = Frameworks.operator_latency_ms Device.rtx_a5000 Frameworks.Pytorch dense in
  Alcotest.(check bool) "TRT <= PyTorch" true (trt < pt)

let test_supported_matrix () =
  (* The paper's failing configurations (Section 6.1). *)
  Alcotest.(check bool) "LLaMA not on TensorFlow" false
    (Frameworks.supported Device.rtx_a5000 Frameworks.Tensorflow Workload.Llama);
  Alcotest.(check bool) "LLaMA segfaults on TensorRT" false
    (Frameworks.supported Device.rtx_a5000 Frameworks.Tensorrt Workload.Llama);
  Alcotest.(check bool) "LLaMA OOM on Xavier" false
    (Frameworks.supported Device.xavier_nx Frameworks.Pytorch Workload.Llama);
  Alcotest.(check bool) "ViT OOM on Xavier TensorFlow" false
    (Frameworks.supported Device.xavier_nx Frameworks.Tensorflow Workload.Vit_b32);
  Alcotest.(check bool) "ResNet fine everywhere" true
    (Frameworks.supported Device.xavier_nx Frameworks.Tensorrt Workload.Resnet50);
  Alcotest.(check bool) "LLaMA on PyTorch desktop" true
    (Frameworks.supported Device.rtx_a5000 Frameworks.Pytorch Workload.Llama)

let test_network_latency () =
  let g = Workload.graph Workload.Dcgan in
  List.iter
    (fun fw ->
      match Frameworks.network_latency_ms Device.rtx_a5000 fw g with
      | Some l -> Alcotest.(check bool) "positive" true (l > 0.0 && Float.is_finite l)
      | None -> Alcotest.fail "expected latency")
    Frameworks.all

(* --- public Felix API ----------------------------------------------------------- *)

let test_cuda_device_parsing () =
  Alcotest.(check string) "a10g" "A10G" (Felix.cuda "a10g").Device.device_name;
  Alcotest.(check string) "a5000" "RTX A5000" (Felix.cuda "rtx-a5000").Device.device_name;
  Alcotest.(check string) "xavier" "Xavier NX" (Felix.cuda "xavier-nx").Device.device_name;
  (* the raising wrapper and the result API agree on the error text *)
  let expected = Device.unknown_device_message "h100" in
  (match Device.of_name "h100" with
  | Ok _ -> Alcotest.fail "of_name accepted an unknown device"
  | Error msg -> Alcotest.(check string) "of_name error text" expected msg);
  match Felix.cuda "h100" with
  | _ -> Alcotest.fail "Felix.cuda accepted an unknown device"
  | exception Invalid_argument msg ->
    Alcotest.(check string) "cuda raises the same text" expected msg

let test_extract_subgraphs () =
  let sgs = Felix.extract_subgraphs (Workload.graph Workload.Dcgan) in
  Alcotest.(check int) "DCGAN tasks" 5 (Felix.num_tasks sgs);
  Alcotest.(check bool) "description mentions tconv" true
    (contains ~needle:"tconv2d" (Felix.describe_subgraphs sgs))

let test_end_to_end_api () =
  (* The Figure 5 workflow, on the smallest network with a quick config. *)
  let device = Felix.cuda "a5000" in
  let dnn = Workload.graph Workload.Dcgan in
  let graphs = Felix.extract_subgraphs dnn in
  let rng = Rng.create 200 in
  let samples =
    Dataset.generate rng device ~schedules_per_task:40 [ dense_sg (); conv_sg () ]
  in
  let ds = Dataset.split rng samples in
  let cost_model, _ = Train.pretrain rng ~epochs:4 ~hidden:[ 48; 48 ] ds in
  let opt = Felix.Optimizer.create ~config:Tuning_config.quick ~seed:1 graphs cost_model device in
  let save = Filename.temp_file "felix_res" ".json" in
  let res =
    match Felix.Optimizer.optimize_all opt ~n_total_rounds:6 ~save_res:save () with
    | Ok r -> r
    | Error e -> Alcotest.failf "optimize_all: %s" (Tuner.error_message e)
  in
  Alcotest.(check bool) "tuning produced a latency" true
    (Float.is_finite res.Tuner.final_latency_ms);
  let compiled = Felix.Optimizer.compile_with_best_configs opt in
  check_close "compiled latency matches" res.Tuner.final_latency_ms
    (Felix.Compiled.latency_ms compiled);
  Alcotest.(check int) "schedules per task" 5 (List.length (Felix.Compiled.best_schedules compiled));
  (* save / reload a compiled module through the versioned artifact *)
  let path = Filename.temp_file "felix_compiled" ".json" in
  (match Felix.Compiled.save_file compiled path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compiled save: %s" (Felix.Store.error_message e));
  (match Felix.Compiled.load_file path with
  | Ok c2 ->
    Alcotest.(check bool) "compiled roundtrip is bit-exact" true
      (Int64.bits_of_float (Felix.Compiled.latency_ms compiled)
      = Int64.bits_of_float (Felix.Compiled.latency_ms c2));
    Alcotest.(check bool) "schedules round-trip" true
      (Felix.Compiled.best_schedules compiled = Felix.Compiled.best_schedules c2)
  | Error e -> Alcotest.failf "compiled load: %s" (Felix.Store.error_message e));
  (match Felix.Compiled.load_file "/nonexistent/compiled.json" with
  | Error (Felix.Store.Not_found _) -> ()
  | Error e -> Alcotest.failf "expected Not_found, got %s" (Felix.Store.error_message e)
  | Ok _ -> Alcotest.fail "loaded a missing file");
  Sys.remove path;
  (* reload the optimizer result from the saved file *)
  let c3 = Felix.Optimizer.compile_with_best_configs ~configs_file:save opt in
  check_close "configs file roundtrip" res.Tuner.final_latency_ms (Felix.Compiled.latency_ms c3);
  Sys.remove save;
  (* run returns a noisy latency near the compiled one *)
  let measured = Felix.Compiled.run compiled in
  Alcotest.(check bool) "run close to latency" true
    (Float.abs (measured -. Felix.Compiled.latency_ms compiled)
     /. Felix.Compiled.latency_ms compiled
    < 0.2)

let test_compile_before_optimize_fails () =
  let device = Felix.cuda "a5000" in
  let graphs = Felix.extract_subgraphs (Workload.graph Workload.Dcgan) in
  let rng = Rng.create 201 in
  let model = Mlp.create rng ~hidden:[ 8 ] ~n_inputs:82 () in
  let opt = Felix.Optimizer.create graphs model device in
  Alcotest.(check bool) "fails before optimize_all" true
    (try
       ignore (Felix.Optimizer.compile_with_best_configs opt);
       false
     with Failure _ -> true)

let tests =
  [ Alcotest.test_case "framework names" `Quick test_names;
    Alcotest.test_case "kernel baseline cached" `Slow test_kernel_baseline_cached;
    Alcotest.test_case "operator latencies positive" `Slow test_operator_latencies_positive;
    Alcotest.test_case "conv3d: libraries win (paper 6.3)" `Slow test_conv3d_library_advantage;
    Alcotest.test_case "softmax: libraries lose" `Slow test_small_op_library_disadvantage;
    Alcotest.test_case "TensorRT fastest library" `Slow test_tensorrt_generally_fastest;
    Alcotest.test_case "supported matrix matches paper" `Quick test_supported_matrix;
    Alcotest.test_case "network latency under frameworks" `Slow test_network_latency;
    Alcotest.test_case "Felix.cuda device parsing" `Quick test_cuda_device_parsing;
    Alcotest.test_case "Felix.extract_subgraphs" `Quick test_extract_subgraphs;
    Alcotest.test_case "Figure 5 end-to-end workflow" `Slow test_end_to_end_api;
    Alcotest.test_case "compile before optimize fails" `Quick test_compile_before_optimize_fails ]
