(* Tests for lib/runtime: domain pool, parallel_map, LRU cache, RNG
   splitting, and the tuner's cross-domain determinism guarantee. *)

open Testutil

(* Shared pools, reused across tests (shutdown is exercised on private
   runtimes only). *)
let rt2 = lazy (Runtime.create ~domains:2 ())
let rt4 = lazy (Runtime.create ~domains:4 ())

let runtimes () =
  [ (1, Runtime.sequential ()); (2, Lazy.force rt2); (4, Lazy.force rt4) ]

let test_parallel_map_matches_map =
  qtest ~count:40 "parallel_map = Array.map for pure f (domains 1, 2, 4)"
    QCheck2.Gen.(list_size (int_range 0 300) int)
    (fun xs ->
      let a = Array.of_list xs in
      let f x = (x * 1664525) + 1013904223 in
      let expect = Array.map f a in
      List.for_all (fun (_, rt) -> Runtime.parallel_map rt f a = expect) (runtimes ()))

let test_parallel_mapi () =
  let a = Array.init 257 (fun i -> i * 3) in
  let f i x = (i, x + 1) in
  List.iter
    (fun (k, rt) ->
      Alcotest.(check bool)
        (Printf.sprintf "mapi at %d domains" k)
        true
        (Runtime.parallel_mapi rt f a = Array.mapi f a))
    (runtimes ())

let test_map_list_preserves_order () =
  let xs = List.init 100 (fun i -> i) in
  let rt = Lazy.force rt4 in
  Alcotest.(check (list int)) "order preserved" (List.map succ xs)
    (Runtime.map_list rt succ xs)

exception Boom of int

let test_exception_propagates () =
  let rt = Lazy.force rt4 in
  let a = Array.init 200 Fun.id in
  (match Runtime.parallel_map rt (fun x -> if x = 137 then raise (Boom x) else x) a with
  | _ -> Alcotest.fail "expected Boom to re-raise at the join"
  | exception Boom 137 -> ());
  (* the pool survives the exception *)
  Alcotest.(check bool) "pool usable after exception" true
    (Runtime.parallel_map rt succ a = Array.map succ a)

let test_nested_map_falls_back () =
  let rt = Lazy.force rt4 in
  let a = Array.init 8 Fun.id in
  let inner = Array.init 50 Fun.id in
  let nested x = Array.fold_left ( + ) x (Runtime.parallel_map rt succ inner) in
  Alcotest.(check bool) "nested maps degrade without deadlock" true
    (Runtime.parallel_map rt nested a = Array.map nested a)

let test_shutdown_idempotent () =
  let rt = Runtime.create ~domains:3 () in
  let a = Array.init 64 Fun.id in
  Alcotest.(check bool) "works before shutdown" true
    (Runtime.parallel_map rt succ a = Array.map succ a);
  Runtime.shutdown rt;
  Runtime.shutdown rt;
  Alcotest.(check bool) "sequential after shutdown" true
    (Runtime.parallel_map rt succ a = Array.map succ a)

let test_with_runtime_cleans_up () =
  let out =
    Runtime.with_runtime ~domains:2 (fun rt ->
        Runtime.parallel_map rt (fun x -> x * x) (Array.init 33 Fun.id))
  in
  Alcotest.(check bool) "result correct" true (out = Array.init 33 (fun i -> i * i));
  match
    Runtime.with_runtime ~domains:2 (fun _ -> failwith "escape")
  with
  | _ -> Alcotest.fail "expected escape"
  | exception Failure _ -> ()

(* --- LRU -------------------------------------------------------------------- *)

let test_lru_semantics () =
  let c : (string, int) Runtime.Lru.t = Runtime.Lru.create ~capacity:3 () in
  Alcotest.(check int) "capacity" 3 (Runtime.Lru.capacity c);
  Runtime.Lru.add c "a" 1;
  Runtime.Lru.add c "b" 2;
  Runtime.Lru.add c "c" 3;
  Alcotest.(check (option int)) "hit a" (Some 1) (Runtime.Lru.find_opt c "a");
  (* "b" is now least recently used; adding "d" evicts it *)
  Runtime.Lru.add c "d" 4;
  Alcotest.(check int) "length capped" 3 (Runtime.Lru.length c);
  Alcotest.(check (option int)) "b evicted" None (Runtime.Lru.find_opt c "b");
  Alcotest.(check (option int)) "a survived (recently used)" (Some 1)
    (Runtime.Lru.find_opt c "a");
  Alcotest.(check int) "hits" 2 (Runtime.Lru.hits c);
  Alcotest.(check int) "misses" 1 (Runtime.Lru.misses c);
  Alcotest.(check int) "evictions" 1 (Runtime.Lru.evictions c);
  let v = Runtime.Lru.find_or_add c "e" (fun () -> 5) in
  Alcotest.(check int) "find_or_add computes" 5 v;
  let v = Runtime.Lru.find_or_add c "e" (fun () -> Alcotest.fail "recompute") in
  Alcotest.(check int) "find_or_add caches" 5 v;
  Runtime.Lru.clear c;
  Alcotest.(check int) "clear empties" 0 (Runtime.Lru.length c)

let test_lru_parallel_access () =
  let rt = Lazy.force rt4 in
  let c : (string, int) Runtime.Lru.t = Runtime.Lru.create ~capacity:64 () in
  let a = Array.init 500 (fun i -> i mod 40) in
  let got =
    Runtime.parallel_map rt
      (fun k -> Runtime.Lru.find_or_add c (string_of_int k) (fun () -> k * 7))
      a
  in
  Alcotest.(check bool) "values correct under concurrency" true
    (got = Array.map (fun k -> k * 7) a)

(* --- RNG splitting ----------------------------------------------------------- *)

let test_split_rngs_deterministic () =
  let draw rng = Array.init 5 (fun _ -> Rng.uniform rng) in
  let a = Array.map draw (Runtime.split_rngs ~seed:42 4) in
  let b = Array.map draw (Runtime.split_rngs ~seed:42 4) in
  Alcotest.(check bool) "same seed, same streams" true (a = b);
  (* stream i does not depend on how many streams were split *)
  let c = Array.map draw (Runtime.split_rngs ~seed:42 8) in
  Alcotest.(check bool) "prefix-stable" true (Array.sub c 0 4 = a);
  let d = Array.map draw (Runtime.split_rngs ~seed:43 4) in
  Alcotest.(check bool) "different seed differs" true (a <> d)

let test_parallel_map_seeded_schedule_independent () =
  let a = Array.init 64 Fun.id in
  let f rng x = (x, Rng.uniform rng, Rng.uniform rng) in
  let results =
    List.map (fun (_, rt) -> Runtime.parallel_map_seeded rt ~seed:9 f a) (runtimes ())
  in
  match results with
  | r1 :: rest ->
    List.iter
      (fun r -> Alcotest.(check bool) "same at every domain count" true (r = r1))
      rest
  | [] -> assert false

(* --- pool telemetry ---------------------------------------------------------- *)

let test_stats_reported () =
  let rt = Lazy.force rt4 in
  ignore (Runtime.parallel_map rt succ (Array.init 1000 Fun.id));
  let stats = Runtime.stats rt in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (List.mem_assoc key stats))
    [ "domains"; "parallel_maps"; "tasks"; "steals"; "sequential_fallbacks";
      "cache_hits"; "cache_misses" ];
  Alcotest.(check bool) "ran at least one map" true
    (List.assoc "parallel_maps" stats >= 1)

(* --- tuning determinism across domain counts --------------------------------- *)

(* A tiny cost model: enough structure for search to act on, cheap to train. *)
let small_model =
  lazy
    (let rng = Rng.create 200 in
     let samples =
       Dataset.generate rng Device.rtx_a5000 ~schedules_per_task:40 [ dense_sg () ]
     in
     let ds = Dataset.split rng samples in
     let model, _ = Train.pretrain rng ~epochs:3 ~hidden:[ 32; 32 ] ds in
     model)

let curves_identical (a : Tuner.progress_point list) (b : Tuner.progress_point list) =
  List.length a = List.length b
  && List.for_all2
       (fun (p : Tuner.progress_point) (q : Tuner.progress_point) ->
         p.time_s = q.time_s && p.latency_ms = q.latency_ms)
       a b

let test_tuning_bit_identical_across_jobs () =
  let model = Lazy.force small_model in
  List.iter
    (fun engine ->
      let run jobs =
        run_tuner_single
          Tuning_config.(
            builder |> with_search Tuning_config.quick |> with_seed 11
            |> with_jobs jobs)
          ~rounds:2 Device.rtx_a5000 model (dense_sg ()) engine
      in
      let seq = run 1 and par = run 4 in
      let name = Tuner.engine_name engine in
      Alcotest.(check bool) (name ^ ": same best latency") true
        (seq.Tuner.best.Tuner.latency_ms = par.Tuner.best.Tuner.latency_ms);
      Alcotest.(check bool) (name ^ ": identical trajectory") true
        (curves_identical seq.Tuner.curve par.Tuner.curve);
      Alcotest.(check bool) (name ^ ": identical predictions") true
        (seq.Tuner.predictions = par.Tuner.predictions);
      Alcotest.(check string) (name ^ ": same winning schedule")
        seq.Tuner.best.Tuner.sketch par.Tuner.best.Tuner.sketch)
    [ Tuner.Felix; Tuner.Ansor; Tuner.Random ]

let test_network_tuning_bit_identical_with_shared_runtime () =
  let model = Lazy.force small_model in
  let g = Workload.graph Workload.Dcgan in
  let cfg = { Tuning_config.quick with Tuning_config.max_rounds = 3 } in
  let base = Tuning_config.(builder |> with_search cfg |> with_seed 13) in
  let seq = run_tuner base Device.rtx_a5000 model g Tuner.Felix in
  let par =
    run_tuner
      (Tuning_config.with_runtime (Lazy.force rt4) base)
      Device.rtx_a5000 model g Tuner.Felix
  in
  Alcotest.(check bool) "same final latency" true
    (seq.Tuner.final_latency_ms = par.Tuner.final_latency_ms);
  Alcotest.(check int) "same measurement count" seq.Tuner.total_measurements
    par.Tuner.total_measurements;
  Alcotest.(check bool) "identical curve" true
    (curves_identical seq.Tuner.curve par.Tuner.curve)

let tests =
  [ test_parallel_map_matches_map;
    Alcotest.test_case "parallel_mapi matches Array.mapi" `Quick test_parallel_mapi;
    Alcotest.test_case "map_list preserves order" `Quick test_map_list_preserves_order;
    Alcotest.test_case "exceptions re-raise at the join" `Quick test_exception_propagates;
    Alcotest.test_case "nested maps fall back sequentially" `Quick
      test_nested_map_falls_back;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "with_runtime shuts down on exit" `Quick
      test_with_runtime_cleans_up;
    Alcotest.test_case "lru semantics" `Quick test_lru_semantics;
    Alcotest.test_case "lru under parallel access" `Quick test_lru_parallel_access;
    Alcotest.test_case "split_rngs deterministic and prefix-stable" `Quick
      test_split_rngs_deterministic;
    Alcotest.test_case "seeded map is schedule-independent" `Quick
      test_parallel_map_seeded_schedule_independent;
    Alcotest.test_case "pool stats reported" `Quick test_stats_reported;
    Alcotest.test_case "tuning is bit-identical at 1 vs 4 domains (all engines)" `Slow
      test_tuning_bit_identical_across_jobs;
    Alcotest.test_case "network tuning matches with a shared runtime" `Slow
      test_network_tuning_bit_identical_with_shared_runtime ]
