(* Tests for lib/store and the tuner's durable-store semantics: journal
   durability and reopen, torn-tail recovery, the versioned artifact
   envelope, crash-safe bit-identical resume, warm start, and the
   store-attached run's equivalence to the store-less run. *)

open Testutil

let quick = Tuning_config.quick

(* A lightweight cost model shared across the tuner-facing tests. *)
let shared_model =
  lazy
    (let rng = Rng.create 300 in
     let samples =
       Dataset.generate rng Device.rtx_a5000 ~schedules_per_task:60
         [ dense_sg (); conv_sg () ]
     in
     let ds = Dataset.split rng samples in
     let model, _ = Train.pretrain rng ~epochs:5 ~hidden:[ 64; 64 ] ds in
     model)

let fresh_dir () =
  let path = Filename.temp_file "felix_store" "" in
  Sys.remove path;
  path

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let ok_store = function
  | Ok s -> s
  | Error e -> Alcotest.failf "store error: %s" (Store.error_message e)

let record ?(network = "net") ?(device = "dev") ?(task_key = "t0") ?(sketch = "sk")
    ~key ~lat ?(y = [| 1.0; 2.5 |]) ?(round = 1) () =
  { Store.Record.network; device; task_key; sketch; key; y; latency_ms = lat; round;
    attempts = 1 }

(* --- bits ------------------------------------------------------------------- *)

let test_bits_roundtrip () =
  List.iter
    (fun v ->
      match Store.Bits.to_float (Store.Bits.of_float v) with
      | Some v' ->
        Alcotest.(check bool)
          (Printf.sprintf "bits of %h" v)
          true
          (Int64.bits_of_float v = Int64.bits_of_float v')
      | None -> Alcotest.fail "roundtrip failed")
    [ 0.0; -0.0; 1.0 /. 3.0; Float.pi; infinity; neg_infinity; nan; 4.9e-324 ];
  let xs = [| 0.1; -7.25; 1e300 |] in
  (match Store.Bits.to_floats (Store.Bits.of_floats xs) with
  | Some xs' ->
    Alcotest.(check bool) "array bits" true
      (Array.for_all2 (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b) xs xs')
  | None -> Alcotest.fail "array roundtrip failed");
  Alcotest.(check bool) "short rejected" true (Store.Bits.to_float "abc" = None);
  Alcotest.(check bool) "non-hex rejected" true
    (Store.Bits.to_float "zzzzzzzzzzzzzzzz" = None)

(* --- artifacts --------------------------------------------------------------- *)

let test_artifact_envelope () =
  let path = Filename.temp_file "felix_artifact" ".json" in
  let payload = Json.Obj [ ("x", Json.Num 1.5); ("s", Json.Str "v") ] in
  (match Store.Artifact.save ~path ~kind:"k1" ~version:2 payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Store.error_message e));
  (match Store.Artifact.load ~path ~kind:"k1" ~version:2 with
  | Ok j -> Alcotest.(check bool) "payload round-trips" true (j = payload)
  | Error e -> Alcotest.failf "load: %s" (Store.error_message e));
  (match Store.Artifact.load ~path ~kind:"other" ~version:2 with
  | Error (Store.Kind_mismatch { found = "k1"; expected = "other" }) -> ()
  | _ -> Alcotest.fail "expected kind mismatch");
  (match Store.Artifact.load ~path ~kind:"k1" ~version:3 with
  | Error (Store.Version_mismatch { kind = "k1"; found = 2; expected = 3 }) -> ()
  | _ -> Alcotest.fail "expected version mismatch");
  (match Store.Artifact.load ~path:"/nonexistent/a.json" ~kind:"k1" ~version:1 with
  | Error (Store.Not_found _) -> ()
  | _ -> Alcotest.fail "expected not found");
  let oc = open_out path in
  output_string oc "{ not json";
  close_out oc;
  (match Store.Artifact.load ~path ~kind:"k1" ~version:2 with
  | Error (Store.Corrupt _) -> ()
  | _ -> Alcotest.fail "expected corrupt");
  Sys.remove path

(* --- journal ----------------------------------------------------------------- *)

let test_journal_reopen () =
  let dir = fresh_dir () in
  let s = ok_store (Store.open_dir dir) in
  let id = Store.fresh_run_id s in
  Alcotest.(check string) "first id" "run0001" id;
  Store.begin_run s ~id;
  Store.append s (record ~device:"devA" ~task_key:"t0" ~key:"k1" ~lat:1.5 ());
  Store.append s
    (record ~device:"devA" ~task_key:"t1" ~key:"k2" ~lat:2.5 ~y:[| -0.5 |] ());
  Store.append s (record ~device:"devB" ~task_key:"t0" ~key:"k3" ~lat:3.5 ());
  Store.complete_run s ~id;
  Store.close s;
  let s = ok_store (Store.open_dir dir) in
  Alcotest.(check int) "records survive reopen" 3 (Store.num_records s);
  let st = Store.stats s in
  Alcotest.(check int) "runs started" 1 st.Store.runs_started;
  Alcotest.(check int) "runs completed" 1 st.Store.runs_completed;
  Alcotest.(check (list string)) "devices sorted" [ "devA"; "devB" ] st.Store.devices;
  Alcotest.(check int) "recovered bytes" 0 st.Store.recovered_bytes;
  let recs = Store.completed_records s ~device:"devA" ~task_key:"t0" in
  Alcotest.(check int) "filtered by device+task" 1 (List.length recs);
  let r = List.hd recs in
  Alcotest.(check string) "key survives" "k1" r.Store.Record.key;
  Alcotest.(check bool) "latency bit-exact" true
    (Int64.bits_of_float r.Store.Record.latency_ms = Int64.bits_of_float 1.5);
  (match Store.completed_records s ~device:"devA" ~task_key:"t1" with
  | [ r ] ->
    Alcotest.(check bool) "y bit-exact" true
      (Int64.bits_of_float r.Store.Record.y.(0) = Int64.bits_of_float (-0.5))
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l));
  Alcotest.(check string) "next id counts prior runs" "run0002" (Store.fresh_run_id s);
  Store.close s;
  remove_tree dir

let test_journal_uncompleted_run_invisible () =
  let dir = fresh_dir () in
  let s = ok_store (Store.open_dir dir) in
  let id = Store.fresh_run_id s in
  Store.begin_run s ~id;
  Store.append s (record ~key:"k1" ~lat:1.0 ());
  Store.close s;
  (* Never completed: its records must not feed warm starts. *)
  let s = ok_store (Store.open_dir dir) in
  Alcotest.(check int) "record still counted" 1 (Store.num_records s);
  Alcotest.(check int) "but not completed" 0
    (List.length (Store.completed_records s ~device:"dev" ~task_key:"t0"));
  Store.close s;
  remove_tree dir

let test_torn_tail_recovery () =
  let dir = fresh_dir () in
  let s = ok_store (Store.open_dir dir) in
  let id = Store.fresh_run_id s in
  Store.begin_run s ~id;
  Store.append s (record ~key:"k1" ~lat:1.0 ());
  Store.append s (record ~key:"k2" ~lat:2.0 ());
  Store.complete_run s ~id;
  Store.close s;
  (* A crash mid-write leaves a torn final line. *)
  let journal = Filename.concat dir "journal.jsonl" in
  let oc = open_out_gen [ Open_append ] 0o644 journal in
  output_string oc "{\"k\":\"m\",\"net\":\"net\",\"dev";
  close_out oc;
  let s = ok_store (Store.open_dir dir) in
  Alcotest.(check int) "torn line dropped, rest intact" 2 (Store.num_records s);
  let st = Store.stats s in
  Alcotest.(check bool) "recovery reported" true (st.Store.recovered_bytes > 0);
  (* The truncated journal must be appendable and replayable again. *)
  let id2 = Store.fresh_run_id s in
  Store.begin_run s ~id:id2;
  Store.append s (record ~key:"k3" ~lat:3.0 ());
  Store.complete_run s ~id:id2;
  Store.close s;
  let s = ok_store (Store.open_dir dir) in
  Alcotest.(check int) "append after recovery" 3 (Store.num_records s);
  Alcotest.(check int) "no further recovery" 0 (Store.stats s).Store.recovered_bytes;
  Store.close s;
  remove_tree dir

let test_corrupt_interior_rejected () =
  let dir = fresh_dir () in
  let s = ok_store (Store.open_dir dir) in
  Store.append s (record ~key:"k1" ~lat:1.0 ());
  Store.close s;
  let journal = Filename.concat dir "journal.jsonl" in
  let lines = In_channel.with_open_text journal In_channel.input_all in
  Out_channel.with_open_text journal (fun oc ->
      output_string oc "corrupt interior line\n";
      output_string oc lines);
  (match Store.open_dir dir with
  | Error (Store.Corrupt _) -> ()
  | Error e -> Alcotest.failf "expected Corrupt, got %s" (Store.error_message e)
  | Ok _ -> Alcotest.fail "opened a journal with a corrupt interior");
  remove_tree dir

(* --- tuner integration -------------------------------------------------------- *)

let dcgan () = Workload.graph Workload.Dcgan

let search rounds = { quick with Tuning_config.max_rounds = rounds }

let run_plain ?(jobs = 1) ?on_event ~rounds ~seed engine =
  let rc =
    Tuning_config.(
      builder |> with_search (search rounds) |> with_seed seed |> with_jobs jobs)
  in
  let rc =
    match on_event with Some f -> Tuning_config.with_on_event f rc | None -> rc
  in
  run_tuner rc Device.rtx_a5000 (Lazy.force shared_model) (dcgan ()) engine

let run_stored ?(jobs = 1) ?on_event ~dir ~rounds ~seed engine =
  let s = ok_store (Store.open_dir dir) in
  let rc =
    Tuning_config.(
      builder
      |> with_search (search rounds)
      |> with_seed seed |> with_jobs jobs |> with_store s)
  in
  let rc =
    match on_event with Some f -> Tuning_config.with_on_event f rc | None -> rc
  in
  let finish () = Store.close s in
  match Tuner.run rc Device.rtx_a5000 (Lazy.force shared_model) (dcgan ()) engine with
  | Ok r ->
    finish ();
    r
  | Error e ->
    finish ();
    Alcotest.failf "Tuner.run: %s" (Tuner.error_message e)
  | exception e ->
    finish ();
    raise e

let check_results_identical msg (a : Tuner.result) (b : Tuner.result) =
  let bits = Int64.bits_of_float in
  Alcotest.(check bool)
    (msg ^ ": final latency bit-identical")
    true
    (bits a.Tuner.final_latency_ms = bits b.Tuner.final_latency_ms);
  Alcotest.(check int) (msg ^ ": measurements") a.Tuner.total_measurements
    b.Tuner.total_measurements;
  Alcotest.(check int)
    (msg ^ ": curve length")
    (List.length a.Tuner.curve)
    (List.length b.Tuner.curve);
  List.iter2
    (fun (pa : Tuner.progress_point) (pb : Tuner.progress_point) ->
      if bits pa.time_s <> bits pb.time_s || bits pa.latency_ms <> bits pb.latency_ms
      then Alcotest.failf "%s: curve point differs" msg)
    a.Tuner.curve b.Tuner.curve;
  List.iter2
    (fun (ta : Tuner.task_result) (tb : Tuner.task_result) ->
      if bits ta.best.Tuner.latency_ms <> bits tb.best.Tuner.latency_ms then
        Alcotest.failf "%s: task best differs" msg;
      if ta.best.Tuner.assignment <> tb.best.Tuner.assignment then
        Alcotest.failf "%s: task assignment differs" msg)
    a.Tuner.tasks b.Tuner.tasks

let test_cold_store_run_matches_plain () =
  (* Journaling and checkpointing must be pure observation: a run over an
     empty store is bit-identical to a run without one. *)
  let reference = run_plain ~rounds:4 ~seed:21 Tuner.Felix in
  let dir = fresh_dir () in
  let stored = run_stored ~dir ~rounds:4 ~seed:21 Tuner.Felix in
  check_results_identical "store vs no store" reference stored;
  remove_tree dir

exception Abort_for_test

let abort_after k = function
  | Tuner.Round_finished { round; _ } when round = k -> raise Abort_for_test
  | _ -> ()

let interrupted_then_resumed ~dir ~rounds ~seed ~abort_round ~resume_jobs engine =
  (match
     run_stored ~dir ~rounds ~seed ~on_event:(abort_after abort_round) engine
   with
  | _ -> Alcotest.fail "expected the interrupting callback to fire"
  | exception Abort_for_test -> ());
  run_stored ~jobs:resume_jobs ~dir ~rounds ~seed engine

let test_resume_bit_identical () =
  (* Kill (via an aborting observer) after round k, resume, and require
     the result to be bit-identical to the uninterrupted run — across
     engines, abort points and resume-side parallelism. *)
  List.iter
    (fun (engine, ename, rounds, abort_round, resume_jobs) ->
      let reference = run_plain ~rounds ~seed:31 engine in
      let dir = fresh_dir () in
      let resumed =
        interrupted_then_resumed ~dir ~rounds ~seed:31 ~abort_round ~resume_jobs engine
      in
      check_results_identical
        (Printf.sprintf "%s k=%d jobs=%d" ename abort_round resume_jobs)
        reference resumed;
      remove_tree dir)
    [ (Tuner.Felix, "felix", 6, 2, 1);
      (Tuner.Felix, "felix", 6, 4, 2);
      (Tuner.Ansor, "ansor", 6, 2, 1);
      (Tuner.Ansor, "ansor", 5, 3, 2) ]

let test_resume_after_torn_tail () =
  (* Abort mid-run, then damage the journal the way a crash mid-append
     would: the torn tail is dropped and the resume still reproduces the
     uninterrupted result bit-for-bit. *)
  let reference = run_plain ~rounds:6 ~seed:41 Tuner.Felix in
  let dir = fresh_dir () in
  (match
     run_stored ~dir ~rounds:6 ~seed:41 ~on_event:(abort_after 3) Tuner.Felix
   with
  | _ -> Alcotest.fail "expected abort"
  | exception Abort_for_test -> ());
  let journal = Filename.concat dir "journal.jsonl" in
  let oc = open_out_gen [ Open_append ] 0o644 journal in
  output_string oc "{\"k\":\"m\",\"net\":\"dcg";
  close_out oc;
  let resumed = run_stored ~dir ~rounds:6 ~seed:41 Tuner.Felix in
  check_results_identical "torn tail then resume" reference resumed;
  remove_tree dir

let test_resume_ignores_foreign_checkpoint () =
  (* A checkpoint of a different configuration must not be resumed: the
     run falls back to a fresh (warm) start and completes on its own. *)
  let dir = fresh_dir () in
  (match
     run_stored ~dir ~rounds:6 ~seed:51 ~on_event:(abort_after 2) Tuner.Felix
   with
  | _ -> Alcotest.fail "expected abort"
  | exception Abort_for_test -> ());
  let other = run_stored ~dir ~rounds:6 ~seed:52 Tuner.Felix in
  Alcotest.(check bool) "different-seed run completes" true
    (Float.is_finite other.Tuner.final_latency_ms);
  (* The interrupted seed-51 run can still be resumed afterwards. *)
  let reference = run_plain ~rounds:6 ~seed:51 Tuner.Felix in
  let resumed = run_stored ~dir ~rounds:6 ~seed:51 Tuner.Felix in
  (* The seed-52 run overwrote the checkpoint with a completed one, so
     this is a warm start, not a resume: it must still finish, and with
     dedup hits it cannot measure more than the reference. *)
  Alcotest.(check bool) "warm rerun measures no more than cold" true
    (resumed.Tuner.total_measurements <= reference.Tuner.total_measurements);
  remove_tree dir

let test_plan_toggle_run_identical () =
  (* Compiled-plan vs interpreted batched tape execution must be invisible
     to a full stored tuning run: results and the persisted checkpoint
     (model weights, RNG state, curve — all bit-strings) are identical. *)
  let was = Pack.using_plan_execution () in
  Fun.protect ~finally:(fun () -> Pack.set_plan_execution was)
  @@ fun () ->
  let checkpoint dir =
    let s = ok_store (Store.open_dir dir) in
    let c =
      match Store.load_checkpoint s with
      | Ok j -> Json.to_line j
      | Error e -> Alcotest.failf "checkpoint: %s" (Store.error_message e)
    in
    Store.close s;
    Digest.to_hex (Digest.string c)
  in
  Pack.set_plan_execution true;
  let dir_on = fresh_dir () in
  let on = run_stored ~dir:dir_on ~rounds:4 ~seed:71 Tuner.Felix in
  Pack.clear_memory_cache ();
  Pack.set_plan_execution false;
  let dir_off = fresh_dir () in
  let off = run_stored ~dir:dir_off ~rounds:4 ~seed:71 Tuner.Felix in
  check_results_identical "plan on vs off" on off;
  Alcotest.(check string) "checkpoint digests equal" (checkpoint dir_on)
    (checkpoint dir_off);
  remove_tree dir_on;
  remove_tree dir_off

let test_warm_start_saves_measurements () =
  let dir = fresh_dir () in
  let cold = run_stored ~dir ~rounds:6 ~seed:61 Tuner.Felix in
  (* Second run, same configuration, over the completed store: seeded
     dedup caches mean strictly fewer new measurements, and the curve
     starts from the cold run's knowledge. *)
  let warm = run_stored ~dir ~rounds:6 ~seed:61 Tuner.Felix in
  Alcotest.(check bool)
    (Printf.sprintf "warm measures strictly fewer (%d vs %d)"
       warm.Tuner.total_measurements cold.Tuner.total_measurements)
    true
    (warm.Tuner.total_measurements < cold.Tuner.total_measurements);
  Alcotest.(check bool) "warm final no worse" true
    (warm.Tuner.final_latency_ms <= cold.Tuner.final_latency_ms);
  (* Warm-start telemetry: replays counted on a fresh registry. *)
  let reg = Telemetry.create () in
  Telemetry.enable reg;
  let s = ok_store (Store.open_dir dir) in
  let rc =
    Tuning_config.(
      builder |> with_search (search 2) |> with_seed 61 |> with_store s
      |> with_telemetry reg)
  in
  ignore (run_tuner rc Device.rtx_a5000 (Lazy.force shared_model) (dcgan ()) Tuner.Felix);
  Store.close s;
  Alcotest.(check bool) "store.replays counted" true
    (Telemetry.Counter.value (Telemetry.counter reg "store.replays") > 0);
  Alcotest.(check bool) "store.records counted" true
    (Telemetry.Counter.value (Telemetry.counter reg "store.records") >= 0);
  remove_tree dir

let tests =
  [ Alcotest.test_case "float bits round-trip" `Quick test_bits_roundtrip;
    Alcotest.test_case "artifact envelope (kind/version/corrupt)" `Quick
      test_artifact_envelope;
    Alcotest.test_case "journal survives reopen" `Quick test_journal_reopen;
    Alcotest.test_case "uncompleted runs excluded from warm start" `Quick
      test_journal_uncompleted_run_invisible;
    Alcotest.test_case "torn journal tail is recovered" `Quick test_torn_tail_recovery;
    Alcotest.test_case "corrupt interior line rejected" `Quick
      test_corrupt_interior_rejected;
    Alcotest.test_case "cold store run matches store-less run" `Slow
      test_cold_store_run_matches_plain;
    Alcotest.test_case "interrupted runs resume bit-identically" `Slow
      test_resume_bit_identical;
    Alcotest.test_case "resume after torn journal tail" `Slow test_resume_after_torn_tail;
    Alcotest.test_case "foreign checkpoint is not resumed" `Slow
      test_resume_ignores_foreign_checkpoint;
    Alcotest.test_case "warm start saves measurements" `Slow
      test_warm_start_saves_measurements;
    Alcotest.test_case "plan toggle invisible to stored runs" `Slow
      test_plan_toggle_run_identical ]
