(* Tests for lib/expr: Expr, Eval, Simplify, Rewrite, Smooth, Autodiff,
   Factorize. *)

open Testutil

let e = Expr.var "a"
let f = Expr.var "b"

let test_const_folding () =
  Alcotest.(check bool) "add" true (Expr.equal (Expr.const 5.0) Expr.(add (const 2.0) (const 3.0)));
  Alcotest.(check bool) "mul0" true (Expr.equal Expr.zero Expr.(mul e zero));
  Alcotest.(check bool) "mul1" true (Expr.equal e Expr.(mul e one));
  Alcotest.(check bool) "add0" true (Expr.equal e Expr.(add e zero));
  Alcotest.(check bool) "div1" true (Expr.equal e Expr.(div e one));
  Alcotest.(check bool) "sub self" true (Expr.equal Expr.zero Expr.(sub e e));
  Alcotest.(check bool) "pow0" true (Expr.equal Expr.one Expr.(pow e zero));
  Alcotest.(check bool) "pow1" true (Expr.equal e Expr.(pow e one));
  Alcotest.(check bool) "min self" true (Expr.equal e Expr.(min_ e e));
  Alcotest.(check bool) "neg neg" true (Expr.equal e Expr.(neg (neg e)));
  Alcotest.(check bool) "log exp" true (Expr.equal e Expr.(log_ (exp_ e)));
  Alcotest.(check bool) "exp log" true (Expr.equal e Expr.(exp_ (log_ e)))

let test_select_folding () =
  Alcotest.(check bool) "true branch" true
    (Expr.equal e (Expr.select Expr.btrue e f));
  Alcotest.(check bool) "false branch" true
    (Expr.equal f (Expr.select Expr.bfalse e f));
  Alcotest.(check bool) "same branches" true
    (Expr.equal e (Expr.select (Expr.gt e f) e e));
  Alcotest.(check bool) "const cmp folds" true
    (Expr.equal e (Expr.select Expr.(gt (const 2.0) (const 1.0)) e f))

let test_vars () =
  let expr = Expr.(add (mul (var "x") (var "y")) (select (gt (var "z") zero) (var "x") one)) in
  Alcotest.(check (list string)) "vars sorted" [ "x"; "y"; "z" ] (Expr.vars expr)

let test_subst () =
  let expr = Expr.(add (var "x") (mul (var "y") (var "x"))) in
  let s = Expr.subst (fun v -> if v = "x" then Some (Expr.const 2.0) else None) expr in
  check_close "subst eval" 8.0 (eval_at [ ("y", 3.0) ] s)

let test_size () =
  Alcotest.(check int) "leaf" 1 (Expr.size e);
  Alcotest.(check bool) "composite bigger" true (Expr.size Expr.(add e (mul e f)) > 3)

let test_to_string () =
  Alcotest.(check string) "var" "a" (Expr.to_string e);
  Alcotest.(check bool) "select printed" true
    (contains ~needle:"select" (Expr.to_string (Expr.select (Expr.gt e f) e f)))

let test_eval_ops () =
  let env = [ ("a", 3.0); ("b", 2.0) ] in
  check_close "add" 5.0 (eval_at env Expr.(add e f));
  check_close "sub" 1.0 (eval_at env Expr.(sub e f));
  check_close "mul" 6.0 (eval_at env Expr.(mul e f));
  check_close "div" 1.5 (eval_at env Expr.(div e f));
  check_close "pow" 9.0 (eval_at env Expr.(pow e f));
  check_close "min" 2.0 (eval_at env Expr.(min_ e f));
  check_close "max" 3.0 (eval_at env Expr.(max_ e f));
  check_close "select t" 3.0 (eval_at env Expr.(select (gt e f) e f));
  check_close "select f" 2.0 (eval_at env Expr.(select (lt e f) e f));
  check_close "log" (log 3.0) (eval_at env Expr.(log_ e));
  check_close "sqrt" (sqrt 3.0) (eval_at env Expr.(sqrt_ e))

let test_eval_unbound () =
  Alcotest.check_raises "unbound" (Eval.Unbound_variable "zz") (fun () ->
      ignore (eval_at [] (Expr.var "zz")))

let test_eval_cond () =
  let env = Eval.env_of_list [ ("a", 3.0); ("b", 2.0) ] in
  Alcotest.(check bool) "and" true (Eval.eval_cond env Expr.(and_ (gt e f) (lt f e)));
  Alcotest.(check bool) "or" true (Eval.eval_cond env Expr.(or_ (lt e f) (gt e f)));
  Alcotest.(check bool) "not" false (Eval.eval_cond env Expr.(not_ (gt e f)))

let test_simplify_preserves_semantics =
  qtest ~count:300 "simplify preserves value" QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env) ->
      let v1 = eval_at env expr in
      let v2 = eval_at env (Simplify.simplify expr) in
      (Float.is_nan v1 && Float.is_nan v2) || close ~tol:1e-6 v1 v2)

let test_simplify_log_expand () =
  let l = Expr.Unop (Expr.Log, Expr.Binop (Expr.Mul, e, f)) in
  let s = Simplify.simplify l in
  (* log(a*b) = log a + log b *)
  check_close "log expand" (log 3.0 +. log 2.0) (eval_at [ ("a", 3.0); ("b", 2.0) ] s);
  Alcotest.(check bool) "no log-of-product left" true
    (match s with Expr.Binop (Expr.Add, _, _) -> true | _ -> false)

let test_simplify_exp_log_cancel () =
  let expr = Expr.Unop (Expr.Exp, Expr.Unop (Expr.Log, e)) in
  Alcotest.(check bool) "cancels" true (Expr.equal e (Simplify.simplify expr))

let test_simplify_div_collapse () =
  let expr = Expr.Binop (Expr.Div, Expr.Binop (Expr.Div, e, f), Expr.var "c") in
  check_close "nested div" (10.0 /. (2.0 *. 5.0))
    (eval_at [ ("a", 10.0); ("b", 2.0); ("c", 5.0) ] (Simplify.simplify expr))

let test_simplify_shrinks =
  qtest ~count:200 "simplify never grows the term" gen_expr (fun expr ->
      Expr.size (Simplify.simplify expr) <= Expr.size expr + 4)

let test_rewrite_fixpoint_terminates () =
  let expr =
    Expr.Unop (Expr.Log, Expr.Binop (Expr.Mul, Expr.Binop (Expr.Mul, e, f), Expr.var "c"))
  in
  let s = Rewrite.apply_fixpoint Simplify.rules expr in
  check_close "value kept" (log 30.0) (eval_at [ ("a", 3.0); ("b", 2.0); ("c", 5.0) ] s)

let test_rewrite_count_firings () =
  let expr = Expr.Unop (Expr.Log, Expr.Binop (Expr.Mul, e, f)) in
  let firings = Rewrite.count_firings Simplify.rules expr in
  Alcotest.(check bool) "log-expand fired" true
    (List.exists (fun (name, n) -> name = "log-expand" && n > 0) firings)

(* --- indexed, memoised rewrite engine -------------------------------------

   The head-indexed engine with the per-domain normal-form memo must be an
   observationally exact replacement for the historical scan-every-rule
   pass loop: same normal forms (hash-consed, so Expr.equal is physical),
   and a fixpoint, so running it twice changes nothing. *)

let test_rewrite_indexed_matches_naive_simplify =
  qtest ~count:400 "indexed engine = naive scan (simplify rules)" gen_expr
    (fun expr ->
      Expr.equal
        (Rewrite.apply_fixpoint Simplify.rules expr)
        (Rewrite.apply_fixpoint_naive Simplify.rules expr))

let test_rewrite_indexed_matches_naive_smooth =
  qtest ~count:400 "indexed engine = naive scan (smooth rules)" gen_expr
    (fun expr ->
      Expr.equal (Smooth.smooth expr)
        (Rewrite.apply_fixpoint_naive (Smooth.rules ()) expr))

let test_rewrite_fixpoint_idempotent =
  qtest ~count:400 "normalization is idempotent (f (f x) = f x)" gen_expr
    (fun expr ->
      let s = Simplify.simplify expr in
      Expr.equal s (Simplify.simplify s)
      &&
      let m = Smooth.smooth expr in
      Expr.equal m (Smooth.smooth m))

let test_simplify_subst_fused =
  qtest ~count:400 "fused subst+simplify = subst then simplify" gen_expr
    (fun expr ->
      let f v = if v = "a" || v = "c" then Some (Expr.exp_ (Expr.var v)) else None in
      Expr.equal
        (Simplify.simplify_subst f expr)
        (Simplify.simplify (Expr.subst f expr)))

(* --- smoothing ------------------------------------------------------------ *)

let test_smooth_removes_nondiff =
  qtest ~count:300 "smooth eliminates select/min/max/abs" gen_expr (fun expr ->
      not (Expr.contains_nondiff (Smooth.smooth expr)))

let test_smooth_figure4_select () =
  (* Figure 4 left: select(x > 0, 5, 2). Far from the kink the smooth
     version matches; at the kink it passes through the midpoint 3.5. *)
  let sel = Expr.(select (gt (var "x") zero) (const 5.0) (const 2.0)) in
  let s = Smooth.smooth sel in
  let at x = eval_at [ ("x", x) ] s in
  check_close ~tol:0.02 "x=+5" 5.0 (at 5.0);
  check_close ~tol:0.02 "x=-5" 2.0 (at (-5.0));
  check_close ~tol:1e-9 "x=0 midpoint" 3.5 (at 0.0)

let test_smooth_figure4_relu () =
  (* Figure 4 right: max(x, 0); asymptotes match, value at 0 is width/2. *)
  let m = Smooth.smooth Expr.(max_ (var "x") zero) in
  let at x = eval_at [ ("x", x) ] m in
  check_close ~tol:0.02 "x=5" 5.05 (at 5.0);
  check_close ~tol:0.05 "x=-5" 0.05 (at (-5.0));
  check_close ~tol:1e-9 "x=0" 0.5 (at 0.0)

let test_smooth_monotone_step () =
  let s = Smooth.phi (Expr.var "x") in
  let prev = ref neg_infinity in
  for i = -50 to 50 do
    let v = eval_at [ ("x", float_of_int i /. 5.0) ] s in
    if v < !prev then Alcotest.fail "phi not monotone";
    if v <= 0.0 || v >= 1.0 then Alcotest.failf "phi out of (0,1): %f" v;
    prev := v
  done

let test_smooth_indicator_connectives () =
  let c = Expr.(and_ (gt (var "x") zero) (lt (var "x") (const 10.0))) in
  let ind = Smooth.indicator c in
  let at x = eval_at [ ("x", x) ] ind in
  Alcotest.(check bool) "inside high" true (at 5.0 > 0.9);
  Alcotest.(check bool) "outside low" true (at (-5.0) < 0.1 && at 15.0 < 0.1)

let test_smooth_close_away_from_kinks =
  qtest ~count:200 "smooth approximates original away from kinks"
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env) ->
      let v = eval_at env expr in
      let s = eval_at env (Smooth.smooth expr) in
      (* The kernel has width 1; each smoothing step distorts by at most
         ~width/2 locally, but distortions scale through products, so the
         bound is relative to the magnitude of the value. *)
      (not (Float.is_finite v))
      || Float.abs (s -. v) <= 0.75 *. float_of_int (Expr.size expr) *. (1.0 +. Float.abs v))

(* --- autodiff -------------------------------------------------------------- *)

let test_symbolic_diff_basics () =
  let x = Expr.var "x" in
  let d1 = Autodiff.diff Expr.(mul x x) "x" in
  check_close "d(x^2)=2x at 3" 6.0 (eval_at [ ("x", 3.0) ] d1);
  let d2 = Autodiff.diff Expr.(log_ x) "x" in
  check_close "d log" (1.0 /. 3.0) (eval_at [ ("x", 3.0) ] d2);
  let d3 = Autodiff.diff Expr.(exp_ (mul (const 2.0) x)) "x" in
  check_close "chain" (2.0 *. exp 6.0) (eval_at [ ("x", 3.0) ] d3);
  let d4 = Autodiff.diff Expr.(powi x 3) "x" in
  check_close "power rule" 27.0 (eval_at [ ("x", 3.0) ] d4)

let test_symbolic_gradient_vars () =
  let expr = Expr.(add (mul (var "x") (var "y")) (var "y")) in
  let g = Autodiff.gradient expr in
  Alcotest.(check (list string)) "grad vars" [ "x"; "y" ] (List.map fst g);
  check_close "d/dx" 4.0 (eval_at [ ("x", 2.0); ("y", 4.0) ] (List.assoc "x" g));
  check_close "d/dy" 3.0 (eval_at [ ("x", 2.0); ("y", 4.0) ] (List.assoc "y" g))

let test_tape_matches_eval =
  qtest ~count:300 "tape evaluation matches tree evaluation"
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env) ->
      let tape = Autodiff.Tape.compile ~inputs:expr_vars [ expr ] in
      let xs = Array.of_list (List.map (fun v -> List.assoc v env) expr_vars) in
      let v1 = eval_at env expr in
      let v2 = (Autodiff.Tape.eval tape xs).(0) in
      (Float.is_nan v1 && Float.is_nan v2) || close ~tol:1e-9 v1 v2)

let test_tape_gradient_fd =
  qtest ~count:200 "tape gradient matches finite differences (smooth exprs)"
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env) ->
      let smooth = Smooth.smooth expr in
      let xs = Array.of_list (List.map (fun v -> List.assoc v env) expr_vars) in
      Autodiff.check_gradient ~eps:1e-5 ~tol:5e-2 ~inputs:expr_vars smooth xs)

let test_tape_cse () =
  let shared = Expr.(mul (var "a") (var "b")) in
  let e1 = Expr.(add shared shared) in
  let tape = Autodiff.Tape.compile ~inputs:[ "a"; "b" ] [ e1; Expr.(mul shared shared) ] in
  (* a, b, a*b, (a*b)+(a*b), (a*b)*(a*b) = 5 instructions with CSE *)
  Alcotest.(check int) "cse shares subterms" 5 (Autodiff.Tape.length tape)

let test_tape_multi_output_vjp () =
  let a = Expr.var "a" and b = Expr.var "b" in
  let tape = Autodiff.Tape.compile ~inputs:[ "a"; "b" ] [ Expr.mul a b; Expr.add a b ] in
  let outs, grad = Autodiff.Tape.vjp tape [| 3.0; 4.0 |] [| 1.0; 10.0 |] in
  check_close "out0" 12.0 outs.(0);
  check_close "out1" 7.0 outs.(1);
  (* d(ab + 10(a+b))/da = b + 10 *)
  check_close "grad a" 14.0 grad.(0);
  check_close "grad b" 13.0 grad.(1)

let test_tape_jacobian () =
  let a = Expr.var "a" and b = Expr.var "b" in
  let tape = Autodiff.Tape.compile ~inputs:[ "a"; "b" ] [ Expr.mul a b; Expr.powi a 2 ] in
  let _, jac = Autodiff.Tape.jacobian tape [| 3.0; 4.0 |] in
  check_close "d(ab)/da" 4.0 jac.(0).(0);
  check_close "d(ab)/db" 3.0 jac.(0).(1);
  check_close "d(a^2)/da" 6.0 jac.(1).(0);
  check_close "d(a^2)/db" 0.0 jac.(1).(1)

let test_tape_unbound_var () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Autodiff.Tape.compile ~inputs:[ "a" ] [ Expr.var "zz" ]);
       false
     with Invalid_argument _ -> true)

let test_tape_select_subgradient () =
  let x = Expr.var "x" in
  let expr = Expr.(select (gt x (const 2.0)) (mul (const 3.0) x) (mul (const 5.0) x)) in
  let tape = Autodiff.Tape.compile ~inputs:[ "x" ] [ expr ] in
  let _, g_hi = Autodiff.Tape.vjp tape [| 4.0 |] [| 1.0 |] in
  let _, g_lo = Autodiff.Tape.vjp tape [| 1.0 |] [| 1.0 |] in
  check_close "taken branch hi" 3.0 g_hi.(0);
  check_close "taken branch lo" 5.0 g_lo.(0)

(* --- hash-consing ----------------------------------------------------------- *)

let test_hashcons_sharing () =
  let mk () = Expr.(add (mul (var "a") (var "b")) (const 2.0)) in
  let e1 = mk () and e2 = mk () in
  Alcotest.(check bool) "same construction is shared" true (e1 == e2);
  Alcotest.(check int) "same id" (Expr.id e1) (Expr.id e2);
  (* Constants are interned by bit pattern, so the signed zeros stay
     distinct nodes (merging them would flip signs downstream). *)
  Alcotest.(check bool) "signed zeros distinct" false (Expr.const 0.0 == Expr.const (-0.0))

let test_hashcons_equal_ids =
  qtest ~count:300 "hash-consed equal/compare/hash agree with ids"
    QCheck2.Gen.(pair gen_expr gen_expr)
    (fun (x, y) ->
      let eq = Expr.equal x y in
      eq = (Expr.id x = Expr.id y)
      && eq = (x == y)
      && eq = (Expr.compare x y = 0)
      && ((not eq) || Expr.hash x = Expr.hash y))

let test_expr_memo () =
  let m = Expr.Memo.create () in
  let e = Expr.(add (var "a") (var "b")) in
  Alcotest.(check bool) "miss" true (Expr.Memo.find_opt m e = None);
  Expr.Memo.add m e 42;
  Alcotest.(check bool) "hit" true (Expr.Memo.find_opt m e = Some 42);
  Alcotest.(check int) "length" 1 (Expr.Memo.length m);
  Alcotest.(check int) "memo reuses" 42 (Expr.Memo.memo m (fun _ -> Alcotest.fail "recomputed") e);
  Expr.Memo.clear m;
  Alcotest.(check int) "cleared" 0 (Expr.Memo.length m)

(* --- tape optimiser and workspaces ------------------------------------------ *)

let bits = Int64.bits_of_float
let bits_eq a b = Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) a b

let test_tape_optimize_exact =
  qtest ~count:300 "tape optimiser preserves eval and vjp bitwise"
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env) ->
      let raw =
        Autodiff.Tape.compile ~optimize:false ~inputs:expr_vars [ expr; Smooth.smooth expr ]
      in
      let opt, report = Autodiff.Tape.optimize_report raw in
      let xs = Array.of_list (List.map (fun v -> List.assoc v env) expr_vars) in
      let adj = [| 1.0; 0.5 |] in
      let o1, g1 = Autodiff.Tape.vjp raw xs adj in
      let o2, g2 = Autodiff.Tape.vjp opt xs adj in
      Autodiff.Tape.length opt <= Autodiff.Tape.length raw
      && report.Autodiff.Tape.slots_pre = Autodiff.Tape.length raw
      && report.Autodiff.Tape.slots_post = Autodiff.Tape.length opt
      && bits_eq o1 o2 && bits_eq g1 g2)

let test_tape_workspace_reuse =
  qtest ~count:200 "workspace reuse and vjp_with are bit-identical to vjp"
    QCheck2.Gen.(pair gen_expr gen_env)
    (fun (expr, env) ->
      let tape = Autodiff.Tape.compile ~inputs:expr_vars [ expr ] in
      let xs = Array.of_list (List.map (fun v -> List.assoc v env) expr_vars) in
      let outs, grad = Autodiff.Tape.vjp tape xs [| 2.5 |] in
      (* Same workspace reused twice: the second call must not see the
         first one's leftovers. *)
      let ws = Autodiff.Tape.workspace tape in
      let g1 = Array.make 3 0.0 and g2 = Array.make 3 0.0 in
      let o1 = Array.copy (Autodiff.Tape.eval_vjp_into tape ws xs [| 2.5 |] g1) in
      let o2 = Array.copy (Autodiff.Tape.eval_vjp_into tape ws xs [| 2.5 |] g2) in
      (* vjp_with computes the adjoint from the forward outputs. *)
      let o3, g3 = Autodiff.Tape.vjp_with tape xs (fun _ -> [| 2.5 |]) in
      bits_eq o1 outs && bits_eq o2 outs && bits_eq o3 outs
      && bits_eq g1 grad && bits_eq g2 grad && bits_eq g3 grad)

let test_tape_batch_bitwise =
  qtest ~count:60 "batched tape sweeps are bitwise the scalar kernels"
    QCheck2.Gen.(triple gen_expr gen_env (int_range 1 128))
    (fun (expr, env, batch) ->
      let tape =
        Autodiff.Tape.compile ~inputs:expr_vars [ expr; Smooth.smooth expr ]
      in
      let n_in = 3 and n_out = 2 in
      let base = Array.of_list (List.map (fun v -> List.assoc v env) expr_vars) in
      (* Distinct per-lane inputs and adjoints, derived deterministically. *)
      let xs =
        Array.init (batch * n_in) (fun j ->
            base.(j mod n_in) *. (1.0 +. (0.125 *. float_of_int (j / n_in mod 7))))
      in
      let adj = Array.init (batch * n_out) (fun j -> sin (float_of_int j)) in
      let bws = Autodiff.Tape.batch_workspace tape ~batch in
      let outs =
        Array.sub (Autodiff.Tape.forward_batch_into tape bws ~batch xs) 0 (batch * n_out)
      in
      let grads = Array.make (batch * n_in) 0.0 in
      Autodiff.Tape.backward_batch_into tape bws ~batch adj grads;
      let ws = Autodiff.Tape.workspace tape in
      let ok = ref true in
      for l = 0 to batch - 1 do
        let x = Array.sub xs (l * n_in) n_in in
        let a = Array.sub adj (l * n_out) n_out in
        let g = Array.make n_in 0.0 in
        let o = Autodiff.Tape.eval_vjp_into tape ws x a g in
        ok :=
          !ok
          && bits_eq o (Array.sub outs (l * n_out) n_out)
          && bits_eq g (Array.sub grads (l * n_in) n_in)
      done;
      !ok)

(* --- compiled superop plans ------------------------------------------------- *)

(* Richer generator than [gen_expr]: the full operator set with no numeric
   guards, so plans are exercised through infinities and NaNs too. *)
let gen_expr_full : Expr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized_size (int_range 0 10)
  @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun f -> Expr.const (f -. 4.0)) (float_bound_inclusive 8.0);
            map Expr.var (oneofl expr_vars) ]
      else begin
        let sub = self (n / 2) in
        oneof
          [ map2 Expr.add sub sub; map2 Expr.sub sub sub; map2 Expr.mul sub sub;
            map2 Expr.div sub sub; map2 Expr.pow sub sub; map2 Expr.min_ sub sub;
            map2 Expr.max_ sub sub; map Expr.neg sub; map Expr.abs_ sub;
            map Expr.sqrt_ sub; map Expr.log_ sub; map Expr.exp_ sub;
            map3 (fun c a b -> Expr.select (Expr.ge c Expr.zero) a b) sub sub sub ]
      end)

(* Comparison contract of the compiled plans: the portable OCaml kernels
   are held to strict full-bit equality (NaN payloads included); under the
   C kernels two NaNs compare equal regardless of bits, because GCC may
   legally commute a product of two NaNs (IEEE leaves NaN sign/payload
   unspecified) — and a NaN's sign can never propagate into a non-NaN
   value in this operator set, so everything else is exact bits there
   too. *)
let plan_eq ~strict x y =
  Int64.equal (bits x) (bits y)
  || ((not strict) && Float.is_nan x && Float.is_nan y)

let plan_eq_prefix ~strict n a b =
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (plan_eq ~strict a.(i) b.(i)) then ok := false
  done;
  !ok

let test_plan_bitwise_random =
  qtest ~count:40 "compiled plan = interpreter (both kernel sets, B=1..128)"
    QCheck2.Gen.(pair (list_size (int_range 1 4) gen_expr_full) (int_range 0 1_000_000))
    (fun (exprs, seed) ->
      let tape = Autodiff.Tape.compile ~inputs:expr_vars exprs in
      let plan = Autodiff.Tape.compile_plan tape in
      let n_in = 3 and n_out = List.length exprs in
      let rng = Random.State.make [| seed |] in
      let was = Autodiff.Tape.using_vector_kernels () in
      Fun.protect ~finally:(fun () -> Autodiff.Tape.set_vector_kernels was)
      @@ fun () ->
      Autodiff.Tape.Plan.superops plan
      = Autodiff.Tape.Plan.source_ops plan - Autodiff.Tape.Plan.fused_pairs plan
      && List.for_all
           (fun batch ->
             (* Inputs and adjoints stress the edge cases: both zero signs,
                negatives (NaN through log/sqrt/pow), large magnitudes. *)
             let xs =
               Array.init (batch * n_in) (fun _ ->
                   match Random.State.int rng 10 with
                   | 0 -> 0.0
                   | 1 -> -0.0
                   | 2 -> -.Random.State.float rng 8.0
                   | 3 -> Random.State.float rng 1e6
                   | _ -> Random.State.float rng 5.0 -. 1.0)
             in
             let adj =
               Array.init (batch * n_out) (fun _ ->
                   match Random.State.int rng 5 with
                   | 0 -> 0.0
                   | 1 -> -0.0
                   | _ -> Random.State.float rng 4.0 -. 2.0)
             in
             let bws = Autodiff.Tape.batch_workspace tape ~batch in
             let outs =
               Array.copy (Autodiff.Tape.forward_batch_into tape bws ~batch xs)
             in
             let grads = Array.make (batch * n_in) nan in
             Autodiff.Tape.backward_batch_into tape bws ~batch adj grads;
             List.for_all
               (fun vec ->
                 let strict = not vec in
                 Autodiff.Tape.set_vector_kernels vec;
                 let pws = Autodiff.Tape.plan_batch_workspace plan ~batch in
                 let pouts =
                   Array.copy (Autodiff.Tape.plan_forward_batch_into plan pws ~batch xs)
                 in
                 let pgrads = Array.make (batch * n_in) nan in
                 Autodiff.Tape.plan_backward_batch_into plan pws ~batch adj pgrads;
                 plan_eq_prefix ~strict (batch * n_out) pouts outs
                 && plan_eq_prefix ~strict (batch * n_in) pgrads grads)
               [ true; false ])
           [ 1; 3; 8; 32; 128 ])

let test_plan_zero_adjoint_guard () =
  (* A lane whose output adjoints are all (±)0.0 must leave its input
     gradients at exactly +0.0 bits: the compiled backward keeps the
     interpreter's [g <> 0.0] skip, even when the forward value planes
     hold infinities or NaNs that an unguarded product would propagate. *)
  let exprs =
    Expr.
      [ div (var "a") (var "b");
        pow (var "a") (var "b");
        mul (exp_ (var "c")) (log_ (var "a")) ]
  in
  let tape = Autodiff.Tape.compile ~inputs:expr_vars exprs in
  let plan = Autodiff.Tape.compile_plan tape in
  let batch = 6 in
  let xs =
    [| 1.5; 2.0; 0.5;  (* ordinary *)
       3.0; 0.0; 1.0;  (* b = 0: infinite forward values *)
       -2.0; 1.0; 0.25;  (* a < 0: NaN through log *)
       0.0; 0.0; 0.0;  (* everything zero *)
       4.0; 0.5; -1.0;  (* live lane between dead ones *)
       1e300; 1e300; 1e300 (* overflow territory *) |]
  in
  let adj =
    [| 1.0; 0.5; -0.25;
       0.0; -0.0; 0.0;
       0.0; 0.0; -0.0;
       -0.0; -0.0; -0.0;
       2.0; 0.0; -0.0;
       0.0; 0.0; 0.0 |]
  in
  let bws = Autodiff.Tape.batch_workspace tape ~batch in
  ignore (Autodiff.Tape.forward_batch_into tape bws ~batch xs);
  let grads = Array.make (batch * 3) nan in
  Autodiff.Tape.backward_batch_into tape bws ~batch adj grads;
  let was = Autodiff.Tape.using_vector_kernels () in
  Fun.protect ~finally:(fun () -> Autodiff.Tape.set_vector_kernels was)
  @@ fun () ->
  List.iter
    (fun vec ->
      Autodiff.Tape.set_vector_kernels vec;
      let label = if vec then "simd" else "portable" in
      let pws = Autodiff.Tape.plan_batch_workspace plan ~batch in
      ignore (Autodiff.Tape.plan_forward_batch_into plan pws ~batch xs);
      let pgrads = Array.make (batch * 3) nan in
      Autodiff.Tape.plan_backward_batch_into plan pws ~batch adj pgrads;
      Alcotest.(check bool)
        (label ^ ": grads bitwise-equal interpreter")
        true
        (plan_eq_prefix ~strict:true (batch * 3) pgrads grads);
      (* Pin the skip itself: every zero-adjoint lane extracts exactly
         +0.0, regardless of the poison in its value planes. *)
      List.iter
        (fun l ->
          for i = 0 to 2 do
            if not (Int64.equal (bits pgrads.((l * 3) + i)) (bits 0.0)) then
              Alcotest.failf "%s: lane %d grad %d is %h, not +0.0" label l i
                pgrads.((l * 3) + i)
          done)
        [ 1; 2; 3; 5 ])
    [ true; false ]

let test_plan_json_roundtrip () =
  let exprs =
    Expr.
      [ pow (add (var "a") (var "b")) (var "c");
        log_ (add one (mul (var "a") (exp_ (var "b"))));
        select (ge (var "c") zero) (sqrt_ (abs_ (var "a"))) (neg (var "b")) ]
  in
  let tape = Autodiff.Tape.compile ~inputs:expr_vars exprs in
  let plan = Autodiff.Tape.compile_plan tape in
  let j = Autodiff.Tape.Plan.to_json plan in
  (match Autodiff.Tape.Plan.of_json j with
  | None -> Alcotest.fail "roundtrip decode failed"
  | Some p2 ->
    Alcotest.(check bool) "roundtrip is the identity" true
      (Autodiff.Tape.Plan.to_json p2 = j);
    Alcotest.(check int) "source ops preserved"
      (Autodiff.Tape.Plan.source_ops plan)
      (Autodiff.Tape.Plan.source_ops p2);
    Alcotest.(check int) "superops preserved"
      (Autodiff.Tape.Plan.superops plan)
      (Autodiff.Tape.Plan.superops p2));
  (* Corrupt payloads decode to None, never a crash. *)
  let tamper key v =
    match j with
    | Json.Obj fields ->
      Json.Obj (List.map (fun (k, x) -> if k = key then (k, v) else (k, x)) fields)
    | _ -> Alcotest.fail "plan json is not an object"
  in
  let dead j = Option.is_none (Autodiff.Tape.Plan.of_json j) in
  Alcotest.(check bool) "garbage" true (dead (Json.Str "x"));
  Alcotest.(check bool) "bad opcode" true
    (dead (tamper "code" (Json.List (List.init 12 (fun _ -> Json.Num 255.0)))));
  Alcotest.(check bool) "truncated code" true (dead (tamper "code" (Json.List [ Json.Num 0.0 ])));
  Alcotest.(check bool) "bad const bits" true
    (dead (tamper "consts" (Json.List [ Json.Str "zz" ])));
  Alcotest.(check bool) "outputs missing" true (dead (tamper "out_vregs" (Json.List [])))

(* --- factorize ------------------------------------------------------------- *)

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Factorize.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (Factorize.divisors 1);
  Alcotest.(check (list int)) "prime" [ 1; 13 ] (Factorize.divisors 13)

let test_nearest_divisor () =
  (* log-space: |ln 6 - ln 5| = 0.18 < |ln 4 - ln 5| = 0.22 *)
  Alcotest.(check int) "12 near 5" 6 (Factorize.nearest_divisor 12 5.0);
  Alcotest.(check int) "12 near 100" 12 (Factorize.nearest_divisor 12 100.0);
  Alcotest.(check int) "12 near 0.3" 1 (Factorize.nearest_divisor 12 0.3)

let test_round_log_to_divisor () =
  let y = Factorize.round_log_to_divisor 24 (log 7.0) in
  (* divisors of 24 around 7: 6 and 8; log-space rounding picks one of them *)
  let d = int_of_float (Float.round (exp y)) in
  Alcotest.(check bool) "is divisor" true (24 mod d = 0);
  Alcotest.(check bool) "close to 7" true (d = 6 || d = 8)

let test_split_product =
  qtest ~count:200 "split factors multiply back"
    QCheck2.Gen.(pair (int_range 1 5040) (int_range 1 5))
    (fun (n, k) ->
      let rng = Rng.create (n + (k * 7919)) in
      let fs = Factorize.split rng n k in
      List.length fs = k && List.fold_left ( * ) 1 fs = n)

let test_num_splits () =
  Alcotest.(check int) "n into 1" 1 (Factorize.num_splits 12 1);
  (* ordered pairs (a,b) with a*b=12: one per divisor *)
  Alcotest.(check int) "12 into 2" 6 (Factorize.num_splits 12 2)

let tests =
  [ Alcotest.test_case "const folding" `Quick test_const_folding;
    Alcotest.test_case "select folding" `Quick test_select_folding;
    Alcotest.test_case "free variables" `Quick test_vars;
    Alcotest.test_case "substitution" `Quick test_subst;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "printing" `Quick test_to_string;
    Alcotest.test_case "eval operators" `Quick test_eval_ops;
    Alcotest.test_case "eval unbound variable" `Quick test_eval_unbound;
    Alcotest.test_case "eval conditions" `Quick test_eval_cond;
    test_simplify_preserves_semantics;
    Alcotest.test_case "simplify log expansion" `Quick test_simplify_log_expand;
    Alcotest.test_case "simplify exp/log cancel" `Quick test_simplify_exp_log_cancel;
    Alcotest.test_case "simplify nested division" `Quick test_simplify_div_collapse;
    test_simplify_shrinks;
    Alcotest.test_case "rewrite fixpoint terminates" `Quick test_rewrite_fixpoint_terminates;
    Alcotest.test_case "rewrite firing counts" `Quick test_rewrite_count_firings;
    test_rewrite_indexed_matches_naive_simplify;
    test_rewrite_indexed_matches_naive_smooth;
    test_rewrite_fixpoint_idempotent;
    test_simplify_subst_fused;
    test_smooth_removes_nondiff;
    Alcotest.test_case "smooth select matches Figure 4 (left)" `Quick test_smooth_figure4_select;
    Alcotest.test_case "smooth max matches Figure 4 (right)" `Quick test_smooth_figure4_relu;
    Alcotest.test_case "phi is a monotone step in (0,1)" `Quick test_smooth_monotone_step;
    Alcotest.test_case "smooth indicator of connectives" `Quick test_smooth_indicator_connectives;
    test_smooth_close_away_from_kinks;
    Alcotest.test_case "symbolic diff basics" `Quick test_symbolic_diff_basics;
    Alcotest.test_case "symbolic gradient variables" `Quick test_symbolic_gradient_vars;
    test_tape_matches_eval;
    test_tape_gradient_fd;
    Alcotest.test_case "tape common subexpression elimination" `Quick test_tape_cse;
    Alcotest.test_case "tape multi-output VJP" `Quick test_tape_multi_output_vjp;
    Alcotest.test_case "tape jacobian" `Quick test_tape_jacobian;
    Alcotest.test_case "tape rejects unbound variables" `Quick test_tape_unbound_var;
    Alcotest.test_case "tape select subgradient follows taken branch" `Quick
      test_tape_select_subgradient;
    Alcotest.test_case "hash-consing shares identical constructions" `Quick test_hashcons_sharing;
    test_hashcons_equal_ids;
    Alcotest.test_case "expression memo table" `Quick test_expr_memo;
    test_tape_optimize_exact;
    test_tape_workspace_reuse;
    test_tape_batch_bitwise;
    test_plan_bitwise_random;
    Alcotest.test_case "compiled backward keeps the zero-adjoint skip" `Quick
      test_plan_zero_adjoint_guard;
    Alcotest.test_case "plan json round-trips; corrupt decodes to None" `Quick
      test_plan_json_roundtrip;
    Alcotest.test_case "divisors" `Quick test_divisors;
    Alcotest.test_case "nearest divisor (log-space)" `Quick test_nearest_divisor;
    Alcotest.test_case "round log to divisor" `Quick test_round_log_to_divisor;
    test_split_product;
    Alcotest.test_case "number of ordered factorisations" `Quick test_num_splits ]
