(* Tests for lib/sim: Device and Gpu_model. *)

open Testutil

let prog_and_pack ?(sg = dense_sg ()) which =
  let scheds = Sketch.generate sg in
  let sched = List.nth scheds which in
  let pack = Pack.prepare sg sched in
  (pack, Pack.program pack)

let test_devices () =
  Alcotest.(check int) "three devices" 3 (List.length Device.all);
  Alcotest.(check bool) "lookup" true (Device.by_name "A10G" = Some Device.a10g);
  Alcotest.(check bool) "unknown" true (Device.by_name "H100" = None);
  (* Edge device is much weaker than the desktop card. *)
  Alcotest.(check bool) "edge slower" true
    (Device.xavier_nx.fp32_gflops < Device.rtx_a5000.fp32_gflops /. 10.0)

let test_latency_positive_finite =
  qtest ~count:60 "latency positive and finite on valid schedules"
    (QCheck2.Gen.int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let pack, prog = prog_and_pack (seed mod 2) in
      let y = sample_valid rng pack in
      let l = Gpu_model.program_latency_ms Device.rtx_a5000 prog (Pack.env_of pack y) in
      Float.is_finite l && l > 0.0)

let test_latency_deterministic () =
  let rng = Rng.create 1 in
  let pack, prog = prog_and_pack 1 in
  let y = sample_valid rng pack in
  let env = Pack.env_of pack y in
  let l1 = Gpu_model.program_latency_ms Device.a10g prog env in
  let l2 = Gpu_model.program_latency_ms Device.a10g prog env in
  check_close "deterministic" l1 l2

let test_devices_ordering () =
  (* The same schedule must be slower on the edge device. *)
  let rng = Rng.create 2 in
  let pack, prog = prog_and_pack 1 in
  for _ = 1 to 10 do
    let y = sample_valid rng pack in
    let env = Pack.env_of pack y in
    let edge = Gpu_model.program_latency_ms Device.xavier_nx prog env in
    let desktop = Gpu_model.program_latency_ms Device.rtx_a5000 prog env in
    if edge <= desktop then Alcotest.failf "edge %.4f <= desktop %.4f" edge desktop
  done

let test_invalid_schedules_infinite () =
  let sg = dense_sg () in
  let multi = List.nth (Sketch.generate sg) 1 in
  let pack = Pack.prepare sg multi in
  let prog = Pack.program pack in
  (* Push every variable to its box maximum: thread product explodes. *)
  let y = Array.map (fun (_, hi) -> hi) (Pack.bounds_log pack) in
  let l = Gpu_model.program_latency_ms Device.rtx_a5000 prog (Pack.env_of pack y) in
  Alcotest.(check bool) "infinite for invalid" true (Float.is_finite l = false)

let test_latency_sensitive_to_schedule () =
  (* Different schedules of the same program should produce a wide latency
     spread — otherwise there is nothing to tune. *)
  let rng = Rng.create 3 in
  let pack, prog = prog_and_pack 1 in
  let lats = ref [] in
  for _ = 1 to 80 do
    let y = sample_valid rng pack in
    let l = Gpu_model.program_latency_ms Device.rtx_a5000 prog (Pack.env_of pack y) in
    if Float.is_finite l then lats := l :: !lats
  done;
  let mn, mx = Stats.min_max !lats in
  Alcotest.(check bool) "at least 5x spread" true (mx /. mn > 5.0)

let test_more_parallelism_helps_tiny_grid () =
  (* A one-block schedule must be slower than a well-spread one. *)
  let sg = dense_sg () in
  let simple = List.hd (Sketch.generate sg) in
  let pack = Pack.prepare sg simple in
  let prog = Pack.program pack in
  let names = Pack.var_names pack in
  let mk assoc =
    let y =
      Array.map (fun n -> log (float_of_int (List.assoc n assoc))) names
    in
    match Pack.round_to_valid pack y with
    | Some r -> Gpu_model.program_latency_ms Device.rtx_a5000 prog (Pack.env_of pack r)
    | None -> Alcotest.fail "expected feasible point"
  in
  (* spatial elements: 32*256 = 8192 *)
  let one_block = mk [ ("s0_th", 64); ("s0_in", 64); ("s0_vec", 2); ("s0_un", 16) ] in
  let spread = mk [ ("s0_th", 128); ("s0_in", 2); ("s0_vec", 1); ("s0_un", 16) ] in
  Alcotest.(check bool) "spread beats one block" true (spread < one_block)

let test_measure_noise_bounded () =
  let rng = Rng.create 4 in
  let pack, prog = prog_and_pack 0 in
  let y = sample_valid rng pack in
  let env = Pack.env_of pack y in
  let base = Gpu_model.program_latency_ms Device.a10g prog env in
  for _ = 1 to 50 do
    let m = Gpu_model.measure_ms rng Device.a10g prog env in
    if Float.abs (m -. base) /. base > 0.12 then
      Alcotest.failf "measurement noise too large: %.4f vs %.4f" m base
  done

let test_kernel_vs_program () =
  (* Program latency is the sum of its kernel latencies. *)
  let rng = Rng.create 6 in
  let sg = Compute.lower ~name:"s" (Op.Softmax { rows = 256; cols = 64 }) in
  let sched = List.hd (Sketch.generate sg) in
  let pack = Pack.prepare sg sched in
  let prog = Pack.program pack in
  let y = sample_valid rng pack in
  let env = Pack.env_of pack y in
  let total = Gpu_model.program_latency_ms Device.a10g prog env in
  let parts =
    Array.fold_left
      (fun acc ss -> acc +. Gpu_model.kernel_latency_ms Device.a10g ss env)
      0.0 prog.Loop_ir.stages
  in
  check_close ~tol:1e-9 "sum of kernels" parts total;
  Alcotest.(check bool) "multi-kernel program" true (Array.length prog.Loop_ir.stages > 1)

let test_flops_scale_latency () =
  (* 4x the work on the same well-tuned schedule shape should take clearly
     longer. *)
  let small = Compute.lower ~name:"d" (Op.Dense { batch = 32; in_dim = 128; out_dim = 256 }) in
  let big = Compute.lower ~name:"d" (Op.Dense { batch = 32; in_dim = 512; out_dim = 256 }) in
  let best sg =
    let rng = Rng.create 8 in
    let result = ref Float.infinity in
    List.iter
      (fun sched ->
        let pack = Pack.prepare sg sched in
        let prog = Pack.program pack in
        for _ = 1 to 60 do
          let y = sample_valid rng pack in
          let l = Gpu_model.program_latency_ms Device.rtx_a5000 prog (Pack.env_of pack y) in
          if l < !result then result := l
        done)
      (Sketch.generate sg);
    !result
  in
  Alcotest.(check bool) "bigger op slower" true (best big > best small *. 1.5)

let tests =
  [ Alcotest.test_case "device table" `Quick test_devices;
    test_latency_positive_finite;
    Alcotest.test_case "latency deterministic" `Quick test_latency_deterministic;
    Alcotest.test_case "edge device slower" `Quick test_devices_ordering;
    Alcotest.test_case "invalid schedules measure infinite" `Quick test_invalid_schedules_infinite;
    Alcotest.test_case "latency spread across schedules" `Quick test_latency_sensitive_to_schedule;
    Alcotest.test_case "parallelism helps underutilised grids" `Quick
      test_more_parallelism_helps_tiny_grid;
    Alcotest.test_case "measurement noise bounded" `Quick test_measure_noise_bounded;
    Alcotest.test_case "program latency sums kernels" `Quick test_kernel_vs_program;
    Alcotest.test_case "more flops, more time" `Quick test_flops_scale_latency ]
