let () =
  Alcotest.run "felix"
    [ ("util", Test_util_lib.tests);
      ("expr", Test_expr_lib.tests);
      ("tensor_ir", Test_tensor_ir_lib.tests);
      ("interp", Test_interp_lib.tests);
      ("graph", Test_graph_lib.tests);
      ("features", Test_features_lib.tests);
      ("sim", Test_sim_lib.tests);
      ("runtime", Test_runtime_lib.tests);
      ("telemetry", Test_telemetry_lib.tests);
      ("store", Test_store_lib.tests);
      ("cost_model", Test_cost_model_lib.tests);
      ("optim", Test_optim_lib.tests);
      ("frameworks_api", Test_frameworks_lib.tests);
      ("serve", Test_serve_lib.tests);
      ("measure", Test_measure_lib.tests) ]
