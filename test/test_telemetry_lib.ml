(* Tests for lib/telemetry: instruments, span nesting, histogram quantiles,
   and the JSONL trace round-trip. *)

let check_close ?(eps = 1e-9) msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected got)
    true
    (Float.abs (expected -. got) <= eps)

(* A deterministic fake clock: each call advances by a scripted step. *)
let scripted_clock steps =
  let t = ref 0.0 and remaining = ref steps in
  fun () ->
    (match !remaining with
    | [] -> ()
    | dt :: rest ->
      t := !t +. dt;
      remaining := rest);
    !t

let collecting_registry ?clock () =
  let reg = Telemetry.create ?clock () in
  let records = ref [] in
  Telemetry.add_sink reg (fun r -> records := r :: !records);
  (reg, fun () -> List.rev !records)

(* --- counters / gauges ------------------------------------------------------ *)

let test_counter_and_gauge () =
  let reg = Telemetry.create () in
  let c = Telemetry.counter reg "widgets" in
  Telemetry.Counter.incr c;
  Telemetry.Counter.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (Telemetry.Counter.value c);
  let g = Telemetry.gauge reg "depth" in
  Telemetry.Gauge.set g 2.5;
  Telemetry.Gauge.set g 7.0;
  check_close "gauge keeps last value" 7.0 (Telemetry.Gauge.value g);
  (* Same name returns the same instrument. *)
  let c' = Telemetry.counter reg "widgets" in
  Telemetry.Counter.incr c';
  Alcotest.(check int) "instruments are shared by name" 6 (Telemetry.Counter.value c)

let test_disabled_registry_is_inert () =
  let reg = Telemetry.create ~enabled:false () in
  let c = Telemetry.counter reg "noop" in
  Telemetry.Counter.incr ~by:10 c;
  Alcotest.(check int) "disabled counter stays zero" 0 (Telemetry.Counter.value c);
  let h = Telemetry.histogram reg "noop_ms" in
  Telemetry.Histogram.observe h 1.0;
  Alcotest.(check int) "disabled histogram records nothing" 0 (Telemetry.Histogram.count h);
  let records = ref 0 in
  Telemetry.add_sink reg (fun _ -> incr records);
  let sp = Telemetry.span_begin reg "quiet" in
  Telemetry.span_end reg sp;
  Telemetry.event reg "silent";
  Alcotest.(check int) "disabled registry emits no records" 0 !records;
  (* Flipping the switch wakes every existing instrument. *)
  Telemetry.enable reg;
  Telemetry.Counter.incr ~by:3 c;
  Alcotest.(check int) "re-enabled counter counts" 3 (Telemetry.Counter.value c)

let test_reset_preserves_instrument_identity () =
  let reg = Telemetry.create () in
  let c = Telemetry.counter reg "hits" in
  let h = Telemetry.histogram reg "lat_ms" in
  Telemetry.Counter.incr ~by:9 c;
  Telemetry.Histogram.observe h 1.0;
  Telemetry.reset reg;
  Alcotest.(check int) "reset zeroes counters in place" 0 (Telemetry.Counter.value c);
  Alcotest.(check int) "reset empties histograms in place" 0 (Telemetry.Histogram.count h);
  (* The pre-reset handle is still live: module-level instruments survive. *)
  Telemetry.Counter.incr c;
  Alcotest.(check int) "old handle still registered" 1
    (Telemetry.Counter.value (Telemetry.counter reg "hits"))

(* --- histogram quantiles ---------------------------------------------------- *)

let test_histogram_quantiles_uniform () =
  let reg = Telemetry.create () in
  let h = Telemetry.histogram reg "u" in
  (* Observe 1..100 in shuffled-ish order; quantiles must not depend on it. *)
  for i = 0 to 99 do
    Telemetry.Histogram.observe h (float_of_int (((i * 37) mod 100) + 1))
  done;
  Alcotest.(check int) "count" 100 (Telemetry.Histogram.count h);
  check_close "sum" 5050.0 (Telemetry.Histogram.sum h);
  check_close "mean" 50.5 (Telemetry.Histogram.mean h);
  (* Linear interpolation between order statistics: rank = p/100 * (n-1). *)
  check_close "p50 of 1..100" 50.5 (Telemetry.Histogram.p50 h);
  check_close ~eps:1e-6 "p95 of 1..100" 95.05 (Telemetry.Histogram.p95 h);
  check_close ~eps:1e-6 "p99 of 1..100" 99.01 (Telemetry.Histogram.p99 h);
  check_close "p0 is the min" 1.0 (Telemetry.Histogram.quantile h 0.0);
  check_close "p100 is the max" 100.0 (Telemetry.Histogram.quantile h 100.0)

let test_histogram_quantiles_small_and_skewed () =
  let reg = Telemetry.create () in
  let h = Telemetry.histogram reg "s" in
  Telemetry.Histogram.observe h 42.0;
  check_close "single sample: every quantile is it" 42.0 (Telemetry.Histogram.p99 h);
  let h2 = Telemetry.histogram reg "skew" in
  (* 99 fast samples and one slow outlier: p50 stays low, p99 crosses over. *)
  for _ = 1 to 99 do
    Telemetry.Histogram.observe h2 1.0
  done;
  Telemetry.Histogram.observe h2 1000.0;
  check_close "p50 ignores the outlier" 1.0 (Telemetry.Histogram.p50 h2);
  Alcotest.(check bool) "p99 feels the outlier" true (Telemetry.Histogram.p99 h2 > 1.0)

(* --- spans ------------------------------------------------------------------ *)

let test_span_nesting_and_durations () =
  (* Clock script: t0 probe, outer begin, inner begin, inner end, outer end. *)
  let clock = scripted_clock [ 0.0; 1.0; 1.0; 2.0; 3.0 ] in
  let reg, records = collecting_registry ~clock () in
  let outer = Telemetry.span_begin reg "outer" in
  let inner = Telemetry.span_begin reg "inner" ~attrs:[ ("depth", Telemetry.Int 2) ] in
  Telemetry.span_end reg inner;
  Telemetry.span_end reg outer;
  match records () with
  | [ r_inner; r_outer ] ->
    Alcotest.(check string) "inner closes first" "inner" r_inner.Telemetry.r_name;
    Alcotest.(check string) "outer closes last" "outer" r_outer.Telemetry.r_name;
    Alcotest.(check int) "inner's parent is outer" r_outer.Telemetry.r_id
      r_inner.Telemetry.r_parent;
    Alcotest.(check int) "outer is a root span" 0 r_outer.Telemetry.r_parent;
    check_close "inner lasted 2s" 2000.0 r_inner.Telemetry.r_dur_ms;
    check_close "outer lasted 6s" 6000.0 r_outer.Telemetry.r_dur_ms;
    (match Telemetry.attr_int r_inner.Telemetry.r_attrs "depth" with
    | Some 2 -> ()
    | _ -> Alcotest.fail "inner span lost its attrs")
  | rs -> Alcotest.fail (Printf.sprintf "expected 2 span records, got %d" (List.length rs))

let test_with_span_marks_errors () =
  let reg, records = collecting_registry () in
  (try Telemetry.with_span reg "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  match records () with
  | [ r ] ->
    Alcotest.(check string) "span still closed" "boom" r.Telemetry.r_name;
    (match List.assoc_opt "error" r.Telemetry.r_attrs with
    | Some (Telemetry.Bool true) -> ()
    | _ -> Alcotest.fail "escaping exception should tag the span with error=true")
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length rs))

let test_span_durations_feed_histograms () =
  let clock = scripted_clock [ 0.0; 0.0; 0.005 ] in
  let reg = Telemetry.create ~clock () in
  Telemetry.with_span reg "step" (fun () -> ());
  let h = Telemetry.histogram reg "span.step.ms" in
  Alcotest.(check int) "one observation" 1 (Telemetry.Histogram.count h);
  check_close ~eps:1e-6 "duration in ms" 5.0 (Telemetry.Histogram.mean h)

(* --- JSONL round-trip ------------------------------------------------------- *)

let roundtrip r =
  match Telemetry.Trace.of_line (Telemetry.to_jsonl r) with
  | Ok r' -> r'
  | Error e -> Alcotest.fail ("round-trip parse failed: " ^ e)

let test_jsonl_roundtrip () =
  let r =
    { Telemetry.r_kind = Telemetry.Span;
      r_name = "tuner.round";
      r_ts_s = 1.25;
      r_dur_ms = 17.5;
      r_id = 3;
      r_parent = 1;
      r_attrs =
        [ ("engine", Telemetry.Str "felix");
          ("round", Telemetry.Int 4);
          ("best_ms", Telemetry.Float 0.875);
          ("improved", Telemetry.Bool true)
        ]
    }
  in
  let r' = roundtrip r in
  Alcotest.(check string) "name survives" r.Telemetry.r_name r'.Telemetry.r_name;
  Alcotest.(check int) "ids survive" r.Telemetry.r_id r'.Telemetry.r_id;
  Alcotest.(check int) "parent survives" r.Telemetry.r_parent r'.Telemetry.r_parent;
  check_close "timestamp survives" r.Telemetry.r_ts_s r'.Telemetry.r_ts_s;
  check_close "duration survives" r.Telemetry.r_dur_ms r'.Telemetry.r_dur_ms;
  Alcotest.(check bool) "kind survives" true (r'.Telemetry.r_kind = Telemetry.Span);
  (match Telemetry.attr_str r'.Telemetry.r_attrs "engine" with
  | Some "felix" -> ()
  | _ -> Alcotest.fail "string attr lost");
  (match Telemetry.attr_int r'.Telemetry.r_attrs "round" with
  | Some 4 -> ()
  | _ -> Alcotest.fail "int attr lost");
  match Telemetry.attr_float r'.Telemetry.r_attrs "best_ms" with
  | Some f -> check_close "float attr survives" 0.875 f
  | None -> Alcotest.fail "float attr lost"

let test_jsonl_escaping () =
  let r =
    { Telemetry.r_kind = Telemetry.Event;
      r_name = "odd \"name\"\nwith\tcontrol";
      r_ts_s = 0.0;
      r_dur_ms = 0.0;
      r_id = 1;
      r_parent = 0;
      r_attrs = [ ("msg", Telemetry.Str "back\\slash and \"quotes\"") ]
    }
  in
  let line = Telemetry.to_jsonl r in
  Alcotest.(check bool) "one line per record" false (String.contains line '\n');
  let r' = roundtrip r in
  Alcotest.(check string) "escaped name survives" r.Telemetry.r_name r'.Telemetry.r_name;
  match Telemetry.attr_str r'.Telemetry.r_attrs "msg" with
  | Some s -> Alcotest.(check string) "escaped attr survives" "back\\slash and \"quotes\"" s
  | None -> Alcotest.fail "escaped attr lost"

let test_trace_read_file_skips_garbage () =
  let reg, _ = collecting_registry () in
  let path = Filename.temp_file "felix_trace" ".jsonl" in
  let oc = open_out path in
  let sink = Telemetry.jsonl_sink oc in
  Telemetry.add_sink reg sink;
  Telemetry.with_span reg "a" (fun () -> Telemetry.event reg "b");
  output_string oc "this is not json\n";
  output_string oc "{\"type\":\"span\"\n";
  close_out oc;
  let records = Telemetry.Trace.read_file path in
  Sys.remove path;
  Alcotest.(check int) "two well-formed records survive" 2 (List.length records);
  Alcotest.(check (list string)) "in file order" [ "b"; "a" ]
    (List.map (fun r -> r.Telemetry.r_name) records)

let tests =
  [ Alcotest.test_case "counter and gauge basics" `Quick test_counter_and_gauge;
    Alcotest.test_case "disabled registry is inert" `Quick test_disabled_registry_is_inert;
    Alcotest.test_case "reset keeps instrument identity" `Quick
      test_reset_preserves_instrument_identity;
    Alcotest.test_case "quantiles: uniform 1..100" `Quick test_histogram_quantiles_uniform;
    Alcotest.test_case "quantiles: singleton and skew" `Quick
      test_histogram_quantiles_small_and_skewed;
    Alcotest.test_case "span nesting and durations" `Quick test_span_nesting_and_durations;
    Alcotest.test_case "with_span tags escaping exceptions" `Quick test_with_span_marks_errors;
    Alcotest.test_case "span durations feed histograms" `Quick
      test_span_durations_feed_histograms;
    Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl escaping" `Quick test_jsonl_escaping;
    Alcotest.test_case "trace reader skips malformed lines" `Quick
      test_trace_read_file_skips_garbage
  ]
