(* Tests for lib/tensor_ir: Op, Compute, Schedule, Sketch, Loop_ir. *)

open Testutil

let all_ops =
  [ Op.Conv2d
      { batch = 1; in_chan = 16; out_chan = 32; in_h = 14; in_w = 14; kernel_h = 3;
        kernel_w = 3; stride = 1; pad = 1; groups = 1 };
    Op.Conv2d
      { batch = 2; in_chan = 32; out_chan = 32; in_h = 28; in_w = 28; kernel_h = 3;
        kernel_w = 3; stride = 2; pad = 1; groups = 32 };
    Op.Conv3d
      { batch = 1; in_chan = 8; out_chan = 16; in_d = 4; in_h = 8; in_w = 8; kernel_d = 3;
        kernel_h = 3; kernel_w = 3; stride = 1; pad = 1 };
    Op.Tconv2d
      { batch = 1; in_chan = 64; out_chan = 32; in_h = 8; in_w = 8; kernel_h = 4;
        kernel_w = 4; stride = 2; pad = 1 };
    Op.Dense { batch = 16; in_dim = 64; out_dim = 128 };
    Op.Batch_matmul { batch = 4; m = 32; k = 16; n = 32 };
    Op.Maxpool2d { batch = 1; chan = 16; in_h = 28; in_w = 28; kernel = 3; stride = 2; pad = 1 };
    Op.Avgpool2d { batch = 1; chan = 16; in_h = 28; in_w = 28; kernel = 2; stride = 2; pad = 0 };
    Op.Global_avgpool { batch = 2; chan = 32; in_h = 7; in_w = 7 };
    Op.Softmax { rows = 64; cols = 32 };
    Op.Layer_norm { rows = 64; cols = 32 };
    Op.Batch_norm_infer { batch = 1; chan = 16; spatial = 196 };
    Op.Elemwise (Op.Relu, 1024);
    Op.Elemwise (Op.Gelu, 512);
    Op.Binary (Op.Add, 1024);
    Op.Bias_add { rows = 16; cols = 128 };
    Op.Concat { parts = [ 1; 49 ]; rest = 768 } ]

let test_conv2d_output_shape () =
  let op =
    Op.Conv2d
      { batch = 1; in_chan = 3; out_chan = 64; in_h = 224; in_w = 224; kernel_h = 7;
        kernel_w = 7; stride = 2; pad = 3; groups = 1 }
  in
  Alcotest.(check (list int)) "7x7/2 conv" [ 1; 64; 112; 112 ] (Op.output_shape op)

let test_tconv2d_output_shape () =
  let op =
    Op.Tconv2d
      { batch = 1; in_chan = 100; out_chan = 1024; in_h = 1; in_w = 1; kernel_h = 4;
        kernel_w = 4; stride = 1; pad = 0 }
  in
  Alcotest.(check (list int)) "1x1 -> 4x4" [ 1; 1024; 4; 4 ] (Op.output_shape op);
  let op2 =
    Op.Tconv2d
      { batch = 1; in_chan = 512; out_chan = 256; in_h = 8; in_w = 8; kernel_h = 4;
        kernel_w = 4; stride = 2; pad = 1 }
  in
  Alcotest.(check (list int)) "8x8 -> 16x16" [ 1; 256; 16; 16 ] (Op.output_shape op2)

let test_dense_flops () =
  check_close "2*B*I*O" (2.0 *. 16.0 *. 64.0 *. 128.0)
    (Op.flops (Op.Dense { batch = 16; in_dim = 64; out_dim = 128 }))

let test_flops_positive () =
  List.iter
    (fun op ->
      if Op.flops op <= 0.0 then Alcotest.failf "flops <= 0 for %s" (Op.name op);
      if Op.input_bytes op <= 0.0 then Alcotest.failf "input bytes <= 0 for %s" (Op.name op))
    all_ops

let test_grouped_conv_flops () =
  let full =
    Op.Conv2d
      { batch = 1; in_chan = 32; out_chan = 32; in_h = 14; in_w = 14; kernel_h = 3;
        kernel_w = 3; stride = 1; pad = 1; groups = 1 }
  in
  let depthwise =
    Op.Conv2d
      { batch = 1; in_chan = 32; out_chan = 32; in_h = 14; in_w = 14; kernel_h = 3;
        kernel_w = 3; stride = 1; pad = 1; groups = 32 }
  in
  check_close "depthwise is 32x cheaper" 32.0 (Op.flops full /. Op.flops depthwise)

let test_describe () =
  List.iter
    (fun op ->
      let d = Op.describe op in
      if not (contains ~needle:(Op.name op) d) then Alcotest.failf "describe misses name: %s" d)
    all_ops

let test_lower_validates () =
  List.iter
    (fun op ->
      let sg = Compute.lower ~name:"t" op in
      match Compute.validate sg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Op.name op) e)
    all_ops

let test_lower_flops_match_op () =
  (* For the matmul/conv family the lowered loop-nest flops equal the
     operator's closed-form flops. *)
  List.iter
    (fun op ->
      match op with
      | Op.Conv2d _ | Op.Conv3d _ | Op.Dense _ | Op.Batch_matmul _ ->
        let sg = Compute.lower ~name:"t" op in
        check_close ~tol:1e-9 (Op.name op) (Op.flops op) (Compute.subgraph_flops sg)
      | _ -> ())
    all_ops

let test_softmax_stages () =
  let sg = Compute.lower ~name:"s" (Op.Softmax { rows = 8; cols = 16 }) in
  Alcotest.(check int) "three stages" 3 (List.length sg.Compute.stages);
  Alcotest.(check int) "anchor is exp-sum" 1 sg.Compute.anchor

let test_fuse_elemwise () =
  let sg = dense_sg () in
  let fused = Compute.fuse_elemwise sg ~name:"relu" (Op.Elemwise (Op.Relu, 32 * 256)) in
  Alcotest.(check int) "stage appended" 2 (List.length fused.Compute.stages);
  Alcotest.(check bool) "still valid" true (Compute.validate fused = Ok ())

let test_fuse_elemwise_mismatch () =
  let sg = dense_sg () in
  Alcotest.(check bool) "size mismatch raises" true
    (try
       ignore (Compute.fuse_elemwise sg ~name:"bad" (Op.Elemwise (Op.Relu, 999)));
       false
     with Invalid_argument _ -> true)

let test_fuse_nonelemwise_rejected () =
  let sg = dense_sg () in
  Alcotest.(check bool) "conv not fusable" true
    (try
       ignore
         (Compute.fuse_elemwise sg ~name:"bad"
            (Op.Dense { batch = 32; in_dim = 256; out_dim = 1 }));
       false
     with Invalid_argument _ -> true)

let test_workload_key () =
  let k1 = Compute.workload_key (dense_sg ()) in
  let k2 = Compute.workload_key (dense_sg ()) in
  let k3 =
    Compute.workload_key (Compute.lower ~name:"other" (Op.Dense { batch = 32; in_dim = 128; out_dim = 512 }))
  in
  Alcotest.(check string) "stable across names" k1 k2;
  Alcotest.(check bool) "differs across shapes" false (String.equal k1 k3)

(* --- sketches ---------------------------------------------------------------- *)

let test_sketch_counts () =
  let scheds = Sketch.generate (dense_sg ()) in
  Alcotest.(check int) "dense gets simple + multitile" 2 (List.length scheds);
  let elem = Compute.lower ~name:"r" (Op.Elemwise (Op.Relu, 4096)) in
  Alcotest.(check int) "elementwise gets simple only" 1 (List.length (Sketch.generate elem))

let test_sketch_vars_have_bounds () =
  List.iter
    (fun sched ->
      List.iter
        (fun (v : Schedule.var) ->
          if v.lo < 1.0 || v.hi < v.lo then
            Alcotest.failf "bad bounds for %s: [%f, %f]" v.v_name v.lo v.hi)
        sched.Schedule.vars)
    (Sketch.generate (conv_sg ()))

let test_sketch_div_groups_reference_vars () =
  List.iter
    (fun sched ->
      let names = Schedule.var_names sched in
      List.iter
        (fun (extent, vars) ->
          if extent < 1 then Alcotest.fail "group extent < 1";
          List.iter
            (fun v -> if not (List.mem v names) then Alcotest.failf "unknown group var %s" v)
            vars)
        sched.Schedule.div_groups)
    (Sketch.generate (conv_sg ()))

let test_sketch_trivial_axes_skipped () =
  (* batch = 1 spatial axes must not create variables. *)
  let sg = Compute.lower ~name:"d" (Op.Dense { batch = 1; in_dim = 64; out_dim = 128 }) in
  List.iter
    (fun sched ->
      List.iter
        (fun (v : Schedule.var) ->
          if contains ~needle:"_i_" v.Schedule.v_name then
            Alcotest.failf "variable for trivial axis: %s" v.v_name)
        sched.Schedule.vars)
    (Sketch.generate sg)

let test_sketch_space_size () =
  List.iter
    (fun sched ->
      if Schedule.space_size sched < 10.0 then Alcotest.fail "search space suspiciously small")
    (Sketch.generate (dense_sg ()))

let test_schedule_steps_printable () =
  let sg = dense_sg () in
  List.iter
    (fun sched ->
      let steps = Schedule.steps sg sched in
      Alcotest.(check bool) "has steps" true (List.length steps > 0);
      List.iter
        (fun s ->
          let str = Schedule.step_to_string s in
          if String.length str = 0 then Alcotest.fail "empty step string")
        steps)
    (Sketch.generate sg)

(* --- loop IR ------------------------------------------------------------------ *)

let concrete_env sched =
  (* Set every variable to its lower bound (always feasible w.r.t. box). *)
  let bindings = List.map (fun (v : Schedule.var) -> (v.v_name, v.lo)) sched.Schedule.vars in
  Eval.env_of_list bindings

let test_loop_ir_geometry_all_ones () =
  let sg = dense_sg () in
  List.iter
    (fun sched ->
      let prog = Loop_ir.apply sg sched in
      let env = concrete_env sched in
      Array.iter
        (fun ss ->
          let grid = Eval.eval env (Loop_ir.grid_size ss) in
          let tpb = Eval.eval env (Loop_ir.block_threads ss) in
          let serial = Eval.eval env (Loop_ir.serial_spatial ss) in
          let vth = Eval.eval env (Loop_ir.vthreads ss) in
          (* with all factors 1 the whole stage runs as grid blocks of 1 *)
          check_close "tpb" 1.0 tpb;
          check_close "serial" 1.0 serial;
          check_close "vthreads" 1.0 vth;
          check_close "grid covers all output elements"
            (float_of_int (Compute.spatial_iterations ss.Loop_ir.stage))
            grid)
        prog.Loop_ir.stages)
    (Sketch.generate sg)

let test_loop_ir_iteration_conservation () =
  (* grid * threads * serial == spatial iterations, for any valid rounding. *)
  let rng = Rng.create 99 in
  let sg = conv_sg () in
  List.iter
    (fun sched ->
      let pack = Pack.prepare sg sched in
      let prog = Pack.program pack in
      for _ = 1 to 20 do
        let y = sample_valid rng pack in
        let env = Pack.env_of pack y in
        Array.iter
          (fun ss ->
            let product =
              Eval.eval env (Loop_ir.grid_size ss)
              *. Eval.eval env (Loop_ir.block_threads ss)
              *. Eval.eval env (Loop_ir.serial_spatial ss)
            in
            check_close ~tol:1e-6 "iteration conservation"
              (float_of_int (Compute.spatial_iterations ss.Loop_ir.stage))
              product)
          prog.Loop_ir.stages
      done)
    (Sketch.generate sg)

let test_loop_ir_inlined_folding () =
  let sg =
    Compute.fuse_elemwise (dense_sg ()) ~name:"relu" (Op.Elemwise (Op.Relu, 32 * 256))
  in
  let scheds = Sketch.generate sg in
  List.iter
    (fun sched ->
      let prog = Loop_ir.apply sg sched in
      Alcotest.(check int) "one kernel stage" 1 (Array.length prog.Loop_ir.stages);
      Alcotest.(check int) "fused consumer attached" 1
        (List.length prog.Loop_ir.stages.(0).Loop_ir.fused_elemwise))
    scheds

let test_loop_ir_shared_bytes () =
  let sg = dense_sg () in
  let scheds = Sketch.generate sg in
  let simple = List.nth scheds 0 and multi = List.nth scheds 1 in
  let prog_simple = Loop_ir.apply sg simple in
  Alcotest.(check bool) "simple has no shared cache" true
    (Expr.equal Expr.zero (Loop_ir.shared_bytes prog_simple.Loop_ir.stages.(0)));
  let prog_multi = Loop_ir.apply sg multi in
  let env = concrete_env multi in
  let sb = Eval.eval env (Loop_ir.shared_bytes prog_multi.Loop_ir.stages.(0)) in
  Alcotest.(check bool) "multitile caches something" true (sb > 0.0)

let test_loop_ir_footprint_monotone () =
  (* Growing the thread tile cannot shrink the block-scope footprint. *)
  let sg = dense_sg () in
  let multi = List.nth (Sketch.generate sg) 1 in
  let prog = Loop_ir.apply sg multi in
  let ss = prog.Loop_ir.stages.(0) in
  let access = List.hd ss.Loop_ir.stage.Compute.reads in
  let foot threads =
    let bindings =
      List.map
        (fun (v : Schedule.var) ->
          (v.v_name, if contains ~needle:"_t" v.v_name then threads else 1.0))
        multi.Schedule.vars
    in
    Eval.eval (Eval.env_of_list bindings) (Loop_ir.access_footprint ss Loop_ir.Block_scope access)
  in
  Alcotest.(check bool) "monotone" true (foot 4.0 >= foot 2.0 && foot 2.0 >= foot 1.0)

let test_loop_tree_rendering () =
  let sg = dense_sg () in
  List.iter
    (fun sched ->
      let prog = Loop_ir.apply sg sched in
      let s = Loop_ir.to_loop_tree_string prog in
      Alcotest.(check bool) "mentions blockIdx" true (contains ~needle:"blockIdx.x" s);
      Alcotest.(check bool) "mentions threadIdx" true (contains ~needle:"threadIdx.x" s);
      Alcotest.(check bool) "mentions unroll" true (contains ~needle:"auto_unroll" s))
    (Sketch.generate sg)

let test_loop_ir_plan_mismatch () =
  let sg = dense_sg () in
  let sched = List.hd (Sketch.generate sg) in
  let bad = { sched with Schedule.plans = [||] } in
  Alcotest.(check bool) "plan count mismatch raises" true
    (try
       ignore (Loop_ir.apply sg bad);
       false
     with Invalid_argument _ -> true)

let tests =
  [ Alcotest.test_case "conv2d output shape" `Quick test_conv2d_output_shape;
    Alcotest.test_case "tconv2d output shape" `Quick test_tconv2d_output_shape;
    Alcotest.test_case "dense flops" `Quick test_dense_flops;
    Alcotest.test_case "flops and bytes positive for all ops" `Quick test_flops_positive;
    Alcotest.test_case "grouped conv flops" `Quick test_grouped_conv_flops;
    Alcotest.test_case "describe mentions op name" `Quick test_describe;
    Alcotest.test_case "lowering validates for all ops" `Quick test_lower_validates;
    Alcotest.test_case "lowered flops match closed form" `Quick test_lower_flops_match_op;
    Alcotest.test_case "softmax lowers to three stages" `Quick test_softmax_stages;
    Alcotest.test_case "fuse elementwise consumer" `Quick test_fuse_elemwise;
    Alcotest.test_case "fuse rejects element mismatch" `Quick test_fuse_elemwise_mismatch;
    Alcotest.test_case "fuse rejects non-elementwise" `Quick test_fuse_nonelemwise_rejected;
    Alcotest.test_case "workload key identity" `Quick test_workload_key;
    Alcotest.test_case "sketch counts match Figure 3" `Quick test_sketch_counts;
    Alcotest.test_case "sketch variable bounds" `Quick test_sketch_vars_have_bounds;
    Alcotest.test_case "sketch divisibility groups" `Quick test_sketch_div_groups_reference_vars;
    Alcotest.test_case "sketch skips trivial axes" `Quick test_sketch_trivial_axes_skipped;
    Alcotest.test_case "sketch search space size" `Quick test_sketch_space_size;
    Alcotest.test_case "schedule steps printable" `Quick test_schedule_steps_printable;
    Alcotest.test_case "loop IR geometry at unit factors" `Quick test_loop_ir_geometry_all_ones;
    Alcotest.test_case "loop IR iteration conservation" `Quick test_loop_ir_iteration_conservation;
    Alcotest.test_case "loop IR folds inlined stages" `Quick test_loop_ir_inlined_folding;
    Alcotest.test_case "loop IR shared memory bytes" `Quick test_loop_ir_shared_bytes;
    Alcotest.test_case "loop IR footprint monotonicity" `Quick test_loop_ir_footprint_monotone;
    Alcotest.test_case "loop tree rendering" `Quick test_loop_tree_rendering;
    Alcotest.test_case "loop IR plan mismatch" `Quick test_loop_ir_plan_mismatch ]

(* --- codegen -------------------------------------------------------------------- *)

let test_codegen_simple_kernel () =
  let sg = dense_sg () in
  let simple = List.hd (Sketch.generate sg) in
  let prog = Loop_ir.apply sg simple in
  let src = Codegen.program_source prog in
  Alcotest.(check bool) "has __global__" true (contains ~needle:"__global__" src);
  Alcotest.(check bool) "has kernel name" true (contains ~needle:"dense_kernel" src);
  Alcotest.(check bool) "has blockIdx" true (contains ~needle:"blockIdx.x" src);
  Alcotest.(check bool) "has fma body" true (contains ~needle:"acc +=" src);
  Alcotest.(check bool) "reads both buffers" true
    (contains ~needle:"dense_in" src && contains ~needle:"dense_w" src)

let test_codegen_multitile_kernel () =
  let sg = dense_sg () in
  let multi = List.nth (Sketch.generate sg) 1 in
  let prog = Loop_ir.apply sg multi in
  let src = Codegen.program_source prog in
  Alcotest.(check bool) "has shared staging" true (contains ~needle:"__shared__" src);
  Alcotest.(check bool) "has syncthreads" true (contains ~needle:"__syncthreads" src);
  Alcotest.(check bool) "has unroll pragma" true (contains ~needle:"#pragma unroll" src)

let test_codegen_concrete_schedule () =
  (* Substituting a concrete assignment produces fully numeric extents. *)
  let sg = dense_sg () in
  let multi = List.nth (Sketch.generate sg) 1 in
  let pack = Pack.prepare sg multi in
  let rng = Rng.create 41 in
  let y = sample_valid rng pack in
  let assign = Pack.assignment pack y in
  let concrete =
    Schedule.substitute multi (fun v -> Option.map Expr.int (List.assoc_opt v assign))
  in
  let src = Codegen.program_source (Loop_ir.apply sg concrete) in
  List.iter
    (fun (v, _) ->
      if contains ~needle:v src then Alcotest.failf "unsubstituted variable %s in codegen" v)
    assign

let test_codegen_fused_consumer () =
  let sg =
    Compute.fuse_elemwise (dense_sg ()) ~name:"relu" (Op.Elemwise (Op.Relu, 32 * 256))
  in
  let multi = List.nth (Sketch.generate sg) 1 in
  let src = Codegen.program_source (Loop_ir.apply sg multi) in
  Alcotest.(check bool) "fused consumer emitted" true (contains ~needle:"fused consumer" src);
  Alcotest.(check bool) "relu body" true (contains ~needle:"fmaxf" src)

let codegen_tests =
  [ Alcotest.test_case "codegen: simple kernel" `Quick test_codegen_simple_kernel;
    Alcotest.test_case "codegen: multi-tile kernel" `Quick test_codegen_multitile_kernel;
    Alcotest.test_case "codegen: concrete schedules are numeric" `Quick
      test_codegen_concrete_schedule;
    Alcotest.test_case "codegen: fused consumers" `Quick test_codegen_fused_consumer ]

let tests = tests @ codegen_tests
