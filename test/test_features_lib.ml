(* Tests for lib/features: Extract and Pack. *)

open Testutil

let test_feature_count () =
  Alcotest.(check int) "82 features as in the paper" 82 Extract.num_features;
  Alcotest.(check int) "names match count" 82 (Array.length Extract.feature_names)

let test_feature_names_unique () =
  let sorted = Array.to_list Extract.feature_names |> List.sort_uniq String.compare in
  Alcotest.(check int) "unique names" 82 (List.length sorted)

let test_extract_length_and_vars () =
  List.iter
    (fun (sched, prog) ->
      let feats = Extract.extract prog in
      Alcotest.(check int) "82 formulas" 82 (Array.length feats);
      let sched_vars = Schedule.var_names sched in
      Array.iter
        (fun f ->
          List.iter
            (fun v ->
              if not (List.mem v sched_vars) then Alcotest.failf "feature uses unknown var %s" v)
            (Expr.vars f))
        feats)
    (Sketch.generate_programs (dense_sg ()))

let test_float_add_formula () =
  (* float_add of a dense matmul is schedule-independent: B*I*O adds. *)
  let sg = dense_sg () in
  List.iter
    (fun (_sched, prog) ->
      let feats = Extract.extract_named prog in
      let name, f = feats.(0) in
      Alcotest.(check string) "first feature" "float_add" name;
      match Expr.const_value f with
      | Some v -> check_close "count" (32.0 *. 128.0 *. 256.0) v
      | None -> Alcotest.fail "float_add should fold to a constant")
    (Sketch.generate_programs sg)

let test_int_ops_has_select () =
  (* Section 3.3's running example: the address-arithmetic feature contains
     a select on the unroll variable. *)
  let sg = dense_sg () in
  let found = ref false in
  List.iter
    (fun ((_ : Schedule.t), prog) ->
      let feats = Extract.extract_named prog in
      Array.iter
        (fun (name, f) ->
          if name = "int_ops" && contains ~needle:"select" (Expr.to_string f) then found := true)
        feats)
    (Sketch.generate_programs sg);
  Alcotest.(check bool) "int_ops uses select" true !found

let test_pack_features_finite =
  qtest ~count:50 "features finite on random valid points" (QCheck2.Gen.int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let sg = conv_sg () in
      List.for_all
        (fun sched ->
          let pack = Pack.prepare sg sched in
          let y = sample_valid rng pack in
          let feats = Pack.features_at pack y in
          Array.length feats = 82 && Array.for_all Float.is_finite feats)
        (Sketch.generate sg))

let test_pack_gradient_fd () =
  (* The assembled feature tape (smooth + log + exp substitution) must agree
     with finite differences. *)
  let rng = Rng.create 5 in
  let sg = dense_sg () in
  List.iter
    (fun sched ->
      let pack = Pack.prepare sg sched in
      let y = sample_valid rng pack in
      let eps = 1e-5 in
      let adj = Array.make 82 1.0 in
      let base, grad = Pack.features_vjp pack y adj in
      let sum_base = Array.fold_left ( +. ) 0.0 base in
      Array.iteri
        (fun i _ ->
          let yp = Array.copy y in
          yp.(i) <- y.(i) +. eps;
          let sp = Array.fold_left ( +. ) 0.0 (Pack.features_at pack yp) in
          let ym = Array.copy y in
          ym.(i) <- y.(i) -. eps;
          let sm = Array.fold_left ( +. ) 0.0 (Pack.features_at pack ym) in
          let fd = (sp -. sm) /. (2.0 *. eps) in
          ignore sum_base;
          let denom = max 1.0 (max (Float.abs fd) (Float.abs grad.(i))) in
          if Float.abs (fd -. grad.(i)) /. denom > 1e-2 then
            Alcotest.failf "gradient mismatch at %d: fd %.6f vs ad %.6f" i fd grad.(i))
        y)
    (Sketch.generate sg)

let test_pack_round_divisibility =
  qtest ~count:50 "rounding yields divisor-consistent tiles" (QCheck2.Gen.int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let sg = conv_sg () in
      List.for_all
        (fun sched ->
          let pack = Pack.prepare sg sched in
          let y = sample_valid rng pack in
          let assign = Pack.assignment pack y in
          List.for_all
            (fun (extent, vars) ->
              let product =
                List.fold_left (fun acc v -> acc * List.assoc v assign) 1 vars
              in
              extent mod product = 0)
            sched.Schedule.div_groups)
        (Sketch.generate sg))

let test_pack_penalty_zero_when_feasible () =
  let rng = Rng.create 17 in
  let sg = dense_sg () in
  List.iter
    (fun sched ->
      let pack = Pack.prepare sg sched in
      let y = sample_valid rng pack in
      let v, _grad = Pack.penalty_value_grad pack y in
      if v > 1e-6 then Alcotest.failf "penalty %.6f at a feasible point" v)
    (Sketch.generate sg)

let test_pack_penalty_positive_when_violated () =
  let sg = dense_sg () in
  let multi = List.nth (Sketch.generate sg) 1 in
  let pack = Pack.prepare sg multi in
  (* All variables at their upper bound violates the tile-product bounds. *)
  let y = Array.map (fun (_, hi) -> hi) (Pack.bounds_log pack) in
  let v, grad = Pack.penalty_value_grad pack y in
  Alcotest.(check bool) "penalty positive" true (v > 0.0);
  Alcotest.(check bool) "gradient nonzero" true (Array.exists (fun g -> g <> 0.0) grad)

let test_pack_round_infeasible_returns_none () =
  let sg = dense_sg () in
  let multi = List.nth (Sketch.generate sg) 1 in
  let pack = Pack.prepare sg multi in
  let y = Array.map (fun (_, hi) -> hi) (Pack.bounds_log pack) in
  Alcotest.(check bool) "upper corner infeasible" true (Pack.round_to_valid pack y = None)

let test_pack_schedule_key_stability () =
  let rng = Rng.create 3 in
  let sg = dense_sg () in
  let pack = Pack.prepare sg (List.hd (Sketch.generate sg)) in
  let y = sample_valid rng pack in
  Alcotest.(check string) "same point same key" (Pack.schedule_key pack y)
    (Pack.schedule_key pack y);
  let y2 = sample_valid rng pack in
  if Pack.schedule_key pack y = Pack.schedule_key pack y2 then ()
  (* collisions possible but assignments must then match *)
  else Alcotest.(check bool) "different points differ" true true

let test_pack_schedule_key_format () =
  (* The single-buffer construction must produce exactly the historical
     "<sketch>:v0,v1,..." string derived from [assignment]. *)
  let rng = Rng.create 29 in
  let sg = dense_sg () in
  List.iter
    (fun sched ->
      let pack = Pack.prepare sg sched in
      for _ = 1 to 5 do
        let y = sample_valid rng pack in
        let legacy =
          (Pack.schedule pack).Schedule.sched_name ^ ":"
          ^ String.concat ","
              (List.map (fun (_, v) -> string_of_int v) (Pack.assignment pack y))
        in
        Alcotest.(check string) "legacy key format" legacy (Pack.schedule_key pack y)
      done)
    (Sketch.generate sg)

let test_pack_unoptimized_tapes_bitwise () =
  (* prepare ~optimize:false must reproduce the optimised pack's features,
     penalties and VJPs bitwise — the tape optimiser is exact. *)
  let rng = Rng.create 31 in
  let sg = dense_sg () in
  let bits_eq a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  List.iter
    (fun sched ->
      let p_opt = Pack.prepare sg sched in
      let p_raw = Pack.prepare ~optimize:false sg sched in
      for _ = 1 to 3 do
        let y = sample_valid rng p_opt in
        Alcotest.(check bool) "features bitwise" true
          (bits_eq (Pack.features_at p_opt y) (Pack.features_at p_raw y));
        let adj = Array.init 82 (fun i -> float_of_int (i - 41) /. 10.0) in
        let f1, g1 = Pack.features_vjp p_opt y adj in
        let f2, g2 = Pack.features_vjp p_raw y adj in
        Alcotest.(check bool) "vjp bitwise" true (bits_eq f1 f2 && bits_eq g1 g2);
        let v1, pg1 = Pack.penalty_value_grad p_opt y in
        let v2, pg2 = Pack.penalty_value_grad p_raw y in
        Alcotest.(check bool) "penalty bitwise" true
          (Int64.equal (Int64.bits_of_float v1) (Int64.bits_of_float v2) && bits_eq pg1 pg2)
      done)
    (Sketch.generate sg)

let test_pack_workspace_bitwise () =
  (* The fused workspace sweeps must match the allocating entry points
     bitwise, including across reuse of the same workspace. *)
  let rng = Rng.create 37 in
  let sg = conv_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let ws = Pack.workspace pack in
  let n = Pack.num_vars pack in
  let bits_eq a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  for _ = 1 to 8 do
    let y = sample_valid rng pack in
    let feats = Pack.features_at pack y in
    Alcotest.(check bool) "forward bitwise" true
      (bits_eq feats (Pack.features_forward pack ws y));
    let adj = Array.init 82 (fun i -> sin (float_of_int i)) in
    let _, dy = Pack.features_vjp pack y adj in
    let dy' = Array.make n 0.0 in
    (* backward against the retained forward values *)
    ignore (Pack.features_forward pack ws y);
    Pack.features_backward pack ws adj dy';
    Alcotest.(check bool) "backward bitwise" true (bits_eq dy dy');
    let v, pg = Pack.penalty_value_grad pack y in
    let pg' = Array.make n 0.0 in
    let v' = Pack.penalty_value_grad_into pack ws y pg' in
    Alcotest.(check bool) "penalty value bitwise" true
      (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v'));
    Alcotest.(check bool) "penalty grad bitwise" true (bits_eq pg pg')
  done

let test_pack_batch_bitwise () =
  (* The structure-of-arrays sweeps must reproduce the scalar workspace
     kernels bitwise on every lane, at any batch size. *)
  let rng = Rng.create 41 in
  let sg = conv_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let ws = Pack.workspace pack in
  let n = Pack.num_vars pack in
  let bits = Int64.bits_of_float in
  let bits_eq a b = Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) a b in
  List.iter
    (fun batch ->
      let bws = Pack.batch_workspace pack ~batch in
      let points = Array.init batch (fun _ -> sample_valid rng pack) in
      let ys = Array.make (batch * n) 0.0 in
      Array.iteri (fun l y -> Array.blit y 0 ys (l * n) n) points;
      let feats =
        Array.sub (Pack.features_forward_batch pack bws ~batch ys) 0 (batch * 82)
      in
      let adj = Array.init (batch * 82) (fun j -> sin (float_of_int j)) in
      let grads = Array.make (batch * n) 0.0 in
      Pack.features_backward_batch pack bws ~batch adj grads;
      let pgrads = Array.make (batch * n) 0.0 in
      let pvals = Array.make batch 0.0 in
      Pack.penalty_value_grad_batch_into pack bws ~batch ys ~grads:pgrads ~values:pvals;
      Array.iteri
        (fun l y ->
          Alcotest.(check bool) "features bitwise" true
            (bits_eq (Pack.features_forward pack ws y) (Array.sub feats (l * 82) 82));
          let dy = Array.make n 0.0 in
          Pack.features_backward pack ws (Array.sub adj (l * 82) 82) dy;
          Alcotest.(check bool) "backward bitwise" true
            (bits_eq dy (Array.sub grads (l * n) n));
          let pg = Array.make n 0.0 in
          let v = Pack.penalty_value_grad_into pack ws y pg in
          Alcotest.(check bool) "penalty value bitwise" true
            (Int64.equal (bits v) (bits pvals.(l)));
          Alcotest.(check bool) "penalty grad bitwise" true
            (bits_eq pg (Array.sub pgrads (l * n) n)))
        points)
    [ 1; 4; 13 ]

let test_pack_plan_toggle_bitwise () =
  (* Compiled-plan and interpreted batch workspaces must be bitwise
     interchangeable on the same pack, at any batch size — the execution
     strategy is unobservable in results. *)
  let rng = Rng.create 43 in
  let sg = conv_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let n = Pack.num_vars pack in
  let bits_eq a b =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      a b
  in
  let was = Pack.using_plan_execution () in
  Fun.protect ~finally:(fun () -> Pack.set_plan_execution was)
  @@ fun () ->
  List.iter
    (fun batch ->
      let points = Array.init batch (fun _ -> sample_valid rng pack) in
      let ys = Array.make (batch * n) 0.0 in
      Array.iteri (fun l y -> Array.blit y 0 ys (l * n) n) points;
      let adj = Array.init (batch * 82) (fun j -> cos (float_of_int j)) in
      let sweep planned =
        Pack.set_plan_execution planned;
        let bws = Pack.batch_workspace pack ~batch in
        Alcotest.(check bool) "strategy honoured" planned
          (Pack.batch_workspace_planned bws);
        let feats =
          Array.sub (Pack.features_forward_batch pack bws ~batch ys) 0 (batch * 82)
        in
        let grads = Array.make (batch * n) 0.0 in
        Pack.features_backward_batch pack bws ~batch adj grads;
        let pgrads = Array.make (batch * n) 0.0 in
        let pvals = Array.make batch 0.0 in
        Pack.penalty_value_grad_batch_into pack bws ~batch ys ~grads:pgrads
          ~values:pvals;
        (feats, grads, pgrads, pvals)
      in
      let f1, g1, pg1, pv1 = sweep true in
      let f2, g2, pg2, pv2 = sweep false in
      Alcotest.(check bool) "features bitwise" true (bits_eq f1 f2);
      Alcotest.(check bool) "feature grads bitwise" true (bits_eq g1 g2);
      Alcotest.(check bool) "penalty grads bitwise" true (bits_eq pg1 pg2);
      Alcotest.(check bool) "penalty values bitwise" true (bits_eq pv1 pv2))
    [ 1; 5; 32 ]

let test_pack_cache_stats () =
  let get k stats = List.assoc k stats in
  let sg = dense_sg () in
  let sched = List.hd (Sketch.generate sg) in
  let before = Pack.cache_stats () in
  (* An unseen (or evicted) schedule is one miss; repeating it is a hit. *)
  let p1 = Pack.prepare_cached sg sched in
  let mid = Pack.cache_stats () in
  let p2 = Pack.prepare_cached sg sched in
  let after = Pack.cache_stats () in
  Alcotest.(check bool) "same pack returned" true (p1 == p2);
  Alcotest.(check bool) "first lookup counted" true
    (get "hits" mid + get "misses" mid = get "hits" before + get "misses" before + 1);
  Alcotest.(check int) "repeat is a hit" (get "hits" mid + 1) (get "hits" after);
  Alcotest.(check bool) "entries positive" true (get "entries" after >= 1);
  Alcotest.(check bool) "evictions monotone" true
    (get "evictions" after >= get "evictions" before)

(* --- persistent disk cache -------------------------------------------------- *)

let fresh_cache_dir () =
  let path = Filename.temp_file "felix_pack_cache" "" in
  Sys.remove path;
  path

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let counters () = Pack.disk_counters ()
let get k l = List.assoc k l

let test_pack_disk_cache_bitwise () =
  let dir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let sg = dense_sg () in
  let sched = List.hd (Sketch.generate sg) in
  let cold = Pack.prepare sg sched in
  let before = counters () in
  let miss = Pack.prepare ~cache_dir:dir sg sched in
  let mid = counters () in
  let warm = Pack.prepare ~cache_dir:dir sg sched in
  let after = counters () in
  Alcotest.(check string) "cold = miss-path" (Pack.digest cold) (Pack.digest miss);
  Alcotest.(check string) "cold = disk-warm" (Pack.digest cold) (Pack.digest warm);
  Alcotest.(check int) "first touch missed" (get "disk_misses" before + 1)
    (get "disk_misses" mid);
  Alcotest.(check int) "first touch wrote" (get "disk_writes" before + 1)
    (get "disk_writes" mid);
  Alcotest.(check int) "second touch hit" (get "disk_hits" mid + 1)
    (get "disk_hits" after);
  let st = Pack.disk_cache_stats dir in
  Alcotest.(check int) "one entry" 1 (get "entries" st);
  Alcotest.(check bool) "entry has bytes" true (get "bytes" st > 0);
  Alcotest.(check int) "clear removes it" 1 (Pack.clear_disk_cache dir);
  Alcotest.(check int) "empty after clear" 0 (get "entries" (Pack.disk_cache_stats dir))

let test_pack_disk_cache_corruption () =
  let dir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let sg = dense_sg () in
  let sched = List.hd (Sketch.generate sg) in
  let cold = Pack.prepare ~cache_dir:dir sg sched in
  (* Truncate every entry to garbage: a corrupt cache must fall back to a
     recompile (bitwise-identical result), never crash. *)
  Array.iter
    (fun f ->
      let oc = open_out (Filename.concat dir f) in
      output_string oc "{not json";
      close_out oc)
    (Sys.readdir dir);
  let before = counters () in
  let recompiled = Pack.prepare ~cache_dir:dir sg sched in
  let after = counters () in
  Alcotest.(check string) "recompile matches" (Pack.digest cold)
    (Pack.digest recompiled);
  Alcotest.(check bool) "corruption counted" true
    (get "disk_errors" after > get "disk_errors" before);
  (* The poisoned entry was rewritten: the next load is a clean hit. *)
  let mid = counters () in
  let warm = Pack.prepare ~cache_dir:dir sg sched in
  Alcotest.(check string) "rewritten entry hits" (Pack.digest cold) (Pack.digest warm);
  Alcotest.(check int) "hit counted" (get "disk_hits" mid + 1)
    (get "disk_hits" (counters ()))

let test_pack_disk_warm_skips_plan_compile () =
  (* Plans travel with the tapes through the disk cache: a warm hit must
     not invoke the plan compiler at all. *)
  let dir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let sg = dense_sg () in
  let sched = List.hd (Sketch.generate sg) in
  let cold = Pack.prepare ~cache_dir:dir sg sched in
  let before = Autodiff.Tape.plan_compiles () in
  let warm = Pack.prepare ~cache_dir:dir sg sched in
  Alcotest.(check int) "warm hit compiles no plans" before
    (Autodiff.Tape.plan_compiles ());
  Alcotest.(check string) "warm pack identical" (Pack.digest cold) (Pack.digest warm);
  (* ... and the decoded plans execute identically to the cold pack's. *)
  let n = Pack.num_vars cold in
  let rng = Rng.create 47 in
  let batch = 7 in
  let ys = Array.make (batch * n) 0.0 in
  Array.iteri
    (fun l y -> Array.blit y 0 ys (l * n) n)
    (Array.init batch (fun _ -> sample_valid rng cold));
  let run pack =
    let bws = Pack.batch_workspace pack ~batch in
    Array.sub (Pack.features_forward_batch pack bws ~batch ys) 0 (batch * 82)
  in
  Alcotest.(check bool) "decoded plan bitwise" true
    (Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       (run cold) (run warm))

let test_prepare_all_parallel_identity () =
  let dir = fresh_cache_dir () in
  Fun.protect ~finally:(fun () -> remove_tree dir) @@ fun () ->
  let pairs =
    List.concat_map
      (fun sg -> List.map (fun s -> (sg, s)) (Sketch.generate sg))
      [ dense_sg (); conv_sg () ]
  in
  Pack.clear_memory_cache ();
  let serial = List.map Pack.digest (Pack.prepare_all pairs) in
  Pack.clear_memory_cache ();
  let parallel =
    Runtime.with_runtime ~domains:4 (fun rt ->
        List.map Pack.digest (Pack.prepare_all ~runtime:rt pairs))
  in
  Pack.clear_memory_cache ();
  let parallel_disk_cold =
    Runtime.with_runtime ~domains:4 (fun rt ->
        List.map Pack.digest (Pack.prepare_all ~runtime:rt ~cache_dir:dir pairs))
  in
  Pack.clear_memory_cache ();
  let disk_warm = List.map Pack.digest (Pack.prepare_all ~cache_dir:dir pairs) in
  Alcotest.(check (list string)) "4 domains = serial" serial parallel;
  Alcotest.(check (list string)) "4 domains + cold disk = serial" serial
    parallel_disk_cold;
  Alcotest.(check (list string)) "1 domain + warm disk = serial" serial disk_warm

let test_prepare_cached_optimize_key () =
  Pack.clear_memory_cache ();
  let sg = dense_sg () in
  let sched = List.hd (Sketch.generate sg) in
  let opt = Pack.prepare_cached sg sched in
  let raw = Pack.prepare_cached ~optimize:false sg sched in
  let opt' = Pack.prepare_cached sg sched in
  let raw' = Pack.prepare_cached ~optimize:false sg sched in
  Alcotest.(check bool) "optimize=true memoised" true (opt == opt');
  Alcotest.(check bool) "optimize=false memoised" true (raw == raw');
  (* The flag is part of the key: the two entries never alias. *)
  Alcotest.(check bool) "flags do not collide" true (not (opt == raw))

let test_pack_env_matches_assignment () =
  let rng = Rng.create 23 in
  let sg = dense_sg () in
  let pack = Pack.prepare sg (List.hd (Sketch.generate sg)) in
  let y = sample_valid rng pack in
  let env = Pack.env_of pack y in
  List.iter
    (fun (name, v) -> check_close name (float_of_int v) (env name))
    (Pack.assignment pack y)

let tests =
  [ Alcotest.test_case "feature count is 82" `Quick test_feature_count;
    Alcotest.test_case "feature names unique" `Quick test_feature_names_unique;
    Alcotest.test_case "extract length and variable scoping" `Quick test_extract_length_and_vars;
    Alcotest.test_case "float_add formula (paper table)" `Quick test_float_add_formula;
    Alcotest.test_case "int_ops contains select (paper 3.3)" `Quick test_int_ops_has_select;
    test_pack_features_finite;
    Alcotest.test_case "pack gradient vs finite differences" `Quick test_pack_gradient_fd;
    test_pack_round_divisibility;
    Alcotest.test_case "penalty zero at feasible points" `Quick test_pack_penalty_zero_when_feasible;
    Alcotest.test_case "penalty positive when violated" `Quick test_pack_penalty_positive_when_violated;
    Alcotest.test_case "rounding rejects infeasible corner" `Quick test_pack_round_infeasible_returns_none;
    Alcotest.test_case "schedule key stability" `Quick test_pack_schedule_key_stability;
    Alcotest.test_case "schedule key matches legacy format" `Quick test_pack_schedule_key_format;
    Alcotest.test_case "tape optimiser exact on pack tapes" `Quick
      test_pack_unoptimized_tapes_bitwise;
    Alcotest.test_case "pack workspace sweeps bitwise-equal" `Quick test_pack_workspace_bitwise;
    Alcotest.test_case "pack batched sweeps bitwise-equal scalar" `Quick
      test_pack_batch_bitwise;
    Alcotest.test_case "plan toggle is bitwise-unobservable" `Quick
      test_pack_plan_toggle_bitwise;
    Alcotest.test_case "warm disk hit skips plan compilation" `Quick
      test_pack_disk_warm_skips_plan_compile;
    Alcotest.test_case "prepare_cached exposes LRU counters" `Quick test_pack_cache_stats;
    Alcotest.test_case "disk cache round-trips bitwise" `Quick test_pack_disk_cache_bitwise;
    Alcotest.test_case "disk cache survives corruption" `Quick test_pack_disk_cache_corruption;
    Alcotest.test_case "prepare_all identical at 1/4 domains, cold/warm disk" `Quick
      test_prepare_all_parallel_identity;
    Alcotest.test_case "prepare_cached keys include optimize" `Quick
      test_prepare_cached_optimize_key;
    Alcotest.test_case "env matches integer assignment" `Quick test_pack_env_matches_assignment ]
