(* Tests for lib/cost_model: Adam, Mlp, Dataset, Train. *)

open Testutil

let test_adam_minimises_quadratic () =
  let params = [| 5.0; -3.0 |] in
  let adam = Adam.create ~lr:0.1 2 in
  for _ = 1 to 500 do
    let grads = Array.map (fun p -> 2.0 *. p) params in
    Adam.step adam ~params ~grads
  done;
  Alcotest.(check bool) "converged to 0" true
    (Float.abs params.(0) < 1e-3 && Float.abs params.(1) < 1e-3)

let test_adam_arity () =
  let adam = Adam.create 2 in
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       Adam.step adam ~params:[| 0.0 |] ~grads:[| 0.0 |];
       false
     with Invalid_argument _ -> true)

let test_adam_reset () =
  let params = [| 1.0 |] in
  let adam = Adam.create ~lr:0.1 1 in
  Adam.step adam ~params ~grads:[| 1.0 |];
  Adam.reset adam;
  let p0 = params.(0) in
  Adam.step adam ~params ~grads:[| 1.0 |];
  (* first post-reset step has the same magnitude as a fresh first step *)
  check_close ~tol:1e-9 "fresh step size" 0.1 (p0 -. params.(0))

let test_mlp_shapes () =
  let rng = Rng.create 1 in
  let m = Mlp.create rng ~hidden:[ 16; 8 ] ~n_inputs:4 () in
  Alcotest.(check int) "inputs" 4 (Mlp.n_inputs m);
  (* 4*16+16 + 16*8+8 + 8*1+1 = 80+136+9 = 225 *)
  Alcotest.(check int) "params" 225 (Mlp.num_params m);
  let out = Mlp.forward m [| 0.1; 0.2; 0.3; 0.4 |] in
  Alcotest.(check bool) "finite" true (Float.is_finite out)

let test_mlp_input_gradient_fd () =
  let rng = Rng.create 2 in
  let m = Mlp.create rng ~hidden:[ 16; 16 ] ~n_inputs:5 () in
  let x = Array.init 5 (fun i -> 0.3 *. float_of_int (i + 1)) in
  let score, grad = Mlp.input_gradient m x in
  check_close ~tol:1e-9 "score matches forward" (Mlp.forward m x) score;
  let eps = 1e-5 in
  Array.iteri
    (fun i _ ->
      let xp = Array.copy x and xm = Array.copy x in
      xp.(i) <- x.(i) +. eps;
      xm.(i) <- x.(i) -. eps;
      let fd = (Mlp.forward m xp -. Mlp.forward m xm) /. (2.0 *. eps) in
      if Float.abs (fd -. grad.(i)) > 1e-4 *. max 1.0 (Float.abs fd) then
        Alcotest.failf "grad mismatch at %d: %.6f vs %.6f" i fd grad.(i))
    x

let test_mlp_learns_linear_function () =
  let rng = Rng.create 3 in
  let m = Mlp.create rng ~hidden:[ 32; 32 ] ~n_inputs:3 () in
  let adam = Mlp.adam_for ~lr:3e-3 m in
  let target x = (2.0 *. x.(0)) -. x.(1) +. (0.5 *. x.(2)) in
  let sample () =
    let x = Array.init 3 (fun _ -> Rng.range rng (-1.0) 1.0) in
    (x, target x)
  in
  let final_loss = ref infinity in
  for _ = 1 to 400 do
    let batch = Array.init 32 (fun _ -> sample ()) in
    final_loss := Mlp.train_batch m adam batch
  done;
  Alcotest.(check bool) "loss small" true (!final_loss < 0.02)

let test_mlp_normalizer () =
  let rng = Rng.create 4 in
  let m = Mlp.create rng ~hidden:[ 8 ] ~n_inputs:2 () in
  let before = Mlp.forward m [| 100.0; 200.0 |] in
  Mlp.set_normalizer m ~mean:[| 100.0; 200.0 |] ~std:[| 10.0; 10.0 |];
  let after = Mlp.forward m [| 100.0; 200.0 |] in
  (* normalised input is now the zero vector *)
  let zero_out = Mlp.forward m [| 100.0; 200.0 |] in
  check_close "deterministic" after zero_out;
  Alcotest.(check bool) "normalisation changes output" true (before <> after)

let test_mlp_copy_independent () =
  let rng = Rng.create 5 in
  let m = Mlp.create rng ~hidden:[ 8 ] ~n_inputs:2 () in
  let c = Mlp.copy m in
  let adam = Mlp.adam_for c in
  ignore (Mlp.train_batch c adam [| ([| 1.0; 2.0 |], 5.0) |]);
  Alcotest.(check bool) "original unchanged" true
    (Mlp.forward m [| 1.0; 2.0 |] <> Mlp.forward c [| 1.0; 2.0 |]
    || Mlp.num_params m = Mlp.num_params c)

let test_mlp_save_load () =
  let rng = Rng.create 6 in
  let m = Mlp.create rng ~hidden:[ 8 ] ~n_inputs:2 () in
  let path = Filename.temp_file "felix_mlp" ".json" in
  (match Mlp.save_file m path with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_message e));
  (match Mlp.load_file path with
  | Ok m2 ->
    (* The artifact stores IEEE-754 bits: the reload is exact, not close. *)
    Alcotest.(check bool) "bit-identical forward" true
      (Int64.equal
         (Int64.bits_of_float (Mlp.forward m [| 0.5; 0.7 |]))
         (Int64.bits_of_float (Mlp.forward m2 [| 0.5; 0.7 |])))
  | Error e -> Alcotest.fail (Store.error_message e));
  (* A wrong-kind artifact is rejected with a typed error, not a crash. *)
  (match Store.Artifact.save ~path ~kind:"felix-other" ~version:1 Json.Null with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Store.error_message e));
  (match Mlp.load_file path with
  | Error (Store.Kind_mismatch _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Kind_mismatch");
  Sys.remove path;
  (match Mlp.load_file path with
  | Error (Store.Not_found _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Not_found")

let small_tasks () = [ dense_sg (); conv_sg () ]

let test_dataset_generation () =
  let rng = Rng.create 7 in
  let samples = Dataset.generate rng Device.rtx_a5000 ~schedules_per_task:24 (small_tasks ()) in
  Alcotest.(check bool) "non-empty" true (Array.length samples > 20);
  Array.iter
    (fun (s : Dataset.sample) ->
      Alcotest.(check int) "82 features" 82 (Array.length s.features);
      if not (Float.is_finite s.target) then Alcotest.fail "non-finite target")
    samples

let test_dataset_split () =
  let rng = Rng.create 8 in
  let samples =
    Array.init 100 (fun i ->
        { Dataset.features = [| float_of_int i |]; target = 0.0; task_key = "k" })
  in
  let ds = Dataset.split rng ~train_frac:0.9 samples in
  Alcotest.(check int) "train" 90 (Array.length ds.Dataset.train);
  Alcotest.(check int) "valid" 10 (Array.length ds.Dataset.valid)

let test_collect_tasks_dedup () =
  let tasks = Dataset.collect_tasks ~max_tasks:500 () in
  let keys = List.map Compute.workload_key tasks in
  Alcotest.(check int) "all distinct" (List.length keys)
    (List.length (List.sort_uniq String.compare keys));
  Alcotest.(check bool) "a healthy number of tasks" true (List.length tasks > 50)

let test_pretrain_ranks_schedules () =
  (* The heart of the reproduction: after pretraining, the model must rank
     schedules of a held-in task far better than chance. *)
  let rng = Rng.create 9 in
  let samples =
    Dataset.generate rng Device.rtx_a5000 ~schedules_per_task:220 (small_tasks ())
  in
  let ds = Dataset.split rng samples in
  let _model, metrics = Train.pretrain rng ~epochs:12 ~hidden:[ 96; 96 ] ds in
  Alcotest.(check bool)
    (Printf.sprintf "validation spearman %.3f > 0.7 on %d samples" metrics.Train.spearman
       metrics.Train.n_samples)
    true (metrics.Train.spearman > 0.7)

let test_evaluate_empty () =
  let rng = Rng.create 10 in
  let m = Mlp.create rng ~hidden:[ 4 ] ~n_inputs:2 () in
  let metrics = Train.evaluate m [||] in
  Alcotest.(check int) "no samples" 0 metrics.Train.n_samples

let test_mlp_workspace_bitwise () =
  let rng = Rng.create 7 in
  (* Widths that are not multiples of 4 exercise both the blocked and the
     remainder paths of the workspace kernels. *)
  let model = Mlp.create rng ~hidden:[ 13; 9; 6 ] ~n_inputs:11 () in
  Mlp.set_normalizer model
    ~mean:(Array.init 11 (fun _ -> Rng.gaussian rng))
    ~std:(Array.init 11 (fun _ -> 0.5 +. Float.abs (Rng.gaussian rng)));
  let ws = Mlp.workspace model in
  let bits = Int64.bits_of_float in
  for trial = 1 to 25 do
    let x = Array.init 11 (fun _ -> 3.0 *. Rng.gaussian rng) in
    let s1 = Mlp.forward model x in
    let s2 = Mlp.forward_into model ws x in
    if not (Int64.equal (bits s1) (bits s2)) then
      Alcotest.failf "trial %d: forward_into diverged (%h vs %h)" trial s1 s2;
    let s3, g = Mlp.input_gradient model x in
    let g' = Array.make 11 0.0 in
    let s4 = Mlp.input_gradient_into model ws x g' in
    if not (Int64.equal (bits s3) (bits s4)) then
      Alcotest.failf "trial %d: input_gradient_into score diverged" trial;
    Array.iteri
      (fun i gi ->
        if not (Int64.equal (bits gi) (bits g'.(i))) then
          Alcotest.failf "trial %d: gradient diverged at %d (%h vs %h)" trial i gi g'.(i))
      g
  done

(* --- batched (structure-of-arrays) kernels -------------------------------- *)

let bits = Int64.bits_of_float
let bits_eq a b = Array.for_all2 (fun x y -> Int64.equal (bits x) (bits y)) a b

(* Run [f] once on the vectorised C kernels and once on the portable OCaml
   loops; both must agree with the scalar reference bitwise. *)
let on_both_kernel_sets f =
  let saved = Mlp.using_vector_kernels () in
  Fun.protect
    ~finally:(fun () -> Mlp.set_vector_kernels saved)
    (fun () ->
      List.iter
        (fun vec ->
          Mlp.set_vector_kernels vec;
          f (if vec then "simd" else "ocaml"))
        [ true; false ])

let batch_test_model rng =
  (* Odd widths exercise the remainder paths of the blocked kernels. *)
  let model = Mlp.create rng ~hidden:[ 13; 9; 6 ] ~n_inputs:11 () in
  Mlp.set_normalizer model
    ~mean:(Array.init 11 (fun _ -> Rng.gaussian rng))
    ~std:(Array.init 11 (fun _ -> 0.5 +. Float.abs (Rng.gaussian rng)));
  model

let test_mlp_batch_bitwise () =
  let rng = Rng.create 77 in
  let model = batch_test_model rng in
  let ws = Mlp.workspace model in
  let ni = 11 in
  on_both_kernel_sets (fun kset ->
      List.iter
        (fun batch ->
          let bws = Mlp.batch_workspace model ~batch in
          let xs = Array.init (batch * ni) (fun _ -> 3.0 *. Rng.gaussian rng) in
          let scores = Array.make batch 0.0 in
          Mlp.forward_batch_into model bws ~batch xs ~scores;
          for l = 0 to batch - 1 do
            let x = Array.sub xs (l * ni) ni in
            let s = Mlp.forward_into model ws x in
            if not (Int64.equal (bits s) (bits scores.(l))) then
              Alcotest.failf "%s batch %d lane %d: forward diverged (%h vs %h)" kset
                batch l s scores.(l)
          done;
          let grads = Array.make (batch * ni) 0.0 in
          Mlp.input_gradient_batch_into model bws ~batch xs ~grads ~scores;
          for l = 0 to batch - 1 do
            let x = Array.sub xs (l * ni) ni in
            let g = Array.make ni 0.0 in
            let s = Mlp.input_gradient_into model ws x g in
            if not (Int64.equal (bits s) (bits scores.(l))) then
              Alcotest.failf "%s batch %d lane %d: batched score diverged" kset batch l;
            if not (bits_eq g (Array.sub grads (l * ni) ni)) then
              Alcotest.failf "%s batch %d lane %d: batched gradient diverged" kset
                batch l
          done)
        [ 1; 2; 7; 32; 128 ])

let test_mlp_param_gradient_batch_bitwise () =
  let rng = Rng.create 78 in
  let model = batch_test_model rng in
  let ni = 11 in
  let np = Mlp.num_params model in
  on_both_kernel_sets (fun kset ->
      List.iter
        (fun batch ->
          let examples =
            Array.init batch (fun _ ->
                (Array.init ni (fun _ -> Rng.gaussian rng), Rng.gaussian rng))
          in
          let g_ref = Array.make np 0.0 in
          let loss_ref = Mlp.param_gradient model examples g_ref in
          let bws = Mlp.batch_workspace model ~batch in
          let xs = Array.make (batch * ni) 0.0 in
          let targets = Array.make batch 0.0 in
          Array.iteri
            (fun l (x, t) ->
              Array.blit x 0 xs (l * ni) ni;
              targets.(l) <- t)
            examples;
          let g = Array.make np 0.0 in
          let loss = Mlp.param_gradient_batch_into model bws ~batch ~xs ~targets g in
          if not (Int64.equal (bits loss_ref) (bits loss)) then
            Alcotest.failf "%s batch %d: loss diverged (%h vs %h)" kset batch loss_ref
              loss;
          if not (bits_eq g_ref g) then
            Alcotest.failf "%s batch %d: parameter gradient diverged" kset batch)
        [ 1; 3; 16 ])

let test_adam_step_batch_bitwise () =
  let n = 7 and batch = 5 in
  let rng = Rng.create 79 in
  let params = Array.init (batch * n) (fun _ -> Rng.gaussian rng) in
  let scalar_params = Array.init batch (fun l -> Array.sub params (l * n) n) in
  let batched = Adam.create_batch ~lr:0.02 ~batch n in
  let scalars = Array.init batch (fun _ -> Adam.create ~lr:0.02 n) in
  for step = 1 to 6 do
    (* A deterministic, lane- and step-dependent gradient. *)
    let grads =
      Array.init (batch * n) (fun j -> sin ((float_of_int (j + step) /. 3.0) +. 0.1))
    in
    Adam.step_batch batched ~batch ~params ~grads;
    Array.iteri
      (fun l p ->
        Adam.step scalars.(l) ~params:p ~grads:(Array.sub grads (l * n) n);
        if not (bits_eq p (Array.sub params (l * n) n)) then
          Alcotest.failf "step %d lane %d: batched Adam diverged" step l)
      scalar_params
  done

let test_mlp_workspace_mismatch () =
  let rng = Rng.create 8 in
  let m1 = Mlp.create rng ~hidden:[ 4 ] ~n_inputs:3 () in
  let m2 = Mlp.create rng ~hidden:[ 5 ] ~n_inputs:3 () in
  let ws = Mlp.workspace m1 in
  Alcotest.(check bool) "workspace shape checked" true
    (try
       ignore (Mlp.forward_into m2 ws [| 0.1; 0.2; 0.3 |]);
       false
     with Invalid_argument _ -> true)

let tests =
  [ Alcotest.test_case "adam minimises a quadratic" `Quick test_adam_minimises_quadratic;
    Alcotest.test_case "adam arity check" `Quick test_adam_arity;
    Alcotest.test_case "adam reset" `Quick test_adam_reset;
    Alcotest.test_case "mlp shapes and parameter count" `Quick test_mlp_shapes;
    Alcotest.test_case "mlp input gradient vs finite differences" `Quick test_mlp_input_gradient_fd;
    Alcotest.test_case "mlp learns a linear function" `Quick test_mlp_learns_linear_function;
    Alcotest.test_case "mlp input normalisation" `Quick test_mlp_normalizer;
    Alcotest.test_case "mlp copy independence" `Quick test_mlp_copy_independent;
    Alcotest.test_case "mlp save/load roundtrip" `Quick test_mlp_save_load;
    Alcotest.test_case "mlp batched kernels bitwise-equal scalar (both kernel sets)" `Quick
      test_mlp_batch_bitwise;
    Alcotest.test_case "mlp batched parameter gradient bitwise" `Quick
      test_mlp_param_gradient_batch_bitwise;
    Alcotest.test_case "batched adam retraces independent optimisers" `Quick
      test_adam_step_batch_bitwise;
    Alcotest.test_case "mlp workspace kernels bitwise-equal legacy" `Quick
      test_mlp_workspace_bitwise;
    Alcotest.test_case "mlp workspace shape mismatch" `Quick test_mlp_workspace_mismatch;
    Alcotest.test_case "dataset generation" `Slow test_dataset_generation;
    Alcotest.test_case "dataset split fractions" `Quick test_dataset_split;
    Alcotest.test_case "task collection deduplicates" `Slow test_collect_tasks_dedup;
    Alcotest.test_case "pretraining ranks schedules" `Slow test_pretrain_ranks_schedules;
    Alcotest.test_case "evaluate on empty set" `Quick test_evaluate_empty ]
