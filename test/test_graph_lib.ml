(* Tests for lib/graph: Graph, Partition, Layers and the six models. *)

open Testutil

let nets = Workload.all_networks

let test_builder_basic () =
  let g = Graph.Builder.create "t" in
  Graph.Builder.set_input_shape g [ 1; 8 ];
  let a = Graph.Builder.add g (Op.Dense { batch = 1; in_dim = 8; out_dim = 4 }) ~inputs:[ Graph.input_id ] in
  let b = Graph.Builder.add g (Op.Elemwise (Op.Relu, 4)) ~inputs:[ a ] in
  let t = Graph.Builder.finish g in
  Alcotest.(check int) "two nodes" 2 (Graph.num_nodes t);
  Alcotest.(check (list int)) "relu consumes dense" [ a ] (Graph.node t b).inputs;
  Alcotest.(check bool) "valid" true (Graph.validate t = Ok ())

let test_builder_forward_reference () =
  let g = Graph.Builder.create "t" in
  Alcotest.(check bool) "forward ref rejected" true
    (try
       ignore (Graph.Builder.add g (Op.Elemwise (Op.Relu, 4)) ~inputs:[ 5 ]);
       false
     with Invalid_argument _ -> true)

let test_consumers () =
  let g = Graph.Builder.create "t" in
  let a = Graph.Builder.add g (Op.Elemwise (Op.Relu, 4)) ~inputs:[ Graph.input_id ] in
  let _b = Graph.Builder.add g (Op.Elemwise (Op.Gelu, 4)) ~inputs:[ a ] in
  let _c = Graph.Builder.add g (Op.Elemwise (Op.Tanh, 4)) ~inputs:[ a ] in
  let t = Graph.Builder.finish g in
  Alcotest.(check (array int)) "two consumers" [| 1; 2 |] (Graph.consumers t).(a)

let test_models_validate () =
  List.iter
    (fun net ->
      let g = Workload.graph net in
      match Graph.validate g with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (Workload.network_name net) e)
    nets

let test_models_flops_ranges () =
  (* Sanity against public figures (MAC x 2): ResNet-50 ~8.2, MobileNet-v2
     ~0.6, R3D-18 tens of GFLOPs, ViT-B/32 ~8.8, LLaMA prefill ~1.3 TFLOPs. *)
  let expect =
    [ (Workload.Resnet50, 7.0, 9.5); (Workload.Mobilenet_v2, 0.4, 0.9);
      (Workload.R3d_18, 20.0, 60.0); (Workload.Dcgan, 0.3, 2.0);
      (Workload.Vit_b32, 7.0, 10.0); (Workload.Llama, 1000.0, 1600.0) ]
  in
  List.iter
    (fun (net, lo, hi) ->
      let gf = Graph.total_flops (Workload.graph net) /. 1e9 in
      if gf < lo || gf > hi then
        Alcotest.failf "%s flops out of range: %.2f GFLOPs" (Workload.network_name net) gf)
    expect

let test_models_batch_scales_flops () =
  List.iter
    (fun net ->
      let f1 = Graph.total_flops (Workload.graph ~batch:1 net) in
      let f16 = Graph.total_flops (Workload.graph ~batch:16 net) in
      let ratio = f16 /. f1 in
      if ratio < 10.0 || ratio > 18.0 then
        Alcotest.failf "%s batch scaling ratio %.2f" (Workload.network_name net) ratio)
    [ Workload.Resnet50; Workload.Mobilenet_v2; Workload.Dcgan ]

let test_partition_covers_nodes () =
  List.iter
    (fun net ->
      let g = Workload.graph net in
      let tasks = Partition.partition g in
      let covered =
        List.fold_left
          (fun acc (t : Partition.task) -> acc + (t.weight * List.length t.node_ids))
          0 tasks
      in
      Alcotest.(check int)
        (Workload.network_name net ^ " covers all nodes")
        (Graph.num_nodes g) covered)
    nets

let test_partition_fuses_conv_relu () =
  let g = Graph.Builder.create "t" in
  Graph.Builder.set_input_shape g [ 1; 3; 8; 8 ];
  let c, _ =
    Layers.conv2d g ~input:Graph.input_id ~in_chan:3 ~out_chan:8 ~in_hw:(8, 8) ~kernel:3
      ~stride:1 ~pad:1 ()
  in
  let _r = Layers.activation g Op.Relu ~input:c in
  let t = Graph.Builder.finish g in
  let tasks = Partition.partition t in
  Alcotest.(check int) "single fused task" 1 (List.length tasks);
  Alcotest.(check int) "conv + fused relu stages" 2
    (List.length (List.hd tasks).Partition.subgraph.Compute.stages)

let test_partition_no_fuse_on_fanout () =
  (* A producer with two consumers must not be fused into either. *)
  let g = Graph.Builder.create "t" in
  let a = Graph.Builder.add g (Op.Elemwise (Op.Relu, 64)) ~inputs:[ Graph.input_id ] in
  let b = Graph.Builder.add g (Op.Elemwise (Op.Gelu, 64)) ~inputs:[ a ] in
  let c = Graph.Builder.add g (Op.Elemwise (Op.Tanh, 64)) ~inputs:[ a ] in
  ignore b;
  ignore c;
  let t = Graph.Builder.finish g in
  let tasks = Partition.partition t in
  (* relu alone; gelu and tanh separate (note gelu/tanh have same workload
     shape but different counts, so they may deduplicate) *)
  let total_groups =
    List.fold_left (fun acc (t : Partition.task) -> acc + t.weight) 0 tasks
  in
  Alcotest.(check int) "three groups" 3 total_groups

let test_partition_dedup_weights () =
  let g = Workload.graph Workload.Llama in
  let tasks = Partition.partition g in
  (* 32 identical decoder layers: the heavy dense tasks must deduplicate. *)
  let max_weight =
    List.fold_left (fun acc (t : Partition.task) -> max acc t.weight) 0 tasks
  in
  Alcotest.(check bool) "dedup found repeated layers" true (max_weight >= 32);
  Alcotest.(check bool) "few distinct tasks" true (List.length tasks < 20)

let test_partition_subgraphs_valid () =
  List.iter
    (fun net ->
      let g = Workload.graph net in
      List.iter
        (fun (t : Partition.task) ->
          match Compute.validate t.subgraph with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" (Workload.network_name net) e)
        (Partition.partition g))
    nets

let test_layers_residual_mismatch () =
  let g = Graph.Builder.create "t" in
  let a = Graph.Builder.add g (Op.Elemwise (Op.Relu, 64)) ~inputs:[ Graph.input_id ] in
  let b = Graph.Builder.add g (Op.Elemwise (Op.Relu, 32)) ~inputs:[ Graph.input_id ] in
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (Layers.residual_add g a b);
       false
     with Invalid_argument _ -> true)

let test_summary () =
  let s = Graph.summary (Workload.graph Workload.Resnet50) in
  Alcotest.(check bool) "mentions conv2d" true (contains ~needle:"conv2d" s);
  Alcotest.(check bool) "mentions GFLOPs" true (contains ~needle:"GFLOPs" s)

let test_network_names () =
  Alcotest.(check (list string)) "paper names"
    [ "ResNet-50"; "MobileNet-v2"; "R3d-18"; "DCGAN"; "ViT-B/32"; "LLaMA" ]
    (List.map Workload.network_name nets)

let test_edge_fit () =
  Alcotest.(check bool) "llama too big for edge" false (Workload.fits_on_edge Workload.Llama);
  Alcotest.(check bool) "resnet fits" true (Workload.fits_on_edge Workload.Resnet50)

let test_single_operators () =
  Alcotest.(check int) "seven operator types (Figure 9)" 7 (List.length Workload.single_operators);
  List.iter
    (fun (opname, op) ->
      let sg = Compute.lower ~name:opname op in
      match Compute.validate sg with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" opname e)
    Workload.single_operators

let tests =
  [ Alcotest.test_case "builder basics" `Quick test_builder_basic;
    Alcotest.test_case "builder rejects forward references" `Quick test_builder_forward_reference;
    Alcotest.test_case "consumers map" `Quick test_consumers;
    Alcotest.test_case "all six models validate" `Quick test_models_validate;
    Alcotest.test_case "model flops match public figures" `Quick test_models_flops_ranges;
    Alcotest.test_case "batch size scales flops" `Quick test_models_batch_scales_flops;
    Alcotest.test_case "partition covers every node once" `Quick test_partition_covers_nodes;
    Alcotest.test_case "partition fuses conv+relu" `Quick test_partition_fuses_conv_relu;
    Alcotest.test_case "partition respects fan-out" `Quick test_partition_no_fuse_on_fanout;
    Alcotest.test_case "partition deduplicates repeated layers" `Quick test_partition_dedup_weights;
    Alcotest.test_case "partitioned subgraphs validate" `Quick test_partition_subgraphs_valid;
    Alcotest.test_case "residual add size check" `Quick test_layers_residual_mismatch;
    Alcotest.test_case "graph summary" `Quick test_summary;
    Alcotest.test_case "paper network names" `Quick test_network_names;
    Alcotest.test_case "edge-device memory fit" `Quick test_edge_fit;
    Alcotest.test_case "figure 9 single operators" `Quick test_single_operators ]
