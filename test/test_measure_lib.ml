(* Tests for lib/measure: the pluggable measurement subsystem.

   The four ISSUE-level properties — Direct ≡ legacy inline bitwise,
   chaos determinism, retry classification, chaos resume bit-identity —
   plus the config codec, the outcome cache, telemetry accounting, the
   service job codec passthrough and the store's failure records. *)

open Testutil

let quick = Tuning_config.quick

let search rounds = { quick with Tuning_config.max_rounds = rounds }

let shared_model =
  lazy
    (let rng = Rng.create 300 in
     let samples =
       Dataset.generate rng Device.rtx_a5000 ~schedules_per_task:60
         [ dense_sg (); conv_sg () ]
     in
     let ds = Dataset.split rng samples in
     let model, _ = Train.pretrain rng ~epochs:5 ~hidden:[ 64; 64 ] ds in
     model)

let fresh_dir () =
  let path = Filename.temp_file "felix_measure" "" in
  Sys.remove path;
  path

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let bits = Int64.bits_of_float

(* A pack shared by the direct measurement tests; requests differ only in
   schedule point and digest. *)
let shared_pack =
  lazy
    (let sg = dense_sg () in
     Pack.prepare sg (List.nth (Sketch.generate sg) 1))

let request_at pack ~digest y =
  { Measure.digest;
    device = Device.rtx_a5000;
    program = Pack.program pack;
    env = Pack.env_of pack y }

let sample_requests ?(n = 6) ?(prefix = "d") seed =
  let pack = Lazy.force shared_pack in
  let rng = Rng.create (seed lxor 0x9e3779b9) in
  Array.init n (fun i ->
      request_at pack ~digest:(Printf.sprintf "%s%d" prefix i) (sample_valid rng pack))

let quiet () = Telemetry.create ~enabled:false ()

(* --- (a) Direct ≡ legacy inline path ----------------------------------------- *)

let test_direct_matches_inline =
  qtest ~count:25 "Direct measurer == inline measure_ms bitwise"
    (QCheck2.Gen.int_range 0 1_000_000)
    (fun seed ->
      let reqs = sample_requests seed in
      (* Legacy path: Gpu_model.measure_ms on the tuning RNG, in order. *)
      let rng_legacy = Rng.create seed in
      let legacy =
        Array.map
          (fun r ->
            Gpu_model.measure_ms rng_legacy r.Measure.device r.Measure.program
              r.Measure.env)
          reqs
      in
      let m = Measure.create ~telemetry:(quiet ()) Measure.Direct Measure.default in
      let rng = Rng.create seed in
      let results, cost = Measure.measure_batch m ~rng reqs in
      cost.Measure.measured_attempts = Array.length reqs
      && bits cost.Measure.extra_s = bits 0.0
      && Array.for_all2
           (fun l (r : Measure.result) ->
             match r.Measure.outcome with
             | Measure.Ok lat ->
               bits lat = bits l && r.Measure.attempts = 1
               && r.Measure.classification = Measure.First_try
             | _ -> false)
           legacy results
      (* Both paths must leave the tuning RNG in the same state. *)
      && bits (Rng.uniform rng_legacy) = bits (Rng.uniform rng))

let chaos_half = Some (Measure.chaos_with_rate ~seed:7 0.5)

let compare_results msg (a : Measure.result array) (b : Measure.result array) =
  Alcotest.(check int) (msg ^ ": same length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (ra : Measure.result) ->
      let rb = b.(i) in
      if Measure.outcome_kind ra.Measure.outcome <> Measure.outcome_kind rb.Measure.outcome
      then Alcotest.failf "%s: outcome kind differs at %d" msg i;
      if bits (Measure.latency_ms ra.Measure.outcome)
         <> bits (Measure.latency_ms rb.Measure.outcome)
      then Alcotest.failf "%s: latency bits differ at %d" msg i;
      if ra.Measure.attempts <> rb.Measure.attempts then
        Alcotest.failf "%s: attempts differ at %d" msg i;
      if ra.Measure.classification <> rb.Measure.classification then
        Alcotest.failf "%s: classification differs at %d" msg i)
    a

let pool_runtime = lazy (Runtime.create ~domains:3 ())

let test_pool_matches_direct () =
  (* The Pool backend is bit-identical to Direct, with and without chaos. *)
  List.iter
    (fun (name, chaos) ->
      let cfg = { Measure.default with Measure.chaos } in
      let run backend =
        let m = Measure.create ~telemetry:(quiet ()) backend cfg in
        Measure.measure_batch m ~rng:(Rng.create 42) (sample_requests ~n:10 9)
      in
      let direct, dcost = run Measure.Direct in
      let pooled, pcost =
        run (Measure.Pool (Lazy.force pool_runtime))
      in
      compare_results (name ^ ": pool vs direct") direct pooled;
      Alcotest.(check int) (name ^ ": measured attempts") dcost.Measure.measured_attempts
        pcost.Measure.measured_attempts;
      Alcotest.(check bool)
        (name ^ ": extra_s bits")
        true
        (bits dcost.Measure.extra_s = bits pcost.Measure.extra_s))
    [ ("no chaos", None); ("chaos 0.5", chaos_half) ]

(* --- (b) chaos determinism ---------------------------------------------------- *)

let test_chaos_deterministic =
  qtest ~count:20 "same chaos seed + rates => identical fault schedule"
    (QCheck2.Gen.int_range 0 1_000_000)
    (fun seed ->
      let cfg =
        { Measure.default with
          Measure.chaos = Some (Measure.chaos_with_rate ~seed:(seed mod 97) 0.6) }
      in
      let run () =
        let m = Measure.create ~telemetry:(quiet ()) Measure.Direct cfg in
        Measure.measure_batch m ~rng:(Rng.create seed) (sample_requests ~n:8 seed)
      in
      let r1, c1 = run () in
      let r2, c2 = run () in
      c1.Measure.measured_attempts = c2.Measure.measured_attempts
      && bits c1.Measure.extra_s = bits c2.Measure.extra_s
      && Array.for_all2
           (fun (a : Measure.result) (b : Measure.result) ->
             Measure.outcome_kind a.Measure.outcome
             = Measure.outcome_kind b.Measure.outcome
             && bits (Measure.latency_ms a.Measure.outcome)
                = bits (Measure.latency_ms b.Measure.outcome)
             && a.Measure.attempts = b.Measure.attempts
             && a.Measure.classification = b.Measure.classification)
           r1 r2)

let test_chaos_order_independent () =
  (* The fault schedule of a digest does not depend on where in the batch
     it is measured (latencies do — measurement noise stays on the tuning
     RNG in request order — but faults, attempts and classification are a
     pure function of the digest). *)
  let cfg = { Measure.default with Measure.chaos = chaos_half } in
  let reqs = sample_requests ~n:12 17 in
  let rev = Array.of_list (List.rev (Array.to_list reqs)) in
  let run order =
    let m = Measure.create ~telemetry:(quiet ()) Measure.Direct cfg in
    fst (Measure.measure_batch m ~rng:(Rng.create 5) order)
  in
  let fwd = run reqs in
  let bwd = run rev in
  let n = Array.length reqs in
  let faults = ref 0 in
  Array.iteri
    (fun i (a : Measure.result) ->
      let b = bwd.(n - 1 - i) in
      if Measure.outcome_kind a.Measure.outcome <> Measure.outcome_kind b.Measure.outcome
      then Alcotest.failf "fault kind depends on order (digest %d)" i;
      if a.Measure.attempts <> b.Measure.attempts then
        Alcotest.failf "attempt count depends on order (digest %d)" i;
      if a.Measure.classification <> b.Measure.classification then
        Alcotest.failf "classification depends on order (digest %d)" i;
      if a.Measure.outcome <> Measure.Ok (Measure.latency_ms a.Measure.outcome) then
        incr faults)
    fwd;
  Alcotest.(check bool) "the schedule actually contains faults" true (!faults > 0)

(* --- (c) retry classification -------------------------------------------------- *)

let scan_results ?(n = 200) cfg =
  let pack = Lazy.force shared_pack in
  let y = sample_valid (Rng.create 23) pack in
  let m = Measure.create ~telemetry:(quiet ()) Measure.Direct cfg in
  let rng = Rng.create 99 in
  Array.init n (fun i ->
      let r, _ =
        Measure.measure_batch m ~rng
          [| request_at pack ~digest:(Printf.sprintf "scan%d" i) y |]
      in
      r.(0))

let test_retry_classification () =
  let cfg =
    { Measure.default with
      Measure.chaos =
        Some
          { Measure.chaos_seed = 3; timeout_rate = 0.3; crash_rate = 0.3;
            hang_rate = 0.0; flaky_rate = 0.0; flaky_magnitude = 0.0 } }
  in
  let results = scan_results cfg in
  let count p = Array.fold_left (fun n r -> if p r then n + 1 else n) 0 results in
  Array.iter
    (fun (r : Measure.result) ->
      match r.Measure.classification with
      | Measure.First_try ->
        if r.Measure.attempts <> 1 then Alcotest.fail "first-try with retries";
        if Measure.outcome_kind r.Measure.outcome <> "ok" then
          Alcotest.fail "first-try must succeed"
      | Measure.Flaky ->
        (* Failed at least once, then recovered. *)
        if Measure.outcome_kind r.Measure.outcome <> "ok" then
          Alcotest.fail "flaky must end in success";
        if r.Measure.attempts < 2 || r.Measure.attempts > cfg.Measure.max_attempts
        then Alcotest.fail "flaky attempt count out of range"
      | Measure.Deterministic ->
        (* Two identical failures in a row: fail fast, never exhaust the
           budget on a broken candidate. *)
        if Measure.outcome_kind r.Measure.outcome = "ok" then
          Alcotest.fail "deterministic must be a failure here";
        if r.Measure.attempts < 2 || r.Measure.attempts > cfg.Measure.max_attempts
        then Alcotest.fail "deterministic attempt count out of range"
      | Measure.Exhausted ->
        if Measure.outcome_kind r.Measure.outcome = "ok" then
          Alcotest.fail "exhausted must be a failure";
        if r.Measure.attempts <> cfg.Measure.max_attempts then
          Alcotest.fail "exhausted must use the full budget")
    results;
  (* At 60% fault rate across 200 digests, every class must occur. *)
  Alcotest.(check bool) "some first-try" true
    (count (fun r -> r.Measure.classification = Measure.First_try) > 0);
  Alcotest.(check bool) "some flaky recoveries" true
    (count (fun r -> r.Measure.classification = Measure.Flaky) > 0);
  Alcotest.(check bool) "some deterministic failures" true
    (count (fun r -> r.Measure.classification = Measure.Deterministic) > 0);
  (* A deterministic failure that settles on attempt 2 proves fail-fast:
     the third attempt the budget allows is never spent. *)
  Alcotest.(check bool) "deterministic fails fast" true
    (count
       (fun r ->
         r.Measure.classification = Measure.Deterministic && r.Measure.attempts = 2)
     > 0);
  Alcotest.(check bool) "some exhausted" true
    (count (fun r -> r.Measure.classification = Measure.Exhausted) > 0)

let test_invalid_never_retried () =
  (* An infinite-base schedule is a property of the candidate: one
     attempt, Deterministic, no tuning RNG consumed, chaos never
     consulted. *)
  let pack = Lazy.force shared_pack in
  let y = Array.map snd (Pack.bounds_log pack) in
  List.iter
    (fun chaos ->
      let cfg = { Measure.default with Measure.max_attempts = 5; chaos } in
      let m = Measure.create ~telemetry:(quiet ()) Measure.Direct cfg in
      let rng = Rng.create 3 in
      let results, cost =
        Measure.measure_batch m ~rng [| request_at pack ~digest:"invalid0" y |]
      in
      let r = results.(0) in
      Alcotest.(check bool) "outcome invalid" true (r.Measure.outcome = Measure.Invalid);
      Alcotest.(check int) "one attempt" 1 r.Measure.attempts;
      Alcotest.(check bool) "deterministic" true
        (r.Measure.classification = Measure.Deterministic);
      Alcotest.(check int) "counts one measured attempt" 1
        cost.Measure.measured_attempts;
      Alcotest.(check bool) "no extra time" true (bits cost.Measure.extra_s = bits 0.0);
      Alcotest.(check bool) "tuning RNG untouched" true
        (bits (Rng.uniform rng) = bits (Rng.uniform (Rng.create 3))))
    [ None; chaos_half ]

let test_outcome_cache () =
  let reqs = sample_requests ~n:4 31 in
  let m = Measure.create ~telemetry:(quiet ()) Measure.Direct Measure.default in
  let first, _ = Measure.measure_batch m ~rng:(Rng.create 1) reqs in
  let rng = Rng.create 2 in
  let second, cost = Measure.measure_batch m ~rng reqs in
  Array.iteri
    (fun i (r : Measure.result) ->
      if not r.Measure.from_cache then Alcotest.failf "request %d not cached" i;
      if
        bits (Measure.latency_ms r.Measure.outcome)
        <> bits (Measure.latency_ms first.(i).Measure.outcome)
      then Alcotest.failf "cached latency differs at %d" i)
    second;
  Alcotest.(check int) "cache hits cost nothing" 0 cost.Measure.measured_attempts;
  Alcotest.(check bool) "cache hits consume no RNG" true
    (bits (Rng.uniform rng) = bits (Rng.uniform (Rng.create 2)));
  (* cache_capacity:0 disables caching: re-measuring costs again. *)
  let m0 =
    Measure.create ~telemetry:(quiet ()) ~cache_capacity:0 Measure.Direct
      Measure.default
  in
  ignore (Measure.measure_batch m0 ~rng:(Rng.create 1) reqs);
  let again, cost0 = Measure.measure_batch m0 ~rng:(Rng.create 2) reqs in
  Alcotest.(check bool) "no cache => fresh results" true
    (Array.for_all (fun (r : Measure.result) -> not r.Measure.from_cache) again);
  Alcotest.(check int) "no cache => full cost" (Array.length reqs)
    cost0.Measure.measured_attempts

(* --- config codec and validation ----------------------------------------------- *)

let test_config_codec_roundtrip =
  qtest ~count:50 "config codec round-trips bit-exactly"
    (QCheck2.Gen.int_range 0 1_000_000)
    (fun seed ->
      let r = Rng.create seed in
      let cfg =
        { Measure.timeout_s = 0.01 +. (Rng.uniform r *. 30.0);
          max_attempts = 1 + (seed mod 6);
          backoff_s = Rng.uniform r;
          chaos =
            (if seed mod 3 = 0 then None
             else
               Some
                 { Measure.chaos_seed = seed;
                   timeout_rate = 0.2 *. Rng.uniform r;
                   crash_rate = 0.2 *. Rng.uniform r;
                   hang_rate = 0.2 *. Rng.uniform r;
                   flaky_rate = 0.2 *. Rng.uniform r;
                   flaky_magnitude = 0.9 *. Rng.uniform r }) }
      in
      (match Measure.validate cfg with Stdlib.Ok () -> true | Stdlib.Error _ -> false)
      &&
      match Measure.config_of_json (Measure.config_to_json cfg) with
      | Stdlib.Ok c -> Measure.config_equal c cfg
      | Stdlib.Error _ -> false)

let test_validate_rejects () =
  List.iter
    (fun (cfg, hint) ->
      match Measure.validate cfg with
      | Stdlib.Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error mentions %s" hint)
          true (contains ~needle:hint msg)
      | Stdlib.Ok () -> Alcotest.failf "expected %s to be rejected" hint)
    [ ({ Measure.default with Measure.max_attempts = 0 }, "max_attempts");
      ({ Measure.default with Measure.timeout_s = 0.0 }, "timeout_s");
      ({ Measure.default with Measure.backoff_s = Float.infinity }, "backoff_s");
      ( { Measure.default with Measure.chaos = Some (Measure.chaos_with_rate 1.5) },
        "rate" );
      ( { Measure.default with
          Measure.chaos =
            Some { (Measure.chaos_with_rate 0.2) with Measure.flaky_magnitude = 1.0 }
        },
        "flaky_magnitude" ) ]

let test_tuner_rejects_bad_measure_config () =
  let rc =
    Tuning_config.(
      builder
      |> with_search (search 2)
      |> with_seed 1
      |> with_measurer { Measure.default with Measure.max_attempts = 0 })
  in
  match
    Tuner.run rc Device.rtx_a5000 (Lazy.force shared_model)
      (Workload.graph Workload.Dcgan) Tuner.Felix
  with
  | Error (Tuner.Invalid_config msg) ->
    Alcotest.(check bool) "names the field" true (contains ~needle:"max_attempts" msg)
  | Ok _ -> Alcotest.fail "expected Invalid_config"
  | Error e -> Alcotest.failf "wrong error: %s" (Tuner.error_message e)

(* --- telemetry accounting ------------------------------------------------------ *)

let test_telemetry_accounting () =
  let tel = Telemetry.create () in
  let cfg = { Measure.default with Measure.chaos = chaos_half } in
  let m = Measure.create ~telemetry:tel Measure.Direct cfg in
  let reqs = sample_requests ~n:40 ~prefix:"tel" 77 in
  let results, _ = Measure.measure_batch m ~rng:(Rng.create 8) reqs in
  let c name = Telemetry.Counter.value (Telemetry.counter tel name) in
  Alcotest.(check int) "requests" 40 (c "measure.requests");
  (* Every attempt is accounted for by exactly one per-attempt outcome. *)
  Alcotest.(check int) "attempts = ok + timeouts + crashes + invalid"
    (c "measure.attempts")
    (c "measure.ok" + c "measure.timeouts" + c "measure.crashes" + c "measure.invalid");
  Alcotest.(check int) "retries = attempts - requests"
    (c "measure.attempts" - 40)
    (c "measure.retries");
  let n_class cls =
    Array.fold_left
      (fun n (r : Measure.result) -> if r.Measure.classification = cls then n + 1 else n)
      0 results
  in
  Alcotest.(check int) "recovered = flaky results" (n_class Measure.Flaky)
    (c "measure.recovered");
  Alcotest.(check int) "exhausted counter" (n_class Measure.Exhausted)
    (c "measure.exhausted");
  Alcotest.(check int) "deterministic counter" (n_class Measure.Deterministic)
    (c "measure.deterministic");
  let h = Telemetry.histogram tel "measure.attempts_per_request" in
  Alcotest.(check int) "one attempts observation per request" 40
    (Telemetry.Histogram.count h);
  Alcotest.(check bool) "attempt histogram sums to the attempt counter" true
    (int_of_float (Telemetry.Histogram.sum h) = c "measure.attempts");
  Alcotest.(check bool) "some faults were injected" true
    (c "measure.timeouts" + c "measure.crashes" > 0)

(* --- service job codec passthrough --------------------------------------------- *)

let chaos_cfg =
  { Measure.default with
    Measure.timeout_s = 2.5;
    max_attempts = 4;
    chaos = Some (Measure.chaos_with_rate ~seed:11 0.3) }

let test_job_codec_measure_passthrough () =
  let spec measure =
    { Serve.Job.network = Workload.Dcgan;
      inference_batch = 1;
      device = Device.rtx_a5000;
      engine = Tuner.Felix;
      run =
        Tuning_config.(
          builder |> with_search (search 3) |> with_seed 5 |> with_measurer measure);
      deadline_s = None;
      store_dir = None }
  in
  (match Serve.Job.of_json (Serve.Job.to_json (spec chaos_cfg)) with
  | Ok s ->
    Alcotest.(check bool) "measure config survives the wire" true
      (Measure.config_equal s.Serve.Job.run.Tuning_config.measure chaos_cfg)
  | Error e -> Alcotest.failf "job codec: %s" e);
  (* The default measure config is elided: pre-measurer specs and
     run.json files stay byte-identical. *)
  let line = Json.to_line (Serve.Job.to_json (spec Measure.default)) in
  Alcotest.(check bool) "default config not serialised" false
    (contains ~needle:{|"measure":|} line);
  match Serve.Job.of_json (Serve.Job.to_json (spec Measure.default)) with
  | Ok s ->
    Alcotest.(check bool) "missing field decodes to default" true
      (Measure.config_equal s.Serve.Job.run.Tuning_config.measure Measure.default)
  | Error e -> Alcotest.failf "job codec (default): %s" e

(* --- store failure records ------------------------------------------------------ *)

let test_store_failure_stats () =
  let dir = fresh_dir () in
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "store: %s" (Store.error_message e)
  in
  let record ~key ~attempts =
    { Store.Record.network = "net"; device = "dev"; task_key = "t0"; sketch = "sk";
      key; y = [| 1.0 |]; latency_ms = 1.5; round = 1; attempts }
  in
  let failure ~key ~kind ~attempts ~deterministic =
    { Store.Failure.network = "net"; device = "dev"; task_key = "t0"; sketch = "sk";
      key; y = [| 1.0 |]; kind; message = "boom"; attempts; deterministic; round = 2 }
  in
  let id = Store.fresh_run_id s in
  Store.begin_run s ~id;
  Store.append s (record ~key:"k1" ~attempts:1);
  Store.append s (record ~key:"k2" ~attempts:3);
  Store.append_failure s (failure ~key:"k3" ~kind:"timeout" ~attempts:2 ~deterministic:true);
  Store.append_failure s
    (failure ~key:"k4" ~kind:"crash" ~attempts:4 ~deterministic:false);
  Store.complete_run s ~id;
  Store.close s;
  (* Everything must survive reopen: failures are journal records too. *)
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "reopen: %s" (Store.error_message e)
  in
  let st = Store.stats s in
  Alcotest.(check int) "failure count" 2 st.Store.failures;
  Alcotest.(check int) "retried = records + failures with attempts > 1" 3
    st.Store.retried;
  let fs = Store.completed_failures s ~device:"dev" ~task_key:"t0" in
  Alcotest.(check int) "filtered failures" 2 (List.length fs);
  Alcotest.(check bool) "kinds survive" true
    (List.exists (fun f -> f.Store.Failure.kind = "timeout") fs
    && List.exists (fun f -> f.Store.Failure.kind = "crash") fs);
  Alcotest.(check int) "no failures for other tasks" 0
    (List.length (Store.completed_failures s ~device:"dev" ~task_key:"t9"));
  Store.close s;
  remove_tree dir

(* --- chaos through the tuner ----------------------------------------------------- *)

let dcgan () = Workload.graph Workload.Dcgan

let chaos_rc ~rounds ~seed =
  Tuning_config.(
    builder
    |> with_search (search rounds)
    |> with_seed seed
    |> with_measurer chaos_cfg)

let run_chaos_plain ~rounds ~seed () =
  run_tuner (chaos_rc ~rounds ~seed) Device.rtx_a5000 (Lazy.force shared_model)
    (dcgan ()) Tuner.Felix

let run_chaos_stored ?on_event ~dir ~rounds ~seed () =
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "store: %s" (Store.error_message e)
  in
  let rc = Tuning_config.with_store s (chaos_rc ~rounds ~seed) in
  let rc =
    match on_event with Some f -> Tuning_config.with_on_event f rc | None -> rc
  in
  let finish () = Store.close s in
  match
    Tuner.run rc Device.rtx_a5000 (Lazy.force shared_model) (dcgan ()) Tuner.Felix
  with
  | Ok r ->
    finish ();
    r
  | Error e ->
    finish ();
    Alcotest.failf "Tuner.run: %s" (Tuner.error_message e)
  | exception e ->
    finish ();
    raise e

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_chaos_tuner_runs_identical () =
  (* Two same-seed chaos runs are bit-identical, down to the journal and
     checkpoint bytes — the fault schedule is part of the search identity. *)
  let plain = run_chaos_plain ~rounds:6 ~seed:13 () in
  let dir1 = fresh_dir () in
  let dir2 = fresh_dir () in
  let r1 = run_chaos_stored ~dir:dir1 ~rounds:6 ~seed:13 () in
  let r2 = run_chaos_stored ~dir:dir2 ~rounds:6 ~seed:13 () in
  Test_store_lib.check_results_identical "chaos stored vs plain" plain r1;
  Test_store_lib.check_results_identical "chaos stored twice" r1 r2;
  List.iter
    (fun f ->
      let a = read_file (Filename.concat dir1 f) in
      let b = read_file (Filename.concat dir2 f) in
      if not (String.equal a b) then Alcotest.failf "%s differs between runs" f)
    [ "journal.jsonl"; "checkpoint.json" ];
  Alcotest.(check bool) "the journal records failures" true
    (contains ~needle:{|"k":"f"|} (read_file (Filename.concat dir1 "journal.jsonl")));
  remove_tree dir1;
  remove_tree dir2

let test_chaos_resume_bit_identical () =
  (* Abort a chaos run mid-flight, resume, and require bit-identity with
     the uninterrupted run: deterministic failures are replayed from the
     journal, flaky candidates re-fault identically (digest-keyed chaos). *)
  let reference = run_chaos_plain ~rounds:6 ~seed:31 () in
  let dir = fresh_dir () in
  (match
     run_chaos_stored ~dir ~rounds:6 ~seed:31
       ~on_event:(Test_store_lib.abort_after 3) ()
   with
  | _ -> Alcotest.fail "expected the interrupting callback to fire"
  | exception Test_store_lib.Abort_for_test -> ());
  let resumed = run_chaos_stored ~dir ~rounds:6 ~seed:31 () in
  Test_store_lib.check_results_identical "chaos resume" reference resumed;
  remove_tree dir

let test_chaos_run_completes_and_classifies () =
  (* At a 30% fault rate the run still completes; every failure the
     measurer reports is classified and journalled. *)
  let tel = Telemetry.create () in
  let dir = fresh_dir () in
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "store: %s" (Store.error_message e)
  in
  let rc =
    Tuning_config.(
      chaos_rc ~rounds:8 ~seed:13 |> with_store s |> with_telemetry tel)
  in
  let r =
    match
      Tuner.run rc Device.rtx_a5000 (Lazy.force shared_model) (dcgan ()) Tuner.Felix
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "Tuner.run: %s" (Tuner.error_message e)
  in
  Store.close s;
  Alcotest.(check bool) "finite final latency" true
    (Float.is_finite r.Tuner.final_latency_ms);
  let c name = Telemetry.Counter.value (Telemetry.counter tel name) in
  Alcotest.(check bool) "faults were injected" true
    (c "measure.timeouts" + c "measure.crashes" > 0);
  Alcotest.(check int) "attempt accounting closes"
    (c "measure.attempts")
    (c "measure.ok" + c "measure.timeouts" + c "measure.crashes" + c "measure.invalid");
  let s =
    match Store.open_dir dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "reopen: %s" (Store.error_message e)
  in
  let st = Store.stats s in
  Alcotest.(check bool) "failures journalled" true (st.Store.failures > 0);
  Store.close s;
  remove_tree dir

let tests =
  [ test_direct_matches_inline;
    Alcotest.test_case "pool == direct bitwise" `Quick test_pool_matches_direct;
    test_chaos_deterministic;
    Alcotest.test_case "chaos is order-independent" `Quick test_chaos_order_independent;
    Alcotest.test_case "retry classification" `Quick test_retry_classification;
    Alcotest.test_case "invalid never retried" `Quick test_invalid_never_retried;
    Alcotest.test_case "outcome cache" `Quick test_outcome_cache;
    test_config_codec_roundtrip;
    Alcotest.test_case "validate rejects bad configs" `Quick test_validate_rejects;
    Alcotest.test_case "tuner rejects bad measure config" `Quick
      test_tuner_rejects_bad_measure_config;
    Alcotest.test_case "telemetry accounting" `Quick test_telemetry_accounting;
    Alcotest.test_case "job codec measure passthrough" `Quick
      test_job_codec_measure_passthrough;
    Alcotest.test_case "store failure records" `Quick test_store_failure_stats;
    Alcotest.test_case "chaos tuner runs identical" `Quick
      test_chaos_tuner_runs_identical;
    Alcotest.test_case "chaos resume bit-identical" `Quick
      test_chaos_resume_bit_identical;
    Alcotest.test_case "chaos run completes and classifies" `Quick
      test_chaos_run_completes_and_classifies ]
