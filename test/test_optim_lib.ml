(* Tests for lib/optim: Gradient_tuner, Evolutionary, Tuner, Tuning_config. *)

open Testutil

let quick = Tuning_config.quick

(* A lightweight cost model trained on a tiny dataset, shared across tests. *)
let shared_model =
  lazy
    (let rng = Rng.create 100 in
     let samples =
       Dataset.generate rng Device.rtx_a5000 ~schedules_per_task:60
         [ dense_sg (); conv_sg () ]
     in
     let ds = Dataset.split rng samples in
     let model, _ = Train.pretrain rng ~epochs:5 ~hidden:[ 64; 64 ] ds in
     model)

let test_clock () =
  let c = Tuning_config.Clock.create () in
  check_close "zero" 0.0 (Tuning_config.Clock.now c);
  Tuning_config.Clock.advance c 1.5;
  Tuning_config.Clock.advance c 2.0;
  check_close "accumulates" 3.5 (Tuning_config.Clock.now c)

let test_config_defaults_match_paper () =
  let d = Tuning_config.default in
  Alcotest.(check int) "nSeeds = 8" 8 d.Tuning_config.nseeds;
  Alcotest.(check int) "nSteps = 200" 200 d.Tuning_config.nsteps;
  Alcotest.(check int) "nMeasure = 16" 16 d.Tuning_config.nmeasure_felix;
  Alcotest.(check int) "Ansor measures 64" 64 d.Tuning_config.nmeasure_ansor;
  Alcotest.(check int) "4 generations" 4 d.Tuning_config.generations

let test_descend_reduces_objective () =
  let model = Lazy.force shared_model in
  let rng = Rng.create 11 in
  let sg = dense_sg () in
  let sched = List.nth (Sketch.generate sg) 1 in
  let pack = Pack.prepare sg sched in
  let improved = ref 0 in
  for _ = 1 to 5 do
    let y0 = sample_valid rng pack in
    let cfg = { quick with Tuning_config.nsteps = 80 } in
    let hist = Gradient_tuner.descend cfg rng model pack y0 in
    let first = snd (List.hd hist) in
    let best = List.fold_left (fun acc (_, o) -> min acc o) infinity hist in
    if best < first then incr improved
  done;
  Alcotest.(check bool) "objective improves for most seeds" true (!improved >= 4)

let test_search_round_respects_budget () =
  let model = Lazy.force shared_model in
  let rng = Rng.create 12 in
  let sg = dense_sg () in
  let packs = List.map (Pack.prepare sg) (Sketch.generate sg) in
  let cands, trace =
    Gradient_tuner.search_round quick rng model packs ~already_measured:(fun _ -> false)
  in
  Alcotest.(check bool) "at most nmeasure" true
    (List.length cands <= quick.Tuning_config.nmeasure_felix);
  Alcotest.(check bool) "trace has predictions" true
    (List.length trace.Gradient_tuner.predictions > 0);
  (* keys unique *)
  let keys = List.map (fun (c : Gradient_tuner.candidate) -> c.key) cands in
  Alcotest.(check int) "unique keys" (List.length keys)
    (List.length (List.sort_uniq String.compare keys));
  (* candidates sorted by predicted, best first *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      (a : Gradient_tuner.candidate).predicted >= b.predicted && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted cands)

let test_search_round_excludes_measured () =
  let model = Lazy.force shared_model in
  let rng = Rng.create 13 in
  let sg = dense_sg () in
  let packs = List.map (Pack.prepare sg) (Sketch.generate sg) in
  let first, _ =
    Gradient_tuner.search_round quick rng model packs ~already_measured:(fun _ -> false)
  in
  let measured = List.map (fun (c : Gradient_tuner.candidate) -> c.key) first in
  let second, _ =
    Gradient_tuner.search_round quick (Rng.create 13) model packs
      ~already_measured:(fun k -> List.mem k measured)
  in
  List.iter
    (fun (c : Gradient_tuner.candidate) ->
      if List.mem c.key measured then Alcotest.fail "returned an already-measured schedule")
    second

let test_candidates_are_valid () =
  let model = Lazy.force shared_model in
  let rng = Rng.create 14 in
  let sg = conv_sg () in
  let packs = List.map (Pack.prepare sg) (Sketch.generate sg) in
  let cands, _ =
    Gradient_tuner.search_round quick rng model packs ~already_measured:(fun _ -> false)
  in
  Alcotest.(check bool) "found candidates" true (List.length cands > 0);
  List.iter
    (fun (c : Gradient_tuner.candidate) ->
      match Pack.round_to_valid c.pack c.y with
      | Some r -> Alcotest.(check string) "round idempotent" c.key (Pack.schedule_key c.pack r)
      | None -> Alcotest.fail "candidate is not a valid schedule")
    cands

let test_mutate_validity () =
  let rng = Rng.create 15 in
  let sg = dense_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let y = sample_valid rng pack in
  let ok = ref 0 in
  for _ = 1 to 30 do
    match Evolutionary.mutate rng pack y with
    | Some y' -> (
      incr ok;
      match Pack.round_to_valid pack y' with
      | Some _ -> ()
      | None -> Alcotest.fail "mutate returned invalid point")
    | None -> ()
  done;
  Alcotest.(check bool) "mutations mostly succeed" true (!ok > 15)

let test_crossover_validity () =
  let rng = Rng.create 16 in
  let sg = dense_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let a = sample_valid rng pack and b = sample_valid rng pack in
  for _ = 1 to 20 do
    match Evolutionary.crossover rng pack a b with
    | Some y -> (
      match Pack.round_to_valid pack y with
      | Some _ -> ()
      | None -> Alcotest.fail "crossover returned invalid point")
    | None -> ()
  done

let test_evolutionary_round () =
  let model = Lazy.force shared_model in
  let rng = Rng.create 17 in
  let sg = dense_sg () in
  let packs = List.map (Pack.prepare sg) (Sketch.generate sg) in
  let inds, trace =
    Evolutionary.search_round quick rng model packs ~elites:[] ~already_measured:(fun _ -> false)
  in
  Alcotest.(check bool) "bounded by nmeasure" true
    (List.length inds <= quick.Tuning_config.nmeasure_ansor);
  Alcotest.(check bool) "evaluated plenty" true (trace.Evolutionary.evaluated > 50);
  let keys = List.map (fun (i : Evolutionary.individual) -> i.key) inds in
  Alcotest.(check int) "unique" (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let test_tune_single_improves () =
  let model = Lazy.force shared_model in
  List.iter
    (fun engine ->
      let r =
        run_tuner_single
          (with_test_runtime Tuning_config.(builder |> with_search quick |> with_seed 4))
          ~rounds:4 Device.rtx_a5000 model (dense_sg ()) engine
      in
      let first = (List.hd r.Tuner.curve).Tuner.latency_ms in
      Alcotest.(check bool)
        (Tuner.engine_name engine ^ " improves")
        true
        (r.Tuner.best.Tuner.latency_ms < first);
      (* curve is monotone non-increasing *)
      let rec mono = function
        | (a : Tuner.progress_point) :: (b :: _ as rest) ->
          a.latency_ms >= b.latency_ms -. 1e-9 && mono rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone curve" true (mono r.Tuner.curve))
    [ Tuner.Felix; Tuner.Ansor ]

let test_tune_single_deterministic () =
  let model = Lazy.force shared_model in
  let run () =
    run_tuner_single
      Tuning_config.(builder |> with_search quick |> with_seed 7)
      ~rounds:2 Device.rtx_a5000 model (dense_sg ()) Tuner.Felix
  in
  let a = run () and b = run () in
  check_close "same final" a.Tuner.best.Tuner.latency_ms b.Tuner.best.Tuner.latency_ms

let test_tune_network () =
  let model = Lazy.force shared_model in
  let g = Workload.graph Workload.Dcgan in
  let cfg = { quick with Tuning_config.max_rounds = 10 } in
  let r =
    run_tuner
      (with_test_runtime Tuning_config.(builder |> with_search cfg |> with_seed 5))
      Device.rtx_a5000 model g Tuner.Felix
  in
  Alcotest.(check bool) "finite latency" true (Float.is_finite r.Tuner.final_latency_ms);
  Alcotest.(check bool) "tasks reported" true (List.length r.Tuner.tasks = 5);
  Alcotest.(check bool) "clock advanced" true
    ((List.hd (List.rev r.Tuner.curve)).Tuner.time_s > 0.0);
  Alcotest.(check bool) "measured something" true (r.Tuner.total_measurements > 5);
  (* every tuned task reports a valid assignment *)
  List.iter
    (fun (tr : Tuner.task_result) ->
      if Float.is_finite tr.best.Tuner.latency_ms && tr.best.Tuner.latency_ms > 0.0 then ()
      else Alcotest.failf "task %s has no result" tr.task.Partition.subgraph.Compute.sg_name)
    r.Tuner.tasks

let test_scheduler_prefers_heavy_tasks () =
  let model = Lazy.force shared_model in
  let g = Workload.graph Workload.Dcgan in
  let cfg = { quick with Tuning_config.max_rounds = 10 } in
  let r =
    run_tuner
      Tuning_config.(builder |> with_search cfg |> with_seed 6)
      Device.rtx_a5000 model g Tuner.Felix
  in
  (* the most expensive task must have received at least one round *)
  let heaviest =
    Stats.argmax
      (fun (tr : Tuner.task_result) ->
        float_of_int tr.task.Partition.weight *. Partition.task_flops tr.task)
      r.Tuner.tasks
  in
  Alcotest.(check bool) "heaviest task tuned" true (heaviest.rounds_spent >= 1)

(* --- fused objective kernel -------------------------------------------------- *)

let bits_eq a b =
  Array.for_all2
    (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
    a b

let test_objective_fused_matches_legacy () =
  let model = Lazy.force shared_model in
  let rng = Rng.create 41 in
  List.iter
    (fun sg ->
      List.iter
        (fun sched ->
          let pack = Pack.prepare sg sched in
          let obj = Objective.create ~lambda:quick.Tuning_config.lambda model pack in
          let grad = Array.make (Pack.num_vars pack) 0.0 in
          for _ = 1 to 5 do
            let y = sample_valid rng pack in
            let o_legacy, g_legacy =
              Objective.legacy_value_grad ~lambda:quick.Tuning_config.lambda model pack y
            in
            let o_fused = Objective.value_grad obj y ~grad in
            if not (Int64.equal (Int64.bits_of_float o_legacy) (Int64.bits_of_float o_fused))
            then Alcotest.failf "objective diverged: %h vs %h" o_legacy o_fused;
            Alcotest.(check bool) "gradient bitwise" true (bits_eq g_legacy grad);
            (* predict goes through the same pooled workspaces *)
            let p_legacy = Mlp.forward model (Pack.features_at pack y) in
            let p_fused = Objective.predict obj y in
            Alcotest.(check bool) "predict bitwise" true
              (Int64.equal (Int64.bits_of_float p_legacy) (Int64.bits_of_float p_fused))
          done)
        (Sketch.generate sg))
    [ dense_sg (); conv_sg () ]

let test_objective_parallel_bitwise () =
  (* One shared Objective across 4 domains: the workspace pool hands each
     concurrent caller a private workspace, so parallel evaluation is
     bit-identical to the sequential map. *)
  let model = Lazy.force shared_model in
  let rng = Rng.create 43 in
  let sg = dense_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let obj = Objective.create ~lambda:10.0 model pack in
  let n = Pack.num_vars pack in
  let points = Array.init 64 (fun _ -> sample_valid rng pack) in
  let eval y =
    let grad = Array.make n 0.0 in
    let o = Objective.value_grad obj y ~grad in
    (o, grad)
  in
  let seq = Array.map eval points in
  Runtime.with_runtime ~domains:4 (fun rt ->
      let par = Runtime.parallel_map rt eval points in
      Array.iteri
        (fun i (o_s, g_s) ->
          let o_p, g_p = par.(i) in
          if not (Int64.equal (Int64.bits_of_float o_s) (Int64.bits_of_float o_p)) then
            Alcotest.failf "point %d: parallel objective diverged" i;
          Alcotest.(check bool) "parallel gradient bitwise" true (bits_eq g_s g_p))
        seq)

let test_descend_matches_manual_legacy_loop () =
  (* The reworked descend (fused objective, reused gradient buffer, step
     telemetry) must retrace the historical Adam loop bit for bit. *)
  let model = Lazy.force shared_model in
  let rng = Rng.create 47 in
  let sg = dense_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let cfg = { quick with Tuning_config.nsteps = 40 } in
  let y0 = sample_valid rng pack in
  let fused = Gradient_tuner.descend cfg rng model pack y0 in
  let manual =
    let y = Array.copy y0 in
    let adam = Adam.create ~lr:cfg.Tuning_config.gd_lr (Array.length y) in
    let bounds = Pack.bounds_log pack in
    let history = ref [] in
    for _ = 1 to cfg.Tuning_config.nsteps do
      let obj, grad =
        Objective.legacy_value_grad ~lambda:cfg.Tuning_config.lambda model pack y
      in
      history := (Array.copy y, obj) :: !history;
      Adam.step adam ~params:y ~grads:grad;
      Array.iteri
        (fun i (lo, hi) -> y.(i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) y.(i))
        bounds
    done;
    let obj, _ = Objective.legacy_value_grad ~lambda:cfg.Tuning_config.lambda model pack y in
    history := (Array.copy y, obj) :: !history;
    List.rev !history
  in
  Alcotest.(check int) "trajectory length" (List.length manual) (List.length fused);
  List.iteri
    (fun i ((y_m, o_m), (y_f, o_f)) ->
      if not (Int64.equal (Int64.bits_of_float o_m) (Int64.bits_of_float o_f)) then
        Alcotest.failf "step %d: objective diverged (%h vs %h)" i o_m o_f;
      Alcotest.(check bool) "iterate bitwise" true (bits_eq y_m y_f))
    (List.combine manual fused)

let test_objective_batch_bitwise () =
  (* Lane l of the batched lockstep evaluation must be bitwise the scalar
     call on that candidate alone, at any batch size. *)
  let model = Lazy.force shared_model in
  let rng = Rng.create 59 in
  let sg = dense_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let obj = Objective.create ~lambda:10.0 model pack in
  let n = Pack.num_vars pack in
  List.iter
    (fun batch ->
      let points = Array.init batch (fun _ -> sample_valid rng pack) in
      let ys = Array.make (batch * n) 0.0 in
      Array.iteri (fun l y -> Array.blit y 0 ys (l * n) n) points;
      let grads = Array.make (batch * n) 0.0 in
      let objs = Array.make batch 0.0 in
      Objective.value_grad_batch obj ~batch ys ~grads ~objs;
      let scores = Array.make batch 0.0 in
      Objective.predict_batch obj ~batch ys ~scores;
      Array.iteri
        (fun l y ->
          let g = Array.make n 0.0 in
          let o = Objective.value_grad obj y ~grad:g in
          if not (Int64.equal (Int64.bits_of_float o) (Int64.bits_of_float objs.(l)))
          then Alcotest.failf "batch %d lane %d: objective diverged" batch l;
          Alcotest.(check bool) "gradient bitwise" true
            (bits_eq g (Array.sub grads (l * n) n));
          let p = Objective.predict obj y in
          if not
               (Int64.equal (Int64.bits_of_float p) (Int64.bits_of_float scores.(l)))
          then Alcotest.failf "batch %d lane %d: prediction diverged" batch l)
        points)
    [ 1; 5; 32 ]

let test_descend_batch_bitwise () =
  (* Every lane of the lockstep descent must retrace the scalar descent on
     its seed, regardless of tile width or domain count. *)
  let model = Lazy.force shared_model in
  let rng = Rng.create 61 in
  let sg = dense_sg () in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let cfg = { quick with Tuning_config.nsteps = 25 } in
  let seeds = Array.init 5 (fun _ -> sample_valid rng pack) in
  let scalar =
    Array.map (fun y0 -> Gradient_tuner.descend cfg (Rng.create 0) model pack y0) seeds
  in
  let check label batched =
    Array.iteri
      (fun l traj ->
        let traj' = batched.(l) in
        Alcotest.(check int) "trajectory length" (List.length traj) (List.length traj');
        List.iteri
          (fun i ((y_s, o_s), (y_b, o_b)) ->
            if not (Int64.equal (Int64.bits_of_float o_s) (Int64.bits_of_float o_b))
            then Alcotest.failf "%s seed %d step %d: objective diverged" label l i;
            Alcotest.(check bool) "iterate bitwise" true (bits_eq y_s y_b))
          (List.combine traj traj'))
      scalar
  in
  check "tile 2" (Gradient_tuner.descend_batch cfg ~batch:2 model pack seeds);
  check "one tile" (Gradient_tuner.descend_batch cfg model pack seeds);
  Runtime.with_runtime ~domains:4 (fun rt ->
      check "tile 2 x 4 domains"
        (Gradient_tuner.descend_batch cfg ~runtime:rt ~batch:2 model pack seeds))

let test_search_round_batch_bitwise () =
  (* search_round with batched descents (any tile width, any domain count)
     must return the scalar round's candidates, bit for bit. *)
  let model = Lazy.force shared_model in
  let packs = List.map (Pack.prepare (dense_sg ())) (Sketch.generate (dense_sg ())) in
  let run ?runtime ?batch () =
    Gradient_tuner.search_round quick (Rng.create 17) ?runtime ?batch model packs
      ~already_measured:(fun _ -> false)
  in
  let reference, ref_trace = run () in
  let check label (cands, (trace : Gradient_tuner.trace)) =
    Alcotest.(check int)
      (label ^ ": candidate count")
      (List.length reference) (List.length cands);
    List.iteri
      (fun i ((a : Gradient_tuner.candidate), (b : Gradient_tuner.candidate)) ->
        Alcotest.(check string) (Printf.sprintf "%s: key %d" label i) a.key b.key;
        if
          not
            (Int64.equal
               (Int64.bits_of_float a.predicted)
               (Int64.bits_of_float b.predicted))
        then Alcotest.failf "%s: prediction %d diverged" label i;
        Alcotest.(check bool) "rounded point bitwise" true (bits_eq a.y b.y))
      (List.combine reference cands);
    Alcotest.(check int)
      (label ^ ": steps done")
      ref_trace.Gradient_tuner.steps_done trace.Gradient_tuner.steps_done
  in
  check "batch 8" (run ~batch:8 ());
  Runtime.with_runtime ~domains:4 (fun rt -> check "batch 8 x 4 domains" (run ~runtime:rt ~batch:8 ()))

let test_evolutionary_batch_bitwise () =
  let model = Lazy.force shared_model in
  let packs = [ Pack.prepare (dense_sg ()) (List.hd (Sketch.generate (dense_sg ()))) ] in
  let run ?batch () =
    Evolutionary.search_round quick (Rng.create 19) ?batch model packs ~elites:[]
      ~already_measured:(fun _ -> false)
  in
  let reference, _ = run () in
  let batched, _ = run ~batch:8 () in
  Alcotest.(check int) "population size" (List.length reference) (List.length batched);
  List.iteri
    (fun i ((a : Evolutionary.individual), (b : Evolutionary.individual)) ->
      Alcotest.(check string) (Printf.sprintf "key %d" i) a.Evolutionary.key
        b.Evolutionary.key;
      if
        not
          (Int64.equal
             (Int64.bits_of_float a.Evolutionary.predicted)
             (Int64.bits_of_float b.Evolutionary.predicted))
      then Alcotest.failf "individual %d: prediction diverged" i)
    (List.combine reference batched)

let tests =
  [ Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "defaults match the paper" `Quick test_config_defaults_match_paper;
    Alcotest.test_case "gradient descent reduces the objective" `Slow test_descend_reduces_objective;
    Alcotest.test_case "fused objective bitwise-equals legacy" `Slow
      test_objective_fused_matches_legacy;
    Alcotest.test_case "shared objective is parallel-deterministic" `Slow
      test_objective_parallel_bitwise;
    Alcotest.test_case "descend retraces the legacy Adam loop" `Slow
      test_descend_matches_manual_legacy_loop;
    Alcotest.test_case "batched objective bitwise-equals scalar" `Slow
      test_objective_batch_bitwise;
    Alcotest.test_case "lockstep descent retraces scalar descents" `Slow
      test_descend_batch_bitwise;
    Alcotest.test_case "batched search round is bit-identical" `Slow
      test_search_round_batch_bitwise;
    Alcotest.test_case "batched evolutionary scoring is bit-identical" `Slow
      test_evolutionary_batch_bitwise;
    Alcotest.test_case "felix round respects measurement budget" `Slow
      test_search_round_respects_budget;
    Alcotest.test_case "felix round excludes measured schedules" `Slow
      test_search_round_excludes_measured;
    Alcotest.test_case "felix candidates are valid schedules" `Slow test_candidates_are_valid;
    Alcotest.test_case "evolutionary mutation validity" `Slow test_mutate_validity;
    Alcotest.test_case "evolutionary crossover validity" `Slow test_crossover_validity;
    Alcotest.test_case "evolutionary round" `Slow test_evolutionary_round;
    Alcotest.test_case "single-task tuning improves (both engines)" `Slow
      test_tune_single_improves;
    Alcotest.test_case "tuning is deterministic under a seed" `Slow test_tune_single_deterministic;
    Alcotest.test_case "full-network tuning (DCGAN)" `Slow test_tune_network;
    Alcotest.test_case "task scheduler reaches heavy tasks" `Slow test_scheduler_prefers_heavy_tasks ]

(* --- export ----------------------------------------------------------------- *)

let test_json_writer () =
  let open Export.Json in
  Alcotest.(check string) "null" "null" (to_string Null);
  Alcotest.(check string) "bool" "true" (to_string (Bool true));
  Alcotest.(check string) "int-like" "42" (to_string (Num 42.0));
  Alcotest.(check string) "escape" "\"a\\\"b\\n\"" (to_string (Str "a\"b\n"));
  Alcotest.(check string) "empty obj" "{}" (to_string (Obj []));
  Alcotest.(check string) "infinity becomes null" "null" (to_string (Num infinity));
  let s = to_string (Obj [ ("xs", List [ Num 1.0; Num 2.0 ]) ]) in
  Alcotest.(check bool) "nested render" true
    (Testutil.contains ~needle:"\"xs\"" s && Testutil.contains ~needle:"1" s)

let test_export_roundtrip () =
  let model = Lazy.force shared_model in
  let g = Workload.graph Workload.Dcgan in
  let cfg = { quick with Tuning_config.max_rounds = 4 } in
  let r =
    run_tuner
      Tuning_config.(builder |> with_search cfg |> with_seed 8)
      Device.rtx_a5000 model g Tuner.Felix
  in
  let csv = Export.curve_to_csv r in
  Alcotest.(check bool) "csv header" true
    (Testutil.contains ~needle:"time_s,latency_ms" csv);
  Alcotest.(check int) "csv rows = curve points + header"
    (List.length r.Tuner.curve + 1)
    (List.length (String.split_on_char '\n' (String.trim csv)));
  let json = Export.result_to_json r in
  Alcotest.(check bool) "json has network" true
    (Testutil.contains ~needle:"\"network\"" json);
  Alcotest.(check bool) "json has tasks" true (Testutil.contains ~needle:"\"tasks\"" json);
  Alcotest.(check bool) "json has engine" true (Testutil.contains ~needle:"Felix" json);
  (* files: CSV plus the versioned result artifact, reloaded bit-exactly *)
  let p1 = Filename.temp_file "felix_curve" ".csv" in
  let p2 = Filename.temp_file "felix_res" ".json" in
  Export.write_curve_csv r p1;
  (match Export.save_result r p2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save_result: %s" (Store.error_message e));
  (match Export.load_result p2 with
  | Error e -> Alcotest.failf "load_result: %s" (Store.error_message e)
  | Ok s ->
    Alcotest.(check string) "network round-trips" r.Tuner.network s.Export.sr_network;
    Alcotest.(check int) "tasks round-trip"
      (List.length r.Tuner.tasks)
      (List.length s.Export.sr_tasks);
    Alcotest.(check bool) "final latency bit-exact" true
      (Int64.bits_of_float r.Tuner.final_latency_ms
      = Int64.bits_of_float s.Export.sr_final_latency_ms);
    Alcotest.(check bool) "curve bit-exact" true
      (List.for_all2
         (fun (p : Tuner.progress_point) (t, l) ->
           Int64.bits_of_float p.Tuner.time_s = Int64.bits_of_float t
           && Int64.bits_of_float p.Tuner.latency_ms = Int64.bits_of_float l)
         r.Tuner.curve s.Export.sr_curve));
  (* a foreign artifact is refused with a typed error *)
  (match Mlp.save_file (Lazy.force shared_model) p2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mlp save: %s" (Store.error_message e));
  (match Export.load_result p2 with
  | Error (Store.Kind_mismatch _) -> ()
  | Error e -> Alcotest.failf "expected kind mismatch, got %s" (Store.error_message e)
  | Ok _ -> Alcotest.fail "loaded an MLP artifact as a result");
  Sys.remove p1;
  Sys.remove p2

let export_tests =
  [ Alcotest.test_case "json writer" `Quick test_json_writer;
    Alcotest.test_case "export csv/json roundtrip" `Slow test_export_roundtrip ]

let tests = tests @ export_tests

let test_random_engine () =
  let model = Lazy.force shared_model in
  let r =
    run_tuner_single
      Tuning_config.(builder |> with_search quick |> with_seed 9)
      ~rounds:3 Device.rtx_a5000 model (dense_sg ()) Tuner.Random
  in
  Alcotest.(check bool) "random search improves over initial" true
    (r.Tuner.best.Tuner.latency_ms < (List.hd r.Tuner.curve).Tuner.latency_ms);
  Alcotest.(check bool) "no cost-model predictions" true (r.Tuner.predictions = [])

let tests = tests @ [ Alcotest.test_case "random-search engine" `Slow test_random_engine ]

let test_headline_felix_faster_than_ansor () =
  (* The paper's headline claim as a regression test: on a matmul subgraph,
     Felix reaches 90% of Ansor's best performance in less simulated tuning
     time (Table 2). Deterministic under the fixed seeds. *)
  let model = Lazy.force shared_model in
  let cfg = { quick with Tuning_config.max_rounds = 6 } in
  let run engine =
    run_tuner_single
      Tuning_config.(builder |> with_search cfg |> with_seed 21)
      ~rounds:6 Device.rtx_a5000 model (dense_sg ()) engine
  in
  let felix = run Tuner.Felix and ansor = run Tuner.Ansor in
  let target = ansor.Tuner.best.Tuner.latency_ms /. 0.90 in
  let time_to curve =
    List.find_map
      (fun (p : Tuner.progress_point) -> if p.latency_ms <= target then Some p.time_s else None)
      curve
  in
  match (time_to felix.Tuner.curve, time_to ansor.Tuner.curve) with
  | Some tf, Some ta ->
    Alcotest.(check bool)
      (Printf.sprintf "felix %.0fs <= ansor %.0fs to the 90%% milestone" tf ta)
      true (tf <= ta)
  | None, _ -> Alcotest.fail "felix never reached the 90% milestone"
  | _, None -> Alcotest.fail "ansor never reached its own 90% milestone"

let tests =
  tests
  @ [ Alcotest.test_case "headline: felix reaches 90% milestone before ansor" `Slow
        test_headline_felix_faster_than_ansor ]

(* --- tuning events ---------------------------------------------------------- *)

let run_with_events ?(seed = 31) ~max_rounds () =
  let model = Lazy.force shared_model in
  let g = Workload.graph Workload.Dcgan in
  let cfg = { quick with Tuning_config.max_rounds } in
  let events = ref [] in
  let r =
    run_tuner
      Tuning_config.(
        builder |> with_search cfg |> with_seed seed
        |> with_on_event (fun e -> events := e :: !events))
      Device.rtx_a5000 model g Tuner.Felix
  in
  (r, List.rev !events)

let test_event_sequence_well_formed () =
  let _, events = run_with_events ~max_rounds:2 () in
  (* Bracketing: one Tuning_started first, one Tuning_finished last. *)
  (match events with
  | Tuner.Tuning_started { n_tasks; _ } :: _ ->
    Alcotest.(check bool) "tasks announced" true (n_tasks > 0)
  | _ -> Alcotest.fail "first event is not Tuning_started");
  (match List.rev events with
  | Tuner.Tuning_finished _ :: Tuner.Budget_exhausted { reason; _ } :: _ ->
    Alcotest.(check string) "stopped on round budget" "rounds"
      (Tuner.budget_reason_name reason)
  | _ -> Alcotest.fail "run does not end with Budget_exhausted; Tuning_finished");
  (* Starts/finishes are paired per round, in order, covering every round. *)
  let starts =
    List.filter_map (function Tuner.Round_started { round; _ } -> Some round | _ -> None) events
  in
  let finishes =
    List.filter_map
      (function Tuner.Round_finished { round; _ } -> Some round | _ -> None)
      events
  in
  Alcotest.(check (list int)) "every round started in order" [ 1; 2 ] starts;
  Alcotest.(check (list int)) "every round finished in order" [ 1; 2 ] finishes;
  (* Each round's interior events sit between its start and finish, and every
     round reports one Candidates_measured. *)
  let rec well_nested current = function
    | [] -> Alcotest.(check (option int)) "all rounds closed" None current
    | e :: rest -> (
      match e with
      | Tuner.Round_started { round; _ } ->
        Alcotest.(check (option int)) "no nested round" None current;
        well_nested (Some round) rest
      | Tuner.Round_finished { round; _ } ->
        Alcotest.(check (option int)) "finish matches open round" (Some round) current;
        well_nested None rest
      | Tuner.Candidates_measured { round; _ }
      | Tuner.Task_improved { round; _ }
      | Tuner.Model_updated { round; _ } ->
        Alcotest.(check (option int)) "round event inside its round" (Some round) current;
        well_nested current rest
      | Tuner.Tuning_started _ | Tuner.Budget_exhausted _ | Tuner.Tuning_finished _ ->
        well_nested current rest)
  in
  well_nested None events;
  let measured_events =
    List.filter (function Tuner.Candidates_measured _ -> true | _ -> false) events
  in
  Alcotest.(check int) "one measurement event per round" 2 (List.length measured_events)

let test_event_clock_monotone () =
  let _, events = run_with_events ~max_rounds:3 () in
  let clocks =
    List.filter_map
      (function
        | Tuner.Round_started { sim_clock_s; _ }
        | Tuner.Candidates_measured { sim_clock_s; _ }
        | Tuner.Round_finished { sim_clock_s; _ }
        | Tuner.Budget_exhausted { sim_clock_s; _ }
        | Tuner.Tuning_finished { sim_clock_s; _ } -> Some sim_clock_s
        | _ -> None)
      events
  in
  Alcotest.(check bool) "clock readings present" true (List.length clocks > 6);
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "simulated clock is monotone across events" true (mono clocks)

let test_events_do_not_change_result () =
  let plain, _ = run_with_events ~max_rounds:2 () in
  let model = Lazy.force shared_model in
  let g = Workload.graph Workload.Dcgan in
  let cfg = { quick with Tuning_config.max_rounds = 2 } in
  (* Same seed, no callback, private telemetry registry: identical result. *)
  let bare =
    run_tuner
      Tuning_config.(
        builder |> with_search cfg |> with_seed 31
        |> with_telemetry (Telemetry.create ()))
      Device.rtx_a5000 model g Tuner.Felix
  in
  check_close "same final latency" plain.Tuner.final_latency_ms bare.Tuner.final_latency_ms;
  Alcotest.(check int) "same measurement count" plain.Tuner.total_measurements
    bare.Tuner.total_measurements;
  Alcotest.(check int) "same curve length" (List.length plain.Tuner.curve)
    (List.length bare.Tuner.curve)

let test_round_spans_recorded () =
  let model = Lazy.force shared_model in
  let reg = Telemetry.create () in
  let spans = ref [] in
  Telemetry.add_sink reg (fun r ->
      if r.Telemetry.r_kind = Telemetry.Span then spans := r :: !spans);
  let _ =
    run_tuner_single
      Tuning_config.(
        builder |> with_search quick |> with_seed 12 |> with_telemetry reg)
      ~rounds:2 Device.rtx_a5000 model (dense_sg ()) Tuner.Felix
  in
  let rounds = List.filter (fun r -> r.Telemetry.r_name = "tuner.round") !spans in
  Alcotest.(check int) "one span per round" 2 (List.length rounds);
  List.iter
    (fun r ->
      let has k = List.mem_assoc k r.Telemetry.r_attrs in
      Alcotest.(check bool) "span carries engine/task/counts/best" true
        (has "engine" && has "task" && has "proposed" && has "measured" && has "best_ms"))
    rounds

(* Pack's prepare-time instruments live on Telemetry.global (like its LRU
   counters), so this test enables the global registry around a full run
   and checks deltas; disabled again afterwards so other tests see the
   default-inert registry. *)
let test_prepare_telemetry_through_run () =
  let model = Lazy.force shared_model in
  let dir = Filename.temp_file "felix_pack_cache" "" in
  Sys.remove dir;
  let reg = Telemetry.global in
  let h = Telemetry.histogram reg "felix.prepare_ms" in
  let c_hits = Telemetry.counter reg "features.pack_cache_disk_hits" in
  let c_misses = Telemetry.counter reg "features.pack_cache_disk_misses" in
  Telemetry.enable reg;
  let finally () =
    Telemetry.disable reg;
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  in
  Fun.protect ~finally @@ fun () ->
  let observations_before = Telemetry.Histogram.count h in
  let misses_before = Telemetry.Counter.value c_misses in
  let hits_before = Telemetry.Counter.value c_hits in
  let run () =
    Pack.clear_memory_cache ();
    run_tuner_single
      Tuning_config.(
        builder |> with_search quick |> with_seed 12 |> with_pack_cache dir)
      ~rounds:1 Device.rtx_a5000 model (dense_sg ()) Tuner.Felix
  in
  let _ = run () in
  Alcotest.(check bool) "prepare_ms histogram observed" true
    (Telemetry.Histogram.count h > observations_before);
  Alcotest.(check bool) "cold run missed the disk cache" true
    (Telemetry.Counter.value c_misses > misses_before);
  let hits_mid = Telemetry.Counter.value c_hits in
  let _ = run () in
  Alcotest.(check bool) "second run hit the disk cache" true
    (Telemetry.Counter.value c_hits > hits_mid);
  Alcotest.(check bool) "no hits before the cache was warm" true
    (hits_mid = hits_before)

let tests =
  tests
  @ [ Alcotest.test_case "event sequence is well-formed" `Slow test_event_sequence_well_formed;
      Alcotest.test_case "event clock is monotone" `Slow test_event_clock_monotone;
      Alcotest.test_case "events/telemetry leave the result unchanged" `Slow
        test_events_do_not_change_result;
      Alcotest.test_case "per-round telemetry spans" `Slow test_round_spans_recorded;
      Alcotest.test_case "prepare telemetry and disk counters through a run" `Slow
        test_prepare_telemetry_through_run ]
