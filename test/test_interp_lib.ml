(* Compiler-correctness tests: scheduled (tiled-order) execution must equal
   reference execution for every operator family and any valid schedule.
   This pins down the tiling algebra, the affine access maps, the fused
   iteration decomposition and the divisor rounding simultaneously. *)

open Testutil

let small_ops =
  [ ("dense", Op.Dense { batch = 4; in_dim = 12; out_dim = 18 });
    ("conv2d",
     Op.Conv2d
       { batch = 1; in_chan = 4; out_chan = 6; in_h = 8; in_w = 8; kernel_h = 3; kernel_w = 3;
         stride = 1; pad = 1; groups = 1 });
    ("conv2d_s2",
     Op.Conv2d
       { batch = 2; in_chan = 3; out_chan = 4; in_h = 9; in_w = 9; kernel_h = 3; kernel_w = 3;
         stride = 2; pad = 1; groups = 1 });
    ("depthwise",
     Op.Conv2d
       { batch = 1; in_chan = 6; out_chan = 6; in_h = 8; in_w = 8; kernel_h = 3; kernel_w = 3;
         stride = 2; pad = 1; groups = 6 });
    ("conv3d",
     Op.Conv3d
       { batch = 1; in_chan = 2; out_chan = 3; in_d = 4; in_h = 6; in_w = 6; kernel_d = 3;
         kernel_h = 3; kernel_w = 3; stride = 1; pad = 1 });
    ("tconv2d",
     Op.Tconv2d
       { batch = 1; in_chan = 4; out_chan = 3; in_h = 5; in_w = 5; kernel_h = 4; kernel_w = 4;
         stride = 2; pad = 1 });
    ("batch_matmul", Op.Batch_matmul { batch = 2; m = 6; k = 8; n = 10 });
    ("softmax", Op.Softmax { rows = 12; cols = 10 });
    ("layer_norm", Op.Layer_norm { rows = 8; cols = 16 });
    ("maxpool", Op.Maxpool2d { batch = 1; chan = 4; in_h = 10; in_w = 10; kernel = 3; stride = 2; pad = 1 });
    ("avgpool", Op.Avgpool2d { batch = 1; chan = 4; in_h = 8; in_w = 8; kernel = 2; stride = 2; pad = 0 });
    ("global_avgpool", Op.Global_avgpool { batch = 2; chan = 5; in_h = 6; in_w = 6 });
    ("relu", Op.Elemwise (Op.Relu, 64));
    ("gelu", Op.Elemwise (Op.Gelu, 48));
    ("add", Op.Binary (Op.Add, 96)) ]

let expected_cache : (string, float array) Hashtbl.t = Hashtbl.create 16

let reference name op =
  match Hashtbl.find_opt expected_cache name with
  | Some e -> e
  | None ->
    let sg = Compute.lower ~name op in
    let e = Interp.output (Interp.run_reference sg) sg in
    Hashtbl.replace expected_cache name e;
    e

let check_op ?(trials = 4) name op () =
  let sg = Compute.lower ~name op in
  let expected = reference name op in
  let rng = Rng.create (Hashtbl.hash name) in
  List.iter
    (fun sched ->
      let pack = Pack.prepare sg sched in
      for _ = 1 to trials do
        let y = sample_valid rng pack in
        let mem = Interp.run_scheduled (Pack.program pack) (Pack.env_of pack y) in
        let err = Interp.max_rel_error expected (Interp.output mem sg) in
        if err > 1e-4 then
          Alcotest.failf "%s / %s: scheduled execution differs (rel err %.2e) at %s" name
            sched.Schedule.sched_name err (Pack.schedule_key pack y)
      done)
    (Sketch.generate sg)

let test_fused_subgraph () =
  (* Dense + bias-add + ReLU, the Figure 3 pattern with a fused tail. *)
  let sg = Compute.lower ~name:"dense" (Op.Dense { batch = 6; in_dim = 10; out_dim = 12 }) in
  let sg = Compute.fuse_elemwise sg ~name:"bias" (Op.Bias_add { rows = 6; cols = 12 }) in
  let sg = Compute.fuse_elemwise sg ~name:"relu" (Op.Elemwise (Op.Relu, 72)) in
  let expected = Interp.output (Interp.run_reference sg) sg in
  let rng = Rng.create 31 in
  List.iter
    (fun sched ->
      let pack = Pack.prepare sg sched in
      let y = sample_valid rng pack in
      let mem = Interp.run_scheduled (Pack.program pack) (Pack.env_of pack y) in
      let err = Interp.max_rel_error expected (Interp.output mem sg) in
      if err > 1e-4 then Alcotest.failf "fused subgraph differs: %.2e" err)
    (Sketch.generate sg)

let test_relu_semantics () =
  (* Reference execution itself must compute the right function. *)
  let sg = Compute.lower ~name:"r" (Op.Elemwise (Op.Relu, 32)) in
  let mem = Interp.run_reference sg in
  let out = Interp.output mem sg in
  Array.iteri
    (fun i v ->
      let x = Interp.input_value "r.in" i in
      Testutil.check_close "relu" (Float.max x 0.0) v)
    out

let test_matmul_semantics () =
  (* Tiny dense checked against a hand computation. *)
  let sg = Compute.lower ~name:"m" (Op.Dense { batch = 2; in_dim = 3; out_dim = 2 }) in
  let mem = Interp.run_reference sg in
  let out = Interp.output mem sg in
  let a i k = Interp.input_value "m.in" ((i * 3) + k) in
  let w j k = Interp.input_value "m.w" ((j * 3) + k) in
  for i = 0 to 1 do
    for j = 0 to 1 do
      let expect = ref 0.0 in
      for k = 0 to 2 do
        expect := !expect +. (a i k *. w j k)
      done;
      Testutil.check_close ~tol:1e-9 "matmul cell" !expect out.((i * 2) + j)
    done
  done

let test_softmax_rows_sum_to_one () =
  let sg = Compute.lower ~name:"s" (Op.Softmax { rows = 5; cols = 7 }) in
  let out = Interp.output (Interp.run_reference sg) sg in
  for r = 0 to 4 do
    let sum = ref 0.0 in
    for c = 0 to 6 do
      sum := !sum +. out.((r * 7) + c)
    done;
    Testutil.check_close ~tol:1e-6 "row sums to 1" 1.0 !sum
  done

let test_input_determinism () =
  Testutil.check_close "same value" (Interp.input_value "x" 7) (Interp.input_value "x" 7);
  Alcotest.(check bool) "different idx differ" true
    (Interp.input_value "x" 7 <> Interp.input_value "x" 8);
  Alcotest.(check bool) "bounded" true
    (let v = Interp.input_value "weights" 123 in
     v >= -1.0 && v <= 1.0)

let test_max_rel_error () =
  Testutil.check_close "identical" 0.0 (Interp.max_rel_error [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (Interp.max_rel_error [| 1.0 |] [| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true)

let tests =
  List.map
    (fun (name, op) ->
      Alcotest.test_case
        (Printf.sprintf "scheduled == reference: %s" name)
        `Quick (check_op name op))
    small_ops
  @ [ Alcotest.test_case "scheduled == reference: fused dense+bias+relu" `Quick
        test_fused_subgraph;
      Alcotest.test_case "relu reference semantics" `Quick test_relu_semantics;
      Alcotest.test_case "matmul reference semantics (hand check)" `Quick test_matmul_semantics;
      Alcotest.test_case "softmax rows sum to one" `Quick test_softmax_rows_sum_to_one;
      Alcotest.test_case "deterministic input initialisation" `Quick test_input_determinism;
      Alcotest.test_case "max_rel_error" `Quick test_max_rel_error ]
