(* tape: interpreted vs compiled (superop plan) batched tape sweeps.

   Times the exact tape inner loop of the batched descent — features
   forward + features backward + penalty value/grad — over the same 128
   candidate points, once through the interpreted SoA tape kernels and
   once through the compiled superop plans, at tile widths B in
   {1, 32, 128}. Every lane must be bitwise identical across the two
   execution strategies, across both plan kernel sets (SIMD C and
   portable OCaml) and across 1 vs 4 domains; any divergence, or a
   compiled speedup below the floor at B=32, is a hard failure (exit 1)
   so CI catches both kinds of regression. Results land in
   BENCH_tape.json. *)

let smoke = ref false

type stats = { sweeps_per_sec : float; minor_words_per_sweep : float }

type capture = {
  c_feats : float array;  (* lanes * 82 *)
  c_grads : float array;  (* lanes * n *)
  c_pgrads : float array;  (* lanes * n *)
  c_pvals : float array;  (* lanes *)
}

(* One population pass, tiled at width [b], on a caller-supplied workspace:
   the per-tile layout (resident tile points, per-tile adjoint pattern)
   mirrors how descend_batch holds its state, so the timing is the pure
   sweep cost. Appends the final sweep's results into [cap] at [off0]. *)
let sweep_lanes pack bws ~b ~off0 ~lanes ~sweeps y0s cap =
  let n = Pack.num_vars pack in
  let tys = Array.make (b * n) 0.0 in
  let adj = Array.init (b * 82) (fun j -> cos (float_of_int j)) in
  let grads = Array.make (b * n) 0.0 in
  let pgrads = Array.make (b * n) 0.0 in
  let pvals = Array.make b 0.0 in
  let off = ref 0 in
  while !off < lanes do
    let bt = min b (lanes - !off) in
    for l = 0 to bt - 1 do
      Array.blit y0s.(off0 + !off + l) 0 tys (l * n) n
    done;
    for _ = 1 to sweeps do
      ignore (Pack.features_forward_batch pack bws ~batch:bt tys : float array);
      Pack.features_backward_batch pack bws ~batch:bt adj grads;
      Pack.penalty_value_grad_batch_into pack bws ~batch:bt tys ~grads:pgrads
        ~values:pvals
    done;
    let f = Pack.features_forward_batch pack bws ~batch:bt tys in
    Array.blit f 0 cap.c_feats ((off0 + !off) * 82) (bt * 82);
    Pack.features_backward_batch pack bws ~batch:bt adj grads;
    Array.blit grads 0 cap.c_grads ((off0 + !off) * n) (bt * n);
    Pack.penalty_value_grad_batch_into pack bws ~batch:bt tys ~grads:pgrads
      ~values:pvals;
    Array.blit pgrads 0 cap.c_pgrads ((off0 + !off) * n) (bt * n);
    Array.blit pvals 0 cap.c_pvals (off0 + !off) bt;
    off := !off + bt
  done

let run_config pack ~planned ~vec ~b ~lanes ~sweeps y0s =
  Pack.set_plan_execution planned;
  Autodiff.Tape.set_vector_kernels vec;
  let n = Pack.num_vars pack in
  let cap =
    { c_feats = Array.make (lanes * 82) 0.0;
      c_grads = Array.make (lanes * n) 0.0;
      c_pgrads = Array.make (lanes * n) 0.0;
      c_pvals = Array.make lanes 0.0 }
  in
  let bws = Pack.batch_workspace pack ~batch:b in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  sweep_lanes pack bws ~b ~off0:0 ~lanes ~sweeps y0s cap;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let total = float_of_int (lanes * (sweeps + 1)) in
  ({ sweeps_per_sec = total /. dt; minor_words_per_sweep = dw /. total }, cap)

(* The planned path split across 4 domains, each with its own workspace
   over a 32-lane slice: per-lane results must not depend on which domain
   (or how many) ran the sweep. *)
let run_domains pack ~b ~lanes ~sweeps y0s =
  Pack.set_plan_execution true;
  Autodiff.Tape.set_vector_kernels true;
  let n = Pack.num_vars pack in
  let cap =
    { c_feats = Array.make (lanes * 82) 0.0;
      c_grads = Array.make (lanes * n) 0.0;
      c_pgrads = Array.make (lanes * n) 0.0;
      c_pvals = Array.make lanes 0.0 }
  in
  let chunk = lanes / 4 in
  Runtime.with_runtime ~domains:4 (fun rt ->
      ignore
        (Runtime.map_list rt
           (fun off0 ->
             let bws = Pack.batch_workspace pack ~batch:b in
             sweep_lanes pack bws ~b ~off0 ~lanes:chunk ~sweeps y0s cap)
           [ 0; chunk; 2 * chunk; 3 * chunk ]));
  cap

let captures_equal a b =
  let bits_eq x y =
    Array.length x = Array.length y
    && Array.for_all2
         (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
         x y
  in
  bits_eq a.c_feats b.c_feats && bits_eq a.c_grads b.c_grads
  && bits_eq a.c_pgrads b.c_pgrads && bits_eq a.c_pvals b.c_pvals

let run () =
  let lanes = 128 in
  let sweeps = if !smoke then 60 else 400 in
  let reps = if !smoke then 1 else 2 in
  let widths = [ 1; 32; 128 ] in
  let floor_b32 = if !smoke then 1.15 else 1.5 in
  let sg =
    Compute.lower ~name:"dense" (Op.Dense { batch = 50; in_dim = 768; out_dim = 3072 })
  in
  let sched = List.nth (Sketch.generate sg) 1 in
  let pack = Pack.prepare sg sched in
  let rng = Rng.create 1 in
  let y0s =
    Array.init lanes (fun _ ->
        match Dataset.sample_valid_point rng pack 200 with
        | Some y -> y
        | None -> failwith "tape: no valid start point")
  in
  let was_plan = Pack.using_plan_execution () in
  let was_vec = Autodiff.Tape.using_vector_kernels () in
  Fun.protect ~finally:(fun () ->
      Pack.set_plan_execution was_plan;
      Autodiff.Tape.set_vector_kernels was_vec)
  @@ fun () ->
  (* Warm up both paths. *)
  ignore (run_config pack ~planned:false ~vec:true ~b:8 ~lanes:16 ~sweeps:3 y0s);
  ignore (run_config pack ~planned:true ~vec:true ~b:8 ~lanes:16 ~sweeps:3 y0s);
  let fp = Pack.feature_plan pack and pp = Pack.penalty_plan pack in
  let module P = Autodiff.Tape.Plan in
  Printf.printf
    "superops: feature %d -> %d (%d fused), penalty %d -> %d (%d fused)\n%!"
    (P.source_ops fp) (P.superops fp) (P.fused_pairs fp) (P.source_ops pp)
    (P.superops pp) (P.fused_pairs pp);
  let best_of runs =
    List.fold_left
      (fun (acc, c) (r, c') ->
        if r.sweeps_per_sec > acc.sweeps_per_sec then (r, c') else (acc, c))
      (List.hd runs) (List.tl runs)
  in
  let results =
    List.map
      (fun b ->
        let time ~planned ~vec =
          best_of
            (List.init reps (fun _ -> run_config pack ~planned ~vec ~b ~lanes ~sweeps y0s))
        in
        let interp, c_interp = time ~planned:false ~vec:true in
        let planned, c_planned = time ~planned:true ~vec:true in
        let _, c_portable =
          run_config pack ~planned:true ~vec:false ~b ~lanes ~sweeps:1 y0s
        in
        let domains_ok =
          if b = 32 then captures_equal c_interp (run_domains pack ~b ~lanes ~sweeps:1 y0s)
          else true
        in
        let ok =
          captures_equal c_interp c_planned
          && captures_equal c_interp c_portable
          && domains_ok
        in
        (b, interp, planned, ok))
      widths
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "batched tape sweeps (fwd+bwd+penalty), %d lanes x %d sweeps (best of %d)"
           lanes sweeps reps)
      ~header:
        [ "tile"; "interp sweeps/s"; "compiled sweeps/s"; "speedup"; "words/sweep";
          "bitwise" ]
  in
  List.iter
    (fun (b, i, p, ok) ->
      Table.add_row t
        [ Printf.sprintf "B=%d" b;
          Printf.sprintf "%.0f" i.sweeps_per_sec;
          Printf.sprintf "%.0f" p.sweeps_per_sec;
          Printf.sprintf "%.2fx" (p.sweeps_per_sec /. i.sweeps_per_sec);
          Printf.sprintf "%.0f -> %.0f" i.minor_words_per_sweep p.minor_words_per_sweep;
          (if ok then "identical" else "DIVERGED") ])
    results;
  Table.print t;
  let all_ok = List.for_all (fun (_, _, _, ok) -> ok) results in
  let oc = open_out "BENCH_tape.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"tape\",\n  \"smoke\": %b,\n  \"lanes\": %d,\n  \
     \"sweeps\": %d,\n  \"reps\": %d,\n  \"superops\": {\n    \"feature\": { \
     \"source_ops\": %d, \"superops\": %d, \"fused_pairs\": %d },\n    \
     \"penalty\": { \"source_ops\": %d, \"superops\": %d, \"fused_pairs\": %d }\n  \
     },\n  \"bitwise_identical\": %b,\n  \"tiles\": [\n%s  ]\n}\n"
    !smoke lanes sweeps reps (P.source_ops fp) (P.superops fp) (P.fused_pairs fp)
    (P.source_ops pp) (P.superops pp) (P.fused_pairs pp) all_ok
    (String.concat ",\n"
       (List.map
          (fun (b, i, p, ok) ->
            Printf.sprintf
              "    { \"batch\": %d, \"interpreted_sweeps_per_sec\": %.1f, \
               \"compiled_sweeps_per_sec\": %.1f, \"speedup\": %.3f, \
               \"interpreted_minor_words_per_sweep\": %.1f, \
               \"compiled_minor_words_per_sweep\": %.1f, \
               \"bitwise_identical\": %b }"
              b i.sweeps_per_sec p.sweeps_per_sec
              (p.sweeps_per_sec /. i.sweeps_per_sec)
              i.minor_words_per_sweep p.minor_words_per_sweep ok)
          results)
     ^ "\n");
  close_out oc;
  print_endline "wrote BENCH_tape.json";
  List.iter
    (fun (b, i, p, ok) ->
      if not ok then begin
        Printf.eprintf "tape: B=%d DIVERGED from the interpreter (bit-identity broken)\n"
          b;
        exit 1
      end;
      if b = 32 && p.sweeps_per_sec < floor_b32 *. i.sweeps_per_sec then begin
        Printf.eprintf
          "tape: B=32 compiled speedup %.2fx below the %.2fx floor (%.0f vs %.0f \
           sweeps/s)\n"
          (p.sweeps_per_sec /. i.sweeps_per_sec)
          floor_b32 p.sweeps_per_sec i.sweeps_per_sec;
        exit 1
      end)
    results
