(* Benchmark harness: reproduces every table and figure of the paper's
   evaluation (Section 6) and runs Bechamel micro-benchmarks of the
   components each experiment exercises.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig7 tab1  # selected experiments
     dune exec bench/main.exe micro      # Bechamel micro-benchmarks only
   Scale is controlled with FELIX_BENCH_SCALE=quick|standard. *)

let experiments =
  [ ("fig4", "smoothing of non-differentiable operators", Experiments.fig4);
    ("fig6", "DNN performance vs PyTorch/TensorFlow/TensorRT", Experiments.fig6);
    ("tab1", "tuning time to exceed the best library", Experiments.tab1);
    ("fig7", "latency vs tuning time, Felix vs Ansor (3 devices)", Experiments.fig7);
    ("tab2a", "milestone speedups, batch 1", Experiments.tab2a);
    ("fig8", "predicted performance of searched population", Experiments.fig8);
    ("fig9", "single-operator performance", Experiments.fig9);
    ("fig10", "latency vs tuning time, batch 16", Experiments.fig10);
    ("tab2b", "milestone speedups, batch 16", Experiments.tab2b);
    ("ablation", "design-choice ablations (width, lambda, budget, lr)", Ablation.run);
    ("par", "sequential vs multi-domain tuning rounds", Parallel.run);
    ("hotpath", "legacy vs fused objective-gradient inner loop", Hotpath.run);
    ("batch", "scalar vs lockstep SoA descent across the population", Batch.run);
    ("tape", "interpreted vs compiled superop tape sweeps", Tape.run);
    ("warmstart", "time-to-target with and without a warm tuning store", Warmstart.run);
    ("prepare", "cold-parallel and warm-disk pack compilation", Prepare.run);
    ("measure", "measurement seam overhead and fault-injection grid", Measure_bench.run) ]

(* --- bechamel micro-benchmarks: one per table/figure harness ----------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* Fixtures shared by the micro-benchmarks. *)
  let sg = Compute.lower ~name:"dense" (Op.Dense { batch = 50; in_dim = 768; out_dim = 3072 }) in
  let sched = List.nth (Sketch.generate sg) 1 in
  let pack = Pack.prepare sg sched in
  let prog = Pack.program pack in
  let rng = Rng.create 1 in
  let y =
    match Dataset.sample_valid_point rng pack 200 with
    | Some y -> y
    | None -> failwith "no valid point"
  in
  let env = Pack.env_of pack y in
  let model = Mlp.create rng ~hidden:[ 192; 192; 192 ] ~n_inputs:82 () in
  let feats = Pack.features_at pack y in
  let adj = Array.make 82 1.0 in
  let sel = Expr.(select (gt (var "x") zero) (const 5.0) (const 2.0)) in
  let cfg_quick = Tuning_config.quick in
  let tests =
    Test.make_grouped ~name:"felix"
      [ Test.make ~name:"fig4_smooth_rewrite" (Staged.stage (fun () -> Smooth.smooth sel));
        Test.make ~name:"fig6_sim_measure"
          (Staged.stage (fun () -> Gpu_model.program_latency_ms Device.rtx_a5000 prog env));
        Test.make ~name:"tab1_feature_eval" (Staged.stage (fun () -> Pack.features_at pack y));
        Test.make ~name:"fig7_gd_objective_step"
          (Staged.stage (fun () ->
               let f = Pack.features_at pack y in
               let _, g = Mlp.input_gradient model f in
               let _, dy = Pack.features_vjp pack y g in
               let _, pg = Pack.penalty_value_grad pack y in
               (dy, pg)));
        Test.make ~name:"tab2_round_to_valid" (Staged.stage (fun () -> Pack.round_to_valid pack y));
        Test.make ~name:"fig8_mlp_forward" (Staged.stage (fun () -> Mlp.forward model feats));
        Test.make ~name:"fig9_mlp_input_grad"
          (Staged.stage (fun () -> Mlp.input_gradient model feats));
        Test.make ~name:"fig10_evolution_mutation"
          (Staged.stage (fun () -> Evolutionary.mutate rng pack y));
        Test.make ~name:"tab2b_tape_vjp" (Staged.stage (fun () -> Pack.features_vjp pack y adj));
        Test.make ~name:"setup_pack_prepare" (Staged.stage (fun () -> Pack.prepare sg sched)) ]
  in
  ignore cfg_quick;
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  let table =
    Table.create ~title:"Bechamel micro-benchmarks (per-call monotonic clock)"
      ~header:[ "component"; "ns/run" ]
  in
  Hashtbl.iter
    (fun _measure per_test ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) per_test [] in
      List.iter
        (fun (name, ols_result) ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (v :: _) -> Printf.sprintf "%.1f" v
            | Some [] | None -> "-"
          in
          Table.add_row table [ name; est ])
        (List.sort (fun (a, _) (b, _) -> String.compare a b) rows))
    results;
  Table.print table

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --smoke shrinks the hotpath and batch experiments to CI-sized runs. *)
  let args =
    List.filter
      (fun a ->
        if a = "--smoke" then begin
          Hotpath.smoke := true;
          Batch.smoke := true;
          Tape.smoke := true;
          Warmstart.smoke := true;
          Prepare.smoke := true;
          Measure_bench.smoke := true;
          false
        end
        else true)
      args
  in
  let run_one (id, desc, f) =
    Printf.printf "\n### %s — %s\n\n%!" id desc;
    let t0 = Unix.gettimeofday () in
    f ();
    Printf.printf "[%s done in %.1fs cpu]\n%!" id (Unix.gettimeofday () -. t0)
  in
  match args with
  | [] ->
    print_endline "Felix benchmark harness: reproducing all paper tables and figures.";
    List.iter run_one experiments;
    Printf.printf "\n### micro — component micro-benchmarks\n\n%!";
    micro ()
  | [ "micro" ] -> micro ()
  | ids ->
    List.iter
      (fun id ->
        if id = "micro" then micro ()
        else
          match List.find_opt (fun (i, _, _) -> i = id) experiments with
          | Some exp -> run_one exp
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s micro\n" id
              (String.concat " " (List.map (fun (i, _, _) -> i) experiments));
            exit 1)
      ids
