(* Shared infrastructure of the benchmark harness: experiment scale,
   per-device cost models, and a disk cache of tuning runs so the expensive
   table/figure reproductions share work and re-runs are fast. *)

let artifacts_dir = "_artifacts"

let ensure_artifacts () =
  if not (Sys.file_exists artifacts_dir) then Sys.mkdir artifacts_dir 0o755

type scale = Quick | Standard

let scale =
  match Sys.getenv_opt "FELIX_BENCH_SCALE" with
  | Some "quick" -> Quick
  | Some _ | None -> Standard

let tuning_config () =
  match scale with
  | Quick ->
    { Tuning_config.quick with Tuning_config.max_rounds = 12; time_budget_s = 2_000.0 }
  | Standard ->
    { Tuning_config.default with
      Tuning_config.max_rounds = 30;
      population = 256;
      time_budget_s = 12_000.0 }

let devices = [ Device.a10g; Device.rtx_a5000; Device.xavier_nx ]

let model_cache : (string, Mlp.t) Hashtbl.t = Hashtbl.create 4

let cost_model device =
  let key = device.Device.device_name in
  match Hashtbl.find_opt model_cache key with
  | Some m -> m
  | None ->
    ensure_artifacts ();
    Printf.printf "[setup] cost model for %s...\n%!" key;
    let m = Train.pretrained_for_device ~cache_dir:artifacts_dir device in
    Hashtbl.replace model_cache key m;
    m

let safe name = String.map (fun c -> if c = ' ' || c = '/' then '_' else c) name

(* --- tuning-run cache -------------------------------------------------------

   Cached runs are stored as the versioned result artifact
   ([Export.save_result]) rather than a Marshal blob: the files are
   diffable, survive compiler upgrades, and every float round-trips
   bit-exactly. Live [Partition.task] values are not serialised, so a
   cache hit carries the per-run summary (curve, final latency,
   measurement count) with [tasks = []] — which is everything the
   harness consumes. *)

let run_cache_path ~net ~device ~batch ~engine ~seed =
  Filename.concat artifacts_dir
    (Printf.sprintf "tune_%s_%s_b%d_%s_s%d_%s.json" (safe net)
       (safe device.Device.device_name) batch
       (match engine with Tuner.Felix -> "felix" | Tuner.Ansor -> "ansor" | Tuner.Random -> "random")
       seed
       (match scale with Quick -> "q" | Standard -> "std"))

let result_of_saved (s : Export.saved_result) : Tuner.result =
  { Tuner.network = s.Export.sr_network;
    device_name = s.Export.sr_device;
    engine =
      (match s.Export.sr_engine with
      | "Ansor-TenSet" -> Tuner.Ansor
      | "Random" -> Tuner.Random
      | _ -> Tuner.Felix);
    curve =
      List.map (fun (t, l) -> { Tuner.time_s = t; latency_ms = l }) s.Export.sr_curve;
    final_latency_ms = s.Export.sr_final_latency_ms;
    total_measurements = s.Export.sr_total_measurements;
    tasks = [] }

(* Benchmarks treat a tuner configuration error as fatal. *)
let run_tuner rc device model g engine =
  match Tuner.run rc device model g engine with
  | Ok r -> r
  | Error e -> failwith (Tuner.error_message e)

let run_tuner_single rc ~rounds device model sg engine =
  match Tuner.run_single rc ~rounds device model sg engine with
  | Ok r -> r
  | Error e -> failwith (Tuner.error_message e)

let tuned ?(seed = 1) ~batch net device engine : Tuner.result =
  ensure_artifacts ();
  let name = Workload.network_name net in
  let path = run_cache_path ~net:name ~device ~batch ~engine ~seed in
  match Export.load_result path with
  | Ok saved -> result_of_saved saved
  | Error _ ->
    Printf.printf "[tune] %s on %s (batch %d, %s, seed %d)...\n%!" name
      device.Device.device_name batch (Tuner.engine_name engine) seed;
    let t0 = Unix.gettimeofday () in
    let model = cost_model device in
    let g = Workload.graph ~batch net in
    let rc = Tuning_config.(builder |> with_search (tuning_config ()) |> with_seed seed) in
    let r = run_tuner rc device model g engine in
    Printf.printf "[tune]   done: %.3f ms final (%.0fs simulated, %.1fs cpu)\n%!"
      r.Tuner.final_latency_ms
      (match List.rev r.Tuner.curve with p :: _ -> p.Tuner.time_s | [] -> 0.0)
      (Unix.gettimeofday () -. t0);
    (match Export.save_result r path with
    | Ok () -> ()
    | Error e -> Printf.eprintf "[tune] cache write failed: %s\n%!" (Store.error_message e));
    Export.write_curve_csv r (Filename.remove_extension path ^ ".csv");
    r

(* --- curve utilities --------------------------------------------------------- *)

let best_latency (r : Tuner.result) =
  List.fold_left (fun acc (p : Tuner.progress_point) -> min acc p.latency_ms) infinity
    r.Tuner.curve

let time_to_reach (r : Tuner.result) target_ms =
  let rec go = function
    | [] -> None
    | (p : Tuner.progress_point) :: rest ->
      if p.latency_ms <= target_ms then Some p.time_s else go rest
  in
  go r.Tuner.curve

let downsample n curve =
  let arr = Array.of_list curve in
  let len = Array.length arr in
  if len <= n then curve
  else
    List.init n (fun i ->
        let idx = i * (len - 1) / (n - 1) in
        arr.(idx))

let fmt_norm v = Printf.sprintf "%.2f" v
