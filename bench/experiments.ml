(* One function per paper table/figure; each prints the reproduced rows or
   series as an aligned text table (see DESIGN.md experiment index). *)

module C = Bench_common

(* ------------------------------------------------------------------ Fig 4 *)

let fig4 () =
  let x = Expr.var "x" in
  let sel = Expr.(select (gt x zero) (const 5.0) (const 2.0)) in
  let relu = Expr.(max_ x zero) in
  let sel_s = Smooth.smooth sel and relu_s = Smooth.smooth relu in
  let t =
    Table.create ~title:"Figure 4: smoothing of non-differentiable operators"
      ~header:[ "x"; "select(x>0,5,2)"; "smooth"; "max(x,0)"; "smooth" ]
  in
  List.iter
    (fun xi ->
      let at e = Eval.eval (Eval.env_of_list [ ("x", xi) ]) e in
      Table.add_row t
        [ Printf.sprintf "%+.1f" xi; Printf.sprintf "%.3f" (at sel);
          Printf.sprintf "%.3f" (at sel_s); Printf.sprintf "%.3f" (at relu);
          Printf.sprintf "%.3f" (at relu_s) ])
    [ -5.0; -4.0; -3.0; -2.0; -1.0; -0.5; 0.0; 0.5; 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Table.print t

(* ------------------------------------------------------------------ Fig 6 *)

let felix_latency ~batch net device = C.best_latency (C.tuned ~batch net device Tuner.Felix)

let fig6 () =
  List.iter
    (fun device ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 6 (%s): normalized inference performance (1.00 = best framework)"
               device.Device.device_name)
          ~header:[ "Network"; "PyTorch"; "TensorFlow"; "TensorRT"; "Felix" ]
      in
      let norm_rows = ref [] in
      List.iter
        (fun net ->
          if Workload.network_name net = "LLaMA"
             && String.equal device.Device.device_name "Xavier NX"
          then () (* no framework can run it, Section 6.1 *)
          else begin
            let g = Workload.graph net in
            let lib fw =
              if Frameworks.supported device fw net then
                Frameworks.network_latency_ms device fw g
              else None
            in
            let lats =
              [ lib Frameworks.Pytorch; lib Frameworks.Tensorflow; lib Frameworks.Tensorrt;
                Some (felix_latency ~batch:1 net device) ]
            in
            let best =
              List.fold_left
                (fun acc l -> match l with Some v -> min acc v | None -> acc)
                infinity lats
            in
            let norm = List.map (Option.map (fun l -> best /. l)) lats in
            norm_rows := norm :: !norm_rows;
            Table.add_row t
              (Workload.network_name net
              :: List.map (function Some v -> C.fmt_norm v | None -> "-") norm)
          end)
        Workload.all_networks;
      (* geomean over available entries per framework *)
      Table.add_separator t;
      let cols = List.length (List.hd !norm_rows) in
      let geo =
        List.init cols (fun c ->
            let vals =
              List.filter_map (fun row -> List.nth row c) !norm_rows
            in
            if vals = [] then "-" else C.fmt_norm (Stats.geomean vals))
      in
      Table.add_row t ("GeoMean" :: geo);
      Table.print t)
    C.devices

(* ------------------------------------------------------------------ Tab 1 *)

let tab1 () =
  let t =
    Table.create
      ~title:
        "Table 1: Felix tuning seconds to exceed the best manual library (* = vs 2nd best)"
      ~header:[ "Network"; "RTX A5000"; "A10G"; "Xavier NX" ]
  in
  let nets =
    [ Workload.Resnet50; Workload.Mobilenet_v2; Workload.Dcgan; Workload.Vit_b32;
      Workload.Llama ]
  in
  List.iter
    (fun net ->
      let cell device =
        if Workload.network_name net = "LLaMA"
           && not (String.equal device.Device.device_name "RTX A5000")
        then "-"
        else begin
          let g = Workload.graph net in
          let libs =
            List.filter_map
              (fun fw ->
                if Frameworks.supported device fw net then
                  Frameworks.network_latency_ms device fw g
                else None)
              Frameworks.all
            |> List.sort compare
          in
          match libs with
          | [] -> "-"
          | best :: rest -> (
            let r = C.tuned ~batch:1 net device Tuner.Felix in
            match C.time_to_reach r best with
            | Some s -> Table.fmt_seconds s
            | None -> (
              (* Felix never beat the best library: compare against the
                 second best, marked with an asterisk (paper's footnote). *)
              match rest with
              | second :: _ -> (
                match C.time_to_reach r second with
                | Some s -> Table.fmt_seconds s ^ "*"
                | None -> "-")
              | [] -> "-"))
        end
      in
      Table.add_row t
        [ Workload.network_name net; cell Device.rtx_a5000; cell Device.a10g;
          cell Device.xavier_nx ])
    nets;
  Table.print t

(* ------------------------------------------------------------------ Fig 7 *)

let print_curves title cells =
  List.iter
    (fun (label, runs_felix, runs_ansor) ->
      let t =
        Table.create
          ~title:(Printf.sprintf "%s - %s: best latency (ms) vs tuning time (s)" title label)
          ~header:[ "Engine"; "curve (time s -> latency ms)" ]
      in
      let fmt_run (r : Tuner.result) =
        C.downsample 10 r.Tuner.curve
        |> List.map (fun (p : Tuner.progress_point) ->
               Printf.sprintf "%.0f:%.3f" p.time_s p.latency_ms)
        |> String.concat " "
      in
      let band runs =
        match runs with
        | [ single ] -> fmt_run single
        | multiple ->
          (* min/mean/max across seeds, paper Figure 7a's band *)
          let finals = List.map C.best_latency multiple in
          let mn, mx = Stats.min_max finals in
          Printf.sprintf "%s  [final across %d runs: min %.3f mean %.3f max %.3f]"
            (fmt_run (List.hd multiple))
            (List.length multiple) mn (Stats.mean finals) mx
      in
      Table.add_row t [ "Felix"; band runs_felix ];
      Table.add_row t [ "Ansor-TenSet"; band runs_ansor ];
      Table.print t)
    cells

let fig7_nets device =
  List.filter
    (fun net ->
      Workload.fits_on_edge net || not (String.equal device.Device.device_name "Xavier NX"))
    Workload.all_networks

let fig7 () =
  List.iter
    (fun device ->
      (* The paper's Figure 7a draws a 5-run min/max band; at our single-core
         scale each cell uses one seed (runs are deterministic per seed). *)
      let seeds = [ 1 ] in
      let cells =
        List.map
          (fun net ->
            ( Workload.network_name net,
              List.map (fun s -> C.tuned ~seed:s ~batch:1 net device Tuner.Felix) seeds,
              List.map (fun s -> C.tuned ~seed:s ~batch:1 net device Tuner.Ansor) seeds ))
          (fig7_nets device)
      in
      print_curves (Printf.sprintf "Figure 7 (%s)" device.Device.device_name) cells)
    C.devices

(* ------------------------------------------------------------------ Tab 2 *)

let milestone_speedups felix ansor =
  (* Time for each tuner to reach 90/95/99% of the best Ansor performance. *)
  let ansor_best = C.best_latency ansor in
  List.map
    (fun pct ->
      let target = ansor_best /. pct in
      match (C.time_to_reach felix target, C.time_to_reach ansor target) with
      | Some tf, Some ta when tf > 0.0 -> Table.fmt_speedup (ta /. tf)
      | Some _, Some _ -> Table.fmt_speedup 1.0
      | _ -> "-")
    [ 0.90; 0.95; 0.99 ]

let tab2 ~batch ~devices ~title () =
  let t =
    Table.create ~title
      ~header:
        ("Network"
        :: List.concat_map
             (fun (d : Device.t) ->
               [ d.device_name ^ " 90%"; "95%"; "99%" ])
             devices)
  in
  let nets =
    List.filter (fun n -> not (batch = 16 && n = Workload.Llama)) Workload.all_networks
  in
  let per_col_values = Hashtbl.create 16 in
  List.iter
    (fun net ->
      let cells =
        List.concat_map
          (fun device ->
            if (not (Workload.fits_on_edge net))
               && String.equal device.Device.device_name "Xavier NX"
            then [ "-"; "-"; "-" ]
            else begin
              let f = C.tuned ~batch net device Tuner.Felix in
              let a = C.tuned ~batch net device Tuner.Ansor in
              let sp = milestone_speedups f a in
              List.iteri
                (fun i s ->
                  if s <> "-" then begin
                    let v = float_of_string (String.sub s 0 (String.length s - 1)) in
                    let key = (device.Device.device_name, i) in
                    let cur = Option.value ~default:[] (Hashtbl.find_opt per_col_values key) in
                    Hashtbl.replace per_col_values key (v :: cur)
                  end)
                sp;
              sp
            end)
          devices
      in
      Table.add_row t (Workload.network_name net :: cells))
    nets;
  Table.add_separator t;
  let geo =
    List.concat_map
      (fun (device : Device.t) ->
        List.init 3 (fun i ->
            match Hashtbl.find_opt per_col_values (device.device_name, i) with
            | Some vs when vs <> [] -> Table.fmt_speedup (Stats.geomean vs)
            | _ -> "-"))
      devices
  in
  Table.add_row t ("Geomean" :: geo);
  Table.print t

let tab2a () =
  tab2 ~batch:1 ~devices:C.devices
    ~title:"Table 2a: Felix speedup over Ansor to reach 90/95/99% peak performance (batch 1)" ()

let tab2b () =
  tab2 ~batch:16 ~devices:[ Device.rtx_a5000 ]
    ~title:"Table 2b: Felix speedup over Ansor, batch 16 (RTX A5000)" ()

(* ------------------------------------------------------------------ Fig 8 *)

let fig8_subgraphs () =
  List.filter_map
    (fun (name, op) ->
      if List.mem name [ "Conv2d"; "Conv3d"; "Dense" ] then
        Some (name, Compute.lower ~name op)
      else None)
    Workload.single_operators

let fig8 () =
  let device = Device.rtx_a5000 in
  let model = C.cost_model device in
  let rounds = match C.scale with C.Quick -> 3 | C.Standard -> 5 in
  List.iter
    (fun (name, sg) ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 8 (%s): predicted performance of searched population vs #schedules"
               name)
          ~header:[ "Engine"; "#searched"; "best predicted"; "64th best" ]
      in
      List.iter
        (fun engine ->
          let r =
            C.run_tuner_single
              Tuning_config.(builder |> with_seed 2)
              ~rounds device model sg engine
          in
          let preds = Array.of_list r.Tuner.predictions in
          let n = Array.length preds in
          let checkpoints =
            List.filter (fun c -> c <= n) [ 250; 500; 1000; 2000; 4000; 8000; n ]
            |> List.sort_uniq compare
          in
          List.iter
            (fun c ->
              let prefix = Array.sub preds 0 c in
              Array.sort (fun a b -> compare b a) prefix;
              let best = prefix.(0) in
              let kth = prefix.(min 63 (c - 1)) in
              Table.add_row t
                [ Tuner.engine_name engine; string_of_int c; Printf.sprintf "%.3f" best;
                  Printf.sprintf "%.3f" kth ])
            checkpoints;
          Table.add_separator t)
        [ Tuner.Ansor; Tuner.Felix ];
      Table.print t)
    (fig8_subgraphs ())

(* ------------------------------------------------------------------ Fig 9 *)

let fig9 () =
  let device = Device.rtx_a5000 in
  let model = C.cost_model device in
  let rounds = match C.scale with C.Quick -> 3 | C.Standard -> 6 in
  let t =
    Table.create
      ~title:"Figure 9: single-operator normalized performance on RTX A5000 (1.00 = best)"
      ~header:[ "Operator"; "PyTorch"; "TensorFlow"; "Felix"; "Ansor" ]
  in
  List.iter
    (fun (name, op) ->
      let sg = Compute.lower ~name op in
      let tuned engine =
        (C.run_tuner_single
           Tuning_config.(builder |> with_seed 3)
           ~rounds device model sg engine)
          .Tuner.best.Tuner.latency_ms
      in
      let lats =
        [ Frameworks.operator_latency_ms device Frameworks.Pytorch op;
          Frameworks.operator_latency_ms device Frameworks.Tensorflow op;
          tuned Tuner.Felix; tuned Tuner.Ansor ]
      in
      let best = List.fold_left min infinity lats in
      Table.add_row t (name :: List.map (fun l -> C.fmt_norm (best /. l)) lats))
    Workload.single_operators;
  Table.print t

(* ------------------------------------------------------------------ Fig 10 *)

let fig10 () =
  let device = Device.rtx_a5000 in
  let nets = List.filter (fun n -> n <> Workload.Llama) Workload.all_networks in
  let cells =
    List.map
      (fun net ->
        ( Workload.network_name net,
          [ C.tuned ~batch:16 net device Tuner.Felix ],
          [ C.tuned ~batch:16 net device Tuner.Ansor ] ))
      nets
  in
  print_curves "Figure 10 (RTX A5000, batch 16)" cells
