(* Ablation benchmarks for Felix's design choices (DESIGN.md section 4):

   - the smoothing-kernel width of Section 3.3,
   - the penalty coefficient lambda of Equation 4,
   - the nSeeds x nSteps budget split of Algorithm 1,
   - the Adam learning rate over schedule variables.

   Each trial tunes the paper's Dense workload (Figure 8's subgraph) on the
   RTX A5000 for a fixed number of rounds and reports the best measured
   latency plus how many valid candidates the search produced. *)

module C = Bench_common

let rounds () = match C.scale with C.Quick -> 3 | C.Standard -> 4

let run_trial ~width ~(cfg : Tuning_config.t) () =
  let device = Device.rtx_a5000 in
  let model = Mlp.copy (C.cost_model device) in
  let model_adam = Mlp.adam_for ~lr:2e-4 model in
  let sg = Compute.lower ~name:"dense" (List.assoc "Dense" Workload.single_operators) in
  let packs = List.map (fun s -> Pack.prepare ~width sg s) (Sketch.generate sg) in
  let rng = Rng.create 77 in
  let measured : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let best = ref infinity in
  let candidates_total = ref 0 in
  for _ = 1 to rounds () do
    let cands, _ =
      Gradient_tuner.search_round cfg rng model packs
        ~already_measured:(Hashtbl.mem measured)
    in
    candidates_total := !candidates_total + List.length cands;
    let pairs = ref [] in
    List.iter
      (fun (c : Gradient_tuner.candidate) ->
        let lat =
          Gpu_model.measure_ms rng device (Pack.program c.pack) (Pack.env_of c.pack c.y)
        in
        Hashtbl.replace measured c.key lat;
        if Float.is_finite lat then begin
          if lat < !best then best := lat;
          pairs := (Pack.features_at c.pack c.y, -.log lat) :: !pairs
        end)
      cands;
    if !pairs <> [] then
      for _ = 1 to 4 do
        ignore (Mlp.train_batch model model_adam (Array.of_list !pairs))
      done
  done;
  (!best, !candidates_total)

let run () =
  let base = C.tuning_config () in
  let t =
    Table.create ~title:"Ablation: Felix design choices on the Dense subgraph (RTX A5000)"
      ~header:[ "variant"; "setting"; "best latency"; "valid candidates" ]
  in
  let trial name setting ~width cfg =
    let best, cands = run_trial ~width ~cfg () in
    Table.add_row t [ name; setting; Table.fmt_ms best; string_of_int cands ]
  in
  List.iter
    (fun w -> trial "smoothing width" (Printf.sprintf "w = %.2f" w) ~width:w base)
    [ 0.25; 1.0; 4.0 ];
  Table.add_separator t;
  List.iter
    (fun lambda ->
      trial "penalty lambda" (Printf.sprintf "lambda = %g" lambda) ~width:1.0
        { base with Tuning_config.lambda })
    [ 0.1; 10.0; 1000.0 ];
  Table.add_separator t;
  List.iter
    (fun (nseeds, nsteps) ->
      trial "search budget"
        (Printf.sprintf "%d seeds x %d steps" nseeds nsteps)
        ~width:1.0
        { base with Tuning_config.nseeds; nsteps })
    [ (1, 200); (4, 200); (8, 200); (8, 50); (16, 100) ];
  Table.add_separator t;
  List.iter
    (fun lr ->
      trial "Adam learning rate" (Printf.sprintf "lr = %g" lr) ~width:1.0
        { base with Tuning_config.gd_lr = lr })
    [ 0.01; 0.08; 0.3 ];
  Table.print t;
  (* Search-engine control: same subgraph, same measurement accounting. *)
  let t2 =
    Table.create ~title:"Ablation: search engine on the Dense subgraph (RTX A5000)"
      ~header:[ "engine"; "best latency"; "simulated tuning seconds" ]
  in
  let device = Device.rtx_a5000 in
  let model = C.cost_model device in
  let sg = Compute.lower ~name:"dense" (List.assoc "Dense" Workload.single_operators) in
  List.iter
    (fun engine ->
      let r =
        C.run_tuner_single
          Tuning_config.(builder |> with_search base |> with_seed 5)
          ~rounds:(rounds ()) device model sg engine
      in
      let final_t =
        match List.rev r.Tuner.curve with p :: _ -> p.Tuner.time_s | [] -> 0.0
      in
      Table.add_row t2
        [ Tuner.engine_name engine; Table.fmt_ms r.Tuner.best.Tuner.latency_ms;
          Table.fmt_seconds final_t ])
    [ Tuner.Felix; Tuner.Ansor; Tuner.Random ];
  Table.print t2
