(* prepare: the symbolic compilation front-end, three ways.

   Measures the sketch -> smooth -> simplify -> extract -> tape pipeline
   (Pack.prepare) as the tuner pays for it:

   - cold serial: every pack compiled from scratch on one domain;
   - cold parallel: the same packs through Pack.prepare_all on a 4-domain
     Runtime pool (worker domains start with cold rewriter memos);
   - warm disk: single-pack latency against a populated persistent cache
     versus the cold compile of the same pack.

   Every pack must be bitwise-identical across all paths (compared via
   Pack.digest), and a small end-to-end tuning run must produce
   byte-identical results with the cache disabled, cold and warm. Any
   divergence is a hard failure (exit 1); so is a warm-disk speedup below
   threshold, or — on hosts with enough cores — a parallel speedup below
   threshold. Results land in BENCH_prepare.json. *)

let smoke = ref false

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

(* The worker domains of a fresh Runtime are cold by construction; the
   caller (bench) domain keeps per-domain rewrite memos across arms unless
   dropped here. *)
let clear_caller_memos () =
  Rewrite.clear_memo Simplify.compiled;
  Smooth.clear_memo ()

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let subgraph_set () =
  let dense name batch in_dim out_dim =
    Compute.lower ~name (Op.Dense { batch; in_dim; out_dim })
  in
  let conv =
    Compute.lower ~name:"conv"
      (Op.Conv2d
         { batch = 1; in_chan = 32; out_chan = 64; in_h = 14; in_w = 14;
           kernel_h = 3; kernel_w = 3; stride = 1; pad = 1; groups = 1 })
  in
  if !smoke then [ dense "dense_a" 50 768 3072; conv ]
  else
    [ dense "dense_a" 50 768 3072; dense "dense_b" 16 1024 1024;
      dense "dense_c" 1 4096 4096; conv ]

let run () =
  let domains = 4 in
  let pairs =
    List.concat_map
      (fun sg -> List.map (fun s -> (sg, s)) (Sketch.generate sg))
      (subgraph_set ())
  in
  let n_packs = List.length pairs in
  Printf.printf "[prepare] %d (subgraph, sketch) pairs\n%!" n_packs;

  (* --- cold compile throughput: serial vs 4 domains ----------------------- *)
  Pack.clear_memory_cache ();
  clear_caller_memos ();
  let per_pack_s = Array.make n_packs 0.0 in
  let serial_packs, serial_s =
    time (fun () ->
        List.mapi
          (fun i (sg, s) ->
            let p, dt = time (fun () -> Pack.prepare sg s) in
            per_pack_s.(i) <- dt;
            p)
          pairs)
  in
  Pack.clear_memory_cache ();
  clear_caller_memos ();
  let parallel_packs, parallel_s =
    Runtime.with_runtime ~domains (fun rt ->
        time (fun () -> Pack.prepare_all ~runtime:rt pairs))
  in
  let serial_digests = List.map Pack.digest serial_packs in
  let parallel_identical = List.map Pack.digest parallel_packs = serial_digests in
  let parallel_speedup = serial_s /. parallel_s in

  (* --- disk cache: warm single-pack latency vs cold compile ---------------

     Measured on the most expensive pack of the set: that is the pack whose
     compile the cache is amortizing, and the one a tuner round waits on. *)
  let dir = Filename.concat "_artifacts" "bench_pack_cache" in
  remove_tree dir;
  let slowest = ref 0 in
  Array.iteri (fun i dt -> if dt > per_pack_s.(!slowest) then slowest := i) per_pack_s;
  let sg1, sched1 = List.nth pairs !slowest in
  let reps = if !smoke then 3 else 5 in
  let best f arg =
    List.fold_left min Float.max_float
      (List.init reps (fun _ ->
           clear_caller_memos ();
           snd (time (fun () -> ignore (f arg)))))
  in
  let cold_pack_s = best (fun () -> Pack.prepare sg1 sched1) () in
  (* Populate the entry once, then time pure hits. *)
  let warm_pack = Pack.prepare ~cache_dir:dir sg1 sched1 in
  let warm_pack_s = best (fun () -> Pack.prepare ~cache_dir:dir sg1 sched1) () in
  let reference = Pack.digest (List.nth serial_packs !slowest) in
  let warm_identical =
    Pack.digest warm_pack = reference
    && Pack.digest (Pack.prepare ~cache_dir:dir sg1 sched1) = reference
  in
  let warm_speedup = cold_pack_s /. warm_pack_s in

  (* --- a full tuning run: cache-less, cache-cold, cache-warm -------------- *)
  let tune_dir = Filename.concat "_artifacts" "bench_pack_cache_tune" in
  remove_tree tune_dir;
  let rounds = if !smoke then 2 else 4 in
  let device = Device.rtx_a5000 in
  let model = Mlp.create (Rng.create 1) ~hidden:[ 64; 64 ] ~n_inputs:82 () in
  let g = Workload.graph Workload.Dcgan in
  let tune rc =
    Pack.clear_memory_cache ();
    match Tuner.run rc device model g Tuner.Felix with
    | Ok r -> Json.to_line (Export.result_json r)
    | Error e -> failwith (Tuner.error_message e)
  in
  let search = { Tuning_config.quick with Tuning_config.max_rounds = rounds } in
  let rc = Tuning_config.(builder |> with_search search |> with_seed 7) in
  let rc_cached = Tuning_config.with_pack_cache tune_dir rc in
  let tune_plain = tune rc in
  let tune_cold = tune rc_cached in
  let tune_warm = tune rc_cached in
  let tune_identical = tune_plain = tune_cold && tune_cold = tune_warm in

  (* --- report -------------------------------------------------------------- *)
  let cores = Domain.recommended_domain_count () in
  let t =
    Table.create
      ~title:(Printf.sprintf "pack compilation front-end (%d packs)" n_packs)
      ~header:[ "path"; "wall s"; "packs/s"; "speedup"; "bitwise" ]
  in
  let bit ok = if ok then "identical" else "DIVERGED" in
  Table.add_row t
    [ "cold serial"; Printf.sprintf "%.3f" serial_s;
      Printf.sprintf "%.1f" (float_of_int n_packs /. serial_s); "1.00x";
      "identical" ];
  Table.add_row t
    [ Printf.sprintf "cold %d domains" domains; Printf.sprintf "%.3f" parallel_s;
      Printf.sprintf "%.1f" (float_of_int n_packs /. parallel_s);
      Printf.sprintf "%.2fx" parallel_speedup; bit parallel_identical ];
  Table.add_row t
    [ "warm disk (1 pack)"; Printf.sprintf "%.5f" warm_pack_s; "-";
      Printf.sprintf "%.2fx" warm_speedup; bit warm_identical ];
  Table.print t;
  Printf.printf
    "host: %d recommended domains; tune cold/warm/cache-less byte-identical: %b\n%!"
    cores tune_identical;

  let disk = Pack.disk_counters () in
  let oc = open_out "BENCH_prepare.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"prepare\",\n  \"smoke\": %b,\n  \"packs\": %d,\n  \
     \"domains\": %d,\n  \"recommended_domains\": %d,\n  \
     \"serial_s\": %.4f,\n  \"parallel_s\": %.4f,\n  \
     \"parallel_speedup\": %.3f,\n  \"cold_pack_s\": %.6f,\n  \
     \"warm_pack_s\": %.6f,\n  \"warm_speedup\": %.3f,\n  \
     \"disk_hits\": %d,\n  \"disk_misses\": %d,\n  \"disk_writes\": %d,\n  \
     \"bitwise_identical_parallel\": %b,\n  \"bitwise_identical_warm\": %b,\n  \
     \"tune_byte_identical\": %b\n}\n"
    !smoke n_packs domains cores serial_s parallel_s parallel_speedup cold_pack_s
    warm_pack_s warm_speedup
    (List.assoc "disk_hits" disk)
    (List.assoc "disk_misses" disk)
    (List.assoc "disk_writes" disk)
    parallel_identical warm_identical tune_identical;
  close_out oc;
  print_endline "wrote BENCH_prepare.json";
  remove_tree dir;
  remove_tree tune_dir;

  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  if not parallel_identical then
    fail "parallel packs DIVERGED from serial (bit-identity broken)";
  if not warm_identical then
    fail "disk-warm pack DIVERGED from cold compile (bit-identity broken)";
  if not tune_identical then
    fail "tuning results differ across cache-less/cold/warm runs";
  let warm_floor = if !smoke then 2.0 else 5.0 in
  if warm_speedup < warm_floor then
    fail "warm-disk speedup %.2fx below %.1fx floor" warm_speedup warm_floor;
  (* Parallel throughput scales with physical cores; only gate it where the
     host can express it (mirrors bench/parallel.ml's expectation note). *)
  if cores >= domains then begin
    let par_floor = if !smoke then 1.3 else 2.0 in
    if parallel_speedup < par_floor then
      fail "cold-parallel speedup %.2fx below %.1fx floor on a %d-core host"
        parallel_speedup par_floor cores
  end
  else
    Printf.printf
      "note: parallel floor waived (%d recommended domains < %d benchmark domains)\n%!"
      cores domains
