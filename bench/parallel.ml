(* Sequential vs. multi-domain tuning rounds: wall-clock comparison of the
   runtime's parallel candidate measurement and search at 1, 2 and 4
   domains, plus a verification that the results are bit-identical.

   Speedup depends on the cores the host exposes; the harness prints the
   recommended-domain count so single-core CI runs are honest about it. *)

module C = Bench_common

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run () =
  let device = Device.rtx_a5000 in
  let model = C.cost_model device in
  let sg = Compute.lower ~name:"dense" (List.assoc "Dense" Workload.single_operators) in
  let rounds = match C.scale with C.Quick -> 3 | C.Standard -> 6 in
  let cfg =
    match C.scale with
    | C.Quick -> Tuning_config.quick
    | C.Standard -> Tuning_config.default
  in
  Printf.printf "host: %d recommended domains (Domain.recommended_domain_count)\n\n"
    (Domain.recommended_domain_count ());
  (* --- raw parallel_map over candidate measurement ------------------------- *)
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let rng = Rng.create 3 in
  let batch =
    Array.init 256 (fun _ ->
        match Dataset.sample_valid_point rng pack 200 with
        | Some y -> y
        | None -> failwith "no valid point")
  in
  let measure y = Gpu_model.program_latency_ms device (Pack.program pack) (Pack.env_of pack y) in
  let t1 =
    Table.create ~title:"candidate measurement batch (256 schedules)"
      ~header:[ "domains"; "wall s"; "speedup"; "tasks"; "steals" ]
  in
  let baseline = ref nan in
  let reference = ref [||] in
  List.iter
    (fun domains ->
      Runtime.with_runtime ~domains (fun rt ->
          let out, dt = time (fun () -> Runtime.parallel_map rt measure batch) in
          if Float.is_nan !baseline then begin
            baseline := dt;
            reference := out
          end
          else if out <> !reference then failwith "parallel measurement diverged";
          let stats = Runtime.stats rt in
          let stat k = string_of_int (List.assoc k stats) in
          Table.add_row t1
            [ string_of_int domains; Printf.sprintf "%.3f" dt;
              Printf.sprintf "%.2fx" (!baseline /. dt); stat "tasks"; stat "steals" ]))
    [ 1; 2; 4 ];
  Table.print t1;
  (* --- whole tuning rounds -------------------------------------------------- *)
  let t2 =
    Table.create
      ~title:(Printf.sprintf "tuning rounds on the Dense subgraph (%d rounds)" rounds)
      ~header:[ "domains"; "wall s"; "speedup"; "best ms" ]
  in
  let baseline = ref nan in
  let reference = ref nan in
  List.iter
    (fun jobs ->
      let r, dt =
        time (fun () ->
            C.run_tuner_single
              Tuning_config.(
                builder |> with_search cfg |> with_seed 17 |> with_jobs jobs)
              ~rounds device model sg Tuner.Felix)
      in
      let best = r.Tuner.best.Tuner.latency_ms in
      if Float.is_nan !baseline then begin
        baseline := dt;
        reference := best
      end
      else if best <> !reference then failwith "parallel tuning diverged";
      Table.add_row t2
        [ string_of_int jobs; Printf.sprintf "%.3f" dt;
          Printf.sprintf "%.2fx" (!baseline /. dt); Table.fmt_ms best ])
    [ 1; 2; 4 ];
  Table.print t2;
  Printf.printf
    "\nbest latency identical at every domain count (determinism contract).\n\
     speedup tracks available cores: expect ~Nx on an N-core host, ~1x here \
     if the container pins a single core.\n"
