(* hotpath: legacy vs fused objective-gradient inner loop.

   Runs the same Adam descent twice — once through the historical
   allocating composition (Objective.legacy_value_grad on an unoptimised
   pack) and once through the fused workspace kernel (Objective.value_grad
   on an optimised pack) — and reports steps/second plus minor-heap
   allocation per step. The two trajectories must be bitwise identical;
   any divergence, or a fused throughput below legacy, is a hard failure
   (exit 1) so CI catches regressions of either kind. Results land in
   BENCH_hotpath.json. *)

let smoke = ref false

type loop_stats = {
  obj_trace : float array;  (* objective value at every step *)
  y_final : float array;
  steps_per_sec : float;
  minor_words_per_step : float;
}

let clamp_into bounds y =
  Array.iteri
    (fun i (lo, hi) -> y.(i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) y.(i))
    bounds

(* Both loops mirror Gradient_tuner's descent exactly: objective/gradient,
   Adam step, box clamp. Only the objective implementation differs. *)

let run_legacy ~steps ~lambda ~lr model pack y0 =
  let y = Array.copy y0 in
  let adam = Adam.create ~lr (Array.length y) in
  let bounds = Pack.bounds_log pack in
  let trace = Array.make steps 0.0 in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for s = 0 to steps - 1 do
    let obj, grad = Objective.legacy_value_grad ~lambda model pack y in
    trace.(s) <- obj;
    Adam.step adam ~params:y ~grads:grad;
    clamp_into bounds y
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  { obj_trace = trace; y_final = y;
    steps_per_sec = float_of_int steps /. dt;
    minor_words_per_step = dw /. float_of_int steps }

let run_fused ~steps obj y0 =
  let y = Array.copy y0 in
  let adam = Adam.create ~lr:Tuning_config.default.gd_lr (Array.length y) in
  let bounds = Pack.bounds_log (Objective.pack obj) in
  let grad = Array.make (Array.length y) 0.0 in
  let trace = Array.make steps 0.0 in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for s = 0 to steps - 1 do
    trace.(s) <- Objective.value_grad obj y ~grad;
    Adam.step adam ~params:y ~grads:grad;
    clamp_into bounds y
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  { obj_trace = trace; y_final = y;
    steps_per_sec = float_of_int steps /. dt;
    minor_words_per_step = dw /. float_of_int steps }

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let run () =
  let steps = if !smoke then 60 else 400 in
  let reps = if !smoke then 2 else 3 in
  let lambda = Tuning_config.default.lambda in
  let lr = Tuning_config.default.gd_lr in
  let sg =
    Compute.lower ~name:"dense" (Op.Dense { batch = 50; in_dim = 768; out_dim = 3072 })
  in
  let sched = List.nth (Sketch.generate sg) 1 in
  (* The legacy baseline also skips the tape optimiser — it reproduces the
     pre-fusion pipeline end to end. The optimiser is bit-exact, so the
     trajectories must still match bitwise. *)
  let legacy_pack = Pack.prepare ~optimize:false sg sched in
  let fused_pack = Pack.prepare sg sched in
  let rng = Rng.create 1 in
  let model = Mlp.create rng ~hidden:[ 192; 192; 192 ] ~n_inputs:82 () in
  let y0 =
    match Dataset.sample_valid_point rng fused_pack 200 with
    | Some y -> y
    | None -> failwith "hotpath: no valid start point"
  in
  let obj = Objective.create ~lambda model fused_pack in
  (* Warm up both paths (tape caches, workspace pool, branch predictors). *)
  ignore (run_legacy ~steps:5 ~lambda ~lr model legacy_pack y0);
  ignore (run_fused ~steps:5 obj y0);
  let legacy_runs =
    List.init reps (fun _ -> run_legacy ~steps ~lambda ~lr model legacy_pack y0)
  in
  let fused_runs = List.init reps (fun _ -> run_fused ~steps obj y0) in
  let best runs =
    List.fold_left (fun acc r -> if r.steps_per_sec > acc.steps_per_sec then r else acc)
      (List.hd runs) runs
  in
  let legacy = best legacy_runs and fused = best fused_runs in
  let identical =
    List.for_all
      (fun r -> bits_equal r.obj_trace legacy.obj_trace && bits_equal r.y_final legacy.y_final)
      (legacy_runs @ fused_runs)
  in
  let speedup = fused.steps_per_sec /. legacy.steps_per_sec in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "objective-gradient hot path (%d Adam steps x %d reps)" steps reps)
      ~header:[ "path"; "steps/s"; "minor words/step"; "bitwise" ]
  in
  let row name (r : loop_stats) =
    Table.add_row t
      [ name;
        Printf.sprintf "%.0f" r.steps_per_sec;
        Printf.sprintf "%.0f" r.minor_words_per_step;
        (if identical then "identical" else "DIVERGED") ]
  in
  row "legacy" legacy;
  row "fused" fused;
  Table.print t;
  Printf.printf "fused/legacy speedup: %.2fx\n%!" speedup;
  let oc = open_out "BENCH_hotpath.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"hotpath\",\n  \"smoke\": %b,\n  \"steps\": %d,\n  \
     \"reps\": %d,\n  \"legacy\": { \"steps_per_sec\": %.1f, \"minor_words_per_step\": %.1f },\n  \
     \"fused\": { \"steps_per_sec\": %.1f, \"minor_words_per_step\": %.1f },\n  \
     \"speedup\": %.3f,\n  \"bitwise_identical\": %b\n}\n"
    !smoke steps reps legacy.steps_per_sec legacy.minor_words_per_step
    fused.steps_per_sec fused.minor_words_per_step speedup identical;
  close_out oc;
  print_endline "wrote BENCH_hotpath.json";
  if not identical then begin
    prerr_endline "hotpath: fused trajectory DIVERGED from legacy (bit-identity broken)";
    exit 1
  end;
  if fused.steps_per_sec < legacy.steps_per_sec then begin
    Printf.eprintf "hotpath: fused path regressed below legacy (%.0f < %.0f steps/s)\n"
      fused.steps_per_sec legacy.steps_per_sec;
    exit 1
  end
