(* measure: the measurement seam's overhead and its fault-injection grid.

   Two questions, answered with hard gates (exit 1 on regression):

   1. What does routing measurements through [Measure] cost when nothing
      fails?  The Direct backend at rate 0 must be bitwise-identical to
      the legacy inline [Gpu_model.measure_ms] loop, and its wall-clock
      overhead must stay under 3% (median paired ratio). A chaos
      wrapper with all rates zero must also be bitwise-inert.

   2. What happens under faults?  A grid of fault rate {0, 0.1, 0.3} ×
      retry budget {0, 2} measures the same candidate population and
      reports outcome and classification counts, total attempts and the
      simulated-time cost of the faults.

   Results land in BENCH_measure.json. *)

module C = Bench_common

let smoke = ref false

let quiet = lazy (Telemetry.create ~enabled:false ())

(* Paired-ratio timing: each rep times one run of each side back-to-back
   and records the g/f ratio; the reported overhead is the median ratio
   over many reps. Short samples keep each pair inside one CPU-frequency
   regime, alternating which side goes first cancels within-pair drift,
   and the median shrugs off the multi-percent block noise of a shared
   container that sinks min-of-reps comparisons of a ~0% effect. *)
let time_pair reps f g =
  ignore (Sys.opaque_identity (f ()));
  ignore (Sys.opaque_identity (g ()));
  let sample h =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (h ()));
    Unix.gettimeofday () -. t0
  in
  let bf = ref infinity and bg = ref infinity in
  let ratios = Array.make reps 0.0 in
  for k = 0 to reps - 1 do
    let tf, tg =
      if k land 1 = 0 then
        let tf = sample f in
        (tf, sample g)
      else
        let tg = sample g in
        (sample f, tg)
    in
    bf := min !bf tf;
    bg := min !bg tg;
    ratios.(k) <- tg /. tf
  done;
  Array.sort compare ratios;
  (!bf, !bg, ratios.(reps / 2))

let bits = Int64.bits_of_float

type cell = {
  rate : float;
  retries : int;
  ok : int;
  timeouts : int;
  crashes : int;
  flaky : int;
  deterministic : int;
  exhausted : int;
  attempts : int;
  measured_attempts : int;
  extra_s : float;
  wall_s : float;
}

let run () =
  let n = if !smoke then 200 else 800 in
  let reps = if !smoke then 201 else 301 in
  let sg =
    Compute.lower ~name:"dense" (Op.Dense { batch = 50; in_dim = 768; out_dim = 3072 })
  in
  let pack = Pack.prepare sg (List.nth (Sketch.generate sg) 1) in
  let prog = Pack.program pack in
  let sample_rng = Rng.create 17 in
  let requests =
    Array.init n (fun i ->
        let y =
          match Dataset.sample_valid_point sample_rng pack 200 with
          | Some y -> y
          | None -> failwith "no valid schedule point"
        in
        { Measure.digest = Printf.sprintf "bench|dense|%d" i;
          device = Device.rtx_a5000;
          program = prog;
          env = Pack.env_of pack y })
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  Printf.printf "[measure] %d requests, %d timing reps\n%!" n reps;

  (* --- seam overhead at rate 0: inline loop vs Direct measurer ------------- *)
  let inline_run () =
    let rng = Rng.create 7 in
    Array.map
      (fun r -> Gpu_model.measure_ms rng r.Measure.device r.Measure.program r.Measure.env)
      requests
  in
  let direct_run () =
    let m =
      Measure.create ~telemetry:(Lazy.force quiet) ~cache_capacity:0 Measure.Direct
        Measure.default
    in
    fst (Measure.measure_batch m ~rng:(Rng.create 7) requests)
  in
  let legacy = inline_run () in
  let direct = direct_run () in
  Array.iteri
    (fun i (r : Measure.result) ->
      match r.Measure.outcome with
      | Measure.Ok lat when bits lat = bits legacy.(i) -> ()
      | _ -> fail "Direct measurer not bitwise-identical to inline loop at %d" i)
    direct;
  let t_inline, t_direct, ratio = time_pair reps inline_run direct_run in
  let overhead = ratio -. 1.0 in
  Printf.printf "[measure] inline %.1f ms, direct %.1f ms (overhead %+.2f%%)\n%!"
    (1e3 *. t_inline) (1e3 *. t_direct) (100.0 *. overhead);

  (* --- zero-rate chaos is bitwise-inert ------------------------------------ *)
  let chaos_zero =
    { Measure.default with
      Measure.chaos =
        Some
          { Measure.chaos_seed = 5; timeout_rate = 0.0; crash_rate = 0.0;
            hang_rate = 0.0; flaky_rate = 0.0; flaky_magnitude = 0.25 } }
  in
  let m0 =
    Measure.create ~telemetry:(Lazy.force quiet) ~cache_capacity:0 Measure.Direct
      chaos_zero
  in
  let zres, zcost = Measure.measure_batch m0 ~rng:(Rng.create 7) requests in
  Array.iteri
    (fun i (r : Measure.result) ->
      match r.Measure.outcome with
      | Measure.Ok lat when bits lat = bits legacy.(i) -> ()
      | _ -> fail "zero-rate chaos not bitwise-identical to direct at %d" i)
    zres;
  if zcost.Measure.measured_attempts <> n || bits zcost.Measure.extra_s <> bits 0.0 then
    fail "zero-rate chaos has a non-legacy batch cost";

  (* --- the fault grid ------------------------------------------------------- *)
  let grid =
    List.concat_map
      (fun rate -> List.map (fun retries -> (rate, retries)) [ 0; 2 ])
      [ 0.0; 0.1; 0.3 ]
  in
  let cells =
    List.map
      (fun (rate, retries) ->
        let cfg =
          { Measure.default with
            Measure.max_attempts = retries + 1;
            chaos =
              (if rate = 0.0 then None else Some (Measure.chaos_with_rate ~seed:5 rate))
          }
        in
        let m =
          Measure.create ~telemetry:(Lazy.force quiet) ~cache_capacity:0
            Measure.Direct cfg
        in
        let t0 = Unix.gettimeofday () in
        let results, cost = Measure.measure_batch m ~rng:(Rng.create 7) requests in
        let wall_s = Unix.gettimeofday () -. t0 in
        let count p = Array.fold_left (fun a r -> if p r then a + 1 else a) 0 results in
        let kind k (r : Measure.result) = Measure.outcome_kind r.Measure.outcome = k in
        { rate;
          retries;
          ok = count (kind "ok");
          timeouts = count (kind "timeout");
          crashes = count (kind "crash");
          flaky = count (fun r -> r.Measure.classification = Measure.Flaky);
          deterministic =
            count (fun r -> r.Measure.classification = Measure.Deterministic);
          exhausted = count (fun r -> r.Measure.classification = Measure.Exhausted);
          attempts =
            Array.fold_left (fun a (r : Measure.result) -> a + r.Measure.attempts) 0
              results;
          measured_attempts = cost.Measure.measured_attempts;
          extra_s = cost.Measure.extra_s;
          wall_s })
      grid
  in
  let t =
    Table.create ~title:"fault-injection grid"
      ~header:
        [ "rate"; "retries"; "ok"; "timeout"; "crash"; "flaky"; "det"; "exh";
          "attempts"; "extra sim s" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [ Printf.sprintf "%.1f" c.rate; string_of_int c.retries; string_of_int c.ok;
          string_of_int c.timeouts; string_of_int c.crashes; string_of_int c.flaky;
          string_of_int c.deterministic; string_of_int c.exhausted;
          string_of_int c.attempts; Printf.sprintf "%.1f" c.extra_s ])
    cells;
  Table.print t;

  (* --- artifact -------------------------------------------------------------- *)
  let cell_json c =
    Json.Obj
      [ ("rate", Json.Num c.rate); ("retries", Json.Num (float_of_int c.retries));
        ("ok", Json.Num (float_of_int c.ok));
        ("timeouts", Json.Num (float_of_int c.timeouts));
        ("crashes", Json.Num (float_of_int c.crashes));
        ("flaky", Json.Num (float_of_int c.flaky));
        ("deterministic", Json.Num (float_of_int c.deterministic));
        ("exhausted", Json.Num (float_of_int c.exhausted));
        ("attempts", Json.Num (float_of_int c.attempts));
        ("measured_attempts", Json.Num (float_of_int c.measured_attempts));
        ("extra_sim_s", Json.Num c.extra_s); ("wall_s", Json.Num c.wall_s) ]
  in
  let oc = open_out "BENCH_measure.json" in
  output_string oc
    (Json.to_string
       (Json.Obj
          [ ("requests", Json.Num (float_of_int n));
            ("reps", Json.Num (float_of_int reps));
            ("inline_s", Json.Num t_inline); ("direct_s", Json.Num t_direct);
            ("overhead", Json.Num overhead);
            ("grid", Json.List (List.map cell_json cells)) ]));
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_measure.json";

  (* --- gates ------------------------------------------------------------------ *)
  if overhead > 0.03 then
    fail "measurement seam overhead %.2f%% exceeds 3%%" (100.0 *. overhead);
  List.iter
    (fun c ->
      if c.rate = 0.0 then begin
        if c.ok <> n || c.attempts <> n then
          fail "rate-0 cell (retries %d) is not fault-free" c.retries;
        if bits c.extra_s <> bits 0.0 then
          fail "rate-0 cell (retries %d) has nonzero extra cost" c.retries
      end
      else begin
        if c.timeouts + c.crashes + c.flaky = 0 then
          fail "rate-%.1f cell (retries %d) injected no faults" c.rate c.retries;
        if c.retries > 0 && c.attempts <= n then
          fail "rate-%.1f cell with retries made no retry attempts" c.rate
      end)
    cells;
  Printf.printf "[measure] OK: bitwise-inert at rate 0, overhead %+.2f%% (gate 3%%)\n%!"
    (100.0 *. overhead)
