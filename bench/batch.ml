(* batch: scalar vs lockstep (structure-of-arrays) descent across the
   candidate population.

   Descends the same 128 valid seeds twice — once as 128 independent
   scalar Adam loops through the fused objective kernel, and once in
   lockstep tiles of B in {8, 32, 128} through the batched SoA kernels
   (Objective.value_grad_batch + Adam.step_batch) — and reports
   steps/second per lane. Every lane's objective trajectory and final
   point must be bitwise identical to the scalar run, and the best rounded
   candidate must be byte-identical; any divergence, or a batched
   throughput below scalar, is a hard failure (exit 1) so CI catches both
   kinds of regression. Results land in BENCH_batch.json. *)

let smoke = ref false

type run_stats = {
  traces : float array array;  (* per lane: objective at every step *)
  finals : float array array;  (* per lane: final y *)
  steps_per_sec : float;  (* lane-steps per second *)
  minor_words_per_step : float;
}

let lr = Tuning_config.default.gd_lr

let clamp_into bounds y =
  Array.iteri
    (fun i (lo, hi) -> y.(i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) y.(i))
    bounds

(* Both loops mirror Gradient_tuner's descent exactly (objective/gradient,
   Adam step, box clamp, final evaluation); only the batching differs. *)

let run_scalar ~steps obj y0s =
  let lanes = Array.length y0s in
  let bounds = Pack.bounds_log (Objective.pack obj) in
  let traces = Array.init lanes (fun _ -> Array.make (steps + 1) 0.0) in
  let finals = Array.make lanes [||] in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for l = 0 to lanes - 1 do
    let y = Array.copy y0s.(l) in
    let n = Array.length y in
    let adam = Adam.create ~lr n in
    let grad = Array.make n 0.0 in
    let trace = traces.(l) in
    for s = 0 to steps - 1 do
      trace.(s) <- Objective.value_grad obj y ~grad;
      Adam.step adam ~params:y ~grads:grad;
      clamp_into bounds y
    done;
    trace.(steps) <- Objective.value_grad obj y ~grad;
    finals.(l) <- y
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let total = float_of_int (lanes * (steps + 1)) in
  { traces; finals; steps_per_sec = total /. dt; minor_words_per_step = dw /. total }

let run_batched ~steps ~b obj y0s =
  let lanes = Array.length y0s in
  let n = Array.length y0s.(0) in
  let bounds = Pack.bounds_log (Objective.pack obj) in
  let traces = Array.init lanes (fun _ -> Array.make (steps + 1) 0.0) in
  let finals = Array.make lanes [||] in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let off = ref 0 in
  while !off < lanes do
    let bt = min b (lanes - !off) in
    let ys = Array.make (bt * n) 0.0 in
    for l = 0 to bt - 1 do
      Array.blit y0s.(!off + l) 0 ys (l * n) n
    done;
    let adam = Adam.create_batch ~lr ~batch:bt n in
    let grads = Array.make (bt * n) 0.0 in
    let objs = Array.make bt 0.0 in
    for s = 0 to steps - 1 do
      Objective.value_grad_batch obj ~batch:bt ys ~grads ~objs;
      for l = 0 to bt - 1 do
        traces.(!off + l).(s) <- objs.(l)
      done;
      Adam.step_batch adam ~batch:bt ~params:ys ~grads;
      for l = 0 to bt - 1 do
        let base = l * n in
        Array.iteri
          (fun i (lo, hi) ->
            ys.(base + i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) ys.(base + i))
          bounds
      done
    done;
    Objective.value_grad_batch obj ~batch:bt ys ~grads ~objs;
    for l = 0 to bt - 1 do
      traces.(!off + l).(steps) <- objs.(l);
      finals.(!off + l) <- Array.sub ys (l * n) n
    done;
    off := !off + bt
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let total = float_of_int (lanes * (steps + 1)) in
  { traces; finals; steps_per_sec = total /. dt; minor_words_per_step = dw /. total }

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let identical_to scalar r =
  let lanes = Array.length scalar.traces in
  let ok = ref (Array.length r.traces = lanes) in
  for l = 0 to lanes - 1 do
    if !ok then
      ok := bits_equal scalar.traces.(l) r.traces.(l) && bits_equal scalar.finals.(l) r.finals.(l)
  done;
  !ok

(* Best rounded candidate: the valid-rounding of the lane with the lowest
   final objective (ties keep the earlier lane, deterministically). *)
let best_key obj stats =
  let pack = Objective.pack obj in
  let best = ref None in
  Array.iteri
    (fun l y ->
      let o = stats.traces.(l).(Array.length stats.traces.(l) - 1) in
      match Pack.round_to_valid pack y with
      | Some r -> (
        let key = Pack.schedule_key pack r in
        match !best with
        | Some (_, bo) when bo <= o -> ()
        | _ -> best := Some (key, o))
      | None -> ())
    stats.finals;
  match !best with Some (k, _) -> k | None -> "-"

let run () =
  let steps = if !smoke then 40 else 200 in
  let reps = if !smoke then 1 else 2 in
  let lanes = 128 in
  let widths = [ 8; 32; 128 ] in
  let sg =
    Compute.lower ~name:"dense" (Op.Dense { batch = 50; in_dim = 768; out_dim = 3072 })
  in
  let sched = List.nth (Sketch.generate sg) 1 in
  let pack = Pack.prepare sg sched in
  let rng = Rng.create 1 in
  let model = Mlp.create rng ~hidden:[ 192; 192; 192 ] ~n_inputs:82 () in
  let y0s =
    Array.init lanes (fun _ ->
        match Dataset.sample_valid_point rng pack 200 with
        | Some y -> y
        | None -> failwith "batch: no valid start point")
  in
  let obj = Objective.create ~lambda:Tuning_config.default.lambda model pack in
  (* Warm up both paths (workspace pools, branch predictors). *)
  ignore (run_scalar ~steps:3 obj (Array.sub y0s 0 4));
  ignore (run_batched ~steps:3 ~b:8 obj (Array.sub y0s 0 16));
  let best_of runs =
    List.fold_left
      (fun acc r -> if r.steps_per_sec > acc.steps_per_sec then r else acc)
      (List.hd runs) runs
  in
  let scalar = best_of (List.init reps (fun _ -> run_scalar ~steps obj y0s)) in
  let scalar_key = best_key obj scalar in
  let per_width =
    List.map
      (fun b ->
        let runs = List.init reps (fun _ -> run_batched ~steps ~b obj y0s) in
        let r = best_of runs in
        let ok = List.for_all (identical_to scalar) runs && best_key obj r = scalar_key in
        (b, r, ok))
      widths
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "lockstep descent, %d lanes x %d Adam steps (best of %d reps)"
           lanes steps reps)
      ~header:[ "path"; "lane-steps/s"; "minor words/step"; "speedup"; "bitwise" ]
  in
  Table.add_row t
    [ "scalar"; Printf.sprintf "%.0f" scalar.steps_per_sec;
      Printf.sprintf "%.0f" scalar.minor_words_per_step; "1.00x"; "reference" ];
  List.iter
    (fun (b, r, ok) ->
      Table.add_row t
        [ Printf.sprintf "batch %d" b;
          Printf.sprintf "%.0f" r.steps_per_sec;
          Printf.sprintf "%.0f" r.minor_words_per_step;
          Printf.sprintf "%.2fx" (r.steps_per_sec /. scalar.steps_per_sec);
          (if ok then "identical" else "DIVERGED") ])
    per_width;
  Table.print t;
  Printf.printf "best candidate: %s\n%!" scalar_key;
  let oc = open_out "BENCH_batch.json" in
  Printf.fprintf oc
    "{\n  \"experiment\": \"batch\",\n  \"smoke\": %b,\n  \"lanes\": %d,\n  \
     \"steps\": %d,\n  \"reps\": %d,\n  \"scalar\": { \"steps_per_sec\": %.1f, \
     \"minor_words_per_step\": %.1f },\n  \"batched\": [\n%s  ]\n}\n"
    !smoke lanes steps reps scalar.steps_per_sec scalar.minor_words_per_step
    (String.concat ",\n"
       (List.map
          (fun (b, r, ok) ->
            Printf.sprintf
              "    { \"batch\": %d, \"steps_per_sec\": %.1f, \
               \"minor_words_per_step\": %.1f, \"speedup\": %.3f, \
               \"bitwise_identical\": %b }"
              b r.steps_per_sec r.minor_words_per_step
              (r.steps_per_sec /. scalar.steps_per_sec)
              ok)
          per_width)
     ^ "\n");
  close_out oc;
  print_endline "wrote BENCH_batch.json";
  List.iter
    (fun (b, r, ok) ->
      if not ok then begin
        Printf.eprintf
          "batch: B=%d trajectories DIVERGED from scalar (bit-identity broken)\n" b;
        exit 1
      end;
      if r.steps_per_sec < scalar.steps_per_sec then begin
        Printf.eprintf "batch: B=%d regressed below scalar (%.0f < %.0f lane-steps/s)\n"
          b r.steps_per_sec scalar.steps_per_sec;
        exit 1
      end)
    per_width
