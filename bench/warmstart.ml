(* warmstart: time-to-target with and without a warm tuning store.

   Tunes the same network twice through a durable store: a cold run over
   an empty store, then a warm run over the records the cold run left
   behind. The warm run's dedup caches, bests, elites and cost model are
   seeded from the store before its first round, and re-proposals of
   stored schedules cost zero simulated time — so the warm progress
   curve must dominate the cold one. Three properties are asserted (hard
   failure, exit 1, so CI catches regressions):

   - the warm run performs strictly fewer new measurements;
   - the warm final latency is no worse than the cold final latency;
   - the warm run reaches the cold run's final latency no later (in
     simulated tuning time) than the cold run did.

   Results land in BENCH_warmstart.json. *)

module C = Bench_common

let smoke = ref false

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

type leg = {
  final_ms : float;
  measurements : int;
  sim_s : float;
  curve : (float * float) list;
}

let leg_of (r : Tuner.result) =
  { final_ms = r.Tuner.final_latency_ms;
    measurements = r.Tuner.total_measurements;
    sim_s = (match List.rev r.Tuner.curve with p :: _ -> p.Tuner.time_s | [] -> 0.0);
    curve = List.map (fun (p : Tuner.progress_point) -> (p.time_s, p.latency_ms)) r.Tuner.curve }

let tune_with_store ~dir ~rounds device model g =
  match Store.open_dir dir with
  | Error e -> failwith (Store.error_message e)
  | Ok store ->
    let search = { (C.tuning_config ()) with Tuning_config.max_rounds = rounds } in
    let rc =
      Tuning_config.(
        builder |> with_search search |> with_seed 11 |> with_store store)
    in
    let r = C.run_tuner rc device model g Tuner.Felix in
    Store.close store;
    r

let run () =
  C.ensure_artifacts ();
  let rounds = if !smoke then 10 else 24 in
  let device = Device.rtx_a5000 in
  let model = C.cost_model device in
  let g = Workload.graph Workload.Dcgan in
  let dir = Filename.concat C.artifacts_dir "warmstart_store" in
  remove_tree dir;
  Printf.printf "[warmstart] cold run (%d rounds, empty store)...\n%!" rounds;
  let cold = leg_of (tune_with_store ~dir ~rounds device model g) in
  Printf.printf "[warmstart] warm run (%d rounds, %s)...\n%!" rounds dir;
  let warm_r = tune_with_store ~dir ~rounds device model g in
  let warm = leg_of warm_r in
  let time_to tgt curve =
    List.find_map (fun (t, l) -> if l <= tgt then Some t else None) curve
  in
  let cold_to_final = time_to cold.final_ms cold.curve in
  let warm_to_cold_final = time_to cold.final_ms warm.curve in
  let t =
    Table.create ~title:"warm-start: time-to-target"
      ~header:[ "run"; "final ms"; "measurements"; "sim s"; "s to cold final" ]
  in
  let fmt_opt = function Some s -> Printf.sprintf "%.0f" s | None -> "never" in
  Table.add_row t
    [ "cold"; Table.fmt_ms cold.final_ms; string_of_int cold.measurements;
      Printf.sprintf "%.0f" cold.sim_s; fmt_opt cold_to_final ];
  Table.add_row t
    [ "warm"; Table.fmt_ms warm.final_ms; string_of_int warm.measurements;
      Printf.sprintf "%.0f" warm.sim_s; fmt_opt warm_to_cold_final ];
  Table.print t;
  (* Machine-readable results for the CI artifact. *)
  let leg_json l =
    Json.Obj
      [ ("final_ms", Json.Num l.final_ms);
        ("measurements", Json.Num (float_of_int l.measurements));
        ("sim_s", Json.Num l.sim_s);
        ("curve", Json.List (List.map (fun (t, l) -> Json.List [ Json.Num t; Json.Num l ]) l.curve)) ]
  in
  let oc = open_out "BENCH_warmstart.json" in
  output_string oc
    (Json.to_string
       (Json.Obj
          [ ("rounds", Json.Num (float_of_int rounds));
            ("network", Json.Str (Workload.network_name Workload.Dcgan));
            ("device", Json.Str device.Device.device_name);
            ("cold", leg_json cold);
            ("warm", leg_json warm);
            ("warm_s_to_cold_final",
             match warm_to_cold_final with None -> Json.Null | Some s -> Json.Num s) ]));
  output_string oc "\n";
  close_out oc;
  print_endline "wrote BENCH_warmstart.json";
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("FAIL: " ^ m); exit 1) fmt in
  if warm.measurements >= cold.measurements then
    fail "warm run did not save measurements (%d vs cold %d)" warm.measurements
      cold.measurements;
  if warm.final_ms > cold.final_ms then
    fail "warm final %.4f ms worse than cold %.4f ms" warm.final_ms cold.final_ms;
  (match (warm_to_cold_final, cold_to_final) with
  | None, _ -> fail "warm run never reached the cold final latency"
  | Some w, Some c when w > c ->
    fail "warm run reached the cold final at %.0f s, cold needed only %.0f s" w c
  | _ -> ());
  Printf.printf
    "[warmstart] OK: warm saved %d measurements and reached the cold final no later\n%!"
    (cold.measurements - warm.measurements)
