(** Felix: gradient-based tensor program optimisation — public API.

    This is the OCaml counterpart of the paper's Python interface
    (Figure 5). A typical session:

    {[
      let device = Felix.cuda "xavier-nx" in
      let dnn = Workload.graph Workload.Resnet50 in
      let graphs = Felix.extract_subgraphs dnn in
      let cost_model = Felix.pretrained_cost_model device in
      let opt = Felix.Optimizer.create graphs cost_model device in
      let res = Felix.Optimizer.optimize_all opt ~n_total_rounds:100 () in
      let compiled = Felix.Optimizer.compile_with_best_configs opt in
      Printf.printf "latency: %.3f ms\n" (Felix.Compiled.latency_ms compiled)
    ]}

    Everything below is a thin, stable façade over the full libraries
    ([felix.tensor_ir], [felix.optim], ...), which remain available for
    advanced use. *)

module Runtime = Runtime
(** The parallel-execution runtime, re-exported so façade users can write
    [Felix.Runtime.create ~domains:4 ()] without depending on
    [felix.runtime] directly. *)

module Tuning_config = Tuning_config
(** Search-budget constants and the run-configuration builder
    ([Tuning_config.(builder |> with_rounds 32 |> with_jobs 4)]),
    re-exported for the same reason. *)

module Measure = Measure
(** The pluggable measurement subsystem (backends, outcome taxonomy,
    retry policy, deterministic fault injection), re-exported so façade
    users can write
    [Felix.Tuning_config.with_measurer { Felix.Measure.default with ... }]. *)

module Store = Store
(** The durable tuning store (journal + checkpoints + versioned
    artifacts), re-exported so façade users can write
    [Felix.Store.open_dir dir] and
    [Felix.Tuning_config.with_store store]. *)

module Serve = Serve
(** The tuning service: a concurrent daemon accepting jobs over a
    Unix-domain socket ([Serve.create]/[Serve.run]), its job codec
    ([Serve.Job]) and the matching client ([Serve.Client]). *)

type device = Device.t

val cuda : string -> device
(** Accepts the paper's spellings: ["a10g"], ["rtx-a5000"]/["a5000"],
    ["xavier-nx"]. Raises [Invalid_argument] on unknown names, with the
    same message {!Device.of_name} (the non-raising primary API) returns
    in its [Error] — see {!Device.unknown_device_message}. *)

(** {2 Shared result shapes}

    Re-exports of the tuner's curve point and best-schedule record, so
    façade users never need the ["s_"]-prefixed spellings of the old
    [single_result]. *)

type progress_point = Tuner.progress_point = { time_s : float; latency_ms : float }

type best_candidate = Tuner.best_candidate = {
  latency_ms : float;
  sketch : string;
  assignment : (string * int) list;
}

(** Tuning-loop events, re-exported from {!Tuner.event}; delivered in
    order to [?on_event] callbacks of {!Optimizer.optimize_all}. *)
type tuning_event = Tuner.event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : Tuner.engine;
      n_tasks : int;
    }
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;
      measured : int;
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }
  | Model_updated of { round : int; samples : int; loss : float }
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;
      sim_clock_s : float;
    }
  | Budget_exhausted of {
      rounds : int;
      sim_clock_s : float;
      reason : Tuner.budget_reason;
    }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

type subgraphs
(** The partitioned tuning tasks of a network (Section 3.1). *)

val extract_subgraphs : Graph.t -> subgraphs

val num_tasks : subgraphs -> int

val describe_subgraphs : subgraphs -> string

val pretrained_cost_model : ?cache_dir:string -> device -> Mlp.t
(** Loads (or trains and caches) the per-device cost model. *)

(** Compiled, schedule-applied network. *)
module Compiled : sig
  type t

  val latency_ms : t -> float
  (** End-to-end inference latency on the target device. *)

  val run : t -> float
  (** Simulate one inference; returns the measured latency (with run-to-run
      noise). *)

  val network : t -> string
  val device_name : t -> string

  val best_schedules : t -> (string * string * (string * int) list) list
  (** [(subgraph, sketch, variable assignment)] per task. *)

  val save_file : t -> string -> (unit, Store.error) result
  (** Atomically persist as a versioned JSON artifact (kind
      ["felix-compiled"]); the reloaded latency is bit-identical. *)

  val load_file : string -> (t, Store.error) result
end

(** The schedule search driver (Algorithm 2). *)
module Optimizer : sig
  type t

  val create :
    ?config:Tuning_config.t ->
    ?seed:int ->
    ?run:Tuning_config.run ->
    subgraphs ->
    Mlp.t ->
    device ->
    t
  (** [run] is the preferred configuration: a builder-made
      {!Tuning_config.run} carrying search budget, seed, jobs, event
      callback and telemetry in one value. When given, it takes precedence
      over [config]/[seed], which remain for compatibility. *)

  val optimize_all :
    t ->
    n_total_rounds:int ->
    ?measure_per_round:int ->
    ?save_res:string ->
    ?on_event:(tuning_event -> unit) ->
    ?telemetry:Telemetry.t ->
    ?runtime:Runtime.t ->
    ?pack_cache:string ->
    unit ->
    (Tuner.result, Tuner.error) result
  (** Run the tuning rounds; optionally persist the result to [save_res]
      as a versioned {!Export.save_result} artifact (a failed write
      reports [Error (Tuner.Store_error _)]). Returns the full tuning
      log (curve, per-task bests). Attach a durable store — journaling,
      crash-safe resume, warm start — via the run configuration given at
      {!create} time: [Tuning_config.with_store]. [pack_cache] points the
      persistent compilation cache at a directory (shorthand for
      [Tuning_config.with_pack_cache]): compiled feature/penalty packs
      are reused across runs and processes, bitwise-identically to a
      cold compile.

      [on_event] observes every {!tuning_event} of the run in order —
      progress streaming, early stopping and dashboards are all consumers
      of this one event bus. [telemetry] selects the registry receiving
      per-round spans and counters (default [Telemetry.global], disabled
      unless a front end enables it). [runtime] (or [with_jobs] in the
      optimizer's run configuration) fans the pure phases out across a
      domain pool; results stay bit-identical to sequential. Each optional
      argument overrides the corresponding field of the run configuration
      given at {!create} time; omitting them all leaves the result
      bit-for-bit identical to the un-instrumented sequential driver. *)

  val compile_with_best_configs : ?configs_file:string -> t -> Compiled.t
  (** Build a {!Compiled.t} from the optimizer's (or a saved run's) best
      schedules. [configs_file] names a {!Export.save_result} artifact
      (as written by [optimize_all ~save_res]). Raises [Failure] if
      called before [optimize_all] and no [configs_file] is given, or if
      [configs_file] exists but cannot be read as a result artifact. *)
end
