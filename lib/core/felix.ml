module Runtime = Runtime
module Tuning_config = Tuning_config

type device = Device.t

let cuda name =
  match Device.of_name name with
  | Ok d -> d
  | Error msg -> invalid_arg msg

type progress_point = Tuner.progress_point = { time_s : float; latency_ms : float }

type best_candidate = Tuner.best_candidate = {
  latency_ms : float;
  sketch : string;
  assignment : (string * int) list;
}

type tuning_event = Tuner.event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : Tuner.engine;
      n_tasks : int;
    }
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;
      measured : int;
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }
  | Model_updated of { round : int; samples : int; loss : float }
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;
      sim_clock_s : float;
    }
  | Budget_exhausted of {
      rounds : int;
      sim_clock_s : float;
      reason : Tuner.budget_reason;
    }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

type subgraphs = { graph : Graph.t; tasks : Partition.task list }

let extract_subgraphs g = { graph = g; tasks = Partition.partition g }

let num_tasks s = List.length s.tasks

let describe_subgraphs s =
  String.concat "\n" (List.map Partition.describe s.tasks)

let pretrained_cost_model ?(cache_dir = "_artifacts") device =
  Train.pretrained_for_device ~cache_dir device

module Compiled = struct
  type t = {
    c_network : string;
    c_device : string;
    c_latency_ms : float;
    c_schedules : (string * string * (string * int) list) list;
    c_seed : int;
  }

  let latency_ms t = t.c_latency_ms

  let run t =
    (* One simulated inference with run-to-run noise. *)
    let rng = Rng.create (Hashtbl.hash (t.c_network, t.c_seed)) in
    t.c_latency_ms *. (1.0 +. (0.01 *. Rng.gaussian rng))

  let network t = t.c_network
  let device_name t = t.c_device
  let best_schedules t = t.c_schedules

  let save t path =
    let oc = open_out_bin path in
    Marshal.to_channel oc t [];
    close_out oc

  let load path =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let t : t = Marshal.from_channel ic in
      close_in ic;
      Some t
    end
    else None
end

module Optimizer = struct
  type t = {
    subgraphs : subgraphs;
    model : Mlp.t;
    device : Device.t;
    run : Tuning_config.run;
    mutable last_result : Tuner.result option;
  }

  let create ?config ?seed ?run subgraphs model device =
    let rc =
      match run with
      | Some rc -> rc
      | None ->
        let rc = Tuning_config.builder in
        let rc =
          match config with Some c -> Tuning_config.with_search c rc | None -> rc
        in
        (match seed with Some s -> Tuning_config.with_seed s rc | None -> rc)
    in
    { subgraphs; model; device; run = rc; last_result = None }

  let optimize_all t ~n_total_rounds ?measure_per_round ?save_res ?on_event ?telemetry
      ?runtime () =
    let base = t.run.Tuning_config.search in
    let search =
      { base with
        Tuning_config.max_rounds = n_total_rounds;
        nmeasure_felix =
          Option.value ~default:base.Tuning_config.nmeasure_felix measure_per_round }
    in
    let rc = Tuning_config.with_search search t.run in
    let rc =
      match on_event with Some f -> Tuning_config.with_on_event f rc | None -> rc
    in
    let rc =
      match telemetry with Some reg -> Tuning_config.with_telemetry reg rc | None -> rc
    in
    let rc =
      match runtime with Some rt -> Tuning_config.with_runtime rt rc | None -> rc
    in
    let result = Tuner.run rc t.device t.model t.subgraphs.graph Tuner.Felix in
    t.last_result <- Some result;
    (match save_res with
    | Some path ->
      let oc = open_out_bin path in
      Marshal.to_channel oc result [];
      close_out oc
    | None -> ());
    result

  let result_to_compiled t (r : Tuner.result) =
    { Compiled.c_network = r.Tuner.network;
      c_device = r.Tuner.device_name;
      c_latency_ms = r.Tuner.final_latency_ms;
      c_schedules =
        List.map
          (fun (tr : Tuner.task_result) ->
            ( tr.task.Partition.subgraph.Compute.sg_name,
              tr.best.Tuner.sketch,
              tr.best.Tuner.assignment ))
          r.Tuner.tasks;
      c_seed = t.run.Tuning_config.seed }

  let compile_with_best_configs ?configs_file t =
    let result =
      match configs_file with
      | Some path when Sys.file_exists path ->
        let ic = open_in_bin path in
        let r : Tuner.result = Marshal.from_channel ic in
        close_in ic;
        Some r
      | Some _ | None -> t.last_result
    in
    match result with
    | Some r -> result_to_compiled t r
    | None ->
      failwith "Felix.Optimizer.compile_with_best_configs: run optimize_all first"
end
