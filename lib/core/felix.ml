module Runtime = Runtime
module Tuning_config = Tuning_config
module Measure = Measure
module Store = Store
module Serve = Serve

type device = Device.t

let cuda name =
  match Device.of_name name with
  | Ok d -> d
  | Error msg -> invalid_arg msg

type progress_point = Tuner.progress_point = { time_s : float; latency_ms : float }

type best_candidate = Tuner.best_candidate = {
  latency_ms : float;
  sketch : string;
  assignment : (string * int) list;
}

type tuning_event = Tuner.event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : Tuner.engine;
      n_tasks : int;
    }
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;
      measured : int;
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }
  | Model_updated of { round : int; samples : int; loss : float }
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;
      sim_clock_s : float;
    }
  | Budget_exhausted of {
      rounds : int;
      sim_clock_s : float;
      reason : Tuner.budget_reason;
    }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

type subgraphs = { graph : Graph.t; tasks : Partition.task list }

let extract_subgraphs g = { graph = g; tasks = Partition.partition g }

let num_tasks s = List.length s.tasks

let describe_subgraphs s =
  String.concat "\n" (List.map Partition.describe s.tasks)

let pretrained_cost_model ?(cache_dir = "_artifacts") device =
  Train.pretrained_for_device ~cache_dir device

module Compiled = struct
  type t = {
    c_network : string;
    c_device : string;
    c_latency_ms : float;
    c_schedules : (string * string * (string * int) list) list;
    c_seed : int;
  }

  let latency_ms t = t.c_latency_ms

  let run t =
    (* One simulated inference with run-to-run noise. *)
    let rng = Rng.create (Hashtbl.hash (t.c_network, t.c_seed)) in
    t.c_latency_ms *. (1.0 +. (0.01 *. Rng.gaussian rng))

  let network t = t.c_network
  let device_name t = t.c_device
  let best_schedules t = t.c_schedules

  let artifact_kind = "felix-compiled"
  let artifact_version = 1

  let to_json t =
    let open Json in
    Obj
      [ ("network", Str t.c_network);
        ("device", Str t.c_device);
        ("latency_ms", Num t.c_latency_ms);
        ("seed", Num (float_of_int t.c_seed));
        ("schedules",
         List
           (List.map
              (fun (sg, sketch, assignment) ->
                Obj
                  [ ("subgraph", Str sg);
                    ("sketch", Str sketch);
                    ("assignment",
                     Obj (List.map (fun (k, v) -> (k, Num (float_of_int v))) assignment)) ])
              t.c_schedules)) ]

  let of_json j =
    let module J = Json in
    let ( let* ) = Option.bind in
    let* c_network = Option.bind (J.find j "network") J.as_string in
    let* c_device = Option.bind (J.find j "device") J.as_string in
    let* c_latency_ms = Option.bind (J.find j "latency_ms") J.as_float in
    let* c_seed = Option.bind (J.find j "seed") J.as_int in
    let* schedules = Option.bind (J.find j "schedules") J.as_list in
    let* c_schedules =
      List.fold_left
        (fun acc sj ->
          let* acc = acc in
          let* sg = Option.bind (J.find sj "subgraph") J.as_string in
          let* sketch = Option.bind (J.find sj "sketch") J.as_string in
          let* kvs =
            match J.find sj "assignment" with Some (J.Obj kvs) -> Some kvs | _ -> None
          in
          let* assignment =
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                let* i = J.as_int v in
                Some ((k, i) :: acc))
              (Some []) kvs
            |> Option.map List.rev
          in
          Some ((sg, sketch, assignment) :: acc))
        (Some []) schedules
      |> Option.map List.rev
    in
    Some { c_network; c_device; c_latency_ms; c_schedules; c_seed }

  let save_file t path =
    Store.Artifact.save ~path ~kind:artifact_kind ~version:artifact_version (to_json t)

  let load_file path =
    match Store.Artifact.load ~path ~kind:artifact_kind ~version:artifact_version with
    | Error e -> Error e
    | Ok j -> (
      match of_json j with
      | Some t -> Ok t
      | None -> Error (Store.Corrupt (path ^ ": malformed compiled-network payload")))

end

module Optimizer = struct
  type t = {
    subgraphs : subgraphs;
    model : Mlp.t;
    device : Device.t;
    run : Tuning_config.run;
    mutable last_result : Tuner.result option;
  }

  let create ?config ?seed ?run subgraphs model device =
    let rc =
      match run with
      | Some rc -> rc
      | None ->
        let rc = Tuning_config.builder in
        let rc =
          match config with Some c -> Tuning_config.with_search c rc | None -> rc
        in
        (match seed with Some s -> Tuning_config.with_seed s rc | None -> rc)
    in
    { subgraphs; model; device; run = rc; last_result = None }

  let optimize_all t ~n_total_rounds ?measure_per_round ?save_res ?on_event ?telemetry
      ?runtime ?pack_cache () =
    let base = t.run.Tuning_config.search in
    let search =
      { base with
        Tuning_config.max_rounds = n_total_rounds;
        nmeasure_felix =
          Option.value ~default:base.Tuning_config.nmeasure_felix measure_per_round }
    in
    let rc = Tuning_config.with_search search t.run in
    let rc =
      match on_event with Some f -> Tuning_config.with_on_event f rc | None -> rc
    in
    let rc =
      match telemetry with Some reg -> Tuning_config.with_telemetry reg rc | None -> rc
    in
    let rc =
      match runtime with Some rt -> Tuning_config.with_runtime rt rc | None -> rc
    in
    let rc =
      match pack_cache with
      | Some dir -> Tuning_config.with_pack_cache dir rc
      | None -> rc
    in
    match Tuner.run rc t.device t.model t.subgraphs.graph Tuner.Felix with
    | Error _ as e -> e
    | Ok result -> (
      t.last_result <- Some result;
      match save_res with
      | None -> Ok result
      | Some path -> (
        match Export.save_result result path with
        | Ok () -> Ok result
        | Error e -> Error (Tuner.Store_error e)))

  let result_to_compiled t (r : Tuner.result) =
    { Compiled.c_network = r.Tuner.network;
      c_device = r.Tuner.device_name;
      c_latency_ms = r.Tuner.final_latency_ms;
      c_schedules =
        List.map
          (fun (tr : Tuner.task_result) ->
            ( tr.task.Partition.subgraph.Compute.sg_name,
              tr.best.Tuner.sketch,
              tr.best.Tuner.assignment ))
          r.Tuner.tasks;
      c_seed = t.run.Tuning_config.seed }

  let saved_to_compiled t (s : Export.saved_result) =
    { Compiled.c_network = s.Export.sr_network;
      c_device = s.Export.sr_device;
      c_latency_ms = s.Export.sr_final_latency_ms;
      c_schedules =
        List.map
          (fun (st : Export.saved_task) ->
            (st.Export.st_subgraph, st.Export.st_sketch, st.Export.st_assignment))
          s.Export.sr_tasks;
      c_seed = t.run.Tuning_config.seed }

  let compile_with_best_configs ?configs_file t =
    match configs_file with
    | Some path when Sys.file_exists path -> (
      match Export.load_result path with
      | Ok s -> saved_to_compiled t s
      | Error e ->
        failwith
          (Printf.sprintf "Felix.Optimizer.compile_with_best_configs: %s"
             (Store.error_message e)))
    | Some _ | None -> (
      match t.last_result with
      | Some r -> result_to_compiled t r
      | None ->
        failwith "Felix.Optimizer.compile_with_best_configs: run optimize_all first")
end
