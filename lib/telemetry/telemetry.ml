(* Dependency-light tracing and metrics for the tuning pipeline.

   Everything hangs off a registry: named counters, gauges and latency
   histograms, plus wall-clock spans (with parent nesting) and instant
   events that stream to attached sinks as they close. The [global]
   registry starts disabled so library instrumentation costs one boolean
   load until a front end (CLI flag, test, example) switches it on. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type attr = string * value

let attr_int attrs k =
  match List.assoc_opt k attrs with
  | Some (Int i) -> Some i
  | Some (Float f) -> Some (int_of_float f)
  | _ -> None

let attr_float attrs k =
  match List.assoc_opt k attrs with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let attr_str attrs k =
  match List.assoc_opt k attrs with Some (Str s) -> Some s | _ -> None

(* --- compact JSON (writer + parser, for the JSONL trace format) ---------- *)

(* The canonical JSON implementation lives in [lib/util]; the trace
   format keeps its compact single-line rendering via [Json.to_line]. *)
module Ujson = Json

module Json = struct
  type t = Ujson.t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let to_string = Ujson.to_line
  let parse = Ujson.parse
end

(* --- metric instruments --------------------------------------------------- *)

(* Instruments may be hit concurrently from Runtime.parallel_map workers:
   counters and gauges are atomics, histograms guard their growable buffer
   with a private mutex. *)

module Counter = struct
  type t = { name : string; value : int Atomic.t; on : bool ref }

  let incr ?(by = 1) c = if !(c.on) then ignore (Atomic.fetch_and_add c.value by)
  let value c = Atomic.get c.value
  let name c = c.name
end

module Gauge = struct
  type t = { name : string; value : float Atomic.t; on : bool ref }

  let set g v = if !(g.on) then Atomic.set g.value v
  let value g = Atomic.get g.value
  let name g = g.name
end

module Histogram = struct
  type t = {
    name : string;
    mutable data : float array;
    mutable len : int;
    lock : Mutex.t;
    on : bool ref;
  }

  let observe h v =
    if !(h.on) then begin
      Mutex.lock h.lock;
      if h.len = Array.length h.data then begin
        let bigger = Array.make (max 16 (2 * h.len)) 0.0 in
        Array.blit h.data 0 bigger 0 h.len;
        h.data <- bigger
      end;
      h.data.(h.len) <- v;
      h.len <- h.len + 1;
      Mutex.unlock h.lock
    end

  let count h = h.len
  let name h = h.name

  let snapshot h =
    Mutex.lock h.lock;
    let arr = Array.sub h.data 0 h.len in
    Mutex.unlock h.lock;
    arr

  let sum h = Array.fold_left ( +. ) 0.0 (snapshot h)
  let mean h = if h.len = 0 then 0.0 else sum h /. float_of_int h.len

  (* Linear-interpolated quantile over the sorted samples; [p] in [0,100]. *)
  let quantile h p =
    let arr = snapshot h in
    if Array.length arr = 0 then 0.0
    else begin
      Array.sort compare arr;
      let n = Array.length arr in
      if n = 1 then arr.(0)
      else begin
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let rank = if rank < 0.0 then 0.0 else rank in
        let lo = min (n - 1) (int_of_float (floor rank)) in
        let hi = min (n - 1) (lo + 1) in
        let frac = rank -. float_of_int lo in
        (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
      end
    end

  let p50 h = quantile h 50.0
  let p95 h = quantile h 95.0
  let p99 h = quantile h 99.0
end

(* --- trace records -------------------------------------------------------- *)

type kind = Span | Event | Metric

type record = {
  r_kind : kind;
  r_name : string;
  r_ts_s : float;  (** seconds since the registry's origin *)
  r_dur_ms : float;  (** 0 for events and metrics *)
  r_id : int;  (** 0 when absent *)
  r_parent : int;  (** 0 when absent *)
  r_attrs : attr list;
}

let kind_name = function Span -> "span" | Event -> "event" | Metric -> "metric"

let json_of_value = function
  | Int i -> Json.Num (float_of_int i)
  | Float f -> Json.Num f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let to_jsonl r =
  let base =
    [ ("type", Json.Str (kind_name r.r_kind));
      ("name", Json.Str r.r_name);
      ("ts", Json.Num r.r_ts_s) ]
  in
  let span_fields =
    if r.r_kind = Span then
      [ ("id", Json.Num (float_of_int r.r_id));
        ("parent", if r.r_parent = 0 then Json.Null else Json.Num (float_of_int r.r_parent));
        ("dur_ms", Json.Num r.r_dur_ms) ]
    else []
  in
  let attrs =
    if r.r_attrs = [] then []
    else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) r.r_attrs)) ]
  in
  Json.to_string (Json.Obj (base @ span_fields @ attrs))

module Trace = struct
  let value_of_json = function
    | Json.Num v when Float.is_integer v && Float.abs v < 1e9 -> Int (int_of_float v)
    | Json.Num v -> Float v
    | Json.Str s -> Str s
    | Json.Bool b -> Bool b
    | Json.Null -> Str "null"
    | Json.List _ | Json.Obj _ -> Str "<nested>"

  let of_line line =
    match Json.parse line with
    | Error msg -> Error msg
    | Ok (Json.Obj fields) ->
      let str k = match List.assoc_opt k fields with Some (Json.Str s) -> Some s | _ -> None in
      let num k = match List.assoc_opt k fields with Some (Json.Num v) -> Some v | _ -> None in
      let kind =
        match str "type" with
        | Some "span" -> Some Span
        | Some "event" -> Some Event
        | Some "metric" -> Some Metric
        | _ -> None
      in
      (match (kind, str "name") with
      | Some kind, Some name ->
        let attrs =
          match List.assoc_opt "attrs" fields with
          | Some (Json.Obj kvs) -> List.map (fun (k, v) -> (k, value_of_json v)) kvs
          | _ -> []
        in
        Ok
          { r_kind = kind;
            r_name = name;
            r_ts_s = Option.value ~default:0.0 (num "ts");
            r_dur_ms = Option.value ~default:0.0 (num "dur_ms");
            r_id = int_of_float (Option.value ~default:0.0 (num "id"));
            r_parent = int_of_float (Option.value ~default:0.0 (num "parent"));
            r_attrs = attrs }
      | _ -> Error "record is missing \"type\" or \"name\"")
    | Ok _ -> Error "trace line is not a JSON object"

  let read_file path =
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then
           match of_line line with
           | Ok r -> records := r :: !records
           | Error _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !records
end

(* --- registry ------------------------------------------------------------- *)

type span = {
  sp_name : string;
  sp_id : int;
  sp_parent : int;
  sp_start : float;
  mutable sp_attrs : attr list;
  mutable sp_open : bool;
}

type t = {
  on : bool ref;
  clock : unit -> float;
  mutable t0 : float;
  (* Guards the instrument tables, sink list, span ids and the span stack;
     individual instruments carry their own synchronisation. *)
  lock : Mutex.t;
  counters : (string, Counter.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  mutable sinks : (record -> unit) list;
  mutable next_id : int;
  mutable stack : int list;  (* open span ids, innermost first *)
}

let monotonic_clock () =
  (* gettimeofday can step backwards under NTP adjustment; never let the
     trace see time run in reverse. *)
  let last = ref (Unix.gettimeofday ()) in
  fun () ->
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

let create ?clock ?(enabled = true) () =
  let clock = match clock with Some c -> c | None -> monotonic_clock () in
  { on = ref enabled;
    clock;
    t0 = clock ();
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    sinks = [];
    next_id = 0;
    stack = [] }

let global = create ~enabled:false ()

let enabled t = !(t.on)
let enable t = t.on := true
let disable t = t.on := false
let now_s t = t.clock () -. t.t0

let reset t =
  (* Zero in place: instruments handed out to callers (hot-path counters are
     resolved once at module load) stay registered across resets. *)
  Mutex.lock t.lock;
  Hashtbl.iter (fun _ (c : Counter.t) -> Atomic.set c.Counter.value 0) t.counters;
  Hashtbl.iter (fun _ (g : Gauge.t) -> Atomic.set g.Gauge.value 0.0) t.gauges;
  Hashtbl.iter
    (fun _ (h : Histogram.t) ->
      Mutex.lock h.Histogram.lock;
      h.Histogram.len <- 0;
      Mutex.unlock h.Histogram.lock)
    t.histograms;
  t.sinks <- [];
  t.next_id <- 0;
  t.stack <- [];
  t.t0 <- t.clock ();
  Mutex.unlock t.lock

let find_or_add t tbl name make =
  Mutex.lock t.lock;
  let x =
    match Hashtbl.find_opt tbl name with
    | Some x -> x
    | None ->
      let x = make () in
      Hashtbl.replace tbl name x;
      x
  in
  Mutex.unlock t.lock;
  x

let counter t name =
  find_or_add t t.counters name
    (fun () -> { Counter.name; value = Atomic.make 0; on = t.on })

let gauge t name =
  find_or_add t t.gauges name
    (fun () -> { Gauge.name; value = Atomic.make 0.0; on = t.on })

let histogram t name =
  find_or_add t t.histograms name
    (fun () -> { Histogram.name; data = [||]; len = 0; lock = Mutex.create (); on = t.on })

let add_sink t f =
  Mutex.lock t.lock;
  t.sinks <- f :: t.sinks;
  Mutex.unlock t.lock

let emit t r =
  let sinks =
    Mutex.lock t.lock;
    let s = t.sinks in
    Mutex.unlock t.lock;
    s
  in
  List.iter (fun f -> f r) sinks

let event t ?(attrs = []) name =
  if !(t.on) then
    emit t
      { r_kind = Event; r_name = name; r_ts_s = now_s t; r_dur_ms = 0.0; r_id = 0;
        r_parent = 0; r_attrs = attrs }

let null_span = { sp_name = ""; sp_id = 0; sp_parent = 0; sp_start = 0.0; sp_attrs = []; sp_open = false }

let span_begin t ?(attrs = []) name =
  if not !(t.on) then null_span
  else begin
    let start = now_s t in
    Mutex.lock t.lock;
    t.next_id <- t.next_id + 1;
    let parent = match t.stack with [] -> 0 | id :: _ -> id in
    let sp =
      { sp_name = name; sp_id = t.next_id; sp_parent = parent; sp_start = start;
        sp_attrs = attrs; sp_open = true }
    in
    t.stack <- sp.sp_id :: t.stack;
    Mutex.unlock t.lock;
    sp
  end

let span_add_attrs sp attrs = if sp.sp_open then sp.sp_attrs <- sp.sp_attrs @ attrs

let span_end t ?(attrs = []) sp =
  if sp.sp_open then begin
    sp.sp_open <- false;
    sp.sp_attrs <- sp.sp_attrs @ attrs;
    (* Pop this span (and anything abandoned above it) off the stack. *)
    let rec pop = function
      | id :: rest when id = sp.sp_id -> rest
      | _ :: rest -> pop rest
      | [] -> []
    in
    Mutex.lock t.lock;
    t.stack <- pop t.stack;
    Mutex.unlock t.lock;
    let dur_ms = (now_s t -. sp.sp_start) *. 1000.0 in
    Histogram.observe (histogram t ("span." ^ sp.sp_name ^ ".ms")) dur_ms;
    emit t
      { r_kind = Span; r_name = sp.sp_name; r_ts_s = sp.sp_start; r_dur_ms = dur_ms;
        r_id = sp.sp_id; r_parent = sp.sp_parent; r_attrs = sp.sp_attrs }
  end

let with_span t ?attrs name f =
  let sp = span_begin t ?attrs name in
  match f () with
  | x ->
    span_end t sp;
    x
  | exception e ->
    span_end t sp ~attrs:[ ("error", Bool true) ];
    raise e

(* --- reporters ------------------------------------------------------------ *)

let jsonl_sink oc r =
  output_string oc (to_jsonl r);
  output_char oc '\n'

let human_sink oc r =
  (match r.r_kind with
  | Span -> Printf.fprintf oc "[%8.3fs] %-32s %8.3f ms" r.r_ts_s r.r_name r.r_dur_ms
  | Event -> Printf.fprintf oc "[%8.3fs] %-32s" r.r_ts_s r.r_name
  | Metric -> Printf.fprintf oc "[%8.3fs] metric %-25s" r.r_ts_s r.r_name);
  List.iter
    (fun (k, v) ->
      let s =
        match v with
        | Int i -> string_of_int i
        | Float f -> Printf.sprintf "%g" f
        | Str s -> s
        | Bool b -> string_of_bool b
      in
      Printf.fprintf oc " %s=%s" k s)
    r.r_attrs;
  output_char oc '\n'

let metric_records t =
  let ts = now_s t in
  let acc = ref [] in
  Mutex.lock t.lock;
  Hashtbl.iter
    (fun name (c : Counter.t) ->
      acc :=
        { r_kind = Metric; r_name = name; r_ts_s = ts; r_dur_ms = 0.0; r_id = 0; r_parent = 0;
          r_attrs = [ ("metric", Str "counter"); ("value", Int (Counter.value c)) ] }
        :: !acc)
    t.counters;
  Hashtbl.iter
    (fun name (g : Gauge.t) ->
      acc :=
        { r_kind = Metric; r_name = name; r_ts_s = ts; r_dur_ms = 0.0; r_id = 0; r_parent = 0;
          r_attrs = [ ("metric", Str "gauge"); ("value", Float (Gauge.value g)) ] }
        :: !acc)
    t.gauges;
  Hashtbl.iter
    (fun name h ->
      if Histogram.count h > 0 then
        acc :=
          { r_kind = Metric; r_name = name; r_ts_s = ts; r_dur_ms = 0.0; r_id = 0; r_parent = 0;
            r_attrs =
              [ ("metric", Str "histogram"); ("count", Int (Histogram.count h));
                ("mean", Float (Histogram.mean h)); ("p50", Float (Histogram.p50 h));
                ("p95", Float (Histogram.p95 h)); ("p99", Float (Histogram.p99 h)) ] }
          :: !acc)
    t.histograms;
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare a.r_name b.r_name) !acc

let flush_metrics t = if !(t.on) then List.iter (emit t) (metric_records t)

let report t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "telemetry metrics\n";
  List.iter
    (fun r ->
      match List.assoc_opt "metric" r.r_attrs with
      | Some (Str "counter") ->
        Buffer.add_string buf
          (Printf.sprintf "  counter    %-36s %d\n" r.r_name
             (Option.value ~default:0 (attr_int r.r_attrs "value")))
      | Some (Str "gauge") ->
        Buffer.add_string buf
          (Printf.sprintf "  gauge      %-36s %g\n" r.r_name
             (Option.value ~default:0.0 (attr_float r.r_attrs "value")))
      | Some (Str "histogram") ->
        Buffer.add_string buf
          (Printf.sprintf "  histogram  %-36s n=%-6d mean=%-10.4g p50=%-10.4g p95=%-10.4g p99=%.4g\n"
             r.r_name
             (Option.value ~default:0 (attr_int r.r_attrs "count"))
             (Option.value ~default:0.0 (attr_float r.r_attrs "mean"))
             (Option.value ~default:0.0 (attr_float r.r_attrs "p50"))
             (Option.value ~default:0.0 (attr_float r.r_attrs "p95"))
             (Option.value ~default:0.0 (attr_float r.r_attrs "p99")))
      | _ -> ())
    (metric_records t);
  Buffer.contents buf
