(** Dependency-light tracing and metrics for the tuning pipeline.

    A registry owns named counters, gauges and latency histograms plus a
    wall-clock span stack. Closed spans, instant events and flushed metric
    snapshots stream to attached sinks as {!record} values; {!jsonl_sink}
    writes them one JSON object per line (the [--trace] format of the CLI,
    parsed back by {!Trace}).

    Library code instruments against {!global}, which starts {e disabled}:
    every operation on a disabled registry is a no-op costing one boolean
    load, so the instrumented hot paths (simulator measurements, feature
    evaluation, cost-model forwards) are unaffected unless a front end
    enables collection. *)

(** Attribute values attached to spans, events and metric records. *)
type value = Int of int | Float of float | Str of string | Bool of bool

type attr = string * value

val attr_int : attr list -> string -> int option
val attr_float : attr list -> string -> float option
val attr_str : attr list -> string -> string option

(** The shared JSON type (defined in [lib/util]) specialised to the
    compact single-line rendering of the trace format. *)
module Json : sig
  type t = Json.t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Single-line rendering, strings escaped per RFC 8259. *)

  val parse : string -> (t, string) result
end

module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

(** Latency histogram retaining every observation; quantiles are computed
    on demand with linear interpolation between order statistics (the same
    convention as [Stats.percentile]). *)
module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  val quantile : t -> float -> float
  (** [quantile h p] for [p] in [0, 100]; 0 on an empty histogram. *)

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float
  val name : t -> string
end

(** {2 Trace records} *)

type kind = Span | Event | Metric

type record = {
  r_kind : kind;
  r_name : string;
  r_ts_s : float;  (** seconds since the registry's origin *)
  r_dur_ms : float;  (** 0 for events and metrics *)
  r_id : int;  (** span id; 0 when absent *)
  r_parent : int;  (** enclosing span id; 0 when absent *)
  r_attrs : attr list;
}

val to_jsonl : record -> string
(** One compact JSON object, no trailing newline. *)

module Trace : sig
  val of_line : string -> (record, string) result
  (** Parse one JSONL line back into a {!record}. *)

  val read_file : string -> record list
  (** All parseable records of a trace file, in file order; blank and
      malformed lines are skipped. *)
end

(** {2 Registry} *)

type t

val create : ?clock:(unit -> float) -> ?enabled:bool -> unit -> t
(** Fresh registry, enabled unless [~enabled:false]. [clock] defaults to a
    monotonic wrapper over wall-clock time; timestamps are reported
    relative to the registry's creation. *)

val global : t
(** The shared registry all library instrumentation records into. Starts
    disabled; front ends call [enable global] to turn collection on. *)

val enabled : t -> bool
val enable : t -> unit
val disable : t -> unit

val now_s : t -> float
(** Seconds since the registry's origin (its creation, or the last
    {!reset}). *)

val reset : t -> unit
(** Zero every instrument in place (identities handed out by {!counter}
    and friends stay registered), drop sinks and open spans, and restart
    the clock origin; the enabled flag is preserved. *)

val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t
(** Find-or-create by name. *)

val add_sink : t -> (record -> unit) -> unit
val jsonl_sink : out_channel -> record -> unit
val human_sink : out_channel -> record -> unit

(** {2 Spans and events} *)

type span

val span_begin : t -> ?attrs:attr list -> string -> span
(** Open a span; its parent is the innermost span currently open on this
    registry. On a disabled registry returns an inert span. *)

val span_add_attrs : span -> attr list -> unit

val span_end : t -> ?attrs:attr list -> span -> unit
(** Close the span: records its duration into the ["span.<name>.ms"]
    histogram and emits a {!record} to the sinks. Idempotent. *)

val with_span : t -> ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] wraps [f ()] in a span; exceptions close the span
    with an [error] attribute and re-raise. *)

val event : t -> ?attrs:attr list -> string -> unit
(** Instant (zero-duration) trace record. *)

(** {2 Metric snapshots} *)

val metric_records : t -> record list
(** Current counters, gauges and non-empty histograms (with p50/p95/p99)
    as {!Metric} records, sorted by name. *)

val flush_metrics : t -> unit
(** Emit {!metric_records} to the sinks (end-of-run summary lines). *)

val report : t -> string
(** Human-readable rendering of {!metric_records}. *)
