type rule = { name : string; apply : Expr.t -> Expr.t option }

let rule name apply = { name; apply }

let try_rules rules e fired =
  let rec go = function
    | [] -> e
    | r :: rest -> (
      match r.apply e with
      | Some e' when not (Expr.equal e' e) ->
        incr fired;
        e'
      | Some _ | None -> go rest)
  in
  go rules

let rewrite_once rules e =
  let fired = ref 0 in
  (* Memoised on node identity: a hash-consed term is a DAG, and a shared
     subterm rewrites to the same result every time (rules are pure), so it
     is walked once per pass. A memo hit does not re-count firings — the
     miss that populated it already did. *)
  let memo : Expr.t Expr.Memo.t = Expr.Memo.create () in
  let rec walk e =
    match Expr.Memo.find_opt memo e with
    | Some e' -> e'
    | None ->
      (* Rewrite children first, then the node itself (possibly repeatedly,
         since one firing can enable another at the same node). *)
      let e0 = Expr.map_children walk e in
      let rec stabilise e budget =
        if budget = 0 then e
        else
          let e' = try_rules rules e fired in
          if Expr.equal e' e then e else stabilise (Expr.map_children walk e') (budget - 1)
      in
      let e' = stabilise e0 8 in
      Expr.Memo.add memo e e';
      e'
  in
  let e' = walk e in
  (e', !fired)

let apply_fixpoint ?(max_iters = 64) rules e =
  let rec go e iters =
    if iters = 0 then e
    else
      let e', fired = rewrite_once rules e in
      if fired = 0 then e' else go e' (iters - 1)
  in
  go e max_iters

let count_firings rules e =
  let counts = Hashtbl.create 16 in
  let bump name =
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  let rec walk e =
    let e = Expr.map_children walk e in
    List.fold_left
      (fun e r ->
        match r.apply e with
        | Some e' when not (Expr.equal e' e) ->
          bump r.name;
          e'
        | Some _ | None -> e)
      e rules
  in
  ignore (walk e);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
