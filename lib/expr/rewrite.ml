type head =
  | Hconst
  | Hvar
  | Hbinop of Expr.binop
  | Hunop of Expr.unop
  | Hselect

type rule = {
  name : string;
  heads : head list option;  (* None = may fire on any head *)
  apply : Expr.t -> Expr.t option;
}

let rule ?heads name apply = { name; heads; apply }

(* --- head-constructor rule index -------------------------------------------

   A rule whose [heads] exclude a node's top constructor can only return
   [None] (or an equal term) on it, so skipping it is observationally
   identical to trying it. The index keeps, per head, the applicable rules
   in their original list order — the first-firing-rule tie-break is
   therefore exactly that of a naive linear scan. *)

let all_binops = [| Expr.Add; Sub; Mul; Div; Pow; Min; Max |]
let all_unops = [| Expr.Neg; Log; Exp; Sqrt; Abs |]

let bin_tag : Expr.binop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Pow -> 4 | Min -> 5 | Max -> 6

let un_tag : Expr.unop -> int = function
  | Neg -> 0 | Log -> 1 | Exp -> 2 | Sqrt -> 3 | Abs -> 4

type index = {
  ix_const : rule array;
  ix_var : rule array;
  ix_bin : rule array array;  (* by bin_tag *)
  ix_un : rule array array;  (* by un_tag *)
  ix_select : rule array;
}

let index_of_rules rules =
  let covers h r =
    match r.heads with None -> true | Some hs -> List.mem h hs
  in
  let bucket h = Array.of_list (List.filter (covers h) rules) in
  { ix_const = bucket Hconst;
    ix_var = bucket Hvar;
    ix_bin = Array.map (fun op -> bucket (Hbinop op)) all_binops;
    ix_un = Array.map (fun op -> bucket (Hunop op)) all_unops;
    ix_select = bucket Hselect }

let rules_for ix (e : Expr.t) =
  match e with
  | Const _ -> ix.ix_const
  | Var _ -> ix.ix_var
  | Binop (op, _, _) -> ix.ix_bin.(bin_tag op)
  | Unop (op, _) -> ix.ix_un.(un_tag op)
  | Select _ -> ix.ix_select

(* First rule (in list order) that produces a different term wins; the new
   term is re-dispatched by its own head on the next round. *)
let try_rules_indexed ix e fired =
  let rs = rules_for ix e in
  let n = Array.length rs in
  let rec go i =
    if i = n then e
    else
      match (Array.unsafe_get rs i).apply e with
      | Some e' when not (Expr.equal e' e) ->
        incr fired;
        e'
      | Some _ | None -> go (i + 1)
  in
  go 0

(* --- memoised fixpoint ------------------------------------------------------

   [normalize] drives the fixpoint off hash-consed node ids: the memo maps
   a node to its normal form under the rule set, and a normal form is
   registered as its own image, so shared subterms — and subterms already
   normalised by an earlier call through the same [compiled] handle — are
   skipped in O(1). The strategy is the same innermost one the historical
   pass loop converged to (children first, then the root repeatedly, the
   per-root budget matching the old 8-per-pass x 64-pass fuel), so the
   normal forms are identical; [apply_fixpoint_naive] keeps the historical
   pass loop alive for the equivalence tests. *)

type compiled = {
  c_index : index;
  c_memo : Expr.t Expr.Memo.t Domain.DLS.key;  (* per-domain persistent memo *)
  c_cap : int;
}

let compile ?(memo_cap = 8192) rules =
  { c_index = index_of_rules rules;
    c_memo = Domain.DLS.new_key (fun () -> Expr.Memo.create ~size:256 ());
    c_cap = memo_cap }

let root_budget max_iters = 8 * max_iters

let normalize_with ~memo ~index ~budget e0 =
  let fired = ref 0 in
  let rec norm e =
    match Expr.Memo.find_opt memo e with
    | Some r -> r
    | None ->
      let e1 = Expr.map_children norm e in
      let rec stabilise e n =
        if n = 0 then e
        else
          let e' = try_rules_indexed index e fired in
          if Expr.equal e' e then e
          else stabilise (Expr.map_children norm e') (n - 1)
      in
      let r = stabilise e1 budget in
      Expr.Memo.add memo e r;
      if not (Expr.equal r e) then Expr.Memo.add memo r r;
      r
  in
  let r = norm e0 in
  (r, !fired)

let normalize ?(max_iters = 64) c e =
  match e with
  | Expr.Const _ | Expr.Var _ -> e
  | Expr.Binop _ | Expr.Unop _ | Expr.Select _ ->
    let memo = Domain.DLS.get c.c_memo in
    if Expr.Memo.length memo >= c.c_cap then Expr.Memo.clear memo;
    fst (normalize_with ~memo ~index:c.c_index ~budget:(root_budget max_iters) e)

let clear_memo c = Expr.Memo.clear (Domain.DLS.get c.c_memo)

let apply_fixpoint ?(max_iters = 64) rules e =
  match e with
  | Expr.Const _ | Expr.Var _ -> e
  | Expr.Binop _ | Expr.Unop _ | Expr.Select _ ->
    let memo : Expr.t Expr.Memo.t = Expr.Memo.create () in
    fst
      (normalize_with ~memo ~index:(index_of_rules rules)
         ~budget:(root_budget max_iters) e)

(* --- historical implementation ---------------------------------------------

   The pre-index, pass-based engine: every rule tried at every node, a
   fresh walk per pass, whole-tree passes iterated until no rule fires.
   Kept verbatim as the reference the property tests compare the indexed,
   memoised engine against (same normal forms, bit for bit). *)

let try_rules rules e fired =
  let rec go = function
    | [] -> e
    | r :: rest -> (
      match r.apply e with
      | Some e' when not (Expr.equal e' e) ->
        incr fired;
        e'
      | Some _ | None -> go rest)
  in
  go rules

let rewrite_once rules e =
  let fired = ref 0 in
  (* Memoised on node identity: a hash-consed term is a DAG, and a shared
     subterm rewrites to the same result every time (rules are pure), so it
     is walked once per pass. A memo hit does not re-count firings — the
     miss that populated it already did. *)
  let memo : Expr.t Expr.Memo.t = Expr.Memo.create () in
  let rec walk e =
    match Expr.Memo.find_opt memo e with
    | Some e' -> e'
    | None ->
      (* Rewrite children first, then the node itself (possibly repeatedly,
         since one firing can enable another at the same node). *)
      let e0 = Expr.map_children walk e in
      let rec stabilise e budget =
        if budget = 0 then e
        else
          let e' = try_rules rules e fired in
          if Expr.equal e' e then e else stabilise (Expr.map_children walk e') (budget - 1)
      in
      let e' = stabilise e0 8 in
      Expr.Memo.add memo e e';
      e'
  in
  let e' = walk e in
  (e', !fired)

let apply_fixpoint_naive ?(max_iters = 64) rules e =
  let rec go e iters =
    if iters = 0 then e
    else
      let e', fired = rewrite_once rules e in
      if fired = 0 then e' else go e' (iters - 1)
  in
  go e max_iters

let count_firings rules e =
  let counts = Hashtbl.create 16 in
  let bump name =
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  in
  let rec walk e =
    let e = Expr.map_children walk e in
    List.fold_left
      (fun e r ->
        match r.apply e with
        | Some e' when not (Expr.equal e' e) ->
          bump r.name;
          e'
        | Some _ | None -> e)
      e rules
  in
  ignore (walk e);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
