(* The memo is shared across domains (schedule rounding runs inside
   Runtime.parallel_map workers), so reads and writes are mutex-guarded;
   a miss computes outside the lock — divisor lists are deterministic, so a
   racing double-compute just stores the same value twice. *)
let memo : (int, int list) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()

let divisors n =
  if n < 1 then invalid_arg "Factorize.divisors: n must be >= 1";
  let cached =
    Mutex.lock memo_lock;
    let r = Hashtbl.find_opt memo n in
    Mutex.unlock memo_lock;
    r
  in
  match cached with
  | Some ds -> ds
  | None ->
    let small = ref [] and large = ref [] in
    let i = ref 1 in
    while !i * !i <= n do
      if n mod !i = 0 then begin
        small := !i :: !small;
        if !i <> n / !i then large := (n / !i) :: !large
      end;
      incr i
    done;
    let ds = List.rev_append !small !large in
    Mutex.lock memo_lock;
    Hashtbl.replace memo n ds;
    Mutex.unlock memo_lock;
    ds

let is_divisor d n = d > 0 && n mod d = 0

let nearest_divisor n x =
  if x <= 0.0 then List.hd (divisors n)
  else
    let lx = log x in
    Stats.argmin (fun d -> Float.abs (log (float_of_int d) -. lx)) (divisors n)

let round_log_to_divisor n y = log (float_of_int (nearest_divisor n (exp y)))

let rec split rng n k =
  if k <= 0 then invalid_arg "Factorize.split: k must be >= 1";
  if k = 1 then [ n ]
  else begin
    let d = Rng.choose_list rng (divisors n) in
    d :: split rng (n / d) (k - 1)
  end

let rec num_splits n k =
  if k <= 1 then 1
  else List.fold_left (fun acc d -> acc + num_splits (n / d) (k - 1)) 0 (divisors n)
