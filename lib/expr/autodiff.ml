open Expr

(* [open Expr] shadows the integer operators with expression builders;
   restore the integer ones for loop/index arithmetic below. *)
let ( - ) = Stdlib.( - )

(* --- symbolic differentiation -------------------------------------------- *)

let diff (e : Expr.t) (x : string) : Expr.t =
  (* Memoised per call on node identity: hash-consed expressions are DAGs,
     and a shared subterm has one derivative, not one per occurrence. *)
  let memo : Expr.t Expr.Memo.t = Expr.Memo.create () in
  let rec go (e : Expr.t) : Expr.t =
    match Expr.Memo.find_opt memo e with
    | Some d -> d
    | None ->
      let d =
        match e with
        | Const _ -> zero
        | Var v -> if String.equal v x then one else zero
        | Binop (Add, a, b) -> add (go a) (go b)
        | Binop (Sub, a, b) -> sub (go a) (go b)
        | Binop (Mul, a, b) -> add (mul (go a) b) (mul a (go b))
        | Binop (Div, a, b) -> div (sub (mul (go a) b) (mul a (go b))) (mul b b)
        | Binop (Pow, a, b) ->
          (* d(a^b) = a^b * (b' ln a + b a'/a); specialise constant exponents to
             avoid introducing log of possibly-negative bases. *)
          let da = go a and db = go b in
          if equal db zero then mul (mul b (pow a (sub b one))) da
          else mul (pow a b) (add (mul db (log_ a)) (div (mul b da) a))
        | Binop (Min, a, b) -> select (le a b) (go a) (go b)
        | Binop (Max, a, b) -> select (ge a b) (go a) (go b)
        | Unop (Neg, a) -> neg (go a)
        | Unop (Log, a) -> div (go a) a
        | Unop (Exp, a) -> mul (exp_ a) (go a)
        | Unop (Sqrt, a) -> div (go a) (mul (const 2.0) (sqrt_ a))
        | Unop (Abs, a) -> mul (select (ge a zero) one (const (-1.0))) (go a)
        | Select (c, a, b) -> select c (go a) (go b)
      in
      Expr.Memo.add memo e d;
      d
  in
  go e

let gradient e = List.map (fun v -> (v, Simplify.simplify (diff e v))) (vars e)

(* --- compiled tapes ------------------------------------------------------- *)

module Tape = struct
  type instr =
    | Iconst of float
    | Iinput of int
    | Ibin of binop * int * int
    | Iun of unop * int
    | Isel of cmpop * int * int * int * int  (* lhs, rhs, then, else *)

  type t = {
    instrs : instr array;
    outputs : int array;  (* slot of each output *)
    n_inputs : int;
  }

  let num_inputs t = t.n_inputs
  let num_outputs t = Array.length t.outputs
  let length t = Array.length t.instrs

  (* Flatten boolean connectives so only Cmp conditions reach the tape.
     Memoised per call so shared subtrees are flattened once. *)
  let flatten_selects (e : Expr.t) : Expr.t =
    let memo : Expr.t Expr.Memo.t = Expr.Memo.create () in
    let rec fs (e : Expr.t) : Expr.t =
      match e with
      | Const _ | Var _ -> e
      | Binop _ | Unop _ | Select _ -> (
        match Expr.Memo.find_opt memo e with
        | Some e' -> e'
        | None ->
          let e' =
            let e = map_children fs e in
            match e with
            | Select (And (c1, c2), a, b) -> fs (select c1 (select c2 a b) b)
            | Select (Or (c1, c2), a, b) -> fs (select c1 a (select c2 a b))
            | Select (Not c, a, b) -> fs (select c b a)
            | Select (Bconst true, a, _) -> a
            | Select (Bconst false, _, b) -> b
            | _ -> e
          in
          Expr.Memo.add memo e e';
          e')
    in
    fs e

  (* --- post-compile optimiser ---------------------------------------------

     Every rewrite below is bit-exact for BOTH the forward values and the
     reverse-mode adjoints: the tuner's contract is that an optimised tape
     produces bitwise-identical results, so only transformations that
     provably preserve IEEE-754 semantics and the adjoint accumulation
     order are applied. Three families qualify:

     - constant folding of instructions whose operands are all constants
       (the fold performs the very float op the tape would have), plus
       constant-condition / equal-branch select resolution;
     - duplicate-constant merging, keyed by bit pattern so 0.0 and -0.0
       (or distinct NaNs) are never conflated;
     - copy propagation for identities that are bit-exact as values
       (x*1, 1*x, x/1, x - (+0.0), min/max(x,x), select with equal
       branches, -(-x)) — applied only when the copied-from slot has no
       other consumer, because redirecting a consumer of a multiply-used
       slot would reorder the (non-associative) float additions of the
       adjoint sweep. Note x+0.0 is NOT rewritten: (-0.0)+0.0 = +0.0 ≠ -0.0.

     Dead slots (never referenced by a live instruction or an output) carry
     zero adjoint and are skipped by the backward guard, so removing and
     renumbering them is exact; the forward order of surviving slots is
     preserved. *)

  type opt_report = {
    slots_pre : int;
    slots_post : int;
    folded : int;  (* instructions that became constants *)
    aliased : int;  (* copy-like instructions redirected to their source *)
    dead : int;  (* slots removed by dead-code elimination *)
  }

  let optimize_report t =
    let n = Array.length t.instrs in
    let instrs = Array.copy t.instrs in
    (* alias.(i) = the (earlier, already-final) slot standing in for i *)
    let alias = Array.init n (fun i -> i) in
    let resolve s = alias.(s) in
    (* Reference counts (operand uses + output uses), kept current as
       rewrites fire so the single-consumer guard stays sound. *)
    let uses = Array.make n 0 in
    let count s = uses.(s) <- Stdlib.( + ) uses.(s) 1 in
    let drop s = uses.(s) <- uses.(s) - 1 in
    Array.iter
      (function
        | Iconst _ | Iinput _ -> ()
        | Ibin (_, a, b) ->
          count a;
          count b
        | Iun (_, a) -> count a
        | Isel (_, l, r, a, b) ->
          count l;
          count r;
          count a;
          count b)
      instrs;
    Array.iter count t.outputs;
    let folded = ref 0 and aliased = ref 0 in
    let const_of s = match instrs.(s) with Iconst c -> Some c | _ -> None in
    let is_one s = match const_of s with Some c -> c = 1.0 | None -> false in
    let is_pzero s =
      match const_of s with Some c -> Int64.equal (Int64.bits_of_float c) 0L | None -> false
    in
    let const_slots : (int64, int) Hashtbl.t = Hashtbl.create 32 in
    (* Slot [i] computes bit-exactly vals.(s) with [refs] operand references
       to [s]; [extra] are i's other operands, dropped if the rewrite fires.
       A constant source is always materialised in place; a computed source
       is only aliased when [i] holds its every reference (see above). *)
    let copy_of i s ~refs ~extra =
      match instrs.(s) with
      | Iconst c ->
        instrs.(i) <- Iconst c;
        uses.(s) <- uses.(s) - refs;
        List.iter drop extra;
        incr folded
      | Iinput _ | Ibin _ | Iun _ | Isel _ ->
        if uses.(s) = refs then begin
          alias.(i) <- s;
          uses.(s) <- uses.(i);
          uses.(i) <- 0;
          List.iter drop extra;
          incr aliased
        end
    in
    for i = 0 to n - 1 do
      (match instrs.(i) with
      | Iconst _ | Iinput _ -> ()
      | Ibin (op, a, b) -> instrs.(i) <- Ibin (op, resolve a, resolve b)
      | Iun (op, a) -> instrs.(i) <- Iun (op, resolve a)
      | Isel (op, l, r, a, b) ->
        instrs.(i) <- Isel (op, resolve l, resolve r, resolve a, resolve b));
      (match instrs.(i) with
      | Ibin (op, a, b) -> (
        match (const_of a, const_of b) with
        | Some x, Some y ->
          instrs.(i) <- Iconst (apply_binop op x y);
          drop a;
          drop b;
          incr folded
        | _ -> ())
      | Iun (op, a) -> (
        match const_of a with
        | Some x ->
          instrs.(i) <- Iconst (apply_unop op x);
          drop a;
          incr folded
        | None -> ())
      | Iconst _ | Iinput _ | Isel _ -> ());
      (match instrs.(i) with
      | Ibin (Mul, a, b) when is_one b -> copy_of i a ~refs:1 ~extra:[ b ]
      | Ibin (Mul, a, b) when is_one a -> copy_of i b ~refs:1 ~extra:[ a ]
      | Ibin (Div, a, b) when is_one b -> copy_of i a ~refs:1 ~extra:[ b ]
      | Ibin (Sub, a, b) when is_pzero b -> copy_of i a ~refs:1 ~extra:[ b ]
      | Ibin ((Min | Max), a, b) when a = b -> copy_of i a ~refs:2 ~extra:[]
      | Isel (_, l, r, a, b) when a = b -> copy_of i a ~refs:2 ~extra:[ l; r ]
      | Isel (op, l, r, a, b) -> (
        match (const_of l, const_of r) with
        | Some x, Some y ->
          let taken, untaken = if apply_cmpop op x y then (a, b) else (b, a) in
          copy_of i taken ~refs:1 ~extra:[ l; r; untaken ]
        | _ -> ())
      | Iun (Neg, a) -> (
        match instrs.(a) with
        | Iun (Neg, x) when uses.(a) = 1 && uses.(x) = 1 ->
          (* -(-x) = x bitwise (two sign flips); with both intermediate
             slots single-use the adjoint reaching x is 0-(0-T) = T. *)
          alias.(i) <- x;
          uses.(x) <- uses.(i);
          uses.(i) <- 0;
          uses.(a) <- 0;
          incr aliased
        | _ -> ())
      | Iconst _ | Iinput _ | Ibin _ | Iun _ -> ());
      (* Duplicate constants merge by bit pattern. *)
      match instrs.(i) with
      | Iconst c when alias.(i) = i -> (
        let bits = Int64.bits_of_float c in
        match Hashtbl.find_opt const_slots bits with
        | Some s when s <> i ->
          alias.(i) <- s;
          uses.(s) <- Stdlib.( + ) uses.(s) uses.(i);
          uses.(i) <- 0;
          incr aliased
        | Some _ -> ()
        | None -> Hashtbl.replace const_slots bits i)
      | _ -> ()
    done;
    (* Liveness from the (resolved) outputs, then renumber. *)
    let live = Array.make n false in
    let rec mark s =
      if not live.(s) then begin
        live.(s) <- true;
        match instrs.(s) with
        | Iconst _ | Iinput _ -> ()
        | Ibin (_, a, b) ->
          mark a;
          mark b
        | Iun (_, a) -> mark a
        | Isel (_, l, r, a, b) ->
          mark l;
          mark r;
          mark a;
          mark b
      end
    in
    Array.iter (fun o -> mark (resolve o)) t.outputs;
    let remap = Array.make n (-1) in
    let n_live = ref 0 in
    for i = 0 to n - 1 do
      if live.(i) then begin
        remap.(i) <- !n_live;
        incr n_live
      end
    done;
    let new_instrs = Array.make !n_live (Iconst 0.0) in
    for i = 0 to n - 1 do
      if live.(i) then
        new_instrs.(remap.(i)) <-
          (match instrs.(i) with
          | (Iconst _ | Iinput _) as ins -> ins
          | Ibin (op, a, b) -> Ibin (op, remap.(a), remap.(b))
          | Iun (op, a) -> Iun (op, remap.(a))
          | Isel (op, l, r, a, b) -> Isel (op, remap.(l), remap.(r), remap.(a), remap.(b)))
    done;
    let outputs = Array.map (fun o -> remap.(resolve o)) t.outputs in
    ( { instrs = new_instrs; outputs; n_inputs = t.n_inputs },
      { slots_pre = n;
        slots_post = !n_live;
        folded = !folded;
        aliased = !aliased;
        dead = n - !n_live
      } )

  let optimize t = fst (optimize_report t)

  let compile ?(optimize = true) ~inputs exprs =
    let exprs = List.map flatten_selects exprs in
    let input_index = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace input_index v i) inputs;
    let instrs = ref [] in
    let n = ref 0 in
    (* CSE: identical instructions (same op, same child slots) share a slot. *)
    let cse : (instr, int) Hashtbl.t = Hashtbl.create 256 in
    let emit instr =
      match Hashtbl.find_opt cse instr with
      | Some slot -> slot
      | None ->
        let slot = !n in
        incr n;
        instrs := instr :: !instrs;
        Hashtbl.replace cse instr slot;
        slot
    in
    (* Memoised on node identity: revisiting a shared subterm of a
       hash-consed DAG is O(1) instead of a re-walk (the CSE table would
       dedupe the instructions anyway, so the emitted tape is unchanged). *)
    let memo : int Expr.Memo.t = Expr.Memo.create ~size:256 () in
    let rec go (e : Expr.t) : int =
      match e with
      | Const c -> emit (Iconst c)
      | Var v -> (
        match Hashtbl.find_opt input_index v with
        | Some i -> emit (Iinput i)
        | None -> invalid_arg (Printf.sprintf "Tape.compile: unbound variable %s" v))
      | Binop _ | Unop _ | Select _ -> (
        match Expr.Memo.find_opt memo e with
        | Some slot -> slot
        | None ->
          let slot =
            match e with
            | Binop (op, a, b) ->
              let sa = go a in
              let sb = go b in
              emit (Ibin (op, sa, sb))
            | Unop (op, a) ->
              let sa = go a in
              emit (Iun (op, sa))
            | Select (Cmp (op, l, r), a, b) ->
              let sl = go l in
              let sr = go r in
              let sa = go a in
              let sb = go b in
              emit (Isel (op, sl, sr, sa, sb))
            | Select ((And _ | Or _ | Not _ | Bconst _), _, _) ->
              (* flatten_selects removed these *)
              assert false
            | Const _ | Var _ -> assert false
          in
          Expr.Memo.add memo e slot;
          slot)
    in
    let outputs = Array.of_list (List.map go exprs) in
    let t = { instrs = Array.of_list (List.rev !instrs); outputs; n_inputs = List.length inputs } in
    if optimize then fst (optimize_report t) else t

  (* --- bit-exact serialization ---------------------------------------------

     The persistent pack cache stores compiled tapes on disk. Constants
     cross as 16-hex-char IEEE-754 bit strings (the [Store.Bits]
     convention), so a loaded tape evaluates bitwise-identically to the
     one that was saved — including signed zeros and NaN payloads, which
     decimal text would destroy. [of_json] validates the topological
     order (an instruction only references earlier slots) and every index
     range, so a corrupt cache entry yields [None], never a crash. *)

  let bin_name = function
    | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
    | Pow -> "pow" | Min -> "min" | Max -> "max"

  let bin_of_name = function
    | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
    | "div" -> Some Div | "pow" -> Some Pow | "min" -> Some Min
    | "max" -> Some Max | _ -> None

  let un_name = function
    | Neg -> "neg" | Log -> "log" | Exp -> "exp" | Sqrt -> "sqrt" | Abs -> "abs"

  let un_of_name = function
    | "neg" -> Some Neg | "log" -> Some Log | "exp" -> Some Exp
    | "sqrt" -> Some Sqrt | "abs" -> Some Abs | _ -> None

  let cmp_name = function
    | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge" | Eq -> "eq" | Ne -> "ne"

  let cmp_of_name = function
    | "lt" -> Some Lt | "le" -> Some Le | "gt" -> Some Gt
    | "ge" -> Some Ge | "eq" -> Some Eq | "ne" -> Some Ne | _ -> None

  let float_bits f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

  let float_of_bits s =
    if String.length s <> 16 then None
    else
      match Int64.of_string ("0x" ^ s) with
      | bits -> Some (Int64.float_of_bits bits)
      | exception _ -> None

  let to_json t =
    let num i = Json.Num (float_of_int i) in
    let instr_json = function
      | Iconst c -> Json.List [ Json.Str "c"; Json.Str (float_bits c) ]
      | Iinput k -> Json.List [ Json.Str "i"; num k ]
      | Ibin (op, a, b) -> Json.List [ Json.Str "b"; Json.Str (bin_name op); num a; num b ]
      | Iun (op, a) -> Json.List [ Json.Str "u"; Json.Str (un_name op); num a ]
      | Isel (op, l, r, a, b) ->
        Json.List [ Json.Str "s"; Json.Str (cmp_name op); num l; num r; num a; num b ]
    in
    Json.Obj
      [ ("n_inputs", num t.n_inputs);
        ("outputs", Json.List (Array.to_list (Array.map num t.outputs)));
        ("instrs", Json.List (Array.to_list (Array.map instr_json t.instrs))) ]

  let of_json j =
    let ( let* ) = Option.bind in
    let* n_inputs = Option.bind (Json.find j "n_inputs") Json.as_int in
    let* outputs_j = Option.bind (Json.find j "outputs") Json.as_list in
    let* instrs_j = Option.bind (Json.find j "instrs") Json.as_list in
    if n_inputs < 0 then None
    else
      let n = List.length instrs_j in
      (* [slot i lim] accepts only references to already-defined slots, so
         a decoded tape is topologically ordered by construction. *)
      let slot lim v =
        match Json.as_int v with
        | Some s when s >= 0 && s < lim -> Some s
        | Some _ | None -> None
      in
      let instr_of i = function
        | Json.List [ Json.Str "c"; Json.Str bits ] ->
          let* c = float_of_bits bits in
          Some (Iconst c)
        | Json.List [ Json.Str "i"; k ] ->
          let* k = slot n_inputs k in
          Some (Iinput k)
        | Json.List [ Json.Str "b"; Json.Str op; a; b ] ->
          let* op = bin_of_name op in
          let* a = slot i a in
          let* b = slot i b in
          Some (Ibin (op, a, b))
        | Json.List [ Json.Str "u"; Json.Str op; a ] ->
          let* op = un_of_name op in
          let* a = slot i a in
          Some (Iun (op, a))
        | Json.List [ Json.Str "s"; Json.Str op; l; r; a; b ] ->
          let* op = cmp_of_name op in
          let* l = slot i l in
          let* r = slot i r in
          let* a = slot i a in
          let* b = slot i b in
          Some (Isel (op, l, r, a, b))
        | _ -> None
      in
      let* instrs =
        let i = ref 0 in
        List.fold_left
          (fun acc ij ->
            let* acc = acc in
            let* ins = instr_of !i ij in
            incr i;
            Some (ins :: acc))
          (Some []) instrs_j
        |> Option.map (fun l -> Array.of_list (List.rev l))
      in
      let* outputs =
        List.fold_left
          (fun acc oj ->
            let* acc = acc in
            let* s = slot n oj in
            Some (s :: acc))
          (Some []) outputs_j
        |> Option.map (fun l -> Array.of_list (List.rev l))
      in
      Some { instrs; outputs; n_inputs }

  let forward t xs vals =
    let n = Array.length t.instrs in
    for i = 0 to n - 1 do
      vals.(i) <-
        (* [apply_binop]/[apply_unop] are spelled out inline: the function
           call would box its float result on every instruction, and this
           sweep must stay allocation-free (externals like [log]/[exp] are
           [@@unboxed], so only [Float.min]/[Float.max] still call out). *)
        (match t.instrs.(i) with
        | Iconst c -> c
        | Iinput k -> xs.(k)
        | Ibin (op, a, b) -> (
          let va = vals.(a) and vb = vals.(b) in
          match op with
          | Add -> va +. vb
          | Sub -> va -. vb
          | Mul -> va *. vb
          | Div -> va /. vb
          | Pow -> va ** vb
          | Min -> Float.min va vb
          | Max -> Float.max va vb)
        | Iun (op, a) -> (
          let va = vals.(a) in
          match op with
          | Neg -> -.va
          | Log -> log va
          | Exp -> exp va
          | Sqrt -> sqrt va
          | Abs -> Float.abs va)
        | Isel (op, l, r, a, b) ->
          if apply_cmpop op vals.(l) vals.(r) then vals.(a) else vals.(b))
    done

  let eval t xs =
    if Array.length xs <> t.n_inputs then invalid_arg "Tape.eval: input arity mismatch";
    let vals = Array.make (max 1 (Array.length t.instrs)) 0.0 in
    forward t xs vals;
    Array.map (fun slot -> vals.(slot)) t.outputs

  let backward t vals adj grad =
    Array.fill grad 0 (Array.length grad) 0.0;
    for i = Array.length t.instrs - 1 downto 0 do
      let a = adj.(i) in
      if a <> 0.0 then begin
        match t.instrs.(i) with
        | Iconst _ -> ()
        | Iinput k -> grad.(k) <- grad.(k) +. a
        | Ibin (op, ia, ib) -> (
          let va = vals.(ia) and vb = vals.(ib) in
          match op with
          | Add ->
            adj.(ia) <- adj.(ia) +. a;
            adj.(ib) <- adj.(ib) +. a
          | Sub ->
            adj.(ia) <- adj.(ia) +. a;
            adj.(ib) <- adj.(ib) -. a
          | Mul ->
            adj.(ia) <- adj.(ia) +. (a *. vb);
            adj.(ib) <- adj.(ib) +. (a *. va)
          | Div ->
            adj.(ia) <- adj.(ia) +. (a /. vb);
            adj.(ib) <- adj.(ib) -. (a *. va /. (vb *. vb))
          | Pow ->
            let v = vals.(i) in
            (* d/da = b * a^(b-1); d/db = a^b * ln a (only when a > 0) *)
            if va <> 0.0 then adj.(ia) <- adj.(ia) +. (a *. vb *. v /. va)
            else adj.(ia) <- adj.(ia) +. (a *. vb *. (va ** (vb -. 1.0)));
            if va > 0.0 then adj.(ib) <- adj.(ib) +. (a *. v *. log va)
          | Min -> if va <= vb then adj.(ia) <- adj.(ia) +. a else adj.(ib) <- adj.(ib) +. a
          | Max -> if va >= vb then adj.(ia) <- adj.(ia) +. a else adj.(ib) <- adj.(ib) +. a)
        | Iun (op, ia) -> (
          let va = vals.(ia) in
          match op with
          | Neg -> adj.(ia) <- adj.(ia) -. a
          | Log -> adj.(ia) <- adj.(ia) +. (a /. va)
          | Exp -> adj.(ia) <- adj.(ia) +. (a *. vals.(i))
          | Sqrt -> adj.(ia) <- adj.(ia) +. (a /. (2.0 *. vals.(i)))
          | Abs -> adj.(ia) <- adj.(ia) +. (if va >= 0.0 then a else -.a))
        | Isel (op, l, r, ia, ib) ->
          if apply_cmpop op vals.(l) vals.(r) then adj.(ia) <- adj.(ia) +. a
          else adj.(ib) <- adj.(ib) +. a
      end
    done

  (* --- caller-owned workspaces ---------------------------------------------

     A workspace owns the value, adjoint and output buffers one
     forward/backward sweep needs; reusing it across calls removes every
     per-call allocation from the descent inner loop. Buffers are fully
     (re)written before being read — vals in forward slot order, adj by the
     zero-fill in [backward_into] — so results never depend on what a
     previous call left behind. *)

  type workspace = { w_vals : float array; w_adj : float array; w_out : float array }

  let workspace t =
    let n = max 1 (Array.length t.instrs) in
    { w_vals = Array.make n 0.0;
      w_adj = Array.make n 0.0;
      w_out = Array.make (Array.length t.outputs) 0.0
    }

  let check_ws t ws name =
    if
      Array.length ws.w_vals <> max 1 (Array.length t.instrs)
      || Array.length ws.w_out <> Array.length t.outputs
    then invalid_arg (name ^ ": workspace does not match tape")

  let forward_into t ws xs =
    if Array.length xs <> t.n_inputs then
      invalid_arg "Tape.forward_into: input arity mismatch";
    check_ws t ws "Tape.forward_into";
    forward t xs ws.w_vals;
    let out = ws.w_out and vals = ws.w_vals in
    Array.iteri (fun k slot -> out.(k) <- vals.(slot)) t.outputs;
    out

  let backward_into t ws v grad =
    check_ws t ws "Tape.backward_into";
    if Array.length v <> Array.length t.outputs then
      invalid_arg "Tape.backward_into: adjoint arity mismatch";
    if Array.length grad <> t.n_inputs then
      invalid_arg "Tape.backward_into: gradient arity mismatch";
    let adj = ws.w_adj in
    Array.fill adj 0 (Array.length adj) 0.0;
    Array.iteri (fun k slot -> adj.(slot) <- adj.(slot) +. v.(k)) t.outputs;
    backward t ws.w_vals adj grad

  let eval_vjp_into t ws xs v grad =
    let out = forward_into t ws xs in
    backward_into t ws v grad;
    out

  let vjp t xs v =
    if Array.length xs <> t.n_inputs then invalid_arg "Tape.vjp: input arity mismatch";
    if Array.length v <> Array.length t.outputs then
      invalid_arg "Tape.vjp: adjoint arity mismatch";
    let ws = workspace t in
    let grad = Array.make t.n_inputs 0.0 in
    let out = eval_vjp_into t ws xs v grad in
    (Array.copy out, grad)

  let vjp_with t xs f =
    if Array.length xs <> t.n_inputs then invalid_arg "Tape.vjp_with: input arity mismatch";
    let ws = workspace t in
    let out = forward_into t ws xs in
    let v = f out in
    if Array.length v <> Array.length t.outputs then
      invalid_arg "Tape.vjp_with: adjoint arity mismatch";
    let grad = Array.make t.n_inputs 0.0 in
    backward_into t ws v grad;
    (Array.copy out, grad)

  (* --- batched (structure-of-arrays) workspaces -----------------------------

     One batch workspace evaluates the tape over up to [cap] points in
     lockstep. Values and adjoints are laid out slot-major —
     [b_vals.(slot * cap + lane)] — so one instruction's dispatch is paid
     once and its arithmetic runs over a contiguous strip of lanes;
     outputs are lane-major rows — [b_out.(lane * num_outputs + k)] — so a
     lane's output vector is contiguous for downstream consumers. Every
     lane executes exactly the scalar instruction sequence of [forward] /
     [backward] (including the zero-adjoint skip), so each lane's results
     are bitwise-identical to a scalar sweep over that lane alone. *)

  (* Index arithmetic below needs the integer operators back ([open Expr]
     rebinds them to expression builders). *)
  let ( + ) = Stdlib.( + )
  let ( * ) = Stdlib.( * )

  type batch_workspace = {
    b_cap : int;
    b_vals : float array;  (* n_slots * cap, slot-major *)
    b_adj : float array;  (* n_slots * cap, slot-major *)
    b_out : float array;  (* cap * n_outputs, lane-major *)
  }

  let batch_capacity bws = bws.b_cap

  let batch_workspace t ~batch =
    if batch < 1 then invalid_arg "Tape.batch_workspace: batch must be >= 1";
    let n = max 1 (Array.length t.instrs) in
    { b_cap = batch;
      b_vals = Array.make (n * batch) 0.0;
      b_adj = Array.make (n * batch) 0.0;
      b_out = Array.make (max 1 (Array.length t.outputs * batch)) 0.0
    }

  let check_bws t bws ~batch name =
    if batch < 1 || batch > bws.b_cap then invalid_arg (name ^ ": batch exceeds capacity");
    if Array.length bws.b_vals <> max 1 (Array.length t.instrs) * bws.b_cap then
      invalid_arg (name ^ ": workspace does not match tape")

  let forward_batch_into t bws ~batch xs =
    check_bws t bws ~batch "Tape.forward_batch_into";
    if Array.length xs < batch * t.n_inputs then
      invalid_arg "Tape.forward_batch_into: input arity mismatch";
    let cap = bws.b_cap in
    let vals = bws.b_vals in
    let ni = t.n_inputs in
    let n = Array.length t.instrs in
    for i = 0 to n - 1 do
      let base = i * cap in
      match Array.unsafe_get t.instrs i with
      | Iconst c ->
        for l = 0 to batch - 1 do
          Array.unsafe_set vals (base + l) c
        done
      | Iinput k ->
        for l = 0 to batch - 1 do
          Array.unsafe_set vals (base + l) (Array.unsafe_get xs ((l * ni) + k))
        done
      | Ibin (op, a, b) -> (
        let ab = a * cap and bb = b * cap in
        (* Op dispatch hoisted out of the lane loop; the per-lane float op
           is exactly the scalar [forward]'s, so each lane is bit-exact. *)
        match op with
        | Add ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l)
              (Array.unsafe_get vals (ab + l) +. Array.unsafe_get vals (bb + l))
          done
        | Sub ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l)
              (Array.unsafe_get vals (ab + l) -. Array.unsafe_get vals (bb + l))
          done
        | Mul ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l)
              (Array.unsafe_get vals (ab + l) *. Array.unsafe_get vals (bb + l))
          done
        | Div ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l)
              (Array.unsafe_get vals (ab + l) /. Array.unsafe_get vals (bb + l))
          done
        | Pow ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l)
              (Array.unsafe_get vals (ab + l) ** Array.unsafe_get vals (bb + l))
          done
        | Min ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l)
              (Float.min (Array.unsafe_get vals (ab + l)) (Array.unsafe_get vals (bb + l)))
          done
        | Max ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l)
              (Float.max (Array.unsafe_get vals (ab + l)) (Array.unsafe_get vals (bb + l)))
          done)
      | Iun (op, a) -> (
        let ab = a * cap in
        match op with
        | Neg ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l) (-.Array.unsafe_get vals (ab + l))
          done
        | Log ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l) (log (Array.unsafe_get vals (ab + l)))
          done
        | Exp ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l) (exp (Array.unsafe_get vals (ab + l)))
          done
        | Sqrt ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l) (sqrt (Array.unsafe_get vals (ab + l)))
          done
        | Abs ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (base + l) (Float.abs (Array.unsafe_get vals (ab + l)))
          done)
      | Isel (op, sl, sr, a, b) ->
        let lb = sl * cap and rb = sr * cap and ab = a * cap and bb = b * cap in
        for l = 0 to batch - 1 do
          let src =
            if apply_cmpop op (Array.unsafe_get vals (lb + l)) (Array.unsafe_get vals (rb + l))
            then ab
            else bb
          in
          Array.unsafe_set vals (base + l) (Array.unsafe_get vals (src + l))
        done
    done;
    let out = bws.b_out in
    let nout = Array.length t.outputs in
    for k = 0 to nout - 1 do
      let sb = t.outputs.(k) * cap in
      for l = 0 to batch - 1 do
        Array.unsafe_set out ((l * nout) + k) (Array.unsafe_get vals (sb + l))
      done
    done;
    out

  let backward_batch_into t bws ~batch v grad =
    check_bws t bws ~batch "Tape.backward_batch_into";
    let nout = Array.length t.outputs in
    if Array.length v < batch * nout then
      invalid_arg "Tape.backward_batch_into: adjoint arity mismatch";
    if Array.length grad < batch * t.n_inputs then
      invalid_arg "Tape.backward_batch_into: gradient arity mismatch";
    let cap = bws.b_cap in
    let vals = bws.b_vals and adj = bws.b_adj in
    let ni = t.n_inputs in
    let n = Array.length t.instrs in
    Array.fill grad 0 (batch * ni) 0.0;
    for i = 0 to n - 1 do
      Array.fill adj (i * cap) batch 0.0
    done;
    (* Output-adjoint seeding in the scalar order: for each lane, outputs
       ascending, accumulated into the output's slot. *)
    for k = 0 to nout - 1 do
      let sb = t.outputs.(k) * cap in
      for l = 0 to batch - 1 do
        Array.unsafe_set adj (sb + l)
          (Array.unsafe_get adj (sb + l) +. Array.unsafe_get v ((l * nout) + k))
      done
    done;
    for i = n - 1 downto 0 do
      let base = i * cap in
      match Array.unsafe_get t.instrs i with
      | Iconst _ -> ()
      | Iinput k ->
        for l = 0 to batch - 1 do
          let a = Array.unsafe_get adj (base + l) in
          if a <> 0.0 then begin
            let gi = (l * ni) + k in
            Array.unsafe_set grad gi (Array.unsafe_get grad gi +. a)
          end
        done
      | Ibin (op, ia, ib) -> (
        let ab = ia * cap and bb = ib * cap in
        (* Per lane: the scalar [backward]'s update, guard included — a lane
           with zero adjoint must skip (adding 0.0 can change bits). *)
        match op with
        | Add ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then begin
              Array.unsafe_set adj (ab + l) (Array.unsafe_get adj (ab + l) +. a);
              Array.unsafe_set adj (bb + l) (Array.unsafe_get adj (bb + l) +. a)
            end
          done
        | Sub ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then begin
              Array.unsafe_set adj (ab + l) (Array.unsafe_get adj (ab + l) +. a);
              Array.unsafe_set adj (bb + l) (Array.unsafe_get adj (bb + l) -. a)
            end
          done
        | Mul ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then begin
              let va = Array.unsafe_get vals (ab + l) and vb = Array.unsafe_get vals (bb + l) in
              Array.unsafe_set adj (ab + l) (Array.unsafe_get adj (ab + l) +. (a *. vb));
              Array.unsafe_set adj (bb + l) (Array.unsafe_get adj (bb + l) +. (a *. va))
            end
          done
        | Div ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then begin
              let va = Array.unsafe_get vals (ab + l) and vb = Array.unsafe_get vals (bb + l) in
              Array.unsafe_set adj (ab + l) (Array.unsafe_get adj (ab + l) +. (a /. vb));
              Array.unsafe_set adj (bb + l)
                (Array.unsafe_get adj (bb + l) -. (a *. va /. (vb *. vb)))
            end
          done
        | Pow ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then begin
              let va = Array.unsafe_get vals (ab + l) and vb = Array.unsafe_get vals (bb + l) in
              let v0 = Array.unsafe_get vals (base + l) in
              if va <> 0.0 then
                Array.unsafe_set adj (ab + l)
                  (Array.unsafe_get adj (ab + l) +. (a *. vb *. v0 /. va))
              else
                Array.unsafe_set adj (ab + l)
                  (Array.unsafe_get adj (ab + l) +. (a *. vb *. (va ** (vb -. 1.0))));
              if va > 0.0 then
                Array.unsafe_set adj (bb + l)
                  (Array.unsafe_get adj (bb + l) +. (a *. v0 *. log va))
            end
          done
        | Min ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then begin
              if Array.unsafe_get vals (ab + l) <= Array.unsafe_get vals (bb + l) then
                Array.unsafe_set adj (ab + l) (Array.unsafe_get adj (ab + l) +. a)
              else Array.unsafe_set adj (bb + l) (Array.unsafe_get adj (bb + l) +. a)
            end
          done
        | Max ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then begin
              if Array.unsafe_get vals (ab + l) >= Array.unsafe_get vals (bb + l) then
                Array.unsafe_set adj (ab + l) (Array.unsafe_get adj (ab + l) +. a)
              else Array.unsafe_set adj (bb + l) (Array.unsafe_get adj (bb + l) +. a)
            end
          done)
      | Iun (op, ia) -> (
        let ab = ia * cap in
        match op with
        | Neg ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then
              Array.unsafe_set adj (ab + l) (Array.unsafe_get adj (ab + l) -. a)
          done
        | Log ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then
              Array.unsafe_set adj (ab + l)
                (Array.unsafe_get adj (ab + l) +. (a /. Array.unsafe_get vals (ab + l)))
          done
        | Exp ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then
              Array.unsafe_set adj (ab + l)
                (Array.unsafe_get adj (ab + l) +. (a *. Array.unsafe_get vals (base + l)))
          done
        | Sqrt ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then
              Array.unsafe_set adj (ab + l)
                (Array.unsafe_get adj (ab + l)
                +. (a /. (2.0 *. Array.unsafe_get vals (base + l))))
          done
        | Abs ->
          for l = 0 to batch - 1 do
            let a = Array.unsafe_get adj (base + l) in
            if a <> 0.0 then
              Array.unsafe_set adj (ab + l)
                (Array.unsafe_get adj (ab + l)
                +. (if Array.unsafe_get vals (ab + l) >= 0.0 then a else -.a))
          done)
      | Isel (op, sl, sr, ia, ib) ->
        let lb = sl * cap and rb = sr * cap and ab = ia * cap and bb = ib * cap in
        for l = 0 to batch - 1 do
          let a = Array.unsafe_get adj (base + l) in
          if a <> 0.0 then begin
            if apply_cmpop op (Array.unsafe_get vals (lb + l)) (Array.unsafe_get vals (rb + l))
            then Array.unsafe_set adj (ab + l) (Array.unsafe_get adj (ab + l) +. a)
            else Array.unsafe_set adj (bb + l) (Array.unsafe_get adj (bb + l) +. a)
          end
        done
    done

  (* --- compiled superop plans ------------------------------------------------

     A plan lowers an (optimised) tape into a flat program of *superops*:
     chains of two adjacent elementwise instructions fused into one opcode,
     constants pooled into pre-broadcast arena planes, and slot lifetimes
     analysed so values reuse a compact register arena. The program is
     executed over all batch lanes by one C call per sweep (tape_stubs.c)
     or, behind [set_vector_kernels false] / FELIX_NO_SIMD=1, by the
     portable OCaml kernels below — both bitwise-identical to the
     interpreted [forward_batch_into]/[backward_batch_into] at every batch
     size, because the per-lane operation sequence (including the
     zero-adjoint guard and the order of adjoint accumulation) is part of
     the plan, not of the kernel.

     Fusion is restricted to *adjacent* pairs in the const/input-hoisted
     instruction order whose intermediate has exactly one consumer and is
     not an output: contiguity means no other instruction's adjoint
     contribution can interleave between the pair's two backward updates,
     so the accumulation order into every shared slot is exactly the
     interpreter's. The unmaterialised intermediate's value, where the
     backward rule needs it, is recomputed bit-identically from its (still
     materialised) operands — IEEE arithmetic is deterministic. *)

  let ( / ) = Stdlib.( / )

  let bidx = function Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Pow -> 4 | Min -> 5 | Max -> 6
  let uidx = function Neg -> 0 | Log -> 1 | Exp -> 2 | Sqrt -> 3 | Abs -> 4
  let cidx = function Lt -> 0 | Le -> 1 | Gt -> 2 | Ge -> 3 | Eq -> 4 | Ne -> 5

  (* Opcode space, mirrored by tape_stubs.c (keep in sync):
     [0,7)    single binop (+ bidx)
     [16,21)  single unop (+ uidx)
     [32,38)  select (+ cidx)
     [64,80)  fused (a op1 b) op2 c        = 64 + op1*4 + op2
     [96,112) fused c op2 (a op1 b)        = 96 + op1*4 + op2
     [128,140) fused un (a op1 b)          = 128 + un*4 + op1, un: log 0, exp 1, sqrt 2
     op1/op2 range over add 0, sub 1, mul 2, div 3. *)
  let op_bin_base = 0
  let op_un_base = 16
  let op_sel_base = 32
  let op_bin2_base = 64
  let op_bin2r_base = 96
  let op_unbin_base = 128

  (* Every superop is one stride-12 row:
     [op; dst_v; dst_a; o1_v; o1_a; o2_v; o2_a; o3_v; o3_a; o4_v; o4_a; 0]
     (_v value register, _a adjoint register; unused fields 0). The
     backward sweep walks the same rows in reverse. *)
  let plan_stride = 12

  let valid_opcode op =
    (op >= op_bin_base && op < op_bin_base + 7)
    || (op >= op_un_base && op < op_un_base + 5)
    || (op >= op_sel_base && op < op_sel_base + 6)
    || (op >= op_bin2_base && op < op_bin2_base + 16)
    || (op >= op_bin2r_base && op < op_bin2r_base + 16)
    || (op >= op_unbin_base && op < op_unbin_base + 12)

  module Plan = struct
    type t = {
      p_n_inputs : int;
      p_n_outputs : int;
      p_consts : float array;  (* pool values; value register c is plane c *)
      p_n_vregs : int;  (* value planes, consts included *)
      p_n_aregs : int;  (* adjoint planes; the last is the write-only sink *)
      p_code : int array;  (* stride-12 superop rows, forward order *)
      p_inmap_fwd : int array;  (* flattened (input k, value reg) pairs *)
      p_inmap_bwd : int array;  (* flattened (input k, adjoint reg) pairs *)
      p_out_vregs : int array;  (* per output: value register *)
      p_out_aregs : int array;  (* per output: adjoint register *)
      p_source_ops : int;  (* non-const, non-input instructions pre-fusion *)
      p_fused : int;  (* fused pairs *)
    }

    let num_inputs p = p.p_n_inputs
    let num_outputs p = p.p_n_outputs
    let source_ops p = p.p_source_ops
    let superops p = Array.length p.p_code / plan_stride
    let fused_pairs p = p.p_fused

    let to_json p =
      let num i = Json.Num (float_of_int i) in
      let ints a = Json.List (Array.to_list (Array.map num a)) in
      Json.Obj
        [ ("n_inputs", num p.p_n_inputs);
          ("n_outputs", num p.p_n_outputs);
          ("consts", Json.List (Array.to_list (Array.map (fun c -> Json.Str (float_bits c)) p.p_consts)));
          ("n_vregs", num p.p_n_vregs);
          ("n_aregs", num p.p_n_aregs);
          ("code", ints p.p_code);
          ("inmap_fwd", ints p.p_inmap_fwd);
          ("inmap_bwd", ints p.p_inmap_bwd);
          ("out_vregs", ints p.p_out_vregs);
          ("out_aregs", ints p.p_out_aregs);
          ("source_ops", num p.p_source_ops);
          ("fused", num p.p_fused) ]

    let of_json j =
      let ( let* ) = Option.bind in
      let* n_inputs = Option.bind (Json.find j "n_inputs") Json.as_int in
      let* n_outputs = Option.bind (Json.find j "n_outputs") Json.as_int in
      let* n_vregs = Option.bind (Json.find j "n_vregs") Json.as_int in
      let* n_aregs = Option.bind (Json.find j "n_aregs") Json.as_int in
      let* source_ops = Option.bind (Json.find j "source_ops") Json.as_int in
      let* fused = Option.bind (Json.find j "fused") Json.as_int in
      let ints key =
        let* l = Option.bind (Json.find j key) Json.as_list in
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* i = Json.as_int v in
            Some (i :: acc))
          (Some []) l
        |> Option.map (fun l -> Array.of_list (List.rev l))
      in
      let* code = ints "code" in
      let* inmap_fwd = ints "inmap_fwd" in
      let* inmap_bwd = ints "inmap_bwd" in
      let* out_vregs = ints "out_vregs" in
      let* out_aregs = ints "out_aregs" in
      let* consts =
        let* l = Option.bind (Json.find j "consts") Json.as_list in
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            let* s = Json.as_string v in
            let* c = float_of_bits s in
            Some (c :: acc))
          (Some []) l
        |> Option.map (fun l -> Array.of_list (List.rev l))
      in
      let vreg_ok r = r >= 0 && r < n_vregs in
      let areg_ok r = r >= 0 && r < n_aregs in
      let rows_ok =
        Array.length code mod plan_stride = 0
        && (let ok = ref true in
            let rows = Array.length code / plan_stride in
            for s = 0 to rows - 1 do
              let w = s * plan_stride in
              if not (valid_opcode code.(w)) then ok := false;
              for f = 0 to 4 do
                if not (vreg_ok code.(w + 1 + (2 * f))) then ok := false;
                if not (areg_ok code.(w + 2 + (2 * f))) then ok := false
              done
            done;
            !ok)
      in
      let pairs_ok m ~reg_ok =
        Array.length m mod 2 = 0
        && (let ok = ref true in
            for p = 0 to (Array.length m / 2) - 1 do
              let k = m.(2 * p) and r = m.((2 * p) + 1) in
              if not (k >= 0 && k < n_inputs && reg_ok r) then ok := false
            done;
            !ok)
      in
      if
        n_inputs >= 0 && n_outputs >= 0 && source_ops >= 0 && fused >= 0
        && n_vregs >= Array.length consts
        && n_aregs >= 1
        && rows_ok
        && pairs_ok inmap_fwd ~reg_ok:vreg_ok
        && pairs_ok inmap_bwd ~reg_ok:areg_ok
        && Array.length out_vregs = n_outputs
        && Array.length out_aregs = n_outputs
        && Array.for_all vreg_ok out_vregs
        && Array.for_all areg_ok out_aregs
      then
        Some
          { p_n_inputs = n_inputs; p_n_outputs = n_outputs; p_consts = consts;
            p_n_vregs = n_vregs; p_n_aregs = n_aregs; p_code = code;
            p_inmap_fwd = inmap_fwd; p_inmap_bwd = inmap_bwd;
            p_out_vregs = out_vregs; p_out_aregs = out_aregs;
            p_source_ops = source_ops; p_fused = fused }
      else None
  end

  let plan_compile_count = Atomic.make 0
  let plan_compiles () = Atomic.get plan_compile_count

  (* Which fused pair a candidate (i1, i2) forms, if any. *)
  type fuse2 =
    | F_bin2 of int * int  (* (a op1 b) op2 c *)
    | F_bin2r of int * int  (* c op2 (a op1 b) *)
    | F_unbin of int * int  (* un (a op1 b) *)

  type superop =
    | S_single of int
    | S_fused of int * int * fuse2 * int  (* i1, i2, kind, c slot (or -1) *)

  let compile_plan (t : t) : Plan.t =
    Atomic.incr plan_compile_count;
    let n = Array.length t.instrs in
    let sz = Stdlib.max 1 n in
    let uses = Array.make sz 0 in
    let last_use = Array.make sz (-1) in
    let iter_operands i f =
      match t.instrs.(i) with
      | Iconst _ | Iinput _ -> ()
      | Ibin (_, a, b) ->
        f a;
        f b
      | Iun (_, a) -> f a
      | Isel (_, l, r, a, b) ->
        f l;
        f r;
        f a;
        f b
    in
    for i = 0 to n - 1 do
      iter_operands i (fun s ->
          uses.(s) <- uses.(s) + 1;
          if i > last_use.(s) then last_use.(s) <- i)
    done;
    let out_count = Array.make sz 0 in
    Array.iter (fun o -> out_count.(o) <- out_count.(o) + 1) t.outputs;
    let arith_bin = function Add | Sub | Mul | Div -> true | _ -> false in
    let arith = ref [] in
    for i = n - 1 downto 0 do
      match t.instrs.(i) with Iconst _ | Iinput _ -> () | _ -> arith := i :: !arith
    done;
    let arith = Array.of_list !arith in
    let na = Array.length arith in
    (* Greedy fusion over the const/input-hoisted instruction sequence:
       pair (i1, i2) fuses when i1 is an add/sub/mul/div whose only
       consumer is i2 — the *next* such instruction — and i1 is not an
       output. Adjacency keeps every backward accumulation in interpreter
       order (nothing can interleave between the pair's updates). *)
    let sups = ref [] in
    let fused_pairs = ref 0 in
    let j = ref 0 in
    while !j < na do
      let i1 = arith.(!j) in
      let fused =
        if !j + 1 >= na then None
        else
          let i2 = arith.(!j + 1) in
          match t.instrs.(i1) with
          | Ibin (op1, _, _) when arith_bin op1 && uses.(i1) = 1 && out_count.(i1) = 0 -> (
            let k1 = bidx op1 in
            match t.instrs.(i2) with
            | Ibin (op2, a2, b2) when arith_bin op2 && (a2 = i1 || b2 = i1) ->
              if a2 = i1 then Some (S_fused (i1, i2, F_bin2 (k1, bidx op2), b2))
              else Some (S_fused (i1, i2, F_bin2r (k1, bidx op2), a2))
            | Iun ((Log | Exp | Sqrt) as u, a2) when a2 = i1 ->
              let ui = match u with Log -> 0 | Exp -> 1 | _ -> 2 in
              Some (S_fused (i1, i2, F_unbin (ui, k1), -1))
            | _ -> None)
          | _ -> None
      in
      match fused with
      | Some s ->
        sups := s :: !sups;
        incr fused_pairs;
        j := !j + 2
      | None ->
        sups := S_single i1 :: !sups;
        incr j
    done;
    let sups = Array.of_list (List.rev !sups) in
    (* Pinning: a slot whose *value* the backward sweep reads (directly, or
       to recompute a fused intermediate) must keep its register to the end
       of the forward sweep; outputs are read by the gather at forward end. *)
    let pinned = Array.make sz false in
    Array.iter (fun o -> pinned.(o) <- true) t.outputs;
    let pin s = pinned.(s) <- true in
    Array.iter
      (fun sup ->
        match sup with
        | S_single i -> (
          match t.instrs.(i) with
          | Iconst _ | Iinput _ -> ()
          | Ibin (op, a, b) -> (
            match op with
            | Mul | Div | Min | Max ->
              pin a;
              pin b
            | Pow ->
              pin a;
              pin b;
              pin i
            | Add | Sub -> ())
          | Iun (op, a) -> (
            match op with
            | Log | Abs -> pin a
            | Exp | Sqrt -> pin i
            | Neg -> ())
          | Isel (_, l, r, _, _) ->
            pin l;
            pin r)
        | S_fused (i1, i2, kind, c) ->
          let op1, a, b =
            match t.instrs.(i1) with Ibin (op, a, b) -> (op, a, b) | _ -> assert false
          in
          let need_vt, pin_c, pin_dst =
            match kind with
            | F_bin2 (_, k2) | F_bin2r (_, k2) ->
              let mul_div = k2 = 2 || k2 = 3 in
              (mul_div, mul_div, false)
            | F_unbin (u, _) -> (u = 0, false, u = 1 || u = 2)
          in
          (* mul/div read both operand values; any vt recompute does too *)
          if need_vt || bidx op1 >= 2 then begin
            pin a;
            pin b
          end;
          if pin_c then pin c;
          if pin_dst then pin i2)
      sups;
    (* Value registers: consts first (pre-broadcast planes), then a linear
       scan that recycles unpinned registers after their last forward read;
       release-before-allocate lets a superop write in place. *)
    let vreg = Array.make sz (-1) in
    let consts = ref [] in
    let nc = ref 0 in
    for i = 0 to n - 1 do
      match t.instrs.(i) with
      | Iconst c ->
        vreg.(i) <- !nc;
        consts := c :: !consts;
        nc := !nc + 1
      | _ -> ()
    done;
    let consts = Array.of_list (List.rev !consts) in
    let next_vreg = ref !nc in
    let free = ref [] in
    let released = Array.make sz false in
    let alloc () =
      match !free with
      | r :: rest ->
        free := rest;
        r
      | [] ->
        let r = !next_vreg in
        incr next_vreg;
        r
    in
    let release_operand e s =
      if
        (match t.instrs.(s) with Iconst _ -> false | _ -> true)
        && (not pinned.(s)) && (not released.(s)) && last_use.(s) <= e
      then begin
        released.(s) <- true;
        free := vreg.(s) :: !free
      end
    in
    let sup_at = Array.make sz (-1) in
    Array.iteri
      (fun si sup ->
        match sup with
        | S_single i -> sup_at.(i) <- si
        | S_fused (_, i2, _, _) -> sup_at.(i2) <- si)
      sups;
    (* Inputs are scattered at sweep start (hoisted before every superop),
       so their registers are allocated first: an input plane must never
       share a register with any superop destination that executes before
       the input's original tape position. *)
    for i = 0 to n - 1 do
      match t.instrs.(i) with Iinput _ -> vreg.(i) <- alloc () | _ -> ()
    done;
    for i = 0 to n - 1 do
      match t.instrs.(i) with
      | Iconst _ | Iinput _ -> ()
      | _ ->
        let si = sup_at.(i) in
        if si >= 0 then begin
          (match sups.(si) with
          | S_single _ -> iter_operands i (release_operand i)
          | S_fused (i1, i2, _, _) ->
            iter_operands i1 (release_operand i2);
            iter_operands i2 (fun s -> if s <> i1 then release_operand i2 s));
          vreg.(i) <- alloc ()
        end
    done;
    (* Adjoint registers: one plane per materialised non-const slot (a
       fused intermediate's adjoint lives in a kernel local); const
       operands share a write-only sink plane. *)
    let fused_first = Array.make sz false in
    Array.iter
      (function S_fused (i1, _, _, _) -> fused_first.(i1) <- true | _ -> ())
      sups;
    let areg = Array.make sz (-1) in
    let n_areg = ref 0 in
    for i = 0 to n - 1 do
      match t.instrs.(i) with
      | Iconst _ -> ()
      | _ ->
        if not fused_first.(i) then begin
          areg.(i) <- !n_areg;
          incr n_areg
        end
    done;
    let sink = !n_areg in
    let vr s = vreg.(s) in
    let ar s = match t.instrs.(s) with Iconst _ -> sink | _ -> areg.(s) in
    let code = Array.make (Array.length sups * plan_stride) 0 in
    Array.iteri
      (fun si sup ->
        let w = si * plan_stride in
        let set k v = code.(w + k) <- v in
        match sup with
        | S_single i -> (
          set 1 (vr i);
          set 2 (ar i);
          match t.instrs.(i) with
          | Iconst _ | Iinput _ -> assert false
          | Ibin (op, a, b) ->
            set 0 (op_bin_base + bidx op);
            set 3 (vr a);
            set 4 (ar a);
            set 5 (vr b);
            set 6 (ar b)
          | Iun (op, a) ->
            set 0 (op_un_base + uidx op);
            set 3 (vr a);
            set 4 (ar a)
          | Isel (op, l, r, a, b) ->
            set 0 (op_sel_base + cidx op);
            set 3 (vr l);
            set 5 (vr r);
            set 7 (vr a);
            set 8 (ar a);
            set 9 (vr b);
            set 10 (ar b))
        | S_fused (i1, i2, kind, c) ->
          let a, b =
            match t.instrs.(i1) with Ibin (_, a, b) -> (a, b) | _ -> assert false
          in
          set 1 (vr i2);
          set 2 (ar i2);
          set 3 (vr a);
          set 4 (ar a);
          set 5 (vr b);
          set 6 (ar b);
          (match kind with
          | F_bin2 (k1, k2) ->
            set 0 (op_bin2_base + (k1 * 4) + k2);
            set 7 (vr c);
            set 8 (ar c)
          | F_bin2r (k1, k2) ->
            set 0 (op_bin2r_base + (k1 * 4) + k2);
            set 7 (vr c);
            set 8 (ar c)
          | F_unbin (u, k1) -> set 0 (op_unbin_base + (u * 4) + k1)))
      sups;
    let inputs = ref [] in
    for i = n - 1 downto 0 do
      match t.instrs.(i) with Iinput k -> inputs := (k, i) :: !inputs | _ -> ()
    done;
    let inputs = !inputs in
    let ninp = List.length inputs in
    let inmap_fwd = Array.make (2 * ninp) 0 in
    let inmap_bwd = Array.make (2 * ninp) 0 in
    List.iteri
      (fun j (k, i) ->
        inmap_fwd.(2 * j) <- k;
        inmap_fwd.((2 * j) + 1) <- vreg.(i);
        inmap_bwd.(2 * j) <- k;
        inmap_bwd.((2 * j) + 1) <- areg.(i))
      inputs;
    { Plan.p_n_inputs = t.n_inputs;
      p_n_outputs = Array.length t.outputs;
      p_consts = consts;
      p_n_vregs = !next_vreg;
      p_n_aregs = sink + 1;
      p_code = code;
      p_inmap_fwd = inmap_fwd;
      p_inmap_bwd = inmap_bwd;
      p_out_vregs = Array.map vr t.outputs;
      p_out_aregs = Array.map ar t.outputs;
      p_source_ops = na;
      p_fused = !fused_pairs
    }

  (* --- kernel selection ----------------------------------------------------- *)

  let vector_kernels =
    ref
      (match Sys.getenv_opt "FELIX_NO_SIMD" with
      | Some ("1" | "true" | "yes") -> false
      | Some _ | None -> true)

  let set_vector_kernels b = vector_kernels := b
  let using_vector_kernels () = !vector_kernels

  external plan_fwd_c :
    int array ->
    float array ->
    float array ->
    float array ->
    int array ->
    int array ->
    int ->
    int ->
    int ->
    int ->
    unit = "felix_tape_fwd_byte" "felix_tape_fwd"
    [@@noalloc]

  external plan_bwd_c :
    int array ->
    float array ->
    float array ->
    float array ->
    float array ->
    int array ->
    int array ->
    int ->
    int ->
    int ->
    int ->
    unit = "felix_tape_bwd_byte" "felix_tape_bwd"
    [@@noalloc]

  (* --- portable plan kernels -------------------------------------------------

     Bit-for-bit the semantics of tape_stubs.c: same operation order per
     lane, same guards, same [0.0 +. g]-style normalisation of a fused
     intermediate's adjoint (the interpreter accumulates it into a
     zero-initialised cell; re-materialising that addition keeps signed
     zeros and NaN payloads identical). *)

  let bapply k x y =
    match k with 0 -> x +. y | 1 -> x -. y | 2 -> x *. y | _ -> x /. y

  let capply k x y =
    match k with
    | 0 -> x < y
    | 1 -> x <= y
    | 2 -> x > y
    | 3 -> x >= y
    | 4 -> x = y
    | _ -> x <> y

  let plan_fwd_ocaml code vals cap batch =
    let nsup = Array.length code / plan_stride in
    for s = 0 to nsup - 1 do
      let w = s * plan_stride in
      let op = Array.unsafe_get code w in
      let d = Array.unsafe_get code (w + 1) * cap in
      if op < op_un_base then begin
        let ab = Array.unsafe_get code (w + 3) * cap
        and bb = Array.unsafe_get code (w + 5) * cap in
        match op - op_bin_base with
        | 0 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l)
              (Array.unsafe_get vals (ab + l) +. Array.unsafe_get vals (bb + l))
          done
        | 1 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l)
              (Array.unsafe_get vals (ab + l) -. Array.unsafe_get vals (bb + l))
          done
        | 2 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l)
              (Array.unsafe_get vals (ab + l) *. Array.unsafe_get vals (bb + l))
          done
        | 3 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l)
              (Array.unsafe_get vals (ab + l) /. Array.unsafe_get vals (bb + l))
          done
        | 4 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l)
              (Array.unsafe_get vals (ab + l) ** Array.unsafe_get vals (bb + l))
          done
        | 5 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l)
              (Float.min (Array.unsafe_get vals (ab + l)) (Array.unsafe_get vals (bb + l)))
          done
        | _ ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l)
              (Float.max (Array.unsafe_get vals (ab + l)) (Array.unsafe_get vals (bb + l)))
          done
      end
      else if op < op_sel_base then begin
        let ab = Array.unsafe_get code (w + 3) * cap in
        match op - op_un_base with
        | 0 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l) (-.Array.unsafe_get vals (ab + l))
          done
        | 1 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l) (log (Array.unsafe_get vals (ab + l)))
          done
        | 2 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l) (exp (Array.unsafe_get vals (ab + l)))
          done
        | 3 ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l) (sqrt (Array.unsafe_get vals (ab + l)))
          done
        | _ ->
          for l = 0 to batch - 1 do
            Array.unsafe_set vals (d + l) (Float.abs (Array.unsafe_get vals (ab + l)))
          done
      end
      else if op < op_bin2_base then begin
        let cmp = op - op_sel_base in
        let lb = Array.unsafe_get code (w + 3) * cap
        and rb = Array.unsafe_get code (w + 5) * cap
        and ab = Array.unsafe_get code (w + 7) * cap
        and bb = Array.unsafe_get code (w + 9) * cap in
        for l = 0 to batch - 1 do
          let src =
            if capply cmp (Array.unsafe_get vals (lb + l)) (Array.unsafe_get vals (rb + l))
            then ab
            else bb
          in
          Array.unsafe_set vals (d + l) (Array.unsafe_get vals (src + l))
        done
      end
      else begin
        let ab = Array.unsafe_get code (w + 3) * cap
        and bb = Array.unsafe_get code (w + 5) * cap in
        if op < op_bin2r_base then begin
          let k = op - op_bin2_base in
          let k1 = k / 4 and k2 = k mod 4 in
          let cb = Array.unsafe_get code (w + 7) * cap in
          for l = 0 to batch - 1 do
            let t = bapply k1 (Array.unsafe_get vals (ab + l)) (Array.unsafe_get vals (bb + l)) in
            Array.unsafe_set vals (d + l) (bapply k2 t (Array.unsafe_get vals (cb + l)))
          done
        end
        else if op < op_unbin_base then begin
          let k = op - op_bin2r_base in
          let k1 = k / 4 and k2 = k mod 4 in
          let cb = Array.unsafe_get code (w + 7) * cap in
          for l = 0 to batch - 1 do
            let t = bapply k1 (Array.unsafe_get vals (ab + l)) (Array.unsafe_get vals (bb + l)) in
            Array.unsafe_set vals (d + l) (bapply k2 (Array.unsafe_get vals (cb + l)) t)
          done
        end
        else begin
          let k = op - op_unbin_base in
          let u = k / 4 and k1 = k mod 4 in
          for l = 0 to batch - 1 do
            let t = bapply k1 (Array.unsafe_get vals (ab + l)) (Array.unsafe_get vals (bb + l)) in
            Array.unsafe_set vals (d + l)
              (match u with 0 -> log t | 1 -> exp t | _ -> sqrt t)
          done
        end
      end
    done

  let plan_bwd_ocaml code vals adj cap batch =
    let nsup = Array.length code / plan_stride in
    for s = nsup - 1 downto 0 do
      let w = s * plan_stride in
      let op = Array.unsafe_get code w in
      let d = Array.unsafe_get code (w + 1) * cap in
      let dj = Array.unsafe_get code (w + 2) * cap in
      if op < op_un_base then begin
        let av = Array.unsafe_get code (w + 3) * cap
        and aj = Array.unsafe_get code (w + 4) * cap
        and bv = Array.unsafe_get code (w + 5) * cap
        and bj = Array.unsafe_get code (w + 6) * cap in
        match op - op_bin_base with
        | 0 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. g);
              Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) +. g)
            end
          done
        | 1 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. g);
              Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) -. g)
            end
          done
        | 2 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              let va = Array.unsafe_get vals (av + l)
              and vb = Array.unsafe_get vals (bv + l) in
              Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. (g *. vb));
              Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) +. (g *. va))
            end
          done
        | 3 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              let va = Array.unsafe_get vals (av + l)
              and vb = Array.unsafe_get vals (bv + l) in
              Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. (g /. vb));
              Array.unsafe_set adj (bj + l)
                (Array.unsafe_get adj (bj + l) -. (g *. va /. (vb *. vb)))
            end
          done
        | 4 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              let va = Array.unsafe_get vals (av + l)
              and vb = Array.unsafe_get vals (bv + l) in
              let v0 = Array.unsafe_get vals (d + l) in
              if va <> 0.0 then
                Array.unsafe_set adj (aj + l)
                  (Array.unsafe_get adj (aj + l) +. (g *. vb *. v0 /. va))
              else
                Array.unsafe_set adj (aj + l)
                  (Array.unsafe_get adj (aj + l) +. (g *. vb *. (va ** (vb -. 1.0))));
              if va > 0.0 then
                Array.unsafe_set adj (bj + l)
                  (Array.unsafe_get adj (bj + l) +. (g *. v0 *. log va))
            end
          done
        | 5 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              if Array.unsafe_get vals (av + l) <= Array.unsafe_get vals (bv + l) then
                Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. g)
              else Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) +. g)
            end
          done
        | _ ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              if Array.unsafe_get vals (av + l) >= Array.unsafe_get vals (bv + l) then
                Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. g)
              else Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) +. g)
            end
          done
      end
      else if op < op_sel_base then begin
        let av = Array.unsafe_get code (w + 3) * cap
        and aj = Array.unsafe_get code (w + 4) * cap in
        match op - op_un_base with
        | 0 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then
              Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) -. g)
          done
        | 1 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then
              Array.unsafe_set adj (aj + l)
                (Array.unsafe_get adj (aj + l) +. (g /. Array.unsafe_get vals (av + l)))
          done
        | 2 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then
              Array.unsafe_set adj (aj + l)
                (Array.unsafe_get adj (aj + l) +. (g *. Array.unsafe_get vals (d + l)))
          done
        | 3 ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then
              Array.unsafe_set adj (aj + l)
                (Array.unsafe_get adj (aj + l)
                +. (g /. (2.0 *. Array.unsafe_get vals (d + l))))
          done
        | _ ->
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then
              Array.unsafe_set adj (aj + l)
                (Array.unsafe_get adj (aj + l)
                +. (if Array.unsafe_get vals (av + l) >= 0.0 then g else -.g))
          done
      end
      else if op < op_bin2_base then begin
        let cmp = op - op_sel_base in
        let lb = Array.unsafe_get code (w + 3) * cap
        and rb = Array.unsafe_get code (w + 5) * cap
        and aj = Array.unsafe_get code (w + 8) * cap
        and bj = Array.unsafe_get code (w + 10) * cap in
        for l = 0 to batch - 1 do
          let g = Array.unsafe_get adj (dj + l) in
          if g <> 0.0 then begin
            if capply cmp (Array.unsafe_get vals (lb + l)) (Array.unsafe_get vals (rb + l))
            then Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. g)
            else Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) +. g)
          end
        done
      end
      else begin
        let av = Array.unsafe_get code (w + 3) * cap
        and aj = Array.unsafe_get code (w + 4) * cap
        and bv = Array.unsafe_get code (w + 5) * cap
        and bj = Array.unsafe_get code (w + 6) * cap in
        if op < op_unbin_base then begin
          let bin2r = op >= op_bin2r_base in
          let k = if bin2r then op - op_bin2r_base else op - op_bin2_base in
          let k1 = k / 4 and k2 = k mod 4 in
          let cv = Array.unsafe_get code (w + 7) * cap
          and cj = Array.unsafe_get code (w + 8) * cap in
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              let va = Array.unsafe_get vals (av + l)
              and vb = Array.unsafe_get vals (bv + l)
              and vc = Array.unsafe_get vals (cv + l) in
              let vt = bapply k1 va vb in
              let gt =
                if bin2r then begin
                  (* v = c op2 t: the interpreter updates adj[c] (left
                     operand) first, then accumulates t's adjoint into a
                     zero cell — re-materialised as 0.0 +/- x. *)
                  (match k2 with
                  | 0 | 1 ->
                    Array.unsafe_set adj (cj + l) (Array.unsafe_get adj (cj + l) +. g)
                  | 2 ->
                    Array.unsafe_set adj (cj + l)
                      (Array.unsafe_get adj (cj + l) +. (g *. vt))
                  | _ ->
                    Array.unsafe_set adj (cj + l)
                      (Array.unsafe_get adj (cj + l) +. (g /. vt)));
                  match k2 with
                  | 0 -> 0.0 +. g
                  | 1 -> 0.0 -. g
                  | 2 -> 0.0 +. (g *. vc)
                  | _ -> 0.0 -. (g *. vc /. (vt *. vt))
                end
                else begin
                  (* v = t op2 c: t's adjoint (left operand) accumulates
                     first, then adj[c]. *)
                  let gt =
                    match k2 with
                    | 0 | 1 -> 0.0 +. g
                    | 2 -> 0.0 +. (g *. vc)
                    | _ -> 0.0 +. (g /. vc)
                  in
                  (match k2 with
                  | 0 ->
                    Array.unsafe_set adj (cj + l) (Array.unsafe_get adj (cj + l) +. g)
                  | 1 ->
                    Array.unsafe_set adj (cj + l) (Array.unsafe_get adj (cj + l) -. g)
                  | 2 ->
                    Array.unsafe_set adj (cj + l)
                      (Array.unsafe_get adj (cj + l) +. (g *. vt))
                  | _ ->
                    Array.unsafe_set adj (cj + l)
                      (Array.unsafe_get adj (cj + l) -. (g *. vt /. (vc *. vc))));
                  gt
                end
              in
              if gt <> 0.0 then begin
                match k1 with
                | 0 ->
                  Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. gt);
                  Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) +. gt)
                | 1 ->
                  Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. gt);
                  Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) -. gt)
                | 2 ->
                  Array.unsafe_set adj (aj + l)
                    (Array.unsafe_get adj (aj + l) +. (gt *. vb));
                  Array.unsafe_set adj (bj + l)
                    (Array.unsafe_get adj (bj + l) +. (gt *. va))
                | _ ->
                  Array.unsafe_set adj (aj + l)
                    (Array.unsafe_get adj (aj + l) +. (gt /. vb));
                  Array.unsafe_set adj (bj + l)
                    (Array.unsafe_get adj (bj + l) -. (gt *. va /. (vb *. vb)))
              end
            end
          done
        end
        else begin
          let k = op - op_unbin_base in
          let u = k / 4 and k1 = k mod 4 in
          for l = 0 to batch - 1 do
            let g = Array.unsafe_get adj (dj + l) in
            if g <> 0.0 then begin
              let va = Array.unsafe_get vals (av + l)
              and vb = Array.unsafe_get vals (bv + l) in
              let gt =
                match u with
                | 0 -> 0.0 +. (g /. bapply k1 va vb)
                | 1 -> 0.0 +. (g *. Array.unsafe_get vals (d + l))
                | _ -> 0.0 +. (g /. (2.0 *. Array.unsafe_get vals (d + l)))
              in
              if gt <> 0.0 then begin
                match k1 with
                | 0 ->
                  Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. gt);
                  Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) +. gt)
                | 1 ->
                  Array.unsafe_set adj (aj + l) (Array.unsafe_get adj (aj + l) +. gt);
                  Array.unsafe_set adj (bj + l) (Array.unsafe_get adj (bj + l) -. gt)
                | 2 ->
                  Array.unsafe_set adj (aj + l)
                    (Array.unsafe_get adj (aj + l) +. (gt *. vb));
                  Array.unsafe_set adj (bj + l)
                    (Array.unsafe_get adj (bj + l) +. (gt *. va))
                | _ ->
                  Array.unsafe_set adj (aj + l)
                    (Array.unsafe_get adj (aj + l) +. (gt /. vb));
                  Array.unsafe_set adj (bj + l)
                    (Array.unsafe_get adj (bj + l) -. (gt *. va /. (vb *. vb)))
              end
            end
          done
        end
      end
    done

  (* --- plan workspaces ------------------------------------------------------- *)

  type plan_batch_workspace = {
    pw_cap : int;
    pw_vals : float array;  (* n_vregs * cap, register-major; const planes pre-broadcast *)
    pw_adj : float array;  (* n_aregs * cap *)
    pw_out : float array;  (* cap * n_outputs, lane-major *)
  }

  let plan_batch_capacity pw = pw.pw_cap

  let plan_batch_workspace (p : Plan.t) ~batch =
    if batch < 1 then invalid_arg "Tape.plan_batch_workspace: batch must be >= 1";
    let vals = Array.make (Stdlib.max 1 (p.Plan.p_n_vregs * batch)) 0.0 in
    (* Constants are broadcast once here; no per-sweep constant ops remain. *)
    Array.iteri (fun c v -> Array.fill vals (c * batch) batch v) p.Plan.p_consts;
    { pw_cap = batch;
      pw_vals = vals;
      pw_adj = Array.make (Stdlib.max 1 (p.Plan.p_n_aregs * batch)) 0.0;
      pw_out = Array.make (Stdlib.max 1 (p.Plan.p_n_outputs * batch)) 0.0
    }

  let check_pws (p : Plan.t) pw ~batch name =
    if batch < 1 || batch > pw.pw_cap then invalid_arg (name ^ ": batch exceeds capacity");
    if Array.length pw.pw_vals <> Stdlib.max 1 (p.Plan.p_n_vregs * pw.pw_cap) then
      invalid_arg (name ^ ": workspace does not match plan")

  let plan_forward_batch_into (p : Plan.t) pw ~batch xs =
    check_pws p pw ~batch "Tape.plan_forward_batch_into";
    let ni = p.Plan.p_n_inputs in
    if Array.length xs < batch * ni then
      invalid_arg "Tape.plan_forward_batch_into: input arity mismatch";
    let cap = pw.pw_cap in
    if !vector_kernels then
      plan_fwd_c p.Plan.p_code pw.pw_vals xs pw.pw_out p.Plan.p_inmap_fwd
        p.Plan.p_out_vregs cap batch ni p.Plan.p_n_outputs
    else begin
      let vals = pw.pw_vals in
      let m = Array.length p.Plan.p_inmap_fwd / 2 in
      for j = 0 to m - 1 do
        let k = p.Plan.p_inmap_fwd.(2 * j)
        and base = p.Plan.p_inmap_fwd.((2 * j) + 1) * cap in
        for l = 0 to batch - 1 do
          Array.unsafe_set vals (base + l) (Array.unsafe_get xs ((l * ni) + k))
        done
      done;
      plan_fwd_ocaml p.Plan.p_code vals cap batch;
      let out = pw.pw_out and nout = p.Plan.p_n_outputs in
      for k = 0 to nout - 1 do
        let sb = p.Plan.p_out_vregs.(k) * cap in
        for l = 0 to batch - 1 do
          Array.unsafe_set out ((l * nout) + k) (Array.unsafe_get vals (sb + l))
        done
      done
    end;
    pw.pw_out

  let plan_backward_batch_into (p : Plan.t) pw ~batch v grad =
    check_pws p pw ~batch "Tape.plan_backward_batch_into";
    let ni = p.Plan.p_n_inputs and nout = p.Plan.p_n_outputs in
    if Array.length v < batch * nout then
      invalid_arg "Tape.plan_backward_batch_into: adjoint arity mismatch";
    if Array.length grad < batch * ni then
      invalid_arg "Tape.plan_backward_batch_into: gradient arity mismatch";
    let cap = pw.pw_cap in
    if !vector_kernels then
      plan_bwd_c p.Plan.p_code pw.pw_vals pw.pw_adj v grad p.Plan.p_inmap_bwd
        p.Plan.p_out_aregs cap batch ni nout
    else begin
      let adj = pw.pw_adj in
      Array.fill adj 0 (Array.length adj) 0.0;
      Array.fill grad 0 (batch * ni) 0.0;
      for k = 0 to nout - 1 do
        let sb = p.Plan.p_out_aregs.(k) * cap in
        for l = 0 to batch - 1 do
          Array.unsafe_set adj (sb + l)
            (Array.unsafe_get adj (sb + l) +. Array.unsafe_get v ((l * nout) + k))
        done
      done;
      plan_bwd_ocaml p.Plan.p_code pw.pw_vals adj cap batch;
      let m = Array.length p.Plan.p_inmap_bwd / 2 in
      for j = 0 to m - 1 do
        let k = p.Plan.p_inmap_bwd.(2 * j)
        and base = p.Plan.p_inmap_bwd.((2 * j) + 1) * cap in
        for l = 0 to batch - 1 do
          let g = Array.unsafe_get adj (base + l) in
          if g <> 0.0 then begin
            let gi = (l * ni) + k in
            Array.unsafe_set grad gi (Array.unsafe_get grad gi +. g)
          end
        done
      done
    end

  let jacobian t xs =
    if Array.length xs <> t.n_inputs then invalid_arg "Tape.jacobian: input arity mismatch";
    let m = Array.length t.outputs in
    let ws = workspace t in
    (* One forward pass shared by all m adjoint sweeps: the reverse sweep
       only reads vals, never writes them. *)
    let outputs = Array.copy (forward_into t ws xs) in
    let v = Array.make m 0.0 in
    let jac =
      Array.init m (fun k ->
          v.(k) <- 1.0;
          let grad = Array.make t.n_inputs 0.0 in
          backward_into t ws v grad;
          v.(k) <- 0.0;
          grad)
    in
    (outputs, jac)
end

let check_gradient ?(eps = 1e-5) ?(tol = 1e-3) ~inputs e xs =
  let tape = Tape.compile ~inputs [ e ] in
  let _, grad = Tape.vjp tape xs [| 1.0 |] in
  let ok = ref true in
  Array.iteri
    (fun i _ ->
      let xp = Array.copy xs and xm = Array.copy xs in
      xp.(i) <- xs.(i) +. eps;
      xm.(i) <- xs.(i) -. eps;
      let fp = (Tape.eval tape xp).(0) and fm = (Tape.eval tape xm).(0) in
      let fd = (fp -. fm) /. (2.0 *. eps) in
      let denom = max 1.0 (max (Float.abs fd) (Float.abs grad.(i))) in
      if Float.abs (fd -. grad.(i)) /. denom > tol then ok := false)
    xs;
  !ok
