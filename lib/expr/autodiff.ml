open Expr

(* [open Expr] shadows the integer operators with expression builders;
   restore the integer ones for loop/index arithmetic below. *)
let ( - ) = Stdlib.( - )

(* --- symbolic differentiation -------------------------------------------- *)

let rec diff (e : Expr.t) (x : string) : Expr.t =
  match e with
  | Const _ -> zero
  | Var v -> if String.equal v x then one else zero
  | Binop (Add, a, b) -> add (diff a x) (diff b x)
  | Binop (Sub, a, b) -> sub (diff a x) (diff b x)
  | Binop (Mul, a, b) -> add (mul (diff a x) b) (mul a (diff b x))
  | Binop (Div, a, b) -> div (sub (mul (diff a x) b) (mul a (diff b x))) (mul b b)
  | Binop (Pow, a, b) ->
    (* d(a^b) = a^b * (b' ln a + b a'/a); specialise constant exponents to
       avoid introducing log of possibly-negative bases. *)
    let da = diff a x and db = diff b x in
    if equal db zero then mul (mul b (pow a (sub b one))) da
    else mul (pow a b) (add (mul db (log_ a)) (div (mul b da) a))
  | Binop (Min, a, b) -> select (le a b) (diff a x) (diff b x)
  | Binop (Max, a, b) -> select (ge a b) (diff a x) (diff b x)
  | Unop (Neg, a) -> neg (diff a x)
  | Unop (Log, a) -> div (diff a x) a
  | Unop (Exp, a) -> mul (exp_ a) (diff a x)
  | Unop (Sqrt, a) -> div (diff a x) (mul (const 2.0) (sqrt_ a))
  | Unop (Abs, a) -> mul (select (ge a zero) one (const (-1.0))) (diff a x)
  | Select (c, a, b) -> select c (diff a x) (diff b x)

let gradient e = List.map (fun v -> (v, Simplify.simplify (diff e v))) (vars e)

(* --- compiled tapes ------------------------------------------------------- *)

module Tape = struct
  type instr =
    | Iconst of float
    | Iinput of int
    | Ibin of binop * int * int
    | Iun of unop * int
    | Isel of cmpop * int * int * int * int  (* lhs, rhs, then, else *)

  type t = {
    instrs : instr array;
    outputs : int array;  (* slot of each output *)
    n_inputs : int;
  }

  let num_inputs t = t.n_inputs
  let num_outputs t = Array.length t.outputs
  let length t = Array.length t.instrs

  (* Flatten boolean connectives so only Cmp conditions reach the tape. *)
  let rec flatten_selects (e : Expr.t) : Expr.t =
    let e = map_children flatten_selects e in
    match e with
    | Select (And (c1, c2), a, b) ->
      flatten_selects (select c1 (select c2 a b) b)
    | Select (Or (c1, c2), a, b) ->
      flatten_selects (select c1 a (select c2 a b))
    | Select (Not c, a, b) -> flatten_selects (select c b a)
    | Select (Bconst true, a, _) -> a
    | Select (Bconst false, _, b) -> b
    | _ -> e

  let compile ~inputs exprs =
    let exprs = List.map flatten_selects exprs in
    let input_index = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace input_index v i) inputs;
    let instrs = ref [] in
    let n = ref 0 in
    (* CSE: identical instructions (same op, same child slots) share a slot. *)
    let cse : (instr, int) Hashtbl.t = Hashtbl.create 256 in
    let emit instr =
      match Hashtbl.find_opt cse instr with
      | Some slot -> slot
      | None ->
        let slot = !n in
        incr n;
        instrs := instr :: !instrs;
        Hashtbl.replace cse instr slot;
        slot
    in
    let rec go (e : Expr.t) : int =
      match e with
      | Const c -> emit (Iconst c)
      | Var v -> (
        match Hashtbl.find_opt input_index v with
        | Some i -> emit (Iinput i)
        | None -> invalid_arg (Printf.sprintf "Tape.compile: unbound variable %s" v))
      | Binop (op, a, b) ->
        let sa = go a in
        let sb = go b in
        emit (Ibin (op, sa, sb))
      | Unop (op, a) ->
        let sa = go a in
        emit (Iun (op, sa))
      | Select (Cmp (op, l, r), a, b) ->
        let sl = go l in
        let sr = go r in
        let sa = go a in
        let sb = go b in
        emit (Isel (op, sl, sr, sa, sb))
      | Select ((And _ | Or _ | Not _ | Bconst _), _, _) ->
        (* flatten_selects removed these *)
        assert false
    in
    let outputs = Array.of_list (List.map go exprs) in
    { instrs = Array.of_list (List.rev !instrs); outputs; n_inputs = List.length inputs }

  let forward t xs vals =
    let n = Array.length t.instrs in
    for i = 0 to n - 1 do
      vals.(i) <-
        (match t.instrs.(i) with
        | Iconst c -> c
        | Iinput k -> xs.(k)
        | Ibin (op, a, b) -> apply_binop op vals.(a) vals.(b)
        | Iun (op, a) -> apply_unop op vals.(a)
        | Isel (op, l, r, a, b) ->
          if apply_cmpop op vals.(l) vals.(r) then vals.(a) else vals.(b))
    done

  let eval t xs =
    if Array.length xs <> t.n_inputs then invalid_arg "Tape.eval: input arity mismatch";
    let vals = Array.make (max 1 (Array.length t.instrs)) 0.0 in
    forward t xs vals;
    Array.map (fun slot -> vals.(slot)) t.outputs

  let backward t xs vals adj grad =
    Array.fill grad 0 (Array.length grad) 0.0;
    for i = Array.length t.instrs - 1 downto 0 do
      let a = adj.(i) in
      if a <> 0.0 then begin
        match t.instrs.(i) with
        | Iconst _ -> ()
        | Iinput k -> grad.(k) <- grad.(k) +. a
        | Ibin (op, ia, ib) -> (
          let va = vals.(ia) and vb = vals.(ib) in
          match op with
          | Add ->
            adj.(ia) <- adj.(ia) +. a;
            adj.(ib) <- adj.(ib) +. a
          | Sub ->
            adj.(ia) <- adj.(ia) +. a;
            adj.(ib) <- adj.(ib) -. a
          | Mul ->
            adj.(ia) <- adj.(ia) +. (a *. vb);
            adj.(ib) <- adj.(ib) +. (a *. va)
          | Div ->
            adj.(ia) <- adj.(ia) +. (a /. vb);
            adj.(ib) <- adj.(ib) -. (a *. va /. (vb *. vb))
          | Pow ->
            let v = vals.(i) in
            (* d/da = b * a^(b-1); d/db = a^b * ln a (only when a > 0) *)
            if va <> 0.0 then adj.(ia) <- adj.(ia) +. (a *. vb *. v /. va)
            else adj.(ia) <- adj.(ia) +. (a *. vb *. (va ** (vb -. 1.0)));
            if va > 0.0 then adj.(ib) <- adj.(ib) +. (a *. v *. log va)
          | Min -> if va <= vb then adj.(ia) <- adj.(ia) +. a else adj.(ib) <- adj.(ib) +. a
          | Max -> if va >= vb then adj.(ia) <- adj.(ia) +. a else adj.(ib) <- adj.(ib) +. a)
        | Iun (op, ia) -> (
          let va = vals.(ia) in
          match op with
          | Neg -> adj.(ia) <- adj.(ia) -. a
          | Log -> adj.(ia) <- adj.(ia) +. (a /. va)
          | Exp -> adj.(ia) <- adj.(ia) +. (a *. vals.(i))
          | Sqrt -> adj.(ia) <- adj.(ia) +. (a /. (2.0 *. vals.(i)))
          | Abs -> adj.(ia) <- adj.(ia) +. (if va >= 0.0 then a else -.a))
        | Isel (op, l, r, ia, ib) ->
          if apply_cmpop op vals.(l) vals.(r) then adj.(ia) <- adj.(ia) +. a
          else adj.(ib) <- adj.(ib) +. a
      end
    done;
    ignore xs

  let vjp t xs v =
    if Array.length xs <> t.n_inputs then invalid_arg "Tape.vjp: input arity mismatch";
    if Array.length v <> Array.length t.outputs then
      invalid_arg "Tape.vjp: adjoint arity mismatch";
    let n = Array.length t.instrs in
    let vals = Array.make (max 1 n) 0.0 in
    forward t xs vals;
    let adj = Array.make (max 1 n) 0.0 in
    Array.iteri (fun k slot -> adj.(slot) <- adj.(slot) +. v.(k)) t.outputs;
    let grad = Array.make t.n_inputs 0.0 in
    backward t xs vals adj grad;
    (Array.map (fun slot -> vals.(slot)) t.outputs, grad)

  let jacobian t xs =
    let m = Array.length t.outputs in
    let outputs = eval t xs in
    let jac =
      Array.init m (fun k ->
          let v = Array.make m 0.0 in
          v.(k) <- 1.0;
          snd (vjp t xs v))
    in
    (outputs, jac)
end

let check_gradient ?(eps = 1e-5) ?(tol = 1e-3) ~inputs e xs =
  let tape = Tape.compile ~inputs [ e ] in
  let _, grad = Tape.vjp tape xs [| 1.0 |] in
  let ok = ref true in
  Array.iteri
    (fun i _ ->
      let xp = Array.copy xs and xm = Array.copy xs in
      xp.(i) <- xs.(i) +. eps;
      xm.(i) <- xs.(i) -. eps;
      let fp = (Tape.eval tape xp).(0) and fm = (Tape.eval tape xm).(0) in
      let fd = (fp -. fm) /. (2.0 *. eps) in
      let denom = max 1.0 (max (Float.abs fd) (Float.abs grad.(i))) in
      if Float.abs (fd -. grad.(i)) /. denom > tol then ok := false)
    xs;
  !ok
