open Expr

(* Each rule either strictly reduces the number of operator nodes or pushes
   [log] below [mul]/[div]/[pow] (which can happen only finitely often), so
   the set terminates; [Rewrite.apply_fixpoint]'s fuel is a belt too.

   The [heads] annotations drive {!Rewrite}'s rule index: a rule lists every
   top constructor its patterns can match, so nodes with other heads skip it
   without calling [apply]. *)

let r heads name f = Rewrite.rule ~heads name f

let const_assoc_fold =
  r [ Rewrite.Hbinop Add; Hbinop Mul ] "const-assoc-fold" (function
    (* c1 op (c2 op x) and mirror images, for op in {+, *}. *)
    | Binop (Add, Const c1, Binop (Add, Const c2, x))
    | Binop (Add, Const c1, Binop (Add, x, Const c2))
    | Binop (Add, Binop (Add, Const c2, x), Const c1)
    | Binop (Add, Binop (Add, x, Const c2), Const c1) ->
      Some (add (const (c1 +. c2)) x)
    | Binop (Mul, Const c1, Binop (Mul, Const c2, x))
    | Binop (Mul, Const c1, Binop (Mul, x, Const c2))
    | Binop (Mul, Binop (Mul, Const c2, x), Const c1)
    | Binop (Mul, Binop (Mul, x, Const c2), Const c1) ->
      Some (mul (const (c1 *. c2)) x)
    | _ -> None)

let add_sub_fold =
  r [ Rewrite.Hbinop Add; Hbinop Sub ] "add-sub-fold" (function
    (* c1 + (x - c2) and mirrors -> x + (c1 - c2). *)
    | Binop (Add, Const c1, Binop (Sub, x, Const c2))
    | Binop (Add, Binop (Sub, x, Const c2), Const c1) ->
      Some (add x (const (c1 -. c2)))
    | Binop (Sub, Binop (Add, Const c1, x), Const c2)
    | Binop (Sub, Binop (Add, x, Const c1), Const c2) ->
      Some (add x (const (c1 -. c2)))
    | _ -> None)

let neg_to_sub =
  r [ Rewrite.Hbinop Add; Hbinop Sub; Hunop Neg ] "neg-to-sub" (function
    | Binop (Add, a, Unop (Neg, b)) -> Some (sub a b)
    | Binop (Sub, a, Unop (Neg, b)) -> Some (add a b)
    | Unop (Neg, Const c) -> Some (const (-.c))
    | Unop (Neg, Unop (Neg, x)) -> Some x
    | _ -> None)

let div_collapse =
  r [ Rewrite.Hbinop Div; Hbinop Mul ] "div-collapse" (function
    | Binop (Div, Binop (Div, a, b), c) -> Some (div a (mul b c))
    | Binop (Div, a, Binop (Div, b, c)) -> Some (div (mul a c) b)
    | Binop (Div, Binop (Mul, a, b), c) when equal b c -> Some a
    | Binop (Div, Binop (Mul, a, b), c) when equal a c -> Some b
    | Binop (Mul, Binop (Div, a, b), c) when equal b c -> Some a
    | Binop (Mul, c, Binop (Div, a, b)) when equal b c -> Some a
    | _ -> None)

let log_expand =
  r [ Rewrite.Hunop Log ] "log-expand" (function
    | Unop (Log, Binop (Mul, a, b)) -> Some (add (log_ a) (log_ b))
    | Unop (Log, Binop (Div, a, b)) -> Some (sub (log_ a) (log_ b))
    | Unop (Log, Binop (Pow, a, b)) -> Some (mul b (log_ a))
    | Unop (Log, Unop (Sqrt, a)) -> Some (mul (const 0.5) (log_ a))
    | _ -> None)

let exp_log_cancel =
  r [ Rewrite.Hunop Exp; Hunop Log ] "exp-log-cancel" (function
    | Unop (Exp, Unop (Log, x)) -> Some x
    | Unop (Log, Unop (Exp, x)) -> Some x
    | _ -> None)

let sqrt_pow =
  r [ Rewrite.Hbinop Pow; Hunop Sqrt ] "sqrt-pow" (function
    | Binop (Pow, Unop (Sqrt, x), Const 2.0) -> Some x
    | Unop (Sqrt, Binop (Pow, x, Const 2.0)) -> Some (abs_ x)
    | Unop (Sqrt, Binop (Mul, a, b)) when equal a b -> Some (abs_ a)
    | _ -> None)

let pow_merge =
  r [ Rewrite.Hbinop Mul; Hbinop Pow ] "pow-merge" (function
    | Binop (Mul, Binop (Pow, a, m), Binop (Pow, b, n)) when equal a b ->
      Some (pow a (add m n))
    | Binop (Pow, Binop (Pow, a, m), n) -> Some (pow a (mul m n))
    | Binop (Mul, a, b) when equal a b && not (is_const a) -> Some (powi a 2)
    | _ -> None)

let select_same =
  r [ Rewrite.Hselect ] "select-same" (function
    | Select (_, a, b) when equal a b -> Some a
    | Select (Not c, a, b) -> Some (select c b a)
    | _ -> None)

let min_max_abs =
  r [ Rewrite.Hbinop Max; Hunop Abs ] "min-max-abs" (function
    | Binop (Max, Unop (Neg, x), y) when equal x y -> Some (abs_ x)
    | Binop (Max, x, Unop (Neg, y)) when equal x y -> Some (abs_ x)
    | Unop (Abs, Unop (Abs, x)) -> Some (abs_ x)
    | Unop (Abs, Unop (Neg, x)) -> Some (abs_ x)
    | _ -> None)

let rules =
  [ const_assoc_fold; add_sub_fold; neg_to_sub; div_collapse; log_expand; exp_log_cancel;
    sqrt_pow; pow_merge; select_same; min_max_abs ]

(* One compiled (head-indexed) handle for the whole process. Its normal-form
   memo is per-domain, size-capped and keyed by hash-consed node ids, which
   is what makes [simplify] safe under the runtime's worker domains and
   cheap on the shared subterms of feature/margin formulas — the previous
   per-call pass loop plus separate top-level memo are folded into the one
   memoised walk. *)
let compiled = Rewrite.compile ~memo_cap:8192 rules

let simplify e = Rewrite.normalize compiled e

let simplify_cond c = Expr.map_cond simplify c

(* Fused substitute-and-simplify: one bottom-up walk replaces variables and
   normalises every rebuilt node in place (its children are already normal,
   so [Rewrite.normalize] memo-hits below the root). Equal to
   [simplify (Expr.subst f e)] bit for bit — innermost normalisation is
   compositional — which the property tests assert on random terms. *)
let simplify_subst f e =
  let memo : Expr.t Expr.Memo.t = Expr.Memo.create () in
  let rec go e =
    match e with
    | Const _ -> e
    | Var v -> (
      match f v with Some r -> Rewrite.normalize compiled r | None -> e)
    | Binop _ | Unop _ | Select _ -> (
      match Expr.Memo.find_opt memo e with
      | Some r -> r
      | None ->
        let r = Rewrite.normalize compiled (Expr.map_children go e) in
        Expr.Memo.add memo e r;
        r)
  in
  go e
