open Expr

(* Each rule either strictly reduces the number of operator nodes or pushes
   [log] below [mul]/[div]/[pow] (which can happen only finitely often), so
   the set terminates; [Rewrite.apply_fixpoint]'s fuel is a belt too. *)

let r name f = Rewrite.rule name f

let const_assoc_fold =
  r "const-assoc-fold" (function
    (* c1 op (c2 op x) and mirror images, for op in {+, *}. *)
    | Binop (Add, Const c1, Binop (Add, Const c2, x))
    | Binop (Add, Const c1, Binop (Add, x, Const c2))
    | Binop (Add, Binop (Add, Const c2, x), Const c1)
    | Binop (Add, Binop (Add, x, Const c2), Const c1) ->
      Some (add (const (c1 +. c2)) x)
    | Binop (Mul, Const c1, Binop (Mul, Const c2, x))
    | Binop (Mul, Const c1, Binop (Mul, x, Const c2))
    | Binop (Mul, Binop (Mul, Const c2, x), Const c1)
    | Binop (Mul, Binop (Mul, x, Const c2), Const c1) ->
      Some (mul (const (c1 *. c2)) x)
    | _ -> None)

let add_sub_fold =
  r "add-sub-fold" (function
    (* c1 + (x - c2) and mirrors -> x + (c1 - c2). *)
    | Binop (Add, Const c1, Binop (Sub, x, Const c2))
    | Binop (Add, Binop (Sub, x, Const c2), Const c1) ->
      Some (add x (const (c1 -. c2)))
    | Binop (Sub, Binop (Add, Const c1, x), Const c2)
    | Binop (Sub, Binop (Add, x, Const c1), Const c2) ->
      Some (add x (const (c1 -. c2)))
    | _ -> None)

let neg_to_sub =
  r "neg-to-sub" (function
    | Binop (Add, a, Unop (Neg, b)) -> Some (sub a b)
    | Binop (Sub, a, Unop (Neg, b)) -> Some (add a b)
    | Unop (Neg, Const c) -> Some (const (-.c))
    | Unop (Neg, Unop (Neg, x)) -> Some x
    | _ -> None)

let div_collapse =
  r "div-collapse" (function
    | Binop (Div, Binop (Div, a, b), c) -> Some (div a (mul b c))
    | Binop (Div, a, Binop (Div, b, c)) -> Some (div (mul a c) b)
    | Binop (Div, Binop (Mul, a, b), c) when equal b c -> Some a
    | Binop (Div, Binop (Mul, a, b), c) when equal a c -> Some b
    | Binop (Mul, Binop (Div, a, b), c) when equal b c -> Some a
    | Binop (Mul, c, Binop (Div, a, b)) when equal b c -> Some a
    | _ -> None)

let log_expand =
  r "log-expand" (function
    | Unop (Log, Binop (Mul, a, b)) -> Some (add (log_ a) (log_ b))
    | Unop (Log, Binop (Div, a, b)) -> Some (sub (log_ a) (log_ b))
    | Unop (Log, Binop (Pow, a, b)) -> Some (mul b (log_ a))
    | Unop (Log, Unop (Sqrt, a)) -> Some (mul (const 0.5) (log_ a))
    | _ -> None)

let exp_log_cancel =
  r "exp-log-cancel" (function
    | Unop (Exp, Unop (Log, x)) -> Some x
    | Unop (Log, Unop (Exp, x)) -> Some x
    | _ -> None)

let sqrt_pow =
  r "sqrt-pow" (function
    | Binop (Pow, Unop (Sqrt, x), Const 2.0) -> Some x
    | Unop (Sqrt, Binop (Pow, x, Const 2.0)) -> Some (abs_ x)
    | Unop (Sqrt, Binop (Mul, a, b)) when equal a b -> Some (abs_ a)
    | _ -> None)

let pow_merge =
  r "pow-merge" (function
    | Binop (Mul, Binop (Pow, a, m), Binop (Pow, b, n)) when equal a b ->
      Some (pow a (add m n))
    | Binop (Pow, Binop (Pow, a, m), n) -> Some (pow a (mul m n))
    | Binop (Mul, a, b) when equal a b && not (is_const a) -> Some (powi a 2)
    | _ -> None)

let select_same =
  r "select-same" (function
    | Select (_, a, b) when equal a b -> Some a
    | Select (Not c, a, b) -> Some (select c b a)
    | _ -> None)

let min_max_abs =
  r "min-max-abs" (function
    | Binop (Max, Unop (Neg, x), y) when equal x y -> Some (abs_ x)
    | Binop (Max, x, Unop (Neg, y)) when equal x y -> Some (abs_ x)
    | Unop (Abs, Unop (Abs, x)) -> Some (abs_ x)
    | Unop (Abs, Unop (Neg, x)) -> Some (abs_ x)
    | _ -> None)

let rules =
  [ const_assoc_fold; add_sub_fold; neg_to_sub; div_collapse; log_expand; exp_log_cancel;
    sqrt_pow; pow_merge; select_same; min_max_abs ]

(* Top-level results are memoised across calls in a per-domain, size-capped
   table: feature extraction simplifies many margin/feature formulas that
   share large subterms, and gradient generation re-simplifies derivatives
   of the same expression once per variable. Per-domain storage makes the
   cache safe under the runtime's worker domains without locking. *)
let memo_cap = 8192

let memo_key : Expr.t Expr.Memo.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Expr.Memo.create ~size:256 ())

let simplify e =
  match e with
  | Expr.Const _ | Expr.Var _ -> e
  | Expr.Binop _ | Expr.Unop _ | Expr.Select _ ->
    let memo = Domain.DLS.get memo_key in
    (match Expr.Memo.find_opt memo e with
    | Some r -> r
    | None ->
      let r = Rewrite.apply_fixpoint rules e in
      if Expr.Memo.length memo >= memo_cap then Expr.Memo.clear memo;
      Expr.Memo.add memo e r;
      r)

let simplify_cond c = Expr.map_cond simplify c
