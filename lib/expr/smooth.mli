(** Smoothing of non-differentiable operators (paper Section 3.3).

    Felix derives a smooth approximation of each non-differentiable operator
    by convolving it with the kernel [phi(t) = 1 / sqrt(1 + t^2)]. The
    resulting closed forms used here:

    - indicator of [x > 0]:  [Phi(x) = (1 + x / sqrt(1 + x^2)) / 2]
    - [select(c, a, b)]   -> [b + (a - b) * Phi(margin c)]
    - [max(a, b)]         -> [(a + b + sqrt((a - b)^2 + w^2)) / 2]
    - [min(a, b)]         -> [(a + b - sqrt((a - b)^2 + w^2)) / 2]
    - [abs(a)]            -> [sqrt(a^2 + w^2)]

    where [w] is the kernel width (default 1.0, matching Figure 4: the
    smoothed [max(x, 0)] passes through 0.5 at the kink). Boolean
    connectives map to products/sums of indicators. All outputs are
    infinitely differentiable. *)

val indicator : ?width:float -> Expr.cond -> Expr.t
(** Smooth indicator in (0, 1) of a condition. *)

val phi : ?width:float -> Expr.t -> Expr.t
(** [phi m] is the smooth step of a margin expression [m] ([> 0] means
    true). *)

val smooth_max : ?width:float -> Expr.t -> Expr.t -> Expr.t
val smooth_min : ?width:float -> Expr.t -> Expr.t -> Expr.t
val smooth_abs : ?width:float -> Expr.t -> Expr.t
val smooth_select : ?width:float -> Expr.cond -> Expr.t -> Expr.t -> Expr.t

val rules : ?width:float -> unit -> Rewrite.rule list
(** Rewrite rules eliminating [Select], [Min], [Max], [Abs]. *)

val smooth : ?width:float -> Expr.t -> Expr.t
(** Apply {!rules} to fixpoint, through a per-width compiled handle whose
    per-domain memo is shared across calls (see {!Rewrite.compile}).
    Postcondition: [Expr.contains_nondiff (smooth e) = false]. *)

val clear_memo : ?width:float -> unit -> unit
(** Drop the calling domain's memo for the given width's handle (benchmark
    hygiene before a cold-compile measurement). *)
