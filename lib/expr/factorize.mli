(** Integer factor utilities for divisibility constraints (Section 3.3).

    Tile sizes must divide the extent of the loop they tile. During gradient
    descent the constraint [N mod x = 0] is relaxed to [y <= ln N] (with
    [x = e^y]); after optimization the real-valued [y] is rounded to the
    nearest [ln N_i] over the divisors [N_i] of [N]. This module provides
    the divisor tables and the rounding, plus divisor-split sampling used by
    the evolutionary baseline's mutation operator. *)

val divisors : int -> int list
(** Sorted divisors of [n >= 1], computed in O(sqrt n) and memoised. *)

val is_divisor : int -> int -> bool
(** [is_divisor d n] is [n mod d = 0] (with [d > 0]). *)

val nearest_divisor : int -> float -> int
(** [nearest_divisor n x] is the divisor of [n] whose logarithm is closest
    to [log x] (log-space rounding as in the paper); [x] may be any positive
    real. *)

val round_log_to_divisor : int -> float -> float
(** [round_log_to_divisor n y] rounds [y] to the nearest [ln d] for a
    divisor [d] of [n]; returns the rounded log value. *)

val split : Rng.t -> int -> int -> int list
(** [split rng n k] samples a uniform-ish random factorisation of [n] into
    [k] positive integer factors whose product is exactly [n]. *)

val num_splits : int -> int -> int
(** Number of ordered factorisations of [n] into [k] factors (search-space
    size accounting, used when reporting the size of a task's space). *)
