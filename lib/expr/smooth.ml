open Expr

let phi ?(width = 1.0) m =
  let m = if width = 1.0 then m else div m (const width) in
  mul (const 0.5) (add one (div m (sqrt_ (add one (mul m m)))))

(* Smooth equality test: peaks at 1 when the operands match, decays
   quadratically; this is the bump-like kernel for the rare [Eq] features. *)
let eq_indicator ?(width = 1.0) a b =
  let d = div (sub a b) (const width) in
  div one (add one (mul d d))

let rec indicator ?(width = 1.0) (c : cond) =
  match c with
  | Bconst true -> one
  | Bconst false -> zero
  | Cmp (Gt, a, b) | Cmp (Ge, a, b) -> phi ~width (sub a b)
  | Cmp (Lt, a, b) | Cmp (Le, a, b) -> phi ~width (sub b a)
  | Cmp (Eq, a, b) -> eq_indicator ~width a b
  | Cmp (Ne, a, b) -> sub one (eq_indicator ~width a b)
  | And (a, b) -> mul (indicator ~width a) (indicator ~width b)
  | Or (a, b) ->
    let ia = indicator ~width a and ib = indicator ~width b in
    sub (add ia ib) (mul ia ib)
  | Not a -> sub one (indicator ~width a)

let smooth_max ?(width = 1.0) a b =
  let d = sub a b in
  mul (const 0.5) (add (add a b) (sqrt_ (add (mul d d) (const (width *. width)))))

let smooth_min ?(width = 1.0) a b =
  let d = sub a b in
  mul (const 0.5) (sub (add a b) (sqrt_ (add (mul d d) (const (width *. width)))))

let smooth_abs ?(width = 1.0) a = sqrt_ (add (mul a a) (const (width *. width)))

let smooth_select ?(width = 1.0) c a b = add b (mul (sub a b) (indicator ~width c))

let rules ?(width = 1.0) () =
  [ Rewrite.rule ~heads:[ Rewrite.Hselect ] "smooth-select" (function
      | Select (c, a, b) -> Some (smooth_select ~width c a b)
      | _ -> None);
    Rewrite.rule ~heads:[ Rewrite.Hbinop Max ] "smooth-max" (function
      | Binop (Max, a, b) -> Some (smooth_max ~width a b)
      | _ -> None);
    Rewrite.rule ~heads:[ Rewrite.Hbinop Min ] "smooth-min" (function
      | Binop (Min, a, b) -> Some (smooth_min ~width a b)
      | _ -> None);
    Rewrite.rule ~heads:[ Rewrite.Hunop Abs ] "smooth-abs" (function
      | Unop (Abs, a) -> Some (smooth_abs ~width a)
      | _ -> None) ]

(* One compiled handle per kernel width, cached per domain (the handle's
   normal-form memo is per-domain anyway, so a domain-local cache costs no
   sharing). Widths are few — the default plus the ablation sweep — and
   the cap guards against a pathological caller. *)
let compiled_key : (int64, Rewrite.compiled) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let compiled_for width =
  let cache = Domain.DLS.get compiled_key in
  let key = Int64.bits_of_float width in
  match Hashtbl.find_opt cache key with
  | Some c -> c
  | None ->
    if Hashtbl.length cache >= 32 then Hashtbl.reset cache;
    let c = Rewrite.compile (rules ~width ()) in
    Hashtbl.replace cache key c;
    c

let clear_memo ?(width = 1.0) () = Rewrite.clear_memo (compiled_for width)

let smooth ?(width = 1.0) e =
  let e' = Rewrite.normalize (compiled_for width) e in
  assert (not (Expr.contains_nondiff e'));
  e'
