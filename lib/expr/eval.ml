type env = string -> float

exception Unbound_variable of string

let env_of_list bindings =
  let tbl = Hashtbl.create (List.length bindings) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bindings;
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some x -> x
    | None -> raise (Unbound_variable v)

let rec eval env (e : Expr.t) =
  match e with
  | Const c -> c
  | Var v -> env v
  | Binop (op, a, b) -> Expr.apply_binop op (eval env a) (eval env b)
  | Unop (op, a) -> Expr.apply_unop op (eval env a)
  | Select (c, a, b) -> if eval_cond env c then eval env a else eval env b

and eval_cond env (c : Expr.cond) =
  match c with
  | Cmp (op, a, b) -> Expr.apply_cmpop op (eval env a) (eval env b)
  | And (a, b) -> eval_cond env a && eval_cond env b
  | Or (a, b) -> eval_cond env a || eval_cond env b
  | Not a -> not (eval_cond env a)
  | Bconst b -> b

let eval_list base overrides e =
  let tbl = Hashtbl.create (List.length overrides) in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) overrides;
  let env v = match Hashtbl.find_opt tbl v with Some x -> x | None -> base v in
  eval env e
