type binop = Add | Sub | Mul | Div | Pow | Min | Max
type unop = Neg | Log | Exp | Sqrt | Abs
type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type t =
  | Const of float
  | Var of string
  | Binop of binop * t * t
  | Unop of unop * t
  | Select of cond * t * t

and cond =
  | Cmp of cmpop * t * t
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Bconst of bool

(* --- hash-consing ---------------------------------------------------------

   Smart constructors intern every node they build in a per-domain unique
   table, so two structurally equal terms built on the same domain share one
   physical representation. That gives [equal]/[compare] an O(1) physical
   fast path and lets callers memoise traversals by node identity ([Memo])
   instead of re-walking shared subtrees.

   Interning is an optimisation, never an invariant: terms assembled with
   the raw data constructors (tests do this) or unmarshalled from disk
   simply miss the fast paths and behave as before. The tables live in
   domain-local storage, so workers interning concurrently under the
   runtime never contend or race; a term crossing domains falls back to
   structural equality. Tables are weak: unreferenced expressions stay
   collectable. *)

module Hnode = struct
  type nonrec t = t

  (* Children are compared physically: smart constructors only ever build a
     node from already-interned children, so one level of [==] suffices.
     Constants are compared by bit pattern — [=] would merge 0.0 with -0.0
     (they hash alike and compare equal), silently flipping signs in
     downstream arithmetic, and would never dedupe NaN. *)
  let equal x y =
    match (x, y) with
    | Const a, Const b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
    | Var a, Var b -> String.equal a b
    | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
    | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && a1 == a2
    | Select (c1, a1, b1), Select (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
    | (Const _ | Var _ | Binop _ | Unop _ | Select _), _ -> false

  let hash = Hashtbl.hash
end

module Hcond = struct
  type t = cond

  let equal x y =
    match (x, y) with
    | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
    | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) -> a1 == a2 && b1 == b2
    | Not a, Not b -> a == b
    | Bconst a, Bconst b -> Bool.equal a b
    | (Cmp _ | And _ | Or _ | Not _ | Bconst _), _ -> false

  let hash = Hashtbl.hash
end

module Wnode = Weak.Make (Hnode)
module Wcond = Weak.Make (Hcond)

module Phys = struct
  type nonrec t = t

  let equal = ( == )
  let hash = Hashtbl.hash
end

module Id_tbl = Ephemeron.K1.Make (Phys)

type interner = { nodes : Wnode.t; conds : Wcond.t; ids : int Id_tbl.t }

(* Ids are drawn from one process-wide counter so two distinct nodes can
   never share an id, even across domains. The node->id map itself is
   per-domain (a node migrating between domains may receive a different id
   on each, which is harmless: memo tables are per-call and single-domain). *)
let fresh_id = Atomic.make 0

let interner_key =
  Domain.DLS.new_key (fun () ->
      { nodes = Wnode.create 4096; conds = Wcond.create 512; ids = Id_tbl.create 4096 })

let intern e = Wnode.merge (Domain.DLS.get interner_key).nodes e
let intern_cond c = Wcond.merge (Domain.DLS.get interner_key).conds c

let id e =
  let it = Domain.DLS.get interner_key in
  match Id_tbl.find_opt it.ids e with
  | Some i -> i
  | None ->
    let i = Atomic.fetch_and_add fresh_id 1 in
    Id_tbl.add it.ids e i;
    i

let hash (e : t) = Hashtbl.hash e

module Memo = struct
  type nonrec expr = t
  type 'a t = (int, 'a) Hashtbl.t

  let create ?(size = 64) () : 'a t = Hashtbl.create size
  let find_opt (m : 'a t) e = Hashtbl.find_opt m (id e)
  let add (m : 'a t) e v = Hashtbl.replace m (id e) v

  let memo (m : 'a t) f e =
    match find_opt m e with
    | Some v -> v
    | None ->
      let v = f e in
      add m e v;
      v

  let length = Hashtbl.length
  let clear = Hashtbl.clear
end

let const f = intern (Const f)
let int i = const (float_of_int i)
let var v = intern (Var v)
let zero = const 0.0
let one = const 1.0

let is_const = function Const _ -> true | Var _ | Binop _ | Unop _ | Select _ -> false
let const_value = function Const c -> Some c | Var _ | Binop _ | Unop _ | Select _ -> None

let apply_binop op a b =
  match op with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> a /. b
  | Pow -> a ** b
  | Min -> Float.min a b
  | Max -> Float.max a b

let apply_unop op a =
  match op with
  | Neg -> -.a
  | Log -> log a
  | Exp -> exp a
  | Sqrt -> sqrt a
  | Abs -> Float.abs a

let apply_cmpop op a b =
  match op with
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b
  | Eq -> a = b
  | Ne -> a <> b

let rec equal x y =
  x == y
  ||
  match (x, y) with
  | Const a, Const b -> a = b
  | Var a, Var b -> String.equal a b
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && equal a1 a2
  | Select (c1, a1, b1), Select (c2, a2, b2) -> equal_cond c1 c2 && equal a1 a2 && equal b1 b2
  | (Const _ | Var _ | Binop _ | Unop _ | Select _), _ -> false

and equal_cond x y =
  x == y
  ||
  match (x, y) with
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | And (a1, b1), And (a2, b2) | Or (a1, b1), Or (a2, b2) ->
    equal_cond a1 a2 && equal_cond b1 b2
  | Not a, Not b -> equal_cond a b
  | Bconst a, Bconst b -> a = b
  | (Cmp _ | And _ | Or _ | Not _ | Bconst _), _ -> false

let compare x y = if x == y then 0 else Stdlib.compare x y

(* --- smart constructors -------------------------------------------------- *)

let add a b =
  match (a, b) with
  | Const x, Const y -> const (x +. y)
  | Const 0.0, e | e, Const 0.0 -> e
  | _ -> intern (Binop (Add, a, b))

let sub a b =
  match (a, b) with
  | Const x, Const y -> const (x -. y)
  | e, Const 0.0 -> e
  | _ when equal a b -> zero
  | _ -> intern (Binop (Sub, a, b))

let mul a b =
  match (a, b) with
  | Const x, Const y -> const (x *. y)
  | Const 0.0, _ | _, Const 0.0 -> zero
  | Const 1.0, e | e, Const 1.0 -> e
  | _ -> intern (Binop (Mul, a, b))

let div a b =
  match (a, b) with
  | Const x, Const y when y <> 0.0 -> const (x /. y)
  | Const 0.0, _ -> zero
  | e, Const 1.0 -> e
  | _ when equal a b && not (is_const a) -> one
  | _ -> intern (Binop (Div, a, b))

let pow a b =
  match (a, b) with
  | Const x, Const y -> const (x ** y)
  | _, Const 0.0 -> one
  | _, Const 1.0 -> a
  | Const 1.0, _ -> one
  | _ -> intern (Binop (Pow, a, b))

let powi a i = pow a (int i)

let min_ a b =
  match (a, b) with
  | Const x, Const y -> const (Float.min x y)
  | _ when equal a b -> a
  | _ -> intern (Binop (Min, a, b))

let max_ a b =
  match (a, b) with
  | Const x, Const y -> const (Float.max x y)
  | _ when equal a b -> a
  | _ -> intern (Binop (Max, a, b))

let neg = function
  | Const x -> const (-.x)
  | Unop (Neg, e) -> e
  | e -> intern (Unop (Neg, e))

let log_ = function
  | Const x when x > 0.0 -> const (log x)
  | Unop (Exp, e) -> e
  | e -> intern (Unop (Log, e))

let exp_ = function
  | Const x -> const (exp x)
  | Unop (Log, e) -> e
  | e -> intern (Unop (Exp, e))

let sqrt_ = function Const x when x >= 0.0 -> const (sqrt x) | e -> intern (Unop (Sqrt, e))

let abs_ = function
  | Const x -> const (Float.abs x)
  | Unop (Abs, _) as e -> e
  | e -> intern (Unop (Abs, e))

let select c a b =
  match c with
  | Bconst true -> a
  | Bconst false -> b
  | _ when equal a b -> a
  | _ -> (
    match (a, b) with
    | Const x, Const y when x = y -> a
    | _ -> intern (Select (c, a, b)))

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div

let sum = function [] -> zero | x :: rest -> List.fold_left add x rest
let product = function [] -> one | x :: rest -> List.fold_left mul x rest

(* --- conditions ---------------------------------------------------------- *)

let cmp op a b =
  match (a, b) with
  | Const x, Const y -> Bconst (apply_cmpop op x y)
  | _ -> intern_cond (Cmp (op, a, b))

let lt = cmp Lt
let le = cmp Le
let gt = cmp Gt
let ge = cmp Ge
let eq = cmp Eq
let ne = cmp Ne

let and_ a b =
  match (a, b) with
  | Bconst true, c | c, Bconst true -> c
  | Bconst false, _ | _, Bconst false -> Bconst false
  | _ -> intern_cond (And (a, b))

let or_ a b =
  match (a, b) with
  | Bconst false, c | c, Bconst false -> c
  | Bconst true, _ | _, Bconst true -> Bconst true
  | _ -> intern_cond (Or (a, b))

let not_ = function
  | Bconst b -> Bconst (not b)
  | Not c -> c
  | c -> intern_cond (Not c)

let btrue = Bconst true
let bfalse = Bconst false

(* --- traversal ----------------------------------------------------------- *)

module String_set = Set.Make (String)

let rec vars_set = function
  | Const _ -> String_set.empty
  | Var v -> String_set.singleton v
  | Binop (_, a, b) -> String_set.union (vars_set a) (vars_set b)
  | Unop (_, a) -> vars_set a
  | Select (c, a, b) ->
    String_set.union (vars_set_cond c) (String_set.union (vars_set a) (vars_set b))

and vars_set_cond = function
  | Cmp (_, a, b) -> String_set.union (vars_set a) (vars_set b)
  | And (a, b) | Or (a, b) -> String_set.union (vars_set_cond a) (vars_set_cond b)
  | Not c -> vars_set_cond c
  | Bconst _ -> String_set.empty

let vars e = String_set.elements (vars_set e)
let vars_cond c = String_set.elements (vars_set_cond c)

let rec size = function
  | Const _ | Var _ -> 1
  | Binop (_, a, b) -> Stdlib.( + ) 1 (Stdlib.( + ) (size a) (size b))
  | Unop (_, a) -> Stdlib.( + ) 1 (size a)
  | Select (c, a, b) ->
    Stdlib.( + ) 1 (Stdlib.( + ) (size_cond c) (Stdlib.( + ) (size a) (size b)))

and size_cond = function
  | Cmp (_, a, b) -> Stdlib.( + ) 1 (Stdlib.( + ) (size a) (size b))
  | And (a, b) | Or (a, b) -> Stdlib.( + ) 1 (Stdlib.( + ) (size_cond a) (size_cond b))
  | Not c -> Stdlib.( + ) 1 (size_cond c)
  | Bconst _ -> 1

let subst f e =
  (* Memoised on node identity so shared (hash-consed) subtrees are
     substituted once; the result is rebuilt with smart constructors and
     therefore shared again. *)
  let memo : t Memo.t = Memo.create () in
  let rec go e =
    match e with
    | Const _ -> e
    | Var v -> ( match f v with Some e' -> e' | None -> e)
    | Binop _ | Unop _ | Select _ -> (
      match Memo.find_opt memo e with
      | Some r -> r
      | None ->
        let r =
          match e with
          | Binop (op, a, b) -> (
            let a' = go a and b' = go b in
            match op with
            | Add -> add a' b'
            | Sub -> sub a' b'
            | Mul -> mul a' b'
            | Div -> div a' b'
            | Pow -> pow a' b'
            | Min -> min_ a' b'
            | Max -> max_ a' b')
          | Unop (op, a) -> (
            let a' = go a in
            match op with
            | Neg -> neg a'
            | Log -> log_ a'
            | Exp -> exp_ a'
            | Sqrt -> sqrt_ a'
            | Abs -> abs_ a')
          | Select (c, a, b) -> select (go_cond c) (go a) (go b)
          | Const _ | Var _ -> assert false
        in
        Memo.add memo e r;
        r)
  and go_cond c =
    match c with
    | Cmp (op, a, b) -> cmp op (go a) (go b)
    | And (a, b) -> and_ (go_cond a) (go_cond b)
    | Or (a, b) -> or_ (go_cond a) (go_cond b)
    | Not a -> not_ (go_cond a)
    | Bconst _ -> c
  in
  go e

let rec subst_cond f c =
  match c with
  | Cmp (op, a, b) -> cmp op (subst f a) (subst f b)
  | And (a, b) -> and_ (subst_cond f a) (subst_cond f b)
  | Or (a, b) -> or_ (subst_cond f a) (subst_cond f b)
  | Not a -> not_ (subst_cond f a)
  | Bconst _ -> c

let rec map_children f e =
  match e with
  | Const _ | Var _ -> e
  | Binop (op, a, b) -> (
    let a' = f a and b' = f b in
    match op with
    | Add -> add a' b'
    | Sub -> sub a' b'
    | Mul -> mul a' b'
    | Div -> div a' b'
    | Pow -> pow a' b'
    | Min -> min_ a' b'
    | Max -> max_ a' b')
  | Unop (op, a) -> (
    let a' = f a in
    match op with
    | Neg -> neg a'
    | Log -> log_ a'
    | Exp -> exp_ a'
    | Sqrt -> sqrt_ a'
    | Abs -> abs_ a')
  | Select (c, a, b) -> select (map_cond f c) (f a) (f b)

and map_cond f c =
  match c with
  | Cmp (op, a, b) -> cmp op (f a) (f b)
  | And (a, b) -> and_ (map_cond f a) (map_cond f b)
  | Or (a, b) -> or_ (map_cond f a) (map_cond f b)
  | Not a -> not_ (map_cond f a)
  | Bconst _ -> c

let rec contains_nondiff = function
  | Const _ | Var _ -> false
  | Select _ -> true
  | Binop ((Min | Max), _, _) -> true
  | Unop (Abs, _) -> true
  | Binop (_, a, b) -> contains_nondiff a || contains_nondiff b
  | Unop (_, a) -> contains_nondiff a

(* --- printing ------------------------------------------------------------ *)

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "^"
  | Min -> "min"
  | Max -> "max"

let cmpop_str = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let fmt_const c =
  if Float.is_integer c && Float.abs c < 1e15 then
    Printf.sprintf "%.0f" c
  else Printf.sprintf "%g" c

let rec to_string = function
  | Const c -> fmt_const c
  | Var v -> v
  | Binop ((Min | Max) as op, a, b) ->
    Printf.sprintf "%s(%s, %s)" (binop_str op) (to_string a) (to_string b)
  | Binop (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_string a) (binop_str op) (to_string b)
  | Unop (Neg, a) -> Printf.sprintf "(-%s)" (to_string a)
  | Unop (Log, a) -> Printf.sprintf "log(%s)" (to_string a)
  | Unop (Exp, a) -> Printf.sprintf "exp(%s)" (to_string a)
  | Unop (Sqrt, a) -> Printf.sprintf "sqrt(%s)" (to_string a)
  | Unop (Abs, a) -> Printf.sprintf "abs(%s)" (to_string a)
  | Select (c, a, b) ->
    Printf.sprintf "select(%s, %s, %s)" (cond_to_string c) (to_string a) (to_string b)

and cond_to_string = function
  | Cmp (op, a, b) -> Printf.sprintf "(%s %s %s)" (to_string a) (cmpop_str op) (to_string b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (cond_to_string a) (cond_to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (cond_to_string a) (cond_to_string b)
  | Not a -> Printf.sprintf "!%s" (cond_to_string a)
  | Bconst b -> if b then "true" else "false"

let pp fmt e = Format.pp_print_string fmt (to_string e)
