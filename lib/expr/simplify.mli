(** Algebraic simplification of expressions.

    Feature formulas extracted from symbolic programs contain many
    mechanically-generated redundancies (products of ones, nested divisions,
    log/exp chains from the gradient-stability substitution). This module
    normalises them with a terminating rule set; it never changes the value
    of the expression at any point of its domain. *)

val rules : Rewrite.rule list
(** The default simplification rule set. *)

val simplify : Expr.t -> Expr.t
(** Apply {!rules} to fixpoint, through one process-wide head-indexed
    handle whose per-domain memo makes repeated and shared subterms
    normalise once (see {!Rewrite.compile}). *)

val simplify_cond : Expr.cond -> Expr.cond
(** Simplify the expressions inside a condition. *)

val simplify_subst : (string -> Expr.t option) -> Expr.t -> Expr.t
(** [simplify_subst f e] is [simplify (Expr.subst f e)] — bit for bit — in
    a single bottom-up walk: variables are replaced and every rebuilt node
    is normalised in place, so the separate simplify pass over the
    substituted tree disappears. Used by the feature front-end for the
    [x = e^y] substitution on constraint margins. *)

val compiled : Rewrite.compiled
(** The process-wide handle behind {!simplify}; exposed so benchmarks can
    {!Rewrite.clear_memo} it between cold-compile measurements. *)
