(** Algebraic simplification of expressions.

    Feature formulas extracted from symbolic programs contain many
    mechanically-generated redundancies (products of ones, nested divisions,
    log/exp chains from the gradient-stability substitution). This module
    normalises them with a terminating rule set; it never changes the value
    of the expression at any point of its domain. *)

val rules : Rewrite.rule list
(** The default simplification rule set. *)

val simplify : Expr.t -> Expr.t
(** Apply {!rules} to fixpoint. *)

val simplify_cond : Expr.cond -> Expr.cond
(** Simplify the expressions inside a condition. *)
