(** Direct (tree-walking) evaluation of expressions.

    For the hot paths (gradient descent, evolutionary search) use
    {!module:Autodiff}'s compiled tapes instead; this module is the reference
    semantics that the tape compiler is tested against. *)

type env = string -> float
(** Total assignment of variables; unbound variables should raise. *)

exception Unbound_variable of string

val env_of_list : (string * float) list -> env
(** Builds an env; raises {!Unbound_variable} on lookup misses. *)

val eval : env -> Expr.t -> float

val eval_cond : env -> Expr.cond -> bool

val eval_list : env -> (string * float) list -> Expr.t -> float
(** [eval_list base overrides e] evaluates with [overrides] shadowing
    [base]. *)
