(** Symbolic scalar expressions over named variables.

    This is the language in which Felix expresses loop bounds, buffer access
    footprints, program features (Section 3.3 of the paper), and constraint
    penalty functions. Expressions are built with smart constructors that
    perform constant folding and cheap identity simplifications, so a
    feature-extraction pass can combine thousands of terms without the AST
    exploding.

    Boolean conditions are a separate syntactic class ([cond]) embedded only
    under [select]; after the smoothing pass ({!module:Smooth}) no [cond],
    [min], [max], [select] or [abs] node remains, making the result
    differentiable everywhere.

    Smart constructors hash-cons the nodes they build in a per-domain unique
    table: structurally equal terms constructed on the same domain are
    physically equal, so [equal] and [compare] short-circuit on identity and
    traversals can be memoised per node ({!module:Memo}). Hash-consing is an
    optimisation, not an invariant — terms built with the raw data
    constructors or unmarshalled from disk merely miss the fast paths. *)

type binop = Add | Sub | Mul | Div | Pow | Min | Max

type unop = Neg | Log | Exp | Sqrt | Abs

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type t =
  | Const of float
  | Var of string
  | Binop of binop * t * t
  | Unop of unop * t
  | Select of cond * t * t
      (** [Select (c, a, b)] is [a] when [c] holds, [b] otherwise. *)

and cond =
  | Cmp of cmpop * t * t
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Bconst of bool

(** {1 Smart constructors}

    All perform constant folding; binary ones also apply safe identities
    (x+0, x*1, x*0, x/1, x-x, pow with integer constant exponents, ...). *)

val const : float -> t
val int : int -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> t -> t
val powi : t -> int -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val neg : t -> t
val log_ : t -> t
val exp_ : t -> t
val sqrt_ : t -> t
val abs_ : t -> t
val select : cond -> t -> t -> t
val sum : t list -> t
val product : t list -> t

(** {1 Conditions} *)

val lt : t -> t -> cond
val le : t -> t -> cond
val gt : t -> t -> cond
val ge : t -> t -> cond
val eq : t -> t -> cond
val ne : t -> t -> cond
val and_ : cond -> cond -> cond
val or_ : cond -> cond -> cond
val not_ : cond -> cond
val btrue : cond
val bfalse : cond

(** {1 Semantics of primitive operators} *)

val apply_binop : binop -> float -> float -> float
val apply_unop : unop -> float -> float
val apply_cmpop : cmpop -> float -> float -> bool

(** {1 Inspection} *)

val zero : t
val one : t

val is_const : t -> bool
val const_value : t -> float option

val equal : t -> t -> bool
(** Structural equality, with an O(1) physical-identity fast path for
    hash-consed terms. *)

val compare : t -> t -> int
(** Total structural order compatible with [equal] ([compare a b = 0] iff
    [equal a b]), with the same physical fast path. *)

val hash : t -> int
(** Structural hash, consistent with [equal] (bounded-depth, O(1)-ish). *)

val id : t -> int
(** A small integer identifying this physical node on the current domain.
    Distinct nodes never share an id; on one domain a node's id is stable
    for its lifetime. Hash-consed construction makes structurally equal
    terms share a node and hence an id. *)

(** Memo tables keyed by node identity (via {!id}). Intended for
    single-traversal caches: create one per pass so shared subtrees of a
    hash-consed DAG are visited once instead of once per occurrence. *)
module Memo : sig
  type expr = t
  type 'a t

  val create : ?size:int -> unit -> 'a t
  val find_opt : 'a t -> expr -> 'a option
  val add : 'a t -> expr -> 'a -> unit

  val memo : 'a t -> (expr -> 'a) -> expr -> 'a
  (** [memo m f e] returns the cached value for [e] or computes, caches and
      returns [f e]. *)

  val length : 'a t -> int
  val clear : 'a t -> unit
end

val vars : t -> string list
(** Sorted, de-duplicated free variables. *)

val vars_cond : cond -> string list

val size : t -> int
(** Number of AST nodes (for complexity bounds in tests). *)

val subst : (string -> t option) -> t -> t
(** [subst f e] replaces each [Var v] where [f v = Some e'] by [e']. *)

val subst_cond : (string -> t option) -> cond -> cond

val map_children : (t -> t) -> t -> t
(** Apply [f] to immediate subexpressions (rebuilding with smart
    constructors); conditions are traversed too. *)

val map_cond : (t -> t) -> cond -> cond
(** Apply [f] to the expressions embedded in a condition. *)

val contains_nondiff : t -> bool
(** True when the expression contains [Select], [Min], [Max] or [Abs] —
    i.e. would not survive gradient descent without smoothing. *)

val to_string : t -> string
val cond_to_string : cond -> string
val pp : Format.formatter -> t -> unit
