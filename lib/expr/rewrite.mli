(** Rule-based expression rewriting.

    The paper uses egg (equality saturation in Rust) to apply its smoothing
    and simplification rules. This module is the OCaml substitute: rules are
    functions [Expr.t -> Expr.t option]; {!apply_fixpoint} applies a rule set
    bottom-up repeatedly until no rule fires (or a fuel bound is reached).
    Because our rules form a terminating, confluence-enough set (each
    strictly reduces a measure or eliminates a non-differentiable operator),
    a fixpoint pass reaches the same normal forms the paper's saturation
    would pick out.

    Two engine-level optimisations keep the front-end hot path cheap, both
    observationally identical to the naive engine (verified by property
    tests against {!apply_fixpoint_naive}):

    - rules are indexed by the head constructor they can fire on
      ({!head}), so a node only tries the rules that could match it;
    - the fixpoint is driven off hash-consed node ids through an id-keyed
      memo ({!compile}/{!normalize}), so shared subterms — and, across
      calls on the same compiled handle, previously normalised terms — are
      skipped in O(1). *)

type head =
  | Hconst
  | Hvar
  | Hbinop of Expr.binop
  | Hunop of Expr.unop
  | Hselect

type rule = {
  name : string;
  heads : head list option;
      (** Top constructors the rule can fire on; [None] means "any". A rule
          must list every head on which [apply] can return a changed term —
          skipping an unlisted head is assumed observationally identical. *)
  apply : Expr.t -> Expr.t option;
}

val rule : ?heads:head list -> string -> (Expr.t -> Expr.t option) -> rule

(** {2 Compiled rule sets} *)

type compiled
(** A head-indexed rule set plus a per-domain persistent normal-form memo
    (capped; domain-local storage makes it safe under the runtime's worker
    domains without locking, exactly like [Factorize]'s memo). *)

val compile : ?memo_cap:int -> rule list -> compiled
(** [memo_cap] (default 8192) bounds the per-domain memo; on overflow it is
    cleared, not LRU-trimmed. *)

val normalize : ?max_iters:int -> compiled -> Expr.t -> Expr.t
(** Normal form of the term under the rule set: children first, then the
    root repeatedly until stable. Reuses (and extends) the handle's
    per-domain memo, so repeated or shared subterms normalise once.
    [max_iters] mirrors {!apply_fixpoint}'s fuel (the per-root rewrite
    budget is [8 * max_iters], matching the historical pass engine). *)

val clear_memo : compiled -> unit
(** Drop the calling domain's memo (benchmark hygiene: lets a cold-compile
    measurement start without warm normal forms). *)

val apply_fixpoint : ?max_iters:int -> rule list -> Expr.t -> Expr.t
(** One-shot {!normalize}: indexes [rules] and runs with a fresh (per-call)
    memo. [max_iters] (default 64) bounds the work; the result is safe to
    truncate early because every intermediate term is semantically equal to
    the input. *)

(** {2 Historical engine (reference for tests)} *)

val rewrite_once : rule list -> Expr.t -> Expr.t * int
(** One bottom-up pass of the pass-based engine; returns the rewritten term
    and the number of rule firings. *)

val apply_fixpoint_naive : ?max_iters:int -> rule list -> Expr.t -> Expr.t
(** The historical engine: linear rule scan at every node, whole-tree
    passes iterated to a fixpoint. The property tests assert
    [apply_fixpoint] returns exactly its normal forms. *)

val count_firings : rule list -> Expr.t -> (string * int) list
(** Diagnostic: which rules fire (once) on the term, for tests. *)
