(** Rule-based expression rewriting.

    The paper uses egg (equality saturation in Rust) to apply its smoothing
    and simplification rules. This module is the OCaml substitute: rules are
    functions [Expr.t -> Expr.t option]; {!apply_fixpoint} applies a rule set
    bottom-up repeatedly until no rule fires (or a fuel bound is reached).
    Because our rules form a terminating, confluence-enough set (each
    strictly reduces a measure or eliminates a non-differentiable operator),
    a fixpoint pass reaches the same normal forms the paper's saturation
    would pick out. *)

type rule = { name : string; apply : Expr.t -> Expr.t option }

val rule : string -> (Expr.t -> Expr.t option) -> rule

val rewrite_once : rule list -> Expr.t -> Expr.t * int
(** One bottom-up pass; returns the rewritten term and the number of rule
    firings. *)

val apply_fixpoint : ?max_iters:int -> rule list -> Expr.t -> Expr.t
(** Iterate {!rewrite_once} until no rule fires. [max_iters] (default 64)
    bounds the number of passes; the pass is safe to truncate early because
    every intermediate term is semantically equal to the input. *)

val count_firings : rule list -> Expr.t -> (string * int) list
(** Diagnostic: which rules fire (once) on the term, for tests. *)
