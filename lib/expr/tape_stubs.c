/* Compiled tape superop kernels, vectorised across candidate lanes.
 *
 * A plan (autodiff.ml, module Plan) is a flat array of stride-12 superop
 * rows over a register arena of batch planes: plane[reg * cap + lane].
 * Each row is [op; dst_v; dst_a; o1_v; o1_a; o2_v; o2_a; o3_v; o3_a;
 * o4_v; o4_a; 0]. The forward entry runs the rows in order, the backward
 * entry in reverse; both execute one whole superop across all lanes per
 * dispatch. Every lane's per-operation sequence — operand order, the
 * zero-adjoint guard, the order of adjoint accumulation (dst-local, then
 * third operand, then first, then second), the 0.0 + x normalisation of a
 * fused intermediate's adjoint — is exactly the tape interpreter's, so
 * each lane is bit-identical to the scalar OCaml sweep. The build flags
 * (dune: -O3 -ffp-contract=off -fno-trapping-math) keep IEEE semantics
 * exact (no FMA contraction, no reassociation, signed zeros honoured)
 * while letting GCC if-convert guards into lane blends.
 *
 * Value planes may alias: the register allocator reuses a dead operand's
 * register for the destination, and an instruction may use one slot for
 * both operands — so arena/adjoint pointers are deliberately NOT restrict-
 * qualified, and stores follow interpreter program order per lane.
 *
 * libm calls (log/exp/sqrt/pow) stay scalar calls into the same glibc
 * libm the OCaml primitives use; GCC does not vectorise them without
 * -ffast-math, which is exactly what bit-identity needs.
 *
 * These functions allocate nothing and never call back into the runtime,
 * so they are declared [@@noalloc] on the OCaml side.
 */

#include <caml/mlvalues.h>
#include <math.h>
#include <string.h>

#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && defined(__gnu_linux__)
#define LANE_CLONES __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define LANE_CLONES
#endif

/* OCaml's Float.min / Float.max, bit for bit (NaN-propagating, -0 < +0) —
 * NOT C fmin/fmax, which differ on NaN. */
static inline double ocaml_fmin(double x, double y)
{
  if (y > x || (!signbit(y) && signbit(x))) return isnan(y) ? y : x;
  return isnan(x) ? x : y;
}

static inline double ocaml_fmax(double x, double y)
{
  if (y > x || (!signbit(y) && signbit(x))) return isnan(x) ? x : y;
  return isnan(y) ? y : x;
}

/* ---- forward kernels ----------------------------------------------------- */

LANE_CLONES static void fwd_bin(int k, double *d, const double *a,
                                const double *b, long n)
{
  switch (k) {
  case 0: for (long l = 0; l < n; l++) d[l] = a[l] + b[l]; break;
  case 1: for (long l = 0; l < n; l++) d[l] = a[l] - b[l]; break;
  case 2: for (long l = 0; l < n; l++) d[l] = a[l] * b[l]; break;
  case 3: for (long l = 0; l < n; l++) d[l] = a[l] / b[l]; break;
  case 4: for (long l = 0; l < n; l++) d[l] = pow(a[l], b[l]); break;
  case 5: for (long l = 0; l < n; l++) d[l] = ocaml_fmin(a[l], b[l]); break;
  default: for (long l = 0; l < n; l++) d[l] = ocaml_fmax(a[l], b[l]); break;
  }
}

LANE_CLONES static void fwd_un(int k, double *d, const double *a, long n)
{
  switch (k) {
  case 0: for (long l = 0; l < n; l++) d[l] = -a[l]; break;
  case 1: for (long l = 0; l < n; l++) d[l] = log(a[l]); break;
  case 2: for (long l = 0; l < n; l++) d[l] = exp(a[l]); break;
  case 3: for (long l = 0; l < n; l++) d[l] = sqrt(a[l]); break;
  default: for (long l = 0; l < n; l++) d[l] = fabs(a[l]); break;
  }
}

LANE_CLONES static void fwd_sel(int k, double *d, const double *lv,
                                const double *rv, const double *av,
                                const double *bv, long n)
{
  switch (k) {
  case 0: for (long l = 0; l < n; l++) d[l] = lv[l] < rv[l] ? av[l] : bv[l]; break;
  case 1: for (long l = 0; l < n; l++) d[l] = lv[l] <= rv[l] ? av[l] : bv[l]; break;
  case 2: for (long l = 0; l < n; l++) d[l] = lv[l] > rv[l] ? av[l] : bv[l]; break;
  case 3: for (long l = 0; l < n; l++) d[l] = lv[l] >= rv[l] ? av[l] : bv[l]; break;
  case 4: for (long l = 0; l < n; l++) d[l] = lv[l] == rv[l] ? av[l] : bv[l]; break;
  default: for (long l = 0; l < n; l++) d[l] = lv[l] != rv[l] ? av[l] : bv[l]; break;
  }
}

/* Fused v = (a OP1 b) OP2 c. The intermediate t never touches memory; the
 * two IEEE operations happen in the interpreter's order per lane. */
#define F2(OP1, OP2)                                                     \
  for (long l = 0; l < n; l++) {                                         \
    const double t = a[l] OP1 b[l];                                      \
    d[l] = t OP2 c[l];                                                   \
  }                                                                      \
  break;

LANE_CLONES static void fwd_bin2(int k, double *d, const double *a,
                                 const double *b, const double *c, long n)
{
  switch (k) {
  case 0:  F2(+, +) case 1:  F2(+, -) case 2:  F2(+, *) case 3:  F2(+, /)
  case 4:  F2(-, +) case 5:  F2(-, -) case 6:  F2(-, *) case 7:  F2(-, /)
  case 8:  F2(*, +) case 9:  F2(*, -) case 10: F2(*, *) case 11: F2(*, /)
  case 12: F2(/, +) case 13: F2(/, -) case 14: F2(/, *) default: F2(/, /)
  }
}

/* Fused v = c OP2 (a OP1 b). */
#define F2R(OP1, OP2)                                                    \
  for (long l = 0; l < n; l++) {                                         \
    const double t = a[l] OP1 b[l];                                      \
    d[l] = c[l] OP2 t;                                                   \
  }                                                                      \
  break;

LANE_CLONES static void fwd_bin2r(int k, double *d, const double *a,
                                  const double *b, const double *c, long n)
{
  switch (k) {
  case 0:  F2R(+, +) case 1:  F2R(+, -) case 2:  F2R(+, *) case 3:  F2R(+, /)
  case 4:  F2R(-, +) case 5:  F2R(-, -) case 6:  F2R(-, *) case 7:  F2R(-, /)
  case 8:  F2R(*, +) case 9:  F2R(*, -) case 10: F2R(*, *) case 11: F2R(*, /)
  case 12: F2R(/, +) case 13: F2R(/, -) case 14: F2R(/, *) default: F2R(/, /)
  }
}

/* Fused v = un(a OP1 b), un in {log, exp, sqrt}. */
#define FU(UN, OP1)                                                      \
  for (long l = 0; l < n; l++) d[l] = UN(a[l] OP1 b[l]);                 \
  break;

LANE_CLONES static void fwd_unbin(int k, double *d, const double *a,
                                  const double *b, long n)
{
  switch (k) {
  case 0:  FU(log, +) case 1:  FU(log, -) case 2:  FU(log, *) case 3:  FU(log, /)
  case 4:  FU(exp, +) case 5:  FU(exp, -) case 6:  FU(exp, *) case 7:  FU(exp, /)
  case 8:  FU(sqrt, +) case 9:  FU(sqrt, -) case 10: FU(sqrt, *) default: FU(sqrt, /)
  }
}

/* ---- backward kernels -----------------------------------------------------
 *
 * Per lane: g = dst adjoint; if g != 0.0 apply the interpreter's rule.
 * Adjoint planes of distinct slots are distinct, but a == b is possible,
 * so the two operand stores keep interpreter order (a then b). */

LANE_CLONES static void bwd_bin(int k, const double *dv, const double *dj,
                                const double *av, double *aj,
                                const double *bv, double *bj, long n)
{
  switch (k) {
  case 0: /* add */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) {
        aj[l] = aj[l] + g;
        bj[l] = bj[l] + g;
      }
    }
    break;
  case 1: /* sub */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) {
        aj[l] = aj[l] + g;
        bj[l] = bj[l] - g;
      }
    }
    break;
  case 2: /* mul */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) {
        const double va = av[l], vb = bv[l];
        aj[l] = aj[l] + g * vb;
        bj[l] = bj[l] + g * va;
      }
    }
    break;
  case 3: /* div */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) {
        const double va = av[l], vb = bv[l];
        aj[l] = aj[l] + g / vb;
        bj[l] = bj[l] - g * va / (vb * vb);
      }
    }
    break;
  case 4: /* pow */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) {
        const double va = av[l], vb = bv[l], v = dv[l];
        if (va != 0.0) aj[l] = aj[l] + g * vb * v / va;
        else aj[l] = aj[l] + g * vb * pow(va, vb - 1.0);
        if (va > 0.0) bj[l] = bj[l] + g * v * log(va);
      }
    }
    break;
  case 5: /* min */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) {
        if (av[l] <= bv[l]) aj[l] = aj[l] + g;
        else bj[l] = bj[l] + g;
      }
    }
    break;
  default: /* max */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) {
        if (av[l] >= bv[l]) aj[l] = aj[l] + g;
        else bj[l] = bj[l] + g;
      }
    }
    break;
  }
}

LANE_CLONES static void bwd_un(int k, const double *dv, const double *dj,
                               const double *av, double *aj, long n)
{
  switch (k) {
  case 0: /* neg */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) aj[l] = aj[l] - g;
    }
    break;
  case 1: /* log */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) aj[l] = aj[l] + g / av[l];
    }
    break;
  case 2: /* exp: derivative is the stored result */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) aj[l] = aj[l] + g * dv[l];
    }
    break;
  case 3: /* sqrt */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) aj[l] = aj[l] + g / (2.0 * dv[l]);
    }
    break;
  default: /* abs */
    for (long l = 0; l < n; l++) {
      const double g = dj[l];
      if (g != 0.0) aj[l] = aj[l] + (av[l] >= 0.0 ? g : -g);
    }
    break;
  }
}

LANE_CLONES static void bwd_sel(int k, const double *dj, const double *lv,
                                const double *rv, double *aj, double *bj,
                                long n)
{
#define BSEL(CMP)                                                        \
  for (long l = 0; l < n; l++) {                                         \
    const double g = dj[l];                                              \
    if (g != 0.0) {                                                      \
      if (lv[l] CMP rv[l]) aj[l] = aj[l] + g;                            \
      else bj[l] = bj[l] + g;                                            \
    }                                                                    \
  }                                                                      \
  break;
  switch (k) {
  case 0: BSEL(<) case 1: BSEL(<=) case 2: BSEL(>)
  case 3: BSEL(>=) case 4: BSEL(==) default: BSEL(!=)
  }
#undef BSEL
}

/* Propagation of the fused intermediate's adjoint gt into a and b — the
 * interpreter's Ibin rule behind t's own zero-adjoint guard. */
#define PROP_ADD                                                         \
  if (gt != 0.0) {                                                       \
    aj[l] = aj[l] + gt;                                                  \
    bj[l] = bj[l] + gt;                                                  \
  }
#define PROP_SUB                                                         \
  if (gt != 0.0) {                                                       \
    aj[l] = aj[l] + gt;                                                  \
    bj[l] = bj[l] - gt;                                                  \
  }
#define PROP_MUL                                                         \
  if (gt != 0.0) {                                                       \
    aj[l] = aj[l] + gt * vb;                                             \
    bj[l] = bj[l] + gt * va;                                             \
  }
#define PROP_DIV                                                         \
  if (gt != 0.0) {                                                       \
    aj[l] = aj[l] + gt / vb;                                             \
    bj[l] = bj[l] - gt * va / (vb * vb);                                 \
  }

/* v = t OP2 c (t left): the interpreter accumulates t's adjoint into a
 * zero cell first (re-materialised as the 0.0 + x normalisation), then
 * updates adj[c], then runs t's own rule. Store order: c, a, b. */
#define GTC2_ADD const double gt = 0.0 + g; cj[l] = cj[l] + g;
#define GTC2_SUB const double gt = 0.0 + g; cj[l] = cj[l] - g;
#define GTC2_MUL const double gt = 0.0 + g * vc; cj[l] = cj[l] + g * vt;
#define GTC2_DIV const double gt = 0.0 + g / vc; cj[l] = cj[l] - g * vt / (vc * vc);

#define B2(OP1, GTC, PROP)                                               \
  for (long l = 0; l < n; l++) {                                         \
    const double g = dj[l];                                              \
    if (g != 0.0) {                                                      \
      const double va = av[l], vb = bv[l], vc = cv[l];                   \
      const double vt = va OP1 vb;                                       \
      (void)vt;                                                          \
      (void)vc;                                                          \
      GTC;                                                               \
      PROP;                                                              \
    }                                                                    \
  }                                                                      \
  break;

LANE_CLONES static void bwd_bin2(int k, const double *dj, const double *av,
                                 double *aj, const double *bv, double *bj,
                                 const double *cv, double *cj, long n)
{
  switch (k) {
  case 0:  B2(+, GTC2_ADD, PROP_ADD) case 1:  B2(+, GTC2_SUB, PROP_ADD)
  case 2:  B2(+, GTC2_MUL, PROP_ADD) case 3:  B2(+, GTC2_DIV, PROP_ADD)
  case 4:  B2(-, GTC2_ADD, PROP_SUB) case 5:  B2(-, GTC2_SUB, PROP_SUB)
  case 6:  B2(-, GTC2_MUL, PROP_SUB) case 7:  B2(-, GTC2_DIV, PROP_SUB)
  case 8:  B2(*, GTC2_ADD, PROP_MUL) case 9:  B2(*, GTC2_SUB, PROP_MUL)
  case 10: B2(*, GTC2_MUL, PROP_MUL) case 11: B2(*, GTC2_DIV, PROP_MUL)
  case 12: B2(/, GTC2_ADD, PROP_DIV) case 13: B2(/, GTC2_SUB, PROP_DIV)
  case 14: B2(/, GTC2_MUL, PROP_DIV) default: B2(/, GTC2_DIV, PROP_DIV)
  }
}

/* v = c OP2 t (t right): interpreter updates adj[c] (the left operand)
 * first, then t's adjoint, then t's own rule. Same store order. */
#define GTC2R_ADD cj[l] = cj[l] + g; const double gt = 0.0 + g;
#define GTC2R_SUB cj[l] = cj[l] + g; const double gt = 0.0 - g;
#define GTC2R_MUL cj[l] = cj[l] + g * vt; const double gt = 0.0 + g * vc;
#define GTC2R_DIV cj[l] = cj[l] + g / vt; const double gt = 0.0 - g * vc / (vt * vt);

LANE_CLONES static void bwd_bin2r(int k, const double *dj, const double *av,
                                  double *aj, const double *bv, double *bj,
                                  const double *cv, double *cj, long n)
{
  switch (k) {
  case 0:  B2(+, GTC2R_ADD, PROP_ADD) case 1:  B2(+, GTC2R_SUB, PROP_ADD)
  case 2:  B2(+, GTC2R_MUL, PROP_ADD) case 3:  B2(+, GTC2R_DIV, PROP_ADD)
  case 4:  B2(-, GTC2R_ADD, PROP_SUB) case 5:  B2(-, GTC2R_SUB, PROP_SUB)
  case 6:  B2(-, GTC2R_MUL, PROP_SUB) case 7:  B2(-, GTC2R_DIV, PROP_SUB)
  case 8:  B2(*, GTC2R_ADD, PROP_MUL) case 9:  B2(*, GTC2R_SUB, PROP_MUL)
  case 10: B2(*, GTC2R_MUL, PROP_MUL) case 11: B2(*, GTC2R_DIV, PROP_MUL)
  case 12: B2(/, GTC2R_ADD, PROP_DIV) case 13: B2(/, GTC2R_SUB, PROP_DIV)
  case 14: B2(/, GTC2R_MUL, PROP_DIV) default: B2(/, GTC2R_DIV, PROP_DIV)
  }
}

/* v = un(a OP1 b): t's adjoint from the unop rule (exp/sqrt read the
 * stored result dv; log recomputes t bit-identically), then OP1's rule. */
#define BU(GT_EXPR, PROP)                                                \
  for (long l = 0; l < n; l++) {                                         \
    const double g = dj[l];                                              \
    if (g != 0.0) {                                                      \
      const double va = av[l], vb = bv[l];                               \
      (void)va;                                                          \
      (void)vb;                                                          \
      const double gt = GT_EXPR;                                         \
      PROP;                                                              \
    }                                                                    \
  }                                                                      \
  break;

LANE_CLONES static void bwd_unbin(int k, const double *dv, const double *dj,
                                  const double *av, double *aj,
                                  const double *bv, double *bj, long n)
{
  switch (k) {
  case 0:  BU(0.0 + g / (va + vb), PROP_ADD)
  case 1:  BU(0.0 + g / (va - vb), PROP_SUB)
  case 2:  BU(0.0 + g / (va * vb), PROP_MUL)
  case 3:  BU(0.0 + g / (va / vb), PROP_DIV)
  case 4:  BU(0.0 + g * dv[l], PROP_ADD)
  case 5:  BU(0.0 + g * dv[l], PROP_SUB)
  case 6:  BU(0.0 + g * dv[l], PROP_MUL)
  case 7:  BU(0.0 + g * dv[l], PROP_DIV)
  case 8:  BU(0.0 + g / (2.0 * dv[l]), PROP_ADD)
  case 9:  BU(0.0 + g / (2.0 * dv[l]), PROP_SUB)
  case 10: BU(0.0 + g / (2.0 * dv[l]), PROP_MUL)
  default: BU(0.0 + g / (2.0 * dv[l]), PROP_DIV)
  }
}

/* ---- entry points ---------------------------------------------------------
 *
 * value layout: a float array is a pointer to its unboxed doubles; an int
 * array stores tagged immediates read with Long_val. */

CAMLprim value felix_tape_fwd(value vcode, value varena, value vxs, value vout,
                              value vinmap, value voutregs, value vcap,
                              value vbatch, value vnin, value vnout)
{
  double *const arena = (double *)varena;
  const double *xs = (const double *)vxs;
  double *out = (double *)vout;
  const long cap = Long_val(vcap), batch = Long_val(vbatch);
  const long nin = Long_val(vnin), nout = Long_val(vnout);

  const long nm = (long)Wosize_val(vinmap) / 2;
  for (long j = 0; j < nm; j++) {
    const long k = Long_val(Field(vinmap, 2 * j));
    double *dst = arena + Long_val(Field(vinmap, 2 * j + 1)) * cap;
    for (long l = 0; l < batch; l++) dst[l] = xs[l * nin + k];
  }

  const long nsup = (long)Wosize_val(vcode) / 12;
  for (long s = 0; s < nsup; s++) {
    const long w = s * 12;
    const int op = (int)Long_val(Field(vcode, w));
    double *d = arena + Long_val(Field(vcode, w + 1)) * cap;
    const double *a = arena + Long_val(Field(vcode, w + 3)) * cap;
    const double *b = arena + Long_val(Field(vcode, w + 5)) * cap;
    if (op < 16) fwd_bin(op, d, a, b, batch);
    else if (op < 32) fwd_un(op - 16, d, a, batch);
    else if (op < 64)
      fwd_sel(op - 32, d, a, b, arena + Long_val(Field(vcode, w + 7)) * cap,
              arena + Long_val(Field(vcode, w + 9)) * cap, batch);
    else if (op < 96)
      fwd_bin2(op - 64, d, a, b, arena + Long_val(Field(vcode, w + 7)) * cap,
               batch);
    else if (op < 128)
      fwd_bin2r(op - 96, d, a, b, arena + Long_val(Field(vcode, w + 7)) * cap,
                batch);
    else fwd_unbin(op - 128, d, a, b, batch);
  }

  for (long k = 0; k < nout; k++) {
    const double *src = arena + Long_val(Field(voutregs, k)) * cap;
    for (long l = 0; l < batch; l++) out[l * nout + k] = src[l];
  }
  return Val_unit;
}

CAMLprim value felix_tape_fwd_byte(value *argv, int argn)
{
  (void)argn;
  return felix_tape_fwd(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                        argv[6], argv[7], argv[8], argv[9]);
}

CAMLprim value felix_tape_bwd(value vcode, value varena, value vadj, value vv,
                              value vgrad, value vinmap, value voutaregs,
                              value vcap, value vbatch, value vnin, value vnout)
{
  double *const arena = (double *)varena;
  double *const adj = (double *)vadj;
  const double *v = (const double *)vv;
  double *grad = (double *)vgrad;
  const long cap = Long_val(vcap), batch = Long_val(vbatch);
  const long nin = Long_val(vnin), nout = Long_val(vnout);

  /* +0.0 is all-zero bytes: whole-arena memset equals the interpreter's
   * per-slot Array.fill with 0.0. */
  memset(adj, 0, (size_t)Wosize_val(vadj) * sizeof(double));
  memset(grad, 0, (size_t)(batch * nin) * sizeof(double));

  for (long k = 0; k < nout; k++) {
    double *dst = adj + Long_val(Field(voutaregs, k)) * cap;
    for (long l = 0; l < batch; l++) dst[l] = dst[l] + v[l * nout + k];
  }

  const long nsup = (long)Wosize_val(vcode) / 12;
  for (long s = nsup - 1; s >= 0; s--) {
    const long w = s * 12;
    const int op = (int)Long_val(Field(vcode, w));
    const double *dv = arena + Long_val(Field(vcode, w + 1)) * cap;
    const double *dj = adj + Long_val(Field(vcode, w + 2)) * cap;
    const double *av = arena + Long_val(Field(vcode, w + 3)) * cap;
    double *aj = adj + Long_val(Field(vcode, w + 4)) * cap;
    const double *bv = arena + Long_val(Field(vcode, w + 5)) * cap;
    double *bj = adj + Long_val(Field(vcode, w + 6)) * cap;
    if (op < 16) bwd_bin(op, dv, dj, av, aj, bv, bj, batch);
    else if (op < 32) bwd_un(op - 16, dv, dj, av, aj, batch);
    else if (op < 64)
      bwd_sel(op - 32, dj, av, bv, adj + Long_val(Field(vcode, w + 8)) * cap,
              adj + Long_val(Field(vcode, w + 10)) * cap, batch);
    else if (op < 96)
      bwd_bin2(op - 64, dj, av, aj, bv, bj,
               arena + Long_val(Field(vcode, w + 7)) * cap,
               adj + Long_val(Field(vcode, w + 8)) * cap, batch);
    else if (op < 128)
      bwd_bin2r(op - 96, dj, av, aj, bv, bj,
                arena + Long_val(Field(vcode, w + 7)) * cap,
                adj + Long_val(Field(vcode, w + 8)) * cap, batch);
    else bwd_unbin(op - 128, dv, dj, av, aj, bv, bj, batch);
  }

  const long nm = (long)Wosize_val(vinmap) / 2;
  for (long j = 0; j < nm; j++) {
    const long k = Long_val(Field(vinmap, 2 * j));
    const double *src = adj + Long_val(Field(vinmap, 2 * j + 1)) * cap;
    for (long l = 0; l < batch; l++) {
      const double g = src[l];
      if (g != 0.0) grad[l * nin + k] = grad[l * nin + k] + g;
    }
  }
  return Val_unit;
}

CAMLprim value felix_tape_bwd_byte(value *argv, int argn)
{
  (void)argn;
  return felix_tape_bwd(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                        argv[6], argv[7], argv[8], argv[9], argv[10]);
}
