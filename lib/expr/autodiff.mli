(** Automatic differentiation of expressions.

    Two engines are provided:

    - {!diff}: symbolic differentiation, returning a new expression. Used in
      tests and for inspecting derivative formulas; applies subgradient
      conventions to non-smooth operators.
    - {!module:Tape}: a compiled reverse-mode engine. A list of expressions
      sharing input variables is compiled once into a common-subexpression-
      eliminated instruction tape; evaluation and vector-Jacobian products
      then run in time linear in the tape. This is the engine the gradient
      descent optimizer (Algorithm 1) uses: per step it needs one tape
      evaluation of the 80+ feature formulas plus one VJP with the cost
      model's input-gradient as the adjoint vector. *)

val diff : Expr.t -> string -> Expr.t
(** [diff e x] is the partial derivative de/dx as an expression.
    Non-smooth operators get subgradients: [d|x| = select(x >= 0, 1, -1)],
    [d max(a,b)] follows the larger branch, [d select] differentiates the
    taken branch. *)

val gradient : Expr.t -> (string * Expr.t) list
(** Symbolic gradient with respect to all free variables. *)

(** Compiled expression tapes. *)
module Tape : sig
  type t

  val compile : inputs:string list -> Expr.t list -> t
  (** [compile ~inputs exprs] compiles the expressions against the given
      input ordering. Raises [Invalid_argument] if an expression mentions a
      variable not listed in [inputs]. Common subexpressions across all
      [exprs] are shared. *)

  val num_inputs : t -> int
  val num_outputs : t -> int

  val length : t -> int
  (** Number of tape instructions (after CSE); exposed for tests. *)

  val eval : t -> float array -> float array
  (** [eval t xs] returns the outputs; [Array.length xs] must equal
      [num_inputs t]. *)

  val vjp : t -> float array -> float array -> float array * float array
  (** [vjp t xs v] returns [(outputs, grad)] where
      [grad.(i) = d(sum_k v.(k) * out_k) / d xs.(i)] — a single reverse
      sweep. *)

  val jacobian : t -> float array -> float array * float array array
  (** [(outputs, jac)] with [jac.(k).(i) = d out_k / d x_i]; implemented as
      [num_outputs] reverse sweeps. *)
end

val check_gradient :
  ?eps:float -> ?tol:float -> inputs:string list -> Expr.t -> float array -> bool
(** Finite-difference validation of the tape gradient at a point, used by
    the property-based tests. *)
