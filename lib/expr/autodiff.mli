(** Automatic differentiation of expressions.

    Two engines are provided:

    - {!diff}: symbolic differentiation, returning a new expression. Used in
      tests and for inspecting derivative formulas; applies subgradient
      conventions to non-smooth operators.
    - {!module:Tape}: a compiled reverse-mode engine. A list of expressions
      sharing input variables is compiled once into a common-subexpression-
      eliminated instruction tape; evaluation and vector-Jacobian products
      then run in time linear in the tape. This is the engine the gradient
      descent optimizer (Algorithm 1) uses: per step it needs one tape
      evaluation of the 80+ feature formulas plus one VJP with the cost
      model's input-gradient as the adjoint vector. *)

val diff : Expr.t -> string -> Expr.t
(** [diff e x] is the partial derivative de/dx as an expression.
    Non-smooth operators get subgradients: [d|x| = select(x >= 0, 1, -1)],
    [d max(a,b)] follows the larger branch, [d select] differentiates the
    taken branch. *)

val gradient : Expr.t -> (string * Expr.t) list
(** Symbolic gradient with respect to all free variables. *)

(** Compiled expression tapes. *)
module Tape : sig
  type t

  val compile : ?optimize:bool -> inputs:string list -> Expr.t list -> t
  (** [compile ~inputs exprs] compiles the expressions against the given
      input ordering. Raises [Invalid_argument] if an expression mentions a
      variable not listed in [inputs]. Common subexpressions across all
      [exprs] are shared. Unless [optimize:false], the post-compile
      optimiser ({!optimize}) runs on the result. *)

  val num_inputs : t -> int
  val num_outputs : t -> int

  val length : t -> int
  (** Number of tape instructions (after CSE); exposed for tests. *)

  (** {2 Post-compile optimiser}

      Constant folding, duplicate-constant merging (keyed by bit pattern),
      bit-exact copy propagation (x*1, x/1, x-(+0.0), min/max(x,x), selects
      with constant conditions or equal branches, -(-x); each applied only
      when the source slot has no other consumer), and dead-slot
      elimination with liveness-based renumbering. Every rewrite preserves
      {!eval} and {!vjp} results bitwise, including the order of float
      adjoint accumulation. *)

  type opt_report = {
    slots_pre : int;
    slots_post : int;
    folded : int;  (** instructions that became constants *)
    aliased : int;  (** copy-like instructions redirected to their source *)
    dead : int;  (** slots removed by dead-code elimination *)
  }

  val optimize : t -> t
  val optimize_report : t -> t * opt_report

  (** {2 Bit-exact serialization}

      Codec for the persistent pack cache: constants cross as 16-hex-char
      IEEE-754 bit strings, so a decoded tape evaluates bitwise-identically
      to the encoded one (signed zeros and NaN payloads included). *)

  val to_json : t -> Json.t

  val of_json : Json.t -> t option
  (** [None] on any malformed or structurally invalid payload (bad opcode,
      out-of-range or forward slot reference, bad float bits) — a corrupt
      cache entry decodes to [None], never a crash. *)

  val eval : t -> float array -> float array
  (** [eval t xs] returns the outputs; [Array.length xs] must equal
      [num_inputs t]. *)

  val vjp : t -> float array -> float array -> float array * float array
  (** [vjp t xs v] returns [(outputs, grad)] where
      [grad.(i) = d(sum_k v.(k) * out_k) / d xs.(i)] — one forward plus one
      reverse sweep. *)

  val vjp_with : t -> float array -> (float array -> float array) -> float array * float array
  (** [vjp_with t xs f] runs one forward sweep, computes the output adjoint
      [v = f outputs], then runs one reverse sweep: [(outputs, grad)]
      without a second forward pass for adjoints that depend on the
      outputs. [f] receives a workspace-owned buffer it must not retain;
      the returned outputs are a fresh copy. *)

  val jacobian : t -> float array -> float array * float array array
  (** [(outputs, jac)] with [jac.(k).(i) = d out_k / d x_i]; one shared
      forward pass followed by [num_outputs] reverse sweeps. *)

  (** {2 Caller-owned workspaces}

      A [workspace] owns the value/adjoint/output buffers of one
      forward-backward sweep so the descent inner loop runs with zero
      allocation. Buffers are fully rewritten before being read, so a
      workspace may be reused across calls (and moved between points)
      without affecting results; it must match the tape it was created
      from and must not be shared by concurrent callers. *)

  type workspace

  val workspace : t -> workspace

  val forward_into : t -> workspace -> float array -> float array
  (** Runs the forward sweep, retaining all intermediate values in the
      workspace; returns the workspace-owned output buffer (do not
      retain). *)

  val backward_into : t -> workspace -> float array -> float array -> unit
  (** [backward_into t ws v grad] seeds the output adjoints from [v] and
      runs one reverse sweep against the values left by the last
      [forward_into], overwriting [grad] (length [num_inputs t]). *)

  val eval_vjp_into : t -> workspace -> float array -> float array -> float array -> float array
  (** [eval_vjp_into t ws xs v grad]: one forward + one backward sweep;
      returns the workspace-owned outputs and overwrites [grad].
      Bit-identical to {!vjp}, with zero allocation. *)

  (** {2 Batched (structure-of-arrays) sweeps}

      A [batch_workspace] evaluates the tape over up to its capacity of
      points in lockstep: instruction dispatch is paid once per slot
      instead of once per point, and the per-slot arithmetic runs over a
      contiguous strip of lanes. Each lane executes exactly the scalar
      instruction sequence (including the zero-adjoint skip of the reverse
      sweep), so lane [l] of a batched sweep is bitwise-identical to a
      scalar {!forward_into}/{!backward_into} over that point alone, at
      any batch size. Same ownership rules as {!workspace}: one batch
      workspace per concurrent evaluator, reuse across calls is safe. *)

  type batch_workspace

  val batch_workspace : t -> batch:int -> batch_workspace
  (** Buffers for up to [batch] lanes ([batch >= 1]). *)

  val batch_capacity : batch_workspace -> int

  val forward_batch_into : t -> batch_workspace -> batch:int -> float array -> float array
  (** [forward_batch_into t bws ~batch xs] evaluates lanes [0..batch-1];
      [xs] holds the points as lane-major rows ([xs.(l * num_inputs + i)];
      rows beyond [batch] are ignored). Returns the workspace-owned
      lane-major output matrix [out.(l * num_outputs + k)] (do not
      retain); intermediate values are kept for {!backward_batch_into}. *)

  val backward_batch_into : t -> batch_workspace -> batch:int -> float array -> float array -> unit
  (** [backward_batch_into t bws ~batch v grad] seeds each lane's output
      adjoints from the lane-major rows of [v] and runs one reverse sweep
      per lane against the values of the last {!forward_batch_into},
      overwriting the first [batch] lane-major rows of [grad]
      ([grad.(l * num_inputs + i)]). *)

  (** {2 Compiled superop plans}

      {!compile_plan} lowers a tape into a flat superop program: chains of
      two adjacent elementwise ops fused into single superops, constants
      pooled into pre-broadcast arena planes, and slot lifetimes analysed
      so values reuse a compact register arena. {!plan_forward_batch_into}
      and {!plan_backward_batch_into} execute one whole superop across all
      lanes per dispatch — through strict-IEEE C kernels (tape_stubs.c) or
      the portable OCaml kernels ({!set_vector_kernels}) — and are
      bitwise-identical, lane for lane, to {!forward_batch_into} /
      {!backward_batch_into} at every batch size: operand order, the
      zero-adjoint guard and the order of adjoint accumulation are part of
      the plan, not of the kernel. *)

  module Plan : sig
    type t

    val num_inputs : t -> int
    val num_outputs : t -> int

    val source_ops : t -> int
    (** Non-constant, non-input tape instructions before fusion. *)

    val superops : t -> int
    (** Superops after fusion ([source_ops - fused_pairs]). *)

    val fused_pairs : t -> int

    (** Bit-exact serialization for the persistent pack cache — same
        contract as {!Tape.to_json}/{!Tape.of_json}: constants cross as
        16-hex-char IEEE-754 bit strings, [of_json] returns [None] on any
        malformed or structurally invalid payload (bad opcode,
        out-of-range register), never a crash. *)

    val to_json : t -> Json.t
    val of_json : Json.t -> t option
  end

  val compile_plan : t -> Plan.t

  val plan_compiles : unit -> int
  (** Process-lifetime count of {!compile_plan} calls (tests use this to
      prove a warm cache hit skipped plan compilation). *)

  val set_vector_kernels : bool -> unit
  (** Select the C superop kernels ([true], the default) or the portable
      OCaml kernels ([false]). Initialised to [false] when the
      [FELIX_NO_SIMD] environment variable is [1]/[true]/[yes]. Both
      produce bit-identical results; the toggle exists for platforms
      without the stubs' ISA assumptions and for differential testing. *)

  val using_vector_kernels : unit -> bool

  type plan_batch_workspace
  (** Register arena (value, adjoint and output planes) for one plan; same
      ownership rules as {!batch_workspace}. Constant planes are broadcast
      once at creation. *)

  val plan_batch_workspace : Plan.t -> batch:int -> plan_batch_workspace
  (** Buffers for up to [batch] lanes ([batch >= 1]). *)

  val plan_batch_capacity : plan_batch_workspace -> int

  val plan_forward_batch_into :
    Plan.t -> plan_batch_workspace -> batch:int -> float array -> float array
  (** As {!forward_batch_into}, over the compiled plan: lane-major input
      rows in, workspace-owned lane-major output matrix back (do not
      retain). Pinned intermediate planes are kept for
      {!plan_backward_batch_into}. *)

  val plan_backward_batch_into :
    Plan.t -> plan_batch_workspace -> batch:int -> float array -> float array -> unit
  (** As {!backward_batch_into}: seeds each lane's output adjoints from
      the lane-major rows of [v], sweeps the superops in reverse against
      the values of the last {!plan_forward_batch_into}, and overwrites
      the first [batch] lane-major rows of [grad]. Zero-adjoint lanes are
      skipped exactly as the interpreter's guard does. *)
end

val check_gradient :
  ?eps:float -> ?tol:float -> inputs:string list -> Expr.t -> float array -> bool
(** Finite-difference validation of the tape gradient at a point, used by
    the property-based tests. *)
