type individual = { pack : Pack.t; y : float array; key : string; predicted : float }

type trace = { evaluated : int; predictions : float list }

(* Variable groups of a pack: divisor groups from the schedule plus each
   free variable as a singleton; crossover and mutation act on whole groups
   so tile products stay divisor-consistent. *)
let groups_of pack =
  let sched = Pack.schedule pack in
  let names = Pack.var_names pack in
  let index_of n =
    let rec go i = if names.(i) = n then i else go (i + 1) in
    go 0
  in
  let div_groups =
    List.map
      (fun (extent, vars) -> (Some extent, List.map index_of vars))
      sched.Schedule.div_groups
  in
  let grouped = List.concat_map snd div_groups in
  let free =
    Array.to_list (Array.mapi (fun i _ -> i) names)
    |> List.filter (fun i -> not (List.mem i grouped))
    |> List.map (fun i -> (None, [ i ]))
  in
  div_groups @ free

let resample_group rng pack y (extent, idxs) =
  let y = Array.copy y in
  (match extent with
  | Some n ->
    let factors = Factorize.split rng n (List.length idxs + 1) in
    List.iteri (fun k i -> y.(i) <- log (float_of_int (List.nth factors k))) idxs
  | None ->
    List.iter
      (fun i ->
        let lo, hi = (Pack.bounds_log pack).(i) in
        y.(i) <- Rng.range rng lo hi)
      idxs);
  y

let mutate rng pack y =
  let groups = Array.of_list (groups_of pack) in
  if Array.length groups = 0 then None
  else begin
    let g = Rng.choose rng groups in
    let y' = resample_group rng pack y g in
    Pack.round_to_valid pack y'
  end

let crossover rng pack ya yb =
  let y = Array.copy ya in
  List.iter
    (fun (_, idxs) -> if Rng.bool rng then List.iter (fun i -> y.(i) <- yb.(i)) idxs)
    (groups_of pack);
  Pack.round_to_valid pack y

let search_round (cfg : Tuning_config.t) rng model packs ~elites ~already_measured =
  Telemetry.with_span Telemetry.global "ansor.search_round"
    ~attrs:[ ("packs", Telemetry.Int (List.length packs)) ]
  @@ fun () ->
  let packs = Array.of_list packs in
  if Array.length packs = 0 then invalid_arg "Evolutionary.search_round: no sketches";
  let prediction_cache : (string, float) Hashtbl.t = Hashtbl.create 512 in
  let all_predictions = ref [] in
  let evaluated = ref 0 in
  let score pack y key =
    match Hashtbl.find_opt prediction_cache key with
    | Some p -> p
    | None ->
      let p = Mlp.forward model (Pack.features_at pack y) in
      Hashtbl.replace prediction_cache key p;
      incr evaluated;
      all_predictions := p :: !all_predictions;
      p
  in
  let make pack y =
    let key = Pack.schedule_key pack y in
    { pack; y; key; predicted = score pack y key }
  in
  (* --- initial population -------------------------------------------------- *)
  let population = ref [] in
  let elite_seeds =
    List.filter (fun (p, _) -> Array.exists (fun q -> q == p) packs) elites
  in
  let target = cfg.population in
  let n_from_elites = min (target / 4) (List.length elite_seeds * 4) in
  let elite_arr = Array.of_list elite_seeds in
  for _ = 1 to n_from_elites do
    let pack, y = Rng.choose rng elite_arr in
    match mutate rng pack y with
    | Some y' -> population := make pack y' :: !population
    | None -> ()
  done;
  let attempts = ref 0 in
  while List.length !population < target && !attempts < target * 8 do
    incr attempts;
    let pack = Rng.choose rng packs in
    match Dataset.sample_valid_point rng pack 20 with
    | Some y -> population := make pack y :: !population
    | None -> ()
  done;
  (* --- generations ----------------------------------------------------------- *)
  let best_seen : (string, individual) Hashtbl.t = Hashtbl.create 256 in
  let remember ind = if not (Hashtbl.mem best_seen ind.key) then Hashtbl.replace best_seen ind.key ind in
  List.iter remember !population;
  for _gen = 1 to cfg.generations do
    let pop = Array.of_list !population in
    if Array.length pop > 0 then begin
      Array.sort (fun a b -> compare b.predicted a.predicted) pop;
      let elite_count = max 1 (Array.length pop / 10) in
      let next = ref [] in
      for i = 0 to elite_count - 1 do
        next := pop.(i) :: !next
      done;
      let tournament () =
        let a = Rng.choose rng pop and b = Rng.choose rng pop in
        if a.predicted >= b.predicted then a else b
      in
      let tries = ref 0 in
      while List.length !next < Array.length pop && !tries < Array.length pop * 4 do
        incr tries;
        let p1 = tournament () in
        let child =
          if Rng.uniform rng < cfg.mutation_prob then mutate rng p1.pack p1.y
          else begin
            let p2 = tournament () in
            if p1.pack == p2.pack then crossover rng p1.pack p1.y p2.y
            else mutate rng p1.pack p1.y
          end
        in
        match child with
        | Some y -> next := make p1.pack y :: !next
        | None -> ()
      done;
      List.iter remember !next;
      population := !next
    end
  done;
  let ranked =
    Hashtbl.fold (fun _ ind acc -> ind :: acc) best_seen []
    |> List.filter (fun ind -> not (already_measured ind.key))
    |> List.sort (fun a b -> compare b.predicted a.predicted)
  in
  let top = List.filteri (fun i _ -> i < cfg.nmeasure_ansor) ranked in
  Telemetry.Counter.incr ~by:!evaluated
    (Telemetry.counter Telemetry.global "ansor.evaluated");
  (top, { evaluated = !evaluated; predictions = List.rev !all_predictions })
