type individual = { pack : Pack.t; y : float array; key : string; predicted : float }

type trace = { evaluated : int; predictions : float list }

(* Variable groups of a pack: divisor groups from the schedule plus each
   free variable as a singleton; crossover and mutation act on whole groups
   so tile products stay divisor-consistent. *)
let groups_of pack =
  let sched = Pack.schedule pack in
  let names = Pack.var_names pack in
  let index_of n =
    let rec go i = if names.(i) = n then i else go (i + 1) in
    go 0
  in
  let div_groups =
    List.map
      (fun (extent, vars) -> (Some extent, List.map index_of vars))
      sched.Schedule.div_groups
  in
  let grouped = List.concat_map snd div_groups in
  let free =
    Array.to_list (Array.mapi (fun i _ -> i) names)
    |> List.filter (fun i -> not (List.mem i grouped))
    |> List.map (fun i -> (None, [ i ]))
  in
  div_groups @ free

let resample_group rng pack y (extent, idxs) =
  let y = Array.copy y in
  (match extent with
  | Some n ->
    let factors = Factorize.split rng n (List.length idxs + 1) in
    List.iteri (fun k i -> y.(i) <- log (float_of_int (List.nth factors k))) idxs
  | None ->
    List.iter
      (fun i ->
        let lo, hi = (Pack.bounds_log pack).(i) in
        y.(i) <- Rng.range rng lo hi)
      idxs);
  y

let mutate rng pack y =
  let groups = Array.of_list (groups_of pack) in
  if Array.length groups = 0 then None
  else begin
    let g = Rng.choose rng groups in
    let y' = resample_group rng pack y g in
    Pack.round_to_valid pack y'
  end

let crossover rng pack ya yb =
  let y = Array.copy ya in
  List.iter
    (fun (_, idxs) -> if Rng.bool rng then List.iter (fun i -> y.(i) <- yb.(i)) idxs)
    (groups_of pack);
  Pack.round_to_valid pack y

(* Population construction draws from the RNG in the same order as the
   historical sequential implementation, but cost-model scoring is deferred
   to a batch at each phase boundary (initial population, each generation):
   scoring is pure, so batching — and fanning the batch out across a
   runtime's domains — leaves every RNG draw, prediction list and the final
   ranking bit-identical to the sequential run. *)
let search_round (cfg : Tuning_config.t) rng ?runtime ?batch model packs ~elites
    ~already_measured =
  Telemetry.with_span Telemetry.global "ansor.search_round"
    ~attrs:[ ("packs", Telemetry.Int (List.length packs)) ]
  @@ fun () ->
  let packs = Array.of_list packs in
  if Array.length packs = 0 then invalid_arg "Evolutionary.search_round: no sketches";
  (* Fused predictors, one per pack; scoring goes through their pooled
     workspaces (bitwise-equal to Mlp.forward over Pack.features_at). *)
  let objs = Array.map (fun pack -> Objective.create ~lambda:cfg.lambda model pack) packs in
  let obj_of pack =
    let rec go i = if packs.(i) == pack then objs.(i) else go (i + 1) in
    go 0
  in
  let prediction_cache : (string, float) Hashtbl.t = Hashtbl.create 512 in
  let all_predictions = ref [] in
  let evaluated = ref 0 in
  (* [protos] in construction order; scores new keys and records their
     predictions in that same order. *)
  let score_batch protos =
    let seen_in_batch = Hashtbl.create 64 in
    let fresh = ref [] in
    List.iter
      (fun (pack, y, key) ->
        if
          (not (Hashtbl.mem prediction_cache key))
          && not (Hashtbl.mem seen_in_batch key)
        then begin
          Hashtbl.replace seen_in_batch key ();
          fresh := (pack, y, key) :: !fresh
        end)
      protos;
    let fresh = Array.of_list (List.rev !fresh) in
    let predict (pack, y, _key) = Objective.predict (obj_of pack) y in
    let preds =
      match batch with
      | Some b when b > 1 && Array.length fresh > 0 ->
        (* Batched population scoring: group fresh individuals by physical
           pack (population order within each group), tile each group into
           lockstep batches and score tiles through the SoA kernels. Each
           lane is bitwise the scalar predict, and write-back goes by
           original index, so predictions land exactly as the scalar
           map's. *)
        let preds = Array.make (Array.length fresh) 0.0 in
        let groups = ref [] in
        Array.iteri
          (fun i (pack, _, _) ->
            match List.find_opt (fun (p, _) -> p == pack) !groups with
            | Some (_, l) -> l := i :: !l
            | None -> groups := (pack, ref [ i ]) :: !groups)
          fresh;
        let tiles =
          List.concat_map
            (fun (pack, l) ->
              let idxs = Array.of_list (List.rev !l) in
              let n = Array.length idxs in
              List.init ((n + b - 1) / b) (fun ti ->
                  let off = ti * b in
                  (pack, Array.sub idxs off (min b (n - off)))))
            (List.rev !groups)
          |> Array.of_list
        in
        let run_tile (pack, idxs) =
          let nt = Array.length idxs in
          let nv = Pack.num_vars pack in
          let ys = Array.make (nt * nv) 0.0 in
          Array.iteri
            (fun l i ->
              let _, y, _ = fresh.(i) in
              Array.blit y 0 ys (l * nv) nv)
            idxs;
          let scores = Array.make nt 0.0 in
          Objective.predict_batch (obj_of pack) ~batch:nt ys ~scores;
          scores
        in
        let per_tile =
          match runtime with
          | Some rt -> Runtime.parallel_map rt run_tile tiles
          | None -> Array.map run_tile tiles
        in
        Array.iteri
          (fun ti scores ->
            let _, idxs = tiles.(ti) in
            Array.iteri (fun l i -> preds.(i) <- scores.(l)) idxs)
          per_tile;
        preds
      | _ -> (
        match runtime with
        | Some rt -> Runtime.parallel_map rt predict fresh
        | None -> Array.map predict fresh)
    in
    Array.iteri
      (fun i (_pack, _y, key) ->
        Hashtbl.replace prediction_cache key preds.(i);
        incr evaluated;
        all_predictions := preds.(i) :: !all_predictions)
      fresh
  in
  let proto pack y = (pack, y, Pack.schedule_key pack y) in
  let individual_of (pack, y, key) =
    { pack; y; key; predicted = Hashtbl.find prediction_cache key }
  in
  (* --- initial population -------------------------------------------------- *)
  let protos = ref [] in
  let n_protos = ref 0 in
  let elite_seeds =
    List.filter (fun (p, _) -> Array.exists (fun q -> q == p) packs) elites
  in
  let target = cfg.population in
  let n_from_elites = min (target / 4) (List.length elite_seeds * 4) in
  let elite_arr = Array.of_list elite_seeds in
  for _ = 1 to n_from_elites do
    let pack, y = Rng.choose rng elite_arr in
    match mutate rng pack y with
    | Some y' ->
      protos := proto pack y' :: !protos;
      incr n_protos
    | None -> ()
  done;
  let attempts = ref 0 in
  while !n_protos < target && !attempts < target * 8 do
    incr attempts;
    let pack = Rng.choose rng packs in
    match Dataset.sample_valid_point rng pack 20 with
    | Some y ->
      protos := proto pack y :: !protos;
      incr n_protos
    | None -> ()
  done;
  score_batch (List.rev !protos);
  let population = ref (List.map individual_of !protos) in
  (* --- generations ----------------------------------------------------------- *)
  let best_seen : (string, individual) Hashtbl.t = Hashtbl.create 256 in
  let remember ind = if not (Hashtbl.mem best_seen ind.key) then Hashtbl.replace best_seen ind.key ind in
  List.iter remember !population;
  for _gen = 1 to cfg.generations do
    let pop = Array.of_list !population in
    if Array.length pop > 0 then begin
      Array.sort (fun a b -> compare b.predicted a.predicted) pop;
      let elite_count = max 1 (Array.length pop / 10) in
      (* carried elites are already scored; children defer to the batch *)
      let next = ref [] in
      let n_next = ref 0 in
      for i = 0 to elite_count - 1 do
        next := `Old pop.(i) :: !next;
        incr n_next
      done;
      let tournament () =
        let a = Rng.choose rng pop and b = Rng.choose rng pop in
        if a.predicted >= b.predicted then a else b
      in
      let tries = ref 0 in
      while !n_next < Array.length pop && !tries < Array.length pop * 4 do
        incr tries;
        let p1 = tournament () in
        let child =
          if Rng.uniform rng < cfg.mutation_prob then mutate rng p1.pack p1.y
          else begin
            let p2 = tournament () in
            if p1.pack == p2.pack then crossover rng p1.pack p1.y p2.y
            else mutate rng p1.pack p1.y
          end
        in
        match child with
        | Some y ->
          next := `New (proto p1.pack y) :: !next;
          incr n_next
        | None -> ()
      done;
      score_batch
        (List.rev
           (List.filter_map (function `New p -> Some p | `Old _ -> None) !next));
      let next_inds =
        List.map (function `Old ind -> ind | `New p -> individual_of p) !next
      in
      List.iter remember next_inds;
      population := next_inds
    end
  done;
  let ranked =
    Hashtbl.fold (fun _ ind acc -> ind :: acc) best_seen []
    |> List.filter (fun ind -> not (already_measured ind.key))
    |> List.sort (fun a b -> compare b.predicted a.predicted)
  in
  let top = List.filteri (fun i _ -> i < cfg.nmeasure_ansor) ranked in
  Telemetry.Counter.incr ~by:!evaluated
    (Telemetry.counter Telemetry.global "ansor.evaluated");
  (top, { evaluated = !evaluated; predictions = List.rev !all_predictions })
