(** Fused evaluation of the descent objective (Equation 4)

    [O(y) = -C(Feat(y)) + lambda * sum_r max(g_r(y), 0)^2]

    and its gradient. An [Objective.t] binds a cost model to one pack and
    owns a pool of pre-sized workspaces (tape value/adjoint buffers, MLP
    activations, gradient accumulators), so each {!value_grad} runs
    exactly two tape forwards, two tape backwards and one MLP
    forward/backward with zero inner-loop allocation.

    Thread safety: one [t] may be shared across domains — concurrent
    calls borrow distinct workspaces from the pool (mutex-guarded free
    list). Results are bitwise-identical to {!legacy_value_grad}
    regardless of reuse or domain count, because every workspace buffer
    is fully rewritten before it is read. *)

type t

val create : lambda:float -> Mlp.t -> Pack.t -> t

val pack : t -> Pack.t
val lambda : t -> float

val value_grad : t -> float array -> grad:float array -> float
(** [value_grad t y ~grad] overwrites [grad] with dO/dy and returns
    O(y). [grad] must have {!Pack.num_vars} elements and is caller-owned
    (pass a fresh or reused array per call site, not one shared across
    concurrent callers). *)

val predict : t -> float array -> float
(** Model score C(Feat(y)) through the pooled workspaces — the fused,
    allocation-free equivalent of
    [Mlp.forward model (Pack.features_at pack y)]. *)

(** {2 Batched lockstep evaluation}

    The batched variants run one whole tile of candidates through the
    structure-of-arrays kernels ({!Pack.batch_workspace},
    {!Mlp.batch_workspace}): tape dispatch and MLP weight streaming are
    paid once per tile instead of once per candidate. All matrices are
    lane-major rows. Lane [l] is bitwise-identical to the scalar call on
    that candidate alone, at any batch size and domain count. Batch
    workspaces are pooled like the scalar ones; one [t] may serve
    concurrent batched callers. *)

val value_grad_batch :
  t -> batch:int -> float array -> grads:float array -> objs:float array -> unit
(** [value_grad_batch t ~batch ys ~grads ~objs]: [ys] holds the points as
    lane-major [batch * num_vars] rows; overwrites row [l] of [grads]
    with dO/dy of lane [l] and [objs.(l)] with O(y_l). *)

val predict_batch : t -> batch:int -> float array -> scores:float array -> unit
(** Lockstep {!predict} over lane-major point rows; fills
    [scores.(l)]. *)

val legacy_value_grad :
  lambda:float -> Mlp.t -> Pack.t -> float array -> float * float array
(** The historical allocating composition ([features_at] +
    [input_gradient] + [features_vjp] + [penalty_value_grad]), preserved
    as the bit-exactness reference for tests and the hotpath benchmark. *)
