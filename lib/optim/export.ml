module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let fmt_num v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else if Float.is_finite v then Printf.sprintf "%.6g" v
    else "null" (* JSON has no infinity *)

  let to_string ?(indent = 2) t =
    let buf = Buffer.create 256 in
    let pad depth = String.make (indent * depth) ' ' in
    let rec go depth t =
      match t with
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num v -> Buffer.add_string buf (fmt_num v)
      | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
      | List [] -> Buffer.add_string buf "[]"
      | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad (depth + 1));
            go (depth + 1) item)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad depth);
        Buffer.add_char buf ']'
      | Obj [] -> Buffer.add_string buf "{}"
      | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            Buffer.add_string buf (pad (depth + 1));
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad depth);
        Buffer.add_char buf '}'
    in
    go 0 t;
    Buffer.contents buf
end

let curve_to_csv (r : Tuner.result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "time_s,latency_ms\n";
  List.iter
    (fun (p : Tuner.progress_point) ->
      Buffer.add_string buf (Printf.sprintf "%.1f,%.6f\n" p.time_s p.latency_ms))
    r.Tuner.curve;
  Buffer.contents buf

let result_to_json (r : Tuner.result) =
  let open Json in
  let task (tr : Tuner.task_result) =
    Obj
      [ ("subgraph", Str tr.task.Partition.subgraph.Compute.sg_name);
        ("weight", Num (float_of_int tr.task.Partition.weight));
        ("best_latency_ms", Num tr.best.Tuner.latency_ms);
        ("sketch", Str tr.best.Tuner.sketch);
        ("rounds", Num (float_of_int tr.rounds_spent));
        ("measurements", Num (float_of_int tr.measurements));
        ("assignment",
         Obj (List.map (fun (k, v) -> (k, Num (float_of_int v))) tr.best.Tuner.assignment)) ]
  in
  let point (p : Tuner.progress_point) = List [ Num p.time_s; Num p.latency_ms ] in
  to_string
    (Obj
       [ ("network", Str r.network);
         ("device", Str r.device_name);
         ("engine", Str (Tuner.engine_name r.engine));
         ("final_latency_ms", Num r.final_latency_ms);
         ("total_measurements", Num (float_of_int r.total_measurements));
         ("curve", List (List.map point r.curve));
         ("tasks", List (List.map task r.tasks)) ])

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_curve_csv r path = write_file path (curve_to_csv r)
let write_result_json r path = write_file path (result_to_json r)
