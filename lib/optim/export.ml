(* The shared JSON module lives in [lib/util]; the alias keeps the
   historical [Export.Json] path (and its type equalities) working. *)
module Json = Json

let curve_to_csv (r : Tuner.result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "time_s,latency_ms\n";
  List.iter
    (fun (p : Tuner.progress_point) ->
      Buffer.add_string buf (Printf.sprintf "%.1f,%.6f\n" p.time_s p.latency_ms))
    r.Tuner.curve;
  Buffer.contents buf

let result_json (r : Tuner.result) =
  let open Json in
  let task (tr : Tuner.task_result) =
    Obj
      [ ("subgraph", Str tr.task.Partition.subgraph.Compute.sg_name);
        ("weight", Num (float_of_int tr.task.Partition.weight));
        ("best_latency_ms", Num tr.best.Tuner.latency_ms);
        ("sketch", Str tr.best.Tuner.sketch);
        ("rounds", Num (float_of_int tr.rounds_spent));
        ("measurements", Num (float_of_int tr.measurements));
        ("assignment",
         Obj (List.map (fun (k, v) -> (k, Num (float_of_int v))) tr.best.Tuner.assignment)) ]
  in
  let point (p : Tuner.progress_point) = List [ Num p.time_s; Num p.latency_ms ] in
  Obj
    [ ("network", Str r.network);
      ("device", Str r.device_name);
      ("engine", Str (Tuner.engine_name r.engine));
      ("final_latency_ms", Num r.final_latency_ms);
      ("total_measurements", Num (float_of_int r.total_measurements));
      ("curve", List (List.map point r.curve));
      ("tasks", List (List.map task r.tasks)) ]

let result_to_json r = Json.to_string (result_json r)

(* --- versioned result artifact ---------------------------------------------

   Results cross the disk through [Store.Artifact], the one envelope every
   persistent Felix artifact shares. The writer's shortest-round-trip
   number formatting makes the JSON bit-exact: every float read back
   equals the float written. *)

let result_kind = "felix-tuning-result"
let result_version = 1

type saved_task = {
  st_subgraph : string;
  st_weight : int;
  st_best_latency_ms : float;
  st_sketch : string;
  st_rounds : int;
  st_measurements : int;
  st_assignment : (string * int) list;
}

type saved_result = {
  sr_network : string;
  sr_device : string;
  sr_engine : string;
  sr_final_latency_ms : float;
  sr_total_measurements : int;
  sr_curve : (float * float) list;
  sr_tasks : saved_task list;
}

let save_result r path =
  Store.Artifact.save ~path ~kind:result_kind ~version:result_version (result_json r)

let saved_of_json j =
  let module J = Json in
  let ( let* ) = Option.bind in
  let str k = Option.bind (J.find j k) J.as_string in
  let num k = Option.bind (J.find j k) J.as_float in
  let int k = Option.bind (J.find j k) J.as_int in
  let* sr_network = str "network" in
  let* sr_device = str "device" in
  let* sr_engine = str "engine" in
  let* sr_final_latency_ms = num "final_latency_ms" in
  let* sr_total_measurements = int "total_measurements" in
  let* curve = Option.bind (J.find j "curve") J.as_list in
  let* sr_curve =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        match p with
        | J.List [ J.Num t; J.Num l ] -> Some ((t, l) :: acc)
        | _ -> None)
      (Some []) curve
    |> Option.map List.rev
  in
  let* tasks = Option.bind (J.find j "tasks") J.as_list in
  let task tj =
    let stri k = Option.bind (J.find tj k) J.as_string in
    let inti k = Option.bind (J.find tj k) J.as_int in
    let* st_subgraph = stri "subgraph" in
    let* st_weight = inti "weight" in
    let* st_best_latency_ms = Option.bind (J.find tj "best_latency_ms") J.as_float in
    let* st_sketch = stri "sketch" in
    let* st_rounds = inti "rounds" in
    let* st_measurements = inti "measurements" in
    let* assignment =
      match J.find tj "assignment" with Some (J.Obj kvs) -> Some kvs | _ -> None
    in
    let* st_assignment =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match J.as_int v with Some i -> Some ((k, i) :: acc) | None -> None)
        (Some []) assignment
      |> Option.map List.rev
    in
    Some
      { st_subgraph; st_weight; st_best_latency_ms; st_sketch; st_rounds;
        st_measurements; st_assignment }
  in
  let* sr_tasks =
    List.fold_left
      (fun acc tj ->
        let* acc = acc in
        let* t = task tj in
        Some (t :: acc))
      (Some []) tasks
    |> Option.map List.rev
  in
  Some
    { sr_network; sr_device; sr_engine; sr_final_latency_ms; sr_total_measurements;
      sr_curve; sr_tasks }

let load_result path =
  match Store.Artifact.load ~path ~kind:result_kind ~version:result_version with
  | Error e -> Error e
  | Ok j -> (
    match saved_of_json j with
    | Some s -> Ok s
    | None -> Error (Store.Corrupt (path ^ ": malformed tuning-result payload")))

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write_curve_csv r path = write_file path (curve_to_csv r)
