(* Engine and event types live in Tuning_config (so the run configuration
   can carry an event callback); re-export them under the historical names
   with type equations, so [Tuner.Felix] and friends keep working. *)

type engine = Tuning_config.engine = Felix | Ansor | Random

let engine_name = Tuning_config.engine_name

type progress_point = { time_s : float; latency_ms : float }

type best_candidate = {
  latency_ms : float;
  sketch : string;
  assignment : (string * int) list;
}

type task_result = {
  task : Partition.task;
  best : best_candidate;
  rounds_spent : int;
  measurements : int;
}

type result = {
  network : string;
  device_name : string;
  engine : engine;
  curve : progress_point list;
  final_latency_ms : float;
  total_measurements : int;
  tasks : task_result list;
}

let network_latency_ms r = r.final_latency_ms

(* --- tuning events --------------------------------------------------------- *)

type budget_reason = Tuning_config.budget_reason = Round_limit | Time_limit

type event = Tuning_config.event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : engine;
      n_tasks : int;
    }
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;
      measured : int;
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }
  | Model_updated of { round : int; samples : int; loss : float }
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;
      sim_clock_s : float;
    }
  | Budget_exhausted of { rounds : int; sim_clock_s : float; reason : budget_reason }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

let no_event = Tuning_config.no_event
let budget_reason_name = Tuning_config.budget_reason_name

type task_state = {
  t : Partition.task;
  packs : Pack.t list;
  key_prefix : string;  (* workload identity, prefixes sim-cache keys *)
  measured : (string, float) Hashtbl.t;
  mutable best : float;
  mutable best_point : (Pack.t * float array) option;
  mutable elites : (Pack.t * float array * float) list;  (* best few, latency-sorted *)
  mutable improvement_factor : float;
  mutable rounds_spent : int;
  mutable n_measured : int;
}

let make_state ?runtime task =
  let sg = task.Partition.subgraph in
  let sketches = Sketch.generate sg in
  let packs =
    match runtime with
    | None -> List.map (fun s -> Pack.prepare sg s) sketches
    | Some rt -> Runtime.map_list rt (fun s -> Pack.prepare_cached sg s) sketches
  in
  { t = task;
    packs;
    key_prefix = Compute.workload_key sg ^ "|";
    measured = Hashtbl.create 64;
    best = Float.infinity;
    best_point = None;
    elites = [];
    improvement_factor = 1.0;
    rounds_spent = 0;
    n_measured = 0 }

let graph_exec_overhead_ms states =
  (* Graph-executor dispatch cost per kernel occurrence. *)
  List.fold_left
    (fun acc st ->
      acc
      +. (float_of_int st.t.Partition.weight
          *. float_of_int (List.length st.t.Partition.subgraph.Compute.stages)
          *. 0.002))
    0.0 states

let network_latency states =
  List.fold_left
    (fun acc st -> acc +. (float_of_int st.t.Partition.weight *. st.best))
    (graph_exec_overhead_ms states) states

(* Bookkeeping for one measured latency; shared by the sequential and the
   parallel measurement paths so both update best/elites identically. *)
let note_measurement st pack y key lat =
  Hashtbl.replace st.measured key lat;
  st.n_measured <- st.n_measured + 1;
  if Float.is_finite lat && lat < st.best then begin
    st.best <- lat;
    st.best_point <- Some (pack, Array.copy y)
  end;
  if Float.is_finite lat then
    st.elites <-
      (pack, Array.copy y, lat) :: st.elites
      |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
      |> List.filteri (fun i _ -> i < 8)

let record_measurement rng device st pack y =
  let key = Pack.schedule_key pack y in
  if Hashtbl.mem st.measured key then None
  else begin
    let lat = Gpu_model.measure_ms rng device (Pack.program pack) (Pack.env_of pack y) in
    note_measurement st pack y key lat;
    Some lat
  end

(* Measure a round's candidates; returns (measured count, training pairs in
   the reversed order the sequential loop accumulates them).

   The parallel path computes the noiseless base latencies (and feature
   vectors for the finite ones) on the pool, then applies measurement noise
   from the tuning RNG in candidate order at the join — consuming exactly
   the random values the sequential path would, so both paths are
   bit-identical. *)
let measure_candidates ?runtime rng device st candidates =
  match runtime with
  | None ->
    let pairs = ref [] in
    let n_measured = ref 0 in
    List.iter
      (fun (pack, y) ->
        match record_measurement rng device st pack y with
        | Some lat ->
          incr n_measured;
          if Float.is_finite lat then
            pairs := (Pack.features_at pack y, -.log lat) :: !pairs
        | None -> ())
      candidates;
    (!n_measured, !pairs)
  | Some rt ->
    let cache = Runtime.sim_cache rt in
    let seen = Hashtbl.create 32 in
    let fresh =
      List.filter_map
        (fun (pack, y) ->
          let key = Pack.schedule_key pack y in
          if Hashtbl.mem st.measured key || Hashtbl.mem seen key then None
          else begin
            Hashtbl.replace seen key ();
            Some (pack, y, key)
          end)
        candidates
      |> Array.of_list
    in
    let measure_base (pack, y, key) =
      let cache_key = device.Device.device_name ^ "|" ^ st.key_prefix ^ key in
      let base =
        Gpu_model.measure_base_ms ~cache ~key:cache_key device (Pack.program pack)
          (Pack.env_of pack y)
      in
      let feats = if Float.is_finite base then Some (Pack.features_at pack y) else None in
      (base, feats)
    in
    let bases = Runtime.parallel_map rt measure_base fresh in
    let pairs = ref [] in
    Array.iteri
      (fun i (pack, y, key) ->
        let base, feats = bases.(i) in
        let lat = Gpu_model.finish_measure_ms rng base in
        note_measurement st pack y key lat;
        match feats with
        | Some f when Float.is_finite lat -> pairs := (f, -.log lat) :: !pairs
        | _ -> ())
      fresh;
    (Array.length fresh, !pairs)

(* Fine-tune the cost model on freshly measured pairs (Alg. 1 line 24);
   returns the last batch loss when an update happened. *)
let update_model model adam pairs =
  if pairs = [] then None
  else begin
    let batch = Array.of_list pairs in
    let loss = ref 0.0 in
    for _ = 1 to 4 do
      loss := Mlp.train_batch model adam batch
    done;
    Some !loss
  end

(* Sequential by design even when a runtime is available: each task's
   rejection sampling and its measurement noise interleave on the one
   tuning RNG, so reordering would change the stream. One measurement per
   task is not a hot path. *)
let initial_round cfg rng device clock states =
  List.iter
    (fun st ->
      (match
         List.find_map
           (fun pack ->
             match Dataset.sample_valid_point rng pack 200 with
             | Some y -> Some (pack, y)
             | None -> None)
           st.packs
       with
      | Some (pack, y) -> ignore (record_measurement rng device st pack y)
      | None -> ());
      Tuning_config.Clock.advance clock cfg.Tuning_config.measure_seconds)
    states

let select_task states =
  (* Expected-gain scheduler: weight x current latency x freshness decay. *)
  Stats.argmax
    (fun st ->
      if Float.is_finite st.best then
        float_of_int st.t.Partition.weight *. st.best *. st.improvement_factor
      else 1e12)
    states

(* Random search measures the same budget as Ansor but picks uniformly
   valid schedules -- the no-cost-model control used by the ablations. *)
let random_round (cfg : Tuning_config.t) rng st ~already_measured =
  let packs = Array.of_list st.packs in
  let out = ref [] in
  let seen = Hashtbl.create 64 in
  let attempts = ref 0 in
  while List.length !out < cfg.Tuning_config.nmeasure_ansor
        && !attempts < cfg.Tuning_config.nmeasure_ansor * 20 do
    incr attempts;
    let pack = Rng.choose rng packs in
    match Dataset.sample_valid_point rng pack 20 with
    | Some y ->
      let key = Pack.schedule_key pack y in
      if (not (Hashtbl.mem seen key)) && not (already_measured key) then begin
        Hashtbl.replace seen key ();
        out := (pack, y) :: !out
      end
    | None -> ()
  done;
  !out

let run_engine_round cfg rng ?runtime ?batch engine model st =
  let already_measured key = Hashtbl.mem st.measured key in
  match engine with
  | Felix ->
    let cands, trace =
      Gradient_tuner.search_round cfg rng ?runtime ?batch model st.packs
        ~already_measured
    in
    ( List.map (fun (c : Gradient_tuner.candidate) -> (c.pack, c.y)) cands,
      trace.Gradient_tuner.predictions,
      cfg.Tuning_config.felix_round_overhead )
  | Ansor ->
    let elites = List.map (fun (p, y, _) -> (p, y)) st.elites in
    let cands, trace =
      Evolutionary.search_round cfg rng ?runtime ?batch model st.packs ~elites
        ~already_measured
    in
    ( List.map (fun (c : Evolutionary.individual) -> (c.pack, c.y)) cands,
      trace.Evolutionary.predictions,
      cfg.Tuning_config.ansor_round_overhead )
  | Random -> (random_round cfg rng st ~already_measured, [], 0.5)

let subgraph_name st = st.t.Partition.subgraph.Compute.sg_name

let tune_round cfg rng ?runtime ?batch device engine model model_adam clock ~telemetry
    ~emit ~round st =
  let task_id = st.t.Partition.task_id in
  emit
    (Round_started
       { round; task_id; subgraph = subgraph_name st;
         sim_clock_s = Tuning_config.Clock.now clock });
  let sp =
    Telemetry.span_begin telemetry "tuner.round"
      ~attrs:
        [ ("round", Telemetry.Int round); ("engine", Telemetry.Str (engine_name engine));
          ("task", Telemetry.Int task_id);
          ("subgraph", Telemetry.Str (subgraph_name st));
          ("sim_clock_s", Telemetry.Float (Tuning_config.Clock.now clock)) ]
  in
  let candidates, predictions, overhead =
    run_engine_round cfg rng ?runtime ?batch engine model st
  in
  let before = st.best in
  let n_measured, pairs = measure_candidates ?runtime rng device st candidates in
  Tuning_config.Clock.advance clock
    ((float_of_int (List.length candidates) *. cfg.Tuning_config.measure_seconds)
    +. overhead +. cfg.Tuning_config.model_update_seconds);
  emit
    (Candidates_measured
       { round; task_id; proposed = List.length candidates; measured = n_measured;
         sim_clock_s = Tuning_config.Clock.now clock });
  if Float.is_finite st.best && st.best < before then
    emit
      (Task_improved
         { round; task_id; subgraph = subgraph_name st; before_ms = before;
           after_ms = st.best });
  let loss = update_model model model_adam pairs in
  (match loss with
  | Some l ->
    emit (Model_updated { round; samples = List.length pairs; loss = l });
    Telemetry.Gauge.set (Telemetry.gauge telemetry "tuner.model_loss") l
  | None -> ());
  st.rounds_spent <- st.rounds_spent + 1;
  let improved = Float.is_finite st.best && st.best < before *. 0.995 in
  st.improvement_factor <-
    (if improved then 1.0 else max 0.2 (st.improvement_factor *. 0.8));
  Telemetry.Counter.incr (Telemetry.counter telemetry "tuner.rounds");
  Telemetry.Counter.incr ~by:n_measured (Telemetry.counter telemetry "tuner.measurements");
  Telemetry.span_end telemetry sp
    ~attrs:
      [ ("proposed", Telemetry.Int (List.length candidates));
        ("measured", Telemetry.Int n_measured); ("best_ms", Telemetry.Float st.best);
        ("model_loss", Telemetry.Float (Option.value ~default:0.0 loss));
        ("sim_clock_end_s", Telemetry.Float (Tuning_config.Clock.now clock)) ];
  predictions

let best_of_state st =
  let sketch, assignment =
    match st.best_point with
    | Some (pack, y) -> ((Pack.schedule pack).Schedule.sched_name, Pack.assignment pack y)
    | None -> ("-", [])
  in
  { latency_ms = st.best; sketch; assignment }

(* Materialise the runtime a run configuration asks for: an explicit
   [runtime] wins; otherwise [jobs > 1] creates a temporary pool for the
   duration of the call. *)
let with_effective_runtime (rc : Tuning_config.run) f =
  match rc.Tuning_config.runtime with
  | Some rt -> f (Some rt)
  | None ->
    if rc.Tuning_config.jobs > 1 then
      Runtime.with_runtime ~domains:rc.Tuning_config.jobs (fun rt -> f (Some rt))
    else f None

(* rc.batch = 1 means the scalar path; only widths > 1 reach the engines. *)
let batch_of_run (rc : Tuning_config.run) =
  if rc.Tuning_config.batch > 1 then Some rc.Tuning_config.batch else None

let run (rc : Tuning_config.run) device base_model graph engine =
  with_effective_runtime rc @@ fun runtime ->
  let batch = batch_of_run rc in
  let cfg = rc.Tuning_config.search in
  let on_event = rc.Tuning_config.on_event in
  let telemetry = Option.value rc.Tuning_config.telemetry ~default:Telemetry.global in
  let rng = Rng.create rc.Tuning_config.seed in
  let model = Mlp.copy base_model in
  let model_adam = Mlp.adam_for ~lr:2e-4 model in
  let clock = Tuning_config.Clock.create () in
  let run_sp =
    Telemetry.span_begin telemetry "tuner.tune"
      ~attrs:
        [ ("network", Telemetry.Str graph.Graph.graph_name);
          ("device", Telemetry.Str device.Device.device_name);
          ("engine", Telemetry.Str (engine_name engine));
          ("domains", Telemetry.Int (match runtime with None -> 1 | Some rt -> Runtime.domains rt)) ]
  in
  let states =
    Telemetry.with_span telemetry "tuner.prepare_tasks" (fun () ->
        let tasks = Partition.partition graph in
        match runtime with
        | None -> List.map (fun t -> make_state t) tasks
        | Some rt -> Runtime.map_list rt (fun t -> make_state ~runtime:rt t) tasks)
  in
  on_event
    (Tuning_started
       { network = graph.Graph.graph_name; device_name = device.Device.device_name;
         engine; n_tasks = List.length states });
  Telemetry.with_span telemetry "tuner.initial_round" (fun () ->
      initial_round cfg rng device clock states);
  let curve = ref [ { time_s = Tuning_config.Clock.now clock; latency_ms = network_latency states } ] in
  let round = ref 0 in
  while
    !round < cfg.max_rounds
    && Tuning_config.Clock.now clock < cfg.time_budget_s
  do
    incr round;
    let st = select_task states in
    ignore
      (tune_round cfg rng ?runtime ?batch device engine model model_adam clock
         ~telemetry ~emit:on_event ~round:!round st);
    let net_ms = network_latency states in
    Telemetry.Gauge.set (Telemetry.gauge telemetry "tuner.network_latency_ms") net_ms;
    on_event
      (Round_finished
         { round = !round; task_id = st.t.Partition.task_id; best_task_ms = st.best;
           network_ms = net_ms; sim_clock_s = Tuning_config.Clock.now clock });
    curve := { time_s = Tuning_config.Clock.now clock; latency_ms = net_ms } :: !curve
  done;
  let reason = if !round >= cfg.max_rounds then Round_limit else Time_limit in
  on_event
    (Budget_exhausted
       { rounds = !round; sim_clock_s = Tuning_config.Clock.now clock; reason });
  let tasks =
    List.map
      (fun st ->
        { task = st.t; best = best_of_state st; rounds_spent = st.rounds_spent;
          measurements = st.n_measured })
      states
  in
  let final_latency_ms = network_latency states in
  let total_measurements = List.fold_left (fun acc st -> acc + st.n_measured) 0 states in
  on_event
    (Tuning_finished
       { final_latency_ms; total_measurements;
         sim_clock_s = Tuning_config.Clock.now clock });
  Telemetry.span_end telemetry run_sp
    ~attrs:
      [ ("rounds", Telemetry.Int !round);
        ("final_latency_ms", Telemetry.Float final_latency_ms);
        ("measurements", Telemetry.Int total_measurements);
        ("budget", Telemetry.Str (budget_reason_name reason));
        ("sim_clock_s", Telemetry.Float (Tuning_config.Clock.now clock)) ];
  { network = graph.Graph.graph_name;
    device_name = device.Device.device_name;
    engine;
    curve = List.rev !curve;
    final_latency_ms;
    total_measurements;
    tasks }

type single_result = {
  best : best_candidate;
  curve : progress_point list;
  predictions : float list;
}

let run_single (rc : Tuning_config.run) ~rounds device base_model sg engine =
  with_effective_runtime rc @@ fun runtime ->
  let batch = batch_of_run rc in
  let cfg = rc.Tuning_config.search in
  let on_event = rc.Tuning_config.on_event in
  let telemetry = Option.value rc.Tuning_config.telemetry ~default:Telemetry.global in
  let rng = Rng.create rc.Tuning_config.seed in
  let model = Mlp.copy base_model in
  let model_adam = Mlp.adam_for ~lr:2e-4 model in
  let clock = Tuning_config.Clock.create () in
  let task = { Partition.task_id = 0; subgraph = sg; weight = 1; node_ids = [] } in
  let st = make_state ?runtime task in
  on_event
    (Tuning_started
       { network = sg.Compute.sg_name; device_name = device.Device.device_name; engine;
         n_tasks = 1 });
  initial_round cfg rng device clock [ st ];
  let curve = ref [ { time_s = Tuning_config.Clock.now clock; latency_ms = st.best } ] in
  let predictions = ref [] in
  for round = 1 to rounds do
    let preds =
      tune_round cfg rng ?runtime ?batch device engine model model_adam clock
        ~telemetry ~emit:on_event ~round st
    in
    predictions := !predictions @ preds;
    on_event
      (Round_finished
         { round; task_id = 0; best_task_ms = st.best; network_ms = st.best;
           sim_clock_s = Tuning_config.Clock.now clock });
    curve := { time_s = Tuning_config.Clock.now clock; latency_ms = st.best } :: !curve
  done;
  on_event
    (Budget_exhausted
       { rounds; sim_clock_s = Tuning_config.Clock.now clock; reason = Round_limit });
  on_event
    (Tuning_finished
       { final_latency_ms = st.best; total_measurements = st.n_measured;
         sim_clock_s = Tuning_config.Clock.now clock });
  { best = best_of_state st; curve = List.rev !curve; predictions = !predictions }

(* --- deprecated labelled-argument shims ------------------------------------ *)

let run_config ?(config = Tuning_config.default) ?(on_event = no_event)
    ?(telemetry = Telemetry.global) ?runtime ~seed () =
  let rc =
    Tuning_config.(
      builder |> with_search config |> with_seed seed |> with_on_event on_event
      |> with_telemetry telemetry)
  in
  match runtime with
  | Some rt -> Tuning_config.with_runtime rt rc
  | None -> rc

let tune ?config ?on_event ?telemetry ?runtime ~seed device base_model graph engine =
  run (run_config ?config ?on_event ?telemetry ?runtime ~seed ()) device base_model
    graph engine

let tune_single ?config ?on_event ?telemetry ?runtime ~seed ~rounds device base_model
    sg engine =
  run_single
    (run_config ?config ?on_event ?telemetry ?runtime ~seed ())
    ~rounds device base_model sg engine
