(* Engine and event types live in Tuning_config (so the run configuration
   can carry an event callback); re-export them under the historical names
   with type equations, so [Tuner.Felix] and friends keep working. *)

type engine = Tuning_config.engine = Felix | Ansor | Random

let engine_name = Tuning_config.engine_name

type progress_point = { time_s : float; latency_ms : float }

type best_candidate = {
  latency_ms : float;
  sketch : string;
  assignment : (string * int) list;
}

type task_result = {
  task : Partition.task;
  best : best_candidate;
  rounds_spent : int;
  measurements : int;
}

type result = {
  network : string;
  device_name : string;
  engine : engine;
  curve : progress_point list;
  final_latency_ms : float;
  total_measurements : int;
  tasks : task_result list;
}

let network_latency_ms r = r.final_latency_ms

(* --- tuning events --------------------------------------------------------- *)

type budget_reason = Tuning_config.budget_reason = Round_limit | Time_limit

type event = Tuning_config.event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : engine;
      n_tasks : int;
    }
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;
      measured : int;
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }
  | Model_updated of { round : int; samples : int; loss : float }
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;
      sim_clock_s : float;
    }
  | Budget_exhausted of { rounds : int; sim_clock_s : float; reason : budget_reason }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

let no_event = Tuning_config.no_event
let budget_reason_name = Tuning_config.budget_reason_name

type task_state = {
  t : Partition.task;
  packs : Pack.t list;
  key_prefix : string;  (* workload identity, prefixes sim-cache keys *)
  measured : (string, float) Hashtbl.t;
  seeded : (string, unit) Hashtbl.t;
      (* keys warm-started from the store; a dedup hit here is a paid
         measurement the store saved us *)
  mutable best : float;
  mutable best_point : (Pack.t * float array) option;
  mutable elites : (Pack.t * float array * float) list;  (* best few, latency-sorted *)
  mutable improvement_factor : float;
  mutable rounds_spent : int;
  mutable n_measured : int;
}

let make_state ?runtime ?cache_dir task =
  let sg = task.Partition.subgraph in
  let sketches = Sketch.generate sg in
  let packs =
    Pack.prepare_all ?cache_dir ?runtime (List.map (fun s -> (sg, s)) sketches)
  in
  { t = task;
    packs;
    key_prefix = Compute.workload_key sg ^ "|";
    measured = Hashtbl.create 64;
    seeded = Hashtbl.create 16;
    best = Float.infinity;
    best_point = None;
    elites = [];
    improvement_factor = 1.0;
    rounds_spent = 0;
    n_measured = 0 }

let graph_exec_overhead_ms states =
  (* Graph-executor dispatch cost per kernel occurrence. *)
  List.fold_left
    (fun acc st ->
      acc
      +. (float_of_int st.t.Partition.weight
          *. float_of_int (List.length st.t.Partition.subgraph.Compute.stages)
          *. 0.002))
    0.0 states

let network_latency states =
  List.fold_left
    (fun acc st -> acc +. (float_of_int st.t.Partition.weight *. st.best))
    (graph_exec_overhead_ms states) states

(* Bookkeeping for one measured latency; shared by the sequential and the
   parallel measurement paths so both update best/elites identically.
   [count = false] replays a store record: the dedup cache, best and
   elites learn about the schedule, but it is not a new measurement of
   this run. *)
let note_measurement ?(count = true) st pack y key lat =
  Hashtbl.replace st.measured key lat;
  if count then st.n_measured <- st.n_measured + 1;
  if Float.is_finite lat && lat < st.best then begin
    st.best <- lat;
    st.best_point <- Some (pack, Array.copy y)
  end;
  if Float.is_finite lat then
    st.elites <-
      (pack, Array.copy y, lat) :: st.elites
      |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)
      |> List.filteri (fun i _ -> i < 8)

(* A dedup hit on a store-seeded key is a measurement the warm start paid
   for in a previous run; it costs zero simulated time and is counted as a
   store hit. [journal] (when a store is attached) records every outcome
   actually obtained — successes and failures alike. *)
let note_store_hit ~telemetry st key =
  if Hashtbl.mem st.seeded key then
    Telemetry.Counter.incr (Telemetry.counter telemetry "store.hits")

(* The request digest doubles as the Pool backend's simulator-cache key,
   so it keeps the historical [device|workload|schedule-key] format. *)
let request_of device st pack y key =
  { Measure.digest = device.Device.device_name ^ "|" ^ st.key_prefix ^ key;
    device;
    program = Pack.program pack;
    env = Pack.env_of pack y }

(* Simulated time a measured batch costs the tuning clock. With the
   default (fault-free) policy this is exactly
   [float n_fresh *. measure_seconds], matching the legacy arithmetic
   bit-for-bit; faults add deadline and backoff time on top. *)
let batch_seconds (cfg : Tuning_config.t) (cost : Measure.batch_cost) =
  (float_of_int cost.Measure.measured_attempts *. cfg.Tuning_config.measure_seconds)
  +. cost.Measure.extra_s

(* Measure a round's candidates through the measurer; returns
   (fresh-request count, simulated-time cost, training pairs in the
   reversed order the historical loop accumulated them).

   Dedup stays the tuner's job (the measurer's outcome cache is keyed the
   same way but never hit here): proposals already in [st.measured] —
   including store-seeded ones — cost nothing, and within-batch duplicates
   collapse. Measurement noise is drawn from the tuning RNG at the join in
   candidate order whatever the backend, so Direct and Pool are
   bit-identical. Feature vectors piggyback on the backend's base
   computation ([with_base] runs on the pool for [Pool]). *)
let measure_candidates measurer ?journal ~telemetry rng device st candidates =
  let seen = Hashtbl.create 32 in
  let fresh =
    List.filter_map
      (fun (pack, y) ->
        let key = Pack.schedule_key pack y in
        if Hashtbl.mem st.measured key then begin
          note_store_hit ~telemetry st key;
          None
        end
        else if Hashtbl.mem seen key then None
        else begin
          Hashtbl.replace seen key ();
          Some (pack, y, key)
        end)
      candidates
    |> Array.of_list
  in
  let requests = Array.map (fun (pack, y, key) -> request_of device st pack y key) fresh in
  let feats = Array.make (Array.length fresh) None in
  let with_base i _base =
    let pack, y, _ = fresh.(i) in
    feats.(i) <- Some (Pack.features_at pack y)
  in
  let results, cost = Measure.measure_batch measurer ~rng ~with_base requests in
  let pairs = ref [] in
  Array.iteri
    (fun i (pack, y, key) ->
      let r = results.(i) in
      note_measurement st pack y key (Measure.latency_ms r.Measure.outcome);
      (match journal with Some f -> f st pack y key r | None -> ());
      match (feats.(i), r.Measure.outcome) with
      | Some f, Measure.Ok lat -> pairs := (f, -.log lat) :: !pairs
      | _ -> ())
    fresh;
  (Array.length fresh, cost, !pairs)

(* Fine-tune the cost model on freshly measured pairs (Alg. 1 line 24);
   returns the last batch loss when an update happened. *)
let update_model model adam pairs =
  if pairs = [] then None
  else begin
    let batch = Array.of_list pairs in
    let loss = ref 0.0 in
    for _ = 1 to 4 do
      loss := Mlp.train_batch model adam batch
    done;
    Some !loss
  end

(* Sequential by design even when a runtime is available: each task's
   rejection sampling and its measurement noise interleave on the one
   tuning RNG, so reordering would change the stream. One measurement per
   task is not a hot path. *)
let initial_round cfg measurer ?journal ~telemetry rng device clock states =
  List.iter
    (fun st ->
      match
        List.find_map
          (fun pack ->
            match Dataset.sample_valid_point rng pack 200 with
            | Some y -> Some (pack, y)
            | None -> None)
          st.packs
      with
      | Some (pack, y) ->
        (* Only an actual measurement costs simulated time: a dedup hit on
           a warm-started key is free, which is what makes warm curves
           strictly dominate cold ones. *)
        let key = Pack.schedule_key pack y in
        if Hashtbl.mem st.measured key then note_store_hit ~telemetry st key
        else begin
          let results, cost =
            Measure.measure_batch measurer ~rng [| request_of device st pack y key |]
          in
          let r = results.(0) in
          note_measurement st pack y key (Measure.latency_ms r.Measure.outcome);
          (match journal with Some f -> f st pack y key r | None -> ());
          Tuning_config.Clock.advance clock (batch_seconds cfg cost)
        end
      | None -> ())
    states

let select_task states =
  (* Expected-gain scheduler: weight x current latency x freshness decay. *)
  Stats.argmax
    (fun st ->
      if Float.is_finite st.best then
        float_of_int st.t.Partition.weight *. st.best *. st.improvement_factor
      else 1e12)
    states

(* Random search measures the same budget as Ansor but picks uniformly
   valid schedules -- the no-cost-model control used by the ablations. *)
let random_round (cfg : Tuning_config.t) rng st ~already_measured =
  let packs = Array.of_list st.packs in
  let out = ref [] in
  let seen = Hashtbl.create 64 in
  let attempts = ref 0 in
  while List.length !out < cfg.Tuning_config.nmeasure_ansor
        && !attempts < cfg.Tuning_config.nmeasure_ansor * 20 do
    incr attempts;
    let pack = Rng.choose rng packs in
    match Dataset.sample_valid_point rng pack 20 with
    | Some y ->
      let key = Pack.schedule_key pack y in
      if (not (Hashtbl.mem seen key)) && not (already_measured key) then begin
        Hashtbl.replace seen key ();
        out := (pack, y) :: !out
      end
    | None -> ()
  done;
  !out

let run_engine_round cfg rng ?runtime ?batch engine model st =
  let already_measured key = Hashtbl.mem st.measured key in
  match engine with
  | Felix ->
    let cands, trace =
      Gradient_tuner.search_round cfg rng ?runtime ?batch model st.packs
        ~already_measured
    in
    ( List.map (fun (c : Gradient_tuner.candidate) -> (c.pack, c.y)) cands,
      trace.Gradient_tuner.predictions,
      cfg.Tuning_config.felix_round_overhead )
  | Ansor ->
    let elites = List.map (fun (p, y, _) -> (p, y)) st.elites in
    let cands, trace =
      Evolutionary.search_round cfg rng ?runtime ?batch model st.packs ~elites
        ~already_measured
    in
    ( List.map (fun (c : Evolutionary.individual) -> (c.pack, c.y)) cands,
      trace.Evolutionary.predictions,
      cfg.Tuning_config.ansor_round_overhead )
  | Random -> (random_round cfg rng st ~already_measured, [], 0.5)

let subgraph_name st = st.t.Partition.subgraph.Compute.sg_name

let tune_round cfg measurer rng ?runtime ?batch ?journal device engine model model_adam
    clock ~telemetry ~emit ~round st =
  let task_id = st.t.Partition.task_id in
  emit
    (Round_started
       { round; task_id; subgraph = subgraph_name st;
         sim_clock_s = Tuning_config.Clock.now clock });
  let sp =
    Telemetry.span_begin telemetry "tuner.round"
      ~attrs:
        [ ("round", Telemetry.Int round); ("engine", Telemetry.Str (engine_name engine));
          ("task", Telemetry.Int task_id);
          ("subgraph", Telemetry.Str (subgraph_name st));
          ("sim_clock_s", Telemetry.Float (Tuning_config.Clock.now clock)) ]
  in
  let candidates, predictions, overhead =
    run_engine_round cfg rng ?runtime ?batch engine model st
  in
  let before = st.best in
  let n_measured, cost, pairs =
    measure_candidates measurer ?journal ~telemetry rng device st candidates
  in
  (* Time accounting follows measurements actually paid for: deduplicated
     proposals — in particular re-proposals of store-seeded schedules —
     advance the simulated clock by zero; timed-out attempts and retry
     backoffs (fault injection only) add their deadline and wait time. *)
  Tuning_config.Clock.advance clock
    (batch_seconds cfg cost +. overhead +. cfg.Tuning_config.model_update_seconds);
  emit
    (Candidates_measured
       { round; task_id; proposed = List.length candidates; measured = n_measured;
         sim_clock_s = Tuning_config.Clock.now clock });
  if Float.is_finite st.best && st.best < before then
    emit
      (Task_improved
         { round; task_id; subgraph = subgraph_name st; before_ms = before;
           after_ms = st.best });
  let loss = update_model model model_adam pairs in
  (match loss with
  | Some l ->
    emit (Model_updated { round; samples = List.length pairs; loss = l });
    Telemetry.Gauge.set (Telemetry.gauge telemetry "tuner.model_loss") l
  | None -> ());
  st.rounds_spent <- st.rounds_spent + 1;
  let improved = Float.is_finite st.best && st.best < before *. 0.995 in
  st.improvement_factor <-
    (if improved then 1.0 else max 0.2 (st.improvement_factor *. 0.8));
  Telemetry.Counter.incr (Telemetry.counter telemetry "tuner.rounds");
  Telemetry.Counter.incr ~by:n_measured (Telemetry.counter telemetry "tuner.measurements");
  Telemetry.span_end telemetry sp
    ~attrs:
      [ ("proposed", Telemetry.Int (List.length candidates));
        ("measured", Telemetry.Int n_measured); ("best_ms", Telemetry.Float st.best);
        ("model_loss", Telemetry.Float (Option.value ~default:0.0 loss));
        ("sim_clock_end_s", Telemetry.Float (Tuning_config.Clock.now clock)) ];
  predictions

let best_of_state st =
  let sketch, assignment =
    match st.best_point with
    | Some (pack, y) -> ((Pack.schedule pack).Schedule.sched_name, Pack.assignment pack y)
    | None -> ("-", [])
  in
  { latency_ms = st.best; sketch; assignment }

(* --- durable store integration ---------------------------------------------

   Checkpoints are self-contained: run identity (so a resume refuses a
   different configuration), the RNG stream position, the simulated
   clock, cost-model weights and optimizer state, the progress curve and
   the full per-task scheduler state. Every float crosses the disk as
   IEEE-754 bits, and packs are referenced by sketch name — they are
   regenerated deterministically by [make_state] — so a resumed run
   continues the exact float sequence of the uninterrupted one. *)

exception Decode

let req = function Some x -> x | None -> raise Decode
let jfind j k = req (Json.find j k)
let jstr j k = req (Option.bind (Json.find j k) Json.as_string)
let jint j k = req (Option.bind (Json.find j k) Json.as_int)
let jlist j k = req (Option.bind (Json.find j k) Json.as_list)

let jbits j k =
  req (Option.bind (Option.bind (Json.find j k) Json.as_string) Store.Bits.to_float)

let jbits_arr j k =
  req (Option.bind (Option.bind (Json.find j k) Json.as_string) Store.Bits.to_floats)

let task_key_of st = String.sub st.key_prefix 0 (String.length st.key_prefix - 1)
let sketch_name pack = (Pack.schedule pack).Schedule.sched_name

(* jobs and batch are deliberately not part of the identity: results are
   invariant to both, so a run may be resumed at any parallelism. The
   measurement policy *is* identity (faults change results), but is
   emitted only when non-default so pre-measurer checkpoints keep
   matching. The search codec lives in Tuning_config and is shared with
   the CLI invocation record and the service wire protocol. *)
let identity_json (rc : Tuning_config.run) ~network ~device_name engine =
  Json.Obj
    ([ ("network", Json.Str network); ("device", Json.Str device_name);
       ("engine", Json.Str (engine_name engine));
       ("seed", Json.Num (float_of_int rc.Tuning_config.seed));
       ("search", Tuning_config.search_to_json rc.Tuning_config.search) ]
    @ (if Measure.config_equal rc.Tuning_config.measure Measure.default then []
       else [ ("measure", Measure.config_to_json rc.Tuning_config.measure) ]))

let point_to_json pack y =
  Json.Obj
    [ ("sketch", Json.Str (sketch_name pack));
      ("y", Json.Str (Store.Bits.of_floats y)) ]

let state_to_json st =
  let measured =
    Hashtbl.fold (fun k lat acc -> (k, lat) :: acc) st.measured []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let seeded =
    Hashtbl.fold (fun k () acc -> k :: acc) st.seeded [] |> List.sort compare
  in
  Json.Obj
    [ ("task_id", Json.Num (float_of_int st.t.Partition.task_id));
      ("subgraph", Json.Str st.t.Partition.subgraph.Compute.sg_name);
      ("best", Json.Str (Store.Bits.of_float st.best));
      ("best_point",
       (match st.best_point with None -> Json.Null | Some (p, y) -> point_to_json p y));
      ("elites",
       Json.List
         (List.map
            (fun (p, y, lat) ->
              Json.Obj
                [ ("sketch", Json.Str (sketch_name p));
                  ("y", Json.Str (Store.Bits.of_floats y));
                  ("lat", Json.Str (Store.Bits.of_float lat)) ])
            st.elites));
      ("improvement", Json.Str (Store.Bits.of_float st.improvement_factor));
      ("rounds_spent", Json.Num (float_of_int st.rounds_spent));
      ("n_measured", Json.Num (float_of_int st.n_measured));
      ("measured",
       Json.List
         (List.map
            (fun (k, lat) -> Json.List [ Json.Str k; Json.Str (Store.Bits.of_float lat) ])
            measured));
      ("seeded", Json.List (List.map (fun k -> Json.Str k) seeded)) ]

(* Decode one task entry against the freshly built state; returns the
   mutation to run once the whole checkpoint has decoded (so a corrupt
   checkpoint never leaves states half-restored). *)
let state_restorer st j =
  if
    jint j "task_id" <> st.t.Partition.task_id
    || jstr j "subgraph" <> st.t.Partition.subgraph.Compute.sg_name
  then raise Decode;
  let by_name = List.map (fun p -> (sketch_name p, p)) st.packs in
  let point pj =
    let pack = req (List.assoc_opt (jstr pj "sketch") by_name) in
    let y = jbits_arr pj "y" in
    if Array.length y <> Pack.num_vars pack then raise Decode;
    (pack, y)
  in
  let best = jbits j "best" in
  let best_point =
    match jfind j "best_point" with Json.Null -> None | pj -> Some (point pj)
  in
  let elites =
    List.map
      (fun ej ->
        let p, y = point ej in
        (p, y, jbits ej "lat"))
      (jlist j "elites")
  in
  let improvement = jbits j "improvement" in
  let rounds_spent = jint j "rounds_spent" in
  let n_measured = jint j "n_measured" in
  let measured =
    List.map
      (function
        | Json.List [ Json.Str k; Json.Str lat ] -> (k, req (Store.Bits.to_float lat))
        | _ -> raise Decode)
      (jlist j "measured")
  in
  let seeded = List.map (fun x -> req (Json.as_string x)) (jlist j "seeded") in
  fun () ->
    st.best <- best;
    st.best_point <- best_point;
    st.elites <- elites;
    st.improvement_factor <- improvement;
    st.rounds_spent <- rounds_spent;
    st.n_measured <- n_measured;
    Hashtbl.reset st.measured;
    List.iter (fun (k, lat) -> Hashtbl.replace st.measured k lat) measured;
    Hashtbl.reset st.seeded;
    List.iter (fun k -> Hashtbl.replace st.seeded k ()) seeded

let checkpoint_json ~identity ~run_id ~completed ~round ~rng ~clock ~curve ~model
    ~adam states =
  Json.Obj
    [ ("identity", identity);
      ("run_id", Json.Str run_id);
      ("completed", Json.Bool completed);
      ("round", Json.Num (float_of_int round));
      ("rng", Json.Str (Printf.sprintf "%016Lx" (Rng.state_bits rng)));
      ("clock", Json.Str (Store.Bits.of_float (Tuning_config.Clock.now clock)));
      ("curve",
       Json.List
         (List.map
            (fun p ->
              Json.List
                [ Json.Str (Store.Bits.of_float p.time_s);
                  Json.Str (Store.Bits.of_float p.latency_ms) ])
            curve));
      ("model", Mlp.to_json model);
      ("adam", Adam.to_json adam);
      ("tasks", Json.List (List.map state_to_json states)) ]

type resume_state = {
  rs_run_id : string;
  rs_round : int;
  rs_rng : Rng.t;
  rs_clock : float;
  rs_curve : progress_point list;  (* chronological *)
  rs_model : Mlp.t;
  rs_adam : Adam.t;
  rs_restore : (unit -> unit) list;
  rs_entries : int;  (* measured-table entries restored, for telemetry *)
}

let decode_checkpoint cp ~identity states =
  try
    if Json.find cp "identity" <> Some identity then None
    else if req (Option.bind (Json.find cp "completed") Json.as_bool) then
      (* The stored run already finished; a new run warm-starts instead. *)
      None
    else begin
      let rng_bits =
        let s = jstr cp "rng" in
        if String.length s <> 16 then raise Decode
        else req (Int64.of_string_opt ("0x" ^ s))
      in
      let curve =
        List.map
          (function
            | Json.List [ Json.Str ts; Json.Str lat ] ->
              { time_s = req (Store.Bits.to_float ts);
                latency_ms = req (Store.Bits.to_float lat) }
            | _ -> raise Decode)
          (jlist cp "curve")
      in
      let model = req (Mlp.of_json (jfind cp "model")) in
      let adam = req (Adam.of_json (jfind cp "adam")) in
      let tasks = jlist cp "tasks" in
      if List.length tasks <> List.length states then raise Decode;
      let restore = List.map2 state_restorer states tasks in
      let entries =
        List.fold_left
          (fun acc tj -> acc + List.length (jlist tj "measured"))
          0 tasks
      in
      Some
        { rs_run_id = jstr cp "run_id";
          rs_round = jint cp "round";
          rs_rng = Rng.of_state_bits rng_bits;
          rs_clock = jbits cp "clock";
          rs_curve = curve;
          rs_model = model;
          rs_adam = adam;
          rs_restore = restore;
          rs_entries = entries }
    end
  with Decode -> None

(* Seed dedup caches, bests and elites from completed prior runs; returns
   the replay count and the (features, target) pairs for the one-shot
   model fine-tune. Consumes no RNG, so a run over an empty store is
   bit-identical to a run without a store. *)
let warm_finetune_cap = 512

let warm_seed store ~device_name states =
  let total = ref 0 in
  let pairs = ref [] in
  let n_pairs = ref 0 in
  List.iter
    (fun st ->
      let by_name = List.map (fun p -> (sketch_name p, p)) st.packs in
      let records =
        Store.completed_records store ~device:device_name ~task_key:(task_key_of st)
      in
      List.iter
        (fun (r : Store.Record.t) ->
          match List.assoc_opt r.Store.Record.sketch by_name with
          | None -> () (* sketch no longer generated; skip the record *)
          | Some pack ->
            if
              Array.length r.Store.Record.y = Pack.num_vars pack
              && not (Hashtbl.mem st.measured r.Store.Record.key)
            then begin
              note_measurement ~count:false st pack r.Store.Record.y
                r.Store.Record.key r.Store.Record.latency_ms;
              Hashtbl.replace st.seeded r.Store.Record.key ();
              incr total;
              if Float.is_finite r.Store.Record.latency_ms && !n_pairs < warm_finetune_cap
              then begin
                incr n_pairs;
                pairs :=
                  (Pack.features_at pack r.Store.Record.y, -.log r.Store.Record.latency_ms)
                  :: !pairs
              end
            end)
        records;
      (* Known failures seed the dedup cache at infinite latency — the
         whole point of journaling them: a resumed or warm-started run
         must not re-pay a failure already classified. They contribute no
         training pairs (like invalid schedules). *)
      let failures =
        Store.completed_failures store ~device:device_name ~task_key:(task_key_of st)
      in
      List.iter
        (fun (r : Store.Failure.t) ->
          match List.assoc_opt r.Store.Failure.sketch by_name with
          | None -> ()
          | Some pack ->
            if
              Array.length r.Store.Failure.y = Pack.num_vars pack
              && not (Hashtbl.mem st.measured r.Store.Failure.key)
            then begin
              note_measurement ~count:false st pack r.Store.Failure.y
                r.Store.Failure.key Float.infinity;
              Hashtbl.replace st.seeded r.Store.Failure.key ();
              incr total
            end)
        failures)
    states;
  (!total, !pairs)

(* Materialise the runtime a run configuration asks for: an explicit
   [runtime] wins; otherwise [jobs > 1] creates a temporary pool for the
   duration of the call. *)
let with_effective_runtime (rc : Tuning_config.run) f =
  match rc.Tuning_config.runtime with
  | Some rt -> f (Some rt)
  | None ->
    if rc.Tuning_config.jobs > 1 then
      Runtime.with_runtime ~domains:rc.Tuning_config.jobs (fun rt -> f (Some rt))
    else f None

(* rc.batch = 1 means the scalar path; only widths > 1 reach the engines. *)
let batch_of_run (rc : Tuning_config.run) =
  if rc.Tuning_config.batch > 1 then Some rc.Tuning_config.batch else None

(* --- typed failure reporting ------------------------------------------------

   The public entry points validate the configuration up front and map the
   two failure modes that used to escape as exceptions — bad configuration
   values (Invalid_argument from deep layers) and store I/O (Sys_error) —
   into a typed result. Exceptions raised by the caller's own event
   callback (the service's cancellation signal, tests' abort-for-resume)
   propagate unchanged: they are control flow, not failures. *)

type error = Invalid_config of string | Store_error of Store.error

let error_message = function
  | Invalid_config m -> Printf.sprintf "invalid tuning configuration: %s" m
  | Store_error e -> Printf.sprintf "tuning store error: %s" (Store.error_message e)

let validate (rc : Tuning_config.run) =
  let cfg = rc.Tuning_config.search in
  let pos_finite v = Float.is_finite v && v > 0.0 in
  let nonneg_finite v = Float.is_finite v && v >= 0.0 in
  let checks =
    [ (cfg.nseeds >= 1, "nseeds must be >= 1");
      (cfg.nsteps >= 1, "nsteps must be >= 1");
      (cfg.nmeasure_felix >= 1, "nmeasure_felix must be >= 1");
      (cfg.nmeasure_ansor >= 1, "nmeasure_ansor must be >= 1");
      (cfg.population >= 2, "population must be >= 2");
      (cfg.generations >= 1, "generations must be >= 1");
      ( Float.is_finite cfg.mutation_prob
        && cfg.mutation_prob >= 0.0
        && cfg.mutation_prob <= 1.0,
        "mutation_prob must be in [0, 1]" );
      (nonneg_finite cfg.lambda, "lambda must be finite and >= 0");
      (pos_finite cfg.gd_lr, "gd_lr must be finite and > 0");
      (nonneg_finite cfg.measure_seconds, "measure_seconds must be finite and >= 0");
      ( nonneg_finite cfg.felix_round_overhead,
        "felix_round_overhead must be finite and >= 0" );
      ( nonneg_finite cfg.ansor_round_overhead,
        "ansor_round_overhead must be finite and >= 0" );
      ( nonneg_finite cfg.model_update_seconds,
        "model_update_seconds must be finite and >= 0" );
      (cfg.max_rounds >= 0, "max_rounds must be >= 0");
      (pos_finite cfg.time_budget_s, "time_budget_s must be finite and > 0");
      (rc.Tuning_config.jobs >= 1, "jobs must be >= 1");
      (rc.Tuning_config.batch >= 1, "batch must be >= 1") ]
    @ (match Measure.validate rc.Tuning_config.measure with
      | Ok () -> []
      | Error m -> [ (false, m) ])
  in
  match List.find_opt (fun (ok, _) -> not ok) checks with
  | Some (_, msg) -> Error (Invalid_config msg)
  | None -> Ok ()

let reporting f =
  match f () with
  | r -> Ok r
  | exception Sys_error m -> Error (Store_error (Store.Io m))
  | exception Invalid_argument m -> Error (Invalid_config m)

let run_raw (rc : Tuning_config.run) device base_model graph engine =
  with_effective_runtime rc @@ fun runtime ->
  let batch = batch_of_run rc in
  let cfg = rc.Tuning_config.search in
  let on_event = rc.Tuning_config.on_event in
  let telemetry = Option.value rc.Tuning_config.telemetry ~default:Telemetry.global in
  let store = rc.Tuning_config.store in
  let measurer =
    Measure.create ~telemetry
      (match runtime with Some rt -> Measure.Pool rt | None -> Measure.Direct)
      rc.Tuning_config.measure
  in
  let clock = Tuning_config.Clock.create () in
  let run_sp =
    Telemetry.span_begin telemetry "tuner.tune"
      ~attrs:
        [ ("network", Telemetry.Str graph.Graph.graph_name);
          ("device", Telemetry.Str device.Device.device_name);
          ("engine", Telemetry.Str (engine_name engine));
          ("domains", Telemetry.Int (match runtime with None -> 1 | Some rt -> Runtime.domains rt)) ]
  in
  let states =
    Telemetry.with_span telemetry "tuner.prepare_tasks" (fun () ->
        let tasks = Partition.partition graph in
        let cache_dir = rc.Tuning_config.pack_cache in
        match runtime with
        | None -> List.map (fun t -> make_state ?cache_dir t) tasks
        | Some rt ->
          Runtime.map_list rt (fun t -> make_state ~runtime:rt ?cache_dir t) tasks)
  in
  on_event
    (Tuning_started
       { network = graph.Graph.graph_name; device_name = device.Device.device_name;
         engine; n_tasks = List.length states });
  let identity =
    identity_json rc ~network:graph.Graph.graph_name
      ~device_name:device.Device.device_name engine
  in
  (* An unfinished checkpoint of this exact configuration resumes it;
     anything else (no store, no checkpoint, finished or foreign
     checkpoint) starts a fresh — possibly warm — run. *)
  let resume =
    match store with
    | None -> None
    | Some s -> (
      match Store.load_checkpoint s with
      | Error _ -> None
      | Ok cp -> decode_checkpoint cp ~identity states)
  in
  let rng, model, model_adam =
    match resume with
    | Some rs -> (rs.rs_rng, rs.rs_model, rs.rs_adam)
    | None ->
      let model = Mlp.copy base_model in
      (Rng.create rc.Tuning_config.seed, model, Mlp.adam_for ~lr:2e-4 model)
  in
  let round = ref 0 in
  let curve = ref [] in
  let run_id = ref None in
  let journal =
    match store with
    | None -> None
    | Some s ->
      let c_records = Telemetry.counter telemetry "store.records" in
      let c_failures = Telemetry.counter telemetry "store.failures" in
      Some
        (fun st pack y key (r : Measure.result) ->
          match r.Measure.outcome with
          | Measure.Ok lat ->
            Store.append s
              { Store.Record.network = graph.Graph.graph_name;
                device = device.Device.device_name;
                task_key = task_key_of st;
                sketch = sketch_name pack;
                key;
                y = Array.copy y;
                latency_ms = lat;
                round = !round;
                attempts = r.Measure.attempts };
            Telemetry.Counter.incr c_records
          | outcome ->
            Store.append_failure s
              { Store.Failure.network = graph.Graph.graph_name;
                device = device.Device.device_name;
                task_key = task_key_of st;
                sketch = sketch_name pack;
                key;
                y = Array.copy y;
                kind = Measure.outcome_kind outcome;
                message = (match outcome with Measure.Crash m -> m | _ -> "");
                attempts = r.Measure.attempts;
                deterministic = r.Measure.classification = Measure.Deterministic;
                round = !round };
            Telemetry.Counter.incr c_failures)
  in
  (* Journal lines of the round are made durable before the checkpoint
     that says the round happened, so a kill at any instant resumes from
     a state the journal fully covers. *)
  let save_ckpt ~completed =
    match (store, !run_id) with
    | Some s, Some id ->
      Store.sync s;
      let cp =
        checkpoint_json ~identity ~run_id:id ~completed ~round:!round ~rng ~clock
          ~curve:(List.rev !curve) ~model ~adam:model_adam states
      in
      (match Store.save_checkpoint s cp with
      | Ok () -> ()
      | Error e ->
        Logs.warn (fun m -> m "tuning store checkpoint failed: %s" (Store.error_message e)))
    | _ -> ()
  in
  (match resume with
  | Some rs ->
    List.iter (fun f -> f ()) rs.rs_restore;
    Tuning_config.Clock.set clock rs.rs_clock;
    round := rs.rs_round;
    curve := List.rev rs.rs_curve;
    run_id := Some rs.rs_run_id;
    (match store with Some s -> Store.resume_run s ~id:rs.rs_run_id | None -> ());
    Telemetry.Counter.incr ~by:rs.rs_entries (Telemetry.counter telemetry "store.replays")
  | None ->
    (match store with
    | Some s ->
      let replayed, warm_pairs =
        warm_seed s ~device_name:device.Device.device_name states
      in
      if replayed > 0 then begin
        Telemetry.Counter.incr ~by:replayed (Telemetry.counter telemetry "store.replays");
        ignore (update_model model model_adam warm_pairs)
      end;
      let id = Store.fresh_run_id s in
      run_id := Some id;
      Store.begin_run s ~id
    | None -> ());
    Telemetry.with_span telemetry "tuner.initial_round" (fun () ->
        initial_round cfg measurer ?journal ~telemetry rng device clock states);
    curve :=
      [ { time_s = Tuning_config.Clock.now clock; latency_ms = network_latency states } ];
    save_ckpt ~completed:false);
  while
    !round < cfg.max_rounds
    && Tuning_config.Clock.now clock < cfg.time_budget_s
  do
    incr round;
    let st = select_task states in
    ignore
      (tune_round cfg measurer rng ?runtime ?batch ?journal device engine model
         model_adam clock ~telemetry ~emit:on_event ~round:!round st);
    let net_ms = network_latency states in
    Telemetry.Gauge.set (Telemetry.gauge telemetry "tuner.network_latency_ms") net_ms;
    curve := { time_s = Tuning_config.Clock.now clock; latency_ms = net_ms } :: !curve;
    (* Checkpoint before announcing the round: once an observer hears
       [Round_finished n], a kill resumes from round n, not n-1. *)
    save_ckpt ~completed:false;
    on_event
      (Round_finished
         { round = !round; task_id = st.t.Partition.task_id; best_task_ms = st.best;
           network_ms = net_ms; sim_clock_s = Tuning_config.Clock.now clock })
  done;
  let reason = if !round >= cfg.max_rounds then Round_limit else Time_limit in
  on_event
    (Budget_exhausted
       { rounds = !round; sim_clock_s = Tuning_config.Clock.now clock; reason });
  let tasks =
    List.map
      (fun st ->
        { task = st.t; best = best_of_state st; rounds_spent = st.rounds_spent;
          measurements = st.n_measured })
      states
  in
  let final_latency_ms = network_latency states in
  let total_measurements = List.fold_left (fun acc st -> acc + st.n_measured) 0 states in
  (match (store, !run_id) with
  | Some s, Some id ->
    save_ckpt ~completed:true;
    Store.complete_run s ~id
  | _ -> ());
  on_event
    (Tuning_finished
       { final_latency_ms; total_measurements;
         sim_clock_s = Tuning_config.Clock.now clock });
  Telemetry.span_end telemetry run_sp
    ~attrs:
      [ ("rounds", Telemetry.Int !round);
        ("final_latency_ms", Telemetry.Float final_latency_ms);
        ("measurements", Telemetry.Int total_measurements);
        ("budget", Telemetry.Str (budget_reason_name reason));
        ("sim_clock_s", Telemetry.Float (Tuning_config.Clock.now clock)) ];
  { network = graph.Graph.graph_name;
    device_name = device.Device.device_name;
    engine;
    curve = List.rev !curve;
    final_latency_ms;
    total_measurements;
    tasks }

let run rc device base_model graph engine =
  match validate rc with
  | Error _ as e -> e
  | Ok () -> reporting (fun () -> run_raw rc device base_model graph engine)

type single_result = {
  best : best_candidate;
  curve : progress_point list;
  predictions : float list;
}

let run_single_raw (rc : Tuning_config.run) ~rounds device base_model sg engine =
  with_effective_runtime rc @@ fun runtime ->
  let batch = batch_of_run rc in
  let cfg = rc.Tuning_config.search in
  let on_event = rc.Tuning_config.on_event in
  let telemetry = Option.value rc.Tuning_config.telemetry ~default:Telemetry.global in
  let measurer =
    Measure.create ~telemetry
      (match runtime with Some rt -> Measure.Pool rt | None -> Measure.Direct)
      rc.Tuning_config.measure
  in
  let rng = Rng.create rc.Tuning_config.seed in
  let model = Mlp.copy base_model in
  let model_adam = Mlp.adam_for ~lr:2e-4 model in
  let clock = Tuning_config.Clock.create () in
  let task = { Partition.task_id = 0; subgraph = sg; weight = 1; node_ids = [] } in
  let st = make_state ?runtime ?cache_dir:rc.Tuning_config.pack_cache task in
  on_event
    (Tuning_started
       { network = sg.Compute.sg_name; device_name = device.Device.device_name; engine;
         n_tasks = 1 });
  initial_round cfg measurer ~telemetry rng device clock [ st ];
  let curve = ref [ { time_s = Tuning_config.Clock.now clock; latency_ms = st.best } ] in
  let predictions = ref [] in
  for round = 1 to rounds do
    let preds =
      tune_round cfg measurer rng ?runtime ?batch device engine model model_adam clock
        ~telemetry ~emit:on_event ~round st
    in
    predictions := !predictions @ preds;
    on_event
      (Round_finished
         { round; task_id = 0; best_task_ms = st.best; network_ms = st.best;
           sim_clock_s = Tuning_config.Clock.now clock });
    curve := { time_s = Tuning_config.Clock.now clock; latency_ms = st.best } :: !curve
  done;
  on_event
    (Budget_exhausted
       { rounds; sim_clock_s = Tuning_config.Clock.now clock; reason = Round_limit });
  on_event
    (Tuning_finished
       { final_latency_ms = st.best; total_measurements = st.n_measured;
         sim_clock_s = Tuning_config.Clock.now clock });
  { best = best_of_state st; curve = List.rev !curve; predictions = !predictions }

let run_single rc ~rounds device base_model sg engine =
  match validate rc with
  | Error _ as e -> e
  | Ok () ->
    if rounds < 0 then Error (Invalid_config "rounds must be >= 0")
    else reporting (fun () -> run_single_raw rc ~rounds device base_model sg engine)
