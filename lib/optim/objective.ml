(* Fused objective-gradient kernel for Equation 4:

     O(y) = -C(Feat(y)) + lambda * sum_r max(g_r(y), 0)^2

   One [value_grad] call runs exactly two tape forwards (features,
   penalties), two tape backwards, and one MLP forward + backward — all
   into pooled, pre-sized workspaces, so the Adam inner loop allocates
   nothing. Every buffer is fully rewritten before it is read, which
   makes the result independent of workspace reuse: the fused path is
   bitwise-identical to [legacy_value_grad] (the historical allocating
   composition) at any domain count. *)

type ws = {
  pws : Pack.workspace;
  mws : Mlp.workspace;
  w_adj : float array;  (* feature adjoint, one per model input *)
  w_gmodel : float array;  (* y-gradient of the model term *)
  w_gpen : float array;  (* y-gradient of the penalty term *)
}

(* Batched counterpart of [ws]: lane-major matrices sized for [b_cap]
   candidates, backing one lockstep sweep over a whole tile of seeds. *)
type bws = {
  b_cap : int;
  b_pws : Pack.batch_workspace;
  b_mws : Mlp.batch_workspace;
  b_adj : float array;  (* cap * n_model_inputs feature adjoints *)
  b_gmodel : float array;  (* cap * n_vars *)
  b_gpen : float array;
  b_scores : float array;  (* cap *)
  b_pvals : float array;
}

type t = {
  pack : Pack.t;
  model : Mlp.t;
  lambda : float;
  (* Workspace pool: descents running on worker domains borrow one each.
     A free list under a mutex (rather than Domain.DLS keys, which are
     never reclaimed) bounds live workspaces by the number of concurrent
     callers. Batch workspaces get their own pool, keyed by nothing but
     capacity (a too-small pooled one is simply replaced). *)
  lock : Mutex.t;
  mutable pool : ws list;
  mutable bpool : bws list;
}

let create ~lambda model pack =
  { pack; model; lambda; lock = Mutex.create (); pool = []; bpool = [] }

let pack t = t.pack
let lambda t = t.lambda

let fresh_ws t =
  { pws = Pack.workspace t.pack;
    mws = Mlp.workspace t.model;
    w_adj = Array.make (Mlp.n_inputs t.model) 0.0;
    w_gmodel = Array.make (Pack.num_vars t.pack) 0.0;
    w_gpen = Array.make (Pack.num_vars t.pack) 0.0
  }

let acquire t =
  Mutex.lock t.lock;
  let got = match t.pool with
    | ws :: rest ->
      t.pool <- rest;
      Some ws
    | [] -> None
  in
  Mutex.unlock t.lock;
  match got with Some ws -> ws | None -> fresh_ws t

let release t ws =
  Mutex.lock t.lock;
  t.pool <- ws :: t.pool;
  Mutex.unlock t.lock

let with_ws t f =
  let ws = acquire t in
  Fun.protect ~finally:(fun () -> release t ws) (fun () -> f ws)

let value_grad t y ~grad =
  if Array.length grad <> Pack.num_vars t.pack then
    invalid_arg "Objective.value_grad: gradient arity mismatch";
  with_ws t @@ fun ws ->
  (* Feature forward (values retained in the workspace for the backward
     sweep), then the model's input gradient off those features. *)
  let feats = Pack.features_forward t.pack ws.pws y in
  let score = Mlp.input_gradient_into t.model ws.mws feats ws.w_adj in
  (* dO/dfeat = -dC/dfeat. *)
  for i = 0 to Array.length ws.w_adj - 1 do
    ws.w_adj.(i) <- -.ws.w_adj.(i)
  done;
  Pack.features_backward t.pack ws.pws ws.w_adj ws.w_gmodel;
  let pval = Pack.penalty_value_grad_into t.pack ws.pws y ws.w_gpen in
  let obj = -.score +. (t.lambda *. pval) in
  for i = 0 to Array.length grad - 1 do
    grad.(i) <- ws.w_gmodel.(i) +. (t.lambda *. ws.w_gpen.(i))
  done;
  obj

let predict t y =
  with_ws t @@ fun ws ->
  Mlp.forward_into t.model ws.mws (Pack.features_forward t.pack ws.pws y)

(* --- batched lockstep evaluation ------------------------------------------- *)

let fresh_bws t ~batch =
  let nv = Pack.num_vars t.pack and ni = Mlp.n_inputs t.model in
  { b_cap = batch;
    b_pws = Pack.batch_workspace t.pack ~batch;
    b_mws = Mlp.batch_workspace t.model ~batch;
    b_adj = Array.make (batch * ni) 0.0;
    b_gmodel = Array.make (batch * nv) 0.0;
    b_gpen = Array.make (batch * nv) 0.0;
    b_scores = Array.make batch 0.0;
    b_pvals = Array.make batch 0.0
  }

let acquire_batch t ~batch =
  if batch < 1 then invalid_arg "Objective: batch must be >= 1";
  Mutex.lock t.lock;
  let got =
    match t.bpool with
    | bws :: rest ->
      t.bpool <- rest;
      Some bws
    | [] -> None
  in
  Mutex.unlock t.lock;
  match got with
  | Some bws when bws.b_cap >= batch -> bws
  | Some _ | None -> fresh_bws t ~batch

let release_batch t bws =
  Mutex.lock t.lock;
  t.bpool <- bws :: t.bpool;
  Mutex.unlock t.lock

let with_bws t ~batch f =
  let bws = acquire_batch t ~batch in
  Fun.protect ~finally:(fun () -> release_batch t bws) (fun () -> f bws)

let value_grad_batch t ~batch ys ~grads ~objs =
  let nv = Pack.num_vars t.pack in
  if Array.length ys < batch * nv then
    invalid_arg "Objective.value_grad_batch: point arity mismatch";
  if Array.length grads < batch * nv then
    invalid_arg "Objective.value_grad_batch: gradient arity mismatch";
  if Array.length objs < batch then
    invalid_arg "Objective.value_grad_batch: objective arity mismatch";
  with_bws t ~batch @@ fun bws ->
  (* The scalar [value_grad] composition, one batched kernel per stage;
     each lane runs the exact scalar sweeps, so lane [l] is bitwise the
     scalar call on row [l]. *)
  let feats = Pack.features_forward_batch t.pack bws.b_pws ~batch ys in
  Mlp.input_gradient_batch_into t.model bws.b_mws ~batch feats ~grads:bws.b_adj
    ~scores:bws.b_scores;
  let adj = bws.b_adj in
  for i = 0 to (batch * Mlp.n_inputs t.model) - 1 do
    Array.unsafe_set adj i (-.Array.unsafe_get adj i)
  done;
  Pack.features_backward_batch t.pack bws.b_pws ~batch adj bws.b_gmodel;
  Pack.penalty_value_grad_batch_into t.pack bws.b_pws ~batch ys ~grads:bws.b_gpen
    ~values:bws.b_pvals;
  let lambda = t.lambda in
  for l = 0 to batch - 1 do
    objs.(l) <- -.Array.unsafe_get bws.b_scores l +. (lambda *. Array.unsafe_get bws.b_pvals l)
  done;
  let gm = bws.b_gmodel and gp = bws.b_gpen in
  for j = 0 to (batch * nv) - 1 do
    Array.unsafe_set grads j (Array.unsafe_get gm j +. (lambda *. Array.unsafe_get gp j))
  done

let predict_batch t ~batch ys ~scores =
  if Array.length ys < batch * Pack.num_vars t.pack then
    invalid_arg "Objective.predict_batch: point arity mismatch";
  if Array.length scores < batch then
    invalid_arg "Objective.predict_batch: scores arity mismatch";
  with_bws t ~batch @@ fun bws ->
  let feats = Pack.features_forward_batch t.pack bws.b_pws ~batch ys in
  Mlp.forward_batch_into t.model bws.b_mws ~batch feats ~scores

(* The pre-fusion composition, kept verbatim as the reference the fused
   kernel is tested (and benchmarked) against — including the separate
   penalty eval + vjp (two penalty forwards) the fused path eliminates. *)
let legacy_value_grad ~lambda model pack y =
  let feats = Pack.features_at pack y in
  let score, dscore_dfeat = Mlp.input_gradient model feats in
  let adj = Array.map (fun d -> -.d) dscore_dfeat in
  let _, dy_model = Pack.features_vjp pack y adj in
  let margins = Pack.penalty_margins pack y in
  let pval = Array.fold_left (fun acc g -> acc +. (max g 0.0 ** 2.0)) 0.0 margins in
  let padj = Array.map (fun g -> 2.0 *. max g 0.0) margins in
  let _, pgrad = Pack.penalty_vjp pack y padj in
  let obj = -.score +. (lambda *. pval) in
  let grad = Array.mapi (fun i g -> g +. (lambda *. pgrad.(i))) dy_model in
  (obj, grad)
