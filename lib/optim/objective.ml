(* Fused objective-gradient kernel for Equation 4:

     O(y) = -C(Feat(y)) + lambda * sum_r max(g_r(y), 0)^2

   One [value_grad] call runs exactly two tape forwards (features,
   penalties), two tape backwards, and one MLP forward + backward — all
   into pooled, pre-sized workspaces, so the Adam inner loop allocates
   nothing. Every buffer is fully rewritten before it is read, which
   makes the result independent of workspace reuse: the fused path is
   bitwise-identical to [legacy_value_grad] (the historical allocating
   composition) at any domain count. *)

type ws = {
  pws : Pack.workspace;
  mws : Mlp.workspace;
  w_adj : float array;  (* feature adjoint, one per model input *)
  w_gmodel : float array;  (* y-gradient of the model term *)
  w_gpen : float array;  (* y-gradient of the penalty term *)
}

type t = {
  pack : Pack.t;
  model : Mlp.t;
  lambda : float;
  (* Workspace pool: descents running on worker domains borrow one each.
     A free list under a mutex (rather than Domain.DLS keys, which are
     never reclaimed) bounds live workspaces by the number of concurrent
     callers. *)
  lock : Mutex.t;
  mutable pool : ws list;
}

let create ~lambda model pack =
  { pack; model; lambda; lock = Mutex.create (); pool = [] }

let pack t = t.pack
let lambda t = t.lambda

let fresh_ws t =
  { pws = Pack.workspace t.pack;
    mws = Mlp.workspace t.model;
    w_adj = Array.make (Mlp.n_inputs t.model) 0.0;
    w_gmodel = Array.make (Pack.num_vars t.pack) 0.0;
    w_gpen = Array.make (Pack.num_vars t.pack) 0.0
  }

let acquire t =
  Mutex.lock t.lock;
  let got = match t.pool with
    | ws :: rest ->
      t.pool <- rest;
      Some ws
    | [] -> None
  in
  Mutex.unlock t.lock;
  match got with Some ws -> ws | None -> fresh_ws t

let release t ws =
  Mutex.lock t.lock;
  t.pool <- ws :: t.pool;
  Mutex.unlock t.lock

let with_ws t f =
  let ws = acquire t in
  Fun.protect ~finally:(fun () -> release t ws) (fun () -> f ws)

let value_grad t y ~grad =
  if Array.length grad <> Pack.num_vars t.pack then
    invalid_arg "Objective.value_grad: gradient arity mismatch";
  with_ws t @@ fun ws ->
  (* Feature forward (values retained in the workspace for the backward
     sweep), then the model's input gradient off those features. *)
  let feats = Pack.features_forward t.pack ws.pws y in
  let score = Mlp.input_gradient_into t.model ws.mws feats ws.w_adj in
  (* dO/dfeat = -dC/dfeat. *)
  for i = 0 to Array.length ws.w_adj - 1 do
    ws.w_adj.(i) <- -.ws.w_adj.(i)
  done;
  Pack.features_backward t.pack ws.pws ws.w_adj ws.w_gmodel;
  let pval = Pack.penalty_value_grad_into t.pack ws.pws y ws.w_gpen in
  let obj = -.score +. (t.lambda *. pval) in
  for i = 0 to Array.length grad - 1 do
    grad.(i) <- ws.w_gmodel.(i) +. (t.lambda *. ws.w_gpen.(i))
  done;
  obj

let predict t y =
  with_ws t @@ fun ws ->
  Mlp.forward_into t.model ws.mws (Pack.features_forward t.pack ws.pws y)

(* The pre-fusion composition, kept verbatim as the reference the fused
   kernel is tested (and benchmarked) against — including the separate
   penalty eval + vjp (two penalty forwards) the fused path eliminates. *)
let legacy_value_grad ~lambda model pack y =
  let feats = Pack.features_at pack y in
  let score, dscore_dfeat = Mlp.input_gradient model feats in
  let adj = Array.map (fun d -> -.d) dscore_dfeat in
  let _, dy_model = Pack.features_vjp pack y adj in
  let margins = Pack.penalty_margins pack y in
  let pval = Array.fold_left (fun acc g -> acc +. (max g 0.0 ** 2.0)) 0.0 margins in
  let padj = Array.map (fun g -> 2.0 *. max g 0.0) margins in
  let _, pgrad = Pack.penalty_vjp pack y padj in
  let obj = -.score +. (lambda *. pval) in
  let grad = Array.mapi (fun i g -> g +. (lambda *. pgrad.(i))) dy_model in
  (obj, grad)
