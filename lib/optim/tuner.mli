(** Full-graph tuning (Algorithm 2) for both search engines.

    The tensor program is partitioned into subgraph tasks; rounds of search
    are allocated across tasks by an Ansor-style task scheduler (expected
    gain = occurrence weight x current best latency, decayed when a task
    stops improving). Each round runs one engine's search on one task,
    measures the returned candidates on the device simulator, updates the
    cost model online with the new measurements (Algorithm 1, line 24), and
    advances the simulated tuning clock.

    The same driver with [engine = Ansor] reproduces the Ansor-TenSet
    baseline: identical sketches, cost model, measurement budget accounting
    and task scheduling — only the per-round search differs. *)

type engine =
  | Felix  (** gradient descent, Algorithm 1 *)
  | Ansor  (** the evolutionary baseline *)
  | Random  (** uniform random valid schedules (ablation control) *)

val engine_name : engine -> string

type progress_point = { time_s : float; latency_ms : float }

type task_result = {
  task : Partition.task;
  best_latency_ms : float;  (** per occurrence *)
  best_assignment : (string * int) list;
  best_sketch : string;
  rounds_spent : int;
  measurements : int;
}

type result = {
  network : string;
  device_name : string;
  engine : engine;
  curve : progress_point list;  (** network latency after each round *)
  final_latency_ms : float;
  total_measurements : int;
  tasks : task_result list;
}

val network_latency_ms : result -> float

val tune :
  ?config:Tuning_config.t ->
  seed:int ->
  Device.t ->
  Mlp.t ->
  Graph.t ->
  engine ->
  result
(** Tune a whole network. The cost model is copied and fine-tuned
    privately; the caller's model is not modified. *)

type single_result = {
  s_best_latency_ms : float;
  s_curve : progress_point list;
  s_predictions : float list;
      (** predicted score of every schedule the search evaluated, in search
          order (Figure 8's population data) *)
}

val tune_single :
  ?config:Tuning_config.t ->
  seed:int ->
  rounds:int ->
  Device.t ->
  Mlp.t ->
  Compute.subgraph ->
  engine ->
  single_result
(** Tune one subgraph for a fixed number of rounds (Figures 8 and 9). *)
