(** Full-graph tuning (Algorithm 2) for both search engines.

    The tensor program is partitioned into subgraph tasks; rounds of search
    are allocated across tasks by an Ansor-style task scheduler (expected
    gain = occurrence weight x current best latency, decayed when a task
    stops improving). Each round runs one engine's search on one task,
    measures the returned candidates on the device simulator, updates the
    cost model online with the new measurements (Algorithm 1, line 24), and
    advances the simulated tuning clock.

    The same driver with [engine = Ansor] reproduces the Ansor-TenSet
    baseline: identical sketches, cost model, measurement budget accounting
    and task scheduling — only the per-round search differs.

    {2 Configuration}

    {!run} and {!run_single} take one {!Tuning_config.run} value built with
    the config builder:

    {[
      let rc = Tuning_config.(builder |> with_rounds 32 |> with_seed 7 |> with_jobs 4) in
      let result = Tuner.run rc device model graph Tuner.Felix
    ]}

    With [jobs > 1] (or an explicit {!Tuning_config.with_runtime}) the pure
    phases — schedule descents, feature packs, cost-model forwards,
    simulator base latencies — fan out across a {!Runtime} domain pool.
    The tuning RNG is always consumed in the sequential order, so the
    result (curve, best candidate, every measured latency) is bit-identical
    to the sequential run at any domain count.

    {2 Observability}

    The driver is event-driven: every phase of the loop is announced
    through the run configuration's event callback
    ({!Tuning_config.with_on_event}), so progress streaming, early-run
    dashboards and logging are all consumers of one event bus rather than
    being baked into the driver. Independently,
    {!Tuning_config.with_telemetry} names the {!Telemetry} registry that
    receives per-round spans (engine, task, candidate counts, best latency,
    model loss, simulated vs. wall clock) and counters; it defaults to
    [Telemetry.global], which is disabled unless a front end turns it on.
    Omitting both yields exactly the behaviour (and result) of the
    un-instrumented driver. *)

(** The search engine. Defined in {!Tuning_config} (re-exported here), so
    configuration values can reference it without a dependency cycle. *)
type engine = Tuning_config.engine =
  | Felix  (** gradient descent, Algorithm 1 *)
  | Ansor  (** the evolutionary baseline *)
  | Random  (** uniform random valid schedules (ablation control) *)

val engine_name : engine -> string

type progress_point = { time_s : float; latency_ms : float }

type best_candidate = {
  latency_ms : float;  (** per occurrence *)
  sketch : string;
  assignment : (string * int) list;
}
(** The winning schedule of a search: latency, sketch name and concrete
    variable assignment. Shared by {!task_result} and {!single_result}. *)

type task_result = {
  task : Partition.task;
  best : best_candidate;
  rounds_spent : int;
  measurements : int;
}

type result = {
  network : string;
  device_name : string;
  engine : engine;
  curve : progress_point list;  (** network latency after each round *)
  final_latency_ms : float;
  total_measurements : int;
  tasks : task_result list;
}

val network_latency_ms : result -> float

(** {2 Tuning events}

    Re-exported from {!Tuning_config}. *)

type budget_reason = Tuning_config.budget_reason =
  | Round_limit  (** [max_rounds] reached *)
  | Time_limit  (** simulated [time_budget_s] exhausted *)

(** One tuning-loop occurrence, delivered to the configured event callback
    in strict order: [Tuning_started], then per round [Round_started],
    [Candidates_measured], optionally [Task_improved] and [Model_updated],
    [Round_finished]; finally [Budget_exhausted] and [Tuning_finished].
    [sim_clock_s] is the simulated tuning clock (seconds). *)
type event = Tuning_config.event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : engine;
      n_tasks : int;
    }
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;  (** candidates returned by the engine's search *)
      measured : int;  (** of those, newly measured on the simulator *)
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }
  | Model_updated of { round : int; samples : int; loss : float }
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;  (** whole-network latency after this round *)
      sim_clock_s : float;
    }
  | Budget_exhausted of { rounds : int; sim_clock_s : float; reason : budget_reason }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

val no_event : event -> unit
val budget_reason_name : budget_reason -> string

(** {2 Typed failure reporting}

    The entry points validate the run configuration up front and report
    failures as values instead of raising out of deep library code:

    - [Invalid_config] — a search or parallelism field is out of range
      (checked before any work starts), or a deeper layer rejected the
      configuration with [Invalid_argument];
    - [Store_error] — the durable store failed with an I/O error.

    Exceptions raised by the caller's own event callback propagate
    unchanged — they are the caller's control flow (cooperative
    cancellation, abort-for-resume tests), not tuner failures. *)
type error = Invalid_config of string | Store_error of Store.error

val error_message : error -> string

val run :
  Tuning_config.run -> Device.t -> Mlp.t -> Graph.t -> engine -> (result, error) Stdlib.result
(** Tune a whole network under one run configuration. The cost model is
    copied and fine-tuned privately; the caller's model is not modified.
    When the configuration carries no explicit runtime but [jobs > 1], a
    temporary domain pool is created for the duration of the call.

    With {!Tuning_config.with_store} the run is durable:

    - every measurement is appended to the store's journal and made
      durable (fsync) at the end of each round, followed by an atomic
      checkpoint of the complete tuning state — scheduler state, RNG
      stream position, cost-model weights, optimizer state and the
      simulated clock;
    - if the store holds an unfinished checkpoint of the {e same}
      configuration (network, device, engine, seed and search
      parameters — parallelism is excluded, results are invariant to
      it), the run resumes from it and produces a result bit-identical
      to the uninterrupted run;
    - otherwise, records of {e completed} prior runs for the same
      device and tasks warm-start this one: their schedules seed the
      dedup caches, bests and elites (a re-proposal of a seeded
      schedule costs zero simulated time), and the cost model is
      fine-tuned once on the replayed pairs before the first round.
      A run over an empty store is bit-identical to a run without one. *)

type single_result = {
  best : best_candidate;
  curve : progress_point list;
  predictions : float list;
      (** predicted score of every schedule the search evaluated, in search
          order (Figure 8's population data) *)
}

val run_single :
  Tuning_config.run ->
  rounds:int ->
  Device.t ->
  Mlp.t ->
  Compute.subgraph ->
  engine ->
  (single_result, error) Stdlib.result
(** Tune one subgraph for a fixed number of rounds (Figures 8 and 9).
    Fails with [Invalid_config] when the configuration or [rounds] is out
    of range, like {!run}. *)
