(** Plain-text export of tuning results.

    The benchmark harness and the CLI write each run's progress curve as
    CSV (one row per round: simulated seconds, best network latency) and a
    JSON summary (final latency, per-task winners and variable assignments)
    so results can be plotted or diffed outside the process. JSON is
    emitted by a small built-in writer — no external dependency. *)

val curve_to_csv : Tuner.result -> string
(** Header ["time_s,latency_ms"] plus one row per recorded round. *)

val result_to_json : Tuner.result -> string
(** Pretty-printed JSON object with the run metadata, curve and per-task
    results. *)

val write_curve_csv : Tuner.result -> string -> unit
val write_result_json : Tuner.result -> string -> unit

(** Minimal JSON construction (public for tests). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?indent:int -> t -> string
  (** Serialise with the given indentation (default 2); strings are escaped
      per RFC 8259. *)
end
