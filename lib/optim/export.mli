(** Plain-text export of tuning results.

    The benchmark harness and the CLI write each run's progress curve as
    CSV (one row per round: simulated seconds, best network latency) and
    a versioned JSON result artifact (final latency, per-task winners and
    variable assignments) so results can be plotted, diffed or reloaded
    outside the process.

    Result files share the {!Store.Artifact} envelope with every other
    persistent Felix artifact (cost models, compiled networks, store
    checkpoints): [{"felix":{"kind":...,"version":...},"payload":...}].
    The JSON writer emits shortest-round-trip numbers, so every float
    read back from a result file is bit-identical to the one written. *)

val curve_to_csv : Tuner.result -> string
(** Header ["time_s,latency_ms"] plus one row per recorded round. *)

val result_json : Tuner.result -> Json.t
(** The result's payload object (run metadata, curve and per-task
    results), without the artifact envelope. *)

val result_to_json : Tuner.result -> string
(** [result_json] pretty-printed. *)

val write_curve_csv : Tuner.result -> string -> unit

(** {2 Versioned result artifact} *)

val result_kind : string
val result_version : int

type saved_task = {
  st_subgraph : string;
  st_weight : int;
  st_best_latency_ms : float;
  st_sketch : string;
  st_rounds : int;
  st_measurements : int;
  st_assignment : (string * int) list;
}

type saved_result = {
  sr_network : string;
  sr_device : string;
  sr_engine : string;  (** engine display name, e.g. ["Felix"] *)
  sr_final_latency_ms : float;
  sr_total_measurements : int;
  sr_curve : (float * float) list;  (** (simulated seconds, latency ms) *)
  sr_tasks : saved_task list;
}
(** What a result file persists. Live [Partition.task] values are not
    serialised — a reloaded result carries the per-task summaries
    instead of the original {!Tuner.task_result} list. *)

val save_result : Tuner.result -> string -> (unit, Store.error) result
(** Atomically write the result as a versioned artifact. *)

val load_result : string -> (saved_result, Store.error) result

(** The shared JSON writer/parser, re-exported from [lib/util] under the
    historical [Export.Json] path. *)
module Json = Json
