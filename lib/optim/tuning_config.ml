type t = {
  nseeds : int;
  nsteps : int;
  nmeasure_felix : int;
  lambda : float;
  gd_lr : float;
  population : int;
  generations : int;
  nmeasure_ansor : int;
  mutation_prob : float;
  measure_seconds : float;
  felix_round_overhead : float;
  ansor_round_overhead : float;
  model_update_seconds : float;
  max_rounds : int;
  time_budget_s : float;
}

let default =
  { nseeds = 8; nsteps = 200; nmeasure_felix = 16; lambda = 10.0; gd_lr = 0.08;
    population = 512; generations = 4; nmeasure_ansor = 64; mutation_prob = 0.3;
    measure_seconds = 0.5; felix_round_overhead = 2.0; ansor_round_overhead = 4.5;
    model_update_seconds = 0.5; max_rounds = 120; time_budget_s = 12_000.0 }

let quick =
  { default with nseeds = 4; nsteps = 60; population = 96; generations = 2;
    nmeasure_ansor = 24; max_rounds = 16; time_budget_s = 1_000.0 }

module Clock = struct
  type clock = { mutable t : float }

  let create () = { t = 0.0 }
  let now c = c.t
  let advance c dt = c.t <- c.t +. dt
  let set c v = c.t <- v
end

(* --- engines and tuning events --------------------------------------------- *)

type engine = Felix | Ansor | Random

let engine_name = function
  | Felix -> "Felix"
  | Ansor -> "Ansor-TenSet"
  | Random -> "Random"

type budget_reason = Round_limit | Time_limit

let budget_reason_name = function Round_limit -> "rounds" | Time_limit -> "time"

type event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : engine;
      n_tasks : int;
    }
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;
      measured : int;
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }
  | Model_updated of { round : int; samples : int; loss : float }
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;
      sim_clock_s : float;
    }
  | Budget_exhausted of { rounds : int; sim_clock_s : float; reason : budget_reason }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

let no_event : event -> unit = fun _ -> ()

(* --- consolidated run configuration ---------------------------------------- *)

type run = {
  search : t;
  seed : int;
  jobs : int;
  batch : int;
  runtime : Runtime.t option;
  on_event : event -> unit;
  telemetry : Telemetry.t option;
  store : Store.t option;
}

(* FELIX_BATCH seeds the builder's descent batch width, mirroring how the
   CLI reads FELIX_JOBS: unset, empty or unparsable means 1 (scalar). *)
let batch_from_env () =
  match Sys.getenv_opt "FELIX_BATCH" with
  | None -> 1
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)

let builder =
  { search = default; seed = 0; jobs = 1; batch = batch_from_env (); runtime = None;
    on_event = no_event; telemetry = None; store = None }

let with_search search r = { r with search }
let with_rounds n r = { r with search = { r.search with max_rounds = n } }
let with_time_budget s r = { r with search = { r.search with time_budget_s = s } }

let with_measure_per_round n r =
  { r with search = { r.search with nmeasure_felix = n; nmeasure_ansor = n } }

let with_seed seed r = { r with seed }
let with_jobs jobs r = { r with jobs = max 1 jobs }
let with_batch batch r = { r with batch = max 1 batch }
let with_runtime rt r = { r with runtime = Some rt }
let with_on_event on_event r = { r with on_event }
let with_telemetry reg r = { r with telemetry = Some reg }
let with_store store r = { r with store = Some store }
