type t = {
  nseeds : int;
  nsteps : int;
  nmeasure_felix : int;
  lambda : float;
  gd_lr : float;
  population : int;
  generations : int;
  nmeasure_ansor : int;
  mutation_prob : float;
  measure_seconds : float;
  felix_round_overhead : float;
  ansor_round_overhead : float;
  model_update_seconds : float;
  max_rounds : int;
  time_budget_s : float;
}

let default =
  { nseeds = 8; nsteps = 200; nmeasure_felix = 16; lambda = 10.0; gd_lr = 0.08;
    population = 512; generations = 4; nmeasure_ansor = 64; mutation_prob = 0.3;
    measure_seconds = 0.5; felix_round_overhead = 2.0; ansor_round_overhead = 4.5;
    model_update_seconds = 0.5; max_rounds = 120; time_budget_s = 12_000.0 }

let quick =
  { default with nseeds = 4; nsteps = 60; population = 96; generations = 2;
    nmeasure_ansor = 24; max_rounds = 16; time_budget_s = 1_000.0 }

module Clock = struct
  type clock = { mutable t : float }

  let create () = { t = 0.0 }
  let now c = c.t
  let advance c dt = c.t <- c.t +. dt
end
