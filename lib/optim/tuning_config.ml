type t = {
  nseeds : int;
  nsteps : int;
  nmeasure_felix : int;
  lambda : float;
  gd_lr : float;
  population : int;
  generations : int;
  nmeasure_ansor : int;
  mutation_prob : float;
  measure_seconds : float;
  felix_round_overhead : float;
  ansor_round_overhead : float;
  model_update_seconds : float;
  max_rounds : int;
  time_budget_s : float;
}

let default =
  { nseeds = 8; nsteps = 200; nmeasure_felix = 16; lambda = 10.0; gd_lr = 0.08;
    population = 512; generations = 4; nmeasure_ansor = 64; mutation_prob = 0.3;
    measure_seconds = 0.5; felix_round_overhead = 2.0; ansor_round_overhead = 4.5;
    model_update_seconds = 0.5; max_rounds = 120; time_budget_s = 12_000.0 }

let quick =
  { default with nseeds = 4; nsteps = 60; population = 96; generations = 2;
    nmeasure_ansor = 24; max_rounds = 16; time_budget_s = 1_000.0 }

module Clock = struct
  type clock = { mutable t : float }

  let create () = { t = 0.0 }
  let now c = c.t
  let advance c dt = c.t <- c.t +. dt
  let set c v = c.t <- v
end

(* --- engines and tuning events --------------------------------------------- *)

type engine = Felix | Ansor | Random

let engine_name = function
  | Felix -> "Felix"
  | Ansor -> "Ansor-TenSet"
  | Random -> "Random"

(* Stable lowercase identifiers for the wire protocol, CLI flags and the
   invocation/checkpoint artifacts; [engine_name] stays the paper's display
   spelling. *)
let engine_id = function Felix -> "felix" | Ansor -> "ansor" | Random -> "random"

let engine_of_id s =
  match String.lowercase_ascii (String.trim s) with
  | "felix" -> Some Felix
  | "ansor" -> Some Ansor
  | "random" -> Some Random
  | _ -> None

type budget_reason = Round_limit | Time_limit

let budget_reason_name = function Round_limit -> "rounds" | Time_limit -> "time"

type event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : engine;
      n_tasks : int;
    }
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;
      measured : int;
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }
  | Model_updated of { round : int; samples : int; loss : float }
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;
      sim_clock_s : float;
    }
  | Budget_exhausted of { rounds : int; sim_clock_s : float; reason : budget_reason }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

let no_event : event -> unit = fun _ -> ()

(* --- consolidated run configuration ---------------------------------------- *)

type run = {
  search : t;
  seed : int;
  jobs : int;
  batch : int;
  measure : Measure.config;
  runtime : Runtime.t option;
  on_event : event -> unit;
  telemetry : Telemetry.t option;
  store : Store.t option;
  pack_cache : string option;
}

(* FELIX_BATCH seeds the builder's descent batch width, mirroring how the
   CLI reads FELIX_JOBS: unset, empty or unparsable means 1 (scalar). *)
let batch_from_env () =
  match Sys.getenv_opt "FELIX_BATCH" with
  | None -> 1
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)

let builder =
  { search = default; seed = 0; jobs = 1; batch = batch_from_env ();
    measure = Measure.default; runtime = None; on_event = no_event;
    telemetry = None; store = None; pack_cache = None }

let with_search search r = { r with search }
let with_rounds n r = { r with search = { r.search with max_rounds = n } }
let with_time_budget s r = { r with search = { r.search with time_budget_s = s } }

let with_measure_per_round n r =
  { r with search = { r.search with nmeasure_felix = n; nmeasure_ansor = n } }

let with_seed seed r = { r with seed }
let with_jobs jobs r = { r with jobs = max 1 jobs }
let with_batch batch r = { r with batch = max 1 batch }
let with_measurer measure r = { r with measure }
let with_runtime rt r = { r with runtime = Some rt }
let with_on_event on_event r = { r with on_event }
let with_telemetry reg r = { r with telemetry = Some reg }
let with_store store r = { r with store = Some store }

(* Like runtime/telemetry/store, the pack-cache directory is process-local
   deployment state, not search identity: it stays out of the JSON codec so
   checkpoints and job specs are unaffected by where (or whether) a host
   caches compiled packs. *)
let with_pack_cache dir r = { r with pack_cache = Some dir }

(* --- JSON codec -------------------------------------------------------------

   One codec shared by the CLI invocation record (run.json), the tuning
   service's wire protocol and the checkpoint identity. Floats cross as
   IEEE-754 bit strings (Store.Bits): a decoded configuration is
   bit-identical to the encoded one, which is what lets a resumed or
   re-submitted run match its checkpoint identity exactly. *)

let search_to_json (cfg : t) =
  let f v = Json.Str (Store.Bits.of_float v) in
  let i v = Json.Num (float_of_int v) in
  Json.Obj
    [ ("nseeds", i cfg.nseeds); ("nsteps", i cfg.nsteps);
      ("nmeasure_felix", i cfg.nmeasure_felix); ("lambda", f cfg.lambda);
      ("gd_lr", f cfg.gd_lr); ("population", i cfg.population);
      ("generations", i cfg.generations); ("nmeasure_ansor", i cfg.nmeasure_ansor);
      ("mutation_prob", f cfg.mutation_prob);
      ("measure_seconds", f cfg.measure_seconds);
      ("felix_round_overhead", f cfg.felix_round_overhead);
      ("ansor_round_overhead", f cfg.ansor_round_overhead);
      ("model_update_seconds", f cfg.model_update_seconds);
      ("max_rounds", i cfg.max_rounds); ("time_budget_s", f cfg.time_budget_s) ]

(* Decoders thread the first missing/mistyped field name out as the error. *)
exception Codec of string

let field j k = match Json.find j k with Some v -> v | None -> raise (Codec k)
let int_field j k = match Json.as_int (field j k) with Some v -> v | None -> raise (Codec k)

let bits_field j k =
  match Option.bind (Json.as_string (field j k)) Store.Bits.to_float with
  | Some v -> v
  | None -> raise (Codec k)

let search_of_json j =
  try
    let i = int_field j and f = bits_field j in
    Ok
      { nseeds = i "nseeds"; nsteps = i "nsteps";
        nmeasure_felix = i "nmeasure_felix"; lambda = f "lambda";
        gd_lr = f "gd_lr"; population = i "population";
        generations = i "generations"; nmeasure_ansor = i "nmeasure_ansor";
        mutation_prob = f "mutation_prob"; measure_seconds = f "measure_seconds";
        felix_round_overhead = f "felix_round_overhead";
        ansor_round_overhead = f "ansor_round_overhead";
        model_update_seconds = f "model_update_seconds";
        max_rounds = i "max_rounds"; time_budget_s = f "time_budget_s" }
  with Codec k -> Error (Printf.sprintf "search config: missing or malformed field %S" k)

let to_json (r : run) =
  Json.Obj
    ([ ("search", search_to_json r.search);
       ("seed", Json.Num (float_of_int r.seed));
       ("jobs", Json.Num (float_of_int r.jobs));
       ("batch", Json.Num (float_of_int r.batch)) ]
    (* Emitted only when non-default, so run.json, job specs and checkpoint
       identities written by a default (fault-free) run keep the exact
       pre-measurer byte format. *)
    @ (if Measure.config_equal r.measure Measure.default then []
       else [ ("measure", Measure.config_to_json r.measure) ]))

(* The process-local fields (runtime, callback, telemetry, store) have no
   serialised form; a decoded run carries the builder defaults for them and
   the front end re-attaches what it needs. *)
let of_json j =
  match Json.find j "search" with
  | None -> Error "run config: missing field \"search\""
  | Some sj -> (
    match search_of_json sj with
    | Error m -> Error m
    | Ok search ->
      (try
         let seed = int_field j "seed" in
         let jobs = int_field j "jobs" in
         let batch = int_field j "batch" in
         let measure =
           match Json.find j "measure" with
           | None -> Ok Measure.default
           | Some mj -> Measure.config_of_json mj
         in
         match measure with
         | Error m -> Error m
         | Ok measure ->
           Ok
             (builder |> with_search search |> with_seed seed |> with_jobs jobs
             |> with_batch batch |> with_measurer measure)
       with Codec k -> Error (Printf.sprintf "run config: missing or malformed field %S" k)))
