(** Search parameters and the simulated tuning-time accounting.

    Search defaults follow the paper's Section 5: Felix runs 8 seeds x 200
    Adam steps and measures 16 candidates per round; Ansor runs an
    evolutionary search and measures 64 per round. The paper's Ansor
    population is 2048 x 4 generations; we default to 512 x 4 — a
    documented scale-down that keeps the harness CPU time tractable while
    preserving the predictions-per-round ratio between the two tuners
    (see DESIGN.md).

    Tuning time is simulated: every measured candidate costs compile +
    run time, and each round pays the search's own overhead (gradient
    descent for Felix; population scoring and genetic operators for Ansor)
    plus the cost-model update. The constants are calibrated to the
    end-to-end round times reported for TVM-based tuners. *)

type t = {
  (* Felix (Algorithm 1) *)
  nseeds : int;  (** schedules optimised simultaneously (default 8) *)
  nsteps : int;  (** gradient descent steps (default 200) *)
  nmeasure_felix : int;  (** hardware measurements per round (default 16) *)
  lambda : float;  (** penalty coefficient of Equation 4 *)
  gd_lr : float;  (** Adam learning rate over schedule variables *)
  (* Ansor baseline *)
  population : int;  (** evolutionary population size (default 512) *)
  generations : int;  (** default 4 *)
  nmeasure_ansor : int;  (** default 64 *)
  mutation_prob : float;
  (* simulated time accounting (seconds) *)
  measure_seconds : float;  (** compile + run per measured candidate *)
  felix_round_overhead : float;
  ansor_round_overhead : float;
  model_update_seconds : float;
  (* stopping *)
  max_rounds : int;  (** total rounds across all subgraph tasks *)
  time_budget_s : float;  (** stop when the simulated clock passes this *)
}

val default : t

val quick : t
(** Reduced effort for tests and fast harness runs. *)

(** Simulated wall clock of a tuning session. *)
module Clock : sig
  type clock

  val create : unit -> clock
  val now : clock -> float
  val advance : clock -> float -> unit
end
