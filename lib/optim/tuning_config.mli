(** Search parameters, the consolidated run configuration, and the simulated
    tuning-time accounting.

    Search defaults follow the paper's Section 5: Felix runs 8 seeds x 200
    Adam steps and measures 16 candidates per round; Ansor runs an
    evolutionary search and measures 64 per round. The paper's Ansor
    population is 2048 x 4 generations; we default to 512 x 4 — a
    documented scale-down that keeps the harness CPU time tractable while
    preserving the predictions-per-round ratio between the two tuners
    (see DESIGN.md).

    Tuning time is simulated: every measured candidate costs compile +
    run time, and each round pays the search's own overhead (gradient
    descent for Felix; population scoring and genetic operators for Ansor)
    plus the cost-model update. The constants are calibrated to the
    end-to-end round times reported for TVM-based tuners. *)

type t = {
  (* Felix (Algorithm 1) *)
  nseeds : int;  (** schedules optimised simultaneously (default 8) *)
  nsteps : int;  (** gradient descent steps (default 200) *)
  nmeasure_felix : int;  (** hardware measurements per round (default 16) *)
  lambda : float;  (** penalty coefficient of Equation 4 *)
  gd_lr : float;  (** Adam learning rate over schedule variables *)
  (* Ansor baseline *)
  population : int;  (** evolutionary population size (default 512) *)
  generations : int;  (** default 4 *)
  nmeasure_ansor : int;  (** default 64 *)
  mutation_prob : float;
  (* simulated time accounting (seconds) *)
  measure_seconds : float;  (** compile + run per measured candidate *)
  felix_round_overhead : float;
  ansor_round_overhead : float;
  model_update_seconds : float;
  (* stopping *)
  max_rounds : int;  (** total rounds across all subgraph tasks *)
  time_budget_s : float;  (** stop when the simulated clock passes this *)
}

val default : t

val quick : t
(** Reduced effort for tests and fast harness runs. *)

(** Simulated wall clock of a tuning session. *)
module Clock : sig
  type clock

  val create : unit -> clock
  val now : clock -> float
  val advance : clock -> float -> unit

  val set : clock -> float -> unit
  (** Restore an absolute clock value (tuning-store resume). *)
end

(** {1 Engines and tuning events}

    Defined here (rather than in [Tuner]) so the run configuration can
    carry an event callback; [Tuner] re-exports them under the same
    constructor names. *)

type engine = Felix | Ansor | Random

val engine_name : engine -> string
(** Paper display name, e.g. ["Ansor-TenSet"]. *)

val engine_id : engine -> string
(** Stable lowercase identifier (["felix"], ["ansor"], ["random"]) used by
    CLI flags, invocation records and the tuning service's wire protocol. *)

val engine_of_id : string -> engine option
(** Inverse of {!engine_id} (case-insensitive, whitespace-trimmed). *)

type budget_reason = Round_limit | Time_limit

val budget_reason_name : budget_reason -> string

type event =
  | Tuning_started of {
      network : string;
      device_name : string;
      engine : engine;
      n_tasks : int;
    }
      (** Emitted once, before the initial measurement round. *)
  | Round_started of { round : int; task_id : int; subgraph : string; sim_clock_s : float }
  | Candidates_measured of {
      round : int;
      task_id : int;
      proposed : int;  (** candidates the search engine proposed *)
      measured : int;  (** actually measured (deduplicated) *)
      sim_clock_s : float;
    }
  | Task_improved of {
      round : int;
      task_id : int;
      subgraph : string;
      before_ms : float;
      after_ms : float;
    }  (** The task's best latency improved this round. *)
  | Model_updated of { round : int; samples : int; loss : float }
      (** Cost model fine-tuned on freshly measured pairs. *)
  | Round_finished of {
      round : int;
      task_id : int;
      best_task_ms : float;
      network_ms : float;
      sim_clock_s : float;
    }
  | Budget_exhausted of { rounds : int; sim_clock_s : float; reason : budget_reason }
  | Tuning_finished of {
      final_latency_ms : float;
      total_measurements : int;
      sim_clock_s : float;
    }

val no_event : event -> unit
(** Callback that ignores every event. *)

(** {1 Consolidated run configuration}

    One record carries everything a tuning entry point needs — search
    parameters, seed, parallelism and observability hooks — built with
    [|>]-style combinators:

    {[
      Tuning_config.(builder |> with_rounds 24 |> with_seed 7 |> with_jobs 4)
      |> fun run -> Tuner.run run device model graph Tuner.Felix
    ]} *)

type run = {
  search : t;  (** search parameters (see above) *)
  seed : int;  (** RNG seed; every run is bit-reproducible from it *)
  jobs : int;
      (** domain parallelism; [> 1] without an explicit [runtime] makes the
          tuner create (and shut down) a runtime of that many domains *)
  batch : int;
      (** lockstep descent batch width; [> 1] routes gradient descents and
          population scoring through the structure-of-arrays kernels in
          tiles of this many candidates. Results are bitwise-identical to
          the scalar path at any width (and any [jobs]); this knob trades
          nothing but memory for speed. *)
  measure : Measure.config;
      (** measurement policy: per-request deadline, retry/backoff and
          optional deterministic fault injection (see [lib/measure]). The
          default injects nothing and is bitwise-inert: tuner output is
          identical to pre-measurer code. Unlike the process-local fields
          below, this {e is} search identity — it participates in the JSON
          codec and checkpoint identity (emitted only when non-default, so
          default artifacts keep their byte format). *)
  runtime : Runtime.t option;
      (** explicit runtime to share across runs; overrides [jobs] *)
  on_event : event -> unit;
  telemetry : Telemetry.t option;  (** defaults to [Telemetry.global] *)
  store : Store.t option;
      (** durable tuning store: measurements are journaled and the run
          checkpointed every round; an interrupted matching run resumes
          bit-identically and completed prior runs warm-start this one
          (see {!Tuner.run}) *)
  pack_cache : string option;
      (** persistent compilation-cache directory handed to
          [Pack.prepare]: compiled packs are stored content-addressed and
          reused across runs and processes, bitwise-identically to a cold
          compile *)
}

val builder : run
(** Starting point: [default] search, seed 0, sequential, no observers.
    The initial [batch] honours the [FELIX_BATCH] environment variable
    (default 1 = scalar). *)

val with_search : t -> run -> run
val with_rounds : int -> run -> run
(** Sets [search.max_rounds]. *)

val with_time_budget : float -> run -> run
(** Sets [search.time_budget_s]. *)

val with_measure_per_round : int -> run -> run
(** Sets the per-round measurement budget ([nmeasure_felix] and
    [nmeasure_ansor]). *)

val with_seed : int -> run -> run
val with_jobs : int -> run -> run
(** Clamped to [>= 1]. *)

val with_batch : int -> run -> run
(** Lockstep descent batch width; clamped to [>= 1] (1 = scalar path). *)

val with_measurer : Measure.config -> run -> run
(** Measurement policy (deadline, retries, chaos); validated by
    [Tuner.validate] into the typed [Invalid_config] error path. *)

val with_runtime : Runtime.t -> run -> run
val with_on_event : (event -> unit) -> run -> run
val with_telemetry : Telemetry.t -> run -> run

val with_store : Store.t -> run -> run
(** Journal every measurement to [store], checkpoint each round, resume
    an interrupted matching run bit-identically, and warm-start fresh
    runs from completed prior records. *)

val with_pack_cache : string -> run -> run
(** Cache compiled feature/penalty packs under this directory (see
    [Pack.prepare]). Process-local deployment state like [store] and
    [runtime]: not part of the JSON codec, so checkpoint identity and job
    specs are unchanged by it. *)

(** {1 JSON codec}

    One serialised form of a run configuration, shared by the CLI's
    invocation record ([run.json] in a store directory), the tuning
    service's wire protocol and the tuner's checkpoint identity. Floats
    are encoded as IEEE-754 bit strings ([Store.Bits]), so
    [of_json (to_json r)] reconstructs [search], [seed], [jobs] and
    [batch] bit-identically — which is what lets a resumed or
    re-submitted run match its checkpoint identity exactly.

    The process-local fields ([runtime], [on_event], [telemetry],
    [store]) have no serialised form: [to_json] omits them and [of_json]
    leaves them at the {!builder} defaults for the front end to
    re-attach. *)

val search_to_json : t -> Json.t
val search_of_json : Json.t -> (t, string) result
(** [Error] names the first missing or malformed field. *)

val to_json : run -> Json.t
val of_json : Json.t -> (run, string) result
