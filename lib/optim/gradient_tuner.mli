(** Felix's gradient-descent schedule search — Algorithm 1's search core.

    For every sketch of a subgraph, optimise [nseeds] randomly-initialised
    schedule-variable vectors in log space with Adam, minimising Equation 4:

    O(y) = sum_i ( -C(Feat_i(y_i)) + lambda * sum_r max(g_ir(y_i), 0)^2 )

    Every point visited during descent is rounded to a valid concrete
    schedule (divisor rounding, Section 3.3) and collected; the best
    [nMeasure] by predicted performance are handed back for hardware
    measurement. *)

type candidate = {
  pack : Pack.t;
  y : float array;  (** rounded log-space point (valid concrete schedule) *)
  key : string;  (** schedule identity, for deduplication *)
  predicted : float;  (** cost-model score at the rounded point *)
}

type trace = {
  steps_done : int;  (** gradient steps actually executed *)
  predictions : float list;  (** predicted score of every schedule visited,
                                 in visit order (for Figure 8) *)
}

val search_round :
  Tuning_config.t ->
  Rng.t ->
  ?runtime:Runtime.t ->
  ?batch:int ->
  Mlp.t ->
  Pack.t list ->
  already_measured:(string -> bool) ->
  candidate list * trace
(** One Felix round over the subgraph's sketches. Returns the top
    [nmeasure_felix] new candidates sorted by predicted performance
    (best first), plus the search trace. With [runtime], the pure phases
    (descents, rounding, cost-model predictions) fan out across domains;
    the RNG is consumed in the sequential order, so the result is
    bit-identical to the sequential run. With [batch] > 1, descents and
    predictions run through the batched lockstep kernels in tiles of up
    to [batch] same-pack seeds — each lane is bitwise the scalar sweep,
    so results are unchanged at any batch size and domain count (tiles
    fan out across the runtime's domains when both are given). *)

val descend :
  Tuning_config.t -> Rng.t -> Mlp.t -> Pack.t -> float array -> (float array * float) list
(** Expose a single seed's Adam trajectory [(y, objective)] for tests and
    the ablation benchmarks. *)

val descend_batch :
  Tuning_config.t ->
  ?runtime:Runtime.t ->
  ?batch:int ->
  Mlp.t ->
  Pack.t ->
  float array array ->
  (float array * float) list array
(** Lockstep {!descend} over a population of seeds of one pack:
    [descend_batch cfg model pack y0s] returns one trajectory per seed,
    in order. Seeds are descended in tiles of up to [batch] lanes
    (default: all at once) through the structure-of-arrays kernels;
    trajectory [l] is bitwise-identical to [descend] on seed [l]. With
    [runtime], tiles fan out across domains. *)
