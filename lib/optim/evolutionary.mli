(** Ansor's evolutionary search (the paper's baseline, Section 5).

    Same sketches, same search space, same cost model as the gradient
    tuner — only the decision algorithm differs, mirroring the Ansor-TenSet
    setup: a population evolves for a fixed number of generations under
    cost-model-predicted fitness, with elite retention, divisor-respecting
    crossover and mutation; the top predicted individuals are measured on
    hardware each round. *)

type individual = {
  pack : Pack.t;
  y : float array;  (** valid rounded log-space point *)
  key : string;
  predicted : float;
}

type trace = { evaluated : int; predictions : float list }

val search_round :
  Tuning_config.t ->
  Rng.t ->
  ?runtime:Runtime.t ->
  ?batch:int ->
  Mlp.t ->
  Pack.t list ->
  elites:(Pack.t * float array) list ->
  already_measured:(string -> bool) ->
  individual list * trace
(** One evolutionary round. [elites] seeds part of the initial population
    with the best schedules measured so far (Ansor's warm start). Returns
    the top [nmeasure_ansor] unmeasured individuals, best first. With
    [runtime], population scoring (the cost-model forwards) fans out across
    domains; genetic operators keep drawing from [rng] in sequential order,
    so the result is bit-identical to the sequential run. With [batch] > 1,
    population scoring runs through the batched structure-of-arrays
    kernels in per-pack tiles of up to [batch] individuals — each lane is
    bitwise the scalar predict, so results are again unchanged. *)

val mutate : Rng.t -> Pack.t -> float array -> float array option
(** Divisor-respecting mutation of one variable group; [None] when the
    mutated point fails validation. *)

val crossover : Rng.t -> Pack.t -> float array -> float array -> float array option
(** Uniform crossover at variable-group granularity. *)
