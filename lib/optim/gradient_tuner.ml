type candidate = { pack : Pack.t; y : float array; key : string; predicted : float }

type trace = { steps_done : int; predictions : float list }

let objective_grad (cfg : Tuning_config.t) model pack y =
  (* O(y) = -C(Feat(y)) + lambda * sum_r max(g_r(y), 0)^2, with its gradient
     assembled from one MLP backward, one feature-tape VJP and one
     penalty-tape VJP. *)
  let feats = Pack.features_at pack y in
  let score, dscore_dfeat = Mlp.input_gradient model feats in
  let adj = Array.map (fun d -> -.d) dscore_dfeat in
  let _, dy_model = Pack.features_vjp pack y adj in
  let pval, pgrad = Pack.penalty_value_grad pack y in
  let obj = -.score +. (cfg.lambda *. pval) in
  let grad = Array.mapi (fun i g -> g +. (cfg.lambda *. pgrad.(i))) dy_model in
  (obj, grad)

let descend (cfg : Tuning_config.t) _rng model pack y0 =
  let n = Array.length y0 in
  let y = Array.copy y0 in
  let adam = Adam.create ~lr:cfg.gd_lr n in
  let bounds = Pack.bounds_log pack in
  let history = ref [] in
  for _ = 1 to cfg.nsteps do
    let obj, grad = objective_grad cfg model pack y in
    history := (Array.copy y, obj) :: !history;
    Adam.step adam ~params:y ~grads:grad;
    (* Keep iterates near the relaxed box; the penalties do the fine
       enforcement, the clamp prevents numeric runaway. *)
    Array.iteri
      (fun i (lo, hi) -> y.(i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) y.(i))
      bounds
  done;
  let obj, _ = objective_grad cfg model pack y in
  history := (Array.copy y, obj) :: !history;
  List.rev !history

let search_round (cfg : Tuning_config.t) rng model packs ~already_measured =
  Telemetry.with_span Telemetry.global "felix.search_round"
    ~attrs:[ ("packs", Telemetry.Int (List.length packs)) ]
  @@ fun () ->
  let npacks = max 1 (List.length packs) in
  let seeds_per_pack = max 1 (cfg.nseeds / npacks) in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let candidates = ref [] in
  let predictions = ref [] in
  let steps = ref 0 in
  List.iter
    (fun pack ->
      for _ = 1 to seeds_per_pack do
        match Dataset.sample_valid_point rng pack 100 with
        | None -> ()
        | Some y0 ->
          let trajectory = descend cfg rng model pack y0 in
          steps := !steps + List.length trajectory;
          List.iter
            (fun (y, _obj) ->
              match Pack.round_to_valid pack y with
              | None -> ()
              | Some r ->
                let key = Pack.schedule_key pack r in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  let predicted = Mlp.forward model (Pack.features_at pack r) in
                  predictions := predicted :: !predictions;
                  if not (already_measured key) then
                    candidates := { pack; y = r; key; predicted } :: !candidates
                end)
            trajectory
      done)
    packs;
  let sorted =
    List.sort (fun a b -> compare b.predicted a.predicted) !candidates
  in
  let top = List.filteri (fun i _ -> i < cfg.nmeasure_felix) sorted in
  Telemetry.Counter.incr ~by:!steps (Telemetry.counter Telemetry.global "felix.gd_steps");
  Telemetry.Counter.incr ~by:(List.length top)
    (Telemetry.counter Telemetry.global "felix.candidates");
  (top, { steps_done = !steps; predictions = List.rev !predictions })
