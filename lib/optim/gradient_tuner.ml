type candidate = { pack : Pack.t; y : float array; key : string; predicted : float }

type trace = { steps_done : int; predictions : float list }

let h_gd_step = Telemetry.histogram Telemetry.global "felix.gd_step_ms"

(* Adam descent on O(y) through a fused {!Objective}: one reused gradient
   buffer, zero allocation per step beyond the trajectory snapshots. *)
let descend_obj (cfg : Tuning_config.t) obj y0 =
  let n = Array.length y0 in
  let y = Array.copy y0 in
  let adam = Adam.create ~lr:cfg.gd_lr n in
  let bounds = Pack.bounds_log (Objective.pack obj) in
  let grad = Array.make n 0.0 in
  let history = ref [] in
  let timed = Telemetry.enabled Telemetry.global in
  for _ = 1 to cfg.nsteps do
    let t0 = if timed then Telemetry.now_s Telemetry.global else 0.0 in
    let o = Objective.value_grad obj y ~grad in
    history := (Array.copy y, o) :: !history;
    Adam.step adam ~params:y ~grads:grad;
    (* Keep iterates near the relaxed box; the penalties do the fine
       enforcement, the clamp prevents numeric runaway. *)
    Array.iteri
      (fun i (lo, hi) -> y.(i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) y.(i))
      bounds;
    if timed then
      Telemetry.Histogram.observe h_gd_step
        ((Telemetry.now_s Telemetry.global -. t0) *. 1000.0)
  done;
  let o = Objective.value_grad obj y ~grad in
  history := (Array.copy y, o) :: !history;
  List.rev !history

let descend (cfg : Tuning_config.t) _rng model pack y0 =
  descend_obj cfg (Objective.create ~lambda:cfg.lambda model pack) y0

(* Lockstep Adam descent of a whole tile of seeds through the batched
   objective kernels. Lane [l] replays [descend_obj] on seed [l] exactly:
   the batched value/gradient, Adam sweep and clamp are all elementwise
   per lane in the scalar order, so the trajectories (points and
   objectives) are bitwise-identical to [b] scalar descents, at any batch
   size. *)
let descend_obj_batch (cfg : Tuning_config.t) obj y0s =
  let b = Array.length y0s in
  if b = 0 then [||]
  else begin
    let n = Array.length y0s.(0) in
    let ys = Array.make (b * n) 0.0 in
    Array.iteri
      (fun l y0 ->
        if Array.length y0 <> n then
          invalid_arg "Gradient_tuner.descend_batch: seed arity mismatch";
        Array.blit y0 0 ys (l * n) n)
      y0s;
    let adam = Adam.create_batch ~lr:cfg.gd_lr ~batch:b n in
    let bounds = Pack.bounds_log (Objective.pack obj) in
    let grads = Array.make (b * n) 0.0 in
    let objs = Array.make b 0.0 in
    let hist = Array.make b [] in
    let timed = Telemetry.enabled Telemetry.global in
    let eval_and_snapshot () =
      Objective.value_grad_batch obj ~batch:b ys ~grads ~objs;
      for l = 0 to b - 1 do
        hist.(l) <- (Array.sub ys (l * n) n, objs.(l)) :: hist.(l)
      done
    in
    for _ = 1 to cfg.nsteps do
      let t0 = if timed then Telemetry.now_s Telemetry.global else 0.0 in
      eval_and_snapshot ();
      Adam.step_batch adam ~batch:b ~params:ys ~grads;
      for l = 0 to b - 1 do
        let base = l * n in
        Array.iteri
          (fun i (lo, hi) ->
            ys.(base + i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) ys.(base + i))
          bounds
      done;
      (* Amortised per-lane step time, so the histogram stays comparable
         with the scalar path's per-step samples. *)
      if timed then
        Telemetry.Histogram.observe h_gd_step
          ((Telemetry.now_s Telemetry.global -. t0) *. 1000.0 /. float_of_int b)
    done;
    eval_and_snapshot ();
    Array.map List.rev hist
  end

let descend_batch (cfg : Tuning_config.t) ?runtime ?batch model pack y0s =
  let nseeds = Array.length y0s in
  if nseeds = 0 then [||]
  else begin
    let obj = Objective.create ~lambda:cfg.lambda model pack in
    let tile = match batch with Some b -> max 1 b | None -> nseeds in
    let ntiles = (nseeds + tile - 1) / tile in
    let tiles =
      Array.init ntiles (fun ti ->
          let off = ti * tile in
          Array.sub y0s off (min tile (nseeds - off)))
    in
    let run tile = descend_obj_batch cfg obj tile in
    let per_tile =
      match runtime with
      | Some rt when ntiles > 1 -> Runtime.parallel_map rt run tiles
      | _ -> Array.map run tiles
    in
    Array.concat (Array.to_list per_tile)
  end

(* Split [arr] into tiles of at most [b] contiguous elements sharing one
   objective (physical equality), preserving order — tile concatenation
   rebuilds [arr] exactly, so batched phases keep the sequential result
   order. *)
let tile_by_obj b obj_of arr =
  let n = Array.length arr in
  let tiles = ref [] in
  let i = ref 0 in
  while !i < n do
    let obj = obj_of arr.(!i) in
    let j = ref (!i + 1) in
    while !j < n && obj_of arr.(!j) == obj && !j - !i < b do
      incr j
    done;
    tiles := (obj, Array.sub arr !i (!j - !i)) :: !tiles;
    i := !j
  done;
  Array.of_list (List.rev !tiles)

(* The round is staged so a runtime can fan out the pure phases without
   perturbing the RNG stream: start points are sampled sequentially in the
   exact order of the sequential loop (descents draw nothing from the RNG),
   then descents + factor rounding run on any domain, then deduplication and
   prediction happen in discovery order. Results are bit-identical to the
   sequential implementation at any domain count. *)
let search_round (cfg : Tuning_config.t) rng ?runtime ?batch model packs ~already_measured =
  Telemetry.with_span Telemetry.global "felix.search_round"
    ~attrs:[ ("packs", Telemetry.Int (List.length packs)) ]
  @@ fun () ->
  let npacks = max 1 (List.length packs) in
  let seeds_per_pack = max 1 (cfg.nseeds / npacks) in
  (* One fused objective per pack; its workspace pool is shared by every
     descent on that pack (including parallel ones — the pool hands each
     concurrent caller a private workspace). *)
  let objs = List.map (fun pack -> Objective.create ~lambda:cfg.lambda model pack) packs in
  (* Phase 1 (sequential): consume the RNG in legacy order. *)
  let starts =
    List.concat_map
      (fun obj ->
        let pack = Objective.pack obj in
        List.filter_map
          (fun _ -> Option.map (fun y0 -> (obj, y0)) (Dataset.sample_valid_point rng pack 100))
          (List.init seeds_per_pack Fun.id))
      objs
  in
  (* Phase 2 (parallel): pure gradient descents plus factor rounding. *)
  let run_start (obj, y0) =
    let pack = Objective.pack obj in
    let trajectory = descend_obj cfg obj y0 in
    let rounded =
      List.filter_map
        (fun (y, _obj) ->
          Option.map (fun r -> (r, Pack.schedule_key pack r)) (Pack.round_to_valid pack y))
        trajectory
    in
    (obj, List.length trajectory, rounded)
  in
  let per_start =
    let arr = Array.of_list starts in
    match batch with
    | Some b when b > 1 && Array.length arr > 0 ->
      (* Lockstep descent: tile contiguous same-pack seed runs (phase 1
         emits seeds grouped per pack) and descend each tile as one
         batch. Each lane is bitwise the scalar descent, and tiles
         concatenate back in seed order, so the round's result is
         unchanged. *)
      let tiles = tile_by_obj b fst arr in
      let run_tile (obj, tile) =
        let pack = Objective.pack obj in
        let trajs = descend_obj_batch cfg obj (Array.map snd tile) in
        Array.map
          (fun trajectory ->
            let rounded =
              List.filter_map
                (fun (y, _obj) ->
                  Option.map
                    (fun r -> (r, Pack.schedule_key pack r))
                    (Pack.round_to_valid pack y))
                trajectory
            in
            (obj, List.length trajectory, rounded))
          trajs
      in
      let per_tile =
        match runtime with
        | Some rt -> Runtime.parallel_map rt run_tile tiles
        | None -> Array.map run_tile tiles
      in
      Array.concat (Array.to_list per_tile)
    | _ -> (
      match runtime with
      | Some rt -> Runtime.parallel_map rt run_start arr
      | None -> Array.map run_start arr)
  in
  (* Phase 3 (sequential): dedup trajectory points in discovery order. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let uniques = ref [] in
  let steps = ref 0 in
  Array.iter
    (fun (obj, n_steps, rounded) ->
      steps := !steps + n_steps;
      List.iter
        (fun (r, key) ->
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            uniques := (obj, r, key) :: !uniques
          end)
        rounded)
    per_start;
  let uniques = Array.of_list (List.rev !uniques) in
  (* Phase 4 (parallel): predict each unique point once, through the fused
     workspaces (bitwise-equal to Mlp.forward over Pack.features_at). *)
  let predict (obj, r, _key) = Objective.predict obj r in
  let preds =
    match batch with
    | Some b when b > 1 && Array.length uniques > 0 ->
      let tiles = tile_by_obj b (fun (obj, _, _) -> obj) uniques in
      let run_tile (obj, tile) =
        let nt = Array.length tile in
        let nv = Pack.num_vars (Objective.pack obj) in
        let ys = Array.make (nt * nv) 0.0 in
        Array.iteri (fun l (_, r, _) -> Array.blit r 0 ys (l * nv) nv) tile;
        let scores = Array.make nt 0.0 in
        Objective.predict_batch obj ~batch:nt ys ~scores;
        scores
      in
      let per_tile =
        match runtime with
        | Some rt -> Runtime.parallel_map rt run_tile tiles
        | None -> Array.map run_tile tiles
      in
      Array.concat (Array.to_list per_tile)
    | _ -> (
      match runtime with
      | Some rt -> Runtime.parallel_map rt predict uniques
      | None -> Array.map predict uniques)
  in
  let candidates = ref [] in
  let predictions = ref [] in
  Array.iteri
    (fun i (obj, r, key) ->
      let predicted = preds.(i) in
      predictions := predicted :: !predictions;
      if not (already_measured key) then
        candidates := { pack = Objective.pack obj; y = r; key; predicted } :: !candidates)
    uniques;
  let sorted =
    List.sort (fun a b -> compare b.predicted a.predicted) !candidates
  in
  let top = List.filteri (fun i _ -> i < cfg.nmeasure_felix) sorted in
  Telemetry.Counter.incr ~by:!steps (Telemetry.counter Telemetry.global "felix.gd_steps");
  Telemetry.Counter.incr ~by:(List.length top)
    (Telemetry.counter Telemetry.global "felix.candidates");
  (top, { steps_done = !steps; predictions = List.rev !predictions })
