type candidate = { pack : Pack.t; y : float array; key : string; predicted : float }

type trace = { steps_done : int; predictions : float list }

let objective_grad (cfg : Tuning_config.t) model pack y =
  (* O(y) = -C(Feat(y)) + lambda * sum_r max(g_r(y), 0)^2, with its gradient
     assembled from one MLP backward, one feature-tape VJP and one
     penalty-tape VJP. *)
  let feats = Pack.features_at pack y in
  let score, dscore_dfeat = Mlp.input_gradient model feats in
  let adj = Array.map (fun d -> -.d) dscore_dfeat in
  let _, dy_model = Pack.features_vjp pack y adj in
  let pval, pgrad = Pack.penalty_value_grad pack y in
  let obj = -.score +. (cfg.lambda *. pval) in
  let grad = Array.mapi (fun i g -> g +. (cfg.lambda *. pgrad.(i))) dy_model in
  (obj, grad)

let descend (cfg : Tuning_config.t) _rng model pack y0 =
  let n = Array.length y0 in
  let y = Array.copy y0 in
  let adam = Adam.create ~lr:cfg.gd_lr n in
  let bounds = Pack.bounds_log pack in
  let history = ref [] in
  for _ = 1 to cfg.nsteps do
    let obj, grad = objective_grad cfg model pack y in
    history := (Array.copy y, obj) :: !history;
    Adam.step adam ~params:y ~grads:grad;
    (* Keep iterates near the relaxed box; the penalties do the fine
       enforcement, the clamp prevents numeric runaway. *)
    Array.iteri
      (fun i (lo, hi) -> y.(i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) y.(i))
      bounds
  done;
  let obj, _ = objective_grad cfg model pack y in
  history := (Array.copy y, obj) :: !history;
  List.rev !history

(* The round is staged so a runtime can fan out the pure phases without
   perturbing the RNG stream: start points are sampled sequentially in the
   exact order of the sequential loop (descents draw nothing from the RNG),
   then descents + factor rounding run on any domain, then deduplication and
   prediction happen in discovery order. Results are bit-identical to the
   sequential implementation at any domain count. *)
let search_round (cfg : Tuning_config.t) rng ?runtime model packs ~already_measured =
  Telemetry.with_span Telemetry.global "felix.search_round"
    ~attrs:[ ("packs", Telemetry.Int (List.length packs)) ]
  @@ fun () ->
  let npacks = max 1 (List.length packs) in
  let seeds_per_pack = max 1 (cfg.nseeds / npacks) in
  (* Phase 1 (sequential): consume the RNG in legacy order. *)
  let starts =
    List.concat_map
      (fun pack ->
        List.filter_map
          (fun _ -> Option.map (fun y0 -> (pack, y0)) (Dataset.sample_valid_point rng pack 100))
          (List.init seeds_per_pack Fun.id))
      packs
  in
  (* Phase 2 (parallel): pure gradient descents plus factor rounding. *)
  let run_start (pack, y0) =
    let trajectory = descend cfg rng model pack y0 in
    let rounded =
      List.filter_map
        (fun (y, _obj) ->
          Option.map (fun r -> (r, Pack.schedule_key pack r)) (Pack.round_to_valid pack y))
        trajectory
    in
    (pack, List.length trajectory, rounded)
  in
  let per_start =
    let arr = Array.of_list starts in
    match runtime with
    | Some rt -> Runtime.parallel_map rt run_start arr
    | None -> Array.map run_start arr
  in
  (* Phase 3 (sequential): dedup trajectory points in discovery order. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let uniques = ref [] in
  let steps = ref 0 in
  Array.iter
    (fun (pack, n_steps, rounded) ->
      steps := !steps + n_steps;
      List.iter
        (fun (r, key) ->
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            uniques := (pack, r, key) :: !uniques
          end)
        rounded)
    per_start;
  let uniques = Array.of_list (List.rev !uniques) in
  (* Phase 4 (parallel): predict each unique point once. *)
  let predict (pack, r, _key) = Mlp.forward model (Pack.features_at pack r) in
  let preds =
    match runtime with
    | Some rt -> Runtime.parallel_map rt predict uniques
    | None -> Array.map predict uniques
  in
  let candidates = ref [] in
  let predictions = ref [] in
  Array.iteri
    (fun i (pack, r, key) ->
      let predicted = preds.(i) in
      predictions := predicted :: !predictions;
      if not (already_measured key) then
        candidates := { pack; y = r; key; predicted } :: !candidates)
    uniques;
  let sorted =
    List.sort (fun a b -> compare b.predicted a.predicted) !candidates
  in
  let top = List.filteri (fun i _ -> i < cfg.nmeasure_felix) sorted in
  Telemetry.Counter.incr ~by:!steps (Telemetry.counter Telemetry.global "felix.gd_steps");
  Telemetry.Counter.incr ~by:(List.length top)
    (Telemetry.counter Telemetry.global "felix.candidates");
  (top, { steps_done = !steps; predictions = List.rev !predictions })
