type candidate = { pack : Pack.t; y : float array; key : string; predicted : float }

type trace = { steps_done : int; predictions : float list }

let h_gd_step = Telemetry.histogram Telemetry.global "felix.gd_step_ms"

(* Adam descent on O(y) through a fused {!Objective}: one reused gradient
   buffer, zero allocation per step beyond the trajectory snapshots. *)
let descend_obj (cfg : Tuning_config.t) obj y0 =
  let n = Array.length y0 in
  let y = Array.copy y0 in
  let adam = Adam.create ~lr:cfg.gd_lr n in
  let bounds = Pack.bounds_log (Objective.pack obj) in
  let grad = Array.make n 0.0 in
  let history = ref [] in
  let timed = Telemetry.enabled Telemetry.global in
  for _ = 1 to cfg.nsteps do
    let t0 = if timed then Telemetry.now_s Telemetry.global else 0.0 in
    let o = Objective.value_grad obj y ~grad in
    history := (Array.copy y, o) :: !history;
    Adam.step adam ~params:y ~grads:grad;
    (* Keep iterates near the relaxed box; the penalties do the fine
       enforcement, the clamp prevents numeric runaway. *)
    Array.iteri
      (fun i (lo, hi) -> y.(i) <- Stats.clamp ~lo:(lo -. 0.7) ~hi:(hi +. 0.7) y.(i))
      bounds;
    if timed then
      Telemetry.Histogram.observe h_gd_step
        ((Telemetry.now_s Telemetry.global -. t0) *. 1000.0)
  done;
  let o = Objective.value_grad obj y ~grad in
  history := (Array.copy y, o) :: !history;
  List.rev !history

let descend (cfg : Tuning_config.t) _rng model pack y0 =
  descend_obj cfg (Objective.create ~lambda:cfg.lambda model pack) y0

(* The round is staged so a runtime can fan out the pure phases without
   perturbing the RNG stream: start points are sampled sequentially in the
   exact order of the sequential loop (descents draw nothing from the RNG),
   then descents + factor rounding run on any domain, then deduplication and
   prediction happen in discovery order. Results are bit-identical to the
   sequential implementation at any domain count. *)
let search_round (cfg : Tuning_config.t) rng ?runtime model packs ~already_measured =
  Telemetry.with_span Telemetry.global "felix.search_round"
    ~attrs:[ ("packs", Telemetry.Int (List.length packs)) ]
  @@ fun () ->
  let npacks = max 1 (List.length packs) in
  let seeds_per_pack = max 1 (cfg.nseeds / npacks) in
  (* One fused objective per pack; its workspace pool is shared by every
     descent on that pack (including parallel ones — the pool hands each
     concurrent caller a private workspace). *)
  let objs = List.map (fun pack -> Objective.create ~lambda:cfg.lambda model pack) packs in
  (* Phase 1 (sequential): consume the RNG in legacy order. *)
  let starts =
    List.concat_map
      (fun obj ->
        let pack = Objective.pack obj in
        List.filter_map
          (fun _ -> Option.map (fun y0 -> (obj, y0)) (Dataset.sample_valid_point rng pack 100))
          (List.init seeds_per_pack Fun.id))
      objs
  in
  (* Phase 2 (parallel): pure gradient descents plus factor rounding. *)
  let run_start (obj, y0) =
    let pack = Objective.pack obj in
    let trajectory = descend_obj cfg obj y0 in
    let rounded =
      List.filter_map
        (fun (y, _obj) ->
          Option.map (fun r -> (r, Pack.schedule_key pack r)) (Pack.round_to_valid pack y))
        trajectory
    in
    (obj, List.length trajectory, rounded)
  in
  let per_start =
    let arr = Array.of_list starts in
    match runtime with
    | Some rt -> Runtime.parallel_map rt run_start arr
    | None -> Array.map run_start arr
  in
  (* Phase 3 (sequential): dedup trajectory points in discovery order. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let uniques = ref [] in
  let steps = ref 0 in
  Array.iter
    (fun (obj, n_steps, rounded) ->
      steps := !steps + n_steps;
      List.iter
        (fun (r, key) ->
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            uniques := (obj, r, key) :: !uniques
          end)
        rounded)
    per_start;
  let uniques = Array.of_list (List.rev !uniques) in
  (* Phase 4 (parallel): predict each unique point once, through the fused
     workspaces (bitwise-equal to Mlp.forward over Pack.features_at). *)
  let predict (obj, r, _key) = Objective.predict obj r in
  let preds =
    match runtime with
    | Some rt -> Runtime.parallel_map rt predict uniques
    | None -> Array.map predict uniques
  in
  let candidates = ref [] in
  let predictions = ref [] in
  Array.iteri
    (fun i (obj, r, key) ->
      let predicted = preds.(i) in
      predictions := predicted :: !predictions;
      if not (already_measured key) then
        candidates := { pack = Objective.pack obj; y = r; key; predicted } :: !candidates)
    uniques;
  let sorted =
    List.sort (fun a b -> compare b.predicted a.predicted) !candidates
  in
  let top = List.filteri (fun i _ -> i < cfg.nmeasure_felix) sorted in
  Telemetry.Counter.incr ~by:!steps (Telemetry.counter Telemetry.global "felix.gd_steps");
  Telemetry.Counter.incr ~by:(List.length top)
    (Telemetry.counter Telemetry.global "felix.candidates");
  (top, { steps_done = !steps; predictions = List.rev !predictions })
