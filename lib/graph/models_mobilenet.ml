module B = Graph.Builder
module L = Layers

let inverted_residual g ~input ~in_chan ~out_chan ~stride ~expand ~hw:(h, w) =
  let hidden = in_chan * expand in
  let x, x_chan =
    if expand = 1 then (input, in_chan)
    else begin
      let e, _ =
        L.conv2d g ~input ~in_chan ~out_chan:hidden ~in_hw:(h, w) ~kernel:1 ~stride:1 ~pad:0 ()
      in
      (L.activation g Op.Relu ~input:(L.batch_norm g ~input:e ~chan:hidden), hidden)
    end
  in
  let dw, (h2, w2) =
    L.conv2d g ~groups:x_chan ~input:x ~in_chan:x_chan ~out_chan:x_chan ~in_hw:(h, w) ~kernel:3
      ~stride ~pad:1 ()
  in
  let dw = L.activation g Op.Relu ~input:(L.batch_norm g ~input:dw ~chan:x_chan) in
  let proj, _ =
    L.conv2d g ~input:dw ~in_chan:x_chan ~out_chan ~in_hw:(h2, w2) ~kernel:1 ~stride:1 ~pad:0 ()
  in
  let proj = L.batch_norm g ~input:proj ~chan:out_chan in
  let out =
    if stride = 1 && in_chan = out_chan then L.residual_add g proj input else proj
  in
  (out, (h2, w2))

(* (expand, out_chan, repeats, stride) per stage, from the paper's Table 2. *)
let config =
  [ (1, 16, 1, 1); (6, 24, 2, 2); (6, 32, 3, 2); (6, 64, 4, 2); (6, 96, 3, 1);
    (6, 160, 3, 2); (6, 320, 1, 1) ]

let graph ?(batch = 1) () =
  let g = B.create (Printf.sprintf "mobilenet_v2-b%d" batch) in
  B.set_input_shape g [ batch; 3; 224; 224 ];
  let stem, hw =
    L.conv2d g ~name:"stem" ~input:Graph.input_id ~in_chan:3 ~out_chan:32 ~in_hw:(224, 224)
      ~kernel:3 ~stride:2 ~pad:1 ()
  in
  let stem = L.activation g Op.Relu ~input:(L.batch_norm g ~input:stem ~chan:32) in
  let x = ref stem and chan = ref 32 and cur_hw = ref hw in
  List.iter
    (fun (expand, out_chan, repeats, stride) ->
      for i = 0 to repeats - 1 do
        let s = if i = 0 then stride else 1 in
        let out, hw' =
          inverted_residual g ~input:!x ~in_chan:!chan ~out_chan ~stride:s ~expand ~hw:!cur_hw
        in
        x := out;
        chan := out_chan;
        cur_hw := hw'
      done)
    config;
  let head, (hh, hw') =
    L.conv2d g ~input:!x ~in_chan:!chan ~out_chan:1280 ~in_hw:!cur_hw ~kernel:1 ~stride:1
      ~pad:0 ()
  in
  let head = L.activation g Op.Relu ~input:(L.batch_norm g ~input:head ~chan:1280) in
  let gap =
    B.add g (Op.Global_avgpool { batch; chan = 1280; in_h = hh; in_w = hw' }) ~inputs:[ head ]
  in
  let _fc = L.dense g ~name:"classifier" gap ~batch ~in_dim:1280 ~out_dim:1000 in
  B.finish g
