(** The paper's benchmark suite: six networks (Section 5) plus the three
    single-operator subgraphs of Figure 8. *)

type network = Resnet50 | Mobilenet_v2 | R3d_18 | Dcgan | Vit_b32 | Llama

val all_networks : network list

val network_name : network -> string
(** Paper display name, e.g. ["ResNet-50"]. *)

val of_name : string -> network option
(** Inverse of {!network_name} (case-insensitive, whitespace-trimmed);
    shared by CLI argument parsing and the tuning service's job codec. *)

val graph : ?batch:int -> network -> Graph.t

val fits_on_edge : network -> bool
(** LLaMA does not fit Xavier NX's memory (paper Section 6.1). *)

val single_operators : (string * Op.t) list
(** The representative operators of Figures 8 and 9: Conv2d, TConv2d,
    Conv3d, Dense, BatchMatmul, Softmax, MaxPool, drawn from the evaluated
    networks' shapes. *)
