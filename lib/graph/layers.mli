(** Shared layer builders used by the model definitions.

    Each helper appends one or more operator nodes to a {!Graph.Builder.g}
    and returns the id of the last node. Inference-time batch-norm is
    folded to a per-channel scale/shift node, as deployment graphs do. *)

val elems : Graph.Builder.g -> int -> int
(** Number of elements of a node's output. *)

val conv2d :
  Graph.Builder.g ->
  ?name:string ->
  ?groups:int ->
  input:int ->
  in_chan:int ->
  out_chan:int ->
  in_hw:int * int ->
  kernel:int ->
  stride:int ->
  pad:int ->
  unit ->
  int * (int * int)
(** Returns [(node_id, (out_h, out_w))]. *)

val conv3d :
  Graph.Builder.g ->
  ?name:string ->
  input:int ->
  in_chan:int ->
  out_chan:int ->
  in_dhw:int * int * int ->
  kernel:int ->
  stride:int ->
  pad:int ->
  unit ->
  int * (int * int * int)

val tconv2d :
  Graph.Builder.g ->
  ?name:string ->
  input:int ->
  in_chan:int ->
  out_chan:int ->
  in_hw:int * int ->
  kernel:int ->
  stride:int ->
  pad:int ->
  unit ->
  int * (int * int)

val batch_norm : Graph.Builder.g -> input:int -> chan:int -> int
(** Folded inference batch-norm over the input node's elements. *)

val activation : Graph.Builder.g -> Op.elemwise_kind -> input:int -> int

val residual_add : Graph.Builder.g -> int -> int -> int
(** Elementwise sum of two nodes with equal element counts. *)

val dense :
  Graph.Builder.g -> ?name:string -> int -> batch:int -> in_dim:int -> out_dim:int -> int
(** [dense g producer ~batch ~in_dim ~out_dim] appends a dense layer reading
    the positional [producer] node. *)

val layer_norm : Graph.Builder.g -> input:int -> rows:int -> cols:int -> int

val softmax : Graph.Builder.g -> input:int -> rows:int -> cols:int -> int

val batch_matmul :
  Graph.Builder.g -> ?name:string -> int -> int -> batch:int -> m:int -> k:int -> n:int -> int
(** [batch_matmul g lhs rhs ~batch ~m ~k ~n]. *)
