type task = {
  task_id : int;
  subgraph : Compute.subgraph;
  weight : int;
  node_ids : int list;
}

let is_fusable_elemwise (op : Op.t) =
  match op with
  | Elemwise _ | Binary _ | Bias_add _ | Batch_norm_infer _ -> true
  | Conv2d _ | Conv3d _ | Tconv2d _ | Dense _ | Batch_matmul _ | Maxpool2d _
  | Avgpool2d _ | Global_avgpool _ | Softmax _ | Layer_norm _ | Concat _ -> false

let partition (g : Graph.t) =
  let consumers = Graph.consumers g in
  let consumed = Array.make (Graph.num_nodes g) false in
  let groups = ref [] in
  (* Group nodes: a seed node plus a chain of single-consumer elementwise
     followers. *)
  Array.iter
    (fun (n : Graph.node) ->
      if not consumed.(n.id) then begin
        consumed.(n.id) <- true;
        let chain = ref [ n.id ] in
        let tail = ref n.id in
        let continue_chain = ref true in
        while !continue_chain do
          match consumers.(!tail) with
          | [| next_id |]
            when (not consumed.(next_id))
                 && is_fusable_elemwise (Graph.node g next_id).op
                 && List.fold_left ( * ) 1 (Op.output_shape (Graph.node g next_id).op)
                    = List.fold_left ( * ) 1 (Op.output_shape (Graph.node g !tail).op) ->
            consumed.(next_id) <- true;
            chain := next_id :: !chain;
            tail := next_id
          | _ -> continue_chain := false
        done;
        groups := List.rev !chain :: !groups
      end)
    g.nodes;
  let groups = List.rev !groups in
  (* Lower each group to a fused subgraph. *)
  let lower_group ids =
    match ids with
    | [] -> assert false
    | seed :: rest ->
      let seed_node = Graph.node g seed in
      let sg = Compute.lower ~name:seed_node.node_name seed_node.op in
      List.fold_left
        (fun sg id ->
          let nd = Graph.node g id in
          Compute.fuse_elemwise sg ~name:nd.node_name nd.op)
        sg rest
  in
  (* Deduplicate by workload key. *)
  let table : (string, task) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let next_id = ref 0 in
  List.iter
    (fun ids ->
      let sg = lower_group ids in
      let key = Compute.workload_key sg in
      match Hashtbl.find_opt table key with
      | Some t -> Hashtbl.replace table key { t with weight = t.weight + 1 }
      | None ->
        let t = { task_id = !next_id; subgraph = sg; weight = 1; node_ids = ids } in
        incr next_id;
        Hashtbl.replace table key t;
        order := key :: !order)
    groups;
  List.rev_map (fun key -> Hashtbl.find table key) !order

let task_flops t = Compute.subgraph_flops t.subgraph

let describe t =
  Printf.sprintf "task %d: %s (x%d, %.2f MFLOPs, %d stages)" t.task_id
    t.subgraph.Compute.sg_name t.weight
    (task_flops t /. 1e6)
    (List.length t.subgraph.Compute.stages)
