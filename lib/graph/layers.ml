module B = Graph.Builder

let elems g id = List.fold_left ( * ) 1 (B.output_shape g id)

let conv2d g ?name ?(groups = 1) ~input ~in_chan ~out_chan ~in_hw:(in_h, in_w) ~kernel
    ~stride ~pad () =
  let batch = max 1 (elems g input / max 1 (in_chan * in_h * in_w)) in
  let op =
    Op.Conv2d
      { batch; in_chan; out_chan; in_h; in_w; kernel_h = kernel; kernel_w = kernel; stride;
        pad; groups }
  in
  let id = B.add g ?name op ~inputs:[ input ] in
  match Op.output_shape op with
  | [ _; _; oh; ow ] -> (id, (oh, ow))
  | _ -> assert false

let conv3d g ?name ~input ~in_chan ~out_chan ~in_dhw:(in_d, in_h, in_w) ~kernel ~stride ~pad
    () =
  let batch = max 1 (elems g input / max 1 (in_chan * in_d * in_h * in_w)) in
  let op =
    Op.Conv3d
      { batch; in_chan; out_chan; in_d; in_h; in_w; kernel_d = kernel; kernel_h = kernel;
        kernel_w = kernel; stride; pad }
  in
  let id = B.add g ?name op ~inputs:[ input ] in
  match Op.output_shape op with
  | [ _; _; od; oh; ow ] -> (id, (od, oh, ow))
  | _ -> assert false

let tconv2d g ?name ~input ~in_chan ~out_chan ~in_hw:(in_h, in_w) ~kernel ~stride ~pad () =
  let batch = max 1 (elems g input / max 1 (in_chan * in_h * in_w)) in
  let op =
    Op.Tconv2d
      { batch; in_chan; out_chan; in_h; in_w; kernel_h = kernel; kernel_w = kernel; stride;
        pad }
  in
  let id = B.add g ?name op ~inputs:[ input ] in
  match Op.output_shape op with
  | [ _; _; oh; ow ] -> (id, (oh, ow))
  | _ -> assert false

let batch_norm g ~input ~chan =
  let n = elems g input in
  let spatial = max 1 (n / chan) in
  B.add g (Op.Batch_norm_infer { batch = 1; chan; spatial }) ~inputs:[ input ]

let activation g kind ~input = B.add g (Op.Elemwise (kind, elems g input)) ~inputs:[ input ]

let residual_add g a b =
  let na = elems g a and nb = elems g b in
  if na <> nb then
    invalid_arg (Printf.sprintf "Layers.residual_add: element mismatch %d vs %d" na nb);
  B.add g (Op.Binary (Op.Add, na)) ~inputs:[ a; b ]

let dense g ?name input ~batch ~in_dim ~out_dim =
  B.add g ?name (Op.Dense { batch; in_dim; out_dim }) ~inputs:[ input ]

let layer_norm g ~input ~rows ~cols = B.add g (Op.Layer_norm { rows; cols }) ~inputs:[ input ]

let softmax g ~input ~rows ~cols = B.add g (Op.Softmax { rows; cols }) ~inputs:[ input ]

let batch_matmul g ?name lhs rhs ~batch ~m ~k ~n =
  B.add g ?name (Op.Batch_matmul { batch; m; k; n }) ~inputs:[ lhs; rhs ]
