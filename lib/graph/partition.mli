(** Graph partitioning into fused subgraphs (paper Section 3.1).

    The partitioner walks the graph in topological order, starts a subgraph
    at every operator, and greedily fuses elementwise consumers (ReLU, GELU,
    bias add, residual add, inference batch-norm) into their producer when
    the producer has a single consumer — the classic Conv-ReLU / Dense-Add
    fusion patterns of Ansor. Identical fused subgraphs (same operator
    kinds and shapes) are then deduplicated into one {e tuning task} with a
    multiplicity weight, as TVM does: each task is tuned once and its
    schedule reused at every occurrence. *)

type task = {
  task_id : int;
  subgraph : Compute.subgraph;
  weight : int;  (** how many times this subgraph occurs in the graph *)
  node_ids : int list;  (** representative occurrence, for reporting *)
}

val partition : Graph.t -> task list
(** Tasks in first-occurrence order. The union of all occurrences covers
    every node exactly once. *)

val task_flops : task -> float
(** Flops of one occurrence of the task's subgraph. *)

val describe : task -> string
