(** DCGAN generator [Radford et al. 2015]: a stack of strided transposed
    convolutions upsampling a 100-d latent vector to a 64x64 image. *)

val graph : ?batch:int -> unit -> Graph.t
