module B = Graph.Builder
module L = Layers

let bottleneck g ~input ~in_chan ~mid ~out_chan ~stride ~hw:(h, w) =
  let c1, _ =
    L.conv2d g ~input ~in_chan ~out_chan:mid ~in_hw:(h, w) ~kernel:1 ~stride:1 ~pad:0 ()
  in
  let c1 = L.activation g Op.Relu ~input:(L.batch_norm g ~input:c1 ~chan:mid) in
  let c2, (h2, w2) =
    L.conv2d g ~input:c1 ~in_chan:mid ~out_chan:mid ~in_hw:(h, w) ~kernel:3 ~stride ~pad:1 ()
  in
  let c2 = L.activation g Op.Relu ~input:(L.batch_norm g ~input:c2 ~chan:mid) in
  let c3, _ =
    L.conv2d g ~input:c2 ~in_chan:mid ~out_chan ~in_hw:(h2, w2) ~kernel:1 ~stride:1 ~pad:0 ()
  in
  let c3 = L.batch_norm g ~input:c3 ~chan:out_chan in
  let shortcut =
    if in_chan <> out_chan || stride <> 1 then begin
      let d, _ =
        L.conv2d g ~input ~in_chan ~out_chan ~in_hw:(h, w) ~kernel:1 ~stride ~pad:0 ()
      in
      L.batch_norm g ~input:d ~chan:out_chan
    end
    else input
  in
  let added = L.residual_add g c3 shortcut in
  (L.activation g Op.Relu ~input:added, (h2, w2))

let stage g ~input ~blocks ~in_chan ~mid ~out_chan ~stride ~hw =
  let rec go input in_chan stride hw remaining =
    if remaining = 0 then (input, hw)
    else begin
      let out, hw' = bottleneck g ~input ~in_chan ~mid ~out_chan ~stride ~hw in
      go out out_chan 1 hw' (remaining - 1)
    end
  in
  go input in_chan stride hw blocks

let graph ?(batch = 1) () =
  let g = B.create (Printf.sprintf "resnet50-b%d" batch) in
  B.set_input_shape g [ batch; 3; 224; 224 ];
  let stem, (h, w) =
    L.conv2d g ~name:"stem" ~input:Graph.input_id ~in_chan:3 ~out_chan:64 ~in_hw:(224, 224)
      ~kernel:7 ~stride:2 ~pad:3 ()
  in
  let stem = L.activation g Op.Relu ~input:(L.batch_norm g ~input:stem ~chan:64) in
  let pool =
    B.add g (Op.Maxpool2d { batch; chan = 64; in_h = h; in_w = w; kernel = 3; stride = 2; pad = 1 })
      ~inputs:[ stem ]
  in
  let hw = ((h + 2 - 3) / 2 + 1, (w + 2 - 3) / 2 + 1) in
  let l1, hw = stage g ~input:pool ~blocks:3 ~in_chan:64 ~mid:64 ~out_chan:256 ~stride:1 ~hw in
  let l2, hw = stage g ~input:l1 ~blocks:4 ~in_chan:256 ~mid:128 ~out_chan:512 ~stride:2 ~hw in
  let l3, hw = stage g ~input:l2 ~blocks:6 ~in_chan:512 ~mid:256 ~out_chan:1024 ~stride:2 ~hw in
  let l4, (h4, w4) =
    stage g ~input:l3 ~blocks:3 ~in_chan:1024 ~mid:512 ~out_chan:2048 ~stride:2 ~hw
  in
  let gap =
    B.add g (Op.Global_avgpool { batch; chan = 2048; in_h = h4; in_w = w4 }) ~inputs:[ l4 ]
  in
  let _fc = L.dense g ~name:"classifier" gap ~batch ~in_dim:2048 ~out_dim:1000 in
  B.finish g
