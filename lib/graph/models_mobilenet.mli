(** MobileNet-v2 [Sandler et al. 2018]: inverted residual blocks with
    depthwise convolutions — the paper's example of a network made of many
    small layers that are hard to parallelise on big GPUs. *)

val graph : ?batch:int -> unit -> Graph.t
