(** Computation graphs of tensor operators (paper Section 3.1).

    A graph is a topologically-ordered DAG of operator nodes. Node inputs
    reference earlier node ids; the pseudo-id [input_id] (-1) denotes the
    graph input tensor. Graphs are built with {!module:Builder} by the
    model definitions in [Models_*]. *)

type node = {
  id : int;
  op : Op.t;
  node_name : string;
  inputs : int list;  (** producer node ids; {!input_id} for the graph input *)
}

type t = {
  graph_name : string;
  nodes : node array;  (** indexed by [id], topologically ordered *)
}

val input_id : int

val num_nodes : t -> int

val node : t -> int -> node

val consumers : t -> int array array
(** [consumers g] maps each node id to the ids consuming its output. *)

val total_flops : t -> float

val validate : t -> (unit, string) result
(** Checks ids are dense, inputs reference earlier nodes, and the graph is
    acyclic by construction. *)

val summary : t -> string
(** Multi-line description: node count, flops, per-operator-kind counts. *)

(** Incremental graph construction. *)
module Builder : sig
  type g

  val create : string -> g

  val add : g -> ?name:string -> Op.t -> inputs:int list -> int
  (** Returns the new node id. Raises [Invalid_argument] on a forward or
      out-of-range input reference. *)

  val output_shape : g -> int -> int list
  (** Shape of an already-added node (or the graph input's declared shape
      if given to {!set_input_shape}). *)

  val set_input_shape : g -> int list -> unit

  val finish : g -> t
end
