type node = { id : int; op : Op.t; node_name : string; inputs : int list }
type t = { graph_name : string; nodes : node array }

let input_id = -1
let num_nodes g = Array.length g.nodes

let node g i =
  if i < 0 || i >= Array.length g.nodes then invalid_arg "Graph.node: id out of range";
  g.nodes.(i)

let consumers g =
  let out = Array.make (Array.length g.nodes) [] in
  Array.iter
    (fun n ->
      List.iter (fun src -> if src >= 0 then out.(src) <- n.id :: out.(src)) n.inputs)
    g.nodes;
  Array.map (fun l -> Array.of_list (List.rev l)) out

let total_flops g = Array.fold_left (fun acc n -> acc +. Op.flops n.op) 0.0 g.nodes

let validate g =
  let ok = ref (Ok ()) in
  Array.iteri
    (fun i n ->
      if n.id <> i then ok := Error (Printf.sprintf "node %d has id %d" i n.id);
      List.iter
        (fun src ->
          if src <> input_id && (src < 0 || src >= i) then
            ok := Error (Printf.sprintf "node %d has invalid input %d" i src))
        n.inputs)
    g.nodes;
  !ok

let summary g =
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      let k = Op.name n.op in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    g.nodes;
  let per_kind =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (k, v) -> Printf.sprintf "  %-16s %d" k v)
    |> String.concat "\n"
  in
  Printf.sprintf "%s: %d nodes, %.2f GFLOPs\n%s" g.graph_name (num_nodes g)
    (total_flops g /. 1e9) per_kind

module Builder = struct
  type g = {
    b_name : string;
    mutable rev_nodes : node list;
    mutable count : int;
    mutable input_shape : int list;
  }

  let create name = { b_name = name; rev_nodes = []; count = 0; input_shape = [] }

  let add b ?name op ~inputs =
    List.iter
      (fun src ->
        if src <> input_id && (src < 0 || src >= b.count) then
          invalid_arg (Printf.sprintf "Graph.Builder.add: input %d not yet defined" src))
      inputs;
    let id = b.count in
    let node_name =
      match name with Some n -> n | None -> Printf.sprintf "%s_%d" (Op.name op) id
    in
    b.rev_nodes <- { id; op; node_name; inputs } :: b.rev_nodes;
    b.count <- id + 1;
    id

  let set_input_shape b shape = b.input_shape <- shape

  let output_shape b i =
    if i = input_id then b.input_shape
    else
      match List.find_opt (fun n -> n.id = i) b.rev_nodes with
      | Some n -> Op.output_shape n.op
      | None -> invalid_arg "Graph.Builder.output_shape: unknown node"

  let finish b = { graph_name = b.b_name; nodes = Array.of_list (List.rev b.rev_nodes) }
end
