(** Vision Transformer ViT-B/32 [Dosovitskiy et al. 2020]: 12 encoder
    layers, hidden size 768, 12 heads, 32x32 patches over a 224x224 image
    (50 tokens including the class token). *)

val graph : ?batch:int -> unit -> Graph.t
