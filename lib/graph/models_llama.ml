module B = Graph.Builder
module L = Layers

let hidden = 4096
let heads = 32
let head_dim = hidden / heads
let ffn = 11008
let layers = 32
let vocab = 32000

let decoder_layer g ~batch ~seq ~input =
  let rows = batch * seq in
  let ln1 = L.layer_norm g ~input ~rows ~cols:hidden in
  let q = L.dense g ~name:"wq" ln1 ~batch:rows ~in_dim:hidden ~out_dim:hidden in
  let k = L.dense g ~name:"wk" ln1 ~batch:rows ~in_dim:hidden ~out_dim:hidden in
  let v = L.dense g ~name:"wv" ln1 ~batch:rows ~in_dim:hidden ~out_dim:hidden in
  let scores =
    L.batch_matmul g ~name:"attn_qk" q k ~batch:(batch * heads) ~m:seq ~k:head_dim
      ~n:seq
  in
  let probs = L.softmax g ~input:scores ~rows:(batch * heads * seq) ~cols:seq in
  let ctx =
    L.batch_matmul g ~name:"attn_v" probs v ~batch:(batch * heads) ~m:seq ~k:seq
      ~n:head_dim
  in
  let o = L.dense g ~name:"wo" ctx ~batch:rows ~in_dim:hidden ~out_dim:hidden in
  let res1 = L.residual_add g o input in
  let ln2 = L.layer_norm g ~input:res1 ~rows ~cols:hidden in
  let gate = L.dense g ~name:"w_gate" ln2 ~batch:rows ~in_dim:hidden ~out_dim:ffn in
  let gate = L.activation g Op.Silu ~input:gate in
  let up = L.dense g ~name:"w_up" ln2 ~batch:rows ~in_dim:hidden ~out_dim:ffn in
  let prod = B.add g (Op.Binary (Op.Mul, rows * ffn)) ~inputs:[ gate; up ] in
  let down = L.dense g ~name:"w_down" prod ~batch:rows ~in_dim:ffn ~out_dim:hidden in
  L.residual_add g down res1

let graph ?(batch = 1) ?(seq_len = 100) () =
  let g = B.create (Printf.sprintf "llama-b%d" batch) in
  B.set_input_shape g [ batch; seq_len; hidden ];
  (* Token embedding lookup is a gather with negligible compute; the first
     layer reads the embedded prompt directly. *)
  let x = ref (B.add g ~name:"embed" (Op.Concat { parts = [ seq_len ]; rest = batch * hidden })
                 ~inputs:[ Graph.input_id ]) in
  for _ = 1 to layers do
    x := decoder_layer g ~batch ~seq:seq_len ~input:!x
  done;
  let rows = batch * seq_len in
  let ln = L.layer_norm g ~input:!x ~rows ~cols:hidden in
  let _logits = L.dense g ~name:"lm_head" ln ~batch ~in_dim:hidden ~out_dim:vocab in
  B.finish g
