type network = Resnet50 | Mobilenet_v2 | R3d_18 | Dcgan | Vit_b32 | Llama

let all_networks = [ Resnet50; Mobilenet_v2; R3d_18; Dcgan; Vit_b32; Llama ]

let network_name = function
  | Resnet50 -> "ResNet-50"
  | Mobilenet_v2 -> "MobileNet-v2"
  | R3d_18 -> "R3d-18"
  | Dcgan -> "DCGAN"
  | Vit_b32 -> "ViT-B/32"
  | Llama -> "LLaMA"

let of_name s =
  let wanted = String.lowercase_ascii (String.trim s) in
  List.find_opt
    (fun n -> String.lowercase_ascii (network_name n) = wanted)
    all_networks

let graph ?(batch = 1) = function
  | Resnet50 -> Models_resnet.graph ~batch ()
  | Mobilenet_v2 -> Models_mobilenet.graph ~batch ()
  | R3d_18 -> Models_r3d.graph ~batch ()
  | Dcgan -> Models_dcgan.graph ~batch ()
  | Vit_b32 -> Models_vit.graph ~batch ()
  | Llama -> Models_llama.graph ~batch ()

let fits_on_edge = function
  | Llama -> false
  | Resnet50 | Mobilenet_v2 | R3d_18 | Dcgan | Vit_b32 -> true

let single_operators =
  [ ("Conv2d",
     Op.Conv2d
       { batch = 1; in_chan = 256; out_chan = 256; in_h = 28; in_w = 28; kernel_h = 3;
         kernel_w = 3; stride = 1; pad = 1; groups = 1 });
    ("TConv2d",
     Op.Tconv2d
       { batch = 1; in_chan = 512; out_chan = 256; in_h = 8; in_w = 8; kernel_h = 4;
         kernel_w = 4; stride = 2; pad = 1 });
    ("Conv3d",
     Op.Conv3d
       { batch = 1; in_chan = 128; out_chan = 128; in_d = 4; in_h = 14; in_w = 14;
         kernel_d = 3; kernel_h = 3; kernel_w = 3; stride = 1; pad = 1 });
    ("Dense", Op.Dense { batch = 50; in_dim = 768; out_dim = 3072 });
    ("BatchMatmul", Op.Batch_matmul { batch = 32; m = 100; k = 128; n = 100 });
    ("Softmax", Op.Softmax { rows = 3200; cols = 100 });
    ("MaxPool",
     Op.Maxpool2d { batch = 1; chan = 64; in_h = 112; in_w = 112; kernel = 3; stride = 2; pad = 1 }) ]
