module B = Graph.Builder
module L = Layers

let hidden = 768
let heads = 12
let head_dim = hidden / heads
let mlp_dim = 3072
let layers = 12
let tokens = 50 (* 7x7 patches + class token *)

let encoder_layer g ~batch ~input =
  let rows = batch * tokens in
  let ln1 = L.layer_norm g ~input ~rows ~cols:hidden in
  let qkv = L.dense g ~name:"qkv" ln1 ~batch:rows ~in_dim:hidden ~out_dim:(3 * hidden) in
  let scores =
    L.batch_matmul g ~name:"attn_qk" qkv qkv ~batch:(batch * heads) ~m:tokens
      ~k:head_dim ~n:tokens
  in
  let probs = L.softmax g ~input:scores ~rows:(batch * heads * tokens) ~cols:tokens in
  let ctx =
    L.batch_matmul g ~name:"attn_v" probs qkv ~batch:(batch * heads) ~m:tokens
      ~k:tokens ~n:head_dim
  in
  let proj = L.dense g ~name:"attn_proj" ctx ~batch:rows ~in_dim:hidden ~out_dim:hidden in
  let res1 = L.residual_add g proj input in
  let ln2 = L.layer_norm g ~input:res1 ~rows ~cols:hidden in
  let fc1 = L.dense g ~name:"mlp_fc1" ln2 ~batch:rows ~in_dim:hidden ~out_dim:mlp_dim in
  let act = L.activation g Op.Gelu ~input:fc1 in
  let fc2 = L.dense g ~name:"mlp_fc2" act ~batch:rows ~in_dim:mlp_dim ~out_dim:hidden in
  L.residual_add g fc2 res1

let graph ?(batch = 1) () =
  let g = B.create (Printf.sprintf "vit_b32-b%d" batch) in
  B.set_input_shape g [ batch; 3; 224; 224 ];
  let patch, _ =
    L.conv2d g ~name:"patch_embed" ~input:Graph.input_id ~in_chan:3 ~out_chan:hidden
      ~in_hw:(224, 224) ~kernel:32 ~stride:32 ~pad:0 ()
  in
  (* Prepend the class token: 49 patch tokens + 1 learned token. *)
  let with_cls =
    B.add g ~name:"cat_cls_token" (Op.Concat { parts = [ 1; 49 ]; rest = batch * hidden })
      ~inputs:[ patch ]
  in
  let x = ref with_cls in
  for _ = 1 to layers do
    x := encoder_layer g ~batch ~input:!x
  done;
  let rows = batch * tokens in
  let ln = L.layer_norm g ~input:!x ~rows ~cols:hidden in
  let _head = L.dense g ~name:"classifier" ln ~batch:rows ~in_dim:hidden ~out_dim:1000 in
  B.finish g
