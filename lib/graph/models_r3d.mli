(** R3D-18 [Hara et al. 2017]: 3-D ResNet-18 for action recognition on
    16-frame 112x112 clips. More than 99% of its work is 3-D convolution,
    which the paper uses to show where vendor libraries still win. *)

val graph : ?batch:int -> unit -> Graph.t
