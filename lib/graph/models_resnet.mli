(** ResNet-50 [He et al. 2016], one of the paper's six evaluation networks.

    Standard ImageNet configuration: 224x224 input, bottleneck blocks
    [3; 4; 6; 3], folded inference batch-norms, 1000-way classifier. *)

val graph : ?batch:int -> unit -> Graph.t
