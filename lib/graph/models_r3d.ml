module B = Graph.Builder
module L = Layers

let basic_block g ~input ~in_chan ~out_chan ~stride ~dhw =
  let c1, dhw1 =
    L.conv3d g ~input ~in_chan ~out_chan ~in_dhw:dhw ~kernel:3 ~stride ~pad:1 ()
  in
  let c1 = L.activation g Op.Relu ~input:(L.batch_norm g ~input:c1 ~chan:out_chan) in
  let c2, dhw2 =
    L.conv3d g ~input:c1 ~in_chan:out_chan ~out_chan ~in_dhw:dhw1 ~kernel:3 ~stride:1 ~pad:1 ()
  in
  let c2 = L.batch_norm g ~input:c2 ~chan:out_chan in
  let shortcut =
    if in_chan <> out_chan || stride <> 1 then begin
      let d, _ =
        L.conv3d g ~input ~in_chan ~out_chan ~in_dhw:dhw ~kernel:1 ~stride ~pad:0 ()
      in
      L.batch_norm g ~input:d ~chan:out_chan
    end
    else input
  in
  (L.activation g Op.Relu ~input:(L.residual_add g c2 shortcut), dhw2)

let graph ?(batch = 1) () =
  let g = B.create (Printf.sprintf "r3d_18-b%d" batch) in
  B.set_input_shape g [ batch; 3; 16; 112; 112 ];
  let stem, dhw =
    L.conv3d g ~name:"stem" ~input:Graph.input_id ~in_chan:3 ~out_chan:64
      ~in_dhw:(16, 112, 112) ~kernel:3 ~stride:2 ~pad:1 ()
  in
  let stem = L.activation g Op.Relu ~input:(L.batch_norm g ~input:stem ~chan:64) in
  let x = ref stem and chan = ref 64 and cur = ref dhw in
  List.iter
    (fun (out_chan, stride) ->
      let b1, d1 = basic_block g ~input:!x ~in_chan:!chan ~out_chan ~stride ~dhw:!cur in
      let b2, d2 = basic_block g ~input:b1 ~in_chan:out_chan ~out_chan ~stride:1 ~dhw:d1 in
      x := b2;
      chan := out_chan;
      cur := d2)
    [ (64, 1); (128, 2); (256, 2); (512, 2) ];
  let d, h, w = !cur in
  let gap =
    B.add g (Op.Global_avgpool { batch; chan = 512; in_h = d * h; in_w = w }) ~inputs:[ !x ]
  in
  let _fc = L.dense g ~name:"classifier" gap ~batch ~in_dim:512 ~out_dim:400 in
  B.finish g
