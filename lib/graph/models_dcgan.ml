module B = Graph.Builder
module L = Layers

let graph ?(batch = 1) () =
  let g = B.create (Printf.sprintf "dcgan-b%d" batch) in
  B.set_input_shape g [ batch; 100; 1; 1 ];
  (* 1x1 -> 4x4 -> 8x8 -> 16x16 -> 32x32 -> 64x64 *)
  let t1, hw =
    L.tconv2d g ~name:"proj" ~input:Graph.input_id ~in_chan:100 ~out_chan:1024 ~in_hw:(1, 1)
      ~kernel:4 ~stride:1 ~pad:0 ()
  in
  let x = ref (L.activation g Op.Relu ~input:(L.batch_norm g ~input:t1 ~chan:1024)) in
  let chan = ref 1024 and cur_hw = ref hw in
  List.iter
    (fun out_chan ->
      let t, hw' =
        L.tconv2d g ~input:!x ~in_chan:!chan ~out_chan ~in_hw:!cur_hw ~kernel:4 ~stride:2
          ~pad:1 ()
      in
      let t = L.activation g Op.Relu ~input:(L.batch_norm g ~input:t ~chan:out_chan) in
      x := t;
      chan := out_chan;
      cur_hw := hw')
    [ 512; 256; 128 ];
  let final, _ =
    L.tconv2d g ~name:"to_rgb" ~input:!x ~in_chan:!chan ~out_chan:3 ~in_hw:!cur_hw ~kernel:4
      ~stride:2 ~pad:1 ()
  in
  let _out = L.activation g Op.Tanh ~input:final in
  B.finish g
