(** LLaMA-7B [Touvron et al. 2023] in the paper's configuration: prefill of
    a 100-token prompt at fp32. 32 decoder layers, hidden size 4096, 32
    heads, SwiGLU feed-forward of width 11008, RMSNorm (modelled as layer
    norm). The paper could not run it on Xavier NX (insufficient memory);
    our workload table mirrors that. *)

val graph : ?batch:int -> ?seq_len:int -> unit -> Graph.t
