type row = Cells of string list | Separator

type t = {
  title : string;
  header : string list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_separator t = t.rows <- Separator :: t.rows

let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc r -> match r with Cells c -> max acc (List.length c) | Separator -> acc)
      (List.length t.header) rows
  in
  let widths = Array.make ncols 0 in
  let account cells =
    List.iteri (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c)) cells
  in
  account t.header;
  List.iter (function Cells c -> account c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    let arr = Array.make ncols "" in
    List.iteri (fun i c -> if i < ncols then arr.(i) <- c) cells;
    Buffer.add_char buf '|';
    Array.iteri
      (fun i w ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad w arr.(i));
        Buffer.add_string buf " |")
      widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line '-';
  emit t.header;
  line '=';
  List.iter (function Cells c -> emit c | Separator -> line '-') rows;
  line '-';
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_ms v = Printf.sprintf "%.3f ms" v

let fmt_speedup v = if v <= 0.0 then "-" else Printf.sprintf "%.2fx" v

let fmt_seconds v = Printf.sprintf "%.0f s" v
