(** Minimal JSON: one shared writer/parser for the whole code base.

    Every persistent artifact of the reproduction — tuning-result exports,
    telemetry traces, the durable tuning store — goes through this module,
    so the repo has exactly one notion of JSON text. No external
    dependency.

    Numbers are written so that [parse (to_string j)] reconstructs the
    same value bit-for-bit: integers up to 2{^53} print without a decimal
    point, other finite floats print with the shortest decimal expansion
    that round-trips through [float_of_string]. Non-finite floats have no
    JSON representation and print as [null]; state that must survive
    exactly (including infinities and NaNs) should be encoded as IEEE-754
    bit strings instead (see [Store.Bits]). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** RFC 8259 string escaping: quote, backslash and control characters are
    escaped; all other bytes pass through verbatim. *)

val to_string : ?indent:int -> t -> string
(** Pretty-printed rendering with the given indentation (default 2). *)

val to_line : t -> string
(** Compact single-line rendering (no spaces, no newline) — the JSONL
    form used by the telemetry trace sink and the tuning-store journal. *)

val parse : string -> (t, string) result
(** Strict RFC 8259 parser. Handles the full escape repertoire including
    [\uXXXX] (surrogate pairs decode to UTF-8); rejects trailing input,
    unterminated strings and malformed numbers with a message carrying
    the byte offset. *)

(** {2 Accessors}

    Option-returning helpers for decoding; all return [None] on a
    constructor mismatch. *)

val find : t -> string -> t option
(** [find (Obj fields) k] is the first binding of [k]. *)

val as_string : t -> string option
val as_float : t -> float option
val as_int : t -> int option
(** [as_int] requires the number to be integral. *)

val as_bool : t -> bool option
val as_list : t -> t list option
