(** Topological sorting of integer-keyed DAGs.

    Used by the computation-graph module to order operator nodes before
    shape inference and partitioning. *)

val sort : num_nodes:int -> edges:(int * int) list -> int list
(** [sort ~num_nodes ~edges] returns the node ids [0 .. num_nodes-1] in an
    order where every edge [(src, dst)] has [src] before [dst]. Ties are
    broken by ascending node id, making the result deterministic.
    Raises [Failure] if the graph has a cycle. *)

val is_dag : num_nodes:int -> edges:(int * int) list -> bool
