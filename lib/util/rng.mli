(** Deterministic splittable pseudo-random number generator.

    All stochastic components of the reproduction (schedule sampling,
    evolutionary search, MLP initialisation, measurement jitter) draw from
    this generator so that every experiment is bit-reproducible from a seed.
    The implementation is SplitMix64, which has good statistical quality for
    simulation purposes and supports cheap stream splitting. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent stream; [t] itself advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (both copies produce the same
    subsequent values). *)

val state_bits : t -> int64
(** The full internal state; [of_state_bits (state_bits t)] continues
    [t]'s stream exactly. Used by the tuning store's checkpoints to make
    resumed runs bit-identical. *)

val of_state_bits : int64 -> t

val substream : t -> int -> t
(** [substream t i] derives the [i]-th independent child stream without
    advancing [t]: the result depends only on [t]'s current state and [i],
    so a caller can hand stream [i] to worker [i] deterministically
    regardless of how many workers exist. Raises on negative [i]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); raises [Invalid_argument] if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val uniform : t -> float
(** [uniform t] is uniform in [0, 1). *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [lo, hi). *)

val gaussian : t -> float
(** [gaussian t] is a standard normal sample (Box-Muller). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** [choose t arr] picks a uniform element; raises on empty array. *)

val choose_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [min k (Array.length arr)]
    distinct elements. *)
