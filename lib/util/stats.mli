(** Small statistics helpers used by the benchmark harness and tests. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation. *)

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

val argmin : ('a -> float) -> 'a list -> 'a
(** Raises [Invalid_argument] on the empty list. *)

val argmax : ('a -> float) -> 'a list -> 'a

val clamp : lo:float -> hi:float -> float -> float

val spearman : float array -> float array -> float
(** Spearman rank correlation between two equal-length arrays (used to
    validate cost-model fidelity, as in the TenSet evaluation). *)
