type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }
let copy t = { state = t.state }
let state_bits t = t.state
let of_state_bits state = { state }

let substream t i =
  if i < 0 then invalid_arg "Rng.substream: index must be >= 0";
  (* Jump to a disjoint region of the gamma sequence without advancing [t],
     so stream [i] is the same no matter how many siblings are derived. *)
  { state = mix64 (Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1)))) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value stays a non-negative OCaml int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let uniform t =
  (* 53 high-quality bits into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound
let range t lo hi = lo +. (uniform t *. (hi -. lo))

let gaussian t =
  let u1 = max 1e-12 (uniform t) in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l = choose t (Array.of_list l)

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let arr = Array.copy arr in
  shuffle t arr;
  Array.sub arr 0 (min k (Array.length arr))
