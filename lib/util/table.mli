(** Plain-text table rendering for the benchmark harness.

    The harness prints each reproduced paper table/figure as an aligned
    ASCII table so the output can be diffed between runs. *)

type t

val create : title:string -> header:string list -> t

val add_row : t -> string list -> unit
(** Rows may be shorter than the header; missing cells render empty. *)

val add_separator : t -> unit

val render : t -> string
(** Render with box-drawing rules and column alignment. *)

val print : t -> unit
(** [render] followed by [print_string] and a flush. *)

val fmt_ms : float -> string
(** Millisecond latency with 3 significant decimals, e.g. ["1.234 ms"]. *)

val fmt_speedup : float -> string
(** e.g. ["2.25x"]; negative/zero renders as ["-"]. *)

val fmt_seconds : float -> string
(** e.g. ["416 s"]. *)
