type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal expansion that survives [float_of_string]; integers up
   to 2^53 print without a point so counters stay readable. *)
let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else if Float.is_finite v then begin
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s
    else
      let s = Printf.sprintf "%.16g" v in
      if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end
  else "null" (* JSON has no infinity *)

let to_string ?(indent = 2) t =
  let buf = Buffer.create 256 in
  let pad depth = String.make (indent * depth) ' ' in
  let rec go depth t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (fmt_num v)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (depth + 1));
          go (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad depth);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (depth + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad depth);
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let to_line t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> Buffer.add_string buf (fmt_num v)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

(* --- parser ---------------------------------------------------------------- *)

exception Parse_error of string

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "short \\u escape";
    let code =
      match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
      | Some c -> c
      | None -> fail "bad \\u escape"
    in
    pos := !pos + 4;
    code
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               let code = hex4 () in
               if code >= 0xD800 && code <= 0xDBFF then begin
                 (* High surrogate: a low surrogate must follow. *)
                 if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     add_utf8 buf
                       (0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00))
                   else fail "invalid low surrogate"
                 end
                 else fail "unpaired surrogate"
               end
               else if code >= 0xDC00 && code <= 0xDFFF then
                 fail "unpaired low surrogate"
               else add_utf8 buf code
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c when Char.code c < 0x20 -> fail "unescaped control character"
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    (* RFC 8259 number grammar: an optional minus, then "0" or a non-zero
       digit run, an optional ".digits" fraction and an optional exponent —
       stricter than [float_of_string] (no leading zeros, hex, or "1."). *)
    let start = !pos in
    let digit () =
      match peek () with Some '0' .. '9' -> advance (); true | _ -> false
    in
    let digits1 () = if not (digit ()) then fail "malformed number" else while digit () do () done in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> while digit () do () done
    | _ -> fail "malformed number");
    if peek () = Some '.' then begin advance (); digits1 () end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('-' | '+') -> advance () | _ -> ());
      digits1 ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> Num (parse_number ())
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ------------------------------------------------------------- *)

let find t k = match t with Obj fields -> List.assoc_opt k fields | _ -> None
let as_string = function Str s -> Some s | _ -> None
let as_float = function Num v -> Some v | _ -> None

let as_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let as_bool = function Bool b -> Some b | _ -> None
let as_list = function List l -> Some l | _ -> None
