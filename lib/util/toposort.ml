module Int_set = Set.Make (Int)

let sort ~num_nodes ~edges =
  let succs = Array.make num_nodes Int_set.empty in
  let indeg = Array.make num_nodes 0 in
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes then
        invalid_arg "Toposort.sort: edge out of range";
      if not (Int_set.mem dst succs.(src)) then begin
        succs.(src) <- Int_set.add dst succs.(src);
        indeg.(dst) <- indeg.(dst) + 1
      end)
    edges;
  (* Kahn's algorithm with a sorted frontier for determinism. *)
  let frontier = ref Int_set.empty in
  for i = 0 to num_nodes - 1 do
    if indeg.(i) = 0 then frontier := Int_set.add i !frontier
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Int_set.is_empty !frontier) do
    let n = Int_set.min_elt !frontier in
    frontier := Int_set.remove n !frontier;
    order := n :: !order;
    incr count;
    Int_set.iter
      (fun m ->
        indeg.(m) <- indeg.(m) - 1;
        if indeg.(m) = 0 then frontier := Int_set.add m !frontier)
      succs.(n)
  done;
  if !count <> num_nodes then failwith "Toposort.sort: graph has a cycle";
  List.rev !order

let is_dag ~num_nodes ~edges =
  match sort ~num_nodes ~edges with
  | _ -> true
  | exception Failure _ -> false
