let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let sum_logs = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (sum_logs /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
    end

let median xs = percentile 50.0 xs

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

let argmin f = function
  | [] -> invalid_arg "Stats.argmin: empty list"
  | x :: rest ->
    let best, _ =
      List.fold_left
        (fun (bx, bv) y ->
          let v = f y in
          if v < bv then (y, v) else (bx, bv))
        (x, f x) rest
    in
    best

let argmax f l = argmin (fun x -> -.f x) l

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let ranks arr =
  let n = Array.length arr in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare arr.(a) arr.(b)) idx;
  let r = Array.make n 0.0 in
  (* Average ranks over ties. *)
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do incr j done;
    let avg = float_of_int (!i + !j) /. 2.0 in
    for k = !i to !j do r.(idx.(k)) <- avg done;
    i := !j + 1
  done;
  r

let spearman xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.spearman: length mismatch";
  if n < 2 then 0.0
  else begin
    let rx = ranks xs and ry = ranks ys in
    let mx = Array.fold_left ( +. ) 0.0 rx /. float_of_int n in
    let my = Array.fold_left ( +. ) 0.0 ry /. float_of_int n in
    let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
    for i = 0 to n - 1 do
      let a = rx.(i) -. mx and b = ry.(i) -. my in
      num := !num +. (a *. b);
      dx := !dx +. (a *. a);
      dy := !dy +. (b *. b)
    done;
    if !dx = 0.0 || !dy = 0.0 then 0.0 else !num /. sqrt (!dx *. !dy)
  end
