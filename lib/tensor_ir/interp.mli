(** Reference and scheduled execution of tensor programs.

    This is the substrate's correctness harness: the same subgraph is
    executed twice on identical deterministic inputs —

    - {!run_reference}: the naive loop nest p0, iterated in canonical
      row-major order;
    - {!run_scheduled}: the transformed program p^* under a concrete
      variable assignment, iterated in the {e tiled} order the schedule
      prescribes (blocks, vthreads, threads, split reductions, register
      tiles), reconstructing each original axis value from its tile
      coordinates —

    and the outputs must match (up to floating-point reassociation of
    reductions). The property tests run this over random operators and
    random valid schedules, which pins down the tiling algebra, the affine
    access maps and the divisor rounding all at once. *)

type memory = (string, float array) Hashtbl.t

val input_value : string -> int -> float
(** Deterministic pseudo-random initial value of element [idx] of an input
    buffer (same on both execution paths). *)

val run_reference : Compute.subgraph -> memory
(** Execute every stage in order; missing buffers are materialised with
    {!input_value}. *)

val run_scheduled : Loop_ir.t -> Eval.env -> memory
(** Execute the scheduled program under the (integer-valued) variable
    assignment. Raises [Invalid_argument] if a tile does not evenly divide
    its axis (i.e. the assignment was not produced by divisor rounding). *)

val output : memory -> Compute.subgraph -> float array
(** The final stage's output buffer. *)

val max_rel_error : float array -> float array -> float
(** max_i |a_i - b_i| / (1 + |a_i|); raises on length mismatch. *)
