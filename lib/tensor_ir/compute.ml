type axis_kind = Spatial | Reduce
type axis = { axis_name : string; extent : int; kind : axis_kind }
type index_term = { axis : int; coeff : int }
type index = { terms : index_term list; offset : int }
type buffer = { buf_name : string; shape : int list; dtype : Dtype.t }
type access = { buffer : buffer; indices : index list }

type op_counts = {
  fadd : int;
  fmul : int;
  fdiv : int;
  fspecial : int;
  fcmp : int;
  iops : int;
}

type semantics =
  | Sem_matmul
  | Sem_reduce_sum
  | Sem_reduce_mean
  | Sem_reduce_max
  | Sem_sum_exp_sub
  | Sem_sum_sq_diff
  | Sem_softmax_norm
  | Sem_layernorm_norm
  | Sem_scale_shift
  | Sem_unary of Op.elemwise_kind
  | Sem_binary of Op.binary_kind
  | Sem_copy

type stage = {
  stage_name : string;
  axes : axis array;
  reads : access list;
  write : buffer;
  counts : op_counts;
  is_elemwise : bool;
  sem : semantics;
}

type subgraph = { sg_name : string; stages : stage list; anchor : int }

let no_counts = { fadd = 0; fmul = 0; fdiv = 0; fspecial = 0; fcmp = 0; iops = 0 }
let fma_counts = { no_counts with fadd = 1; fmul = 1; iops = 4 }

let spatial_axes st = Array.to_list st.axes |> List.filter (fun a -> a.kind = Spatial)
let reduce_axes st = Array.to_list st.axes |> List.filter (fun a -> a.kind = Reduce)
let num_spatial st = List.length (spatial_axes st)
let num_reduce st = List.length (reduce_axes st)

let product l = List.fold_left (fun acc a -> acc * a.extent) 1 l
let spatial_iterations st = product (spatial_axes st)
let reduce_iterations st = product (reduce_axes st)

let stage_flops st =
  let per_iter =
    st.counts.fadd + st.counts.fmul + st.counts.fdiv + st.counts.fspecial + st.counts.fcmp
  in
  float_of_int per_iter *. float_of_int (spatial_iterations st) *. float_of_int (reduce_iterations st)

let subgraph_flops sg = List.fold_left (fun acc st -> acc +. stage_flops st) 0.0 sg.stages

let output_buffer sg =
  match List.rev sg.stages with
  | last :: _ -> last.write
  | [] -> invalid_arg "Compute.output_buffer: empty subgraph"

(* --- small builders ------------------------------------------------------ *)

let ax name extent kind = { axis_name = name; extent; kind }
let idx ?(offset = 0) terms = { terms; offset }
let term axis coeff = { axis; coeff }
let simple i = idx [ term i 1 ]
let buf name shape = { buf_name = name; shape; dtype = Dtype.Float32 }

(* --- lowering ------------------------------------------------------------ *)

let lower_conv2d name (c : Op.conv2d) =
  let oh = ((c.in_h + (2 * c.pad) - c.kernel_h) / c.stride) + 1 in
  let ow = ((c.in_w + (2 * c.pad) - c.kernel_w) / c.stride) + 1 in
  let groups = c.groups in
  let ocg = c.out_chan / groups and icg = c.in_chan / groups in
  (* Axes: n, g, ocg, oh, ow | rc, kh, kw.  The padded input buffer makes
     accesses affine (padding is materialised conceptually; the simulator
     charges for the logical, unpadded traffic). *)
  let axes =
    [| ax "n" c.batch Spatial; ax "g" groups Spatial; ax "oc" ocg Spatial;
       ax "oh" oh Spatial; ax "ow" ow Spatial; ax "rc" icg Reduce;
       ax "kh" c.kernel_h Reduce; ax "kw" c.kernel_w Reduce |]
  in
  let pad_h = c.in_h + (2 * c.pad) and pad_w = c.in_w + (2 * c.pad) in
  let input = buf (name ^ ".in") [ c.batch; c.in_chan; pad_h; pad_w ] in
  let weight = buf (name ^ ".w") [ groups; ocg; icg; c.kernel_h; c.kernel_w ] in
  let out = buf (name ^ ".out") [ c.batch; groups; ocg; oh; ow ] in
  let reads =
    [ { buffer = input;
        indices =
          [ simple 0;
            idx [ term 1 icg; term 5 1 ]; (* channel = g*icg + rc *)
            idx [ term 3 c.stride; term 6 1 ];
            idx [ term 4 c.stride; term 7 1 ] ] };
      { buffer = weight; indices = [ simple 1; simple 2; simple 5; simple 6; simple 7 ] } ]
  in
  { stage_name = name; axes; reads; write = out; counts = fma_counts; is_elemwise = false;
    sem = Sem_matmul }

let lower_conv3d name (c : Op.conv3d) =
  let od = ((c.in_d + (2 * c.pad) - c.kernel_d) / c.stride) + 1 in
  let oh = ((c.in_h + (2 * c.pad) - c.kernel_h) / c.stride) + 1 in
  let ow = ((c.in_w + (2 * c.pad) - c.kernel_w) / c.stride) + 1 in
  let axes =
    [| ax "n" c.batch Spatial; ax "oc" c.out_chan Spatial; ax "od" od Spatial;
       ax "oh" oh Spatial; ax "ow" ow Spatial; ax "rc" c.in_chan Reduce;
       ax "kd" c.kernel_d Reduce; ax "kh" c.kernel_h Reduce; ax "kw" c.kernel_w Reduce |]
  in
  let input =
    buf (name ^ ".in")
      [ c.batch; c.in_chan; c.in_d + (2 * c.pad); c.in_h + (2 * c.pad); c.in_w + (2 * c.pad) ]
  in
  let weight =
    buf (name ^ ".w") [ c.out_chan; c.in_chan; c.kernel_d; c.kernel_h; c.kernel_w ]
  in
  let out = buf (name ^ ".out") [ c.batch; c.out_chan; od; oh; ow ] in
  let reads =
    [ { buffer = input;
        indices =
          [ simple 0; simple 5;
            idx [ term 2 c.stride; term 6 1 ];
            idx [ term 3 c.stride; term 7 1 ];
            idx [ term 4 c.stride; term 8 1 ] ] };
      { buffer = weight; indices = [ simple 1; simple 5; simple 6; simple 7; simple 8 ] } ]
  in
  { stage_name = name; axes; reads; write = out; counts = fma_counts; is_elemwise = false;
    sem = Sem_matmul }

let lower_tconv2d name (c : Op.tconv2d) =
  let oh = ((c.in_h - 1) * c.stride) - (2 * c.pad) + c.kernel_h in
  let ow = ((c.in_w - 1) * c.stride) - (2 * c.pad) + c.kernel_w in
  (* Lowered via the zero-dilated input view: a stride-1 convolution over an
     input of size (oh + kh - 1, ow + kw - 1); flops match the true
     transposed convolution because only 1/stride^2 of taps are non-zero,
     which we reflect by shrinking the reduction extents. *)
  let eff_kh = max 1 (c.kernel_h / c.stride) and eff_kw = max 1 (c.kernel_w / c.stride) in
  let axes =
    [| ax "n" c.batch Spatial; ax "oc" c.out_chan Spatial; ax "oh" oh Spatial;
       ax "ow" ow Spatial; ax "rc" c.in_chan Reduce; ax "kh" eff_kh Reduce;
       ax "kw" eff_kw Reduce |]
  in
  let input = buf (name ^ ".in") [ c.batch; c.in_chan; oh + eff_kh; ow + eff_kw ] in
  let weight = buf (name ^ ".w") [ c.in_chan; c.out_chan; c.kernel_h; c.kernel_w ] in
  let out = buf (name ^ ".out") [ c.batch; c.out_chan; oh; ow ] in
  let reads =
    [ { buffer = input;
        indices =
          [ simple 0; simple 4; idx [ term 2 1; term 5 1 ]; idx [ term 3 1; term 6 1 ] ] };
      { buffer = weight; indices = [ simple 4; simple 1; simple 5; simple 6 ] } ]
  in
  { stage_name = name; axes; reads; write = out; counts = fma_counts; is_elemwise = false;
    sem = Sem_matmul }

let lower_dense name (d : Op.dense) =
  let axes =
    [| ax "i" d.batch Spatial; ax "j" d.out_dim Spatial; ax "k" d.in_dim Reduce |]
  in
  let a = buf (name ^ ".in") [ d.batch; d.in_dim ] in
  let w = buf (name ^ ".w") [ d.out_dim; d.in_dim ] in
  let out = buf (name ^ ".out") [ d.batch; d.out_dim ] in
  let reads =
    [ { buffer = a; indices = [ simple 0; simple 2 ] };
      { buffer = w; indices = [ simple 1; simple 2 ] } ]
  in
  { stage_name = name; axes; reads; write = out; counts = fma_counts; is_elemwise = false;
    sem = Sem_matmul }

let lower_batch_matmul name (b : Op.batch_matmul) =
  let axes =
    [| ax "b" b.batch Spatial; ax "i" b.m Spatial; ax "j" b.n Spatial; ax "k" b.k Reduce |]
  in
  let x = buf (name ^ ".x") [ b.batch; b.m; b.k ] in
  let y = buf (name ^ ".y") [ b.batch; b.k; b.n ] in
  let out = buf (name ^ ".out") [ b.batch; b.m; b.n ] in
  let reads =
    [ { buffer = x; indices = [ simple 0; simple 1; simple 3 ] };
      { buffer = y; indices = [ simple 0; simple 3; simple 2 ] } ]
  in
  { stage_name = name; axes; reads; write = out; counts = fma_counts; is_elemwise = false;
    sem = Sem_matmul }

let lower_pool2d ~is_max name (p : Op.pool2d) =
  let oh = ((p.in_h + (2 * p.pad) - p.kernel) / p.stride) + 1 in
  let ow = ((p.in_w + (2 * p.pad) - p.kernel) / p.stride) + 1 in
  let axes =
    [| ax "n" p.batch Spatial; ax "c" p.chan Spatial; ax "oh" oh Spatial;
       ax "ow" ow Spatial; ax "kh" p.kernel Reduce; ax "kw" p.kernel Reduce |]
  in
  let input =
    buf (name ^ ".in") [ p.batch; p.chan; p.in_h + (2 * p.pad); p.in_w + (2 * p.pad) ]
  in
  let out = buf (name ^ ".out") [ p.batch; p.chan; oh; ow ] in
  let reads =
    [ { buffer = input;
        indices =
          [ simple 0; simple 1; idx [ term 2 p.stride; term 4 1 ];
            idx [ term 3 p.stride; term 5 1 ] ] } ]
  in
  let counts =
    if is_max then { no_counts with fcmp = 1; iops = 3 } else { no_counts with fadd = 1; iops = 3 }
  in
  { stage_name = name; axes; reads; write = out; counts; is_elemwise = false;
    sem = (if is_max then Sem_reduce_max else Sem_reduce_mean) }

let lower_global_avgpool name ~batch ~chan ~in_h ~in_w =
  let axes =
    [| ax "n" batch Spatial; ax "c" chan Spatial; ax "h" in_h Reduce; ax "w" in_w Reduce |]
  in
  let input = buf (name ^ ".in") [ batch; chan; in_h; in_w ] in
  let out = buf (name ^ ".out") [ batch; chan ] in
  let reads = [ { buffer = input; indices = [ simple 0; simple 1; simple 2; simple 3 ] } ] in
  { stage_name = name; axes; reads;
    write = out; counts = { no_counts with fadd = 1; iops = 2 }; is_elemwise = false;
    sem = Sem_reduce_mean }

(* Softmax lowers to three stages: row max, exp-and-sum, normalise. *)
let lower_softmax name (s : Op.softmax) =
  let x = buf (name ^ ".in") [ s.rows; s.cols ] in
  let rowmax =
    { stage_name = name ^ ".max";
      axes = [| ax "r" s.rows Spatial; ax "c" s.cols Reduce |];
      reads = [ { buffer = x; indices = [ simple 0; simple 1 ] } ];
      write = buf (name ^ ".m") [ s.rows ];
      counts = { no_counts with fcmp = 1; iops = 2 };
      is_elemwise = false;
      sem = Sem_reduce_max }
  in
  let expsum =
    { stage_name = name ^ ".sum";
      axes = [| ax "r" s.rows Spatial; ax "c" s.cols Reduce |];
      reads =
        [ { buffer = x; indices = [ simple 0; simple 1 ] };
          { buffer = rowmax.write; indices = [ simple 0 ] } ];
      write = buf (name ^ ".s") [ s.rows ];
      counts = { no_counts with fadd = 2; fspecial = 1; iops = 2 };
      is_elemwise = false;
      sem = Sem_sum_exp_sub }
  in
  let normalise =
    { stage_name = name ^ ".norm";
      axes = [| ax "r" s.rows Spatial; ax "c" s.cols Spatial |];
      reads =
        [ { buffer = x; indices = [ simple 0; simple 1 ] };
          { buffer = rowmax.write; indices = [ simple 0 ] };
          { buffer = expsum.write; indices = [ simple 0 ] } ];
      write = buf (name ^ ".out") [ s.rows; s.cols ];
      counts = { no_counts with fadd = 1; fdiv = 1; fspecial = 1; iops = 2 };
      is_elemwise = false;
      sem = Sem_softmax_norm }
  in
  { sg_name = name; stages = [ rowmax; expsum; normalise ]; anchor = 1 }

let lower_layer_norm name (n : Op.norm) =
  let x = buf (name ^ ".in") [ n.rows; n.cols ] in
  let mean =
    { stage_name = name ^ ".mean";
      axes = [| ax "r" n.rows Spatial; ax "c" n.cols Reduce |];
      reads = [ { buffer = x; indices = [ simple 0; simple 1 ] } ];
      write = buf (name ^ ".mu") [ n.rows ];
      counts = { no_counts with fadd = 1; iops = 2 };
      is_elemwise = false;
      sem = Sem_reduce_mean }
  in
  let var =
    { stage_name = name ^ ".var";
      axes = [| ax "r" n.rows Spatial; ax "c" n.cols Reduce |];
      reads =
        [ { buffer = x; indices = [ simple 0; simple 1 ] };
          { buffer = mean.write; indices = [ simple 0 ] } ];
      write = buf (name ^ ".v") [ n.rows ];
      counts = { no_counts with fadd = 2; fmul = 1; iops = 2 };
      is_elemwise = false;
      sem = Sem_sum_sq_diff }
  in
  let normalise =
    { stage_name = name ^ ".norm";
      axes = [| ax "r" n.rows Spatial; ax "c" n.cols Spatial |];
      reads =
        [ { buffer = x; indices = [ simple 0; simple 1 ] };
          { buffer = mean.write; indices = [ simple 0 ] };
          { buffer = var.write; indices = [ simple 0 ] } ];
      write = buf (name ^ ".out") [ n.rows; n.cols ];
      counts = { no_counts with fadd = 2; fmul = 2; fdiv = 1; fspecial = 1; iops = 2 };
      is_elemwise = false;
      sem = Sem_layernorm_norm }
  in
  { sg_name = name; stages = [ mean; var; normalise ]; anchor = 1 }

let elemwise_stage name ~elems ~extra_read ~counts ~sem ~prev_buffer =
  (* Flat 1-D elementwise stage over the previous stage's output. *)
  let axes = [| ax "e" elems Spatial |] in
  let reads =
    { buffer = prev_buffer; indices = [ simple 0 ] }
    :: (match extra_read with
       | None -> []
       | Some b -> [ { buffer = b; indices = [ simple 0 ] } ])
  in
  { stage_name = name; axes; reads; write = buf (name ^ ".out") [ elems ]; counts;
    is_elemwise = true; sem }

let flat_buffer b = { b with shape = [ List.fold_left ( * ) 1 b.shape ] }

let elemwise_counts (k : Op.elemwise_kind) =
  match k with
  | Relu -> { no_counts with fcmp = 1; iops = 1 }
  | Leaky_relu -> { no_counts with fcmp = 1; fmul = 1; iops = 1 }
  | Sigmoid | Tanh -> { no_counts with fadd = 1; fdiv = 1; fspecial = 1; iops = 1 }
  | Gelu -> { no_counts with fadd = 2; fmul = 3; fspecial = 1; iops = 1 }
  | Silu -> { no_counts with fadd = 1; fmul = 1; fdiv = 1; fspecial = 1; iops = 1 }

let binary_counts (k : Op.binary_kind) =
  match k with
  | Add | Sub -> { no_counts with fadd = 1; iops = 2 }
  | Mul -> { no_counts with fmul = 1; iops = 2 }

let single name st = { sg_name = name; stages = [ st ]; anchor = 0 }

let lower ~name (op : Op.t) : subgraph =
  match op with
  | Conv2d c -> single name (lower_conv2d name c)
  | Conv3d c -> single name (lower_conv3d name c)
  | Tconv2d c -> single name (lower_tconv2d name c)
  | Dense d -> single name (lower_dense name d)
  | Batch_matmul b -> single name (lower_batch_matmul name b)
  | Maxpool2d p -> single name (lower_pool2d ~is_max:true name p)
  | Avgpool2d p -> single name (lower_pool2d ~is_max:false name p)
  | Global_avgpool g ->
    single name (lower_global_avgpool name ~batch:g.batch ~chan:g.chan ~in_h:g.in_h ~in_w:g.in_w)
  | Softmax s -> lower_softmax name s
  | Layer_norm n -> lower_layer_norm name n
  | Batch_norm_infer b ->
    let elems = b.batch * b.chan * b.spatial in
    let input = buf (name ^ ".in") [ elems ] in
    let st =
      elemwise_stage name ~elems ~extra_read:(Some (buf (name ^ ".scale") [ elems ]))
        ~counts:{ no_counts with fadd = 1; fmul = 1; iops = 2 }
        ~sem:Sem_scale_shift ~prev_buffer:input
    in
    single name st
  | Elemwise (k, n) ->
    let input = buf (name ^ ".in") [ n ] in
    single name
      (elemwise_stage name ~elems:n ~extra_read:None ~counts:(elemwise_counts k)
         ~sem:(Sem_unary k) ~prev_buffer:input)
  | Binary (k, n) ->
    let a = buf (name ^ ".a") [ n ] and b = buf (name ^ ".b") [ n ] in
    single name
      (elemwise_stage name ~elems:n ~extra_read:(Some b) ~counts:(binary_counts k)
         ~sem:(Sem_binary k) ~prev_buffer:a)
  | Bias_add b ->
    let elems = b.rows * b.cols in
    let input = buf (name ^ ".in") [ elems ] in
    let bias = buf (name ^ ".bias") [ b.cols ] in
    (* The bias read repeats every row: model as a flat read of the bias
       vector with a stride-1 index modulo cols; for footprint purposes we
       keep the 1-D view and let the small buffer size carry the reuse. *)
    let st =
      { stage_name = name;
        axes = [| ax "r" b.rows Spatial; ax "c" b.cols Spatial |];
        reads =
          [ { buffer = buf (name ^ ".in2d") [ b.rows; b.cols ]; indices = [ simple 0; simple 1 ] };
            { buffer = bias; indices = [ simple 1 ] } ];
        write = buf (name ^ ".out") [ b.rows; b.cols ];
        counts = { no_counts with fadd = 1; iops = 2 };
        is_elemwise = true;
        sem = Sem_binary Op.Add }
    in
    ignore input;
    single name st
  | Concat c ->
    let total = List.fold_left ( + ) 0 c.parts * c.rest in
    let input = buf (name ^ ".in") [ total ] in
    single name
      (elemwise_stage name ~elems:total ~extra_read:None
         ~counts:{ no_counts with iops = 2 } ~sem:Sem_copy ~prev_buffer:input)

let fuse_elemwise sg ~name (op : Op.t) =
  let prev = output_buffer sg in
  let elems = List.fold_left ( * ) 1 prev.shape in
  let op_elems = List.fold_left ( * ) 1 (Op.output_shape op) in
  if op_elems <> elems then
    invalid_arg
      (Printf.sprintf "Compute.fuse_elemwise: %s has %d elements but subgraph output has %d"
         (Op.name op) op_elems elems);
  let st =
    match op with
    | Elemwise (k, _) ->
      elemwise_stage name ~elems ~extra_read:None ~counts:(elemwise_counts k)
        ~sem:(Sem_unary k) ~prev_buffer:(flat_buffer prev)
    | Binary (k, _) ->
      elemwise_stage name ~elems ~extra_read:(Some (buf (name ^ ".rhs") [ elems ]))
        ~counts:(binary_counts k) ~sem:(Sem_binary k) ~prev_buffer:(flat_buffer prev)
    | Bias_add _ ->
      (* The bias vector is read broadcast; the fused 1-D stage models it as
         a materialised per-element buffer (the bias itself is tiny, so the
         footprint difference is negligible). *)
      elemwise_stage name ~elems ~extra_read:(Some (buf (name ^ ".bias") [ elems ]))
        ~counts:{ no_counts with fadd = 1; iops = 2 }
        ~sem:(Sem_binary Op.Add) ~prev_buffer:(flat_buffer prev)
    | Batch_norm_infer _ ->
      elemwise_stage name ~elems ~extra_read:(Some (buf (name ^ ".scale") [ elems ]))
        ~counts:{ no_counts with fadd = 1; fmul = 1; iops = 2 }
        ~sem:Sem_scale_shift ~prev_buffer:(flat_buffer prev)
    | Conv2d _ | Conv3d _ | Tconv2d _ | Dense _ | Batch_matmul _ | Maxpool2d _
    | Avgpool2d _ | Global_avgpool _ | Softmax _ | Layer_norm _ | Concat _ ->
      invalid_arg
        (Printf.sprintf "Compute.fuse_elemwise: %s is not elementwise-fusable" (Op.name op))
  in
  { sg with stages = sg.stages @ [ st ] }

(* --- validation ----------------------------------------------------------- *)

let validate_stage st =
  let n_axes = Array.length st.axes in
  let check_access (a : access) =
    if List.length a.indices <> List.length a.buffer.shape then
      Error
        (Printf.sprintf "stage %s: access to %s has rank %d but buffer rank %d" st.stage_name
           a.buffer.buf_name (List.length a.indices) (List.length a.buffer.shape))
    else begin
      let ok = ref (Ok ()) in
      List.iteri
        (fun dim (ix : index) ->
          let dim_size = List.nth a.buffer.shape dim in
          let max_val =
            List.fold_left
              (fun acc (t : index_term) ->
                if t.axis < 0 || t.axis >= n_axes then max_int
                else acc + (t.coeff * (st.axes.(t.axis).extent - 1)))
              ix.offset ix.terms
          in
          if max_val = max_int then
            ok := Error (Printf.sprintf "stage %s: axis out of range in access" st.stage_name)
          else if max_val >= dim_size then
            ok :=
              Error
                (Printf.sprintf "stage %s: access to %s dim %d reaches %d >= size %d"
                   st.stage_name a.buffer.buf_name dim max_val dim_size))
        a.indices;
      !ok
    end
  in
  let rec check_all = function
    | [] -> Ok ()
    | a :: rest -> ( match check_access a with Ok () -> check_all rest | Error e -> Error e)
  in
  if Array.exists (fun a -> a.extent < 1) st.axes then
    Error (Printf.sprintf "stage %s: axis with extent < 1" st.stage_name)
  else check_all st.reads

let validate sg =
  if sg.anchor < 0 || sg.anchor >= List.length sg.stages then Error "anchor out of range"
  else
    List.fold_left
      (fun acc st -> match acc with Error _ -> acc | Ok () -> validate_stage st)
      (Ok ()) sg.stages

let workload_key sg =
  let stage_key st =
    let axes =
      Array.to_list st.axes
      |> List.map (fun a ->
             Printf.sprintf "%s%d" (match a.kind with Spatial -> "s" | Reduce -> "r") a.extent)
      |> String.concat ","
    in
    Printf.sprintf "[%s|r%d]" axes (List.length st.reads)
  in
  String.concat ";" (List.map stage_key sg.stages)
