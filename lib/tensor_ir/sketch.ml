let max_threads_per_block = 1024
let max_vthreads = 32
let max_vector_width = 4
let max_unroll = 512
let shared_memory_bytes = 48 * 1024

type var_acc = {
  mutable vars : Schedule.var list;  (* reversed *)
  mutable constraints : Expr.cond list;
  mutable div_groups : (int * string list) list;
}

let fresh acc name lo hi =
  let v = { Schedule.v_name = name; lo; hi } in
  acc.vars <- v :: acc.vars;
  acc.constraints <-
    Expr.(ge (var name) (const lo)) :: Expr.(le (var name) (const hi)) :: acc.constraints;
  Expr.var name

let add_constraint acc c = acc.constraints <- c :: acc.constraints
let add_div_group acc extent names =
  if names <> [] then acc.div_groups <- (extent, names) :: acc.div_groups

(* Variables are only created for axes with extent > 1; trivial axes keep the
   constant 1, shrinking the search dimension without losing any schedule. *)
let maybe_var acc name extent cap =
  if extent <= 1 then (Expr.one, None)
  else
    let hi = float_of_int (min extent cap) in
    (fresh acc name 1.0 hi, Some name)

let simple_plan acc prefix (st : Compute.stage) =
  let p = Compute.spatial_iterations st in
  let threads, tn = maybe_var acc (prefix ^ "_th") p max_threads_per_block in
  let inner, inn = maybe_var acc (prefix ^ "_in") p 64 in
  let vector, vn = maybe_var acc (prefix ^ "_vec") p max_vector_width in
  let unroll = fresh acc (prefix ^ "_un") 1.0 (float_of_int max_unroll) in
  add_constraint acc Expr.(le (mul threads (mul inner vector)) (int p));
  add_div_group acc p (List.filter_map Fun.id [ tn; inn; vn ]);
  Schedule.Simple_bind { threads; inner; vector; unroll }

let multi_tile_plan acc prefix (st : Compute.stage) =
  let spatial = Array.of_list (Compute.spatial_axes st) in
  let reduce = Array.of_list (Compute.reduce_axes st) in
  let vthread = Array.make (Array.length spatial) Expr.one in
  let thread = Array.make (Array.length spatial) Expr.one in
  let inner = Array.make (Array.length spatial) Expr.one in
  Array.iteri
    (fun k (a : Compute.axis) ->
      let n = a.extent in
      let pfx = Printf.sprintf "%s_%s" prefix a.axis_name in
      let v, vn = maybe_var acc (pfx ^ "_v") n max_vthreads in
      let t, tn = maybe_var acc (pfx ^ "_t") n max_threads_per_block in
      let i, inn = maybe_var acc (pfx ^ "_i") n 64 in
      vthread.(k) <- v;
      thread.(k) <- t;
      inner.(k) <- i;
      if n > 1 then add_constraint acc Expr.(le (mul v (mul t i)) (int n));
      add_div_group acc n (List.filter_map Fun.id [ vn; tn; inn ]))
    spatial;
  let reduce_split = Array.make (Array.length reduce) Expr.one in
  Array.iteri
    (fun k (a : Compute.axis) ->
      let n = a.extent in
      let r, rn = maybe_var acc (Printf.sprintf "%s_%s_r" prefix a.axis_name) n n in
      reduce_split.(k) <- r;
      add_div_group acc n (Option.to_list rn))
    reduce;
  let unroll = fresh acc (prefix ^ "_un") 1.0 (float_of_int max_unroll) in
  let total_threads = Expr.product (Array.to_list thread) in
  let total_vthreads = Expr.product (Array.to_list vthread) in
  add_constraint acc Expr.(le total_threads (int max_threads_per_block));
  add_constraint acc Expr.(le total_vthreads (int max_vthreads));
  let shared_cache = Array.length reduce > 0 in
  Schedule.Multi_tile { vthread; thread; inner; reduce_split; unroll; shared_cache }

let make_plans sg acc ~anchor_multi =
  let stages = Array.of_list sg.Compute.stages in
  Array.mapi
    (fun i (st : Compute.stage) ->
      let prefix = Printf.sprintf "s%d" i in
      if i = sg.Compute.anchor then
        if anchor_multi then multi_tile_plan acc prefix st else simple_plan acc prefix st
      else if st.is_elemwise && i > sg.Compute.anchor then Schedule.Inlined
      else simple_plan acc prefix st)
    stages

let finish sg name acc plans =
  let sched =
    { Schedule.sched_name = sg.Compute.sg_name ^ "." ^ name;
      plans;
      vars = List.rev acc.vars;
      constraints = List.rev acc.constraints;
      div_groups = List.rev acc.div_groups }
  in
  (* Shared-memory capacity is a constraint over the tile variables; it can
     only be written down once the symbolic program exists. *)
  let program = Loop_ir.apply sg sched in
  let shared =
    Array.fold_left (fun acc ss -> Expr.add acc (Loop_ir.shared_bytes ss)) Expr.zero
      program.Loop_ir.stages
  in
  let sched =
    if Expr.equal shared Expr.zero then sched
    else
      { sched with constraints = sched.constraints @ [ Expr.(le shared (int shared_memory_bytes)) ] }
  in
  sched

let generate sg =
  Telemetry.with_span Telemetry.global "sketch.generate"
    ~attrs:[ ("subgraph", Telemetry.Str sg.Compute.sg_name) ]
  @@ fun () ->
  let anchor_stage = List.nth sg.Compute.stages sg.Compute.anchor in
  let has_reduction = Compute.num_reduce anchor_stage > 0 in
  let simple =
    let acc = { vars = []; constraints = []; div_groups = [] } in
    let plans = make_plans sg acc ~anchor_multi:false in
    finish sg "simple" acc plans
  in
  let sketches =
    if has_reduction then begin
      let acc = { vars = []; constraints = []; div_groups = [] } in
      let plans = make_plans sg acc ~anchor_multi:true in
      let multi = finish sg "multitile" acc plans in
      [ simple; multi ]
    end
    else [ simple ]
  in
  Telemetry.Counter.incr ~by:(List.length sketches)
    (Telemetry.counter Telemetry.global "sketch.generated");
  sketches

let generate_programs sg =
  List.map (fun sched -> (sched, Loop_ir.apply sg sched)) (generate sg)
