(** Symbolic transformed programs p^* = T(p0, s^* ) (paper Section 3.2).

    A program pairs each stage of a subgraph with its applied schedule plan
    and exposes the quantities downstream passes need, all as expressions of
    the schedule variables:

    - launch geometry (grid size, block size, vthreads),
    - per-axis iteration ranges at block / thread scope,
    - buffer access footprints and contiguity,
    - a printable loop tree (pseudo-CUDA) for documentation and tests.

    The extents of every loop in the tree are {!Expr.t}; a concrete program
    is obtained by evaluating under an assignment of the schedule
    variables. *)

type scope = Block_scope | Thread_scope

type scheduled_stage = {
  stage : Compute.stage;
  plan : Schedule.stage_plan;
  fused_elemwise : Compute.stage list;
      (** [Inlined] consumers computed at this stage's inner tile. *)
}

type t = {
  subgraph : Compute.subgraph;
  schedule : Schedule.t;
  stages : scheduled_stage array;
      (** Stages that launch kernels ([Inlined] plans are folded into their
          anchor's [fused_elemwise] list). *)
}

val apply : Compute.subgraph -> Schedule.t -> t
(** Build the symbolic program. Raises [Invalid_argument] when the plan
    array length does not match the stage count or an [Inlined] plan has no
    preceding kernel stage. *)

(** {1 Launch geometry (per scheduled stage)} *)

val grid_size : scheduled_stage -> Expr.t
(** Number of thread blocks. *)

val block_threads : scheduled_stage -> Expr.t
(** threadIdx extent per block. *)

val vthreads : scheduled_stage -> Expr.t

val serial_spatial : scheduled_stage -> Expr.t
(** Spatial iterations each thread executes serially. *)

val reduce_iterations : scheduled_stage -> Expr.t
(** Reduction iterations per output element (1 if no reduction). *)

val unroll_step : scheduled_stage -> Expr.t
val vector_width : scheduled_stage -> Expr.t

val uses_shared_cache : scheduled_stage -> bool

(** {1 Access analysis} *)

val axis_range : scheduled_stage -> scope -> int -> Expr.t
(** [axis_range ss scope k] is the number of distinct values axis [k] of the
    stage takes within one block / one thread's serial work. Reduction axes
    range over their full extent in both scopes. *)

val access_footprint : scheduled_stage -> scope -> Compute.access -> Expr.t
(** Number of distinct elements of the buffer touched per block / thread. *)

val access_touched : scheduled_stage -> scope -> Compute.access -> Expr.t
(** Total (non-unique) element reads issued per block / thread. *)

val access_contiguous : scheduled_stage -> Compute.access -> bool
(** Whether the innermost-varying spatial axis indexes the last buffer
    dimension with coefficient 1 (coalescing proxy). *)

val shared_bytes : scheduled_stage -> Expr.t
(** Shared-memory bytes per block used by cooperative caching (0 unless
    [shared_cache]). *)

val flops_per_iteration : scheduled_stage -> float
(** Scalar float ops per innermost iteration, including fused elementwise
    consumers (their per-element cost amortised over reduction length 1). *)

(** {1 Printing} *)

val to_loop_tree_string : t -> string
(** Render the full program as an indented pseudo-CUDA loop nest, in the
    style of Figure 3's right column. *)
