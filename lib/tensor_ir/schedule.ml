type var = { v_name : string; lo : float; hi : float }

type stage_plan =
  | Inlined
  | Simple_bind of { threads : Expr.t; inner : Expr.t; vector : Expr.t; unroll : Expr.t }
  | Multi_tile of {
      vthread : Expr.t array;
      thread : Expr.t array;
      inner : Expr.t array;
      reduce_split : Expr.t array;
      unroll : Expr.t;
      shared_cache : bool;
    }

type step =
  | S_fuse of { stage : string; axes : string list }
  | S_split of { stage : string; axis : string; factors : Expr.t list }
  | S_reorder of { stage : string; order : string list }
  | S_bind of { stage : string; axis : string; thread : string }
  | S_cache_read of { stage : string; scope : string }
  | S_compute_at of { stage : string; target : string }
  | S_unroll of { stage : string; max_step : Expr.t }
  | S_vectorize of { stage : string; axis : string; factor : Expr.t }

type t = {
  sched_name : string;
  plans : stage_plan array;
  vars : var list;
  constraints : Expr.cond list;
  div_groups : (int * string list) list;
}

let var_names t = List.map (fun v -> v.v_name) t.vars
let num_vars t = List.length t.vars

let steps (sg : Compute.subgraph) t =
  let stage_steps (st : Compute.stage) plan =
    let name = st.Compute.stage_name in
    let spatial = Compute.spatial_axes st and reduce = Compute.reduce_axes st in
    let s_names = List.map (fun a -> a.Compute.axis_name) spatial in
    let r_names = List.map (fun a -> a.Compute.axis_name) reduce in
    match plan with
    | Inlined -> [ S_compute_at { stage = name; target = "anchor" } ]
    | Simple_bind { threads; inner; vector; unroll } ->
      [ S_fuse { stage = name; axes = s_names };
        S_split { stage = name; axis = "fused"; factors = [ threads; inner; vector ] };
        S_bind { stage = name; axis = "fused.0"; thread = "blockIdx.x" };
        S_bind { stage = name; axis = "fused.1"; thread = "threadIdx.x" };
        S_vectorize { stage = name; axis = "fused.3"; factor = vector };
        S_unroll { stage = name; max_step = unroll } ]
    | Multi_tile { vthread; thread; inner; reduce_split; unroll; shared_cache } ->
      let split_steps =
        List.concat
          (List.mapi
             (fun k ax ->
               [ S_split
                   { stage = name; axis = ax;
                     factors = [ vthread.(k); thread.(k); inner.(k) ] } ])
             s_names)
        @ List.concat
            (List.mapi
               (fun k ax -> [ S_split { stage = name; axis = ax; factors = [ reduce_split.(k) ] } ])
               r_names)
      in
      let order =
        List.map (fun a -> a ^ ".0") s_names
        @ List.map (fun a -> a ^ ".1") s_names
        @ List.map (fun a -> a ^ ".2") s_names
        @ List.map (fun a -> a ^ ".0") r_names
        @ List.map (fun a -> a ^ ".1") r_names
        @ List.map (fun a -> a ^ ".3") s_names
      in
      let cache = if shared_cache then [ S_cache_read { stage = name; scope = "shared" } ] else [] in
      split_steps
      @ [ S_reorder { stage = name; order };
          S_bind { stage = name; axis = "s.0(fused)"; thread = "blockIdx.x" };
          S_bind { stage = name; axis = "s.1(fused)"; thread = "vthread" };
          S_bind { stage = name; axis = "s.2(fused)"; thread = "threadIdx.x" } ]
      @ cache
      @ [ S_unroll { stage = name; max_step = unroll } ]
  in
  List.concat (List.mapi (fun i st -> stage_steps st t.plans.(i)) sg.Compute.stages)

let step_to_string =
  let exprs es = String.concat ", " (List.map Expr.to_string es) in
  function
  | S_fuse { stage; axes } -> Printf.sprintf "Fuse(stage=%s, axes=[%s])" stage (String.concat "," axes)
  | S_split { stage; axis; factors } ->
    Printf.sprintf "Split(stage=%s, axis=%s, factors=[%s])" stage axis (exprs factors)
  | S_reorder { stage; order } ->
    Printf.sprintf "Reorder(stage=%s, order=[%s])" stage (String.concat "," order)
  | S_bind { stage; axis; thread } ->
    Printf.sprintf "Annotation(stage=%s, axis=%s, annotation=\"%s\")" stage axis thread
  | S_cache_read { stage; scope } -> Printf.sprintf "CacheRead(stage=%s, scope=%s)" stage scope
  | S_compute_at { stage; target } ->
    Printf.sprintf "ComputeAt(stage=%s, target=%s)" stage target
  | S_unroll { stage; max_step } ->
    Printf.sprintf "Unroll(stage=%s, max_step=%s)" stage (Expr.to_string max_step)
  | S_vectorize { stage; axis; factor } ->
    Printf.sprintf "Vectorize(stage=%s, axis=%s, factor=%s)" stage axis (Expr.to_string factor)

let space_size t =
  (* Product over divisibility groups of (#divisors)^(#vars), times the
     range of the free (non-divisibility) variables like unroll. *)
  let div_vars =
    List.concat_map snd t.div_groups |> List.sort_uniq String.compare
  in
  let group_part =
    List.fold_left
      (fun acc (extent, vars) ->
        let d = float_of_int (List.length (Factorize.divisors extent)) in
        acc *. (d ** float_of_int (List.length vars)))
      1.0 t.div_groups
  in
  let free_part =
    List.fold_left
      (fun acc v ->
        if List.mem v.v_name div_vars then acc
        else acc *. max 1.0 (log (max 2.0 (v.hi -. v.lo +. 1.0)) /. log 2.0))
      1.0 t.vars
  in
  group_part *. free_part

let substitute t f =
  let sub_plan = function
    | Inlined -> Inlined
    | Simple_bind { threads; inner; vector; unroll } ->
      Simple_bind
        { threads = Expr.subst f threads; inner = Expr.subst f inner;
          vector = Expr.subst f vector; unroll = Expr.subst f unroll }
    | Multi_tile { vthread; thread; inner; reduce_split; unroll; shared_cache } ->
      Multi_tile
        { vthread = Array.map (Expr.subst f) vthread;
          thread = Array.map (Expr.subst f) thread;
          inner = Array.map (Expr.subst f) inner;
          reduce_split = Array.map (Expr.subst f) reduce_split;
          unroll = Expr.subst f unroll; shared_cache }
  in
  { t with
    plans = Array.map sub_plan t.plans;
    constraints = List.map (Expr.subst_cond f) t.constraints }
