(** CUDA-like source emission for scheduled programs.

    The real Felix hands its schedules to TVM, which emits CUDA. This
    module plays that role for inspection and documentation: it renders
    each kernel stage of a program as a CUDA-style [__global__] function —
    grid/block decomposition of the tile indices, reduction loops with the
    chosen splits, cooperative shared-memory staging, unroll pragmas, and
    the innermost statement derived from the stage's semantics with its
    real affine access expressions.

    Loop extents are printed from the symbolic expressions; pass a concrete
    assignment (e.g. from {!Pack.assignment}) through [subst] first to emit
    fully-numeric kernels. *)

val kernel_source : Loop_ir.scheduled_stage -> string
(** One [__global__] function for a kernel stage. *)

val program_source : Loop_ir.t -> string
(** All kernels of the program plus a launch comment per stage. *)
