type t = Float32 | Float16 | Int32 | Int8 | Bool

let size_bytes = function
  | Float32 -> 4
  | Float16 -> 2
  | Int32 -> 4
  | Int8 -> 1
  | Bool -> 1

let to_string = function
  | Float32 -> "float32"
  | Float16 -> "float16"
  | Int32 -> "int32"
  | Int8 -> "int8"
  | Bool -> "bool"

let equal a b = a = b
