(** Tensor operators.

    These are the node types of the computation graph (Section 3.1). The set
    covers every operator appearing in the paper's six evaluation networks:
    2-D/3-D/transposed convolutions, dense and batched matrix multiplies,
    pooling, softmax, normalisations, activations and elementwise
    arithmetic. Each operator knows its output shape, its floating-point
    work, and its memory footprint; the lowering to loop-nest stages lives
    in {!module:Compute}. *)

type conv2d = {
  batch : int;
  in_chan : int;
  out_chan : int;
  in_h : int;
  in_w : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  pad : int;
  groups : int;
}

type conv3d = {
  batch : int;
  in_chan : int;
  out_chan : int;
  in_d : int;
  in_h : int;
  in_w : int;
  kernel_d : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  pad : int;
}

type tconv2d = {
  batch : int;
  in_chan : int;
  out_chan : int;
  in_h : int;
  in_w : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  pad : int;
}

type dense = { batch : int; in_dim : int; out_dim : int }

type batch_matmul = { batch : int; m : int; k : int; n : int }

type pool2d = {
  batch : int;
  chan : int;
  in_h : int;
  in_w : int;
  kernel : int;
  stride : int;
  pad : int;
}

type softmax = { rows : int; cols : int }

type norm = { rows : int; cols : int }
(** Row-wise normalisation (layer norm over [cols]). *)

type elemwise_kind = Relu | Gelu | Sigmoid | Tanh | Silu | Leaky_relu

type binary_kind = Add | Mul | Sub

type t =
  | Conv2d of conv2d
  | Conv3d of conv3d
  | Tconv2d of tconv2d
  | Dense of dense
  | Batch_matmul of batch_matmul
  | Maxpool2d of pool2d
  | Avgpool2d of pool2d
  | Global_avgpool of { batch : int; chan : int; in_h : int; in_w : int }
  | Softmax of softmax
  | Layer_norm of norm
  | Batch_norm_infer of { batch : int; chan : int; spatial : int }
      (** Inference-time batch norm: per-channel scale and shift. *)
  | Elemwise of elemwise_kind * int  (** activation over [n] elements *)
  | Binary of binary_kind * int  (** elementwise binary over [n] elements *)
  | Bias_add of { rows : int; cols : int }
  | Concat of { parts : int list; rest : int }
      (** Concatenation along one axis; [parts] are the sizes along that
          axis, [rest] is the product of the other axes. *)

val output_shape : t -> int list
(** Logical output tensor shape. *)

val flops : t -> float
(** Total floating point operations (multiply-adds counted as 2). *)

val input_bytes : t -> float
(** Bytes of all inputs (weights included), fp32. *)

val output_bytes : t -> float

val name : t -> string
(** Operator kind name, e.g. ["conv2d"]. *)

val describe : t -> string
(** Human-readable one-liner with shapes, for logs and examples. *)

val is_compute_intensive : t -> bool
(** True for operators with a non-trivial reduction (conv/matmul family);
    used by the partitioner to decide fusion anchors. *)
