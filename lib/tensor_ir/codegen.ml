let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') name

let e2s = Expr.to_string

(* Affine access rendered as a flattened C index expression. *)
let access_expr (st : Compute.stage) (a : Compute.access) =
  let dim_expr (ix : Compute.index) =
    let terms =
      List.map
        (fun (t : Compute.index_term) ->
          let name = st.axes.(t.axis).Compute.axis_name in
          if t.coeff = 1 then name else Printf.sprintf "%d*%s" t.coeff name)
        ix.terms
    in
    let s = String.concat " + " terms in
    let s = if s = "" then "0" else s in
    if ix.offset = 0 then s else Printf.sprintf "%s + %d" s ix.offset
  in
  (* Row-major flattening over the buffer shape. *)
  let rec flatten dims idxs =
    match (dims, idxs) with
    | [], [] -> "0"
    | [ _ ], [ i ] -> i
    | _ :: (d2 :: _ as rest_dims), i :: rest_idxs ->
      ignore d2;
      let inner_size = List.fold_left ( * ) 1 rest_dims in
      Printf.sprintf "(%s) * %d + %s" i inner_size (flatten rest_dims rest_idxs)
    | _ -> invalid_arg "Codegen.access_expr: rank mismatch"
  in
  Printf.sprintf "%s[%s]" (sanitize a.buffer.buf_name)
    (flatten a.buffer.shape (List.map dim_expr a.indices))

let body_statement (st : Compute.stage) =
  let reads = List.map (access_expr st) st.reads in
  let r n = List.nth reads n in
  let acc = "acc" in
  match st.sem with
  | Compute.Sem_matmul -> Printf.sprintf "%s += %s * %s;" acc (r 0) (r 1)
  | Sem_reduce_sum | Sem_reduce_mean -> Printf.sprintf "%s += %s;" acc (r 0)
  | Sem_reduce_max -> Printf.sprintf "%s = fmaxf(%s, %s);" acc acc (r 0)
  | Sem_sum_exp_sub -> Printf.sprintf "%s += __expf(%s - %s);" acc (r 0) (r 1)
  | Sem_sum_sq_diff ->
    Printf.sprintf "{ float d = %s - %s; %s += d * d; }" (r 0) (r 1) acc
  | Sem_softmax_norm -> Printf.sprintf "out = __expf(%s - %s) / %s;" (r 0) (r 1) (r 2)
  | Sem_layernorm_norm -> Printf.sprintf "out = (%s - %s) * rsqrtf(%s + 1e-5f);" (r 0) (r 1) (r 2)
  | Sem_scale_shift -> Printf.sprintf "out = %s * %s + 0.1f;" (r 0) (r 1)
  | Sem_unary Op.Relu -> Printf.sprintf "out = fmaxf(%s, 0.f);" (r 0)
  | Sem_unary Op.Leaky_relu -> Printf.sprintf "out = %s >= 0.f ? %s : 0.01f * %s;" (r 0) (r 0) (r 0)
  | Sem_unary Op.Sigmoid -> Printf.sprintf "out = 1.f / (1.f + __expf(-%s));" (r 0)
  | Sem_unary Op.Tanh -> Printf.sprintf "out = tanhf(%s);" (r 0)
  | Sem_unary Op.Gelu -> Printf.sprintf "out = gelu(%s);" (r 0)
  | Sem_unary Op.Silu -> Printf.sprintf "out = %s / (1.f + __expf(-%s));" (r 0) (r 0)
  | Sem_binary Op.Add -> Printf.sprintf "out = %s + %s;" (r 0) (r 1)
  | Sem_binary Op.Sub -> Printf.sprintf "out = %s - %s;" (r 0) (r 1)
  | Sem_binary Op.Mul -> Printf.sprintf "out = %s * %s;" (r 0) (r 1)
  | Sem_copy -> Printf.sprintf "out = %s;" (r 0)

let write_statement (st : Compute.stage) has_reduce =
  let spatial = Compute.spatial_axes st in
  let shape = List.map (fun (a : Compute.axis) -> a.extent) spatial in
  let names = List.map (fun (a : Compute.axis) -> a.axis_name) spatial in
  let rec flatten dims idxs =
    match (dims, idxs) with
    | [], [] -> "0"
    | [ _ ], [ i ] -> i
    | _ :: (rest_dims : int list), i :: rest_idxs when rest_dims <> [] ->
      Printf.sprintf "(%s) * %d + %s" i (List.fold_left ( * ) 1 rest_dims)
        (flatten rest_dims rest_idxs)
    | _ -> "0"
  in
  Printf.sprintf "%s[%s] = %s;" (sanitize st.write.buf_name) (flatten shape names)
    (if has_reduce then "acc" else "out")

let signature (ss : Loop_ir.scheduled_stage) =
  let st = ss.stage in
  let buffers =
    List.map (fun (a : Compute.access) -> a.buffer.Compute.buf_name) st.reads
    @ [ st.write.buf_name ]
    |> List.sort_uniq String.compare
  in
  let params =
    List.map
      (fun b ->
        if b = st.write.Compute.buf_name then Printf.sprintf "float* %s" (sanitize b)
        else Printf.sprintf "const float* __restrict__ %s" (sanitize b))
      buffers
  in
  Printf.sprintf "__global__ void %s_kernel(%s)" (sanitize st.stage_name)
    (String.concat ", " params)

let kernel_source (ss : Loop_ir.scheduled_stage) =
  let st = ss.stage in
  let buf = Buffer.create 1024 in
  let line indent s =
    Buffer.add_string buf (String.make (2 * indent) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let spatial = Compute.spatial_axes st and reduce = Compute.reduce_axes st in
  let has_reduce = reduce <> [] in
  line 0
    (Printf.sprintf "// launch: grid = %s, block = %s, vthreads = %s"
       (e2s (Simplify.simplify (Loop_ir.grid_size ss)))
       (e2s (Simplify.simplify (Loop_ir.block_threads ss)))
       (e2s (Loop_ir.vthreads ss)));
  line 0 (signature ss ^ " {");
  (match ss.plan with
  | Schedule.Inlined -> line 1 "// (inlined into its consumer)"
  | Schedule.Simple_bind { threads; inner; vector; unroll } ->
    line 1
      (Printf.sprintf "int fused = (blockIdx.x * %s + threadIdx.x) * %s;" (e2s threads)
         (e2s (Expr.mul inner vector)));
    line 1 (Printf.sprintf "#pragma unroll %s" (e2s unroll));
    line 1 (Printf.sprintf "for (int s = 0; s < %s; ++s) {" (e2s (Expr.mul inner vector)));
    (* decompose the flat index into the spatial axes *)
    let rest = ref "(fused + s)" in
    let spatial_arr = Array.of_list spatial in
    for k = Array.length spatial_arr - 1 downto 0 do
      let a = spatial_arr.(k) in
      if k = 0 then line 2 (Printf.sprintf "int %s = %s;" a.Compute.axis_name !rest)
      else begin
        line 2 (Printf.sprintf "int %s = %s %% %d;" a.Compute.axis_name !rest a.extent);
        rest := Printf.sprintf "(%s / %d)" !rest a.extent
      end
    done;
    if has_reduce then begin
      line 2 "float acc = 0.f;";
      List.iter
        (fun (a : Compute.axis) ->
          line 2 (Printf.sprintf "for (int %s = 0; %s < %d; ++%s)" a.axis_name a.axis_name
                    a.extent a.axis_name))
        reduce;
      line 3 (body_statement st);
      line 2 (write_statement st true)
    end
    else begin
      line 2 "float out;";
      line 2 (body_statement st);
      line 2 (write_statement st false)
    end;
    line 1 "}"
  | Schedule.Multi_tile { vthread; thread; inner; reduce_split; unroll; shared_cache } ->
    let sp = Array.of_list spatial and rd = Array.of_list reduce in
    line 1 "// tile decomposition: axis = ((outer * VT + vt) * T + t) * I + i";
    Array.iteri
      (fun k (a : Compute.axis) ->
        line 1
          (Printf.sprintf "int %s_o = /* blockIdx.x digit %d */ 0; // extent %s" a.axis_name k
             (e2s
                (Simplify.simplify
                   (Expr.div (Expr.int a.extent)
                      (Expr.mul vthread.(k) (Expr.mul thread.(k) inner.(k))))))))
      sp;
    Array.iteri
      (fun k (a : Compute.axis) ->
        line 1
          (Printf.sprintf "int %s_t = /* threadIdx.x digit %d */ 0; // extent %s" a.axis_name k
             (e2s thread.(k))))
      sp;
    if shared_cache then begin
      line 1
        (Printf.sprintf "__shared__ float staging[%s / 4];"
           (e2s (Simplify.simplify (Loop_ir.shared_bytes ss))))
    end;
    line 1 "float acc[/* register tile */];";
    Array.iteri
      (fun k (a : Compute.axis) ->
        line 1
          (Printf.sprintf "for (int %s_r0 = 0; %s_r0 < %s; ++%s_r0) {" a.axis_name a.axis_name
             (e2s (Simplify.simplify (Expr.div (Expr.int a.extent) reduce_split.(k))))
             a.axis_name))
      rd;
    if shared_cache then begin
      line 2 "// cooperative fetch of the input tiles";
      line 2 "__syncthreads();"
    end;
    line 2 (Printf.sprintf "#pragma unroll %s" (e2s unroll));
    Array.iteri
      (fun k (a : Compute.axis) ->
        line 2
          (Printf.sprintf "for (int %s_r1 = 0; %s_r1 < %s; ++%s_r1)" a.axis_name a.axis_name
             (e2s reduce_split.(k)) a.axis_name))
      rd;
    Array.iteri
      (fun k (a : Compute.axis) ->
        line 3
          (Printf.sprintf "for (int %s_i = 0; %s_i < %s; ++%s_i) // vthread %s" a.axis_name
             a.axis_name (e2s inner.(k)) a.axis_name (e2s vthread.(k))))
      sp;
    line 4 (body_statement st);
    Array.iter (fun _ -> line 1 "}") rd;
    line 1 ("// epilogue: " ^ write_statement st has_reduce);
    List.iter
      (fun (fs : Compute.stage) ->
        line 1 (Printf.sprintf "// fused consumer: %s" (body_statement fs)))
      ss.fused_elemwise);
  line 0 "}";
  Buffer.contents buf

let program_source (p : Loop_ir.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "// generated by felix codegen: %s (%s)\n\n"
       p.Loop_ir.subgraph.Compute.sg_name p.Loop_ir.schedule.Schedule.sched_name);
  Array.iter
    (fun ss ->
      Buffer.add_string buf (kernel_source ss);
      Buffer.add_char buf '\n')
    p.Loop_ir.stages;
  Buffer.contents buf
