(** Sketch generation: from a subgraph to its symbolic schedules.

    Mirrors Ansor's sketch generation (paper Sections 3.2 and 4): every
    subgraph yields one or more schedule skeletons whose tunable parameters
    Felix annotates with symbolic variables. Compute-intensive anchors get
    both the {e simple} fuse-and-bind sketch and the {e multi-level tiling}
    sketch (with cooperative shared-memory caching and fused elementwise
    consumers); memory-bound subgraphs get the simple sketch only — exactly
    the two schedules shown for Dense-Add in Figure 3.

    Generated variable bounds and legality constraints:
    - every split factor [v] satisfies [1 <= v <= extent];
    - per-axis tile products are bounded by the axis extent;
    - threads per block bounded by 1024, vthreads by 32, vector width by 4;
    - with shared caching, the per-block cached bytes must fit the GPU's
      shared memory (48 KiB);
    - divisibility ([extent mod v = 0]) is tracked as a rounding group, not
      a penalty (Section 3.3's factor-rounding treatment). *)

val max_threads_per_block : int
val max_vthreads : int
val max_vector_width : int
val max_unroll : int
val shared_memory_bytes : int

val generate : Compute.subgraph -> Schedule.t list
(** Symbolic schedules for the subgraph, most aggressive last. Every
    returned schedule satisfies [Array.length plans = number of stages]. *)

val generate_programs : Compute.subgraph -> (Schedule.t * Loop_ir.t) list
(** Schedules paired with their symbolic programs p^* (convenience for the
    feature extractor and the tuners). *)
