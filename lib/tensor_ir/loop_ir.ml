type scope = Block_scope | Thread_scope

type scheduled_stage = {
  stage : Compute.stage;
  plan : Schedule.stage_plan;
  fused_elemwise : Compute.stage list;
}

type t = {
  subgraph : Compute.subgraph;
  schedule : Schedule.t;
  stages : scheduled_stage array;
}

let apply (sg : Compute.subgraph) (sched : Schedule.t) =
  let stages = Array.of_list sg.stages in
  if Array.length sched.plans <> Array.length stages then
    invalid_arg "Loop_ir.apply: plan/stage count mismatch";
  let out = ref [] in
  Array.iteri
    (fun i st ->
      match sched.plans.(i) with
      | Schedule.Inlined -> (
        match !out with
        | [] -> invalid_arg "Loop_ir.apply: Inlined plan with no preceding kernel stage"
        | ss :: rest -> out := { ss with fused_elemwise = ss.fused_elemwise @ [ st ] } :: rest)
      | plan -> out := { stage = st; plan; fused_elemwise = [] } :: !out)
    stages;
  { subgraph = sg; schedule = sched; stages = Array.of_list (List.rev !out) }

(* --- geometry -------------------------------------------------------------- *)

let spatial_extents ss = Compute.spatial_axes ss.stage |> List.map (fun a -> a.Compute.extent)
let reduce_extents ss = Compute.reduce_axes ss.stage |> List.map (fun a -> a.Compute.extent)

let int_product l = List.fold_left ( * ) 1 l

let expr_product = Expr.product

let grid_size ss =
  match ss.plan with
  | Schedule.Inlined -> Expr.one
  | Schedule.Simple_bind { threads; inner; vector; _ } ->
    let p = Expr.int (int_product (spatial_extents ss)) in
    Expr.(div p (mul threads (mul inner vector)))
  | Schedule.Multi_tile { vthread; thread; inner; _ } ->
    let exts = spatial_extents ss in
    expr_product
      (List.mapi
         (fun k n ->
           Expr.(div (int n) (mul vthread.(k) (mul thread.(k) inner.(k)))))
         exts)

let block_threads ss =
  match ss.plan with
  | Schedule.Inlined -> Expr.one
  | Schedule.Simple_bind { threads; _ } -> threads
  | Schedule.Multi_tile { thread; _ } -> expr_product (Array.to_list thread)

let vthreads ss =
  match ss.plan with
  | Schedule.Inlined | Schedule.Simple_bind _ -> Expr.one
  | Schedule.Multi_tile { vthread; _ } -> expr_product (Array.to_list vthread)

let serial_spatial ss =
  match ss.plan with
  | Schedule.Inlined -> Expr.one
  | Schedule.Simple_bind { inner; vector; _ } -> Expr.mul inner vector
  | Schedule.Multi_tile { vthread; inner; _ } ->
    expr_product (List.map2 Expr.mul (Array.to_list vthread) (Array.to_list inner))

let reduce_iterations ss = Expr.int (int_product (reduce_extents ss))

let unroll_step ss =
  match ss.plan with
  | Schedule.Inlined -> Expr.one
  | Schedule.Simple_bind { unroll; _ } | Schedule.Multi_tile { unroll; _ } -> unroll

let vector_width ss =
  match ss.plan with
  | Schedule.Inlined | Schedule.Multi_tile _ -> Expr.one
  | Schedule.Simple_bind { vector; _ } -> vector

let uses_shared_cache ss =
  match ss.plan with
  | Schedule.Multi_tile { shared_cache; _ } -> shared_cache
  | Schedule.Inlined | Schedule.Simple_bind _ -> false

(* --- access analysis ------------------------------------------------------- *)

(* Spatial axes of a stage in order, with their position among spatial axes. *)
let spatial_positions ss =
  let pos = ref (-1) in
  Array.map
    (fun (a : Compute.axis) ->
      match a.kind with
      | Compute.Spatial ->
        incr pos;
        Some !pos
      | Compute.Reduce -> None)
    ss.stage.axes

(* For fused-spatial plans: how many distinct values axis [k] takes when a
   flat tile of [tile] consecutive fused iterations executes. The fused
   index enumerates axes row-major (last axis fastest), so a tile of size T
   covers min(N_k, max(1, T / prod_{j>k} N_j)) values of axis k. *)
let fused_axis_range (exts : int array) k tile =
  let after = ref 1 in
  Array.iteri (fun j n -> if j > k then after := !after * n) exts;
  Expr.(min_ (int exts.(k)) (max_ one (div tile (int !after))))

let axis_range ss scope k =
  let ax = ss.stage.axes.(k) in
  match ax.kind with
  | Compute.Reduce -> Expr.int ax.extent
  | Compute.Spatial -> (
    let positions = spatial_positions ss in
    let spos = match positions.(k) with Some p -> p | None -> assert false in
    match ss.plan with
    | Schedule.Inlined -> Expr.one
    | Schedule.Simple_bind { threads; inner; vector; _ } ->
      let exts = Array.of_list (spatial_extents ss) in
      let tile =
        match scope with
        | Block_scope -> Expr.(mul threads (mul inner vector))
        | Thread_scope -> Expr.mul inner vector
      in
      fused_axis_range exts spos tile
    | Schedule.Multi_tile { vthread; thread; inner; _ } -> (
      match scope with
      | Block_scope -> Expr.(mul vthread.(spos) (mul thread.(spos) inner.(spos)))
      | Thread_scope -> Expr.mul vthread.(spos) inner.(spos)))

let index_range ss scope (ix : Compute.index) =
  List.fold_left
    (fun acc (t : Compute.index_term) ->
      let r = axis_range ss scope t.axis in
      Expr.(add acc (mul (int (abs t.coeff)) (sub r one))))
    Expr.one ix.terms

let access_footprint ss scope (a : Compute.access) =
  expr_product (List.map (index_range ss scope) a.indices)

let iterations_in_scope ss scope =
  let per_thread = Expr.mul (serial_spatial ss) (reduce_iterations ss) in
  match scope with
  | Thread_scope -> per_thread
  | Block_scope -> Expr.mul per_thread (block_threads ss)

let access_touched ss scope (_a : Compute.access) = iterations_in_scope ss scope

let access_contiguous ss (a : Compute.access) =
  (* The innermost-varying axis is the last spatial axis of the stage (the
     innermost serial loop / vector lane). The access coalesces if that axis
     appears in the last buffer dimension with coefficient 1. *)
  let last_spatial =
    let idx = ref (-1) in
    Array.iteri (fun i (ax : Compute.axis) -> if ax.kind = Compute.Spatial then idx := i)
      ss.stage.axes;
    !idx
  in
  match List.rev a.indices with
  | [] -> false
  | last :: _ ->
    List.exists (fun (t : Compute.index_term) -> t.axis = last_spatial && t.coeff = 1) last.terms

let shared_bytes ss =
  match ss.plan with
  | Schedule.Multi_tile ({ shared_cache = true; reduce_split; _ } as _mt) ->
    (* Cached tile: spatial dims at block scope, reduction dims restricted to
       the inner reduction split. *)
    let reduce_pos = ref (-1) in
    let positions =
      Array.map
        (fun (a : Compute.axis) ->
          match a.kind with
          | Compute.Reduce ->
            incr reduce_pos;
            Some !reduce_pos
          | Compute.Spatial -> None)
        ss.stage.axes
    in
    let tile_axis_range k =
      let ax = ss.stage.axes.(k) in
      match ax.kind with
      | Compute.Spatial -> axis_range ss Block_scope k
      | Compute.Reduce -> (
        match positions.(k) with Some p -> reduce_split.(p) | None -> assert false)
    in
    let index_range (ix : Compute.index) =
      List.fold_left
        (fun acc (t : Compute.index_term) ->
          Expr.(add acc (mul (int (abs t.coeff)) (sub (tile_axis_range t.axis) one))))
        Expr.one ix.terms
    in
    let per_access (a : Compute.access) =
      Expr.mul
        (expr_product (List.map index_range a.indices))
        (Expr.int (Dtype.size_bytes a.buffer.dtype))
    in
    Expr.sum (List.map per_access ss.stage.reads)
  | Schedule.Multi_tile _ | Schedule.Inlined | Schedule.Simple_bind _ -> Expr.zero

let counts_total (c : Compute.op_counts) = c.fadd + c.fmul + c.fdiv + c.fspecial + c.fcmp

let flops_per_iteration ss =
  let base = float_of_int (counts_total ss.stage.counts) in
  let red = float_of_int (int_product (reduce_extents ss)) in
  let fused =
    List.fold_left (fun acc st -> acc +. float_of_int (counts_total st.Compute.counts)) 0.0
      ss.fused_elemwise
  in
  base +. (fused /. max 1.0 red)

(* --- printing --------------------------------------------------------------- *)

let pp_access buf (a : Compute.access) (st : Compute.stage) =
  let dim ix =
    let terms =
      List.map
        (fun (t : Compute.index_term) ->
          let name = st.axes.(t.axis).Compute.axis_name in
          if t.coeff = 1 then name else Printf.sprintf "%d*%s" t.coeff name)
        ix.Compute.terms
    in
    let s = String.concat "+" terms in
    if ix.Compute.offset = 0 then s else Printf.sprintf "%s+%d" s ix.offset
  in
  Buffer.add_string buf a.buffer.buf_name;
  Buffer.add_char buf '[';
  Buffer.add_string buf (String.concat ", " (List.map dim a.indices));
  Buffer.add_char buf ']'

let to_loop_tree_string t =
  let buf = Buffer.create 2048 in
  let line indent s =
    Buffer.add_string buf (String.make (2 * indent) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  Array.iter
    (fun ss ->
      let st = ss.stage in
      line 0 (Printf.sprintf "// stage %s" st.Compute.stage_name);
      let body_indent =
        match ss.plan with
        | Schedule.Inlined -> 0
        | Schedule.Simple_bind { threads; inner; vector; unroll } ->
          line 0
            (Printf.sprintf "for fused.0 in (0, %s)  // blockIdx.x"
               (Expr.to_string (grid_size ss)));
          line 1 (Printf.sprintf "for fused.1 in (0, %s)  // threadIdx.x" (Expr.to_string threads));
          line 2 (Printf.sprintf "// auto_unroll(%s)" (Expr.to_string unroll));
          line 2 (Printf.sprintf "for fused.2 in (0, %s)" (Expr.to_string inner));
          List.iter
            (fun (ax : Compute.axis) ->
              if ax.kind = Compute.Reduce then
                line 3 (Printf.sprintf "for %s in (0, %d)" ax.axis_name ax.extent))
            (Array.to_list st.axes);
          line 3 (Printf.sprintf "vectorize(%s):" (Expr.to_string vector));
          4
        | Schedule.Multi_tile { vthread; thread; inner; reduce_split; unroll; shared_cache } ->
          let spatial = Compute.spatial_axes st and reduce = Compute.reduce_axes st in
          line 0
            (Printf.sprintf "for s.0 in (0, %s)  // blockIdx.x (fused %s)"
               (Expr.to_string (grid_size ss))
               (String.concat "," (List.map (fun a -> a.Compute.axis_name ^ ".0") spatial)));
          List.iteri
            (fun k (a : Compute.axis) ->
              line 1
                (Printf.sprintf "for %s.1 in (0, %s)  // vthread" a.axis_name
                   (Expr.to_string vthread.(k))))
            spatial;
          List.iteri
            (fun k (a : Compute.axis) ->
              line 2
                (Printf.sprintf "for %s.2 in (0, %s)  // threadIdx.x" a.axis_name
                   (Expr.to_string thread.(k))))
            spatial;
          line 3 (Printf.sprintf "// auto_unroll(%s)" (Expr.to_string unroll));
          List.iteri
            (fun k (a : Compute.axis) ->
              line 3
                (Printf.sprintf "for %s.0 in (0, %s)" a.axis_name
                   (Expr.to_string (Expr.div (Expr.int a.extent) reduce_split.(k)))))
            reduce;
          if shared_cache then
            line 4
              (Printf.sprintf "shared_load(...)  // cooperative fetch, %s bytes/block"
                 (Expr.to_string (Simplify.simplify (shared_bytes ss))));
          List.iteri
            (fun k (a : Compute.axis) ->
              line 4
                (Printf.sprintf "for %s.1 in (0, %s)" a.axis_name (Expr.to_string reduce_split.(k))))
            reduce;
          List.iteri
            (fun k (a : Compute.axis) ->
              line 5
                (Printf.sprintf "for %s.3 in (0, %s)" a.axis_name (Expr.to_string inner.(k))))
            spatial;
          6
      in
      (match ss.plan with
      | Schedule.Inlined -> ()
      | Schedule.Simple_bind _ | Schedule.Multi_tile _ ->
        let body = Buffer.create 128 in
        Buffer.add_string body (st.write.buf_name ^ "[...]");
        Buffer.add_string body (if Compute.num_reduce st > 0 then " += " else " = ");
        let reads = List.map (fun a -> let b = Buffer.create 32 in pp_access b a st; Buffer.contents b) st.reads in
        Buffer.add_string body (String.concat " (*) " reads);
        line body_indent (Buffer.contents body);
        List.iter
          (fun (fs : Compute.stage) ->
            line body_indent (Printf.sprintf "// fused: %s" fs.stage_name))
          ss.fused_elemwise))
    t.stages;
  Buffer.contents buf
