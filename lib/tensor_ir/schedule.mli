(** Symbolic schedules (paper Section 3.2).

    A schedule is a sequence of program transformations whose tunable
    parameters are symbolic variables. As in Ansor, schedules are generated
    from {e sketches}; Felix annotates sketch parameters with variables
    instead of concrete integers, and tracks the legality constraints
    [c_iq] over those variables.

    Two sketch skeletons cover the GPU search space of the paper (Figure 3
    shows both for the Dense-Add subgraph):

    - {e Simple}: fuse all spatial axes, split [thread x inner x vector],
      bind block/thread indices, keep reductions serial, auto-unroll.
    - {e Multi-tile}: Ansor's multi-level tiling S-S-S-R-R-S with vthread
      and thread bindings, cooperative shared-memory caching of the anchor
      reads, fused elementwise consumers, auto-unroll. *)

type var = {
  v_name : string;
  lo : float;  (** inclusive lower bound of the relaxed domain *)
  hi : float;  (** inclusive upper bound *)
}

(** Per-stage transformation plan. Array fields are indexed like the
    stage's spatial/reduction axes. *)
type stage_plan =
  | Inlined
      (** Elementwise stage fused into the anchor (ComputeAt). *)
  | Simple_bind of {
      threads : Expr.t;  (** threadIdx.x extent *)
      inner : Expr.t;  (** serial elements per thread *)
      vector : Expr.t;  (** vectorised innermost width *)
      unroll : Expr.t;  (** auto_unroll max_step *)
    }
  | Multi_tile of {
      vthread : Expr.t array;  (** per spatial axis: vthread split *)
      thread : Expr.t array;  (** per spatial axis: threadIdx split *)
      inner : Expr.t array;  (** per spatial axis: innermost serial split *)
      reduce_split : Expr.t array;  (** per reduction axis: inner split *)
      unroll : Expr.t;
      shared_cache : bool;  (** cooperative fetch of reads into shared *)
    }

type step =
  | S_fuse of { stage : string; axes : string list }
  | S_split of { stage : string; axis : string; factors : Expr.t list }
  | S_reorder of { stage : string; order : string list }
  | S_bind of { stage : string; axis : string; thread : string }
  | S_cache_read of { stage : string; scope : string }
  | S_compute_at of { stage : string; target : string }
  | S_unroll of { stage : string; max_step : Expr.t }
  | S_vectorize of { stage : string; axis : string; factor : Expr.t }
      (** Printable transformation steps, reconstructed from the plans for
          display (Figure 3 style) and for the step-count statistics. *)

type t = {
  sched_name : string;  (** e.g. ["dense0.sketch1"] *)
  plans : stage_plan array;  (** one per stage of the subgraph *)
  vars : var list;  (** all symbolic variables, deterministic order *)
  constraints : Expr.cond list;  (** legality constraints c_iq *)
  div_groups : (int * string list) list;
      (** Divisibility groups: [(extent, vars)] — the product of the listed
          variables must divide [extent]; enforced by log-space rounding. *)
}

val var_names : t -> string list
val num_vars : t -> int

val steps : Compute.subgraph -> t -> step list
(** Reconstruct the printable transformation-step list of a schedule. *)

val step_to_string : step -> string

val space_size : t -> float
(** Approximate number of concrete schedules spanned (product of divisor
    counts and ranges), for search-space reporting. *)

val substitute : t -> (string -> Expr.t option) -> t
(** Substitute variables inside every plan expression and constraint (used
    to turn a symbolic schedule into a concrete one for display). *)
