(** Compute definitions: the "initial program" p0 of Figure 1.

    Every operator lowers to one or more {e stages}. A stage is a perfectly
    nested loop over named axes (spatial axes produce one output element
    each; reduction axes accumulate), a set of buffer reads with affine
    access indices, and per-iteration arithmetic counts. A {e subgraph} is
    an ordered list of stages produced by operator fusion (Section 3.1);
    the {e anchor} stage is the compute-intensive one the scheduler tiles.

    Affine access indices are expressive enough for every operator in the
    paper's six networks (convolutions access [oh*stride + kh], matmuls
    access plain axes, elementwise stages access identity indices). *)

type axis_kind = Spatial | Reduce

type axis = { axis_name : string; extent : int; kind : axis_kind }

type index_term = { axis : int; coeff : int }
(** [axis] indexes into the stage's [axes] array. *)

type index = { terms : index_term list; offset : int }
(** Affine index: [sum (coeff * axis_value) + offset]. *)

type buffer = { buf_name : string; shape : int list; dtype : Dtype.t }

type access = { buffer : buffer; indices : index list }

type op_counts = {
  fadd : int;
  fmul : int;
  fdiv : int;
  fspecial : int;  (** exp, sqrt, tanh, erf... *)
  fcmp : int;
  iops : int;  (** integer address arithmetic per iteration *)
}

(** Executable meaning of a stage's innermost statement; drives the
    reference interpreter ({!module:Interp}) that validates schedule
    transformations end-to-end. *)
type semantics =
  | Sem_matmul  (** acc += read0 * read1 (matmul / convolution family) *)
  | Sem_reduce_sum  (** acc += read0 *)
  | Sem_reduce_mean  (** acc += read0, divided by the reduction count *)
  | Sem_reduce_max  (** acc = max acc read0 *)
  | Sem_sum_exp_sub  (** acc += exp (read0 - read1) (softmax denominator) *)
  | Sem_sum_sq_diff  (** acc += (read0 - read1)^2 / count (variance) *)
  | Sem_softmax_norm  (** exp (read0 - read1) / read2 *)
  | Sem_layernorm_norm  (** (read0 - read1) / sqrt (read2 + eps) *)
  | Sem_scale_shift  (** read0 * read1 + 0.1 (folded batch-norm) *)
  | Sem_unary of Op.elemwise_kind
  | Sem_binary of Op.binary_kind
  | Sem_copy

type stage = {
  stage_name : string;
  axes : axis array;  (** spatial axes first, then reduction axes *)
  reads : access list;
  write : buffer;
  counts : op_counts;
  is_elemwise : bool;  (** identity-indexed consumer of the previous stage *)
  sem : semantics;
}

type subgraph = {
  sg_name : string;
  stages : stage list;  (** producer order; the last stage writes the output *)
  anchor : int;  (** index of the stage the scheduler tiles *)
}

val no_counts : op_counts
val fma_counts : op_counts
(** One multiply + one add (the inner loop of matmul/conv). *)

val spatial_axes : stage -> axis list
val reduce_axes : stage -> axis list

val num_spatial : stage -> int
val num_reduce : stage -> int

val spatial_iterations : stage -> int
(** Product of spatial extents = number of output elements. *)

val reduce_iterations : stage -> int

val stage_flops : stage -> float
(** Total scalar float ops of the stage. *)

val subgraph_flops : subgraph -> float

val output_buffer : subgraph -> buffer

val lower : name:string -> Op.t -> subgraph
(** Lower a single operator to its naive subgraph. *)

val fuse_elemwise : subgraph -> name:string -> Op.t -> subgraph
(** Append an elementwise operator (activation, bias add, residual add,
    inference batch-norm) as a fused consumer stage. Raises
    [Invalid_argument] if the operator is not elementwise-fusable or if the
    element count does not match the subgraph output. *)

val validate : subgraph -> (unit, string) result
(** Structural invariants: axis indices in range, access ranks match buffer
    ranks, affine indices stay within buffer bounds at loop extremes, anchor
    in range. Exercised heavily by the property tests. *)

val workload_key : subgraph -> string
(** Stable identity of the tuning task (operator kinds + shapes), used to
    group equal subgraphs so they are tuned once, as TVM does. *)
