type conv2d = {
  batch : int;
  in_chan : int;
  out_chan : int;
  in_h : int;
  in_w : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  pad : int;
  groups : int;
}

type conv3d = {
  batch : int;
  in_chan : int;
  out_chan : int;
  in_d : int;
  in_h : int;
  in_w : int;
  kernel_d : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  pad : int;
}

type tconv2d = {
  batch : int;
  in_chan : int;
  out_chan : int;
  in_h : int;
  in_w : int;
  kernel_h : int;
  kernel_w : int;
  stride : int;
  pad : int;
}

type dense = { batch : int; in_dim : int; out_dim : int }
type batch_matmul = { batch : int; m : int; k : int; n : int }

type pool2d = {
  batch : int;
  chan : int;
  in_h : int;
  in_w : int;
  kernel : int;
  stride : int;
  pad : int;
}

type softmax = { rows : int; cols : int }
type norm = { rows : int; cols : int }
type elemwise_kind = Relu | Gelu | Sigmoid | Tanh | Silu | Leaky_relu
type binary_kind = Add | Mul | Sub

type t =
  | Conv2d of conv2d
  | Conv3d of conv3d
  | Tconv2d of tconv2d
  | Dense of dense
  | Batch_matmul of batch_matmul
  | Maxpool2d of pool2d
  | Avgpool2d of pool2d
  | Global_avgpool of { batch : int; chan : int; in_h : int; in_w : int }
  | Softmax of softmax
  | Layer_norm of norm
  | Batch_norm_infer of { batch : int; chan : int; spatial : int }
  | Elemwise of elemwise_kind * int
  | Binary of binary_kind * int
  | Bias_add of { rows : int; cols : int }
  | Concat of { parts : int list; rest : int }

let conv2d_out (c : conv2d) =
  let oh = ((c.in_h + (2 * c.pad) - c.kernel_h) / c.stride) + 1 in
  let ow = ((c.in_w + (2 * c.pad) - c.kernel_w) / c.stride) + 1 in
  (oh, ow)

let conv3d_out (c : conv3d) =
  let od = ((c.in_d + (2 * c.pad) - c.kernel_d) / c.stride) + 1 in
  let oh = ((c.in_h + (2 * c.pad) - c.kernel_h) / c.stride) + 1 in
  let ow = ((c.in_w + (2 * c.pad) - c.kernel_w) / c.stride) + 1 in
  (od, oh, ow)

let tconv2d_out (c : tconv2d) =
  let oh = ((c.in_h - 1) * c.stride) - (2 * c.pad) + c.kernel_h in
  let ow = ((c.in_w - 1) * c.stride) - (2 * c.pad) + c.kernel_w in
  (oh, ow)

let pool2d_out (p : pool2d) =
  let oh = ((p.in_h + (2 * p.pad) - p.kernel) / p.stride) + 1 in
  let ow = ((p.in_w + (2 * p.pad) - p.kernel) / p.stride) + 1 in
  (oh, ow)

let output_shape = function
  | Conv2d c ->
    let oh, ow = conv2d_out c in
    [ c.batch; c.out_chan; oh; ow ]
  | Conv3d c ->
    let od, oh, ow = conv3d_out c in
    [ c.batch; c.out_chan; od; oh; ow ]
  | Tconv2d c ->
    let oh, ow = tconv2d_out c in
    [ c.batch; c.out_chan; oh; ow ]
  | Dense d -> [ d.batch; d.out_dim ]
  | Batch_matmul b -> [ b.batch; b.m; b.n ]
  | Maxpool2d p | Avgpool2d p ->
    let oh, ow = pool2d_out p in
    [ p.batch; p.chan; oh; ow ]
  | Global_avgpool g -> [ g.batch; g.chan; 1; 1 ]
  | Softmax s -> [ s.rows; s.cols ]
  | Layer_norm n -> [ n.rows; n.cols ]
  | Batch_norm_infer b -> [ b.batch; b.chan; b.spatial ]
  | Elemwise (_, n) -> [ n ]
  | Binary (_, n) -> [ n ]
  | Bias_add b -> [ b.rows; b.cols ]
  | Concat c -> [ List.fold_left ( + ) 0 c.parts; c.rest ]

let num_elements op = List.fold_left ( * ) 1 (output_shape op) |> float_of_int

let flops = function
  | Conv2d c ->
    let oh, ow = conv2d_out c in
    2.0
    *. float_of_int (c.batch * c.out_chan * oh * ow)
    *. float_of_int (c.in_chan / c.groups * c.kernel_h * c.kernel_w)
  | Conv3d c ->
    let od, oh, ow = conv3d_out c in
    2.0
    *. float_of_int (c.batch * c.out_chan * od * oh * ow)
    *. float_of_int (c.in_chan * c.kernel_d * c.kernel_h * c.kernel_w)
  | Tconv2d c ->
    (* Work equals the forward conv it transposes. *)
    2.0
    *. float_of_int (c.batch * c.in_chan * c.in_h * c.in_w)
    *. float_of_int (c.out_chan * c.kernel_h * c.kernel_w)
  | Dense d -> 2.0 *. float_of_int d.batch *. float_of_int (d.in_dim * d.out_dim)
  | Batch_matmul b -> 2.0 *. float_of_int b.batch *. float_of_int b.m *. float_of_int (b.k * b.n)
  | Maxpool2d p | Avgpool2d p ->
    let oh, ow = pool2d_out p in
    float_of_int (p.batch * p.chan * oh * ow) *. float_of_int (p.kernel * p.kernel)
  | Global_avgpool g -> float_of_int (g.batch * g.chan * g.in_h * g.in_w)
  | Softmax s -> 5.0 *. float_of_int (s.rows * s.cols)
  | Layer_norm n -> 8.0 *. float_of_int (n.rows * n.cols)
  | Batch_norm_infer b -> 2.0 *. float_of_int (b.batch * b.chan * b.spatial)
  | Elemwise (_, n) -> 4.0 *. float_of_int n
  | Binary (_, n) -> float_of_int n
  | Bias_add b -> float_of_int (b.rows * b.cols)
  | Concat _ as op -> num_elements op

let fp32 = 4.0

let input_bytes = function
  | Conv2d c ->
    fp32
    *. (float_of_int (c.batch * c.in_chan * c.in_h * c.in_w)
       +. float_of_int (c.out_chan * (c.in_chan / c.groups) * c.kernel_h * c.kernel_w))
  | Conv3d c ->
    fp32
    *. (float_of_int (c.batch * c.in_chan * c.in_d * c.in_h * c.in_w)
       +. float_of_int (c.out_chan * c.in_chan * c.kernel_d * c.kernel_h * c.kernel_w))
  | Tconv2d c ->
    fp32
    *. (float_of_int (c.batch * c.in_chan * c.in_h * c.in_w)
       +. float_of_int (c.in_chan * c.out_chan * c.kernel_h * c.kernel_w))
  | Dense d -> fp32 *. float_of_int ((d.batch * d.in_dim) + (d.in_dim * d.out_dim))
  | Batch_matmul b -> fp32 *. float_of_int (b.batch * ((b.m * b.k) + (b.k * b.n)))
  | Maxpool2d p | Avgpool2d p -> fp32 *. float_of_int (p.batch * p.chan * p.in_h * p.in_w)
  | Global_avgpool g -> fp32 *. float_of_int (g.batch * g.chan * g.in_h * g.in_w)
  | Softmax s -> fp32 *. float_of_int (s.rows * s.cols)
  | Layer_norm n -> fp32 *. float_of_int (n.rows * n.cols)
  | Batch_norm_infer b -> fp32 *. float_of_int (b.batch * b.chan * b.spatial)
  | Elemwise (_, n) -> fp32 *. float_of_int n
  | Binary (_, n) -> 2.0 *. fp32 *. float_of_int n
  | Bias_add b -> fp32 *. float_of_int ((b.rows * b.cols) + b.cols)
  | Concat _ as op -> fp32 *. num_elements op

let output_bytes op = fp32 *. num_elements op

let name = function
  | Conv2d _ -> "conv2d"
  | Conv3d _ -> "conv3d"
  | Tconv2d _ -> "tconv2d"
  | Dense _ -> "dense"
  | Batch_matmul _ -> "batch_matmul"
  | Maxpool2d _ -> "maxpool2d"
  | Avgpool2d _ -> "avgpool2d"
  | Global_avgpool _ -> "global_avgpool"
  | Softmax _ -> "softmax"
  | Layer_norm _ -> "layer_norm"
  | Batch_norm_infer _ -> "batch_norm"
  | Elemwise (Relu, _) -> "relu"
  | Elemwise (Gelu, _) -> "gelu"
  | Elemwise (Sigmoid, _) -> "sigmoid"
  | Elemwise (Tanh, _) -> "tanh"
  | Elemwise (Silu, _) -> "silu"
  | Elemwise (Leaky_relu, _) -> "leaky_relu"
  | Binary (Add, _) -> "add"
  | Binary (Mul, _) -> "mul"
  | Binary (Sub, _) -> "sub"
  | Bias_add _ -> "bias_add"
  | Concat _ -> "concat"

let describe op =
  let shape_str l = "[" ^ String.concat "x" (List.map string_of_int l) ^ "]" in
  Printf.sprintf "%s -> %s (%.2f MFLOPs)" (name op) (shape_str (output_shape op))
    (flops op /. 1e6)

let is_compute_intensive = function
  | Conv2d _ | Conv3d _ | Tconv2d _ | Dense _ | Batch_matmul _ -> true
  | Maxpool2d _ | Avgpool2d _ | Global_avgpool _ | Softmax _ | Layer_norm _
  | Batch_norm_infer _ | Elemwise _ | Binary _ | Bias_add _ | Concat _ -> false
