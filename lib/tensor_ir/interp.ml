type memory = (string, float array) Hashtbl.t

(* Deterministic pseudo-random inputs in [-1, 1]: SplitMix64 of the buffer
   name hash and the element index. *)
let input_value name idx =
  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let h = mix (Int64.of_int ((Hashtbl.hash name * 1_000_003) + idx)) in
  let bits = Int64.to_int (Int64.shift_right_logical h 11) in
  (float_of_int bits /. 4503599627370496.0) -. 1.0

let buffer_elems (b : Compute.buffer) = List.fold_left ( * ) 1 b.shape

let get_buffer (mem : memory) (b : Compute.buffer) =
  match Hashtbl.find_opt mem b.buf_name with
  | Some arr -> arr
  | None ->
    let n = buffer_elems b in
    let arr = Array.init n (fun i -> input_value b.buf_name i) in
    Hashtbl.replace mem b.buf_name arr;
    arr

let flatten_index shape idxs =
  List.fold_left2 (fun acc size i -> (acc * size) + i) 0 shape idxs

(* Evaluate an affine access at the given axis values. *)
let read_at mem (axis_values : int array) (a : Compute.access) =
  let arr = get_buffer mem a.buffer in
  let idxs =
    List.map
      (fun (ix : Compute.index) ->
        List.fold_left
          (fun acc (t : Compute.index_term) -> acc + (t.coeff * axis_values.(t.axis)))
          ix.offset ix.terms)
      a.indices
  in
  arr.(flatten_index a.buffer.shape idxs)

(* --- per-stage semantics ---------------------------------------------------- *)

let unary_fn (k : Op.elemwise_kind) x =
  match k with
  | Relu -> Float.max x 0.0
  | Leaky_relu -> if x >= 0.0 then x else 0.01 *. x
  | Sigmoid -> 1.0 /. (1.0 +. exp (-.x))
  | Tanh -> tanh x
  | Gelu -> 0.5 *. x *. (1.0 +. tanh (0.7978845608 *. (x +. (0.044715 *. x *. x *. x))))
  | Silu -> x /. (1.0 +. exp (-.x))

let binary_fn (k : Op.binary_kind) a b =
  match k with Add -> a +. b | Mul -> a *. b | Sub -> a -. b

let init_value (sem : Compute.semantics) =
  match sem with Sem_reduce_max -> neg_infinity | _ -> 0.0

(* Accumulate one reduction step; [rs] are the read values. *)
let accumulate (sem : Compute.semantics) acc rs =
  match (sem, rs) with
  | Compute.Sem_matmul, [ a; b ] -> acc +. (a *. b)
  | Sem_reduce_sum, [ a ] | Sem_reduce_mean, [ a ] -> acc +. a
  | Sem_reduce_max, [ a ] -> Float.max acc a
  | Sem_sum_exp_sub, [ x; m ] -> acc +. exp (x -. m)
  | Sem_sum_sq_diff, [ x; mu ] -> acc +. ((x -. mu) ** 2.0)
  | (Sem_softmax_norm | Sem_layernorm_norm | Sem_scale_shift | Sem_unary _ | Sem_binary _
    | Sem_copy), _ ->
    invalid_arg "Interp.accumulate: pointwise semantics inside a reduction"
  | (Sem_matmul | Sem_reduce_sum | Sem_reduce_mean | Sem_reduce_max | Sem_sum_exp_sub
    | Sem_sum_sq_diff), _ ->
    invalid_arg "Interp.accumulate: read arity mismatch"

let pointwise (sem : Compute.semantics) rs =
  match (sem, rs) with
  | Compute.Sem_softmax_norm, [ x; m; s ] -> exp (x -. m) /. s
  | Sem_layernorm_norm, [ x; mu; v ] -> (x -. mu) /. sqrt (v +. 1e-5)
  | Sem_scale_shift, [ x; sc ] -> (x *. sc) +. 0.1
  | Sem_unary k, [ x ] -> unary_fn k x
  | Sem_binary k, [ a; b ] -> binary_fn k a b
  | Sem_copy, x :: _ -> x
  | (Sem_matmul | Sem_reduce_sum | Sem_reduce_mean | Sem_reduce_max | Sem_sum_exp_sub
    | Sem_sum_sq_diff), _ ->
    invalid_arg "Interp.pointwise: reduction semantics without a reduction loop"
  | (Sem_softmax_norm | Sem_layernorm_norm | Sem_scale_shift | Sem_unary _ | Sem_binary _
    | Sem_copy), _ ->
    invalid_arg "Interp.pointwise: read arity mismatch"

let finalize (sem : Compute.semantics) ~reduce_count acc =
  match sem with
  | Sem_reduce_mean | Sem_sum_sq_diff -> acc /. float_of_int reduce_count
  | Sem_matmul | Sem_reduce_sum | Sem_reduce_max | Sem_sum_exp_sub | Sem_softmax_norm
  | Sem_layernorm_norm | Sem_scale_shift | Sem_unary _ | Sem_binary _ | Sem_copy -> acc

(* Enumerate a multi-dimensional index space [extents] row-major, calling
   [f] with the current index array (reused across calls). *)
let iterate extents f =
  let n = Array.length extents in
  let idx = Array.make n 0 in
  let total = Array.fold_left ( * ) 1 extents in
  for _ = 1 to total do
    f idx;
    let rec bump d =
      if d >= 0 then begin
        idx.(d) <- idx.(d) + 1;
        if idx.(d) = extents.(d) then begin
          idx.(d) <- 0;
          bump (d - 1)
        end
      end
    in
    bump (n - 1)
  done

(* --- reference execution ----------------------------------------------------- *)

let run_stage_reference mem (st : Compute.stage) =
  let spatial = Array.of_list (Compute.spatial_axes st) in
  let reduce = Array.of_list (Compute.reduce_axes st) in
  let n_spatial = Array.length spatial in
  let axis_values = Array.make (Array.length st.axes) 0 in
  let out = Array.make (Compute.spatial_iterations st) 0.0 in
  let reduce_count = Compute.reduce_iterations st in
  let spatial_ext = Array.map (fun (a : Compute.axis) -> a.extent) spatial in
  let reduce_ext = Array.map (fun (a : Compute.axis) -> a.extent) reduce in
  let flat = ref 0 in
  iterate spatial_ext (fun sidx ->
      Array.blit sidx 0 axis_values 0 n_spatial;
      let result =
        if Array.length reduce = 0 then
          pointwise st.sem (List.map (read_at mem axis_values) st.reads)
        else begin
          let acc = ref (init_value st.sem) in
          iterate reduce_ext (fun ridx ->
              Array.blit ridx 0 axis_values n_spatial (Array.length ridx);
              acc := accumulate st.sem !acc (List.map (read_at mem axis_values) st.reads));
          finalize st.sem ~reduce_count !acc
        end
      in
      out.(!flat) <- result;
      incr flat);
  Hashtbl.replace mem st.write.buf_name out

let run_reference (sg : Compute.subgraph) =
  let mem : memory = Hashtbl.create 16 in
  List.iter (run_stage_reference mem) sg.stages;
  mem

(* --- scheduled execution ------------------------------------------------------ *)

let int_of env e =
  let v = Eval.eval env e in
  let r = int_of_float (Float.round v) in
  if Float.abs (v -. float_of_int r) > 1e-6 then
    invalid_arg "Interp.run_scheduled: non-integer loop extent";
  r

(* Execute one stage in tiled order. [levels] gives, per spatial axis, the
   list of level extents from outermost to innermost (their product must be
   the axis extent); [reduce_splits] likewise for reduction axes (2 levels).
   The original axis value is rebuilt as a mixed-radix number. *)
let run_stage_tiled mem (st : Compute.stage) ~spatial_levels ~reduce_levels =
  let spatial = Array.of_list (Compute.spatial_axes st) in
  let reduce = Array.of_list (Compute.reduce_axes st) in
  let n_spatial = Array.length spatial in
  Array.iteri
    (fun k (a : Compute.axis) ->
      let prod = List.fold_left ( * ) 1 spatial_levels.(k) in
      if prod <> a.extent then
        invalid_arg
          (Printf.sprintf "Interp: spatial axis %s extent %d but tile product %d" a.axis_name
             a.extent prod))
    spatial;
  Array.iteri
    (fun k (a : Compute.axis) ->
      let prod = List.fold_left ( * ) 1 reduce_levels.(k) in
      if prod <> a.extent then
        invalid_arg
          (Printf.sprintf "Interp: reduce axis %s extent %d but split product %d" a.axis_name
             a.extent prod))
    reduce;
  (* Level extents arranged as one big loop nest: all spatial level-0
     indices, then level-1, ..., then reduce levels, then innermost spatial
     level — mirroring the S-S-S-R-R-S order. Each axis value is recovered
     from its per-level digits. *)
  let n_slevels =
    Array.fold_left (fun acc l -> max acc (List.length l)) 0 spatial_levels
  in
  let n_rlevels = Array.fold_left (fun acc l -> max acc (List.length l)) 0 reduce_levels in
  let level_ext k lvls l = try List.nth lvls.(k) l with Failure _ -> 1 in
  (* Loop order: spatial levels 0 .. n_slevels-2, reduce levels 0 .. all,
     then the innermost spatial level. *)
  let loops = ref [] in
  for l = 0 to n_slevels - 2 do
    Array.iteri (fun k _ -> loops := (`S (k, l), level_ext k spatial_levels l) :: !loops) spatial
  done;
  for l = 0 to n_rlevels - 1 do
    Array.iteri (fun k _ -> loops := (`R (k, l), level_ext k reduce_levels l) :: !loops) reduce
  done;
  Array.iteri
    (fun k _ -> loops := (`S (k, n_slevels - 1), level_ext k spatial_levels (n_slevels - 1)) :: !loops)
    spatial;
  let loops = Array.of_list (List.rev !loops) in
  let extents = Array.map snd loops in
  let out = Array.make (Compute.spatial_iterations st) 0.0 in
  Array.fill out 0 (Array.length out) (init_value st.sem);
  let has_reduce = Array.length reduce > 0 in
  if not has_reduce then Array.fill out 0 (Array.length out) 0.0;
  let reduce_count = Compute.reduce_iterations st in
  let axis_values = Array.make (Array.length st.axes) 0 in
  let spatial_ext = Array.map (fun (a : Compute.axis) -> a.extent) spatial in
  let updates = ref 0 in
  iterate extents (fun digits ->
      (* Reconstruct axis values from level digits (mixed radix); correctness
         relies on each axis's levels appearing outer-to-inner in [loops],
         which the construction above guarantees. *)
      Array.iteri (fun k _ -> axis_values.(k) <- 0) spatial;
      Array.iteri (fun k _ -> axis_values.(n_spatial + k) <- 0) reduce;
      Array.iteri
        (fun li (tag, _) ->
          match tag with
          | `S (k, l) ->
            ignore l;
            axis_values.(k) <- (axis_values.(k) * extents.(li)) + digits.(li)
          | `R (k, l) ->
            ignore l;
            axis_values.(n_spatial + k) <- (axis_values.(n_spatial + k) * extents.(li)) + digits.(li))
        loops;
      let flat =
        let f = ref 0 in
        Array.iteri (fun k e -> f := (!f * e) + axis_values.(k)) spatial_ext;
        !f
      in
      incr updates;
      let rs = List.map (read_at mem axis_values) st.reads in
      if has_reduce then out.(flat) <- accumulate st.sem out.(flat) rs
      else out.(flat) <- pointwise st.sem rs);
  if !updates <> Compute.spatial_iterations st * reduce_count then
    invalid_arg "Interp: tiled iteration count mismatch";
  if has_reduce then
    Array.iteri (fun i v -> out.(i) <- finalize st.sem ~reduce_count v) out;
  Hashtbl.replace mem st.write.buf_name out

let levels_of_plan env (st : Compute.stage) (plan : Schedule.stage_plan) =
  let spatial = Array.of_list (Compute.spatial_axes st) in
  let reduce = Array.of_list (Compute.reduce_axes st) in
  match plan with
  | Schedule.Inlined -> invalid_arg "Interp.levels_of_plan: Inlined"
  | Schedule.Simple_bind { threads; inner; vector; _ } ->
    (* The fused spatial axis splits into block x thread x serial; rebuild
       per-axis levels by treating the fused split as acting on the
       row-major linearisation: execute as [blocks; th; in*vec] over the
       flat space. We model this as a single-axis tiling of the flattened
       spatial space, so per-axis levels degenerate to the full extents
       (iteration order is then the flat tiled order). *)
    let th = int_of env threads and inn = int_of env inner and v = int_of env vector in
    let p = Compute.spatial_iterations st in
    let chunk = th * inn * v in
    if chunk = 0 || p mod chunk <> 0 then invalid_arg "Interp: simple split does not divide";
    `Flat (p / chunk, th, inn * v)
  | Schedule.Multi_tile { vthread; thread; inner; reduce_split; _ } ->
    let slevels =
      Array.mapi
        (fun k (a : Compute.axis) ->
          let v = int_of env vthread.(k) in
          let t = int_of env thread.(k) in
          let i = int_of env inner.(k) in
          let outer = a.extent / (v * t * i) in
          [ outer; v; t; i ])
        spatial
    in
    let rlevels =
      Array.mapi
        (fun k (a : Compute.axis) ->
          let ri = int_of env reduce_split.(k) in
          [ a.extent / ri; ri ])
        reduce
    in
    `Levels (slevels, rlevels)

(* Flat tiled execution for Simple_bind: iterate (block, thread, serial)
   decomposing the flat spatial index, reducing serially inside. *)
let run_stage_flat mem (st : Compute.stage) ~blocks ~threads ~serial =
  let spatial = Array.of_list (Compute.spatial_axes st) in
  let reduce = Array.of_list (Compute.reduce_axes st) in
  let n_spatial = Array.length spatial in
  let spatial_ext = Array.map (fun (a : Compute.axis) -> a.extent) spatial in
  let reduce_ext = Array.map (fun (a : Compute.axis) -> a.extent) reduce in
  let reduce_count = Compute.reduce_iterations st in
  let out = Array.make (Compute.spatial_iterations st) 0.0 in
  let axis_values = Array.make (Array.length st.axes) 0 in
  let updates = ref 0 in
  for b = 0 to blocks - 1 do
    for t = 0 to threads - 1 do
      for s = 0 to serial - 1 do
        let flat = (((b * threads) + t) * serial) + s in
        (* decompose row-major *)
        let rem = ref flat in
        for k = n_spatial - 1 downto 0 do
          axis_values.(k) <- !rem mod spatial_ext.(k);
          rem := !rem / spatial_ext.(k)
        done;
        let result =
          if Array.length reduce = 0 then begin
            incr updates;
            pointwise st.sem (List.map (read_at mem axis_values) st.reads)
          end
          else begin
            let acc = ref (init_value st.sem) in
            iterate reduce_ext (fun ridx ->
                Array.blit ridx 0 axis_values n_spatial (Array.length ridx);
                incr updates;
                acc := accumulate st.sem !acc (List.map (read_at mem axis_values) st.reads));
            finalize st.sem ~reduce_count !acc
          end
        in
        out.(flat) <- result
      done
    done
  done;
  if !updates <> Compute.spatial_iterations st * reduce_count then
    invalid_arg "Interp: flat tiled iteration count mismatch";
  Hashtbl.replace mem st.write.buf_name out

let run_scheduled (p : Loop_ir.t) env =
  let mem : memory = Hashtbl.create 16 in
  Array.iter
    (fun (ss : Loop_ir.scheduled_stage) ->
      (match levels_of_plan env ss.stage ss.plan with
      | `Flat (blocks, threads, serial) ->
        run_stage_flat mem ss.stage ~blocks ~threads ~serial
      | `Levels (spatial_levels, reduce_levels) ->
        run_stage_tiled mem ss.stage ~spatial_levels ~reduce_levels);
      (* Fused elementwise consumers execute over the anchor's output. *)
      List.iter (run_stage_reference mem) ss.fused_elemwise)
    p.Loop_ir.stages;
  mem

let output mem (sg : Compute.subgraph) =
  let b = Compute.output_buffer sg in
  match Hashtbl.find_opt mem b.buf_name with
  | Some arr -> arr
  | None -> invalid_arg "Interp.output: output buffer not computed"

let max_rel_error a b =
  if Array.length a <> Array.length b then invalid_arg "Interp.max_rel_error: length mismatch";
  let m = ref 0.0 in
  Array.iteri
    (fun i v ->
      let e = Float.abs (v -. b.(i)) /. (1.0 +. Float.abs v) in
      if e > !m then m := e)
    a;
  !m
