(** Element datatypes of tensors.

    The paper evaluates at full fp32 precision; other types exist for
    completeness of the substrate (e.g. int8 buffers in embedding lookups). *)

type t = Float32 | Float16 | Int32 | Int8 | Bool

val size_bytes : t -> int
val to_string : t -> string
val equal : t -> t -> bool
