(** Felix as a service: a concurrent tuning daemon over a Unix-domain
    socket.

    The daemon accepts jobs over a line-delimited JSON protocol — one
    request object per line, one response object per line — and runs them
    on a bounded pool of worker domains. A job is a complete tuning run:
    network, inference batch, device, engine and a full
    {!Tuning_config.run} carried by the shared {!Tuning_config.of_json}
    codec, plus an optional wall-clock deadline and an optional durable
    store directory.

    {2 Protocol}

    Requests are [{"verb": v, ...}]; responses are [{"ok": true, ...}] or
    [{"ok": false, "error": code, "message": m}]. Verbs:

    - [submit] — [{"verb":"submit","job":SPEC}] enqueues a job; replies
      [{"ok":true,"id":ID}]. Rejected with code [overloaded] when the
      bounded queue is full and [draining] during shutdown.
    - [status] — [{"verb":"status","id":ID}] replies with the job's
      state ([queued], [running], [done], [cancelled], [expired],
      [failed]), rounds finished and current network latency.
    - [result] — replies with the finished job's result payload (the
      {!Export.result_json} object, floats bit-exact on the wire); code
      [not_done] until the job reaches [done].
    - [cancel] — requests cooperative cancellation: a queued job is
      cancelled immediately, a running one checkpoints its store at the
      next round boundary and stops.
    - [watch] — streams one JSON line per job event (started, each
      round, state changes) until the job reaches a terminal state.
    - [stats] — queue depth, active workers and lifetime counters.
    - [shutdown] — initiates the same graceful drain as SIGTERM.

    Unknown verbs get [unknown_verb]; unparsable lines get [parse];
    unknown job ids get [unknown_id].

    {2 Cancellation, deadlines and drain}

    Cancellation is cooperative and round-grained: the server threads a
    check through the tuner's event callback and stops a run by raising
    out of the [Round_finished] event — which the tuner emits only after
    the round's journal lines are fsync'd and its checkpoint is written.
    A cancelled (or deadline-expired, or drained) job with a store
    therefore resumes bit-identically when the same spec is submitted
    again. Deadlines are wall-clock, measured from submission; an
    expired-in-queue job never starts. SIGTERM (or the [shutdown] verb)
    stops accepting, rejects new submits, cancels queued jobs, lets
    running jobs checkpoint and halt at the next round boundary, joins
    the workers and closes the socket — then {!run} returns. *)

(** A job specification and its JSON codec, shared by the wire protocol
    and the CLI's [run.json] invocation record. *)
module Job : sig
  type spec = {
    network : Workload.network;
    inference_batch : int;
    device : Device.t;
    engine : Tuning_config.engine;
    run : Tuning_config.run;
        (** full run configuration; the process-local fields (callback,
            runtime, telemetry, store) are attached server-side *)
    deadline_s : float option;
        (** wall-clock seconds from submission; the job stops (state
            [expired]) at the first round boundary past the deadline *)
    store_dir : string option;
        (** durable store for the job: journal, checkpoints, resume *)
  }

  val to_json : spec -> Json.t
  val of_json : Json.t -> (spec, string) result
  (** [Error] names the first missing or malformed field. *)

  (** {2 Invocation record}

      The versioned artifact a tuning front end drops into a store
      directory so [felix-tune resume] (and a re-submit) replays the
      exact recorded configuration. Version 2: the payload is
      {!to_json} (version 1 recorded raw CLI flags). *)

  val invocation_kind : string
  val invocation_version : int
  val save_invocation : spec -> dir:string -> (unit, Store.error) result
  (** Saves the spec (with [store_dir] cleared — the directory itself is
      the store) as [run.json] in [dir]. *)

  val load_invocation : dir:string -> (spec, Store.error) result
end

(** {1 The daemon} *)

type t

val create :
  ?workers:int ->
  ?queue_capacity:int ->
  ?telemetry:Telemetry.t ->
  ?model_for:(Device.t -> Mlp.t) ->
  ?cache_dir:string ->
  ?pack_cache:string ->
  socket:string ->
  unit ->
  (t, string) result
(** Binds the Unix-domain socket and spawns [workers] (default 2) worker
    domains draining a queue bounded at [queue_capacity] (default 16).
    A stale socket file left by a dead daemon is unlinked and rebound; a
    live one makes [create] fail. [model_for] resolves the per-device
    cost model (default: the pretrained model cached under [cache_dir],
    default ["_artifacts"]) and is memoised per device. [telemetry]
    (default [Telemetry.global]) receives [serve.*] counters and
    gauges: queue depth, active jobs, submissions, rejects and per-state
    completions. [pack_cache] points every job's [Tuning_config] at one
    shared persistent compilation-cache directory, so repeated workloads
    across jobs skip symbolic compilation (results are
    bitwise-identical). *)

val run : t -> unit
(** Serve until {!initiate_shutdown} (or a handled signal, or the
    [shutdown] verb), then drain gracefully and return. Connections are
    handled on lightweight threads; jobs run on the worker domains. *)

val initiate_shutdown : t -> unit
(** Async-signal-safe: flags the drain and wakes the accept loop. Safe
    to call from a signal handler or any thread; idempotent. *)

val handle_signals : t -> unit
(** Installs SIGTERM and SIGINT handlers that call
    {!initiate_shutdown}, and ignores SIGPIPE (client disconnects must
    not kill the daemon). *)

val socket_path : t -> string

(** {1 Client}

    A thin blocking client for the protocol; the CLI subcommands and the
    service tests are both built on it. Protocol-level failures are
    reported as [Error "code: message"] with the error codes listed
    above, so callers can match on the prefix. *)

module Client : sig
  type conn

  val connect : string -> (conn, string) result
  val close : conn -> unit

  val request : conn -> Json.t -> (Json.t, string) result
  (** One request line out, one response line in. [Error] is a transport
      failure (daemon gone, malformed reply). *)

  val submit : conn -> Job.spec -> (string, string) result
  (** Returns the job id. *)

  val status : conn -> string -> (Json.t, string) result
  val result : conn -> string -> (Json.t, string) result
  (** The result payload object ({!Export.result_json} shape). *)

  val cancel : conn -> string -> (Json.t, string) result
  val stats : conn -> (Json.t, string) result
  val shutdown : conn -> (Json.t, string) result

  val wait : ?poll_s:float -> conn -> string -> (Json.t, string) result
  (** Poll [status] until the job reaches a terminal state; returns the
      final status object. *)
end
