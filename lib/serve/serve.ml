(* The tuning service daemon.

   Concurrency layout: the accept loop runs on the caller of [run],
   multiplexing the listen socket against a self-pipe so a signal can
   wake it. Each accepted connection gets a lightweight systhread doing
   blocking line I/O; tuning jobs run on [workers] spawned domains so
   they execute in parallel (systhreads share one runtime lock — only
   domains buy CPU parallelism). One mutex guards all shared state; two
   conditions fan out: [work_cond] wakes workers when the queue moves,
   [event_cond] wakes watchers when a job emits an event or changes
   state.

   Cancellation is cooperative and round-grained: the halt check runs
   inside the job's event callback, only on [Round_finished] — the one
   point where the tuner has already fsync'd the round's journal lines
   and written its checkpoint, so a halted job's store resumes
   bit-identically. *)

module Job = struct
  type spec = {
    network : Workload.network;
    inference_batch : int;
    device : Device.t;
    engine : Tuning_config.engine;
    run : Tuning_config.run;
    deadline_s : float option;
    store_dir : string option;
  }

  let network_id n = String.lowercase_ascii (Workload.network_name n)
  let device_id (d : Device.t) = String.lowercase_ascii d.Device.device_name

  let to_json (s : spec) =
    Json.Obj
      [ ("network", Json.Str (network_id s.network));
        ("inference_batch", Json.Num (float_of_int s.inference_batch));
        ("device", Json.Str (device_id s.device));
        ("engine", Json.Str (Tuning_config.engine_id s.engine));
        ("run", Tuning_config.to_json s.run);
        ("deadline_s",
         (match s.deadline_s with None -> Json.Null | Some d -> Json.Num d));
        ("store", (match s.store_dir with None -> Json.Null | Some d -> Json.Str d)) ]

  let of_json j =
    let ( let* ) = Result.bind in
    let str k =
      match Option.bind (Json.find j k) Json.as_string with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "job: missing or malformed field %S" k)
    in
    let* net_name = str "network" in
    let* network =
      match Workload.of_name net_name with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "job: unknown network %S" net_name)
    in
    let* inference_batch =
      match Option.bind (Json.find j "inference_batch") Json.as_int with
      | Some b when b >= 1 -> Ok b
      | Some _ -> Error "job: inference_batch must be >= 1"
      | None -> Error "job: missing or malformed field \"inference_batch\""
    in
    let* device_name = str "device" in
    let* device = Result.map_error (fun m -> "job: " ^ m) (Device.of_name device_name) in
    let* engine_name = str "engine" in
    let* engine =
      match Tuning_config.engine_of_id engine_name with
      | Some e -> Ok e
      | None -> Error (Printf.sprintf "job: unknown engine %S" engine_name)
    in
    let* run =
      match Json.find j "run" with
      | None -> Error "job: missing field \"run\""
      | Some rj -> Result.map_error (fun m -> "job: " ^ m) (Tuning_config.of_json rj)
    in
    let* deadline_s =
      match Json.find j "deadline_s" with
      | None | Some Json.Null -> Ok None
      | Some v -> (
        match Json.as_float v with
        | Some d when Float.is_finite d && d > 0.0 -> Ok (Some d)
        | _ -> Error "job: deadline_s must be a positive number")
    in
    let* store_dir =
      match Json.find j "store" with
      | None | Some Json.Null -> Ok None
      | Some v -> (
        match Json.as_string v with
        | Some d -> Ok (Some d)
        | None -> Error "job: store must be a string")
    in
    Ok { network; inference_batch; device; engine; run; deadline_s; store_dir }

  (* run.json, version 2: the payload is the job spec itself, so the CLI's
     resume, the service's submit and the store's record are one format.
     (Version 1 recorded raw CLI flags and was re-parsed by hand.) *)
  let invocation_kind = "felix-cli-run"
  let invocation_version = 2
  let invocation_path dir = Filename.concat dir "run.json"

  let save_invocation (s : spec) ~dir =
    Store.Artifact.save ~path:(invocation_path dir) ~kind:invocation_kind
      ~version:invocation_version
      (to_json { s with store_dir = None })

  let load_invocation ~dir =
    match
      Store.Artifact.load ~path:(invocation_path dir) ~kind:invocation_kind
        ~version:invocation_version
    with
    | Error e -> Error e
    | Ok j -> (
      match of_json j with
      | Ok s -> Ok s
      | Error m -> Error (Store.Corrupt (invocation_path dir ^ ": " ^ m)))
end

(* --- server state ----------------------------------------------------------- *)

type job_state = Queued | Running | Done | Cancelled | Expired | Failed

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"
  | Expired -> "expired"
  | Failed -> "failed"

let terminal = function
  | Done | Cancelled | Expired | Failed -> true
  | Queued | Running -> false

type job = {
  id : string;
  spec : Job.spec;
  expires_at : float;  (* absolute wall clock; +inf without a deadline *)
  cancel : bool Atomic.t;
  mutable state : job_state;
  mutable halt_state : job_state;  (* what a mid-run halt should become *)
  mutable rounds_done : int;
  mutable latency_ms : float option;
  mutable result : Tuner.result option;
  mutable error : string option;
  mutable events_rev : Json.t list;  (* newest first; watch replays them *)
  mutable n_events : int;
}

type t = {
  socket : string;
  listen_fd : Unix.file_descr;
  workers : int;
  queue_capacity : int;
  telemetry : Telemetry.t;
  model_for : Device.t -> Mlp.t;
  pack_cache : string option;  (* compiled-pack cache shared by all jobs *)
  mu : Mutex.t;
  work_cond : Condition.t;
  event_cond : Condition.t;
  jobs : (string, job) Hashtbl.t;
  queue : job Queue.t;
  mutable order : string list;  (* submission order, newest first *)
  mutable next_id : int;
  mutable draining : bool;
  stopping : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable conns : (Unix.file_descr * Thread.t) list;
  mutable worker_domains : unit Domain.t list;
  models : (string, Mlp.t) Hashtbl.t;
  model_mu : Mutex.t;
  (* lifetime counters, mirrored into serve.* telemetry *)
  mutable n_submitted : int;
  mutable n_rejected : int;
  mutable n_done : int;
  mutable n_cancelled : int;
  mutable n_expired : int;
  mutable n_failed : int;
}

let socket_path t = t.socket

let with_lock mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let counter t name = Telemetry.counter t.telemetry name
let gauge t name = Telemetry.gauge t.telemetry name

let set_queue_gauges t =
  Telemetry.Gauge.set (gauge t "serve.queue_depth") (float_of_int (Queue.length t.queue));
  let active =
    Hashtbl.fold (fun _ j acc -> if j.state = Running then acc + 1 else acc) t.jobs 0
  in
  Telemetry.Gauge.set (gauge t "serve.active") (float_of_int active)

(* Under [t.mu]. *)
let push_event t job ev =
  job.events_rev <- ev :: job.events_rev;
  job.n_events <- job.n_events + 1;
  Condition.broadcast t.event_cond

(* Under [t.mu]. *)
let set_state t job st =
  job.state <- st;
  (match st with
  | Done ->
    t.n_done <- t.n_done + 1;
    Telemetry.Counter.incr (counter t "serve.completed")
  | Cancelled ->
    t.n_cancelled <- t.n_cancelled + 1;
    Telemetry.Counter.incr (counter t "serve.cancelled")
  | Expired ->
    t.n_expired <- t.n_expired + 1;
    Telemetry.Counter.incr (counter t "serve.expired")
  | Failed ->
    t.n_failed <- t.n_failed + 1;
    Telemetry.Counter.incr (counter t "serve.failed")
  | Queued | Running -> ());
  set_queue_gauges t;
  push_event t job
    (Json.Obj [ ("event", Json.Str "state"); ("state", Json.Str (state_name st)) ])

(* --- job execution ---------------------------------------------------------- *)

exception Halt

let model_for_memo t (device : Device.t) =
  with_lock t.model_mu @@ fun () ->
  match Hashtbl.find_opt t.models device.Device.device_name with
  | Some m -> m
  | None ->
    let m = t.model_for device in
    Hashtbl.replace t.models device.Device.device_name m;
    m

let job_on_event t job ev =
  (match ev with
  | Tuning_config.Tuning_started { n_tasks; _ } ->
    with_lock t.mu (fun () ->
        push_event t job
          (Json.Obj
             [ ("event", Json.Str "started"); ("n_tasks", Json.Num (float_of_int n_tasks)) ]))
  | Tuning_config.Round_finished { round; network_ms; sim_clock_s; _ } ->
    with_lock t.mu (fun () ->
        job.rounds_done <- round;
        job.latency_ms <- Some network_ms;
        push_event t job
          (Json.Obj
             [ ("event", Json.Str "round"); ("round", Json.Num (float_of_int round));
               ("latency_ms", Json.Num network_ms);
               ("sim_clock_s", Json.Num sim_clock_s) ]))
  | _ -> ());
  (* Halt only at a round boundary: the tuner has just fsync'd the
     journal and written the round's checkpoint, so stopping here leaves
     a store that resumes bit-identically. Never halt on the finish
     events — the run is already complete. *)
  match ev with
  | Tuning_config.Round_finished _ ->
    if Atomic.get job.cancel || Atomic.get t.stopping then begin
      job.halt_state <- Cancelled;
      raise Halt
    end
    else if Unix.gettimeofday () > job.expires_at then begin
      job.halt_state <- Expired;
      raise Halt
    end
  | _ -> ()

let exec t job =
  let spec = job.spec in
  let finish st = with_lock t.mu (fun () -> set_state t job st) in
  let fail m =
    job.error <- Some m;
    finish Failed
  in
  match
    let graph = Workload.graph ~batch:spec.Job.inference_batch spec.Job.network in
    let model = model_for_memo t spec.Job.device in
    (graph, model)
  with
  | exception e -> fail (Printexc.to_string e)
  | graph, model -> (
    let store =
      match spec.Job.store_dir with
      | None -> Ok None
      | Some dir -> (
        match Store.open_dir dir with
        | Error e -> Error (Store.error_message e)
        | Ok s -> (
          (* Record the invocation so the CLI can resume this store. *)
          match Job.save_invocation spec ~dir with
          | Ok () -> Ok (Some s)
          | Error e ->
            Store.close s;
            Error (Store.error_message e)))
    in
    match store with
    | Error m -> fail m
    | Ok store -> (
      let rc =
        spec.Job.run
        |> Tuning_config.with_on_event (job_on_event t job)
        |> Tuning_config.with_telemetry t.telemetry
      in
      let rc =
        match store with Some s -> Tuning_config.with_store s rc | None -> rc
      in
      let rc =
        match t.pack_cache with
        | Some dir -> Tuning_config.with_pack_cache dir rc
        | None -> rc
      in
      let cleanup () = Option.iter Store.close store in
      match Tuner.run rc spec.Job.device model graph spec.Job.engine with
      | Ok r ->
        cleanup ();
        job.result <- Some r;
        job.latency_ms <- Some r.Tuner.final_latency_ms;
        finish Done
      | Error e ->
        cleanup ();
        fail (Tuner.error_message e)
      | exception Halt ->
        cleanup ();
        finish job.halt_state
      | exception e ->
        cleanup ();
        fail (Printexc.to_string e)))

let worker_loop t =
  let rec loop () =
    let next =
      with_lock t.mu @@ fun () ->
      while Queue.is_empty t.queue && not t.draining do
        Condition.wait t.work_cond t.mu
      done;
      if Queue.is_empty t.queue then None
      else begin
        let job = Queue.pop t.queue in
        (* A job may have been cancelled, or its deadline passed, while
           it sat in the queue. *)
        if job.state <> Queued then None (* already resolved; take next *)
        else if Atomic.get job.cancel then begin
          set_state t job Cancelled;
          Some None
        end
        else if Unix.gettimeofday () > job.expires_at then begin
          set_state t job Expired;
          Some None
        end
        else begin
          set_state t job Running;
          Some (Some job)
        end
      end
    in
    match next with
    | None -> () (* draining and the queue is dry: worker exits *)
    | Some None -> loop ()
    | Some (Some job) ->
      exec t job;
      loop ()
  in
  loop ()

(* --- protocol --------------------------------------------------------------- *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let err code msg =
  Json.Obj
    [ ("ok", Json.Bool false); ("error", Json.Str code); ("message", Json.Str msg) ]

let job_status_json job =
  [ ("id", Json.Str job.id);
    ("state", Json.Str (state_name job.state));
    ("rounds", Json.Num (float_of_int job.rounds_done));
    ("latency_ms",
     (match job.latency_ms with None -> Json.Null | Some l -> Json.Num l));
    ("error", (match job.error with None -> Json.Null | Some m -> Json.Str m)) ]

(* Store directories are single-writer: refuse a submit whose store is
   already attached to a live job. *)
let store_busy t dir =
  Hashtbl.fold
    (fun _ j acc ->
      acc || (j.spec.Job.store_dir = Some dir && not (terminal j.state)))
    t.jobs false

let do_submit t j =
  match Json.find j "job" with
  | None -> err "bad_request" "submit: missing field \"job\""
  | Some sj -> (
    match Job.of_json sj with
    | Error m -> err "bad_request" m
    | Ok spec -> (
      with_lock t.mu @@ fun () ->
      if t.draining || Atomic.get t.stopping then err "draining" "server is shutting down"
      else if Queue.length t.queue >= t.queue_capacity then begin
        t.n_rejected <- t.n_rejected + 1;
        Telemetry.Counter.incr (counter t "serve.rejected");
        err "overloaded"
          (Printf.sprintf "queue is full (%d jobs)" t.queue_capacity)
      end
      else
        match spec.Job.store_dir with
        | Some dir when store_busy t dir ->
          err "bad_request" (Printf.sprintf "store %S is in use by a live job" dir)
        | _ ->
          t.next_id <- t.next_id + 1;
          let id = Printf.sprintf "job%04d" t.next_id in
          let now = Unix.gettimeofday () in
          let job =
            { id; spec;
              expires_at =
                (match spec.Job.deadline_s with
                | None -> Float.infinity
                | Some d -> now +. d);
              cancel = Atomic.make false;
              state = Queued;
              halt_state = Cancelled;
              rounds_done = 0;
              latency_ms = None;
              result = None;
              error = None;
              events_rev = [];
              n_events = 0 }
          in
          Hashtbl.replace t.jobs id job;
          t.order <- id :: t.order;
          Queue.push job t.queue;
          t.n_submitted <- t.n_submitted + 1;
          Telemetry.Counter.incr (counter t "serve.submitted");
          set_queue_gauges t;
          Condition.signal t.work_cond;
          ok [ ("id", Json.Str id) ]))

let with_job t j f =
  match Option.bind (Json.find j "id") Json.as_string with
  | None -> err "bad_request" "missing or malformed field \"id\""
  | Some id -> (
    match with_lock t.mu (fun () -> Hashtbl.find_opt t.jobs id) with
    | None -> err "unknown_id" (Printf.sprintf "no such job %S" id)
    | Some job -> f job)

let do_status t j =
  with_job t j (fun job -> with_lock t.mu (fun () -> ok (job_status_json job)))

let do_result t j =
  with_job t j @@ fun job ->
  let state, result, error =
    with_lock t.mu (fun () -> (job.state, job.result, job.error))
  in
  match (state, result) with
  | Done, Some r ->
    ok
      [ ("id", Json.Str job.id);
        ("kind", Json.Str Export.result_kind);
        ("version", Json.Num (float_of_int Export.result_version));
        ("result", Export.result_json r) ]
  | Failed, _ ->
    err "not_done"
      (Printf.sprintf "job %s failed: %s" job.id (Option.value ~default:"?" error))
  | st, _ ->
    err "not_done" (Printf.sprintf "job %s is %s" job.id (state_name st))

let do_cancel t j =
  with_job t j @@ fun job ->
  with_lock t.mu @@ fun () ->
  Atomic.set job.cancel true;
  (* A queued job resolves immediately; a running one halts (and
     checkpoints) at its next round boundary. *)
  if job.state = Queued then set_state t job Cancelled;
  ok (job_status_json job)

let do_stats t =
  with_lock t.mu @@ fun () ->
  let active =
    Hashtbl.fold (fun _ j acc -> if j.state = Running then acc + 1 else acc) t.jobs 0
  in
  ok
    [ ("workers", Json.Num (float_of_int t.workers));
      ("queue_capacity", Json.Num (float_of_int t.queue_capacity));
      ("queue_depth", Json.Num (float_of_int (Queue.length t.queue)));
      ("active", Json.Num (float_of_int active));
      ("submitted", Json.Num (float_of_int t.n_submitted));
      ("rejected", Json.Num (float_of_int t.n_rejected));
      ("completed", Json.Num (float_of_int t.n_done));
      ("cancelled", Json.Num (float_of_int t.n_cancelled));
      ("expired", Json.Num (float_of_int t.n_expired));
      ("failed", Json.Num (float_of_int t.n_failed));
      ("draining", Json.Bool (t.draining || Atomic.get t.stopping)) ]

let send_line oc j =
  output_string oc (Json.to_line j);
  output_char oc '\n';
  flush oc

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

(* Stream job events to [oc] until the job is terminal (or the server
   drains). The watcher holds a cursor into the job's event log and
   sleeps on [event_cond] between batches. *)
let do_watch t j oc =
  with_job t j @@ fun job ->
  let cursor = ref 0 in
  let rec stream () =
    let fresh, st, finished =
      with_lock t.mu @@ fun () ->
      while
        job.n_events <= !cursor
        && (not (terminal job.state))
        && not (Atomic.get t.stopping)
      do
        Condition.wait t.event_cond t.mu
      done;
      let fresh = List.rev (take (job.n_events - !cursor) job.events_rev) in
      cursor := job.n_events;
      (fresh, job.state, terminal job.state || Atomic.get t.stopping)
    in
    List.iter (fun e -> send_line oc e) fresh;
    if finished then
      Json.Obj [ ("done", Json.Bool true); ("state", Json.Str (state_name st)) ]
    else stream ()
  in
  send_line oc (ok [ ("id", Json.Str job.id); ("watch", Json.Bool true) ]);
  stream ()

let initiate_shutdown t =
  if not (Atomic.exchange t.stopping true) then
    (* One byte down the self-pipe wakes the accept loop's select. *)
    try ignore (Unix.write t.stop_w (Bytes.of_string "!") 0 1)
    with Unix.Unix_error _ -> ()

let handle_request t oc line =
  match Json.parse line with
  | Error m -> send_line oc (err "parse" m)
  | Ok j -> (
    match Option.bind (Json.find j "verb") Json.as_string with
    | None -> send_line oc (err "bad_request" "missing field \"verb\"")
    | Some "submit" -> send_line oc (do_submit t j)
    | Some "status" -> send_line oc (do_status t j)
    | Some "result" -> send_line oc (do_result t j)
    | Some "cancel" -> send_line oc (do_cancel t j)
    | Some "stats" -> send_line oc (do_stats t)
    | Some "watch" -> send_line oc (do_watch t j oc)
    | Some "shutdown" ->
      send_line oc (ok []);
      initiate_shutdown t
    | Some v -> send_line oc (err "unknown_verb" (Printf.sprintf "unknown verb %S" v)))

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let rec loop () =
       match input_line ic with
       | exception (End_of_file | Sys_error _) -> ()
       | "" -> loop ()
       | line ->
         handle_request t oc line;
         loop ()
     in
     loop ()
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* Deregister before closing so the drain path never calls shutdown on
     a descriptor number the kernel may have already reused. *)
  with_lock t.mu (fun () -> t.conns <- List.filter (fun (f, _) -> f <> fd) t.conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- lifecycle -------------------------------------------------------------- *)

let unlink_quiet path = try Unix.unlink path with Unix.Unix_error _ -> ()

let create ?(workers = 2) ?(queue_capacity = 16) ?(telemetry = Telemetry.global)
    ?model_for ?(cache_dir = "_artifacts") ?pack_cache ~socket () =
  let model_for =
    match model_for with
    | Some f -> f
    | None -> fun device -> Train.pretrained_for_device ~cache_dir device
  in
  if workers < 1 then Error "workers must be >= 1"
  else if queue_capacity < 1 then Error "queue capacity must be >= 1"
  else
    let stale_ok =
      (* A leftover socket file from a dead daemon is unlinked; a live
         daemon (something accepts our probe) makes create fail. *)
      if not (Sys.file_exists socket) then Ok ()
      else
        let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let live =
          match Unix.connect probe (Unix.ADDR_UNIX socket) with
          | () -> true
          | exception Unix.Unix_error _ -> false
        in
        (try Unix.close probe with Unix.Unix_error _ -> ());
        if live then Error (Printf.sprintf "socket %S is already in use" socket)
        else begin
          unlink_quiet socket;
          Ok ()
        end
    in
    match stale_ok with
    | Error m -> Error m
    | Ok () -> (
      match
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX socket);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
      with
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot bind socket %S: %s" socket (Unix.error_message e))
      | listen_fd ->
        let stop_r, stop_w = Unix.pipe ~cloexec:true () in
        let t =
          { socket; listen_fd; workers; queue_capacity; telemetry; model_for;
            pack_cache;
            mu = Mutex.create (); work_cond = Condition.create ();
            event_cond = Condition.create (); jobs = Hashtbl.create 32;
            queue = Queue.create (); order = []; next_id = 0; draining = false;
            stopping = Atomic.make false; stop_r; stop_w; conns = [];
            worker_domains = []; models = Hashtbl.create 4;
            model_mu = Mutex.create (); n_submitted = 0; n_rejected = 0; n_done = 0;
            n_cancelled = 0; n_expired = 0; n_failed = 0 }
        in
        t.worker_domains <-
          List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
        Ok t)

let handle_signals t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
  Sys.set_signal Sys.sigterm stop;
  Sys.set_signal Sys.sigint stop

let drain t =
  Logs.info (fun m -> m "serve: draining (%d jobs queued)" (Queue.length t.queue));
  with_lock t.mu (fun () ->
      t.draining <- true;
      (* Queued jobs cannot run anymore; resolve them as cancelled so
         their watchers and status pollers see a terminal state. *)
      Queue.iter (fun job -> if job.state = Queued then set_state t job Cancelled) t.queue;
      Queue.clear t.queue;
      Condition.broadcast t.work_cond;
      Condition.broadcast t.event_cond);
  (* Running jobs observe [stopping] at their next round boundary, after
     checkpointing; joining the workers waits for exactly that. *)
  List.iter Domain.join t.worker_domains;
  (* Wake blocked client reads: a shutdown makes their next read EOF. *)
  let conns =
    with_lock t.mu (fun () ->
        List.iter
          (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          t.conns;
        t.conns)
  in
  List.iter (fun (_, th) -> try Thread.join th with _ -> ()) conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  unlink_quiet t.socket;
  Logs.info (fun m -> m "serve: drained")

let run t =
  let rec accept_loop () =
    if Atomic.get t.stopping then ()
    else
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | ready, _, _ ->
        if List.mem t.stop_r ready || Atomic.get t.stopping then ()
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
          | fd, _ ->
            with_lock t.mu (fun () ->
                let th = Thread.create (handle_conn t) fd in
                t.conns <- (fd, th) :: t.conns));
          accept_loop ()
        end
  in
  accept_loop ();
  drain t

(* --- client ----------------------------------------------------------------- *)

module Client = struct
  type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

  let connect path =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %S: %s" path (Unix.error_message e))

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  let read_reply c =
    match input_line c.ic with
    | exception (End_of_file | Sys_error _) -> Error "connection closed by server"
    | line -> (
      match Json.parse line with
      | Error m -> Error ("malformed reply: " ^ m)
      | Ok j -> Ok j)

  let request c j =
    match send_line c.oc j with
    | () -> read_reply c
    | exception (Sys_error _ | Unix.Unix_error _) -> Error "connection closed by server"

  (* Collapse protocol-level failures to ["code: message"] strings so
     callers can match on the code prefix. *)
  let checked reply =
    match reply with
    | Error _ as e -> e
    | Ok j -> (
      match Option.bind (Json.find j "ok") Json.as_bool with
      | Some true -> Ok j
      | _ ->
        let code =
          Option.value ~default:"error"
            (Option.bind (Json.find j "error") Json.as_string)
        in
        let msg =
          Option.value ~default:""
            (Option.bind (Json.find j "message") Json.as_string)
        in
        Error (Printf.sprintf "%s: %s" code msg))

  let verb ?(fields = []) c v =
    checked (request c (Json.Obj (("verb", Json.Str v) :: fields)))

  let submit c spec =
    match verb c "submit" ~fields:[ ("job", Job.to_json spec) ] with
    | Error _ as e -> e
    | Ok j -> (
      match Option.bind (Json.find j "id") Json.as_string with
      | Some id -> Ok id
      | None -> Error "malformed reply: missing job id")

  let status c id = verb c "status" ~fields:[ ("id", Json.Str id) ]

  let result c id =
    match verb c "result" ~fields:[ ("id", Json.Str id) ] with
    | Error _ as e -> e
    | Ok j -> (
      match Json.find j "result" with
      | Some payload -> Ok payload
      | None -> Error "malformed reply: missing result payload")

  let cancel c id = verb c "cancel" ~fields:[ ("id", Json.Str id) ]
  let stats c = verb c "stats"
  let shutdown c = verb c "shutdown"

  let wait ?(poll_s = 0.02) c id =
    let rec loop () =
      match status c id with
      | Error _ as e -> e
      | Ok j -> (
        match Option.bind (Json.find j "state") Json.as_string with
        | Some ("done" | "cancelled" | "expired" | "failed") -> Ok j
        | Some _ ->
          Unix.sleepf poll_s;
          loop ()
        | None -> Error "malformed reply: missing state")
    in
    loop ()
end
