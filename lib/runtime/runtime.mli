(** Domain-based parallel execution layer.

    A runtime owns a fixed-size pool of OCaml domains plus an LRU memo cache
    for simulator measurements. Search code hands it arrays of pure work via
    {!parallel_map}; the caller's domain participates in draining the chunk
    queue, so [domains:n] means at most [n] domains total (the caller plus
    [n - 1] spawned workers).

    Design contract, relied on by the tuner's determinism guarantee:
    - [parallel_map t f a] returns exactly [Array.map f a] for pure [f],
      regardless of the domain count or scheduling.
    - Exceptions raised by [f] are captured and the first one (by completion
      order) is re-raised at the join point on the caller's domain.
    - A nested or concurrent [parallel_map] on a busy pool degrades to
      sequential [Array.map] rather than deadlocking.
    - Per-worker RNG streams come from {!split_rngs}/{!Rng.substream}, so
      stream [i] depends only on the caller's seed and [i], never on the
      number of workers. *)

(** Mutex-guarded LRU cache: safe to share across domains. On capacity
    overflow the least-recently-used binding is evicted. *)
module Lru : sig
  type ('k, 'v) t

  val create : ?capacity:int -> unit -> ('k, 'v) t
  (** [capacity] defaults to 4096 entries. *)

  val capacity : ('k, 'v) t -> int
  val length : ('k, 'v) t -> int

  val find_opt : ('k, 'v) t -> 'k -> 'v option
  (** Counts a hit or a miss and refreshes recency on hit. *)

  val add : ('k, 'v) t -> 'k -> 'v -> unit

  val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
  (** On miss, computes outside the lock — with a deterministic producer a
      racing double-compute inserts the same value twice, which is safe. *)

  val hits : ('k, 'v) t -> int
  val misses : ('k, 'v) t -> int

  val evictions : ('k, 'v) t -> int
  (** Entries displaced by capacity pressure since creation ([clear] does
      not count and does not reset the counter). *)

  val clear : ('k, 'v) t -> unit
end

type t

val create : ?chunk:int -> ?cache_capacity:int -> domains:int -> unit -> t
(** [create ~domains:n ()] spawns [n - 1] worker domains ([n <= 1] spawns
    none and every map runs sequentially). [chunk] fixes the number of array
    elements per queued task (default: split each map into roughly
    [4 * domains] chunks). [cache_capacity] sizes {!sim_cache}. *)

val sequential : unit -> t
(** A runtime with no workers: [parallel_map] is [Array.map] plus the same
    telemetry. Equivalent to [create ~domains:1 ()] but allocates no pool. *)

val domains : t -> int
(** Total domains participating in a map, including the caller (>= 1). *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent; also registered via [at_exit].
    Maps after shutdown run sequentially. *)

val with_runtime : ?chunk:int -> ?cache_capacity:int -> domains:int -> (t -> 'a) -> 'a
(** [with_runtime ~domains f] runs [f] with a fresh runtime and shuts it
    down afterwards, whether [f] returns or raises. *)

val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving map. See the module header for the contract. *)

val parallel_mapi : t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map] over a list, preserving order. *)

val split_rngs : seed:int -> int -> Rng.t array
(** [split_rngs ~seed n] derives [n] independent deterministic streams from
    [seed]; stream [i] is the same for every [n >= i]. *)

val parallel_map_seeded :
  t -> seed:int -> ?chunk:int -> (Rng.t -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!parallel_map} but hands element [i] its own RNG,
    [Rng.substream (Rng.create seed) i], so stochastic per-element work is
    reproducible independent of scheduling. *)

val sim_cache : t -> (string, float) Lru.t
(** Memo cache for noiseless simulator latencies, keyed by canonical
    device/workload/schedule strings (see [Gpu_model.measure_base_ms]). *)

val stats : t -> (string * int) list
(** Pool counters for reports/tests: tasks executed, steals (chunks run by
    spawned workers rather than the caller), maps, sequential fallbacks,
    cache hits/misses. *)
