(* Fixed-size domain pool with a caller-helps work queue.

   A map splits its array into chunks and pushes them on a shared queue;
   spawned workers and the calling domain drain it together, writing results
   into disjoint slots of a shared array. The mutex/condition pair that
   protects the queue also publishes those writes to the caller at the join,
   so no further synchronisation is needed on the result array. *)

module Lru = struct
  type ('k, 'v) node = {
    key : 'k;
    mutable value : 'v;
    mutable prev : ('k, 'v) node option;  (* toward the MRU end *)
    mutable next : ('k, 'v) node option;  (* toward the LRU end *)
  }

  type ('k, 'v) t = {
    cap : int;
    tbl : ('k, ('k, 'v) node) Hashtbl.t;
    mutable mru : ('k, 'v) node option;
    mutable lru : ('k, 'v) node option;
    mutable n_hits : int;
    mutable n_misses : int;
    mutable n_evictions : int;
    lock : Mutex.t;
  }

  let create ?(capacity = 4096) () =
    if capacity < 1 then invalid_arg "Runtime.Lru.create: capacity must be >= 1";
    { cap = capacity;
      tbl = Hashtbl.create 64;
      mru = None;
      lru = None;
      n_hits = 0;
      n_misses = 0;
      n_evictions = 0;
      lock = Mutex.create () }

  let capacity t = t.cap
  let length t = Hashtbl.length t.tbl
  let hits t = t.n_hits
  let misses t = t.n_misses
  let evictions t = t.n_evictions

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.mru <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.lru <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.next <- t.mru;
    n.prev <- None;
    (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
    t.mru <- Some n

  let find_opt t k =
    Mutex.lock t.lock;
    let r =
      match Hashtbl.find_opt t.tbl k with
      | Some n ->
        t.n_hits <- t.n_hits + 1;
        unlink t n;
        push_front t n;
        Some n.value
      | None ->
        t.n_misses <- t.n_misses + 1;
        None
    in
    Mutex.unlock t.lock;
    r

  let add t k v =
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.tbl k with
    | Some n ->
      n.value <- v;
      unlink t n;
      push_front t n
    | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      if Hashtbl.length t.tbl > t.cap then (
        match t.lru with
        | Some victim ->
          Hashtbl.remove t.tbl victim.key;
          unlink t victim;
          t.n_evictions <- t.n_evictions + 1
        | None -> ()));
    Mutex.unlock t.lock

  let find_or_add t k f =
    match find_opt t k with
    | Some v -> v
    | None ->
      let v = f () in
      add t k v;
      v

  let clear t =
    Mutex.lock t.lock;
    Hashtbl.reset t.tbl;
    t.mru <- None;
    t.lru <- None;
    Mutex.unlock t.lock
end

(* --- domain pool ---------------------------------------------------------- *)

let c_tasks = Telemetry.counter Telemetry.global "runtime.tasks"
let c_steals = Telemetry.counter Telemetry.global "runtime.steals"
let c_maps = Telemetry.counter Telemetry.global "runtime.parallel_maps"
let c_fallbacks = Telemetry.counter Telemetry.global "runtime.sequential_fallbacks"

type pool = {
  lock : Mutex.t;
  work_available : Condition.t;
  work_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable outstanding : int;  (* queued or running chunks of the active map *)
  mutable stop : bool;
  tasks : int Atomic.t;
  steals : int Atomic.t;
}

type t = {
  n_domains : int;
  chunk_hint : int option;
  pool : pool option;
  workers : unit Domain.t list;
  busy : bool Atomic.t;  (* a map is draining the pool; nested maps go sequential *)
  fallbacks : int Atomic.t;
  maps : int Atomic.t;
  cache : (string, float) Lru.t;
}

let finish_chunk pool =
  Mutex.lock pool.lock;
  pool.outstanding <- pool.outstanding - 1;
  if pool.outstanding = 0 then Condition.broadcast pool.work_done;
  Mutex.unlock pool.lock

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue && not pool.stop do
    Condition.wait pool.work_available pool.lock
  done;
  match Queue.take_opt pool.queue with
  | None ->
    (* stop requested and the queue is drained *)
    Mutex.unlock pool.lock
  | Some task ->
    Mutex.unlock pool.lock;
    task ();
    Atomic.incr pool.tasks;
    Atomic.incr pool.steals;
    Telemetry.Counter.incr c_tasks;
    Telemetry.Counter.incr c_steals;
    finish_chunk pool;
    worker_loop pool

let shutdown t =
  match t.pool with
  | None -> ()
  | Some pool ->
    let first =
      Mutex.lock pool.lock;
      let first = not pool.stop in
      pool.stop <- true;
      Condition.broadcast pool.work_available;
      Mutex.unlock pool.lock;
      first
    in
    if first then List.iter Domain.join t.workers

let create ?chunk ?cache_capacity ~domains () =
  let n_domains = max 1 domains in
  let pool, workers =
    if n_domains = 1 then (None, [])
    else begin
      let pool =
        { lock = Mutex.create ();
          work_available = Condition.create ();
          work_done = Condition.create ();
          queue = Queue.create ();
          outstanding = 0;
          stop = false;
          tasks = Atomic.make 0;
          steals = Atomic.make 0 }
      in
      let workers =
        List.init (n_domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool))
      in
      (Some pool, workers)
    end
  in
  let t =
    { n_domains;
      chunk_hint = chunk;
      pool;
      workers;
      busy = Atomic.make false;
      fallbacks = Atomic.make 0;
      maps = Atomic.make 0;
      cache = Lru.create ?capacity:cache_capacity () }
  in
  if pool <> None then at_exit (fun () -> shutdown t);
  t

let sequential () =
  { n_domains = 1;
    chunk_hint = None;
    pool = None;
    workers = [];
    busy = Atomic.make false;
    fallbacks = Atomic.make 0;
    maps = Atomic.make 0;
    cache = Lru.create () }

let domains t = t.n_domains
let sim_cache t = t.cache

let with_runtime ?chunk ?cache_capacity ~domains f =
  let t = create ?chunk ?cache_capacity ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let stats t =
  let pool_stat get = match t.pool with None -> 0 | Some p -> Atomic.get (get p) in
  [ ("domains", t.n_domains);
    ("parallel_maps", Atomic.get t.maps);
    ("tasks", pool_stat (fun p -> p.tasks));
    ("steals", pool_stat (fun p -> p.steals));
    ("sequential_fallbacks", Atomic.get t.fallbacks);
    ("cache_hits", Lru.hits t.cache);
    ("cache_misses", Lru.misses t.cache);
    ("cache_entries", Lru.length t.cache) ]

(* Drain the queue together with the workers, then wait for stragglers. *)
let run_pooled t pool chunk_size f a =
  let n = Array.length a in
  let results = Array.make n None in
  let first_exn = Atomic.make None in
  let chunk =
    match chunk_size with
    | Some c -> max 1 c
    | None -> max 1 (n / (4 * t.n_domains))
  in
  let n_chunks = (n + chunk - 1) / chunk in
  let task_for ci () =
    let lo = ci * chunk in
    let hi = min n (lo + chunk) in
    try
      for i = lo to hi - 1 do
        results.(i) <- Some (f i a.(i))
      done
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (Atomic.compare_and_set first_exn None (Some (e, bt)))
  in
  Mutex.lock pool.lock;
  for ci = 0 to n_chunks - 1 do
    Queue.push (task_for ci) pool.queue
  done;
  pool.outstanding <- pool.outstanding + n_chunks;
  Condition.broadcast pool.work_available;
  let continue = ref true in
  while !continue do
    match Queue.take_opt pool.queue with
    | Some task ->
      Mutex.unlock pool.lock;
      task ();
      Atomic.incr pool.tasks;
      Telemetry.Counter.incr c_tasks;
      Mutex.lock pool.lock;
      pool.outstanding <- pool.outstanding - 1;
      if pool.outstanding = 0 then Condition.broadcast pool.work_done
    | None -> continue := false
  done;
  while pool.outstanding > 0 do
    Condition.wait pool.work_done pool.lock
  done;
  Mutex.unlock pool.lock;
  (match Atomic.get first_exn with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  ( n_chunks,
    Array.map (function Some v -> v | None -> assert false) results )

let parallel_mapi t ?chunk f a =
  let n = Array.length a in
  Atomic.incr t.maps;
  Telemetry.Counter.incr c_maps;
  let sequentially () = Array.mapi f a in
  match t.pool with
  | None -> sequentially ()
  | Some _ when n < 2 -> sequentially ()
  | Some pool ->
    if not (Atomic.compare_and_set t.busy false true) then begin
      (* nested or concurrent map: degrade rather than deadlock *)
      Atomic.incr t.fallbacks;
      Telemetry.Counter.incr c_fallbacks;
      sequentially ()
    end
    else
      Fun.protect
        ~finally:(fun () -> Atomic.set t.busy false)
        (fun () ->
          let chunk = match chunk with Some c -> Some c | None -> t.chunk_hint in
          let sp =
            Telemetry.span_begin Telemetry.global "runtime.parallel_map"
              ~attrs:[ ("items", Int n); ("domains", Int t.n_domains) ]
          in
          match run_pooled t pool chunk f a with
          | n_chunks, out ->
            Telemetry.span_add_attrs sp [ ("chunks", Int n_chunks) ];
            Telemetry.span_end Telemetry.global sp;
            out
          | exception e ->
            Telemetry.span_end Telemetry.global sp ~attrs:[ ("error", Bool true) ];
            raise e)

let parallel_map t ?chunk f a = parallel_mapi t ?chunk (fun _ x -> f x) a

let map_list t f l = Array.to_list (parallel_map t f (Array.of_list l))

let split_rngs ~seed n =
  if n < 0 then invalid_arg "Runtime.split_rngs: n must be >= 0";
  let base = Rng.create seed in
  Array.init n (fun i -> Rng.substream base i)

let parallel_map_seeded t ~seed ?chunk f a =
  let base = Rng.create seed in
  parallel_mapi t ?chunk (fun i x -> f (Rng.substream base i) x) a
