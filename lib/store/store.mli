(** Durable tuning store: crash-safe measurement journal, checkpoints and
    the one versioned on-disk artifact format.

    A store is a directory holding

    - [journal.jsonl] — an append-only, schema-versioned JSONL journal:
      one line per hardware measurement
      [(network, device, task key, sketch, assignment) -> latency], plus
      run-boundary markers. The journal is fsync'd once per tuning round
      ({!sync}); a process killed mid-round loses at most the lines since
      the last sync, and a torn final line (the classic
      killed-mid-[write(2)] artifact) is detected and truncated away on
      the next {!open_dir}.
    - [checkpoint.json] — the latest tuning checkpoint (written atomically
      via temp-file + rename), an opaque payload captured by the tuner:
      task-scheduler state, RNG stream position, cost-model weights and
      optimizer state, and the simulated clock.

    Floats that must survive bit-exactly (latencies, schedule variables,
    RNG states, model weights) are encoded as IEEE-754 bit strings
    ({!Bits}), never as decimal text — this is what makes resume
    bit-identical rather than merely close.

    The store is single-writer: one tuning process per directory. *)

(** {1 Errors} *)

type error =
  | Not_found of string  (** no artifact at the given path *)
  | Io of string  (** system error (open, write, rename, fsync) *)
  | Corrupt of string  (** unparsable or structurally invalid content *)
  | Version_mismatch of { kind : string; found : int; expected : int }
  | Kind_mismatch of { found : string; expected : string }

val error_message : error -> string

(** {1 Bit-exact float encoding} *)

module Bits : sig
  val of_float : float -> string
  (** 16 lowercase hex characters of [Int64.bits_of_float]; total on every
      float including infinities and NaNs. *)

  val to_float : string -> float option
  val of_floats : float array -> string
  (** Concatenated 16-char chunks (no separator). *)

  val to_floats : string -> float array option
end

(** {1 Versioned artifacts}

    Every single-file persistent object (cost-model weights, compiled
    networks, tuning-result exports, checkpoints) is wrapped in one
    envelope [{"felix": {"kind": k, "version": v}, "payload": ...}] so a
    load can distinguish "wrong file" from "old schema" from "corrupt". *)

module Artifact : sig
  val save :
    path:string -> kind:string -> version:int -> Json.t -> (unit, error) result
  (** Atomic: writes [path ^ ".tmp"], fsyncs, renames over [path]. *)

  val load :
    path:string -> kind:string -> version:int -> (Json.t, error) result
  (** Returns the payload iff the envelope's kind and version match. *)
end

(** {1 Measurement records} *)

module Record : sig
  type t = {
    network : string;
    device : string;
    task_key : string;  (** workload identity of the subgraph task *)
    sketch : string;  (** sketch (schedule template) name *)
    key : string;  (** canonical schedule key within the task *)
    y : float array;  (** schedule-variable assignment, exact bits *)
    latency_ms : float;
    round : int;  (** tuning round that paid for the measurement *)
    attempts : int;
        (** measurement attempts the measurer made (1 unless a flaky
            failure was retried; serialised only when [<> 1], so
            fault-free journals keep the pre-measurer byte format) *)
  }
end

(** Failed measurements are journal records too, so a resumed run does not
    re-pay a failure already classified as deterministic, and so
    [store stats] can account for every attempt. *)
module Failure : sig
  type t = {
    network : string;
    device : string;
    task_key : string;
    sketch : string;
    key : string;
    y : float array;
    kind : string;  (** {!Measure.outcome_kind}: "timeout" | "crash" | "invalid" *)
    message : string;  (** crash diagnostic; [""] otherwise *)
    attempts : int;
    deterministic : bool;  (** classified deterministic (vs retries exhausted) *)
    round : int;
  }
end

(** {1 The store} *)

type t

val open_dir : string -> (t, error) result
(** Opens (creating if needed) a store directory and replays the journal.
    A torn final line is truncated away and counted in
    {!stats}[.recovered_bytes]; corruption anywhere else is an error. *)

val close : t -> unit
val dir : t -> string

val append : t -> Record.t -> unit
(** Buffered append of one measurement line; durable after {!sync}.
    Raises [Sys_error] on I/O failure — the store fails loudly rather
    than silently dropping records. *)

val append_failure : t -> Failure.t -> unit
(** Buffered append of one failed-measurement line; durable after {!sync}. *)

val sync : t -> unit
(** Flush and fsync the journal (called by the tuner once per round). *)

(** {2 Run boundaries}

    Warm-start only trusts records from {e completed} runs: a run that
    died before its first checkpoint leaves journal lines that the resume
    path will re-produce, and treating them as prior knowledge would make
    the warm curve diverge from the cold one. Markers are fsync'd
    immediately. *)

val fresh_run_id : t -> string
(** Deterministic id for the next run ("run0001", "run0002", ...). *)

val begin_run : t -> id:string -> unit
val resume_run : t -> id:string -> unit
val complete_run : t -> id:string -> unit

val num_records : t -> int

val completed_records :
  t -> device:string -> task_key:string -> Record.t list
(** Measurements of completed runs for one (device, task) in journal
    order — the warm-start replay set. *)

val completed_failures :
  t -> device:string -> task_key:string -> Failure.t list
(** Failed measurements of completed runs for one (device, task) in
    journal order — seeded into warm starts at infinite latency so known
    failures are not re-measured. *)

(** {2 Checkpoints} *)

val save_checkpoint : t -> Json.t -> (unit, error) result
val load_checkpoint : t -> (Json.t, error) result
(** [Error (Not_found _)] when no checkpoint has been written yet. *)

(** {2 Stats} *)

type stats = {
  records : int;
  failures : int;  (** failed-measurement records *)
  retried : int;  (** records (successes or failures) that took > 1 attempt *)
  runs_started : int;  (** distinct run ids seen (incl. resumed) *)
  runs_completed : int;
  devices : string list;  (** sorted, distinct *)
  tasks : int;  (** distinct (device, task key) pairs *)
  journal_bytes : int;
  recovered_bytes : int;  (** truncated torn-tail bytes, if any *)
  has_checkpoint : bool;
}

val stats : t -> stats
