type error =
  | Not_found of string
  | Io of string
  | Corrupt of string
  | Version_mismatch of { kind : string; found : int; expected : int }
  | Kind_mismatch of { found : string; expected : string }

let error_message = function
  | Not_found p -> Printf.sprintf "no such artifact: %s" p
  | Io m -> Printf.sprintf "i/o error: %s" m
  | Corrupt m -> Printf.sprintf "corrupt artifact: %s" m
  | Version_mismatch { kind; found; expected } ->
    Printf.sprintf "%s schema version %d (this build reads %d)" kind found expected
  | Kind_mismatch { found; expected } ->
    Printf.sprintf "artifact kind %S where %S was expected" found expected

(* --- bit-exact float encoding ---------------------------------------------- *)

module Bits = struct
  let of_float f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)

  let to_float s =
    if String.length s <> 16 then None
    else
      match Int64.of_string_opt ("0x" ^ s) with
      | Some bits -> Some (Int64.float_of_bits bits)
      | None -> None

  let of_floats arr =
    let buf = Buffer.create (16 * Array.length arr) in
    Array.iter (fun f -> Buffer.add_string buf (of_float f)) arr;
    Buffer.contents buf

  let to_floats s =
    let n = String.length s in
    if n mod 16 <> 0 then None
    else begin
      let out = Array.make (n / 16) 0.0 in
      let ok = ref true in
      for i = 0 to (n / 16) - 1 do
        match to_float (String.sub s (i * 16) 16) with
        | Some f -> out.(i) <- f
        | None -> ok := false
      done;
      if !ok then Some out else None
    end
end

(* --- low-level file helpers ------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let fsync_dir dir =
  (* Persist the rename itself; best-effort on filesystems that refuse
     directory fsync. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let io_protect f =
  try f () with
  | Sys_error m -> Error (Io m)
  | Unix.Unix_error (e, op, arg) ->
    Error (Io (Printf.sprintf "%s(%s): %s" op arg (Unix.error_message e)))

(* --- versioned artifacts --------------------------------------------------- *)

module Artifact = struct
  let envelope ~kind ~version payload =
    Json.Obj
      [ ("felix",
         Json.Obj
           [ ("kind", Json.Str kind); ("version", Json.Num (float_of_int version)) ]);
        ("payload", payload) ]

  let save ~path ~kind ~version payload =
    io_protect @@ fun () ->
    let tmp = path ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let oc = Unix.out_channel_of_descr fd in
    output_string oc (Json.to_string (envelope ~kind ~version payload));
    output_char oc '\n';
    flush oc;
    Unix.fsync fd;
    close_out oc;
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path);
    Ok ()

  let load ~path ~kind ~version =
    if not (Sys.file_exists path) then Error (Not_found path)
    else
      match io_protect (fun () -> Ok (read_file path)) with
      | Error _ as e -> e
      | Ok text -> (
        match Json.parse text with
        | Error msg -> Error (Corrupt (Printf.sprintf "%s: %s" path msg))
        | Ok json -> (
          let header = Json.find json "felix" in
          let found_kind =
            Option.bind header (fun h -> Option.bind (Json.find h "kind") Json.as_string)
          in
          let found_version =
            Option.bind header (fun h -> Option.bind (Json.find h "version") Json.as_int)
          in
          match (found_kind, found_version, Json.find json "payload") with
          | None, _, _ | _, None, _ | _, _, None ->
            Error (Corrupt (Printf.sprintf "%s: missing artifact envelope" path))
          | Some k, _, _ when k <> kind -> Error (Kind_mismatch { found = k; expected = kind })
          | _, Some v, _ when v <> version ->
            Error (Version_mismatch { kind; found = v; expected = version })
          | Some _, Some _, Some payload -> Ok payload))
end

(* --- measurement records --------------------------------------------------- *)

module Record = struct
  type t = {
    network : string;
    device : string;
    task_key : string;
    sketch : string;
    key : string;
    y : float array;
    latency_ms : float;
    round : int;
    attempts : int;
  }

  let to_json r =
    Json.Obj
      ([ ("k", Json.Str "m");
         ("net", Json.Str r.network);
         ("dev", Json.Str r.device);
         ("task", Json.Str r.task_key);
         ("sk", Json.Str r.sketch);
         ("key", Json.Str r.key);
         ("y", Json.Str (Bits.of_floats r.y));
         ("lat", Json.Str (Bits.of_float r.latency_ms));
         ("round", Json.Num (float_of_int r.round)) ]
      (* emitted only for retried measurements, so journals written by a
         fault-free run stay byte-identical to the pre-measurer format *)
      @ (if r.attempts <> 1 then [ ("att", Json.Num (float_of_int r.attempts)) ]
         else []))

  let of_json j =
    let str k = Option.bind (Json.find j k) Json.as_string in
    let int k = Option.bind (Json.find j k) Json.as_int in
    match
      ( str "net", str "dev", str "task", str "sk", str "key",
        Option.bind (str "y") Bits.to_floats,
        Option.bind (str "lat") Bits.to_float, int "round" )
    with
    | ( Some network, Some device, Some task_key, Some sketch, Some key,
        Some y, Some latency_ms, Some round ) ->
      Some
        { network; device; task_key; sketch; key; y; latency_ms; round;
          attempts = Option.value (int "att") ~default:1 }
    | _ -> None
end

(* --- failed measurements ---------------------------------------------------- *)

module Failure = struct
  type t = {
    network : string;
    device : string;
    task_key : string;
    sketch : string;
    key : string;
    y : float array;
    kind : string;
    message : string;
    attempts : int;
    deterministic : bool;
    round : int;
  }

  let to_json r =
    Json.Obj
      [ ("k", Json.Str "f");
        ("net", Json.Str r.network);
        ("dev", Json.Str r.device);
        ("task", Json.Str r.task_key);
        ("sk", Json.Str r.sketch);
        ("key", Json.Str r.key);
        ("y", Json.Str (Bits.of_floats r.y));
        ("fk", Json.Str r.kind);
        ("msg", Json.Str r.message);
        ("att", Json.Num (float_of_int r.attempts));
        ("det", Json.Bool r.deterministic);
        ("round", Json.Num (float_of_int r.round)) ]

  let of_json j =
    let str k = Option.bind (Json.find j k) Json.as_string in
    let int k = Option.bind (Json.find j k) Json.as_int in
    let bool k =
      Option.bind (Json.find j k) (function Json.Bool b -> Some b | _ -> None)
    in
    match
      ( str "net", str "dev", str "task", str "sk", str "key",
        Option.bind (str "y") Bits.to_floats,
        (str "fk", str "msg", int "att", bool "det", int "round") )
    with
    | ( Some network, Some device, Some task_key, Some sketch, Some key,
        Some y, (Some kind, Some message, Some attempts, Some deterministic, Some round) ) ->
      Some
        { network; device; task_key; sketch; key; y; kind; message; attempts;
          deterministic; round }
    | _ -> None
end

(* --- the journal ----------------------------------------------------------- *)

let journal_kind = "felix-journal"
let journal_version = 1
let checkpoint_kind = "felix-checkpoint"
let checkpoint_version = 1

type t = {
  store_dir : string;
  journal_path : string;
  mutable fd : Unix.file_descr;
  mutable oc : out_channel;
  (* replayed + appended state, newest first *)
  mutable records : (string option * Record.t) list;
  mutable n_records : int;
  mutable failures : (string option * Failure.t) list;
  mutable n_failures : int;
  started : (string, unit) Hashtbl.t;
  completed : (string, unit) Hashtbl.t;
  mutable current_run : string option;
  mutable recovered : int;
}

let dir t = t.store_dir
let num_records t = t.n_records

let header_line =
  Json.to_line
    (Json.Obj
       [ ("k", Json.Str journal_kind);
         ("v", Json.Num (float_of_int journal_version)) ])

(* Split [content] into (line, byte offset of line start) pairs plus the
   byte offset of a trailing unterminated fragment, if any. *)
let split_lines content =
  let n = String.length content in
  let lines = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if content.[i] = '\n' then begin
      lines := (String.sub content !start (i - !start), !start) :: !lines;
      start := i + 1
    end
  done;
  (List.rev !lines, if !start < n then Some !start else None)

type replayed = {
  rp_entries :
    [ `Run of string * string | `Measure of Record.t | `Failure of Failure.t ] list;
  rp_truncate_at : int option;  (** torn tail begins here *)
}

(* Replay journal text. The last line (terminated or not) is allowed to be
   garbage — that is the torn-write case — and is reported for truncation;
   damage anywhere else is corruption. *)
let replay_text content =
  let lines, partial = split_lines content in
  match lines with
  | [] ->
    (* Either empty or a torn header fragment. *)
    Ok { rp_entries = []; rp_truncate_at = (if content = "" then None else Some 0) }
  | (header, _) :: rest -> (
    let header_json = Json.parse header in
    let header_ok =
      match header_json with
      | Ok j -> (
        match
          ( Option.bind (Json.find j "k") Json.as_string,
            Option.bind (Json.find j "v") Json.as_int )
        with
        | Some k, _ when k <> journal_kind ->
          Error (Corrupt (Printf.sprintf "journal header kind %S" k))
        | Some _, Some v when v <> journal_version ->
          Error
            (Version_mismatch
               { kind = journal_kind; found = v; expected = journal_version })
        | Some _, Some _ -> Ok ()
        | _ -> Error (Corrupt "journal header missing fields"))
      | Error m -> Error (Corrupt (Printf.sprintf "journal header: %s" m))
    in
    match header_ok with
    | Error _ when rest = [] && partial = None ->
      (* A lone damaged header is itself a torn first write. *)
      Ok { rp_entries = []; rp_truncate_at = Some 0 }
    | Error e -> Error e
    | Ok () ->
      let entries = ref [] in
      let bad = ref None in
      let nlines = List.length rest in
      List.iteri
        (fun i (line, off) ->
          if !bad = None then
            let parsed =
              match Json.parse line with
              | Error _ -> None
              | Ok j -> (
                match Option.bind (Json.find j "k") Json.as_string with
                | Some "m" ->
                  Option.map (fun r -> `Measure r) (Record.of_json j)
                | Some "f" ->
                  Option.map (fun r -> `Failure r) (Failure.of_json j)
                | Some "run" -> (
                  match
                    ( Option.bind (Json.find j "ev") Json.as_string,
                      Option.bind (Json.find j "id") Json.as_string )
                  with
                  | Some ev, Some id -> Some (`Run (ev, id))
                  | _ -> None)
                | _ -> None)
            in
            match parsed with
            | Some e -> entries := e :: !entries
            | None ->
              if i = nlines - 1 && partial = None then
                (* Unparsable final line: treat as torn. *)
                bad := Some (`Torn off)
              else bad := Some (`Corrupt (line, off)))
        rest;
      match !bad with
      | Some (`Corrupt (_, off)) ->
        Error (Corrupt (Printf.sprintf "journal line at byte %d" off))
      | Some (`Torn off) ->
        Ok { rp_entries = List.rev !entries; rp_truncate_at = Some off }
      | None -> Ok { rp_entries = List.rev !entries; rp_truncate_at = partial })

let apply_entry t = function
  | `Run ("started", id) | `Run ("resumed", id) ->
    Hashtbl.replace t.started id ();
    t.current_run <- Some id
  | `Run ("completed", id) ->
    Hashtbl.replace t.completed id ();
    if t.current_run = Some id then t.current_run <- None
  | `Run _ -> ()
  | `Measure r ->
    t.records <- (t.current_run, r) :: t.records;
    t.n_records <- t.n_records + 1
  | `Failure r ->
    t.failures <- (t.current_run, r) :: t.failures;
    t.n_failures <- t.n_failures + 1

let write_line t json =
  output_string t.oc (Json.to_line json);
  output_char t.oc '\n'

let sync t =
  flush t.oc;
  Unix.fsync t.fd

let open_dir path =
  io_protect @@ fun () ->
  if not (Sys.file_exists path) then Unix.mkdir path 0o755;
  let journal_path = Filename.concat path "journal.jsonl" in
  let content = if Sys.file_exists journal_path then read_file journal_path else "" in
  match replay_text content with
  | Error e -> Error e
  | Ok { rp_entries; rp_truncate_at } ->
    let recovered =
      match rp_truncate_at with
      | None -> 0
      | Some off ->
        let fd = Unix.openfile journal_path [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd off;
        Unix.fsync fd;
        Unix.close fd;
        String.length content - off
    in
    let fd =
      Unix.openfile journal_path
        [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
        0o644
    in
    let oc = Unix.out_channel_of_descr fd in
    let t =
      { store_dir = path;
        journal_path;
        fd;
        oc;
        records = [];
        n_records = 0;
        failures = [];
        n_failures = 0;
        started = Hashtbl.create 8;
        completed = Hashtbl.create 8;
        current_run = None;
        recovered }
    in
    List.iter (apply_entry t) rp_entries;
    (* records were applied oldest-first onto a newest-first list: ok *)
    if content = "" || rp_truncate_at = Some 0 then begin
      output_string t.oc header_line;
      output_char t.oc '\n';
      sync t
    end;
    Ok t

let close t =
  flush t.oc;
  (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
  close_out t.oc

let append t r =
  write_line t (Record.to_json r);
  apply_entry t (`Measure r)

let append_failure t r =
  write_line t (Failure.to_json r);
  apply_entry t (`Failure r)

let run_marker ev id =
  Json.Obj [ ("k", Json.Str "run"); ("ev", Json.Str ev); ("id", Json.Str id) ]

let fresh_run_id t = Printf.sprintf "run%04d" (Hashtbl.length t.started + 1)

let begin_run t ~id =
  write_line t (run_marker "started" id);
  apply_entry t (`Run ("started", id));
  sync t

let resume_run t ~id =
  write_line t (run_marker "resumed" id);
  apply_entry t (`Run ("resumed", id));
  sync t

let complete_run t ~id =
  write_line t (run_marker "completed" id);
  apply_entry t (`Run ("completed", id));
  sync t

let completed_records t ~device ~task_key =
  List.fold_left
    (fun acc (run, (r : Record.t)) ->
      match run with
      | Some id
        when Hashtbl.mem t.completed id
             && r.Record.device = device && r.Record.task_key = task_key ->
        r :: acc
      | _ -> acc)
    [] t.records
(* [records] is newest-first, so the fold returns journal order. *)

let completed_failures t ~device ~task_key =
  List.fold_left
    (fun acc (run, (r : Failure.t)) ->
      match run with
      | Some id
        when Hashtbl.mem t.completed id
             && r.Failure.device = device && r.Failure.task_key = task_key ->
        r :: acc
      | _ -> acc)
    [] t.failures

let checkpoint_path t = Filename.concat t.store_dir "checkpoint.json"

let save_checkpoint t json =
  Artifact.save ~path:(checkpoint_path t) ~kind:checkpoint_kind
    ~version:checkpoint_version json

let load_checkpoint t =
  Artifact.load ~path:(checkpoint_path t) ~kind:checkpoint_kind
    ~version:checkpoint_version

type stats = {
  records : int;
  failures : int;
  retried : int;
  runs_started : int;
  runs_completed : int;
  devices : string list;
  tasks : int;
  journal_bytes : int;
  recovered_bytes : int;
  has_checkpoint : bool;
}

let stats t =
  (try flush t.oc with Sys_error _ -> ());
  let devices = Hashtbl.create 8 in
  let tasks = Hashtbl.create 16 in
  List.iter
    (fun (_, (r : Record.t)) ->
      Hashtbl.replace devices r.Record.device ();
      Hashtbl.replace tasks (r.Record.device, r.Record.task_key) ())
    t.records;
  List.iter
    (fun (_, (r : Failure.t)) ->
      Hashtbl.replace devices r.Failure.device ();
      Hashtbl.replace tasks (r.Failure.device, r.Failure.task_key) ())
    t.failures;
  let retried =
    List.fold_left
      (fun acc (_, (r : Record.t)) -> if r.Record.attempts > 1 then acc + 1 else acc)
      0 t.records
    + List.fold_left
        (fun acc (_, (r : Failure.t)) ->
          if r.Failure.attempts > 1 then acc + 1 else acc)
        0 t.failures
  in
  { records = t.n_records;
    failures = t.n_failures;
    retried;
    runs_started = Hashtbl.length t.started;
    runs_completed = Hashtbl.length t.completed;
    devices = Hashtbl.fold (fun d () acc -> d :: acc) devices [] |> List.sort compare;
    tasks = Hashtbl.length tasks;
    journal_bytes =
      (try (Unix.stat t.journal_path).Unix.st_size with Unix.Unix_error _ -> 0);
    recovered_bytes = t.recovered;
    has_checkpoint = Sys.file_exists (checkpoint_path t) }
